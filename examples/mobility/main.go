// Mobility: an AP granted a bonded 40 MHz channel serves two static clients
// and one laptop walking away through two rooms. The WidthAdapter watches
// the measured link qualities and opportunistically falls back to the
// primary 20 MHz channel when the walker's link degrades — the paper's
// Fig 13 experiment driven through the public API.
package main

import (
	"fmt"
	"log"

	"acorn"
)

func main() {
	ap := &acorn.AP{ID: "AP", Pos: acorn.Point{X: 0, Y: 0}, TxPower: 18}
	static1 := &acorn.Client{ID: "tv", Pos: acorn.Point{X: 4, Y: 3}}
	static2 := &acorn.Client{ID: "console", Pos: acorn.Point{X: 6, Y: -2}}
	walker := &acorn.Client{ID: "laptop", Pos: acorn.Point{X: 3, Y: 0}}
	net := acorn.NewNetwork([]*acorn.AP{ap}, []*acorn.Client{static1, static2, walker})

	// The allocator granted this AP a bonded channel; the adapter may
	// fall back to its primary 20 MHz half at any time without changing
	// interference to neighbors.
	grant := acorn.NewChannel40(36, 40)
	adapter := acorn.NewWidthAdapter(grant)

	fmt.Printf("%5s %10s %12s %10s\n", "t(s)", "dist(m)", "width", "Mbit/s")
	for t := 0; t <= 50; t++ {
		// The laptop walks ~1.2 m/s; each room boundary adds 12 dB of
		// wall loss.
		x := 3 + 1.2*float64(t)
		if x > 60 {
			x = 60
		}
		walker.Pos = acorn.Point{X: x, Y: 0}
		walker.ExtraLoss = map[string]acorn.DB{"AP": wallLoss(x)}

		// The AP measures each client's link (20 MHz reference SNR)
		// and lets the adapter decide the operating width.
		snrs := map[string]acorn.DB{
			"tv":      net.ClientSNR20(ap, static1),
			"console": net.ClientSNR20(ap, static2),
			"laptop":  net.ClientSNR20(ap, walker),
		}
		ch := adapter.Decide(net, snrs)

		// Evaluate the cell at the chosen width.
		cfg := acorn.NewConfig()
		cfg.Channels["AP"] = ch
		for id := range snrs {
			cfg.SetAssoc(id, "AP")
		}
		if err := cfg.Validate(net); err != nil {
			log.Fatal(err)
		}
		rep := net.Evaluate(cfg)
		if t%5 == 0 || t == 50 {
			fmt.Printf("%5d %10.1f %12v %10.2f\n", t, x, ch, rep.TotalUDP)
		}
	}
}

func wallLoss(x float64) acorn.DB {
	switch {
	case x > 40:
		return 24
	case x > 20:
		return 12
	default:
		return 0
	}
}
