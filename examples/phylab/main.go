// Phylab: reproduce the paper's core PHY observation through the public
// API — at the same transmit power, a bonded 40 MHz channel spreads its
// energy over 108 subcarriers instead of 52, so the per-subcarrier SNR
// drops ≈3 dB and the bit error rate rises. The sample-level OFDM baseband
// (the WARP-hardware substitute) measures it; the closed-form theory curve
// is overlaid for comparison.
package main

import (
	"fmt"

	"acorn"
)

func main() {
	const tx = acorn.DBm(15)

	fmt.Printf("bonding SNR penalty: %v\n", acorn.BondingSNRPenalty())
	fmt.Printf("noise floor: 20 MHz %v, 40 MHz %v\n\n",
		acorn.NoiseFloor(acorn.Width20), acorn.NoiseFloor(acorn.Width40))

	// Fix one physical link (one path loss) and measure both widths, the
	// paper's Fig 3(b)/4(b) setup. The path loss is chosen to land the
	// 20 MHz link at 6 dB per-subcarrier SNR — inside the QPSK waterfall.
	pathLoss := acorn.PathLossFor(tx, 6, acorn.Width20)
	fmt.Printf("path loss: %v\n\n", pathLoss)

	fmt.Printf("%-8s %12s %12s %10s %12s\n", "width", "BER", "PER", "EVM", "measSNR(dB)")
	for _, w := range []acorn.Width{acorn.Width20, acorn.Width40} {
		m := acorn.MeasureBaseband(acorn.BasebandConfig{
			Width:       w,
			Modulation:  acorn.QPSK,
			STBC:        true,
			TxPower:     tx,
			PathLoss:    pathLoss,
			Packets:     200,
			PacketBytes: 500,
			Seed:        7,
		})
		fmt.Printf("%-8v %12.4g %12.4g %10.4f %12.2f\n",
			w, m.BER(), m.PER(), m.EVM(), m.MeasuredSNRdB())
	}

	// Theory: at equal measured SNR the BER does not depend on width.
	fmt.Println("\ntheory (QPSK, AWGN):")
	for _, snr := range []acorn.DB{3, 6, 9, 12} {
		fmt.Printf("  SNR %4.1f dB → BER %.3g\n", float64(snr), acorn.TheoreticalBER(acorn.QPSK, snr))
	}
}
