// Validation: configure a WLAN with ACORN, predict its throughput with the
// analytic DCF model, then replay the same configuration through the
// discrete-event CSMA/CA simulator and compare. The closed-form model that
// the allocation search optimizes is only trustworthy if a packet-level
// simulation lands in the same place — this example shows it does.
package main

import (
	"fmt"
	"log"

	"acorn"
)

func main() {
	aps := []*acorn.AP{
		{ID: "AP1", Pos: acorn.Point{X: 0, Y: 0}, TxPower: 18},
		{ID: "AP2", Pos: acorn.Point{X: 35, Y: 0}, TxPower: 18}, // contends with AP1
	}
	wall := func(db float64) map[string]acorn.DB {
		return map[string]acorn.DB{"AP1": acorn.DB(db), "AP2": acorn.DB(db)}
	}
	clients := []*acorn.Client{
		{ID: "u1", Pos: acorn.Point{X: 3, Y: 2}},
		{ID: "u2", Pos: acorn.Point{X: 5, Y: -3}, ExtraLoss: wall(30)},
		{ID: "u3", Pos: acorn.Point{X: 37, Y: 2}},
		{ID: "u4", Pos: acorn.Point{X: 33, Y: -4}, ExtraLoss: wall(25)},
	}
	net := acorn.NewNetwork(aps, clients)

	ctrl, err := acorn.NewController(net, 5)
	if err != nil {
		log.Fatal(err)
	}
	analytic := ctrl.AutoConfigure(clients)
	cfg := ctrl.Config()

	empirical := acorn.EmpiricalEvaluate(net, cfg, 5, 30)

	fmt.Printf("%-6s %-14s %14s %14s\n", "AP", "channel", "analytic Mb/s", "empirical Mb/s")
	for _, cell := range analytic.Cells {
		var emp float64
		for _, e := range empirical.Cells {
			if e.APID == cell.APID {
				emp = e.ThroughputMbps
			}
		}
		fmt.Printf("%-6s %-14v %14.2f %14.2f\n", cell.APID, cell.Channel, cell.ThroughputUDP, emp)
	}
	fmt.Printf("%-6s %-14s %14.2f %14.2f\n", "total", "", analytic.TotalUDP, empirical.TotalMbps)
	fmt.Printf("\nMAC collisions observed in 30 s of medium time: %d\n", empirical.Collisions)
}
