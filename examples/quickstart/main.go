// Quickstart: build a two-AP WLAN with one cell of good clients and one
// cell of poor clients, let ACORN configure it, and inspect the decisions —
// the poor cell gets a plain 20 MHz channel, the good cell a bonded 40 MHz
// channel.
package main

import (
	"fmt"
	"log"

	"acorn"
)

func main() {
	// Two APs far enough apart that their cells do not contend.
	aps := []*acorn.AP{
		{ID: "office", Pos: acorn.Point{X: 0, Y: 0}, TxPower: 18},
		{ID: "lab", Pos: acorn.Point{X: 500, Y: 0}, TxPower: 18},
	}
	// The office has clean short links; the lab's clients sit behind
	// heavy shielding (the ExtraLoss entries, in dB, keyed by AP).
	shielded := func(db float64) map[string]acorn.DB {
		return map[string]acorn.DB{"office": acorn.DB(db), "lab": acorn.DB(db)}
	}
	clients := []*acorn.Client{
		{ID: "desk1", Pos: acorn.Point{X: 4, Y: 2}},
		{ID: "desk2", Pos: acorn.Point{X: 7, Y: -3}},
		{ID: "bench1", Pos: acorn.Point{X: 504, Y: 3}, ExtraLoss: shielded(56)},
		{ID: "bench2", Pos: acorn.Point{X: 497, Y: -2}, ExtraLoss: shielded(55)},
	}

	net := acorn.NewNetwork(aps, clients)
	ctrl, err := acorn.NewController(net, 42)
	if err != nil {
		log.Fatal(err)
	}

	// AutoConfigure runs user association (Algorithm 1) for every client
	// and then channel allocation (Algorithm 2).
	report := ctrl.AutoConfigure(clients)
	cfg := ctrl.Config()

	for _, cell := range report.Cells {
		fmt.Printf("%-8s channel %-14v  %6.2f Mbit/s  clients %v\n",
			cell.APID, cell.Channel, cell.ThroughputUDP, cfg.ClientsOf(cell.APID))
	}
	fmt.Printf("network total: %.2f Mbit/s\n", report.TotalUDP)

	// The width decisions are the point: bonding would collapse the
	// shielded links (≈3 dB per-subcarrier penalty on an already poor
	// SNR), so ACORN bonds only the office cell.
	for _, ap := range aps {
		ch := cfg.Channels[ap.ID]
		fmt.Printf("%-8s → %v (%v)\n", ap.ID, ch, ch.Width)
	}
}
