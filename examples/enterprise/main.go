// Enterprise: a nine-AP floor plan with thirty clients of mixed link
// quality, comparing ACORN against the legacy single-width baseline
// (modified Kauffmann et al. [17]) and against the best of fifty random
// manual configurations — the paper's Section 5 evaluation in miniature.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"acorn"
)

func main() {
	net, clients := buildFloor(7)

	// ACORN.
	ctrl, err := acorn.NewController(net, 1)
	if err != nil {
		log.Fatal(err)
	}
	acornRep := ctrl.AutoConfigure(clients)

	// Legacy [17]: delay-based association + greedy 40 MHz channels.
	legacyRep := net.Evaluate(acorn.LegacyConfigure(net, clients))

	// Best of 50 random manual configurations.
	bestRandom := 0.0
	for i := int64(0); i < 50; i++ {
		rep := net.Evaluate(acorn.RandomConfigure(net, 1000+i))
		if rep.TotalUDP > bestRandom {
			bestRandom = rep.TotalUDP
		}
	}

	fmt.Printf("%-28s %10s %10s\n", "scheme", "UDP Mb/s", "TCP Mb/s")
	fmt.Printf("%-28s %10.1f %10.1f\n", "ACORN", acornRep.TotalUDP, acornRep.TotalTCP)
	fmt.Printf("%-28s %10.1f %10.1f\n", "legacy [17] (greedy 40MHz)", legacyRep.TotalUDP, legacyRep.TotalTCP)
	fmt.Printf("%-28s %10.1f %10s\n", "best of 50 random configs", bestRandom, "-")

	fmt.Println("\nper-AP detail (ACORN vs legacy):")
	for _, cell := range acornRep.Cells {
		lc := legacyRep.Cell(cell.APID)
		gain := "-"
		if lc.ThroughputUDP > 0 {
			gain = fmt.Sprintf("%.1fx", cell.ThroughputUDP/lc.ThroughputUDP)
		}
		fmt.Printf("  %-5s %-14v %7.2f | %-14v %7.2f  %s\n",
			cell.APID, cell.Channel, cell.ThroughputUDP,
			lc.Channel, lc.ThroughputUDP, gain)
	}
}

// buildFloor lays out a 3×3 AP grid, 90 m pitch, with clients clustered
// around APs. Roughly a third of the clients sit behind obstructions heavy
// enough that channel bonding hurts them.
func buildFloor(seed int64) (*acorn.Network, []*acorn.Client) {
	rng := rand.New(rand.NewSource(seed))
	var aps []*acorn.AP
	for i := 0; i < 9; i++ {
		aps = append(aps, &acorn.AP{
			ID:      fmt.Sprintf("AP%d", i+1),
			Pos:     acorn.Point{X: float64(i%3) * 90, Y: float64(i/3) * 90},
			TxPower: 18,
		})
	}
	var clients []*acorn.Client
	for i := 0; i < 30; i++ {
		home := aps[rng.Intn(len(aps))]
		c := &acorn.Client{
			ID: fmt.Sprintf("u%02d", i+1),
			Pos: acorn.Point{
				X: home.Pos.X + rng.Float64()*24 - 12,
				Y: home.Pos.Y + rng.Float64()*24 - 12,
			},
		}
		if rng.Float64() < 0.35 {
			// An obstructed client: link lands in the regime where a
			// 20 MHz channel beats a bonded one.
			wall := acorn.DB(44 + rng.Float64()*10)
			c.ExtraLoss = map[string]acorn.DB{}
			for _, ap := range aps {
				c.ExtraLoss[ap.ID] = wall
			}
		}
		clients = append(clients, c)
	}
	return acorn.NewNetwork(aps, clients), clients
}
