package acorn_test

// The benchmark harness: one benchmark per table and figure of the paper's
// evaluation. Each bench regenerates its artifact through
// internal/experiments and, on the first iteration, prints the same
// rows/series the paper reports (run with -v or read the bench log).
//
//	go test -bench=. -benchmem
//
// Absolute numbers come from the simulated substrate; the shapes — who
// wins, by what factor, where the crossovers fall — are the reproduction
// targets recorded in EXPERIMENTS.md.

import (
	"sync"
	"testing"

	"acorn/internal/experiments"
)

// printOnce emits an experiment's formatted output a single time per
// process so the bench log carries every regenerated artifact exactly once.
var printOnce sync.Map

func report(b *testing.B, id, formatted string) {
	if _, loaded := printOnce.LoadOrStore(id, true); !loaded {
		b.Logf("\n%s", formatted)
	}
}

// benchPHY are reduced Monte-Carlo settings so the full bench suite stays
// in CI budgets; cmd/experiments -packets 9000 reproduces at paper scale.
var benchPHY = experiments.PHYOptions{Packets: 60, PacketBytes: 400, Seed: 1}

func BenchmarkFig1PSD(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.RunFig1(benchPHY)
		report(b, "fig1", r.Format())
	}
}

func BenchmarkFig2Constellation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.RunFig2(benchPHY)
		report(b, "fig2", r.Format())
	}
}

func BenchmarkFig3aBERvsSNR(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.RunFig3a(benchPHY)
		report(b, "fig3a", r.Format())
	}
}

func BenchmarkFig3bBERvsTx(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.RunFig3b(benchPHY)
		report(b, "fig3b", r.Format())
	}
}

func BenchmarkFig4PER(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.RunFig4(benchPHY)
		report(b, "fig4", r.Format())
	}
}

func BenchmarkFig5Sigma(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.RunFig5()
		report(b, "fig5", r.Format())
	}
}

func BenchmarkTable1Transitions(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.RunTable1()
		report(b, "table1", r.Format())
	}
}

func BenchmarkFig6aThroughputScatter(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.RunFig6(42)
		report(b, "fig6", r.Format())
	}
}

func BenchmarkFig6bOptimalMCS(b *testing.B) {
	// Fig 6(b) shares RunFig6; this bench isolates the exhaustive
	// optimal-MCS search cost via a distinct seed.
	for i := 0; i < b.N; i++ {
		r := experiments.RunFig6(43)
		_ = r.Links[0].OptMCS40
	}
}

func BenchmarkFig8ChannelFlatness(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.RunFig8()
		report(b, "fig8", r.Format())
	}
}

func BenchmarkFig9AssocCDF(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.RunFig9(1)
		report(b, "fig9", r.Format())
	}
}

func BenchmarkFig10Topology1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.RunFig10Topology1(1)
		report(b, "fig10a", r.Format())
	}
}

func BenchmarkFig10Topology2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.RunFig10Topology2(1)
		report(b, "fig10b", r.Format())
	}
}

func BenchmarkFig11Interference(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.RunFig11(1)
		report(b, "fig11", r.Format())
	}
}

func BenchmarkTable3RandomConfigs(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.RunTable3(7)
		report(b, "table3", r.Format())
	}
}

func BenchmarkFig13MobilityAway(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.RunFig13Away()
		report(b, "fig13away", r.Format())
	}
}

func BenchmarkFig13MobilityToward(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.RunFig13Toward()
		report(b, "fig13toward", r.Format())
	}
}

func BenchmarkFig14Approximation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.RunFig14(3)
		report(b, "fig14", r.Format())
	}
}

// ------------------------- ablations and extensions (beyond the paper) --

func BenchmarkAblationEpsilon(b *testing.B) {
	for i := 0; i < b.N; i++ {
		points := experiments.AblationEpsilon(7)
		report(b, "abl-epsilon", experiments.FormatEpsilon(points))
	}
}

func BenchmarkAblationAssociation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		points := experiments.AblationAssociation(7)
		report(b, "abl-assoc", experiments.FormatAssociation(points))
	}
}

func BenchmarkAblationRestarts(b *testing.B) {
	for i := 0; i < b.N; i++ {
		points := experiments.AblationRestarts(7)
		report(b, "abl-restart", experiments.FormatRestarts(points))
	}
}

func BenchmarkPeriodicitySweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.RunPeriodicity(11)
		report(b, "periodicity", r.Format())
	}
}

func BenchmarkJammerSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.RunJammerSweep(benchPHY)
		report(b, "jammer", r.Format())
	}
}

func BenchmarkModelValidation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.RunModelValidation(1)
		report(b, "validation", r.Format())
	}
}

func BenchmarkCSIAblation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.RunCSIAblation(benchPHY)
		report(b, "csi", r.Format())
	}
}

func BenchmarkCodedValidation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.RunCodedValidation(benchPHY)
		report(b, "codedval", r.Format())
	}
}

func BenchmarkAblationScanning(b *testing.B) {
	for i := 0; i < b.N; i++ {
		points := experiments.AblationScanning(7)
		report(b, "abl-scan", experiments.FormatScanning(points))
	}
}
