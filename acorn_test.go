package acorn_test

import (
	"math"
	"testing"

	"acorn"
)

// publicNetwork builds a two-cell WLAN through the public API only.
func publicNetwork() (*acorn.Network, []*acorn.Client) {
	aps := []*acorn.AP{
		{ID: "A", Pos: acorn.Point{X: 0, Y: 0}, TxPower: 18},
		{ID: "B", Pos: acorn.Point{X: 600, Y: 0}, TxPower: 18},
	}
	wall := func(db float64) map[string]acorn.DB {
		return map[string]acorn.DB{"A": acorn.DB(db), "B": acorn.DB(db)}
	}
	clients := []*acorn.Client{
		{ID: "g1", Pos: acorn.Point{X: 4, Y: 2}},
		{ID: "g2", Pos: acorn.Point{X: 7, Y: -3}},
		{ID: "p1", Pos: acorn.Point{X: 603, Y: 2}, ExtraLoss: wall(56.5)},
		{ID: "p2", Pos: acorn.Point{X: 598, Y: -4}, ExtraLoss: wall(56)},
	}
	return acorn.NewNetwork(aps, clients), clients
}

func TestPublicAutoConfigure(t *testing.T) {
	net, clients := publicNetwork()
	ctrl, err := acorn.NewController(net, 3)
	if err != nil {
		t.Fatal(err)
	}
	rep := ctrl.AutoConfigure(clients)
	if rep.TotalUDP <= 0 {
		t.Fatal("no throughput")
	}
	cfg := ctrl.Config()
	if err := cfg.Validate(net); err != nil {
		t.Fatalf("invalid config: %v", err)
	}
	// Good cell bonds, poor cell does not.
	if cfg.Channels["A"].Width != acorn.Width40 {
		t.Errorf("good cell width = %v, want 40 MHz", cfg.Channels["A"].Width)
	}
	if cfg.Channels["B"].Width != acorn.Width20 {
		t.Errorf("poor cell width = %v, want 20 MHz", cfg.Channels["B"].Width)
	}
}

func TestPublicBaselines(t *testing.T) {
	net, clients := publicNetwork()
	legacy := acorn.LegacyConfigure(net, clients)
	if err := legacy.Validate(net); err != nil {
		t.Fatalf("legacy config invalid: %v", err)
	}
	random := acorn.RandomConfigure(net, 9)
	if err := random.Validate(net); err != nil {
		t.Fatalf("random config invalid: %v", err)
	}
	// ACORN beats the CB-agnostic legacy scheme on this topology.
	ctrl, _ := acorn.NewController(net, 3)
	acornRep := ctrl.AutoConfigure(clients)
	legacyRep := net.Evaluate(legacy)
	if acornRep.TotalUDP < legacyRep.TotalUDP {
		t.Errorf("ACORN %v below legacy %v", acornRep.TotalUDP, legacyRep.TotalUDP)
	}
}

func TestPublicAssociateDoesNotMutate(t *testing.T) {
	net, clients := publicNetwork()
	cfg := acorn.NewConfig()
	cfg.Channels["A"] = acorn.NewChannel20(36)
	cfg.Channels["B"] = acorn.NewChannel20(44)
	d := acorn.Associate(net, cfg, clients[0])
	if d.APID != "A" {
		t.Errorf("g1 → %s, want A", d.APID)
	}
	if len(cfg.Assoc) != 0 {
		t.Error("Associate mutated the config")
	}
}

func TestPublicChannels(t *testing.T) {
	band := acorn.DefaultBand5GHz()
	if band.NumChannels20() != 12 || len(band.Channels40()) != 6 {
		t.Error("default band shape wrong")
	}
	if !acorn.NewChannel20(36).Conflicts(acorn.NewChannel40(36, 40)) {
		t.Error("conflict relation broken through the facade")
	}
}

func TestPublicPHYSurface(t *testing.T) {
	if p := float64(acorn.BondingSNRPenalty()); p < 2.9 || p > 3.2 {
		t.Errorf("bonding penalty = %v", p)
	}
	gap := float64(acorn.NoiseFloor(acorn.Width40) - acorn.NoiseFloor(acorn.Width20))
	if math.Abs(gap-3.01) > 0.01 {
		t.Errorf("noise floor gap = %v, want 3.01", gap)
	}
	if b := acorn.TheoreticalBER(acorn.QPSK, 6); b < 0.01 || b > 0.05 {
		t.Errorf("QPSK BER at 6 dB = %v, want ≈0.023", b)
	}
}

func TestPublicMeasureBaseband(t *testing.T) {
	tx := acorn.DBm(15)
	m20 := acorn.MeasureBaseband(acorn.BasebandConfig{
		Width: acorn.Width20, Modulation: acorn.QPSK, STBC: true,
		TxPower: tx, PathLoss: acorn.PathLossFor(tx, 5, acorn.Width20),
		Packets: 25, PacketBytes: 300, Seed: 2,
	})
	m40 := acorn.MeasureBaseband(acorn.BasebandConfig{
		Width: acorn.Width40, Modulation: acorn.QPSK, STBC: true,
		TxPower: tx, PathLoss: acorn.PathLossFor(tx, 5, acorn.Width20),
		Packets: 25, PacketBytes: 300, Seed: 2,
	})
	if m40.BER() <= m20.BER() {
		t.Errorf("same Tx: 40 MHz BER %v should exceed 20 MHz %v", m40.BER(), m20.BER())
	}
}

func TestPublicWidthAdapter(t *testing.T) {
	net, _ := publicNetwork()
	ad := acorn.NewWidthAdapter(acorn.NewChannel40(36, 40))
	ch := ad.Decide(net, map[string]acorn.DB{"x": 30})
	if ch.Width != acorn.Width40 {
		t.Errorf("strong client width = %v", ch.Width)
	}
	ch = ad.Decide(net, map[string]acorn.DB{"x": 30, "y": -2})
	if ch.Width != acorn.Width20 {
		t.Errorf("poor client width = %v", ch.Width)
	}
}
