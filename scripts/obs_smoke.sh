#!/bin/sh
# obs_smoke.sh — boot acornd with the introspection server on, scrape
# /metrics and /healthz, and assert the convergence metrics are exported.
# Fails fast on any missing endpoint or metric name.
#
# OBS_SMOKE_PORT overrides the port (default 43117).
set -eu

PORT="${OBS_SMOKE_PORT:-43117}"
ADDR="127.0.0.1:$PORT"
TMP="$(mktemp -d)"
PID=""
cleanup() {
    [ -n "$PID" ] && kill "$PID" 2>/dev/null || true
    rm -rf "$TMP"
}
trap cleanup EXIT INT TERM

go build -o "$TMP/acornd" ./cmd/acornd
"$TMP/acornd" -obs-addr "$ADDR" -obs-hold 60s -log-level warn \
    -trace "$TMP/trace.jsonl" >/dev/null 2>&1 &
PID=$!

# Wait for the endpoint to come up (the solve itself is sub-second).
i=0
until curl -fsS "http://$ADDR/healthz" >/dev/null 2>&1; do
    i=$((i + 1))
    if [ "$i" -ge 50 ]; then
        echo "obs-smoke: $ADDR never came up" >&2
        exit 1
    fi
    sleep 0.2
done

METRICS="$(curl -fsS "http://$ADDR/metrics")"
for name in \
    acorn_core_reallocations_total \
    acorn_core_goodput_mbps \
    acorn_core_alloc_switches_total \
    acorn_core_reallocate_seconds_count \
    acorn_core_cells_40mhz; do
    if ! printf '%s\n' "$METRICS" | grep -q "^$name"; then
        echo "obs-smoke: /metrics is missing $name" >&2
        exit 1
    fi
done

HEALTH="$(curl -fsS "http://$ADDR/healthz")"
printf '%s' "$HEALTH" | grep -q '"status": "ok"' || {
    echo "obs-smoke: /healthz not ok: $HEALTH" >&2
    exit 1
}

curl -fsS "http://$ADDR/debug/vars" | grep -q '"metrics"' || {
    echo "obs-smoke: /debug/vars has no metrics snapshot" >&2
    exit 1
}

# The convergence trace must be present and start with a reallocate_start.
head -1 "$TMP/trace.jsonl" | grep -q '"event":"reallocate_start"' || {
    echo "obs-smoke: convergence trace malformed" >&2
    exit 1
}

echo "obs-smoke: ok ($ADDR)"
