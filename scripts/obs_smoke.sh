#!/bin/sh
# obs_smoke.sh — boot acornd with the introspection server on, scrape
# /metrics and /healthz, and assert the convergence metrics are exported.
# Fails fast on any missing endpoint or metric name.
#
# OBS_SMOKE_PORT overrides the port (default 43117).
set -eu

PORT="${OBS_SMOKE_PORT:-43117}"
ADDR="127.0.0.1:$PORT"
TMP="$(mktemp -d)"
PID=""
cleanup() {
    [ -n "$PID" ] && kill "$PID" 2>/dev/null || true
    rm -rf "$TMP"
}
trap cleanup EXIT INT TERM

go build -o "$TMP/acornd" ./cmd/acornd
"$TMP/acornd" -obs-addr "$ADDR" -obs-hold 60s -log-level warn \
    -trace "$TMP/trace.jsonl" >/dev/null 2>&1 &
PID=$!

# Wait for the endpoint to come up (the solve itself is sub-second).
i=0
until curl -fsS "http://$ADDR/healthz" >/dev/null 2>&1; do
    i=$((i + 1))
    if [ "$i" -ge 50 ]; then
        echo "obs-smoke: $ADDR never came up" >&2
        exit 1
    fi
    sleep 0.2
done

METRICS="$(curl -fsS "http://$ADDR/metrics")"
for name in \
    acorn_core_reallocations_total \
    acorn_core_goodput_mbps \
    acorn_core_alloc_switches_total \
    acorn_core_reallocate_seconds_count \
    acorn_core_cells_40mhz; do
    if ! printf '%s\n' "$METRICS" | grep -q "^$name"; then
        echo "obs-smoke: /metrics is missing $name" >&2
        exit 1
    fi
done

HEALTH="$(curl -fsS "http://$ADDR/healthz")"
printf '%s' "$HEALTH" | grep -q '"status": "ok"' || {
    echo "obs-smoke: /healthz not ok: $HEALTH" >&2
    exit 1
}

curl -fsS "http://$ADDR/debug/vars" | grep -q '"metrics"' || {
    echo "obs-smoke: /debug/vars has no metrics snapshot" >&2
    exit 1
}

# The convergence trace must be present and start with a reallocate_start.
head -1 "$TMP/trace.jsonl" | grep -q '"event":"reallocate_start"' || {
    echo "obs-smoke: convergence trace malformed" >&2
    exit 1
}

# Second instance: event-driven solve with per-event span tracing and a
# (generous) decision-latency SLO, so /debug/trace and /debug/slo have
# content to serve. Separate instance because -stream changes which
# solver metrics the first instance's assertions cover.
PORT2=$((PORT + 1))
ADDR2="127.0.0.1:$PORT2"
"$TMP/acornd" -obs-addr "$ADDR2" -obs-hold 60s -log-level warn \
    -stream -trace-sample 1 -slo-p99-ms 60000 >/dev/null 2>&1 &
PID2=$!
cleanup2() {
    kill "$PID2" 2>/dev/null || true
}
trap 'cleanup2; cleanup' EXIT INT TERM

i=0
until curl -fsS "http://$ADDR2/healthz" >/dev/null 2>&1; do
    i=$((i + 1))
    if [ "$i" -ge 50 ]; then
        echo "obs-smoke: $ADDR2 never came up" >&2
        exit 1
    fi
    sleep 0.2
done

# /debug/trace serves one JSON object per line; every span must carry a
# total and a stage breakdown, and the stream solve must have produced at
# least one span.
SPANS="$(curl -fsS "http://$ADDR2/debug/trace?n=50")"
NSPANS="$(printf '%s\n' "$SPANS" | grep -c '"total_ns"' || true)"
if [ "$NSPANS" -lt 1 ]; then
    echo "obs-smoke: /debug/trace served no spans: $SPANS" >&2
    exit 1
fi
printf '%s\n' "$SPANS" | while IFS= read -r line; do
    [ -n "$line" ] || continue
    case "$line" in
    {*\"total_ns\"*}) ;;
    *)
        echo "obs-smoke: /debug/trace line not a span object: $line" >&2
        exit 1
        ;;
    esac
done
printf '%s\n' "$SPANS" | grep -q '"stages"' || {
    echo "obs-smoke: /debug/trace spans carry no stage breakdown" >&2
    exit 1
}

# /debug/slo serves the monitor list; the stream SLO must be present with
# a populated window and no breach (the budget is 60 s).
SLO="$(curl -fsS "http://$ADDR2/debug/slo")"
printf '%s' "$SLO" | grep -q '"name": "stream_decision_p99"' || {
    echo "obs-smoke: /debug/slo is missing stream_decision_p99: $SLO" >&2
    exit 1
}
printf '%s' "$SLO" | grep -Eq '"window_count": [1-9]' || {
    echo "obs-smoke: stream_decision_p99 window is empty: $SLO" >&2
    exit 1
}
printf '%s' "$SLO" | grep -q '"breached": false' || {
    echo "obs-smoke: stream_decision_p99 breached under a 60s budget: $SLO" >&2
    exit 1
}

echo "obs-smoke: ok ($ADDR, $ADDR2)"
