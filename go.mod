module acorn

go 1.22
