package acorn_test

import (
	"fmt"

	"acorn"
)

// ExampleController_AutoConfigure configures a two-cell WLAN: the cell of
// good clients gets a bonded 40 MHz channel, the cell of shielded clients a
// plain 20 MHz channel.
func ExampleController_AutoConfigure() {
	aps := []*acorn.AP{
		{ID: "office", Pos: acorn.Point{X: 0, Y: 0}, TxPower: 18},
		{ID: "lab", Pos: acorn.Point{X: 600, Y: 0}, TxPower: 18},
	}
	shielded := func(db float64) map[string]acorn.DB {
		return map[string]acorn.DB{"office": acorn.DB(db), "lab": acorn.DB(db)}
	}
	clients := []*acorn.Client{
		{ID: "d1", Pos: acorn.Point{X: 4, Y: 2}},
		{ID: "d2", Pos: acorn.Point{X: 7, Y: -3}},
		{ID: "b1", Pos: acorn.Point{X: 604, Y: 3}, ExtraLoss: shielded(56)},
		{ID: "b2", Pos: acorn.Point{X: 597, Y: -2}, ExtraLoss: shielded(55.5)},
	}
	net := acorn.NewNetwork(aps, clients)
	ctrl, err := acorn.NewController(net, 42)
	if err != nil {
		fmt.Println(err)
		return
	}
	ctrl.AutoConfigure(clients)
	cfg := ctrl.Config()
	fmt.Println("office width:", cfg.Channels["office"].Width)
	fmt.Println("lab width:", cfg.Channels["lab"].Width)
	// Output:
	// office width: 40 MHz
	// lab width: 20 MHz
}

// ExampleBondingSNRPenalty shows the micro-effect the whole system design
// flows from: spreading a fixed transmit power over a 40 MHz channel's
// subcarriers costs ≈3 dB of per-subcarrier SNR.
func ExampleBondingSNRPenalty() {
	fmt.Printf("penalty: %.1f dB\n", float64(acorn.BondingSNRPenalty()))
	fmt.Printf("noise floor 20 MHz: %.0f dBm\n", float64(acorn.NoiseFloor(acorn.Width20)))
	fmt.Printf("noise floor 40 MHz: %.0f dBm\n", float64(acorn.NoiseFloor(acorn.Width40)))
	// Output:
	// penalty: 3.1 dB
	// noise floor 20 MHz: -101 dBm
	// noise floor 40 MHz: -98 dBm
}

// ExampleChannel_Conflicts demonstrates the coloring rules of the channel
// allocation problem: distinct 20 MHz channels don't conflict, but a bonded
// channel conflicts with each of its components.
func ExampleChannel_Conflicts() {
	c36 := acorn.NewChannel20(36)
	c40 := acorn.NewChannel20(40)
	bonded := acorn.NewChannel40(36, 40)
	fmt.Println(c36.Conflicts(c40))
	fmt.Println(c36.Conflicts(bonded))
	fmt.Println(c40.Conflicts(bonded))
	// Output:
	// false
	// true
	// true
}

// ExampleAssociate runs Algorithm 1 for one client against a configuration
// without applying the decision.
func ExampleAssociate() {
	net := acorn.NewNetwork(
		[]*acorn.AP{{ID: "AP1", Pos: acorn.Point{X: 0, Y: 0}, TxPower: 18}},
		[]*acorn.Client{{ID: "u1", Pos: acorn.Point{X: 5, Y: 3}}},
	)
	cfg := acorn.NewConfig()
	cfg.Channels["AP1"] = acorn.NewChannel20(36)
	d := acorn.Associate(net, cfg, net.Clients[0])
	fmt.Println(d.APID)
	// Output:
	// AP1
}
