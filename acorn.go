// Package acorn is the public API of the ACORN reproduction — an
// auto-configuration framework for enterprise 802.11n WLANs with channel
// bonding, after "Auto-configuration of 802.11n WLANs" (ACM CoNEXT 2010).
//
// ACORN jointly performs user association and channel allocation. Channel
// bonding (40 MHz channels) helps only links whose SNR can absorb the ≈3 dB
// per-subcarrier penalty of spreading the same transmit power over twice
// the subcarriers; a single poor client in a bonded cell drags the whole
// cell down through the 802.11 performance anomaly. ACORN therefore groups
// clients of similar link quality into the same cell (Algorithm 1, utility
// Eq. 4) and grants 40 MHz channels only to cells that profit (Algorithm 2,
// a greedy max-improvement search over the NP-complete coloring problem
// with O(1/(Δ+1)) worst-case approximation).
//
// # Quick start
//
//	net := acorn.NewNetwork(
//		[]*acorn.AP{{ID: "AP1", Pos: acorn.Point{X: 0, Y: 0}, TxPower: 18}},
//		[]*acorn.Client{{ID: "u1", Pos: acorn.Point{X: 5, Y: 3}}},
//	)
//	ctrl, err := acorn.NewController(net, 1)
//	if err != nil { ... }
//	report := ctrl.AutoConfigure(net.Clients)
//	fmt.Println(report.TotalUDP)
//
// The facade re-exports the types a consumer needs: the network model
// (wlan), the controller and its algorithms (core), the channel plan
// (spectrum), and the legacy baselines used for comparison (baseline). The
// full experiment harnesses that regenerate every table and figure of the
// paper live in internal/experiments and are driven by cmd/experiments and
// the benchmarks in bench_test.go.
package acorn

import (
	"time"

	"acorn/internal/baseline"
	"acorn/internal/core"
	"acorn/internal/rf"
	"acorn/internal/spectrum"
	"acorn/internal/stats"
	"acorn/internal/units"
	"acorn/internal/wlan"
)

// Re-exported model types.
type (
	// AP is an access point of the managed WLAN.
	AP = wlan.AP
	// Client is a WLAN user.
	Client = wlan.Client
	// Network is the deployment description (radios, geometry, band).
	Network = wlan.Network
	// Config is a complete configuration: channels plus associations.
	Config = wlan.Config
	// NetworkReport is an evaluated configuration.
	NetworkReport = wlan.NetworkReport
	// CellReport is one AP's evaluation within a NetworkReport.
	CellReport = wlan.CellReport
	// Point is a floor-plan position in meters.
	Point = rf.Point

	// Controller is the ACORN engine: admission (Algorithm 1) plus
	// periodic channel allocation (Algorithm 2).
	Controller = core.Controller
	// AssociationDecision is the outcome of Algorithm 1 for one client.
	AssociationDecision = core.AssociationDecision
	// AllocOptions tunes Algorithm 2.
	AllocOptions = core.AllocOptions
	// AllocStats reports an Algorithm 2 run.
	AllocStats = core.AllocStats
	// WidthAdapter makes the opportunistic 20/40 MHz decision for an AP
	// holding a bonded allocation (mobility scenarios).
	WidthAdapter = core.WidthAdapter

	// Channel is a basic 20 MHz or composite 40 MHz channel.
	Channel = spectrum.Channel
	// Band is the set of available channels.
	Band = spectrum.Band
	// Width is a channel width (Width20 or Width40).
	Width = spectrum.Width

	// DB and DBm are decibel ratio and absolute power types.
	DB = units.DB
	// DBm is an absolute power level in dB-milliwatts.
	DBm = units.DBm
)

// Channel widths.
const (
	Width20 = spectrum.Width20
	Width40 = spectrum.Width40
)

// DefaultPeriod is the channel-reallocation period derived from the
// association-duration trace analysis (30 minutes).
const DefaultPeriod = core.DefaultPeriod

// NewNetwork builds a WLAN with the standard defaults (12-channel 5 GHz
// band, indoor propagation, 1500-byte saturated downlink traffic).
func NewNetwork(aps []*AP, clients []*Client) *Network {
	return wlan.NewNetwork(aps, clients)
}

// NewController creates an ACORN controller over the network with a random
// initial channel assignment drawn from seed.
func NewController(n *Network, seed int64) (*Controller, error) {
	return core.NewController(n, seed)
}

// NewConfig returns an empty configuration.
func NewConfig() *Config { return wlan.NewConfig() }

// DefaultBand5GHz returns the paper's 12-channel 5 GHz plan with six
// bondable 40 MHz pairs.
func DefaultBand5GHz() *Band { return spectrum.DefaultBand5GHz() }

// NewChannel20 and NewChannel40 construct channels.
func NewChannel20(id int) Channel { return spectrum.NewChannel20(spectrum.ChannelID(id)) }

// NewChannel40 returns the bonded channel combining two 20 MHz channels.
func NewChannel40(a, b int) Channel {
	return spectrum.NewChannel40(spectrum.ChannelID(a), spectrum.ChannelID(b))
}

// Associate runs ACORN's Algorithm 1 for one client against a configuration
// without applying the decision.
func Associate(n *Network, cfg *Config, u *Client) AssociationDecision {
	return core.Associate(n, cfg, u)
}

// LegacyConfigure runs the modified Kauffmann et al. [17] baseline (delay-
// based association + greedy single-width 40 MHz channel scan) and returns
// its configuration — the comparison scheme of the paper's evaluation.
func LegacyConfigure(n *Network, clients []*Client) *Config {
	return baseline.Configure(n, clients)
}

// RandomConfigure returns one random manual configuration (random channels,
// uniform random association), as used in the Table 3 comparison.
func RandomConfigure(n *Network, seed int64) *Config {
	return baseline.RandomConfig(n, stats.NewRand(seed))
}

// NewWidthAdapter returns an adapter for an AP granted the given 40 MHz
// channel; it panics if the channel is not composite.
func NewWidthAdapter(allocated Channel) *WidthAdapter {
	return core.NewWidthAdapter(allocated)
}

// RecommendedPeriodFromMedian converts a median association duration into
// an allocation period the way Section 4.2 of the paper does.
func RecommendedPeriodFromMedian(median time.Duration) time.Duration {
	return median.Truncate(5 * time.Minute)
}
