package acorn

import (
	"acorn/internal/baseband"
	"acorn/internal/phy"
	"acorn/internal/units"
)

// PHY-layer surface of the public API: the closed-form link models ACORN's
// estimator uses, and the sample-level OFDM baseband (the WARP-hardware
// substitute) for running the paper's Section 3 experiments.

// Modulation identifies a subcarrier modulation scheme.
type Modulation = phy.Modulation

// The supported modulations.
const (
	BPSK  = phy.BPSK
	QPSK  = phy.QPSK
	DQPSK = phy.DQPSK
	QAM16 = phy.QAM16
	QAM64 = phy.QAM64
)

// BasebandMeasurement is the outcome of a baseband run: BER, PER, EVM, the
// inferred SNR and a captured RX constellation.
type BasebandMeasurement = baseband.Measurement

// BasebandConfig describes one baseband link measurement.
type BasebandConfig struct {
	// Width is the channel width (Width20 or Width40).
	Width Width
	// Modulation of the data subcarriers.
	Modulation Modulation
	// STBC selects 2×2 Alamouti transmission; false is single-antenna
	// transmission with receive combining.
	STBC bool
	// TxPower is the total transmit power in dBm.
	TxPower DBm
	// PathLoss attenuates the link.
	PathLoss DB
	// Packets and PacketBytes set the Monte-Carlo depth (the paper uses
	// 9000 × 1500 B).
	Packets, PacketBytes int
	// Seed drives bit and noise randomness.
	Seed int64
}

// MeasureBaseband transmits packets through the sample-level OFDM chain
// (modulation → IFFT → cyclic prefix → Barker preamble → AWGN channel →
// FFT → demodulation) and returns the measured statistics. It is the
// programmatic equivalent of the paper's WARP/BERMAC experiments.
func MeasureBaseband(cfg BasebandConfig) *BasebandMeasurement {
	mode := baseband.ModeSISO
	if cfg.STBC {
		mode = baseband.ModeSTBC
	}
	ch := &baseband.Channel{PathLoss: cfg.PathLoss}
	link := baseband.NewLink(baseband.NewChainConfig(cfg.Width), cfg.Modulation, mode, cfg.TxPower, ch, cfg.Seed)
	return link.Run(cfg.Packets, cfg.PacketBytes)
}

// TheoreticalBER returns the closed-form AWGN bit error rate of a
// modulation at the given per-subcarrier SNR — the overlay curve of the
// paper's Fig 3(a).
func TheoreticalBER(m Modulation, snr DB) float64 {
	return phy.UncodedBER(m, snr)
}

// BondingSNRPenalty is the per-subcarrier SNR cost (≈3 dB) of spreading the
// same transmit power over a 40 MHz channel's subcarriers instead of a
// 20 MHz channel's.
func BondingSNRPenalty() DB { return phy.BondingSNRPenalty() }

// NoiseFloor returns the thermal noise floor −174 + 10·log10(B) dBm of a
// channel of the given width (Eq. 1 of the paper).
func NoiseFloor(w Width) DBm { return phy.NoiseFloorWidth(w) }

// PathLossFor returns the path loss that lands a link's analytic
// per-subcarrier SNR at the target for the given width and Tx power —
// convenient for constructing baseband experiments at a known operating
// point.
func PathLossFor(tx DBm, targetSNR DB, w Width) DB {
	perSC := phy.SubcarrierTxPower(tx, w)
	return units.DB(perSC.Over(phy.SubcarrierNoiseFloor())) - targetSNR
}
