package acorn_test

// Integration tests at the scale of the paper's testbed and beyond,
// exercising the full pipeline through the public API.

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"acorn"
)

// buildCampus places nAPs on a grid with clientsPerAP clients each, a
// third of them behind obstructions heavy enough that bonding hurts.
func buildCampus(seed int64, nAPs, clientsPerAP int) (*acorn.Network, []*acorn.Client) {
	rng := rand.New(rand.NewSource(seed))
	var aps []*acorn.AP
	cols := 4
	for i := 0; i < nAPs; i++ {
		aps = append(aps, &acorn.AP{
			ID:      fmt.Sprintf("AP%02d", i+1),
			Pos:     acorn.Point{X: float64(i%cols) * 90, Y: float64(i/cols) * 90},
			TxPower: 18,
		})
	}
	var clients []*acorn.Client
	for i, ap := range aps {
		for j := 0; j < clientsPerAP; j++ {
			c := &acorn.Client{
				ID: fmt.Sprintf("u%02d_%02d", i+1, j+1),
				Pos: acorn.Point{
					X: ap.Pos.X + rng.Float64()*26 - 13,
					Y: ap.Pos.Y + rng.Float64()*26 - 13,
				},
			}
			if rng.Float64() < 0.33 {
				wall := acorn.DB(45 + rng.Float64()*9)
				c.ExtraLoss = map[string]acorn.DB{}
				for _, a := range aps {
					c.ExtraLoss[a.ID] = wall
				}
			}
			clients = append(clients, c)
		}
	}
	return acorn.NewNetwork(aps, clients), clients
}

func TestEnterpriseScale(t *testing.T) {
	// A 12-AP, 48-client campus: the full pipeline must finish fast,
	// produce a valid configuration, and beat both baselines.
	net, clients := buildCampus(3, 12, 4)
	start := time.Now()
	ctrl, err := acorn.NewController(net, 3)
	if err != nil {
		t.Fatal(err)
	}
	rep := ctrl.AutoConfigure(clients)
	elapsed := time.Since(start)
	if elapsed > 20*time.Second {
		t.Errorf("auto-configuration took %v — too slow for a 12-AP campus", elapsed)
	}
	cfg := ctrl.Config()
	if err := cfg.Validate(net); err != nil {
		t.Fatalf("invalid config: %v", err)
	}

	legacy := net.Evaluate(acorn.LegacyConfigure(net, clients))
	if rep.TotalUDP <= legacy.TotalUDP {
		t.Errorf("ACORN %v did not beat legacy %v at campus scale", rep.TotalUDP, legacy.TotalUDP)
	}
	bestRandom := 0.0
	for i := int64(0); i < 20; i++ {
		if r := net.Evaluate(acorn.RandomConfigure(net, 100+i)); r.TotalUDP > bestRandom {
			bestRandom = r.TotalUDP
		}
	}
	if rep.TotalUDP <= bestRandom {
		t.Errorf("ACORN %v did not beat best-of-20 random %v", rep.TotalUDP, bestRandom)
	}

	// Every AP with at least one poor-majority cell should run 20 MHz;
	// spot-check the global width mix is not degenerate.
	w20, w40 := 0, 0
	for _, ap := range net.APs {
		if cfg.Channels[ap.ID].Width == acorn.Width40 {
			w40++
		} else {
			w20++
		}
	}
	if w40 == 0 {
		t.Error("no cell bonded — implausible for a campus with good clients")
	}
	t.Logf("campus: ACORN %.1f vs legacy %.1f vs random %.1f (%d×40MHz, %d×20MHz, %v)",
		rep.TotalUDP, legacy.TotalUDP, bestRandom, w40, w20, elapsed)
}

func TestFairnessTradeoffVisible(t *testing.T) {
	// The paper trades fairness for total throughput. Quantify: ACORN's
	// Jain index may be below the legacy scheme's, but its throughput
	// must be above; and fairness must stay meaningfully positive.
	net, clients := buildCampus(9, 6, 4)
	ctrl, err := acorn.NewController(net, 9)
	if err != nil {
		t.Fatal(err)
	}
	rep := ctrl.AutoConfigure(clients)
	j := rep.FairnessIndex()
	if j <= 0.05 || j > 1 {
		t.Errorf("Jain index %v out of plausible range", j)
	}
	legacy := net.Evaluate(acorn.LegacyConfigure(net, clients))
	t.Logf("ACORN: %.1f Mb/s @ J=%.2f; legacy: %.1f Mb/s @ J=%.2f",
		rep.TotalUDP, j, legacy.TotalUDP, legacy.FairnessIndex())
	if rep.TotalUDP < legacy.TotalUDP {
		t.Errorf("throughput objective violated: %v < %v", rep.TotalUDP, legacy.TotalUDP)
	}
}

func TestEmpiricalEvaluateAgreesAtScale(t *testing.T) {
	net, clients := buildCampus(5, 6, 3)
	ctrl, err := acorn.NewController(net, 5)
	if err != nil {
		t.Fatal(err)
	}
	rep := ctrl.AutoConfigure(clients)
	emp := acorn.EmpiricalEvaluate(net, ctrl.Config(), 5, 20)
	if rep.TotalUDP == 0 || emp.TotalMbps == 0 {
		t.Fatal("degenerate evaluation")
	}
	ratio := emp.TotalMbps / rep.TotalUDP
	if ratio < 0.85 || ratio > 1.15 {
		t.Errorf("empirical/analytic ratio %v outside ±15%%", ratio)
	}
}
