package assoctrace

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"acorn/internal/stats"
)

func smallGen() Generator {
	g := DefaultGenerator()
	g.NumAPs = 40
	g.Span = 30 * 24 * time.Hour
	return g
}

func TestGenerateDeterministic(t *testing.T) {
	g := smallGen()
	a := g.Generate(3)
	b := g.Generate(3)
	if len(a) != len(b) {
		t.Fatalf("different lengths: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed produced different traces")
		}
	}
	c := g.Generate(4)
	if len(c) == len(a) {
		same := true
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
		if same {
			t.Error("different seeds produced identical traces")
		}
	}
}

func TestTraceWithinSpan(t *testing.T) {
	g := smallGen()
	for _, r := range g.Generate(1) {
		if r.Start < 0 || r.Start > g.Span {
			t.Fatalf("session start %v outside span", r.Start)
		}
		if r.Duration <= 0 {
			t.Fatalf("non-positive duration %v", r.Duration)
		}
		if r.APIndex < 0 || r.APIndex >= g.NumAPs {
			t.Fatalf("AP index %d out of range", r.APIndex)
		}
	}
}

func TestDurationStatisticsMatchPaper(t *testing.T) {
	// Fig 9: median ≈31 min, >90% of associations under 40 min.
	g := smallGen()
	durations := Durations(g.Generate(7))
	if len(durations) < 500 {
		t.Fatalf("trace too small for statistics: %d sessions", len(durations))
	}
	medianMin := stats.Median(durations) / 60
	if medianMin < 28 || medianMin > 34 {
		t.Errorf("median duration = %.1f min, want ≈31", medianMin)
	}
	under40 := stats.NewECDF(durations).At(40 * 60)
	if under40 < 0.88 {
		t.Errorf("fraction under 40 min = %.2f, want > 0.88", under40)
	}
}

func TestRecommendedPeriod(t *testing.T) {
	g := smallGen()
	period := RecommendedPeriod(g.Generate(7))
	if period != 30*time.Minute {
		t.Errorf("recommended period = %v, want 30m (paper's choice)", period)
	}
	if got := RecommendedPeriod(nil); got != 30*time.Minute {
		t.Errorf("empty-trace fallback = %v, want 30m", got)
	}
}

func TestSampleDurationPositive(t *testing.T) {
	g := smallGen()
	rng := stats.NewRand(11)
	for i := 0; i < 1000; i++ {
		if d := g.SampleDuration(rng); d <= 0 {
			t.Fatalf("non-positive sampled duration %v", d)
		}
	}
}

func TestLognormalParamsDegenerate(t *testing.T) {
	g := smallGen()
	g.P90Duration = g.MedianDuration // degenerate: σ would be ≤ 0
	mu, sigma := g.lognormalParams()
	if sigma <= 0 {
		t.Errorf("sigma = %v, want clamped positive", sigma)
	}
	_ = mu
}

func TestCSVRoundTrip(t *testing.T) {
	g := smallGen()
	g.NumAPs = 5
	g.Span = 48 * time.Hour
	recs := g.Generate(3)
	var buf bytes.Buffer
	if err := WriteCSV(&buf, recs); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(recs) {
		t.Fatalf("round trip length %d vs %d", len(back), len(recs))
	}
	for i := range recs {
		if back[i].APIndex != recs[i].APIndex {
			t.Fatalf("record %d AP mismatch", i)
		}
		if d := back[i].Start - recs[i].Start; d > time.Microsecond || d < -time.Microsecond {
			t.Fatalf("record %d start drift %v", i, d)
		}
		if d := back[i].Duration - recs[i].Duration; d > time.Microsecond || d < -time.Microsecond {
			t.Fatalf("record %d duration drift %v", i, d)
		}
	}
}

func TestReadCSVErrors(t *testing.T) {
	cases := []string{
		"",               // no header
		"a,b,c\n1,2,3\n", // wrong header
		"ap_index,start_seconds,duration_seconds\nx,0,1", // bad ap
		"ap_index,start_seconds,duration_seconds\n-1,0,1",
		"ap_index,start_seconds,duration_seconds\n0,-5,1",
		"ap_index,start_seconds,duration_seconds\n0,0,0", // zero duration
		"ap_index,start_seconds,duration_seconds\n0,0\n", // short row
	}
	for i, c := range cases {
		if _, err := ReadCSV(strings.NewReader(c)); err == nil {
			t.Errorf("case %d accepted: %q", i, c)
		}
	}
	// Header only is a valid empty trace.
	recs, err := ReadCSV(strings.NewReader("ap_index,start_seconds,duration_seconds\n"))
	if err != nil || len(recs) != 0 {
		t.Errorf("header-only trace: %v, %d records", err, len(recs))
	}
}
