// Package assoctrace substitutes for the CRAWDAD ile-sans-fil hotspot trace
// the paper mines in Section 4.2: association records from 206 commercial
// APs over more than three years, of which the paper uses the association
// durations. Fig 9's published statistics — a median duration of about 31
// minutes with more than 90% of associations under 40 minutes — calibrate a
// lognormal duration model here; the generator then produces per-AP session
// streams with those marginals.
package assoctrace

import (
	"math"
	"math/rand"
	"time"

	"acorn/internal/stats"
)

// Record is one association session.
type Record struct {
	APIndex  int
	Start    time.Duration // offset from trace start
	Duration time.Duration
}

// Generator produces synthetic association traces.
type Generator struct {
	// NumAPs is the number of APs in the trace (the paper's dataset has
	// 206).
	NumAPs int
	// Span is the covered time period (the paper's spans >3 years).
	Span time.Duration
	// MedianDuration and P90Duration pin the lognormal duration model.
	MedianDuration time.Duration
	P90Duration    time.Duration
	// MeanSessionsPerAPDay sets arrival intensity.
	MeanSessionsPerAPDay float64
}

// DefaultGenerator returns a generator calibrated to the paper's Fig 9
// statistics: median ≈31 min, >90% of associations shorter than 40 min.
func DefaultGenerator() Generator {
	return Generator{
		NumAPs:               206,
		Span:                 3 * 365 * 24 * time.Hour,
		MedianDuration:       31 * time.Minute,
		P90Duration:          39 * time.Minute,
		MeanSessionsPerAPDay: 2, // keeps default traces a manageable size
	}
}

// lognormalParams derives (μ, σ) of the lognormal from the median and the
// 90th percentile: median = e^μ, P90 = e^(μ+1.2816·σ).
func (g Generator) lognormalParams() (mu, sigma float64) {
	mu = math.Log(g.MedianDuration.Seconds())
	const z90 = 1.2815515655446004
	sigma = (math.Log(g.P90Duration.Seconds()) - mu) / z90
	if sigma <= 0 {
		sigma = 0.01
	}
	return mu, sigma
}

// SampleDuration draws one association duration.
func (g Generator) SampleDuration(rng *rand.Rand) time.Duration {
	mu, sigma := g.lognormalParams()
	d := math.Exp(mu + sigma*rng.NormFloat64())
	return time.Duration(d * float64(time.Second))
}

// Generate produces a full synthetic trace with the given seed. Sessions
// arrive per AP as a Poisson process with the configured intensity.
func (g Generator) Generate(seed int64) []Record {
	rng := stats.NewRand(seed)
	lambdaPerSec := g.MeanSessionsPerAPDay / (24 * 3600)
	var recs []Record
	for ap := 0; ap < g.NumAPs; ap++ {
		t := 0.0
		for {
			// Exponential inter-arrival.
			t += rng.ExpFloat64() / lambdaPerSec
			if t > g.Span.Seconds() {
				break
			}
			recs = append(recs, Record{
				APIndex:  ap,
				Start:    time.Duration(t * float64(time.Second)),
				Duration: g.SampleDuration(rng),
			})
		}
	}
	return recs
}

// Durations extracts the session durations in seconds, the series Fig 9
// plots as a CDF.
func Durations(recs []Record) []float64 {
	out := make([]float64, len(recs))
	for i, r := range recs {
		out[i] = r.Duration.Seconds()
	}
	return out
}

// RecommendedPeriod derives the channel-allocation periodicity from a
// trace the way Section 4.2 does: the median association duration, rounded
// down to the nearest 5 minutes (the paper lands on 30 minutes from a
// ≈31-minute median). Running allocation much more often pays repeated
// switching overhead inside a typical association; much less often lets the
// client population turn over between runs.
func RecommendedPeriod(recs []Record) time.Duration {
	if len(recs) == 0 {
		return 30 * time.Minute
	}
	med := stats.Median(Durations(recs))
	period := time.Duration(med * float64(time.Second))
	return period.Truncate(5 * time.Minute)
}
