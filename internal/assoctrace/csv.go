package assoctrace

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"time"
)

// CSV interchange for association traces, so a real dataset (e.g. the
// CRAWDAD ile-sans-fil trace the paper mines) can replace the synthetic
// generator. The format is three columns with a header:
//
//	ap_index,start_seconds,duration_seconds
//
// start is the offset from the trace beginning; both columns accept
// fractional seconds.

// WriteCSV serializes records in the interchange format.
func WriteCSV(w io.Writer, recs []Record) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"ap_index", "start_seconds", "duration_seconds"}); err != nil {
		return err
	}
	for _, r := range recs {
		row := []string{
			strconv.Itoa(r.APIndex),
			strconv.FormatFloat(r.Start.Seconds(), 'f', -1, 64),
			strconv.FormatFloat(r.Duration.Seconds(), 'f', -1, 64),
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV parses the interchange format, validating every row: AP indices
// must be nonnegative, starts nonnegative, durations positive. The header
// row is required.
func ReadCSV(r io.Reader) ([]Record, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = 3
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("assoctrace: reading header: %w", err)
	}
	if header[0] != "ap_index" || header[1] != "start_seconds" || header[2] != "duration_seconds" {
		return nil, fmt.Errorf("assoctrace: unexpected header %v", header)
	}
	var recs []Record
	for line := 2; ; line++ {
		row, err := cr.Read()
		if err == io.EOF {
			return recs, nil
		}
		if err != nil {
			return nil, fmt.Errorf("assoctrace: line %d: %w", line, err)
		}
		ap, err := strconv.Atoi(row[0])
		if err != nil || ap < 0 {
			return nil, fmt.Errorf("assoctrace: line %d: bad ap_index %q", line, row[0])
		}
		start, err := strconv.ParseFloat(row[1], 64)
		if err != nil || start < 0 {
			return nil, fmt.Errorf("assoctrace: line %d: bad start %q", line, row[1])
		}
		dur, err := strconv.ParseFloat(row[2], 64)
		if err != nil || dur <= 0 {
			return nil, fmt.Errorf("assoctrace: line %d: bad duration %q", line, row[2])
		}
		recs = append(recs, Record{
			APIndex:  ap,
			Start:    time.Duration(start * float64(time.Second)),
			Duration: time.Duration(dur * float64(time.Second)),
		})
	}
}
