package topofile

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const valid = `{
  "aps": [
    {"id": "AP1", "x": 0, "y": 0, "txPower": 18},
    {"id": "AP2", "x": 100, "y": 0, "txPower": 15}
  ],
  "clients": [
    {"id": "u1", "x": 5, "y": 3},
    {"id": "u2", "x": 95, "y": -2, "extraLoss": {"AP1": 20, "AP2": 10}}
  ]
}`

func TestParseValid(t *testing.T) {
	n, clients, err := Parse([]byte(valid))
	if err != nil {
		t.Fatal(err)
	}
	if len(n.APs) != 2 || len(clients) != 2 {
		t.Fatalf("parsed %d APs, %d clients", len(n.APs), len(clients))
	}
	if n.AP("AP2").TxPower != 15 {
		t.Errorf("AP2 power = %v", n.AP("AP2").TxPower)
	}
	u2 := n.Client("u2")
	if u2.ExtraLoss["AP1"] != 20 || u2.ExtraLoss["AP2"] != 10 {
		t.Errorf("u2 extra loss = %v", u2.ExtraLoss)
	}
	if n.Client("u1").ExtraLoss != nil {
		t.Error("u1 should have no extra loss")
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name, in, wantSub string
	}{
		{"garbage", "not json", "topofile"},
		{"no aps", `{"clients": []}`, "no APs"},
		{"empty ap id", `{"aps": [{"id": "", "x": 0, "y": 0, "txPower": 18}]}`, "empty id"},
		{"dup ap", `{"aps": [{"id": "A", "txPower": 18}, {"id": "A", "txPower": 18}]}`, "duplicate AP"},
		{"bad power", `{"aps": [{"id": "A", "txPower": 99}]}`, "out of range"},
		{"empty client id", `{"aps": [{"id": "A", "txPower": 18}], "clients": [{"id": ""}]}`, "empty id"},
		{"dup client", `{"aps": [{"id": "A", "txPower": 18}], "clients": [{"id": "u"}, {"id": "u"}]}`, "duplicate client"},
		{"ghost ap ref", `{"aps": [{"id": "A", "txPower": 18}], "clients": [{"id": "u", "extraLoss": {"B": 5}}]}`, "unknown AP"},
		{"negative loss", `{"aps": [{"id": "A", "txPower": 18}], "clients": [{"id": "u", "extraLoss": {"A": -5}}]}`, "negative"},
		{"unknown field", `{"aps": [{"id": "A", "txPower": 18, "bogus": 1}]}`, "bogus"},
	}
	for _, c := range cases {
		_, _, err := Parse([]byte(c.in))
		if err == nil {
			t.Errorf("%s: accepted", c.name)
			continue
		}
		if !strings.Contains(err.Error(), c.wantSub) {
			t.Errorf("%s: error %q missing %q", c.name, err, c.wantSub)
		}
	}
}

func TestLoad(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "topo.json")
	if err := os.WriteFile(path, []byte(valid), 0o644); err != nil {
		t.Fatal(err)
	}
	n, _, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(n.APs) != 2 {
		t.Errorf("loaded %d APs", len(n.APs))
	}
	if _, _, err := Load(filepath.Join(dir, "missing.json")); err == nil {
		t.Error("missing file accepted")
	}
	bad := filepath.Join(dir, "bad.json")
	os.WriteFile(bad, []byte("{"), 0o644)
	if _, _, err := Load(bad); err == nil || !strings.Contains(err.Error(), "bad.json") {
		t.Errorf("bad file error should name the file: %v", err)
	}
}
