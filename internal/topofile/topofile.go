// Package topofile loads WLAN topology descriptions from JSON, the input
// format of cmd/acornd:
//
//	{
//	  "aps":     [{"id": "AP1", "x": 0, "y": 0, "txPower": 18}, ...],
//	  "clients": [{"id": "u1", "x": 5, "y": 3,
//	               "extraLoss": {"AP1": 20}}, ...]
//	}
//
// Parsing is strict: unknown fields are rejected, IDs must be unique and
// non-empty, transmit powers must be plausible, and extra-loss references
// must point at declared APs.
package topofile

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"

	"acorn/internal/rf"
	"acorn/internal/units"
	"acorn/internal/wlan"
)

type fileFormat struct {
	APs     []apEntry     `json:"aps"`
	Clients []clientEntry `json:"clients"`
}

type apEntry struct {
	ID      string  `json:"id"`
	X       float64 `json:"x"`
	Y       float64 `json:"y"`
	TxPower float64 `json:"txPower"`
}

type clientEntry struct {
	ID        string             `json:"id"`
	X         float64            `json:"x"`
	Y         float64            `json:"y"`
	ExtraLoss map[string]float64 `json:"extraLoss"`
}

// Load reads and parses a topology file.
func Load(path string) (*wlan.Network, []*wlan.Client, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, nil, err
	}
	n, cs, err := Parse(data)
	if err != nil {
		return nil, nil, fmt.Errorf("%s: %w", path, err)
	}
	return n, cs, nil
}

// Parse decodes a topology description from JSON bytes.
func Parse(data []byte) (*wlan.Network, []*wlan.Client, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var tf fileFormat
	if err := dec.Decode(&tf); err != nil {
		return nil, nil, fmt.Errorf("topofile: %w", err)
	}
	if len(tf.APs) == 0 {
		return nil, nil, fmt.Errorf("topofile: no APs declared")
	}
	apIDs := map[string]bool{}
	var aps []*wlan.AP
	for i, a := range tf.APs {
		if a.ID == "" {
			return nil, nil, fmt.Errorf("topofile: ap[%d] has empty id", i)
		}
		if apIDs[a.ID] {
			return nil, nil, fmt.Errorf("topofile: duplicate AP id %q", a.ID)
		}
		apIDs[a.ID] = true
		if a.TxPower < -10 || a.TxPower > 36 {
			return nil, nil, fmt.Errorf("topofile: AP %s txPower %v dBm out of range [-10, 36]", a.ID, a.TxPower)
		}
		aps = append(aps, &wlan.AP{
			ID:      a.ID,
			Pos:     rf.Point{X: a.X, Y: a.Y},
			TxPower: units.DBm(a.TxPower),
		})
	}
	clientIDs := map[string]bool{}
	var clients []*wlan.Client
	for i, c := range tf.Clients {
		if c.ID == "" {
			return nil, nil, fmt.Errorf("topofile: client[%d] has empty id", i)
		}
		if clientIDs[c.ID] {
			return nil, nil, fmt.Errorf("topofile: duplicate client id %q", c.ID)
		}
		clientIDs[c.ID] = true
		cl := &wlan.Client{ID: c.ID, Pos: rf.Point{X: c.X, Y: c.Y}}
		if len(c.ExtraLoss) > 0 {
			cl.ExtraLoss = make(map[string]units.DB, len(c.ExtraLoss))
			for ap, db := range c.ExtraLoss {
				if !apIDs[ap] {
					return nil, nil, fmt.Errorf("topofile: client %s extraLoss references unknown AP %q", c.ID, ap)
				}
				if db < 0 {
					return nil, nil, fmt.Errorf("topofile: client %s extraLoss[%s] negative", c.ID, ap)
				}
				cl.ExtraLoss[ap] = units.DB(db)
			}
		}
		clients = append(clients, cl)
	}
	n := wlan.NewNetwork(aps, clients)
	if err := n.Validate(); err != nil {
		return nil, nil, fmt.Errorf("topofile: %w", err)
	}
	return n, clients, nil
}
