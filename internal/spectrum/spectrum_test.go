package spectrum

import (
	"testing"
	"testing/quick"

	"acorn/internal/units"
)

func TestWidthHertz(t *testing.T) {
	if Width20.Hertz() != units.Bandwidth20MHz {
		t.Error("Width20 bandwidth wrong")
	}
	if Width40.Hertz() != units.Bandwidth40MHz {
		t.Error("Width40 bandwidth wrong")
	}
}

func TestNewChannel40Ordering(t *testing.T) {
	a := NewChannel40(36, 40)
	b := NewChannel40(40, 36)
	if a != b {
		t.Errorf("NewChannel40 not order-insensitive: %v vs %v", a, b)
	}
	if a.Primary != 36 || a.Secondary != 40 {
		t.Errorf("components not sorted: %v", a)
	}
}

func TestConflicts(t *testing.T) {
	c36 := NewChannel20(36)
	c40 := NewChannel20(40)
	c44 := NewChannel20(44)
	b3640 := NewChannel40(36, 40)
	b4448 := NewChannel40(44, 48)

	cases := []struct {
		a, b Channel
		want bool
	}{
		{c36, c36, true},                    // same basic color
		{c36, c40, false},                   // distinct basic colors don't conflict
		{c36, b3640, true},                  // basic conflicts with composite containing it
		{c40, b3640, true},                  // either component
		{c44, b3640, false},                 // unrelated basic
		{b3640, b4448, false},               // disjoint composites
		{b3640, b3640, true},                // same composite
		{b3640, NewChannel40(40, 44), true}, // overlapping composites
		{Channel{}, c36, false},             // unassigned never conflicts
	}
	for _, c := range cases {
		if got := c.a.Conflicts(c.b); got != c.want {
			t.Errorf("%v.Conflicts(%v) = %v, want %v", c.a, c.b, got, c.want)
		}
		if got := c.b.Conflicts(c.a); got != c.want {
			t.Errorf("conflict not symmetric for %v, %v", c.a, c.b)
		}
	}
}

func TestConflictSymmetryProperty(t *testing.T) {
	ids := []ChannelID{36, 40, 44, 48, 52}
	mk := func(i, j uint8) Channel {
		a := ids[int(i)%len(ids)]
		b := ids[int(j)%len(ids)]
		if a == b {
			return NewChannel20(a)
		}
		return NewChannel40(a, b)
	}
	f := func(i, j, k, l uint8) bool {
		x, y := mk(i, j), mk(k, l)
		return x.Conflicts(y) == y.Conflicts(x)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDefaultBand(t *testing.T) {
	b := DefaultBand5GHz()
	if got := b.NumChannels20(); got != 12 {
		t.Fatalf("default band has %d channels, want 12", got)
	}
	ch40 := b.Channels40()
	if len(ch40) != 6 {
		t.Fatalf("default band has %d bonded channels, want 6", len(ch40))
	}
	if ch40[0] != NewChannel40(36, 40) {
		t.Errorf("first bonded channel = %v, want 36+40", ch40[0])
	}
	if got := len(b.AllChannels()); got != 18 {
		t.Errorf("AllChannels = %d, want 18", got)
	}
}

func TestBandSubset(t *testing.T) {
	b := DefaultBand5GHz()
	s := b.Subset(4)
	if s.NumChannels20() != 4 {
		t.Fatalf("Subset(4) has %d channels", s.NumChannels20())
	}
	if got := len(s.Channels40()); got != 2 {
		t.Errorf("Subset(4) bonded channels = %d, want 2", got)
	}
	// Subset larger than the band clamps.
	if b.Subset(100).NumChannels20() != 12 {
		t.Error("oversized subset should clamp")
	}
	// Odd subsets bond only complete pairs.
	if got := len(b.Subset(3).Channels40()); got != 1 {
		t.Errorf("Subset(3) bonded channels = %d, want 1", got)
	}
}

func TestBandContains(t *testing.T) {
	b := DefaultBand5GHz()
	if !b.Contains(NewChannel20(36)) {
		t.Error("band should contain channel 36")
	}
	if b.Contains(NewChannel20(149)) {
		t.Error("band should not contain channel 149")
	}
	if !b.Contains(NewChannel40(36, 40)) {
		t.Error("band should contain bonded 36+40")
	}
	if b.Contains(NewChannel40(36, 149)) {
		t.Error("bonded channel with foreign component should be rejected")
	}
	if b.Contains(Channel{}) {
		t.Error("zero channel is never contained")
	}
}

func TestNewBandDedupSort(t *testing.T) {
	b := NewBand([]ChannelID{44, 36, 44, 40})
	if b.NumChannels20() != 3 {
		t.Fatalf("dedup failed: %d channels", b.NumChannels20())
	}
	chs := b.Channels20()
	if chs[0].Primary != 36 || chs[2].Primary != 44 {
		t.Errorf("channels not sorted: %v", chs)
	}
}

func TestPrimaryOnly(t *testing.T) {
	b := NewChannel40(36, 40)
	p := b.PrimaryOnly()
	if p.Width != Width20 || p.Primary != 36 {
		t.Errorf("PrimaryOnly = %v, want 20MHz{36}", p)
	}
	c := NewChannel20(44)
	if c.PrimaryOnly() != c {
		t.Error("PrimaryOnly of a basic channel should be itself")
	}
	// Falling back to the primary never widens the conflict set.
	if !p.Conflicts(b) {
		t.Error("primary must conflict with its own composite")
	}
}

func TestComponents(t *testing.T) {
	if got := NewChannel20(36).Components(); len(got) != 1 || got[0] != 36 {
		t.Errorf("Components(20MHz) = %v", got)
	}
	if got := NewChannel40(36, 40).Components(); len(got) != 2 {
		t.Errorf("Components(40MHz) = %v", got)
	}
}
