// Package spectrum models the 5 GHz channel plan ACORN allocates from: the
// set of 20 MHz channels, the 40 MHz channels formed by bonding two adjacent
// 20 MHz channels, and the conflict relation between them.
//
// In the paper's graph-coloring formulation (Section 4.2), every 20 MHz
// channel is a "basic color" c_i and every bonded 40 MHz channel is a
// "composite color" {c_i, c_j}. Two colors conflict iff they share a basic
// component: c_i conflicts with c_i and with {c_i, c_j}, while c_i and c_j
// do not conflict with each other. Channel.Conflicts implements exactly that
// relation.
package spectrum

import (
	"fmt"
	"sort"

	"acorn/internal/units"
)

// Width is the channel bandwidth: 20 MHz, or 40 MHz when channel bonding is
// active.
type Width int

// The two channel widths 802.11n supports.
const (
	Width20 Width = 20
	Width40 Width = 40
)

// Hertz returns the bandwidth in Hz.
func (w Width) Hertz() units.Hertz {
	switch w {
	case Width40:
		return units.Bandwidth40MHz
	default:
		return units.Bandwidth20MHz
	}
}

// String implements fmt.Stringer.
func (w Width) String() string { return fmt.Sprintf("%d MHz", int(w)) }

// ChannelID is the IEEE channel number of a 20 MHz channel (36, 40, 44, …).
type ChannelID int

// Channel is a basic (20 MHz) or composite (40 MHz) channel. For a 20 MHz
// channel Secondary is zero. For a 40 MHz channel Primary and Secondary are
// the two bonded 20 MHz components, Primary < Secondary.
//
// Channel is a comparable value type so it can key maps directly.
type Channel struct {
	Width     Width
	Primary   ChannelID
	Secondary ChannelID
}

// NewChannel20 returns the basic 20 MHz channel with the given IEEE number.
func NewChannel20(id ChannelID) Channel {
	return Channel{Width: Width20, Primary: id}
}

// NewChannel40 returns the composite 40 MHz channel bonding the two given
// 20 MHz channels. The components are stored in ascending order, so
// NewChannel40(40, 36) == NewChannel40(36, 40).
func NewChannel40(a, b ChannelID) Channel {
	if a > b {
		a, b = b, a
	}
	return Channel{Width: Width40, Primary: a, Secondary: b}
}

// IsZero reports whether c is the zero Channel (no channel assigned).
func (c Channel) IsZero() bool { return c.Width == 0 }

// Components returns the 20 MHz channels c occupies: one for a basic
// channel, two for a composite one.
func (c Channel) Components() []ChannelID {
	if c.Width == Width40 {
		return []ChannelID{c.Primary, c.Secondary}
	}
	return []ChannelID{c.Primary}
}

// PrimaryOnly returns the 20 MHz channel an AP falls back to when it
// opportunistically stops bonding (Section 5.2, mobility experiments). For a
// basic channel it returns c itself.
func (c Channel) PrimaryOnly() Channel { return NewChannel20(c.Primary) }

// Conflicts reports whether two channels interfere, i.e. share at least one
// 20 MHz component. Two distinct basic channels never conflict; a basic
// channel conflicts with any composite channel containing it; two composite
// channels conflict when their component sets intersect.
func (c Channel) Conflicts(o Channel) bool {
	if c.IsZero() || o.IsZero() {
		return false
	}
	for _, a := range c.Components() {
		for _, b := range o.Components() {
			if a == b {
				return true
			}
		}
	}
	return false
}

// String implements fmt.Stringer.
func (c Channel) String() string {
	if c.IsZero() {
		return "unassigned"
	}
	if c.Width == Width40 {
		return fmt.Sprintf("40MHz{%d+%d}", c.Primary, c.Secondary)
	}
	return fmt.Sprintf("20MHz{%d}", c.Primary)
}

// Band is a set of available 20 MHz channels together with the bonding plan
// that pairs adjacent channels into 40 MHz channels.
type Band struct {
	ids []ChannelID
}

// DefaultBand5GHz returns the 12-channel 5 GHz plan the paper's testbed uses
// ("we employ all the twelve 20MHz channels available in the 5GHz band").
// Consecutive plan entries (36+40, 44+48, …) bond into six 40 MHz channels.
func DefaultBand5GHz() *Band {
	return NewBand([]ChannelID{36, 40, 44, 48, 52, 56, 60, 64, 100, 104, 108, 112})
}

// NewBand builds a band from the given 20 MHz channel numbers. The slice is
// copied and sorted; duplicates are removed. Bonding pairs channel 2i with
// channel 2i+1 in the sorted plan, matching the IEEE 5 GHz pairing when the
// plan holds the standard channel numbers.
func NewBand(ids []ChannelID) *Band {
	sorted := append([]ChannelID(nil), ids...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	out := sorted[:0]
	var prev ChannelID = -1
	for _, id := range sorted {
		if id != prev {
			out = append(out, id)
			prev = id
		}
	}
	return &Band{ids: out}
}

// Subset returns a band containing only the first n 20 MHz channels of b.
// The Fig 14 approximation-ratio experiment uses Subset(2), Subset(4) and
// Subset(6) to vary channel availability.
func (b *Band) Subset(n int) *Band {
	if n > len(b.ids) {
		n = len(b.ids)
	}
	return NewBand(b.ids[:n])
}

// NumChannels20 returns the number of available 20 MHz channels.
func (b *Band) NumChannels20() int { return len(b.ids) }

// Channels20 returns all basic 20 MHz channels in the band.
func (b *Band) Channels20() []Channel {
	chs := make([]Channel, 0, len(b.ids))
	for _, id := range b.ids {
		chs = append(chs, NewChannel20(id))
	}
	return chs
}

// Channels40 returns all composite 40 MHz channels the band supports: each
// pair (plan[2i], plan[2i+1]) bonds when both components are present.
func (b *Band) Channels40() []Channel {
	var chs []Channel
	for i := 0; i+1 < len(b.ids); i += 2 {
		chs = append(chs, NewChannel40(b.ids[i], b.ids[i+1]))
	}
	return chs
}

// AllChannels returns every basic and composite channel in the band — the
// color set Ch of the allocation problem.
func (b *Band) AllChannels() []Channel {
	return append(b.Channels20(), b.Channels40()...)
}

// Contains reports whether the given channel can be used within this band,
// i.e. all its 20 MHz components belong to the plan.
func (b *Band) Contains(c Channel) bool {
	for _, comp := range c.Components() {
		found := false
		for _, id := range b.ids {
			if id == comp {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return !c.IsZero()
}
