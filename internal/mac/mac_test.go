package mac

import (
	"math"
	"testing"
	"testing/quick"
)

func TestFrameOverheadPositive(t *testing.T) {
	oh := FrameOverhead()
	// DIFS + 7.5 slots + preamble + SIFS + ACK ≈ 178 µs.
	if oh < 150e-6 || oh > 220e-6 {
		t.Errorf("FrameOverhead = %v s, want ≈178 µs", oh)
	}
}

func TestFrameAirtimeDecreasesWithRate(t *testing.T) {
	t1 := FrameAirtime(1500, 6.5)
	t2 := FrameAirtime(1500, 65)
	t3 := FrameAirtime(1500, 270)
	if !(t1 > t2 && t2 > t3) {
		t.Errorf("airtime not decreasing with rate: %v %v %v", t1, t2, t3)
	}
	if !math.IsInf(FrameAirtime(1500, 0), 1) {
		t.Error("zero rate should give infinite airtime")
	}
}

func TestExpectedAttempts(t *testing.T) {
	if got := ExpectedAttempts(0); got != 1 {
		t.Errorf("ExpectedAttempts(0) = %v, want 1", got)
	}
	if got := ExpectedAttempts(1); got != MaxRetries+1 {
		t.Errorf("ExpectedAttempts(1) = %v, want %d", got, MaxRetries+1)
	}
	// PER 0.5: E ≈ (1−0.5^8)/0.5 ≈ 1.992.
	if got := ExpectedAttempts(0.5); math.Abs(got-1.992) > 0.01 {
		t.Errorf("ExpectedAttempts(0.5) = %v, want ≈1.992", got)
	}
}

func TestExpectedAttemptsMonotone(t *testing.T) {
	f := func(a, b uint16) bool {
		x := float64(a) / 65535
		y := float64(b) / 65535
		if x > y {
			x, y = y, x
		}
		return ExpectedAttempts(x) <= ExpectedAttempts(y)+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDeliveryProbability(t *testing.T) {
	if got := DeliveryProbability(0); got != 1 {
		t.Errorf("DeliveryProbability(0) = %v", got)
	}
	if got := DeliveryProbability(1); got != 0 {
		t.Errorf("DeliveryProbability(1) = %v", got)
	}
	// With 8 attempts at PER 0.5: 1 − 1/256.
	if got := DeliveryProbability(0.5); math.Abs(got-(1-1.0/256)) > 1e-9 {
		t.Errorf("DeliveryProbability(0.5) = %v", got)
	}
}

func TestClientDelayReciprocalOfCleanGoodput(t *testing.T) {
	// On a clean link the delay is airtime per Mbit.
	d := ClientDelay(1500, 65, 0)
	goodput := 1 / d
	if goodput < 40 || goodput > 65 {
		t.Errorf("clean 65 Mbps goodput = %v, want between 40 and 65", goodput)
	}
	// Loss inflates delay.
	if ClientDelay(1500, 65, 0.5) <= d {
		t.Error("lossy link should have larger delay")
	}
	if got := ClientDelay(1500, 65, 1); got != MaxClientDelay {
		t.Errorf("dead link delay = %v, want the MaxClientDelay cap", got)
	}
}

func TestCellAnomaly(t *testing.T) {
	// One fast (d=0.01 s/Mbit ⇒ 100 Mbps alone) and one slow client
	// (d=0.2 ⇒ 5 Mbps alone): both get the same per-client throughput,
	// dominated by the slow one — the performance anomaly.
	cell := Cell{Delays: []float64{0.01, 0.2}, AccessShare: 1}
	per := cell.PerClientThroughput()
	want := 1 / 0.21
	if math.Abs(per-want) > 1e-9 {
		t.Errorf("per-client throughput = %v, want %v", per, want)
	}
	if agg := cell.AggregateThroughput(); math.Abs(agg-2*want) > 1e-9 {
		t.Errorf("aggregate = %v, want %v", agg, 2*want)
	}
	// Removing the slow client quadruples-plus the fast one's share.
	solo := Cell{Delays: []float64{0.01}, AccessShare: 1}
	if solo.PerClientThroughput() <= 10*per {
		t.Errorf("fast client alone %v should vastly exceed anomaly-bound %v",
			solo.PerClientThroughput(), per)
	}
}

func TestCellAccessShare(t *testing.T) {
	c1 := Cell{Delays: []float64{0.1}, AccessShare: 1}
	c3 := Cell{Delays: []float64{0.1}, AccessShare: 1.0 / 3}
	if math.Abs(c1.PerClientThroughput()-3*c3.PerClientThroughput()) > 1e-9 {
		t.Error("access share should scale throughput linearly")
	}
}

func TestCellEdgeCases(t *testing.T) {
	if (Cell{}).PerClientThroughput() != 0 {
		t.Error("empty cell should have zero throughput")
	}
	dead := Cell{Delays: []float64{MaxClientDelay}, AccessShare: 1}
	if dead.PerClientThroughput() > 0.01 {
		t.Error("cell with only a dead client should collapse to ~0")
	}
}

func TestCellAggregateAnomalyProperty(t *testing.T) {
	// Aggregate throughput never exceeds K × the best client's solo rate
	// and never falls below K × the worst client's share.
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		delays := make([]float64, 0, len(raw))
		for _, r := range raw {
			delays = append(delays, 0.001+float64(r)/65535)
		}
		cell := Cell{Delays: delays, AccessShare: 1}
		agg := cell.AggregateThroughput()
		k := float64(len(delays))
		minD, maxD := delays[0], delays[0]
		for _, d := range delays {
			minD = math.Min(minD, d)
			maxD = math.Max(maxD, d)
		}
		return agg <= k/(k*minD)+1e-9 && agg >= k/(k*maxD)-1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTCPEfficiency(t *testing.T) {
	clean := TCPEfficiency(0)
	if math.Abs(clean-TCPBaseEfficiency) > 1e-9 {
		t.Errorf("clean-link TCP efficiency = %v, want %v", clean, TCPBaseEfficiency)
	}
	// Monotone nonincreasing in PER.
	prev := clean
	for per := 0.0; per <= 1.0; per += 0.01 {
		e := TCPEfficiency(per)
		if e > prev+1e-12 {
			t.Fatalf("TCP efficiency increased at PER %v", per)
		}
		prev = e
	}
	// TCP is more loss-sensitive than UDP: at a PER where UDP retries
	// still deliver most packets, TCP already loses a chunk.
	if TCPEfficiency(0.3) > 0.7*TCPBaseEfficiency {
		t.Errorf("TCP at PER 0.3 = %v, should be noticeably degraded", TCPEfficiency(0.3))
	}
	// Clamping.
	if TCPEfficiency(-1) != clean {
		t.Error("negative PER should clamp to 0")
	}
	if TCPEfficiency(2) != TCPEfficiency(1) {
		t.Error("PER above 1 should clamp")
	}
}
