package mac

import "math"

// TCPEfficiency returns the multiplicative factor that converts a saturated
// UDP throughput into the throughput an unsaturated TCP flow achieves over
// the same link, as a function of the link's raw PER.
//
// The paper observes (Section 3.2) that "TCP is more sensitive to packet
// losses and as a result even small PER increments can significantly degrade
// performance": 30% of its TCP trials prefer 20 MHz versus only 10% of UDP
// trials, and Table 3's TCP network throughputs run ~30% below UDP. The
// model combines:
//
//   - a fixed protocol efficiency (ACK traffic, window ramp-up) of
//     TCPBaseEfficiency, and
//   - a congestion-response penalty that amplifies residual loss: losses
//     that survive MAC retries halve the window, so the factor decays with
//     the residual loss rate following the Mathis 1/√p law, normalized to 1
//     at zero loss.
func TCPEfficiency(per float64) float64 {
	if per < 0 {
		per = 0
	}
	if per > 1 {
		per = 1
	}
	// Residual loss after MAC-layer retransmissions.
	residual := math.Pow(per, float64(MaxRetries+1))
	// Window-halving penalty: each residual loss costs roughly half a
	// bandwidth-delay product. The constant maps loss rate to achievable
	// fraction of the link; calibrated so a 1e-3 residual loss costs
	// ~25% and heavy raw PER (>0.5) collapses throughput.
	penalty := 1 / (1 + tcpLossSensitivity*math.Sqrt(residual))
	// Raw PER also stretches delivery latency (retransmission delay),
	// which an ACK-clocked sender feels as a longer RTT.
	latency := 1 / (1 + tcpLatencySensitivity*per)
	return TCPBaseEfficiency * penalty * latency
}

const (
	// TCPBaseEfficiency is TCP goodput over UDP goodput on a clean link.
	TCPBaseEfficiency = 0.80
	// tcpLossSensitivity scales the Mathis-style residual-loss penalty.
	tcpLossSensitivity = 220.0
	// tcpLatencySensitivity scales the retransmission-latency penalty.
	tcpLatencySensitivity = 0.9
)
