// Package mac models the 802.11 DCF at the granularity ACORN needs: the
// fixed per-frame MAC/PHY overheads, the expected airtime to deliver a
// packet (including retransmissions), the per-client transmission delay d_cl
// and aggregate transmission delay ATD the paper's beacons carry, and the
// performance-anomaly throughput law — DCF grants equal long-term access
// opportunities, so a cell's aggregate throughput is set by the sum of its
// clients' per-packet airtimes, and one slow client drags everyone down
// (Heusse et al., the effect Sections 3.2 and 4 of the paper lean on).
package mac

import "math"

// 802.11n/5 GHz MAC timing constants (OFDM PHY, mixed-format HT preamble).
const (
	// SlotTime is the 802.11 OFDM slot duration.
	SlotTime = 9e-6
	// SIFS separates a data frame from its ACK.
	SIFS = 16e-6
	// DIFS is the idle time sensed before contention.
	DIFS = 34e-6
	// CWMin is the minimum contention window; the average backoff before
	// a first transmission attempt is CWMin/2 slots.
	CWMin = 15
	// HTPreamble is the duration of the HT mixed-format PLCP preamble
	// and header prepended to every data frame.
	HTPreamble = 36e-6
	// ACKDuration covers the legacy preamble plus a 14-byte ACK at the
	// 24 Mbit/s basic rate.
	ACKDuration = 20e-6 + 14*8/24e6
	// MACHeaderBytes is the size of the 802.11 data MAC header + FCS.
	MACHeaderBytes = 36
	// MaxRetries is the retry limit used when computing expected
	// delivery airtime; past it the frame is dropped.
	MaxRetries = 7
	// AggregationFactor models A-MPDU-style frame aggregation: the fixed
	// contention/preamble/ACK overhead is paid once per burst of this
	// many frames. Without it the per-frame overhead swamps the rate
	// difference between 20 and 40 MHz channels and the throughput gain
	// from bonding collapses far below the <2× the paper measures.
	AggregationFactor = 4
)

// FrameOverhead is the fixed per-frame airtime that does not depend on the
// data rate: DIFS + mean backoff + preamble + SIFS + ACK.
func FrameOverhead() float64 {
	return DIFS + float64(CWMin)/2*SlotTime + HTPreamble + SIFS + ACKDuration
}

// FrameAirtime returns the expected per-frame medium time of one
// transmission attempt of a packet with the given payload, at the given
// nominal PHY rate in Mbit/s. It includes the MAC header and the fixed
// overheads amortized over an aggregated burst of AggregationFactor frames.
func FrameAirtime(payloadBytes int, rateMbps float64) float64 {
	if rateMbps <= 0 {
		return math.Inf(1)
	}
	bits := float64((payloadBytes + MACHeaderBytes) * 8)
	return FrameOverhead()/AggregationFactor + bits/(rateMbps*1e6)
}

// ExpectedAttempts returns the expected number of transmission attempts
// needed to deliver a frame when each attempt fails independently with
// probability per, truncated at MaxRetries+1 attempts. For per → 1 it
// saturates at the retry limit rather than diverging.
func ExpectedAttempts(per float64) float64 {
	if per <= 0 {
		return 1
	}
	if per >= 1 {
		return MaxRetries + 1
	}
	// E[attempts] for a truncated geometric distribution.
	n := float64(MaxRetries + 1)
	return (1 - math.Pow(per, n)) / (1 - per)
}

// DeliveryProbability returns the probability a frame is delivered within
// the retry limit.
func DeliveryProbability(per float64) float64 {
	if per <= 0 {
		return 1
	}
	if per >= 1 {
		return 0
	}
	return 1 - math.Pow(per, float64(MaxRetries+1))
}

// DeliveryAirtime returns the expected airtime spent to deliver one packet,
// counting retransmissions. This is the per-packet cost the anomaly model
// charges each client.
func DeliveryAirtime(payloadBytes int, rateMbps, per float64) float64 {
	return FrameAirtime(payloadBytes, rateMbps) * ExpectedAttempts(per)
}

// MaxClientDelay caps d_cl at 10³ s/Mbit (a 1 kbit/s link). A link that
// cannot deliver within the retry budget does not formally zero its cell's
// arithmetic — higher layers eventually rate-limit or deauth such a client —
// but at this cap the anomaly drag is still catastrophic (a cell holding one
// such client collapses to a few kbit/s), which is the paper's observed
// behaviour. The cap also keeps every delay finite, so utility arithmetic
// (Eq. 4) never sees Inf−Inf.
const MaxClientDelay = 1e3

// ClientDelay is the paper's per-client transmission delay d_cl, expressed
// as seconds of airtime per megabit of delivered payload, capped at
// MaxClientDelay. The reciprocal of a client's delay is the throughput it
// would see alone on an uncontended channel.
func ClientDelay(payloadBytes int, rateMbps, per float64) float64 {
	airtime := DeliveryAirtime(payloadBytes, rateMbps, per)
	deliveredMbit := float64(payloadBytes*8) / 1e6 * DeliveryProbability(per)
	if deliveredMbit <= 0 {
		return MaxClientDelay
	}
	return math.Min(airtime/deliveredMbit, MaxClientDelay)
}

// Cell aggregates the DCF behaviour of one AP's cell under saturated
// downlink traffic.
type Cell struct {
	// Delays holds d_cl for each associated client (s/Mbit).
	Delays []float64
	// AccessShare is the paper's M: the fraction of airtime the AP wins
	// against co-channel contenders (1 with no contention, estimated as
	// 1/(|con_a|+1) in the implementation, Section 5.1).
	AccessShare float64
}

// ATD returns the aggregate transmission delay Σ d_cl of the cell.
func (c Cell) ATD() float64 {
	var sum float64
	for _, d := range c.Delays {
		sum += d
	}
	return sum
}

// PerClientThroughput returns X = M/ATD in Mbit/s — under DCF's equal
// long-term access opportunities every client of the cell sees the same
// throughput regardless of its own rate; that is the 802.11 performance
// anomaly. An empty cell returns 0.
func (c Cell) PerClientThroughput() float64 {
	atd := c.ATD()
	if atd <= 0 || math.IsInf(atd, 1) || len(c.Delays) == 0 {
		return 0
	}
	return c.AccessShare / atd
}

// AggregateThroughput returns K·M/ATD, the cell's total throughput.
func (c Cell) AggregateThroughput() float64 {
	return float64(len(c.Delays)) * c.PerClientThroughput()
}
