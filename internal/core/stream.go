package core

// The event-driven streaming controller: ACORN between the periods.
//
// The paper re-runs the algorithms on a fixed T = 30 min timer, which is
// safe but blind between ticks. PRs 4-5 made both algorithms incremental
// enough that per-event re-optimization is affordable; this file makes it
// *safe*. Greedy per-event channel moves in a coupled interference graph
// oscillate unless damped (Faridi et al., Bellalta et al.), so the stream
// is built around three invariants:
//
//   1. Bounded memory. Events enter a bounded queue with latest-wins
//      coalescing per client; an arrival met by a departure annihilates.
//      When the queue is full the shed policy drops the oldest report-kind
//      entry first (reports are self-refreshing), membership events only as
//      a last resort — every drop counted and logged, never silent.
//   2. No flapping. Every proposed channel switch passes the SwitchGate:
//      goodput hysteresis (the switch must beat the incumbent by a relative
//      margin, sustained over K consecutive evaluations) plus a per-AP
//      token bucket. An AP can exceed burst + rate·window switches in no
//      window of any length — by construction, not by measurement.
//   3. Graceful degradation. Saturation (queue depth over threshold for a
//      sustained interval) or the incremental engines latching off degrade
//      the stream to deferred batched mode: events still apply (membership
//      and associations stay fresh — those are O(1)-ish), but channel
//      re-optimization is deferred and batched. A watchdog bounds the
//      staleness: if the stream stays degraded or saturated past
//      WatchdogPeriod it forces a full periodic pass — the paper's
//      Reallocate plus a roaming sweep — which also resets engine
//      fallbacks. The ladder is: per-event local reopt → deferred batch on
//      recovery → watchdog full pass.
//
// Re-optimization after an event is *local*: the event's dirty APs are
// expanded one hop through the association engine's contention aggregates
// (conflictNeighbourhood) and Algorithm 2 runs with AllocOptions.Only
// restricted to that set, reusing the dirty-rank cache. Proposed switches
// are then replayed through the gate and only approved ones install, so a
// single noisy report can never ripple a reconfiguration across the floor.
//
// DESIGN.md §12 carries the full failure-model discussion.

import (
	"sync"
	"time"

	"acorn/internal/obs"
	"acorn/internal/spectrum"
	"acorn/internal/wlan"
)

// EventKind discriminates stream events.
type EventKind uint8

const (
	// EventArrive introduces a client (Algorithm 1 admission).
	EventArrive EventKind = iota
	// EventDepart removes a client.
	EventDepart
	// EventReport is a measurement refresh for a present client; it
	// re-evaluates the client's association with roaming hysteresis and
	// dirties its neighbourhood.
	EventReport
)

func (k EventKind) String() string {
	switch k {
	case EventArrive:
		return "arrive"
	case EventDepart:
		return "depart"
	case EventReport:
		return "report"
	}
	return "unknown"
}

// Event is one unit of streaming work. Arrive and report events carry the
// client object; depart events need only the ID.
type Event struct {
	Kind   EventKind
	Client *wlan.Client
	// ClientID names the subject for EventDepart; for the other kinds it is
	// derived from Client when empty.
	ClientID string
	// Recv is the upstream receive instant (e.g. when ctlnet read the
	// report off the wire). When set and tracing is on, the event's span
	// starts here, so the "ingest" stage attributes transport and
	// handling time before enqueue. Zero means the span starts at
	// enqueue. Latency metrics are unaffected (still enqueue-to-applied).
	Recv time.Time
}

// key returns the coalescing key (the subject client's ID).
func (ev Event) key() string {
	if ev.ClientID != "" {
		return ev.ClientID
	}
	if ev.Client != nil {
		return ev.Client.ID
	}
	return ""
}

// streamEntry is one queue slot. Coalescing mutates ev in place; annihilation
// and shedding tombstone the slot (dead) instead of splicing the queue.
type streamEntry struct {
	ev   Event
	at   time.Time // first enqueue time — decision latency is measured from here
	dead bool
	// noop marks a report whose roaming decision changed nothing (same
	// incarnation, same AP): it dirties nothing and feeds the no-op
	// latency ring instead of being hidden in the overall quantiles.
	noop bool
	// span traces the entry through the pipeline. Coalescing keeps the
	// original span (matching at); a dead entry's span is simply
	// abandoned — only finished spans are ever exported.
	span obs.SpanRef
}

// StreamController wraps a Controller with the event-driven mode. Offer may
// be called from any goroutine (the producer side of the MPSC queue); the
// pump side is serialized internally. Use Start/Stop for a background
// consumer, or call Pump directly for deterministic replay.
type StreamController struct {
	ctrl   *Controller
	opts   StreamOptions
	gate   *SwitchGate
	log    *obs.Logger
	m      *streamMetrics
	now    func() time.Time
	tracer *obs.Tracer // nil = tracing off
	latWin *obs.Window // sliding window behind the windowed quantiles
	slo    *obs.SLO    // nil = no budget monitor

	// mu guards the queue and the counter block.
	mu      sync.Mutex
	queue   []*streamEntry
	head    int
	nDead   int
	live    int
	pending map[string]*streamEntry
	closed  bool
	c       streamCounters

	// pumpMu serializes consumers; everything below it is pump-owned.
	pumpMu   sync.Mutex
	degraded bool
	satSince time.Time
	deferred map[string]bool
	lastFull time.Time
	lat      *latRing
	noopLat  *latRing       // no-op report decisions only (the fast-path floor)
	curBatch []*streamEntry // batch being pumped; reoptimize marks its spans

	wake  chan struct{}
	stopc chan struct{}
	wg    sync.WaitGroup
}

// streamCounters is the mu-guarded half of StreamStats.
type streamCounters struct {
	offered, coalesced, annihilated uint64
	shedReports, shedCritical       uint64
	applied, noopSkips              uint64
	maxDepth                        int
	degradations                    uint64
	localReopts, batchedReopts      uint64
	fullPasses, watchdogFires       uint64
	engineDeferrals, genericReopts  uint64
	switchesApplied                 uint64
	degraded                        bool
}

// NewStreamController builds the streaming mode around ctrl. The caller must
// stop driving ctrl's mutating methods directly: membership and association
// changes flow through Offer/Pump from then on.
func NewStreamController(ctrl *Controller, opts StreamOptions) *StreamController {
	now := opts.now()
	s := &StreamController{
		ctrl:     ctrl,
		opts:     opts,
		gate:     NewSwitchGate(opts.Gate, now),
		log:      obsLoggerOr(opts.Log),
		m:        bindStreamMetrics(ctrl.registry()),
		now:      now,
		tracer:   opts.Tracer,
		latWin:   obs.NewWindow(opts.latencyWindow(), 0, nil, now),
		slo:      opts.SLO,
		pending:  make(map[string]*streamEntry),
		deferred: make(map[string]bool),
		lastFull: now(),
		lat:      newLatRing(opts.RecordLatencies),
		noopLat:  newLatRing(opts.RecordLatencies),
		wake:     make(chan struct{}, 1),
	}
	// Windowed quantiles as live gauges: unlike the cumulative decision
	// histogram these answer "how is the stream doing right now".
	reg := ctrl.registry()
	reg.GaugeFunc("acorn_stream_decision_p50_window_seconds",
		"windowed p50 decision latency (last LatencyWindow)",
		func() float64 { return s.latWin.Quantile(0.50) })
	reg.GaugeFunc("acorn_stream_decision_p99_window_seconds",
		"windowed p99 decision latency (last LatencyWindow)",
		func() float64 { return s.latWin.Quantile(0.99) })
	return s
}

func obsLoggerOr(l *obs.Logger) *obs.Logger {
	if l != nil {
		return l
	}
	return obs.Nop
}

// Gate exposes the switch gate (read-only use: stats and history).
func (s *StreamController) Gate() *SwitchGate { return s.gate }

// Offer enqueues an event, coalescing against any pending entry for the same
// client. It returns false only when the stream is closed or the event names
// no client; a true return means the event was accounted for — queued,
// coalesced, or annihilated (shedding may later drop it, counted).
func (s *StreamController) Offer(ev Event) bool {
	key := ev.key()
	if key == "" {
		return false
	}
	if (ev.Kind == EventArrive || ev.Kind == EventReport) && ev.Client == nil {
		return false
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return false
	}
	s.c.offered++
	s.m.offered.Inc()

	if prev := s.pending[key]; prev != nil {
		switch {
		case ev.Kind == EventReport && prev.ev.Kind == EventReport:
			// Latest report wins; the wait clock keeps the first enqueue
			// time so coalescing never hides queueing delay.
			prev.ev = ev
			s.coalescedLocked()
		case ev.Kind == EventReport:
			// A pending arrive/depart already forces a fresh evaluation (or
			// makes one moot); the report adds nothing.
			s.coalescedLocked()
		case ev.Kind == EventDepart && prev.ev.Kind == EventArrive:
			// The client left before its arrival was ever processed: both
			// events cancel.
			s.killLocked(key, prev)
			s.c.annihilated++
			s.m.annihilated.Inc()
		case ev.Kind == EventDepart && prev.ev.Kind == EventReport:
			prev.ev = ev
			s.coalescedLocked()
		case ev.Kind == EventArrive && prev.ev.Kind == EventReport:
			prev.ev = ev
			s.coalescedLocked()
		case ev.Kind == EventArrive && prev.ev.Kind == EventArrive:
			prev.ev = ev // refreshed geometry; latest wins
			s.coalescedLocked()
		default:
			// Arrive after a pending depart: genuinely ordered work — the
			// depart must process first, then the (re-)arrival. Append a
			// second entry; later offers coalesce onto it.
			s.appendLocked(key, ev)
		}
	} else {
		s.appendLocked(key, ev)
	}

	depth := s.live
	s.m.depth.Set(float64(depth))
	if depth > s.c.maxDepth {
		s.c.maxDepth = depth
	}
	s.mu.Unlock()

	select {
	case s.wake <- struct{}{}:
	default:
	}
	return true
}

func (s *StreamController) coalescedLocked() {
	s.c.coalesced++
	s.m.coalesced.Inc()
}

// killLocked tombstones a queued entry and detaches it from the pending map.
func (s *StreamController) killLocked(key string, en *streamEntry) {
	en.dead = true
	s.nDead++
	s.live--
	if s.pending[key] == en {
		delete(s.pending, key)
	}
}

// appendLocked adds a fresh entry, shedding first when at capacity, and
// compacts the tombstone backlog when it outgrows the live set.
func (s *StreamController) appendLocked(key string, ev Event) {
	for s.live >= s.opts.maxQueue() {
		s.shedLocked()
	}
	en := &streamEntry{ev: ev, at: s.now()}
	if s.tracer != nil {
		origin := ev.Recv
		if origin.IsZero() {
			origin = en.at
		}
		en.span = s.tracer.Begin(ev.Kind.String(), key, origin)
		en.span.Mark(TraceStageIngest)
	}
	s.queue = append(s.queue, en)
	s.live++
	s.pending[key] = en
	if s.nDead > s.opts.maxQueue() && s.nDead > 2*s.live {
		s.compactLocked()
	}
}

// shedLocked drops one live entry to make room: the oldest report if any
// (reports are refreshed by the subject's next report), else the oldest
// entry of any kind — a critical shed, counted separately because dropped
// membership changes stay wrong until the watchdog's next full pass.
func (s *StreamController) shedLocked() {
	victim := -1
	for i := s.head; i < len(s.queue); i++ {
		if en := s.queue[i]; !en.dead && en.ev.Kind == EventReport {
			victim = i
			break
		}
	}
	critical := victim < 0
	if critical {
		for i := s.head; i < len(s.queue); i++ {
			if !s.queue[i].dead {
				victim = i
				break
			}
		}
	}
	if victim < 0 {
		return // nothing live to shed (MaxQueue 0 cannot happen: accessor ≥ 1)
	}
	en := s.queue[victim]
	s.killLocked(en.ev.key(), en)
	if critical {
		s.c.shedCritical++
		s.m.shed.With("critical").Inc()
		s.log.Warn("stream: shed membership event under overload",
			"kind", en.ev.Kind.String(), "client", en.ev.key())
	} else {
		s.c.shedReports++
		s.m.shed.With("report").Inc()
		s.log.Warn("stream: shed report under overload", "client", en.ev.key())
	}
}

// compactLocked rebuilds the queue without tombstones so storms of
// annihilated or shed entries cannot grow the slice without bound: queue
// memory stays O(MaxQueue) no matter the offered rate.
func (s *StreamController) compactLocked() {
	alive := make([]*streamEntry, 0, s.live)
	for _, en := range s.queue[s.head:] {
		if !en.dead {
			alive = append(alive, en)
		}
	}
	s.queue = alive
	s.head = 0
	s.nDead = 0
}

// take pops up to max live entries in FIFO order.
func (s *StreamController) take(max int) []*streamEntry {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []*streamEntry
	for s.head < len(s.queue) && len(out) < max {
		en := s.queue[s.head]
		s.queue[s.head] = nil
		s.head++
		if en.dead {
			s.nDead--
			continue
		}
		s.live--
		if key := en.ev.key(); s.pending[key] == en {
			delete(s.pending, key)
		}
		out = append(out, en)
	}
	if s.head == len(s.queue) {
		s.queue = s.queue[:0]
		s.head = 0
		s.nDead = 0
	}
	s.m.depth.Set(float64(s.live))
	return out
}

// Depth returns the current number of live queued entries.
func (s *StreamController) Depth() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.live
}

// Pump drains one batch of events, applies them, and runs the bounded
// re-optimization / degradation / watchdog machinery. It returns the number
// of events applied. Safe to call concurrently with Offer; concurrent Pumps
// serialize. Deterministic replay (internal/dynamic) calls it directly with
// a virtual clock; Start's background loop calls it on wake-ups.
func (s *StreamController) Pump() int {
	s.pumpMu.Lock()
	defer s.pumpMu.Unlock()

	batch := s.take(s.opts.maxBatch())
	s.curBatch = batch
	for _, en := range batch {
		en.span.Mark(TraceStageQueue)
	}
	dirty := make(map[string]bool)
	for _, en := range batch {
		// Batch peers ahead of this event apply between its queue mark and
		// this one; peers behind it are charged by the second batch mark
		// below (stage durations accumulate).
		en.span.Mark(TraceStageBatch)
		for _, ap := range s.apply(en) {
			if ap != "" {
				dirty[ap] = true
			}
		}
		en.span.Mark(TraceStageAdmit)
	}
	for _, en := range batch {
		en.span.Mark(TraceStageBatch)
	}

	now := s.now()
	depth := s.Depth()
	s.updateDegradation(now, depth)

	if len(dirty) > 0 {
		if s.degraded || s.ctrl.engineOff {
			// Rung 2: membership and associations stayed fresh above, but
			// channel re-optimization is deferred and batched.
			for ap := range dirty {
				s.deferred[ap] = true
			}
			if s.ctrl.engineOff {
				s.bump(func(c *streamCounters) { c.engineDeferrals++ })
			}
		} else {
			only := s.ctrl.conflictNeighbourhood(dirty)
			for _, en := range batch {
				en.span.Mark(TraceStageNeigh)
			}
			s.reoptimize(only, false, &s.c.localReopts, s.m.localReopts)
		}
	}

	s.maybeWatchdog(now, depth)

	// Decision latency: enqueue to applied-and-reoptimized.
	done := s.now()
	for _, en := range batch {
		d := done.Sub(en.at)
		s.m.decision.Observe(d.Seconds())
		s.lat.add(d)
		if en.noop {
			s.noopLat.add(d)
		}
		s.latWin.Observe(d.Seconds())
		s.slo.Observe(d)
		en.span.MarkEnd(TraceStageFinal)
	}
	s.curBatch = nil
	if n := len(batch); n > 0 {
		s.bump(func(c *streamCounters) { c.applied += uint64(n) })
		s.m.applied.Add(uint64(n))
	}
	s.m.flapping.Set(float64(s.gate.Stats().FlappingAPs))
	return len(batch)
}

// bump mutates the counter block under mu. Pump-side code may also capture
// addresses of individual s.c fields (they are stable) as long as the writes
// themselves happen inside a bump closure.
func (s *StreamController) bump(f func(*streamCounters)) {
	s.mu.Lock()
	f(&s.c)
	s.mu.Unlock()
}

// apply executes one event against the wrapped controller and returns the
// AP IDs it dirtied (previous and new homes of the subject client). The
// association-engine call is attributed into the entry's span so a span
// separates "admission stage" from "engine evaluation inside it".
func (s *StreamController) apply(en *streamEntry) []string {
	c := s.ctrl
	ev := en.ev
	var t0 time.Time
	if en.span.Active() {
		t0 = s.tracer.Now()
	}
	var dirty []string
	switch ev.Kind {
	case EventArrive:
		s.ensureMember(ev.Client)
		d := c.Admit(ev.Client)
		dirty = []string{d.APID}
	case EventDepart:
		id := ev.key()
		prev := c.cfg.Assoc[id]
		c.Evict(id)
		c.Network.RemoveClient(id)
		dirty = []string{prev}
	case EventReport:
		// A report for the incarnation the network already holds carries no
		// new geometry; if the roaming decision then keeps the client where
		// it was, no maintained aggregate moved and the event is a pure
		// no-op — skip the conflict-neighbourhood re-optimization entirely.
		// A refreshed incarnation (new *wlan.Client under the same ID) must
		// still re-optimize even when the client stays put: its hearing sets
		// changed the contention state.
		sameInc := c.Network.Client(ev.Client.ID) == ev.Client
		s.ensureMember(ev.Client)
		prev := c.cfg.Assoc[ev.Client.ID]
		d := c.Roam(ev.Client, s.opts.roamMargin())
		if sameInc && d.APID == prev {
			en.noop = true
			s.bump(func(cs *streamCounters) { cs.noopSkips++ })
			s.m.noopSkips.Inc()
			break
		}
		dirty = []string{prev, d.APID}
	}
	if en.span.Active() {
		en.span.Attr(TraceAttrAssocEval, s.tracer.Now().Sub(t0), 1)
	}
	return dirty
}

// ensureMember makes u a member of the wrapped network, replacing a stale
// incarnation (same ID, different object — refreshed geometry) if present.
func (s *StreamController) ensureMember(u *wlan.Client) {
	n := s.ctrl.Network
	old := n.Client(u.ID)
	if old == u {
		return
	}
	if old != nil {
		n.RemoveClient(u.ID)
	}
	n.Clients = append(n.Clients, u)
}

// updateDegradation advances the saturation state machine.
func (s *StreamController) updateDegradation(now time.Time, depth int) {
	if depth >= s.opts.degradeDepth() {
		if s.satSince.IsZero() {
			s.satSince = now
		}
		if !s.degraded && now.Sub(s.satSince) >= s.opts.degradeAfter() {
			s.degraded = true
			s.bump(func(c *streamCounters) { c.degradations++; c.degraded = true })
			s.m.degraded.Set(1)
			s.m.degradations.Inc()
			s.log.Warn("stream: degraded to deferred batched mode", "depth", depth)
		}
		return
	}
	s.satSince = time.Time{}
	if s.degraded && depth <= s.opts.recoverBelow() {
		s.degraded = false
		s.bump(func(c *streamCounters) { c.degraded = false })
		s.m.degraded.Set(0)
		s.log.Info("stream: recovered from deferred batched mode", "depth", depth)
		if len(s.deferred) > 0 {
			only := s.ctrl.conflictNeighbourhood(s.deferred)
			s.deferred = make(map[string]bool)
			s.reoptimize(only, false, &s.c.batchedReopts, s.m.batched)
		}
	}
}

// maybeWatchdog forces a full periodic pass when the stream has been unable
// to keep the configuration fresh for a whole WatchdogPeriod: still
// degraded, still saturated, the engines latched off, or deferred dirty
// work pending. A healthy, keeping-up stream never needs one.
func (s *StreamController) maybeWatchdog(now time.Time, depth int) {
	if now.Sub(s.lastFull) < s.opts.watchdogPeriod() {
		return
	}
	stuck := s.degraded || len(s.deferred) > 0 || s.ctrl.engineOff ||
		depth >= s.opts.degradeDepth()
	if !stuck {
		s.lastFull = now // healthy: restart the staleness clock
		return
	}
	s.bump(func(c *streamCounters) { c.watchdogFires++ })
	s.m.watchdog.Inc()
	s.log.Warn("stream: watchdog forcing full pass",
		"degraded", s.degraded, "deferred_aps", len(s.deferred), "depth", depth)
	s.fullPass(now)
}

// FullPass runs the paper's periodic tick on demand: a roaming sweep over
// every present client followed by a whole-network re-optimization, exactly
// the pass the watchdog forces. Switch proposals bypass the hysteresis
// streak (a full pass is authoritative) but still pay rate-limit tokens.
// One-shot callers (acornd -stream) use it to anchor the final
// configuration after draining their events; it serializes with Pump.
func (s *StreamController) FullPass() {
	s.pumpMu.Lock()
	defer s.pumpMu.Unlock()
	s.fullPass(s.now())
}

// fullPass is the paper's periodic tick run inside the stream: a roaming
// sweep over every present client, then whole-network Algorithm 2. Switch
// proposals bypass the hysteresis streak (a full pass is authoritative) but
// still pay rate-limit tokens, so the no-flap bound survives even here.
func (s *StreamController) fullPass(now time.Time) {
	c := s.ctrl
	clients := append([]*wlan.Client(nil), c.Network.Clients...)
	c.RoamAll(clients, s.opts.roamMargin())
	s.reoptimize(nil, true, &s.c.fullPasses, s.m.fullPasses)
	s.deferred = make(map[string]bool)
	s.lastFull = now
}

// reoptimize runs Algorithm 2 restricted to only (nil = whole network),
// replays the proposed switches through the gate, and installs the approved
// subset. counter/metric identify which ladder rung ran.
func (s *StreamController) reoptimize(only map[string]bool, bypassStreak bool, counter *uint64, metric *obs.Counter) {
	c := s.ctrl
	s.bump(func(*streamCounters) { *counter++ })
	metric.Inc()

	span := s.m.reopt.Start()
	var est *Estimator
	opts := s.opts.Alloc
	if e := c.engineFor(); e != nil {
		est = e.vendEstimator()
		// Reuse the engine's incrementally maintained contention partition:
		// an Only-restricted re-optimization then skips the graph build.
		opts.Partition = e.partitionHandle()
	} else {
		est = NewEstimator(c.Network)
	}
	opts.Only = only
	_, st := AllocateChannels(c.Network, c.cfg, est, opts)
	span.End()
	for _, en := range s.curBatch {
		// Every span in the batch waited on this re-optimization; charge
		// the stage to all of them and attribute the rank-evaluation share.
		en.span.Attr(TraceAttrRankEval, time.Duration(st.RankNanos), uint64(st.Evals.RankEvals))
		en.span.Mark(TraceStageReopt)
	}
	if st.Evals.FullEvals > 0 {
		// The incremental engine silently fell back to the generic sweep —
		// count it; the saturation machinery will degrade if it persists.
		s.bump(func(cs *streamCounters) { cs.genericReopts++ })
	}

	// Gate and install. Each proposal's relative gain is measured against
	// the estimate the greedy search held just before that switch.
	var next *wlan.Config
	applied := 0
	for _, rec := range st.History {
		pre := rec.Estimate - rec.Rank
		rel := 0.0
		if pre > 0 {
			rel = rec.Rank / pre
		}
		if !s.gate.Consider(rec.AP, rec.Channel, rel, bypassStreak) {
			continue
		}
		if next == nil {
			next = c.cfg.Clone()
		}
		if next.Channels[rec.AP] != rec.Channel {
			next.Channels[rec.AP] = rec.Channel
			applied++
		}
	}
	if next != nil {
		c.cfg = next
		// New channels may make an unrepresentable binding representable
		// again, exactly as Reallocate does.
		c.engineOff = false
	}
	if applied > 0 {
		s.bump(func(cs *streamCounters) { cs.switchesApplied += uint64(applied) })
		s.m.switches.Add(uint64(applied))
	}
	RecordAllocMetrics(c.registry(), st, c.cfg)
	for _, en := range s.curBatch {
		en.span.Mark(TraceStageGate)
	}
}

// Start launches the background consumer: it pumps on every Offer wake-up
// and on a coarse tick that keeps the watchdog honest when no events flow.
func (s *StreamController) Start() {
	s.pumpMu.Lock()
	defer s.pumpMu.Unlock()
	if s.stopc != nil {
		return
	}
	s.stopc = make(chan struct{})
	s.wg.Add(1)
	go s.run(s.stopc)
}

func (s *StreamController) run(stopc chan struct{}) {
	defer s.wg.Done()
	tick := time.NewTicker(250 * time.Millisecond)
	defer tick.Stop()
	for {
		select {
		case <-stopc:
			return
		case <-s.wake:
		case <-tick.C:
		}
		for s.Pump() > 0 {
		}
	}
}

// Stop closes the stream (Offer returns false from now on), stops the
// background consumer if one is running, and drains whatever is queued so
// no accepted event is lost.
func (s *StreamController) Stop() {
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
	s.pumpMu.Lock()
	stopc := s.stopc
	s.stopc = nil
	s.pumpMu.Unlock()
	if stopc != nil {
		close(stopc)
		s.wg.Wait()
	}
	for s.Pump() > 0 {
	}
}

// Stats returns a snapshot of the stream.
func (s *StreamController) Stats() StreamStats {
	s.mu.Lock()
	out := StreamStats{
		Offered:         s.c.offered,
		Coalesced:       s.c.coalesced,
		Annihilated:     s.c.annihilated,
		ShedReports:     s.c.shedReports,
		ShedCritical:    s.c.shedCritical,
		Applied:         s.c.applied,
		NoopSkips:       s.c.noopSkips,
		Depth:           s.live,
		QueueLen:        len(s.queue) - s.head,
		MaxDepth:        s.c.maxDepth,
		Degraded:        s.c.degraded,
		Degradations:    s.c.degradations,
		LocalReopts:     s.c.localReopts,
		BatchedReopts:   s.c.batchedReopts,
		FullPasses:      s.c.fullPasses,
		WatchdogFires:   s.c.watchdogFires,
		EngineDeferrals: s.c.engineDeferrals,
		GenericReopts:   s.c.genericReopts,
		SwitchesApplied: s.c.switchesApplied,
	}
	s.mu.Unlock()
	out.Gate = s.gate.Stats()
	// Windowed quantiles: what the stream looks like over the last
	// LatencyWindow — a late-run regression shows here while the
	// cumulative figures still average it away.
	out.LatencyP50 = time.Duration(s.latWin.Quantile(0.50) * float64(time.Second))
	out.LatencyP99 = time.Duration(s.latWin.Quantile(0.99) * float64(time.Second))
	out.LatencyWindowCount = s.latWin.Count()
	if s.lat != nil {
		out.LatencyP50Cum = s.lat.quantile(0.50)
		out.LatencyP99Cum = s.lat.quantile(0.99)
		out.LatencyCount = s.lat.count()
	}
	if s.noopLat != nil {
		out.NoopLatencyP50 = s.noopLat.quantile(0.50)
		out.NoopLatencyP99 = s.noopLat.quantile(0.99)
		out.NoopLatencyCount = s.noopLat.count()
	}
	return out
}

// Tracer returns the stream's tracer (nil when tracing is off).
func (s *StreamController) Tracer() *obs.Tracer { return s.tracer }

// LatencyWindow exposes the sliding window behind the windowed quantiles.
func (s *StreamController) LatencyWindow() *obs.Window { return s.latWin }

// conflictNeighbourhood expands a dirty AP set one hop through the
// association engine's contention aggregates: an AP joins the neighbourhood
// if it carrier-senses (or is sensed by) a dirty AP directly, or shares
// client-mediated contention with one. A nil return means "whole network"
// (the engine is unavailable, so no bound can be trusted); an empty dirty
// set yields an empty neighbourhood (no AP may switch).
func (c *Controller) conflictNeighbourhood(dirty map[string]bool) map[string]bool {
	e := c.engineFor()
	if e == nil {
		return nil
	}
	out := make(map[string]bool, 4*len(dirty))
	for apID := range dirty {
		i, ok := e.apIdx[apID]
		if !ok {
			continue
		}
		out[apID] = true
		for o := range e.aps {
			if o == i {
				continue
			}
			if e.apapDir[i][o] || e.apapDir[o][i] || e.cntHome[i][o]+e.cntHome[o][i] > 0 {
				out[e.apIDs[o]] = true
			}
		}
	}
	return out
}

// SwitchGate is the anti-flap guard every proposed channel switch must pass:
// goodput hysteresis sustained over a streak of evaluations, then a per-AP
// token bucket. It is shared by the in-process StreamController and the
// networked ctlnet server. Safe for concurrent use.
type SwitchGate struct {
	opts GateOptions
	now  func() time.Time

	mu    sync.Mutex
	aps   map[string]*gateAP
	stats GateStats
}

type gateAP struct {
	pending    spectrum.Channel
	hasPending bool
	streak     int
	tokens     float64
	lastFill   time.Time
	switches   []time.Time
}

// NewSwitchGate builds a gate; now may be nil (time.Now).
func NewSwitchGate(opts GateOptions, now func() time.Time) *SwitchGate {
	if now == nil {
		now = time.Now
	}
	return &SwitchGate{opts: opts, now: now, aps: make(map[string]*gateAP)}
}

// Consider judges one proposed switch of ap to ch with relative goodput gain
// relGain. It returns true when the switch may commit — the caller must then
// actually perform it, because an approval consumes a rate token and counts
// toward the flap window. bypassStreak skips the K-consecutive-evaluations
// rule (watchdog full passes are authoritative); the margin and the token
// bucket always apply, so the rate bound holds unconditionally: no AP ever
// exceeds burst + rate·W switches in any window of length W.
func (g *SwitchGate) Consider(ap string, ch spectrum.Channel, relGain float64, bypassStreak bool) bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	now := g.now()
	a := g.aps[ap]
	if a == nil {
		a = &gateAP{tokens: float64(g.opts.burst()), lastFill: now}
		g.aps[ap] = a
	}
	g.stats.Proposals++

	if relGain < g.opts.margin() {
		g.stats.MarginVetoes++
		a.hasPending = false
		a.streak = 0
		return false
	}
	if a.hasPending && a.pending == ch {
		a.streak++
	} else {
		a.pending = ch
		a.hasPending = true
		a.streak = 1
	}
	if !bypassStreak && a.streak < g.opts.streak() {
		g.stats.StreakVetoes++
		return false
	}
	if rate := g.opts.ratePerHour(); rate > 0 {
		a.tokens += now.Sub(a.lastFill).Hours() * rate
		if lim := float64(g.opts.burst()); a.tokens > lim {
			a.tokens = lim
		}
		a.lastFill = now
		if a.tokens < 1 {
			// The streak survives: the switch commits once a token refills,
			// without re-earning its K confirmations.
			g.stats.RateVetoes++
			return false
		}
		a.tokens--
	}
	a.switches = append(a.switches, now)
	a.prune(now, g.opts.flapWindow())
	a.hasPending = false
	a.streak = 0
	g.stats.Approved++
	return true
}

func (a *gateAP) prune(now time.Time, window time.Duration) {
	cut := 0
	for cut < len(a.switches) && now.Sub(a.switches[cut]) > window {
		cut++
	}
	if cut > 0 {
		a.switches = append(a.switches[:0], a.switches[cut:]...)
	}
}

// Stats snapshots the gate's decision counters plus the flap detector's
// current view (per-AP switch counts inside FlapWindow).
func (g *SwitchGate) Stats() GateStats {
	g.mu.Lock()
	defer g.mu.Unlock()
	out := g.stats
	now := g.now()
	for _, a := range g.aps {
		a.prune(now, g.opts.flapWindow())
		n := len(a.switches)
		if n > out.MaxSwitchesPerAP {
			out.MaxSwitchesPerAP = n
		}
		if n >= g.opts.flapThreshold() {
			out.FlappingAPs++
		}
	}
	return out
}

// SwitchTimes returns each AP's switch timestamps inside the flap window —
// the raw material for rate-invariant assertions in tests.
func (g *SwitchGate) SwitchTimes() map[string][]time.Time {
	g.mu.Lock()
	defer g.mu.Unlock()
	now := g.now()
	out := make(map[string][]time.Time, len(g.aps))
	for id, a := range g.aps {
		a.prune(now, g.opts.flapWindow())
		if len(a.switches) > 0 {
			out[id] = append([]time.Time(nil), a.switches...)
		}
	}
	return out
}
