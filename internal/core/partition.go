package core

// Incrementally maintained contention partition (the PR-9 tentpole's
// second leg; DESIGN.md §15).
//
// The sharded solver needs the connected components of the populated
// contention graph, and before this file it rebuilt that graph from
// scratch on every solve — O(P²) pair scans per stream pump even when one
// client moved one cell. But the association engine already maintains
// every aggregate the contention predicate reads:
//
//	contendPair(i, j)  ⟺  apapDir[min][max]            (AP↔AP term)
//	                     ∨ cntHome[i][j] > 0            (i's clients heard by j)
//	                     ∨ cntHome[j][i] > 0            (j's clients heard by i)
//
// restricted to populated i, j (override mode reduces to the first term,
// exactly as wlan.Network.Contend skips the client walk). Contention is
// channel-independent, so channel swaps never touch the partition; only
// client churn does, and each move changes O(|heardBy|) pair supports —
// the same deltas applyHome already applies to cntHome.
//
// The partition therefore rides the engine's own update hooks:
//
//   - Edge appearance (a support count crossing zero upward, or a cell
//     becoming populated) is handled eagerly by union-find union — merges
//     are cheap and exact.
//   - Edge disappearance can split a component, which union-find cannot do
//     eagerly; the affected component is marked dirty and lazily
//     re-partitioned from the maintained adjacency on the next query
//     (components()), in time linear in the dirty components' size. Every
//     adjacency edge keeps both endpoints in one union-find group by
//     construction, so the refresh never needs to look outside the dirty
//     groups.
//
// The invariants the equivalence suite pins:
//
//	I1 (adjacency exactness). After every engine mutation, adj holds
//	    exactly the pairs with contendPair true over the current
//	    association map.
//	I2 (grouping soundness). Every adj edge's endpoints share a
//	    union-find root; dirty groups may be coarser than the true
//	    components, never finer.
//	I3 (query exactness). components() — refresh then group — equals
//	    contentionComponents of a freshly built conflict graph, element
//	    for element.
//
// Full rebuilds happen only when the engine itself is rebuilt (AP set or
// representability changes) — client-only churn performs zero of them,
// which acorn_core_partition_rebuilds_total pins in the stream tests.

import (
	"math/bits"

	"acorn/internal/wlan"
)

// ContentionPartition is the exported handle AllocOptions carries: an
// opaque reference to one engine's maintained partition, valid only for
// the exact (network, configuration) binding the engine is bound to.
type ContentionPartition struct {
	e *assocEngine
}

// validFor reports whether the handle may serve a solve of (n, cfg): same
// network object, same configuration object, same AP set the engine
// snapshotted, and a live partition. A nil handle is simply invalid.
func (h *ContentionPartition) validFor(n *wlan.Network, cfg *wlan.Config) bool {
	return h != nil && h.e != nil && h.e.part != nil &&
		h.e.n == n && h.e.cfg == cfg && len(n.APs) == len(h.e.aps)
}

// components returns the current partition of the populated contention
// graph in the canonical order of contentionComponents: each component an
// ascending slice of AP indices, components ordered by smallest member.
func (h *ContentionPartition) components() [][]int32 {
	return h.e.part.components(h.e)
}

// contentionPartition is the engine-owned state: a union-find forest over
// AP indices, the exact contention adjacency, and the lazy dirty set.
type contentionPartition struct {
	parent []int32
	adj    []map[int32]struct{}
	// dirty holds AP indices whose union-find group must be re-partitioned
	// before the next query (an incident edge disappeared, or a populated
	// neighbor left).
	dirty map[int32]struct{}
}

// newContentionPartition builds the partition from the engine's freshly
// seeded aggregates, in O(APs + apap edges + Σ|heardBy|). Counted as the
// one full rebuild an engine build performs.
func newContentionPartition(e *assocEngine) *contentionPartition {
	p := &contentionPartition{
		parent: make([]int32, len(e.aps)),
		adj:    make([]map[int32]struct{}, len(e.aps)),
		dirty:  make(map[int32]struct{}),
	}
	for i := range p.parent {
		p.parent[i] = int32(i)
	}
	for a, nbrs := range e.apapNbr {
		if e.pop[a] == 0 {
			continue
		}
		for _, o := range nbrs {
			if int(o) > a && e.pop[o] > 0 {
				p.addEdge(int32(a), o)
			}
		}
	}
	if !e.override {
		for _, st := range e.clients {
			if st.home >= 0 {
				p.clientEdges(e, st.home, st)
			}
		}
	}
	e.stats.partRebuilds++
	return p
}

// clientEdges unions home h with every populated AP that carrier-senses
// the client — the edges this client's presence supports.
func (p *contentionPartition) clientEdges(e *assocEngine, h int, st *assocClient) {
	forEachHeard(st, func(o int) {
		if o != h && e.pop[o] > 0 {
			p.addEdge(int32(h), int32(o))
		}
	})
}

// forEachHeard walks the set bits of the client's hearing bitset.
func forEachHeard(st *assocClient, f func(o int)) {
	for w, word := range st.heard {
		for word != 0 {
			o := w*64 + bits.TrailingZeros64(word)
			word &= word - 1
			f(o)
		}
	}
}

func (p *contentionPartition) find(i int32) int32 {
	for p.parent[i] != i {
		p.parent[i] = p.parent[p.parent[i]] // path halving
		i = p.parent[i]
	}
	return i
}

func (p *contentionPartition) union(a, b int32) {
	ra, rb := p.find(a), p.find(b)
	if ra != rb {
		p.parent[rb] = ra
	}
}

// addEdge records the contention edge {a, b} (idempotent) and merges the
// groups. Safe to call while either group is dirty: the refresh rebuilds
// from the adjacency, which now includes this edge.
func (p *contentionPartition) addEdge(a, b int32) {
	if p.adj[a] == nil {
		p.adj[a] = make(map[int32]struct{}, 4)
	}
	if p.adj[b] == nil {
		p.adj[b] = make(map[int32]struct{}, 4)
	}
	if _, ok := p.adj[a][b]; ok {
		return
	}
	p.adj[a][b] = struct{}{}
	p.adj[b][a] = struct{}{}
	p.union(a, b)
}

// dropEdge removes the edge {a, b} if present and marks the (shared, by
// I2) group dirty — the removal may have split it.
func (p *contentionPartition) dropEdge(a, b int32) {
	if _, ok := p.adj[a][b]; !ok {
		return
	}
	delete(p.adj[a], b)
	delete(p.adj[b], a)
	p.dirty[a] = struct{}{}
	p.dirty[b] = struct{}{}
}

// afterAdd runs after applyHome/ensureState added the client's hearing
// counts to home t: population transitions open apap and inbound-client
// edges, and each newly supported outbound count opens its edge. O(APs)
// only when t just became populated; O(|heardBy|) otherwise.
func (p *contentionPartition) afterAdd(e *assocEngine, t int, st *assocClient) {
	e.stats.partUpdates++
	if e.pop[t] == 1 {
		// t joined the node set: its static AP↔AP edges and the edges
		// supported by *other* cells' clients heard at t become live.
		for _, o := range e.apapNbr[t] {
			if e.pop[o] > 0 {
				p.addEdge(int32(t), o)
			}
		}
		if !e.override {
			for h2 := range e.cntHome {
				if h2 != t && e.pop[h2] > 0 && e.cntHome[h2][t] > 0 {
					p.addEdge(int32(h2), int32(t))
				}
			}
		}
	}
	if !e.override {
		forEachHeard(st, func(o int) {
			if o != t && e.pop[o] > 0 {
				p.addEdge(int32(t), int32(o))
			}
		})
	}
}

// afterRemove runs after applyHome/ensureState subtracted the client's
// hearing counts from home h (and after pop[h] was decremented, when it
// was): a depopulated cell drops out with all its edges; otherwise each
// support count that hit zero re-checks its edge's remaining support.
func (p *contentionPartition) afterRemove(e *assocEngine, h int, st *assocClient) {
	e.stats.partUpdates++
	if e.pop[h] == 0 {
		for o := range p.adj[h] {
			delete(p.adj[o], int32(h))
			p.dirty[o] = struct{}{}
		}
		if len(p.adj[h]) > 0 {
			p.adj[h] = nil
			p.dirty[int32(h)] = struct{}{}
		}
		return
	}
	if e.override {
		return // client terms never support override-mode edges
	}
	forEachHeard(st, func(o int) {
		if o == h || e.cntHome[h][o] != 0 {
			return
		}
		// The last h→o support is gone; the edge survives only on the
		// static AP term or the reverse client term.
		if !e.apapEdge(h, o) && e.cntHome[o][h] == 0 {
			p.dropEdge(int32(h), int32(o))
		}
	})
}

// refresh re-partitions the dirty union-find groups from the maintained
// adjacency: members of dirty groups are reset to singletons and re-unioned
// along their edges. Edges never cross group boundaries (I2), so clean
// groups are untouched. Linear in APs + dirty groups' edges.
func (p *contentionPartition) refresh(e *assocEngine) {
	if len(p.dirty) == 0 {
		return
	}
	roots := make(map[int32]struct{}, len(p.dirty))
	for d := range p.dirty {
		roots[p.find(d)] = struct{}{}
	}
	var members []int32
	for i := range p.parent {
		if _, hit := roots[p.find(int32(i))]; hit {
			members = append(members, int32(i))
		}
	}
	for _, m := range members {
		p.parent[m] = m
	}
	for _, m := range members {
		for o := range p.adj[m] {
			p.union(m, o)
		}
	}
	p.dirty = make(map[int32]struct{})
	e.stats.partRefreshes++
}

// components refreshes and groups: populated APs in ascending order,
// bucketed by root — which yields exactly contentionComponents' canonical
// form (each component ascending, ordered by smallest member).
func (p *contentionPartition) components(e *assocEngine) [][]int32 {
	p.refresh(e)
	var comps [][]int32
	slot := make(map[int32]int)
	for i := range e.aps {
		if e.pop[i] == 0 {
			continue
		}
		r := p.find(int32(i))
		if k, ok := slot[r]; ok {
			comps[k] = append(comps[k], int32(i))
		} else {
			slot[r] = len(comps)
			comps = append(comps, []int32{int32(i)})
		}
	}
	return comps
}

// apapEdge reports the static AP↔AP term of contendPair for the unordered
// pair {a, o}: the lower index transmits, matching the direction the pair
// scan fixes (and, in override mode, the override's verdict for that
// ordered pair).
func (e *assocEngine) apapEdge(a, o int) bool {
	if a < o {
		return e.apapDir[a][o]
	}
	return e.apapDir[o][a]
}

// partitionHandle returns the engine's exported partition handle.
func (e *assocEngine) partitionHandle() *ContentionPartition {
	if e == nil || e.part == nil {
		return nil
	}
	return &ContentionPartition{e: e}
}
