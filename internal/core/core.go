package core
