package core

// Trace-stage catalog of the streaming pipeline. One span is begun per
// queued event (at enqueue, origin = upstream receive time when stamped)
// and marked at every stage boundary the pump crosses, so a finished
// span's stage durations sum exactly to its receive-to-applied time — the
// attribution the "milliseconds to microseconds" ROADMAP item needs.
// Batch-shared work (neighbourhood expansion, re-optimization, gating) is
// charged to every span in the batch: each event did wait on it.

import (
	"time"

	"acorn/internal/obs"
)

// Stage indices for StreamController spans (names in StreamTraceStages).
const (
	// TraceStageIngest: upstream receive (Event.Recv) to enqueue. Zero
	// when events carry no receive stamp.
	TraceStageIngest = iota
	// TraceStageQueue: enqueue to batch dequeue — pure queue wait,
	// including time spent being coalesced over.
	TraceStageQueue
	// TraceStageBatch: waiting on batch peers' admissions (charged both
	// before and after the event's own apply; durations accumulate).
	TraceStageBatch
	// TraceStageAdmit: the event's own membership/association work
	// (Admit, Roam or Evict through the association engine).
	TraceStageAdmit
	// TraceStageNeigh: conflict-neighbourhood expansion of the batch's
	// dirty AP set.
	TraceStageNeigh
	// TraceStageReopt: Algorithm 2 over the neighbourhood (plus any
	// deferred-batch or watchdog re-optimization the batch waited on).
	TraceStageReopt
	// TraceStageGate: gate verdicts, config install and metric publish.
	TraceStageGate
	// TraceStageFinal: latency bookkeeping after the pipeline proper.
	TraceStageFinal

	numTraceStages
)

// StreamTraceStages names the stream stages, indexed by the constants
// above. Passed to obs.NewTracer by NewStreamTracer and the daemons.
var StreamTraceStages = []string{
	"ingest", "queue", "batch", "admit", "neigh", "reopt", "gate", "final",
}

// Attribution bucket indices (names in StreamTraceAttrs). Attribution is
// additive and sits outside the stage partition: it answers "of the reopt
// stage, how much was rank evaluation", not "where did the wall time go".
const (
	// TraceAttrRankEval: wall time inside fresh channel-rank evaluations
	// (AllocStats.RankNanos) and the count of such evaluations.
	TraceAttrRankEval = iota
	// TraceAttrAssocEval: wall time inside the association engine call of
	// the event's own apply (count = 1 per apply).
	TraceAttrAssocEval
)

// StreamTraceAttrs names the stream attribution buckets.
var StreamTraceAttrs = []string{"rank_eval", "assoc_eval"}

// NewStreamTracer builds a tracer configured for StreamController spans.
// ring <= 0 picks the default; sample follows obs.TracerOptions semantics
// (0 off, 1 everything, N one-in-N); now may be nil (time.Now) — pass the
// stream's virtual clock for deterministic replay.
func NewStreamTracer(ring, sample int, now func() time.Time) *obs.Tracer {
	return obs.NewTracer(obs.TracerOptions{
		Ring:   ring,
		Sample: sample,
		Stages: StreamTraceStages,
		Attrs:  StreamTraceAttrs,
		Now:    now,
	})
}
