package core

import (
	"testing"

	"acorn/internal/stats"
	"acorn/internal/wlan"
)

func benchSetup(b *testing.B) (*wlan.Network, *wlan.Config, *Estimator) {
	b.Helper()
	n, clients := randomNetwork(1234)
	cfg := wlan.NewConfig()
	rng := stats.NewRand(1)
	RandomInitial(n, cfg, rng.Intn)
	AssociateAll(n, cfg, clients)
	return n, cfg, NewEstimator(n)
}

func BenchmarkEstimatorNetworkThroughput(b *testing.B) {
	_, cfg, est := benchSetup(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		est.NetworkThroughput(cfg)
	}
}

func BenchmarkAllocateChannels(b *testing.B) {
	n, cfg, est := benchSetup(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		AllocateChannels(n, cfg, est, AllocOptions{})
	}
}

func BenchmarkAssociate(b *testing.B) {
	n, cfg, _ := benchSetup(b)
	u := n.Clients[0]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Associate(n, cfg, u)
	}
}
