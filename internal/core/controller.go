package core

import (
	"fmt"
	"time"

	"acorn/internal/obs"
	"acorn/internal/ratecontrol"
	"acorn/internal/spectrum"
	"acorn/internal/stats"
	"acorn/internal/units"
	"acorn/internal/wlan"
)

// DefaultPeriod is the channel (re)allocation period T. Section 4.2 derives
// it from the CRAWDAD association-duration trace: the median association
// lasts ≈31 minutes and >90% last under 40, so ACORN re-runs allocation
// every 30 minutes.
const DefaultPeriod = 30 * time.Minute

// Controller is the ACORN auto-configuration engine for one WLAN. It owns
// the running configuration and applies the paper's workflow: random
// initial channels, Algorithm 1 as clients arrive, Algorithm 2 every period.
type Controller struct {
	Network *wlan.Network
	// Period is the channel-allocation periodicity; zero means
	// DefaultPeriod. Simulations invoke Reallocate directly, so Period
	// is advisory metadata for deployments driving the controller from a
	// timer.
	Period time.Duration
	// Alloc tunes Algorithm 2.
	Alloc AllocOptions
	// Assoc tunes the engine-backed Algorithm 1 paths (parallel roaming
	// sweeps).
	Assoc AssocOptions
	// Seed drives the random initial channel assignment.
	Seed int64
	// Obs receives reallocation metrics; nil means obs.Default.
	Obs *obs.Registry
	// Trace, when non-nil, receives a replayable JSONL convergence trace
	// of every Reallocate.
	Trace *TraceWriter

	cfg *wlan.Config

	// engine is the lazily built incremental association engine
	// (assocstate.go). Every association path consults engineFor, which
	// rebuilds or drops it as the binding evolves; a nil engine means the
	// reference path, which is always correct. engineOff latches an
	// unrepresentable binding until the next reallocation changes it.
	engine    *assocEngine
	engineOff bool
	// enginePub is the watermark of engine stats already published to Obs.
	enginePub assocEngineStats
}

// NewController creates a controller with a random initial channel
// assignment and no associations.
func NewController(n *wlan.Network, seed int64) (*Controller, error) {
	if err := n.Validate(); err != nil {
		return nil, fmt.Errorf("core: invalid network: %w", err)
	}
	c := &Controller{Network: n, Period: DefaultPeriod, Seed: seed, cfg: wlan.NewConfig()}
	rng := stats.NewRand(seed)
	RandomInitial(n, c.cfg, rng.Intn)
	return c, nil
}

// Config returns the controller's current configuration. The returned value
// is a clone; mutating it does not affect the controller.
func (c *Controller) Config() *wlan.Config { return c.cfg.Clone() }

// ConfigView returns the live configuration without copying. Callers must
// treat it as read-only; it is intended for evaluation loops (e.g. the
// churn simulator) where per-event cloning would dominate.
func (c *Controller) ConfigView() *wlan.Config { return c.cfg }

// registry returns the controller's metric registry (obs.Default when unset).
func (c *Controller) registry() *obs.Registry {
	if c.Obs != nil {
		return c.Obs
	}
	return obs.Default
}

// engineFor returns the incremental association engine for the current
// binding, building or rebuilding it as needed, or nil when the binding is
// unrepresentable (callers then run the reference path).
func (c *Controller) engineFor() *assocEngine {
	if c.engineOff {
		return nil
	}
	if c.engine != nil && c.engine.bind(c.cfg) {
		return c.engine
	}
	c.publishEngineStats() // flush the outgoing engine's counters
	c.engine = newAssocEngine(c.Network, c.cfg)
	c.enginePub = assocEngineStats{}
	if c.engine == nil {
		c.engineOff = true
		c.registry().Counter("acorn_core_assoc_engine_fallbacks_total",
			"bindings the association engine could not represent (reference path used)").Inc()
		return nil
	}
	c.registry().Counter("acorn_core_assoc_engine_builds_total",
		"association engine (re)builds").Inc()
	return c.engine
}

// publishEngineStats pushes the engine's counter deltas since the last
// publication into the registry.
func (c *Controller) publishEngineStats() {
	e := c.engine
	if e == nil {
		return
	}
	reg := c.registry()
	cur := e.stats
	reg.Counter("acorn_core_assoc_updates_total",
		"O(1) aggregate updates applied by the association engine").Add(uint64(cur.updates - c.enginePub.updates))
	reg.Counter("acorn_core_assoc_fast_beacons_total",
		"modified beacons produced by the association engine").Add(uint64(cur.fastBeacons - c.enginePub.fastBeacons))
	reg.Counter("acorn_core_assoc_delay_memo_hits_total",
		"beacon delay lookups served from the engine memo").Add(uint64(cur.memoHits - c.enginePub.memoHits))
	reg.Counter("acorn_core_assoc_delay_memo_misses_total",
		"beacon delay lookups computed and memoized").Add(uint64(cur.memoMisses - c.enginePub.memoMisses))
	reg.Counter("acorn_core_partition_updates_total",
		"incremental contention-partition hook updates applied by the association engine").Add(uint64(cur.partUpdates - c.enginePub.partUpdates))
	reg.Counter("acorn_core_partition_refreshes_total",
		"lazy dirty-group re-partitions of the maintained contention partition").Add(uint64(cur.partRefreshes - c.enginePub.partRefreshes))
	reg.Counter("acorn_core_partition_rebuilds_total",
		"from-scratch contention-partition constructions (one per engine build)").Add(uint64(cur.partRebuilds - c.enginePub.partRebuilds))
	c.enginePub = cur
}

// Evict removes a departed client's association. Unknown IDs are a no-op.
func (c *Controller) Evict(clientID string) {
	if e := c.engineFor(); e != nil {
		if e.evict(clientID) {
			return
		}
		// Invariant breach (an associated client the engine never saw):
		// fall back and rebuild on next use.
		c.engine = nil
	}
	c.cfg.Unassoc(clientID)
}

// Admit runs Algorithm 1 for one client and applies the decision. It
// returns the decision; a decision with empty APID means the client is out
// of range of every AP.
func (c *Controller) Admit(u *wlan.Client) AssociationDecision {
	span := c.registry().Histogram("acorn_core_admit_seconds",
		"wall time of one Algorithm-1 admission", nil).Start()
	defer span.End()
	if e := c.engineFor(); e != nil {
		d := e.associate(u)
		if d.APID != "" {
			e.applyHome(u.ID, e.clients[u.ID], e.apIdx[d.APID])
		}
		return d
	}
	d := Associate(c.Network, c.cfg, u)
	if d.APID != "" {
		c.cfg.SetAssoc(u.ID, d.APID)
	}
	return d
}

// AdmitAll admits the given clients one by one in order.
func (c *Controller) AdmitAll(clients []*wlan.Client) []AssociationDecision {
	ds := make([]AssociationDecision, 0, len(clients))
	for _, u := range clients {
		ds = append(ds, c.Admit(u))
	}
	return ds
}

// Reallocate runs Algorithm 2 against fresh link measurements and installs
// the resulting channel assignment. It returns the search statistics, and
// emits them as metrics (and, when Trace is set, as a JSONL convergence
// trace).
func (c *Controller) Reallocate() AllocStats {
	reg := c.Obs
	if reg == nil {
		reg = obs.Default
	}
	span := reg.Histogram("acorn_core_reallocate_seconds",
		"wall time of one Algorithm-2 channel reallocation", nil).Start()
	// The association engine shares its link caches with the allocator:
	// a vended estimator reuses the measured reference SNRs and the
	// per-(link, width) delay memo across reallocations (same float
	// expressions as NewEstimator, so allocations are unchanged). The
	// engine's incrementally maintained contention partition rides along so
	// a sharded solve skips the graph build entirely.
	var est *Estimator
	opts := c.Alloc
	if e := c.engineFor(); e != nil {
		est = e.vendEstimator()
		opts.Partition = e.partitionHandle()
	} else {
		est = NewEstimator(c.Network)
	}
	next, st := AllocateChannels(c.Network, c.cfg, est, opts)
	c.cfg = next
	// New channels may make a previously unrepresentable binding
	// representable again; let the next association path retry the engine.
	c.engineOff = false
	span.End()
	RecordAllocMetrics(reg, st, c.cfg)
	reg.Gauge("acorn_core_clients_associated",
		"clients currently holding an association").Set(float64(len(c.cfg.Assoc)))
	if c.Trace != nil {
		c.Trace.Reallocation(st, c.cfg)
	}
	return st
}

// RecordAllocMetrics publishes one Algorithm-2 run's statistics into reg.
// It is shared by the local Controller and the networked ctlnet server so
// both surfaces report the same convergence metric catalog.
func RecordAllocMetrics(reg *obs.Registry, st AllocStats, cfg *wlan.Config) {
	reg.Counter("acorn_core_reallocations_total",
		"Algorithm-2 runs completed").Inc()
	reg.Counter("acorn_core_alloc_switches_total",
		"channel switches performed across all reallocations").Add(uint64(st.Switches))
	reg.Counter("acorn_core_alloc_periods_total",
		"greedy periods executed across all reallocations").Add(uint64(st.Periods))
	reg.Histogram("acorn_core_alloc_switches", "channel switches per reallocation",
		[]float64{0, 1, 2, 4, 8, 16, 32, 64}).Observe(float64(st.Switches))
	reg.Gauge("acorn_core_goodput_initial_mbps",
		"estimated aggregate goodput before the last reallocation").Set(st.InitialEstimate)
	reg.Gauge("acorn_core_goodput_mbps",
		"estimated aggregate goodput after the last reallocation").Set(st.FinalEstimate)
	if st.InitialEstimate > 0 {
		reg.Gauge("acorn_core_goodput_gain_ratio",
			"final/initial estimated goodput of the last reallocation").
			Set(st.FinalEstimate / st.InitialEstimate)
	}
	reg.Counter("acorn_core_alloc_rank_evals_total",
		"per-AP rank evaluations performed across all reallocations").Add(uint64(st.Evals.RankEvals))
	reg.Counter("acorn_core_alloc_rank_cache_hits_total",
		"rank evaluations skipped by the dirty-rank cache").Add(uint64(st.Evals.RankCacheHits))
	reg.Counter("acorn_core_alloc_delta_evals_total",
		"candidate channels priced by incremental delta evaluation").Add(uint64(st.Evals.DeltaEvals))
	reg.Counter("acorn_core_alloc_full_evals_total",
		"candidate channels priced by full-network re-evaluation (generic path)").Add(uint64(st.Evals.FullEvals))
	reg.Counter("acorn_core_alloc_cell_recomputes_total",
		"per-cell throughput recomputations inside delta evaluations").Add(uint64(st.Evals.CellRecomputes))
	if scans := st.Evals.RankEvals + st.Evals.RankCacheHits; scans > 0 {
		reg.Gauge("acorn_core_alloc_rank_cache_hit_ratio",
			"fraction of rank lookups served from the dirty-rank cache in the last reallocation").
			Set(float64(st.Evals.RankCacheHits) / float64(scans))
	}
	if st.Fallback {
		reg.Counter("acorn_core_alloc_fallbacks_total",
			"Algorithm-2 runs (or sharded components) priced by the generic reference path instead of the incremental engine").Inc()
	}
	reg.Gauge("acorn_core_alloc_spectrum_components",
		"distinct 20 MHz components the engine assigned mask bits to in the last reallocation").
		Set(float64(st.SpectrumComponents))
	if st.GraphComponents > 0 {
		reg.Gauge("acorn_core_alloc_graph_components",
			"connected components of the populated contention graph in the last reallocation").
			Set(float64(st.GraphComponents))
		reg.Gauge("acorn_core_alloc_largest_component_aps",
			"populated APs in the largest contention component of the last reallocation").
			Set(float64(st.LargestComponent))
	}
	reg.Counter("acorn_core_graph_pairs_scanned_total",
		"AP pairs tested by the exact contention predicate during conflict-graph builds").Add(uint64(st.GraphPairsScanned))
	reg.Counter("acorn_core_graph_pairs_pruned_total",
		"AP pairs proven non-contending by the spatial index without an exact test").Add(uint64(st.GraphPairsPruned))
	if st.SpatialIndex {
		reg.Counter("acorn_core_graph_spatial_builds_total",
			"conflict-graph builds that ran on spatial-index candidates instead of the full pair scan").Inc()
	}
	if tot := st.GraphPairsScanned + st.GraphPairsPruned; tot > 0 {
		reg.Gauge("acorn_core_graph_candidate_ratio",
			"fraction of AP pairs the spatial index left for exact testing in the last graph build").
			Set(float64(st.GraphPairsScanned) / float64(tot))
	}
	if st.PartitionReused {
		reg.Counter("acorn_core_alloc_partition_reuses_total",
			"sharded solves that reused the engine-maintained contention partition instead of rebuilding the conflict graph").Inc()
	}
	if st.ShardWorkersUsed > 0 {
		reg.Counter("acorn_core_alloc_sharded_solves_total",
			"component-sharded Algorithm-2 runs completed").Inc()
		reg.Counter("acorn_core_alloc_components_solved_total",
			"contention components solved across all sharded reallocations").Add(uint64(st.SolvedComponents))
		h := reg.Histogram("acorn_core_alloc_component_solve_seconds",
			"per-component solve wall time of sharded reallocations", nil)
		for _, d := range st.ComponentDurations {
			h.Observe(d.Seconds())
		}
	}
	var w20, w40 int
	for _, ch := range cfg.Channels {
		switch ch.Width {
		case spectrum.Width40:
			w40++
		case spectrum.Width20:
			w20++
		}
	}
	reg.Gauge("acorn_core_cells_20mhz", "cells on a 20 MHz channel").Set(float64(w20))
	reg.Gauge("acorn_core_cells_40mhz", "cells on a bonded 40 MHz channel").Set(float64(w40))
	reg.Gauge("acorn_core_last_reallocation_unix",
		"unix time of the last completed reallocation").Set(float64(time.Now().Unix()))
}

// AutoConfigure is the whole ACORN pipeline for a static scenario: admit
// every client (Algorithm 1), then allocate channels (Algorithm 2). It
// returns the final evaluated report of the installed configuration.
func (c *Controller) AutoConfigure(clients []*wlan.Client) *wlan.NetworkReport {
	c.AdmitAll(clients)
	c.Reallocate()
	// A second association pass lets clients react to the final channel
	// widths (the deployed system interleaves these continuously).
	c.reassociate(clients)
	c.Reallocate()
	return c.Network.Evaluate(c.cfg)
}

// reassociate re-runs Algorithm 1 for each client under the current
// channels, in the original arrival order.
func (c *Controller) reassociate(clients []*wlan.Client) {
	if e := c.engineFor(); e != nil {
		_, sst := e.sweep(clients, sweepFresh, 0, c.Assoc.workers())
		c.publishSweep(sst)
		return
	}
	for _, u := range clients {
		c.cfg.Unassoc(u.ID)
		d := Associate(c.Network, c.cfg, u)
		if d.APID != "" {
			c.cfg.SetAssoc(u.ID, d.APID)
		}
	}
}

// publishSweep records one engine sweep's round structure.
func (c *Controller) publishSweep(sst sweepStats) {
	reg := c.registry()
	reg.Counter("acorn_core_roam_sweep_rounds_total",
		"snapshot-evaluate-apply rounds across all association sweeps").Add(uint64(sst.rounds))
	reg.Counter("acorn_core_roam_sweep_moves_total",
		"association moves applied by sweeps").Add(uint64(sst.moves))
	reg.Counter("acorn_core_roam_sweep_deferrals_total",
		"client evaluations deferred to a later round by the dirty test").Add(uint64(sst.deferrals))
	reg.Histogram("acorn_core_roam_sweep_overlay_seconds",
		"per-sweep wall time spent in the frozen-round overlay machinery (fan-out + merge)", nil).
		Observe(float64(sst.overlayNanos) / 1e9)
	c.publishEngineStats()
}

// goodputAt is the shared "expected goodput at SNR and width" primitive the
// width adapter uses; it lives here so controller-level consumers can reuse
// it without reaching into ratecontrol directly.
func goodputAt(n *wlan.Network, snr units.DB, w spectrum.Width) float64 {
	sel := ratecontrol.Best(snr, w, n.PacketBytes)
	return sel.GoodputMbps
}

// Roam re-evaluates one client's association with roaming hysteresis: the
// client moves only if another AP's utility beats the incumbent's by the
// given fractional margin. Long-running deployments call it for every
// present client at each reallocation tick.
func (c *Controller) Roam(u *wlan.Client, margin float64) AssociationDecision {
	if e := c.engineFor(); e != nil {
		st := e.ensureState(u)
		d := e.evalOne(st, sweepSticky, margin, nil)
		if d.APID != "" {
			e.applyHome(u.ID, st, e.apIdx[d.APID])
		}
		return d
	}
	incumbent := c.cfg.Assoc[u.ID]
	d := AssociateSticky(c.Network, c.cfg, u, incumbent, margin)
	if d.APID != "" {
		c.cfg.SetAssoc(u.ID, d.APID)
	}
	return d
}

// RoamAll re-evaluates every given client's association with roaming
// hysteresis in input order — equivalent to calling Roam for each client in
// turn (each decision applied before the next evaluation), but dispatched as
// one engine sweep with Assoc.Workers-wide parallel beacon evaluation. The
// decisions and the final configuration are bit-identical to the sequential
// loop for any worker count.
func (c *Controller) RoamAll(clients []*wlan.Client, margin float64) []AssociationDecision {
	span := c.registry().Histogram("acorn_core_roam_sweep_seconds",
		"wall time of one whole-population roaming sweep", nil).Start()
	defer span.End()
	if e := c.engineFor(); e != nil {
		ds, sst := e.sweep(clients, sweepSticky, margin, c.Assoc.workers())
		c.publishSweep(sst)
		return ds
	}
	ds := make([]AssociationDecision, 0, len(clients))
	for _, u := range clients {
		ds = append(ds, c.Roam(u, margin))
	}
	return ds
}
