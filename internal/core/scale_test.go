package core

// Scale harness for the allocator: synthetic enterprise topologies
// (50/200/1000 APs), a 200-AP golden fixture pinning the incremental
// engine to the generic full-sweep oracle's output, and the benchmark
// pairs behind BENCH_alloc.json.
//
// The golden files are generated from the *generic* path (the pre-PR
// reference implementation) with -update; the test replays the incremental
// engine at worker counts 1/2/8 against them. A full-sweep run at 200 APs
// takes minutes, which is exactly why the golden is a committed file and
// not a live comparison:
//
//	go test ./internal/core -run TestAlloc200APGolden -update

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"strconv"
	"sync"
	"testing"

	"acorn/internal/rf"
	"acorn/internal/stats"
	"acorn/internal/units"
	"acorn/internal/wlan"
)

// scaleNetwork builds a deterministic synthetic enterprise floor: apCount
// APs on a square grid with 60 m pitch (each AP carrier-senses its grid
// neighborhood, degree ≈ 10–15 like a dense office deployment), and
// clientsPerAP clients jittered around each AP, a third of them behind an
// obstruction toward their nearest AP (the paper's poor links).
func scaleNetwork(apCount, clientsPerAP int, seed int64) (*wlan.Network, []*wlan.Client) {
	rng := stats.NewRand(seed)
	cols := int(math.Ceil(math.Sqrt(float64(apCount))))
	const pitch = 60.0
	aps := make([]*wlan.AP, 0, apCount)
	for i := 0; i < apCount; i++ {
		aps = append(aps, &wlan.AP{
			ID: fmt.Sprintf("ap%04d", i),
			Pos: rf.Point{
				X: float64(i%cols)*pitch + rng.Float64()*8,
				Y: float64(i/cols)*pitch + rng.Float64()*8,
			},
			TxPower: 18,
		})
	}
	clients := make([]*wlan.Client, 0, apCount*clientsPerAP)
	for i, ap := range aps {
		for k := 0; k < clientsPerAP; k++ {
			c := &wlan.Client{
				ID: fmt.Sprintf("u%05d", i*clientsPerAP+k),
				Pos: rf.Point{
					X: ap.Pos.X + (rng.Float64()-0.5)*50,
					Y: ap.Pos.Y + (rng.Float64()-0.5)*50,
				},
			}
			if rng.Float64() < 0.33 {
				c.ExtraLoss = map[string]units.DB{ap.ID: units.DB(6 + rng.Float64()*18)}
			}
			clients = append(clients, c)
		}
	}
	return wlan.NewNetwork(aps, clients), clients
}

// scaleSetup returns the cached (network, initial config) fixture for one
// topology size: random initial channels and Algorithm-1 associations, the
// state AllocateChannels starts from. AllocateChannels never mutates its
// inputs, so tests and benchmarks share the fixture.
func scaleSetup(tb testing.TB, apCount, clientsPerAP int, seed int64) (*wlan.Network, *wlan.Config) {
	tb.Helper()
	key := fmt.Sprintf("%d/%d/%d", apCount, clientsPerAP, seed)
	if v, ok := scaleCache.Load(key); ok {
		f := v.(*scaleFixture)
		return f.n, f.cfg
	}
	n, clients := scaleNetwork(apCount, clientsPerAP, seed)
	cfg := wlan.NewConfig()
	rng := stats.NewRand(seed)
	RandomInitial(n, cfg, rng.Intn)
	// Engine-backed fresh sweep: bit-identical to AssociateAll (the churn
	// equivalence suite proves it) but orders of magnitude faster, which
	// keeps the dense fixtures (50 AP / 2000 clients) affordable in smoke
	// runs that only need the fixture, not the reference path.
	if e := newAssocEngine(n, cfg); e != nil {
		e.sweep(clients, sweepFresh, 0, 1)
	} else {
		AssociateAll(n, cfg, clients)
	}
	v, _ := scaleCache.LoadOrStore(key, &scaleFixture{n: n, cfg: cfg})
	f := v.(*scaleFixture)
	return f.n, f.cfg
}

type scaleFixture struct {
	n   *wlan.Network
	cfg *wlan.Config
}

var scaleCache sync.Map

// alloc200Opts bounds the golden fixture's run: two periods of at most four
// switches each exercise the dirty-rank cache within and across periods
// while keeping the one-time full-sweep golden generation to minutes.
var alloc200Opts = AllocOptions{MaxPeriods: 2, MaxSwitchesPerPeriod: 4}

const (
	alloc200GoldenPath = "testdata/alloc200_golden.json"
	alloc200TracePath  = "testdata/alloc200_trace.jsonl"
)

// alloc200Golden is the JSON shape of the committed 200-AP fixture. Floats
// are hex-formatted so the comparison is bit-exact across encode/decode.
type alloc200Golden struct {
	Channels   map[string]string `json:"channels"`
	Periods    int               `json:"periods"`
	Switches   int               `json:"switches"`
	Initial    string            `json:"initial_mbps_hex"`
	Final      string            `json:"final_mbps_hex"`
	Trajectory []string          `json:"trajectory_mbps_hex"`
	Winners    []alloc200Switch  `json:"winners"`
}

type alloc200Switch struct {
	Period  int    `json:"period"`
	AP      string `json:"ap"`
	Channel string `json:"channel"`
	Rank    string `json:"rank_hex"`
}

func hexFloat(v float64) string { return strconv.FormatFloat(v, 'x', -1, 64) }

func alloc200Record(cfg *wlan.Config, st AllocStats) alloc200Golden {
	g := alloc200Golden{
		Channels: make(map[string]string, len(cfg.Channels)),
		Periods:  st.Periods,
		Switches: st.Switches,
		Initial:  hexFloat(st.InitialEstimate),
		Final:    hexFloat(st.FinalEstimate),
	}
	for apID, ch := range cfg.Channels {
		g.Channels[apID] = ch.String()
	}
	for _, y := range st.Trajectory {
		g.Trajectory = append(g.Trajectory, hexFloat(y))
	}
	for _, rec := range st.History {
		g.Winners = append(g.Winners, alloc200Switch{
			Period: rec.Period, AP: rec.AP, Channel: rec.Channel.String(), Rank: hexFloat(rec.Rank),
		})
	}
	return g
}

// TestAlloc200APGolden replays the incremental engine on the 200-AP fixture
// against goldens generated from the generic full-sweep reference, for
// worker counts 1, 2 and 8. Allocation, trajectory and winner sequence must
// be bit-identical to the pre-optimization implementation; the convergence
// trace must match the golden trace field-wise.
func TestAlloc200APGolden(t *testing.T) {
	n, cfg := scaleSetup(t, 200, 2, 42)
	if *updateGolden {
		gotCfg, st := allocateGeneric(n, cfg, NewEstimator(n), alloc200Opts)
		if err := os.MkdirAll(filepath.Dir(alloc200GoldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		data, err := json.MarshalIndent(alloc200Record(gotCfg, st), "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(alloc200GoldenPath, append(data, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(alloc200TracePath, traceBytes(t, st, gotCfg), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s and %s (%d switches)", alloc200GoldenPath, alloc200TracePath, st.Switches)
		return
	}
	raw, err := os.ReadFile(alloc200GoldenPath)
	if err != nil {
		t.Fatalf("missing golden file (run with -update): %v", err)
	}
	var want alloc200Golden
	if err := json.Unmarshal(raw, &want); err != nil {
		t.Fatalf("corrupt golden: %v", err)
	}
	wantTrace, err := os.ReadFile(alloc200TracePath)
	if err != nil {
		t.Fatalf("missing golden trace (run with -update): %v", err)
	}

	for _, workers := range []int{1, 2, 8} {
		workers := workers
		t.Run(fmt.Sprintf("workers-%d", workers), func(t *testing.T) {
			opts := alloc200Opts
			opts.Workers = workers
			gotCfg, st := AllocateChannels(n, cfg, NewEstimator(n), opts)
			got := alloc200Record(gotCfg, st)
			if got.Periods != want.Periods || got.Switches != want.Switches {
				t.Fatalf("periods/switches = %d/%d, want %d/%d",
					got.Periods, got.Switches, want.Periods, want.Switches)
			}
			if got.Initial != want.Initial || got.Final != want.Final {
				t.Errorf("estimates %s/%s, want %s/%s (bit-exact)",
					got.Initial, got.Final, want.Initial, want.Final)
			}
			if len(got.Channels) != len(want.Channels) {
				t.Fatalf("%d channels, want %d", len(got.Channels), len(want.Channels))
			}
			for apID, ch := range want.Channels {
				if got.Channels[apID] != ch {
					t.Errorf("AP %s on %s, want %s", apID, got.Channels[apID], ch)
				}
			}
			if len(got.Trajectory) != len(want.Trajectory) {
				t.Fatalf("trajectory has %d points, want %d", len(got.Trajectory), len(want.Trajectory))
			}
			for i := range want.Trajectory {
				if got.Trajectory[i] != want.Trajectory[i] {
					t.Errorf("trajectory[%d] = %s, want %s (bit-exact)", i, got.Trajectory[i], want.Trajectory[i])
				}
			}
			for i := range want.Winners {
				if i < len(got.Winners) && got.Winners[i] != want.Winners[i] {
					t.Errorf("switch %d = %+v, want %+v", i, got.Winners[i], want.Winners[i])
				}
			}
			// The convergence trace must reproduce the reference trace
			// field-wise (same tolerance discipline as the golden trace
			// test: exact structure and winners, 1e-6-relative floats).
			gotEvs := parseTrace(t, traceBytes(t, st, gotCfg))
			wantEvs := parseTrace(t, wantTrace)
			if len(gotEvs) != len(wantEvs) {
				t.Fatalf("trace has %d events, golden has %d", len(gotEvs), len(wantEvs))
			}
			for i := range gotEvs {
				if !traceEventsEqual(gotEvs[i], wantEvs[i]) {
					t.Errorf("trace event %d differs:\ngot  %+v\nwant %+v", i, gotEvs[i], wantEvs[i])
				}
			}
		})
	}
}

// traceBytes renders one reallocation's convergence trace to JSONL.
func traceBytes(t *testing.T, st AllocStats, cfg *wlan.Config) []byte {
	t.Helper()
	var buf bytes.Buffer
	tw := NewTraceWriter(&buf)
	tw.Reallocation(st, cfg)
	if err := tw.Err(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// --- Benchmarks -----------------------------------------------------------
//
// Reference* pairs measure the generic full-sweep path (the pre-PR
// implementation, reached through the public API via an opaque estimator
// wrapper) against the incremental engine under identical options, so the
// BENCH_alloc.json speedup ratios compare like with like in the same run.
// The heavyweight entries skip under -short so bench-smoke stays fast.

var allocBenchOpts = AllocOptions{MaxPeriods: 1, MaxSwitchesPerPeriod: 2}

func benchAlloc(b *testing.B, apCount, clientsPerAP int, opts AllocOptions, generic bool) {
	n, cfg := scaleSetup(b, apCount, clientsPerAP, 42)
	est := NewEstimator(n)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if generic {
			AllocateChannels(n, cfg, opaqueEstimator{est}, opts)
		} else {
			AllocateChannels(n, cfg, est, opts)
		}
	}
}

func BenchmarkAllocReference50AP(b *testing.B) {
	benchAlloc(b, 50, 2, allocBenchOpts, true)
}

func BenchmarkAllocIncremental50AP(b *testing.B) {
	benchAlloc(b, 50, 2, allocBenchOpts, false)
}

func BenchmarkAllocReference200AP(b *testing.B) {
	if testing.Short() {
		b.Skip("full-sweep 200-AP reference takes ~a minute per run")
	}
	benchAlloc(b, 200, 2, allocBenchOpts, true)
}

func BenchmarkAllocIncremental200AP(b *testing.B) {
	benchAlloc(b, 200, 2, allocBenchOpts, false)
}

func BenchmarkAllocIncremental200APParallel(b *testing.B) {
	opts := allocBenchOpts
	opts.Workers = 0 // GOMAXPROCS
	benchAlloc(b, 200, 2, opts, false)
}

// BenchmarkAllocIncremental200APConverged runs the incremental engine to
// full convergence (the paper's unbounded inner loop) — the realistic
// end-to-end reallocation cost at enterprise scale.
func BenchmarkAllocIncremental200APConverged(b *testing.B) {
	benchAlloc(b, 200, 2, AllocOptions{}, false)
}

func BenchmarkAllocIncremental1000AP(b *testing.B) {
	if testing.Short() {
		b.Skip("1000-AP fixture setup is heavyweight")
	}
	benchAlloc(b, 1000, 2, AllocOptions{MaxPeriods: 1, MaxSwitchesPerPeriod: 8}, false)
}
