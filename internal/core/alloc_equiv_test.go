package core

// Equivalence tests for the incremental Algorithm 2 engine: the incremental
// path must reproduce the generic full-sweep path bit for bit (allocations,
// trajectories, estimates), and the parallel rank scan must reproduce the
// serial one bit for bit for any worker count.

import (
	"fmt"
	"math"
	"testing"

	"acorn/internal/stats"
	"acorn/internal/wlan"
)

// opaqueEstimator hides the concrete *Estimator type from AllocateChannels'
// dispatch, forcing the generic full-sweep path — the pre-optimization
// reference implementation.
type opaqueEstimator struct{ est ThroughputEstimator }

func (o opaqueEstimator) NetworkThroughput(cfg *wlan.Config) float64 {
	return o.est.NetworkThroughput(cfg)
}

// equivFixture builds a (network, initial config) pair with associations in
// place, ready for AllocateChannels.
func equivFixture(t testing.TB, n *wlan.Network, clients []*wlan.Client, seed int64) *wlan.Config {
	t.Helper()
	cfg := wlan.NewConfig()
	rng := stats.NewRand(seed)
	RandomInitial(n, cfg, rng.Intn)
	AssociateAll(n, cfg, clients)
	return cfg
}

// compareAllocResults asserts got reproduces want. Everything the search
// commits — channels, trajectory, estimates, winner ranks — must match
// bitwise. The per-AP Ranks maps of non-winners may drift by float
// re-association in the dirty-rank cache, so they get a tight relative
// tolerance instead; Evals is excluded (the two paths do different work by
// design).
func compareAllocResults(t *testing.T, label string, wantCfg, gotCfg *wlan.Config, want, got AllocStats, rankTol float64) {
	t.Helper()
	if len(gotCfg.Channels) != len(wantCfg.Channels) {
		t.Fatalf("%s: %d channels, want %d", label, len(gotCfg.Channels), len(wantCfg.Channels))
	}
	for apID, ch := range wantCfg.Channels {
		if gotCfg.Channels[apID] != ch {
			t.Errorf("%s: AP %s on %v, want %v", label, apID, gotCfg.Channels[apID], ch)
		}
	}
	if got.Periods != want.Periods || got.Switches != want.Switches {
		t.Errorf("%s: periods/switches = %d/%d, want %d/%d",
			label, got.Periods, got.Switches, want.Periods, want.Switches)
	}
	if got.InitialEstimate != want.InitialEstimate {
		t.Errorf("%s: initial estimate %v, want %v (must be bit-identical)",
			label, got.InitialEstimate, want.InitialEstimate)
	}
	if got.FinalEstimate != want.FinalEstimate {
		t.Errorf("%s: final estimate %v, want %v (must be bit-identical)",
			label, got.FinalEstimate, want.FinalEstimate)
	}
	if len(got.Trajectory) != len(want.Trajectory) {
		t.Fatalf("%s: trajectory has %d points, want %d", label, len(got.Trajectory), len(want.Trajectory))
	}
	for i := range want.Trajectory {
		if got.Trajectory[i] != want.Trajectory[i] {
			t.Errorf("%s: trajectory[%d] = %v, want %v (must be bit-identical)",
				label, i, got.Trajectory[i], want.Trajectory[i])
		}
	}
	if len(got.History) != len(want.History) {
		t.Fatalf("%s: history has %d switches, want %d", label, len(got.History), len(want.History))
	}
	for i := range want.History {
		w, g := want.History[i], got.History[i]
		if g.Period != w.Period || g.AP != w.AP || g.Channel != w.Channel {
			t.Errorf("%s: switch %d = %s→%v in period %d, want %s→%v in period %d",
				label, i, g.AP, g.Channel, g.Period, w.AP, w.Channel, w.Period)
		}
		if g.Rank != w.Rank || g.Estimate != w.Estimate {
			t.Errorf("%s: switch %d rank/estimate = %v/%v, want %v/%v (must be bit-identical)",
				label, i, g.Rank, g.Estimate, w.Rank, w.Estimate)
		}
		if len(g.Ranks) != len(w.Ranks) {
			t.Errorf("%s: switch %d has %d ranks, want %d", label, i, len(g.Ranks), len(w.Ranks))
			continue
		}
		for apID, wr := range w.Ranks {
			gr, ok := g.Ranks[apID]
			if !ok {
				t.Errorf("%s: switch %d missing rank for %s", label, i, apID)
				continue
			}
			if math.Abs(gr-wr) > rankTol*(1+math.Abs(wr)) {
				t.Errorf("%s: switch %d rank[%s] = %v, want %v", label, i, apID, gr, wr)
			}
		}
	}
}

// TestAllocIncrementalMatchesReference runs the incremental engine against
// the generic full-sweep oracle over the shared fixtures and a spread of
// random topologies.
func TestAllocIncrementalMatchesReference(t *testing.T) {
	type fixture struct {
		name string
		n    *wlan.Network
		cfg  *wlan.Config
		opts AllocOptions
	}
	var fixtures []fixture

	mn, mc := mixedNetwork()
	fixtures = append(fixtures, fixture{
		name: "mixed", n: mn, cfg: equivFixture(t, mn, mc, 3),
	})
	for seed := int64(1); seed <= 12; seed++ {
		n, clients := randomNetwork(seed)
		fixtures = append(fixtures, fixture{
			name: fmt.Sprintf("random-%d", seed),
			n:    n, cfg: equivFixture(t, n, clients, seed),
		})
	}
	mid, midClients := scaleNetwork(30, 2, 99)
	fixtures = append(fixtures, fixture{
		name: "scale-30", n: mid, cfg: equivFixture(t, mid, midClients, 99),
	})
	// A bounded run exercises the switch budget on both paths.
	bn, bc := scaleNetwork(16, 2, 5)
	fixtures = append(fixtures, fixture{
		name: "budgeted-16", n: bn, cfg: equivFixture(t, bn, bc, 5),
		opts: AllocOptions{MaxSwitchesPerPeriod: 3},
	})

	for _, f := range fixtures {
		f := f
		t.Run(f.name, func(t *testing.T) {
			wantCfg, want := allocateGeneric(f.n, f.cfg, NewEstimator(f.n), f.opts)
			gotCfg, got := AllocateChannels(f.n, f.cfg, NewEstimator(f.n), f.opts)
			if got.Evals.DeltaEvals == 0 && got.Switches+want.Switches > 0 {
				t.Fatalf("incremental path did not engage (no delta evals)")
			}
			compareAllocResults(t, f.name, wantCfg, gotCfg, want, got, 1e-9)
		})
	}
}

// TestAllocGenericPathForOpaqueEstimators pins the dispatch: an estimator
// that is not *Estimator must take the generic path and produce the same
// result the incremental path computes for the equivalent *Estimator.
func TestAllocGenericPathForOpaqueEstimators(t *testing.T) {
	n, clients := mixedNetwork()
	cfg := equivFixture(t, n, clients, 7)
	_, viaOpaque := AllocateChannels(n, cfg, opaqueEstimator{NewEstimator(n)}, AllocOptions{})
	if viaOpaque.Evals.FullEvals == 0 {
		t.Fatal("opaque estimator should have taken the full-sweep path")
	}
	if viaOpaque.Evals.DeltaEvals != 0 {
		t.Fatal("opaque estimator must not reach the incremental path")
	}
	_, viaIncremental := AllocateChannels(n, cfg, NewEstimator(n), AllocOptions{})
	if viaIncremental.Evals.FullEvals != 0 {
		t.Fatal("*Estimator should have taken the incremental path")
	}
	if viaIncremental.FinalEstimate != viaOpaque.FinalEstimate {
		t.Fatalf("paths disagree: %v vs %v", viaIncremental.FinalEstimate, viaOpaque.FinalEstimate)
	}
}

// TestAllocParallelDeterminism asserts serial and parallel rank evaluation
// produce bit-identical configurations and statistics — including
// Trajectory, History (with Ranks) and the Evals counters — for worker
// counts 1, 2 and 8. Run under -race this also exercises the worker views
// for data races.
func TestAllocParallelDeterminism(t *testing.T) {
	type fixture struct {
		name string
		n    *wlan.Network
		cfg  *wlan.Config
	}
	var fixtures []fixture
	mn, mc := mixedNetwork()
	fixtures = append(fixtures, fixture{"mixed", mn, equivFixture(t, mn, mc, 7)})
	for _, seed := range []int64{2, 9} {
		n, clients := randomNetwork(seed)
		fixtures = append(fixtures, fixture{
			fmt.Sprintf("random-%d", seed), n, equivFixture(t, n, clients, seed),
		})
	}
	sn, sc := scaleNetwork(64, 2, 11)
	fixtures = append(fixtures, fixture{"scale-64", sn, equivFixture(t, sn, sc, 11)})

	for _, f := range fixtures {
		f := f
		t.Run(f.name, func(t *testing.T) {
			baseCfg, base := AllocateChannels(f.n, f.cfg, NewEstimator(f.n), AllocOptions{Workers: 1})
			for _, workers := range []int{2, 8} {
				gotCfg, got := AllocateChannels(f.n, f.cfg, NewEstimator(f.n), AllocOptions{Workers: workers})
				compareAllocResults(t, fmt.Sprintf("workers=%d", workers), baseCfg, gotCfg, base, got, 0)
				// With zero tolerance above, Ranks already matched
				// bitwise; the work counters must match too.
				if got.Evals != base.Evals {
					t.Errorf("workers=%d: evals %+v, want %+v", workers, got.Evals, base.Evals)
				}
			}
		})
	}
}
