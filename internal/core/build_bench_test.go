package core

// The benchmark pair behind BENCH_build.json: the static contention-graph
// build over the same 2000-AP campus as BENCH_shard (40 buildings of 50
// APs, kilometers apart), once through the uniform-grid spatial index (AP
// candidate queries at the carrier-sense cutoff radius) and once through
// the exact O(P²) pair scan. The two paths produce bit-identical neighbor
// sets and components by construction — pinned by the spatial equivalence
// suite — so the derived build_speedup_2000ap ratio prices the index alone.

import "testing"

func benchGraphBuild(b *testing.B, opts AllocOptions) {
	n, cfg := multiBuildingSetup(b, 40, 50, 2, 77, nil)
	b.ReportAllocs()
	b.ResetTimer()
	var g *conflictGraph
	for i := 0; i < b.N; i++ {
		g = buildConflictGraph(n, cfg, 1, opts)
	}
	b.StopTimer()
	if opts.NoSpatialIndex == g.spatial {
		b.Fatalf("spatial=%v with NoSpatialIndex=%v: wrong build path ran",
			g.spatial, opts.NoSpatialIndex)
	}
	b.ReportMetric(float64(g.pairsScanned), "pairs_scanned")
	b.ReportMetric(float64(g.pairsPruned), "pairs_pruned")
	b.ReportMetric(float64(len(g.comps)), "components")
}

// BenchmarkGraphBuildIndexed2000AP builds the campus contention graph
// through the spatial index (the default path).
func BenchmarkGraphBuildIndexed2000AP(b *testing.B) {
	benchGraphBuild(b, AllocOptions{})
}

// BenchmarkGraphBuildFullScan2000AP builds the same graph through the
// exact all-pairs scan — the pre-index baseline the speedup is measured
// against.
func BenchmarkGraphBuildFullScan2000AP(b *testing.B) {
	benchGraphBuild(b, AllocOptions{NoSpatialIndex: true})
}
