package core

// Tests for the component decomposition and the component-sharded solver
// (components.go, DESIGN.md §13), plus the >64-spectrum-component fixtures
// that prove the multi-word bitset lift: the fallback latches are gone, so
// bands wider than one machine word must run entirely on the incremental
// engines and still match the reference oracles bit for bit.

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"acorn/internal/obs"
	"acorn/internal/rf"
	"acorn/internal/spectrum"
	"acorn/internal/stats"
	"acorn/internal/units"
	"acorn/internal/wlan"
)

// multiBuildingNetwork builds a campus: `buildings` dense floors (scaleNetwork
// geometry: square grid, 60 m pitch) spaced kilometers apart, so each building
// is one connected contention component and the campus is an exact disjoint
// union. clientsPerAP clients jitter around each AP as in scaleNetwork.
func multiBuildingNetwork(buildings, apsPer, clientsPer int, seed int64) (*wlan.Network, []*wlan.Client) {
	rng := stats.NewRand(seed)
	bcols := int(math.Ceil(math.Sqrt(float64(buildings))))
	cols := int(math.Ceil(math.Sqrt(float64(apsPer))))
	const (
		pitch   = 60.0
		spacing = 5000.0 // far beyond carrier-sense range of any AP
	)
	aps := make([]*wlan.AP, 0, buildings*apsPer)
	clients := make([]*wlan.Client, 0, buildings*apsPer*clientsPer)
	for b := 0; b < buildings; b++ {
		ox := float64(b%bcols) * spacing
		oy := float64(b/bcols) * spacing
		for i := 0; i < apsPer; i++ {
			ap := &wlan.AP{
				ID: fmt.Sprintf("ap%05d", b*apsPer+i),
				Pos: rf.Point{
					X: ox + float64(i%cols)*pitch + rng.Float64()*8,
					Y: oy + float64(i/cols)*pitch + rng.Float64()*8,
				},
				TxPower: 18,
			}
			aps = append(aps, ap)
			for k := 0; k < clientsPer; k++ {
				c := &wlan.Client{
					ID: fmt.Sprintf("u%06d", (b*apsPer+i)*clientsPer+k),
					Pos: rf.Point{
						X: ap.Pos.X + (rng.Float64()-0.5)*50,
						Y: ap.Pos.Y + (rng.Float64()-0.5)*50,
					},
				}
				if rng.Float64() < 0.33 {
					c.ExtraLoss = map[string]units.DB{ap.ID: units.DB(6 + rng.Float64()*18)}
				}
				clients = append(clients, c)
			}
		}
	}
	return wlan.NewNetwork(aps, clients), clients
}

// multiBuildingSetup is the cached campus fixture: random initial channels
// and engine-built associations, shared by tests and the shard benchmarks
// (AllocateChannels never mutates its inputs). band, when non-nil, replaces
// the default 12-channel plan before anything is assigned.
func multiBuildingSetup(tb testing.TB, buildings, apsPer, clientsPer int, seed int64, band *spectrum.Band) (*wlan.Network, *wlan.Config) {
	tb.Helper()
	key := fmt.Sprintf("%d/%d/%d/%d/%d", buildings, apsPer, clientsPer, seed, bandKey(band))
	if v, ok := campusCache.Load(key); ok {
		f := v.(*scaleFixture)
		return f.n, f.cfg
	}
	n, clients := multiBuildingNetwork(buildings, apsPer, clientsPer, seed)
	if band != nil {
		n.Band = band
	}
	cfg := wlan.NewConfig()
	rng := stats.NewRand(seed)
	RandomInitial(n, cfg, rng.Intn)
	e := newAssocEngine(n, cfg)
	if e == nil {
		tb.Fatal("association engine rejected the campus fixture")
	}
	e.sweep(clients, sweepFresh, 0, 1)
	v, _ := campusCache.LoadOrStore(key, &scaleFixture{n: n, cfg: cfg})
	f := v.(*scaleFixture)
	return f.n, f.cfg
}

func bandKey(b *spectrum.Band) int {
	if b == nil {
		return 0
	}
	return b.NumChannels20()
}

var campusCache sync.Map

// wideBand returns a band of n20 20 MHz channels (spaced like the 5 GHz
// plan, consecutive plan entries bonding into 40 MHz channels). n20 > 64
// forces multi-word co-existence masks everywhere.
func wideBand(n20 int) *spectrum.Band {
	ids := make([]spectrum.ChannelID, n20)
	for i := range ids {
		ids[i] = spectrum.ChannelID(36 + 4*i)
	}
	return spectrum.NewBand(ids)
}

// TestContentionComponents pins the partitioner: a 5-building campus splits
// into exactly 5 components that partition the populated cells, the
// standalone conflict-graph build agrees with allocState's adjacency, and
// the graph is identical for any worker count.
func TestContentionComponents(t *testing.T) {
	const buildings, apsPer = 5, 9
	n, cfg := multiBuildingSetup(t, buildings, apsPer, 2, 11, nil)
	st := newAllocState(n, cfg, NewEstimator(n), AllocOptions{})
	if st == nil {
		t.Fatal("newAllocState rejected the campus fixture")
	}
	if len(st.comps) != buildings {
		t.Fatalf("allocState found %d components, want %d", len(st.comps), buildings)
	}
	seen := make(map[int32]bool)
	for ci, comp := range st.comps {
		if len(comp) == 0 {
			t.Fatalf("component %d is empty", ci)
		}
		building := int(comp[0]) / apsPer
		for k, i := range comp {
			if seen[i] {
				t.Fatalf("AP index %d appears in two components", i)
			}
			seen[i] = true
			if k > 0 && comp[k-1] >= i {
				t.Fatalf("component %d not strictly ascending at %d", ci, k)
			}
			if int(i)/apsPer != building {
				t.Fatalf("component %d mixes buildings %d and %d", ci, building, int(i)/apsPer)
			}
		}
	}
	if len(seen) != len(st.popIdx) {
		t.Fatalf("components cover %d cells, want %d populated", len(seen), len(st.popIdx))
	}

	ref := buildConflictGraph(n, cfg, 1, AllocOptions{})
	for _, workers := range []int{1, 4} {
		g := buildConflictGraph(n, cfg, workers, AllocOptions{})
		if len(g.comps) != len(st.comps) {
			t.Fatalf("workers=%d: graph found %d components, allocState %d", workers, len(g.comps), len(st.comps))
		}
		for ci := range g.comps {
			if fmt.Sprint(g.comps[ci]) != fmt.Sprint(st.comps[ci]) {
				t.Fatalf("workers=%d: component %d = %v, allocState has %v", workers, ci, g.comps[ci], st.comps[ci])
			}
		}
		for i := range g.neighbors {
			if fmt.Sprint(g.neighbors[i]) != fmt.Sprint(ref.neighbors[i]) {
				t.Fatalf("workers=%d: neighbors[%d] = %v, want %v", workers, i, g.neighbors[i], ref.neighbors[i])
			}
			if fmt.Sprint(g.neighbors[i]) != fmt.Sprint(st.neighbors[i]) {
				t.Fatalf("workers=%d: neighbors[%d] = %v, allocState has %v", workers, i, g.neighbors[i], st.neighbors[i])
			}
		}
	}
}

// shardOpts bounds the sharded equivalence runs: two periods of at most two
// switches per component.
var shardOpts = AllocOptions{MaxPeriods: 2, MaxSwitchesPerPeriod: 2}

// allocFingerprint captures everything the determinism contract promises to
// be bit-identical across worker counts.
func allocFingerprint(cfg *wlan.Config, st AllocStats) string {
	g := alloc200Record(cfg, st)
	g.Periods = st.Periods
	data, _ := json.Marshal(g)
	return fmt.Sprintf("%s|graph=%d|solved=%d|evals=%+v", data, st.GraphComponents, st.SolvedComponents, st.Evals)
}

// TestAllocShardedDeterministicAcrossWorkers runs the component-sharded
// solver at ShardWorkers 1/2/8 on a 6-building campus and requires the full
// fingerprint — channels, switch history, trajectory, estimates, eval
// counters — to be bit-identical (the -race run of this test is the
// scheduler-interleaving half of the proof).
func TestAllocShardedDeterministicAcrossWorkers(t *testing.T) {
	n, cfg := multiBuildingSetup(t, 6, 8, 3, 7, nil)
	var want string
	var wantStats AllocStats
	for _, workers := range []int{1, 2, 8} {
		opts := shardOpts
		opts.ShardWorkers = workers
		out, st := AllocateChannels(n, cfg, NewEstimator(n), opts)
		if st.GraphComponents != 6 {
			t.Fatalf("ShardWorkers=%d: %d graph components, want 6", workers, st.GraphComponents)
		}
		if st.SolvedComponents != 6 {
			t.Fatalf("ShardWorkers=%d: solved %d components, want 6", workers, st.SolvedComponents)
		}
		if st.Fallback {
			t.Fatalf("ShardWorkers=%d: generic fallback latched", workers)
		}
		if len(st.ComponentDurations) != st.SolvedComponents {
			t.Fatalf("ShardWorkers=%d: %d component durations, want %d", workers, len(st.ComponentDurations), st.SolvedComponents)
		}
		got := allocFingerprint(out, st)
		if want == "" {
			want, wantStats = got, st
			if st.Switches == 0 {
				t.Fatal("fixture produced no switches; the determinism check is vacuous")
			}
			t.Logf("fixture: %d switches across %d components", st.Switches, st.GraphComponents)
			continue
		}
		if got != want {
			t.Errorf("ShardWorkers=%d diverges from ShardWorkers=1:\ngot  %s\nwant %s", workers, got, want)
		}
	}

	// The merged estimates must be the ordered sums of the per-component
	// totals, and the trajectory monotone non-decreasing (greedy switches
	// only ever improve their component, and the offsets preserve that
	// globally).
	for i := 1; i < len(wantStats.Trajectory); i++ {
		if wantStats.Trajectory[i] < wantStats.Trajectory[i-1] {
			t.Errorf("merged trajectory not monotone at %d: %v -> %v", i, wantStats.Trajectory[i-1], wantStats.Trajectory[i])
		}
	}
}

// TestAllocShardedMatchesComponentOracles is the sharded path's bit-exactness
// contract: every solved component must reproduce, bit for bit, what the
// generic full-sweep reference produces on that component's induced
// subproblem (channels, switch history, estimates), and the merged totals
// must be the ordered sums of the per-component totals.
func TestAllocShardedMatchesComponentOracles(t *testing.T) {
	n, cfg := multiBuildingSetup(t, 6, 8, 3, 7, nil)
	est := NewEstimator(n)
	opts := shardOpts
	opts.ShardWorkers = 2
	out, st := AllocateChannels(n, cfg, est, opts)

	g := buildConflictGraph(n, cfg, 1, AllocOptions{})
	subOpts := shardOpts
	subOpts.Workers = 1
	var initial, final float64
	switches := 0
	for ci, comp := range g.comps {
		subN, subCfg := buildSubproblem(n, cfg, comp, g.clientsOf)
		oracleEst := NewEstimator(subN)
		oracleEst.MeasurementNoiseDB = est.MeasurementNoiseDB
		oracleOut, oracleSt := allocateGeneric(subN, subCfg, oracleEst, subOpts)
		for _, i := range comp {
			apID := n.APs[i].ID
			if out.Channels[apID] != oracleOut.Channels[apID] {
				t.Errorf("component %d: AP %s on %v, oracle says %v", ci, apID, out.Channels[apID], oracleOut.Channels[apID])
			}
		}
		initial += oracleSt.InitialEstimate
		final += oracleSt.FinalEstimate
		switches += oracleSt.Switches
	}
	if math.Float64bits(st.InitialEstimate) != math.Float64bits(initial) {
		t.Errorf("merged initial %s, oracle sum %s", hexFloat(st.InitialEstimate), hexFloat(initial))
	}
	if math.Float64bits(st.FinalEstimate) != math.Float64bits(final) {
		t.Errorf("merged final %s, oracle sum %s", hexFloat(st.FinalEstimate), hexFloat(final))
	}
	if st.Switches != switches {
		t.Errorf("merged %d switches, oracle sum %d", st.Switches, switches)
	}
}

// TestAllocShardedOnlyWakesOwnComponent pins the property the streaming
// controller's neighbourhood re-optimization relies on: restricting Only to
// one building solves exactly that component and leaves every other
// building's channels untouched.
func TestAllocShardedOnlyWakesOwnComponent(t *testing.T) {
	const buildings, apsPer = 6, 8
	n, cfg := multiBuildingSetup(t, buildings, apsPer, 3, 7, nil)
	only := make(map[string]bool)
	for i := 0; i < apsPer; i++ {
		only[n.APs[i].ID] = true
	}
	opts := shardOpts
	opts.ShardWorkers = 4
	opts.Only = only
	out, st := AllocateChannels(n, cfg, NewEstimator(n), opts)
	if st.GraphComponents != buildings {
		t.Fatalf("%d graph components, want %d", st.GraphComponents, buildings)
	}
	if st.SolvedComponents != 1 {
		t.Fatalf("solved %d components, want 1 (only building 0 is dirty)", st.SolvedComponents)
	}
	for i := apsPer; i < len(n.APs); i++ {
		apID := n.APs[i].ID
		if out.Channels[apID] != cfg.Channels[apID] {
			t.Errorf("AP %s outside the dirty component switched %v -> %v", apID, cfg.Channels[apID], out.Channels[apID])
		}
	}
	for _, rec := range st.History {
		if !only[rec.AP] {
			t.Errorf("history reports a switch by ineligible AP %s", rec.AP)
		}
	}
}

// --- >64-spectrum-component fixtures (the lifted ceiling) ------------------

const allocWideGoldenPath = "testdata/allocwide_golden.json"

// wideSetup is the >64-spectrum-component allocator fixture: one dense
// 36-AP floor on a 72-channel band (72 20 MHz components + 36 bonded pairs,
// so every co-existence mask spans two words).
func wideSetup(tb testing.TB) (*wlan.Network, *wlan.Config) {
	return multiBuildingSetup(tb, 1, 36, 2, 5, wideBand(72))
}

// TestAllocWideBandGolden replays the incremental engine on the 72-channel
// fixture against a golden generated from the generic full-sweep reference
// (-update), at worker counts 1/2/8. Before the multi-word lift this
// topology latched the generic fallback; now it must run incrementally and
// still be bit-exact.
func TestAllocWideBandGolden(t *testing.T) {
	n, cfg := wideSetup(t)
	opts := AllocOptions{MaxPeriods: 2, MaxSwitchesPerPeriod: 4}
	if *updateGolden {
		gotCfg, st := allocateGeneric(n, cfg, NewEstimator(n), opts)
		if err := os.MkdirAll(filepath.Dir(allocWideGoldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		data, err := json.MarshalIndent(alloc200Record(gotCfg, st), "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(allocWideGoldenPath, append(data, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s (%d switches)", allocWideGoldenPath, st.Switches)
		return
	}
	raw, err := os.ReadFile(allocWideGoldenPath)
	if err != nil {
		t.Fatalf("missing golden file (run with -update): %v", err)
	}
	var want alloc200Golden
	if err := json.Unmarshal(raw, &want); err != nil {
		t.Fatalf("corrupt golden: %v", err)
	}
	for _, workers := range []int{1, 2, 8} {
		workers := workers
		t.Run(fmt.Sprintf("workers-%d", workers), func(t *testing.T) {
			o := opts
			o.Workers = workers
			gotCfg, st := AllocateChannels(n, cfg, NewEstimator(n), o)
			if st.Fallback {
				t.Fatal("wide band latched the generic fallback; the ceiling is back")
			}
			if st.SpectrumComponents != 72 {
				t.Fatalf("%d spectrum components, want 72", st.SpectrumComponents)
			}
			if st.Evals.FullEvals > 0 {
				t.Fatalf("%d full evaluations; wide band must run on deltas", st.Evals.FullEvals)
			}
			got := alloc200Record(gotCfg, st)
			if got.Periods != want.Periods || got.Switches != want.Switches {
				t.Fatalf("periods/switches = %d/%d, want %d/%d", got.Periods, got.Switches, want.Periods, want.Switches)
			}
			if got.Initial != want.Initial || got.Final != want.Final {
				t.Errorf("estimates %s/%s, want %s/%s (bit-exact)", got.Initial, got.Final, want.Initial, want.Final)
			}
			for apID, ch := range want.Channels {
				if got.Channels[apID] != ch {
					t.Errorf("AP %s on %s, want %s", apID, got.Channels[apID], ch)
				}
			}
			if len(got.Trajectory) != len(want.Trajectory) {
				t.Fatalf("trajectory has %d points, want %d", len(got.Trajectory), len(want.Trajectory))
			}
			for i := range want.Trajectory {
				if got.Trajectory[i] != want.Trajectory[i] {
					t.Errorf("trajectory[%d] = %s, want %s (bit-exact)", i, got.Trajectory[i], want.Trajectory[i])
				}
			}
			for i := range want.Winners {
				if i < len(got.Winners) && got.Winners[i] != want.Winners[i] {
					t.Errorf("switch %d = %+v, want %+v", i, got.Winners[i], want.Winners[i])
				}
			}
		})
	}
}

// TestAssocWideBandSweepMatchesReference drives the association engine's
// sweeps on the 72-channel fixture (two-word masks in sweepDirty and the
// access-share trials) against the sequential beacon-path oracle, at worker
// counts 1/2/8, requiring bit-identical decisions and final associations.
func TestAssocWideBandSweepMatchesReference(t *testing.T) {
	n, cfg := wideSetup(t)
	clients := n.Clients
	for _, workers := range []int{1, 2, 8} {
		workers := workers
		t.Run(fmt.Sprintf("workers-%d", workers), func(t *testing.T) {
			oracle := &oracleDriver{n: n, cfg: cfg.Clone()}
			engine := newEngineDriver(t, n, cfg.Clone(), workers)
			if engine.eng.compWords < 2 {
				t.Fatalf("engine masks span %d word(s), fixture should force 2", engine.eng.compWords)
			}
			for round := 0; round < 2; round++ {
				want := oracle.sweepSticky(clients, 0.05)
				got := engine.sweepSticky(clients, 0.05)
				for i := range want {
					if !decisionsEqual(want[i], got[i]) {
						t.Fatalf("round %d sticky decision %d: engine %+v, oracle %+v", round, i, got[i], want[i])
					}
				}
				want = oracle.sweepFresh(clients)
				got = engine.sweepFresh(clients)
				for i := range want {
					if !decisionsEqual(want[i], got[i]) {
						t.Fatalf("round %d fresh decision %d: engine %+v, oracle %+v", round, i, got[i], want[i])
					}
				}
			}
			assocMapsEqual(t, "wide-band sweep", oracle.config(), engine.config())
		})
	}
}

// TestCampusZeroFallbacks is the headline regression for the lifted ceiling:
// a 100-building, 1000-AP campus on a 104-channel band — over 100 contention
// components and 104 spectrum components — must run entirely on the
// incremental engines. The obs counters that used to track the 64-component
// fallback latches must stay at zero.
func TestCampusZeroFallbacks(t *testing.T) {
	if testing.Short() {
		t.Skip("1000-AP campus fixture skipped in -short")
	}
	n, clients := multiBuildingNetwork(100, 10, 1, 23)
	n.Band = wideBand(104)
	ctrl, err := NewController(n, 23)
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	ctrl.Obs = reg
	ctrl.Alloc = AllocOptions{ShardWorkers: 4, MaxPeriods: 1, MaxSwitchesPerPeriod: 1}
	ctrl.AdmitAll(clients)
	st := ctrl.Reallocate()

	if st.Fallback {
		t.Error("allocation latched the generic fallback")
	}
	if st.Evals.FullEvals > 0 {
		t.Errorf("%d full evaluations; campus must run on deltas", st.Evals.FullEvals)
	}
	if st.GraphComponents != 100 {
		t.Errorf("%d graph components, want 100", st.GraphComponents)
	}
	if st.SolvedComponents != 100 {
		t.Errorf("solved %d components, want 100", st.SolvedComponents)
	}
	if st.SpectrumComponents != 104 {
		t.Errorf("%d spectrum components, want 104", st.SpectrumComponents)
	}
	if v := reg.Counter("acorn_core_alloc_fallbacks_total",
		"allocations served by the generic full-sweep path").Value(); v != 0 {
		t.Errorf("acorn_core_alloc_fallbacks_total = %d, want 0", v)
	}
	if v := reg.Counter("acorn_core_assoc_engine_fallbacks_total",
		"bindings the association engine could not represent (reference path used)").Value(); v != 0 {
		t.Errorf("acorn_core_assoc_engine_fallbacks_total = %d, want 0", v)
	}
	if v := reg.Gauge("acorn_core_alloc_graph_components",
		"contention-graph components in the last sharded allocation").Value(); v != 100 {
		t.Errorf("acorn_core_alloc_graph_components = %v, want 100", v)
	}
	if v := reg.Counter("acorn_core_alloc_sharded_solves_total",
		"component-sharded Algorithm-2 runs").Value(); v != 1 {
		t.Errorf("acorn_core_alloc_sharded_solves_total = %d, want 1", v)
	}
	if v := reg.Counter("acorn_core_alloc_components_solved_total",
		"contention components solved by the sharded allocator").Value(); v != 100 {
		t.Errorf("acorn_core_alloc_components_solved_total = %d, want 100", v)
	}
}
