package core

// Streaming-controller suite: queue semantics (coalescing, annihilation,
// shedding, conservation — nothing vanishes uncounted), SwitchGate
// hysteresis/rate invariants, the degradation ladder and watchdog, a
// deterministic churn storm, and the delay-memo boundedness satellite.

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"acorn/internal/obs"
	"acorn/internal/rf"
	"acorn/internal/spectrum"
	"acorn/internal/wlan"
)

// vclock is a manually advanced clock for deterministic stream replay.
type vclock struct{ t time.Time }

func newVclock() *vclock {
	return &vclock{t: time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)}
}
func (v *vclock) now() time.Time          { return v.t }
func (v *vclock) advance(d time.Duration) { v.t = v.t.Add(d) }

// streamFixture builds a small grid controller with an isolated registry and
// no initial clients; events introduce the population.
func streamFixture(t testing.TB, apCount int, seed int64) (*Controller, *wlan.Network) {
	t.Helper()
	n, _ := scaleNetwork(apCount, 0, seed)
	ctrl, err := NewController(n, seed)
	if err != nil {
		t.Fatal(err)
	}
	ctrl.Obs = obs.NewRegistry()
	return ctrl, n
}

// clientNear makes a client within association range of AP index i.
func clientNear(n *wlan.Network, i int, id string) *wlan.Client {
	ap := n.APs[i%len(n.APs)]
	return &wlan.Client{ID: id, Pos: rf.Point{X: ap.Pos.X + 5, Y: ap.Pos.Y + 3}}
}

func TestStreamCoalescing(t *testing.T) {
	ctrl, n := streamFixture(t, 4, 1)
	vc := newVclock()
	s := NewStreamController(ctrl, StreamOptions{Now: vc.now})

	u1 := clientNear(n, 0, "u1")
	if !s.Offer(Event{Kind: EventReport, Client: u1}) {
		t.Fatal("offer rejected")
	}
	s.Offer(Event{Kind: EventReport, Client: u1}) // latest wins, no growth
	if st := s.Stats(); st.Offered != 2 || st.Coalesced != 1 || st.Depth != 1 {
		t.Fatalf("report coalescing: %+v", st)
	}

	// Arrival met by departure before processing: both cancel.
	u2 := clientNear(n, 1, "u2")
	s.Offer(Event{Kind: EventArrive, Client: u2})
	s.Offer(Event{Kind: EventDepart, ClientID: "u2"})
	if st := s.Stats(); st.Annihilated != 1 || st.Depth != 1 {
		t.Fatalf("annihilation: %+v", st)
	}

	// Depart then (re-)arrive is ordered work: two live entries.
	s.Offer(Event{Kind: EventDepart, ClientID: "u3"})
	s.Offer(Event{Kind: EventArrive, Client: clientNear(n, 2, "u3")})
	if st := s.Stats(); st.Depth != 3 {
		t.Fatalf("depart+arrive should queue separately: %+v", st)
	}

	// A report over a pending membership event adds nothing.
	s.Offer(Event{Kind: EventReport, Client: clientNear(n, 2, "u3")})
	if st := s.Stats(); st.Depth != 3 || st.Coalesced != 2 {
		t.Fatalf("report over membership: %+v", st)
	}

	// Malformed offers are rejected outright.
	if s.Offer(Event{Kind: EventArrive}) || s.Offer(Event{Kind: EventReport}) {
		t.Fatal("accepted an event with no client")
	}
}

func TestStreamSheddingPolicy(t *testing.T) {
	ctrl, n := streamFixture(t, 4, 2)
	vc := newVclock()
	s := NewStreamController(ctrl, StreamOptions{Now: vc.now, MaxQueue: 3})

	// Oldest report goes first: queue [report r0, arrive a0, report r1],
	// then one more arrival sheds r0 (not the membership events).
	s.Offer(Event{Kind: EventReport, Client: clientNear(n, 0, "r0")})
	s.Offer(Event{Kind: EventArrive, Client: clientNear(n, 1, "a0")})
	s.Offer(Event{Kind: EventReport, Client: clientNear(n, 2, "r1")})
	s.Offer(Event{Kind: EventArrive, Client: clientNear(n, 3, "a1")})
	st := s.Stats()
	if st.ShedReports != 1 || st.ShedCritical != 0 || st.Depth != 3 {
		t.Fatalf("report shed: %+v", st)
	}

	// All-membership queue: shedding has nothing cheap and goes critical.
	for i := 0; i < 2; i++ {
		s.Offer(Event{Kind: EventArrive, Client: clientNear(n, i, fmt.Sprintf("b%d", i))})
	}
	st = s.Stats()
	if st.ShedCritical == 0 {
		t.Fatalf("critical shed never fired: %+v", st)
	}
	if st.Depth != 3 || st.MaxDepth > 3 {
		t.Fatalf("queue bound violated: %+v", st)
	}

	// A shed client can be re-offered (pending map must not hold tombstones).
	if !s.Offer(Event{Kind: EventReport, Client: clientNear(n, 0, "r0")}) {
		t.Fatal("re-offer of shed client rejected")
	}
}

func TestStreamPumpMembershipAndConservation(t *testing.T) {
	ctrl, n := streamFixture(t, 4, 3)
	vc := newVclock()
	s := NewStreamController(ctrl, StreamOptions{Now: vc.now, RecordLatencies: 64})

	clients := make([]*wlan.Client, 0, 8)
	for i := 0; i < 8; i++ {
		u := clientNear(n, i, fmt.Sprintf("c%d", i))
		clients = append(clients, u)
		s.Offer(Event{Kind: EventArrive, Client: u})
	}
	vc.advance(50 * time.Millisecond)
	s.Pump()
	if got := len(ctrl.ConfigView().Assoc); got != 8 {
		t.Fatalf("want 8 associations after arrivals, got %d", got)
	}
	if len(n.Clients) != 8 {
		t.Fatalf("network membership not maintained: %d clients", len(n.Clients))
	}

	// Reports roam; departures retire membership and association.
	for _, u := range clients[:4] {
		s.Offer(Event{Kind: EventReport, Client: u})
	}
	for _, u := range clients[4:] {
		s.Offer(Event{Kind: EventDepart, ClientID: u.ID})
	}
	s.Pump()
	if got := len(ctrl.ConfigView().Assoc); got != 4 {
		t.Fatalf("want 4 associations after departures, got %d", got)
	}
	if len(n.Clients) != 4 {
		t.Fatalf("departed clients still network members: %d", len(n.Clients))
	}

	st := s.Stats()
	// Conservation: every accepted offer is accounted for — applied,
	// coalesced, annihilated (×2: the offer and the queued entry), shed, or
	// still queued. Nothing vanishes silently.
	accounted := st.Applied + st.Coalesced + 2*st.Annihilated +
		st.ShedReports + st.ShedCritical + uint64(st.Depth)
	if st.Offered != accounted {
		t.Fatalf("event conservation broken: offered %d, accounted %d (%+v)",
			st.Offered, accounted, st)
	}
	if st.LatencyCount == 0 || st.LatencyP50Cum <= 0 {
		t.Fatalf("decision latencies not recorded in ring: %+v", st)
	}
	if st.LatencyWindowCount == 0 || st.LatencyP50 <= 0 {
		t.Fatalf("windowed decision latencies not recorded: %+v", st)
	}
}

func TestSwitchGateHysteresisStreakAndMargin(t *testing.T) {
	vc := newVclock()
	chs := spectrum.DefaultBand5GHz().AllChannels()
	g := NewSwitchGate(GateOptions{Margin: 0.05, Streak: 2, RatePerHour: -1}, vc.now)

	// Below-margin gains never pass and reset the streak.
	if g.Consider("ap0", chs[0], 0.01, false) {
		t.Fatal("sub-margin switch approved")
	}
	// First above-margin proposal: streak 1 of 2 — vetoed.
	if g.Consider("ap0", chs[0], 0.10, false) {
		t.Fatal("first confirmation approved before streak")
	}
	// A different channel restarts the streak.
	if g.Consider("ap0", chs[1], 0.10, false) {
		t.Fatal("channel change kept the old streak")
	}
	if g.Consider("ap0", chs[1], 0.10, false) != true {
		t.Fatal("sustained proposal vetoed")
	}
	st := g.Stats()
	if st.Approved != 1 || st.MarginVetoes != 1 || st.StreakVetoes != 2 {
		t.Fatalf("gate stats: %+v", st)
	}
	// A margin failure mid-streak resets it.
	g.Consider("ap0", chs[0], 0.10, false)
	g.Consider("ap0", chs[0], 0.001, false) // resets
	if g.Consider("ap0", chs[0], 0.10, false) {
		t.Fatal("streak survived a margin failure")
	}
}

func TestSwitchGateTokenBucketBoundsRate(t *testing.T) {
	vc := newVclock()
	chs := spectrum.DefaultBand5GHz().AllChannels()
	// 60 switches/hour (one per minute), burst 2, instant streak.
	g := NewSwitchGate(GateOptions{Streak: -1, RatePerHour: 60, Burst: 2, FlapWindow: 24 * time.Hour}, vc.now)

	approvals := 0
	for i := 0; i < 10; i++ {
		if g.Consider("ap0", chs[i%len(chs)], 1.0, false) {
			approvals++
		}
	}
	if approvals != 2 {
		t.Fatalf("burst 2 allowed %d back-to-back switches", approvals)
	}
	if st := g.Stats(); st.RateVetoes != 8 {
		t.Fatalf("want 8 rate vetoes, got %+v", st)
	}
	// One minute refills exactly one token; the preserved streak commits.
	vc.advance(time.Minute)
	if !g.Consider("ap0", chs[0], 1.0, false) {
		t.Fatal("refilled token not granted")
	}
	if g.Consider("ap0", chs[1], 1.0, false) {
		t.Fatal("empty bucket approved a switch")
	}
	// bypassStreak (watchdog full passes) must still pay tokens.
	vc.advance(time.Minute)
	if !g.Consider("ap1", chs[0], 1.0, true) {
		t.Fatal("bypass with tokens vetoed")
	}
	g.Consider("ap1", chs[1], 1.0, true)
	if g.Consider("ap1", chs[2], 1.0, true) {
		t.Fatal("bypassStreak bypassed the token bucket")
	}

	// The formal bound: in any observed window W, per-AP switches never
	// exceed burst + rate·W.
	assertRateInvariant(t, g, 60, 2)
}

// assertRateInvariant checks every AP's switch history against the token
// bucket bound over all O(n²) windows.
func assertRateInvariant(t *testing.T, g *SwitchGate, ratePerHour float64, burst int) {
	t.Helper()
	for ap, times := range g.SwitchTimes() {
		for i := range times {
			for j := i; j < len(times); j++ {
				w := times[j].Sub(times[i]).Hours()
				bound := float64(burst) + ratePerHour*w
				if got := float64(j - i + 1); got > bound+1e-9 {
					t.Fatalf("rate violation at %s: %v switches in %.4fh (bound %.2f)",
						ap, j-i+1, w, bound)
				}
			}
		}
	}
}

func TestStreamDegradationLadderAndWatchdog(t *testing.T) {
	ctrl, n := streamFixture(t, 4, 4)
	vc := newVclock()
	s := NewStreamController(ctrl, StreamOptions{
		Now:            vc.now,
		MaxQueue:       64,
		MaxBatch:       1, // keep the queue deep across pumps
		DegradeDepth:   4,
		DegradeAfter:   time.Nanosecond,
		RecoverBelow:   2,
		WatchdogPeriod: time.Minute,
		Gate:           GateOptions{Streak: -1, Margin: -1},
	})

	for i := 0; i < 10; i++ {
		s.Offer(Event{Kind: EventReport, Client: clientNear(n, i, fmt.Sprintf("d%d", i))})
	}
	s.Pump() // saturation observed, clock not yet past DegradeAfter
	vc.advance(time.Millisecond)
	s.Pump() // degrades
	if st := s.Stats(); !st.Degraded || st.Degradations != 1 {
		t.Fatalf("stream did not degrade: %+v", st)
	}

	// Degraded pumps defer re-optimization; the watchdog eventually forces
	// a full pass.
	vc.advance(2 * time.Minute)
	s.Pump()
	st := s.Stats()
	if st.WatchdogFires == 0 || st.FullPasses == 0 {
		t.Fatalf("watchdog never fired while degraded: %+v", st)
	}

	// Draining below RecoverBelow recovers and runs the deferred batch.
	for s.Depth() > 1 {
		s.Pump()
	}
	vc.advance(time.Millisecond)
	s.Pump()
	if st := s.Stats(); st.Degraded {
		t.Fatalf("stream never recovered: %+v", st)
	}
}

// TestStreamChurnStorm drives a seeded storm of arrivals, reports and
// departures through the streaming path under a virtual clock and asserts
// the three robustness invariants: bounded queue memory, zero switch-rate
// violations, and a consistent final state (live clients associated,
// conservation intact).
func TestStreamChurnStorm(t *testing.T) {
	ctrl, n := streamFixture(t, 9, 5)
	vc := newVclock()
	const (
		maxQueue = 32
		rate     = 30.0
		burst    = 2
	)
	s := NewStreamController(ctrl, StreamOptions{
		Now:      vc.now,
		MaxQueue: maxQueue,
		Gate: GateOptions{
			Margin:      0.02,
			Streak:      2,
			RatePerHour: rate,
			Burst:       burst,
			FlapWindow:  24 * time.Hour, // retain the whole storm for the invariant check
		},
		WatchdogPeriod: 5 * time.Minute,
	})

	rng := rand.New(rand.NewSource(7))
	live := make([]*wlan.Client, 0, 64)
	nextID := 0
	for step := 0; step < 600; step++ {
		vc.advance(time.Duration(1+rng.Intn(2000)) * time.Millisecond)
		burstN := 1 + rng.Intn(5)
		for b := 0; b < burstN; b++ {
			switch {
			case len(live) < 8 || rng.Float64() < 0.35:
				u := clientNear(n, rng.Intn(len(n.APs)), fmt.Sprintf("s%05d", nextID))
				nextID++
				live = append(live, u)
				s.Offer(Event{Kind: EventArrive, Client: u})
			case rng.Float64() < 0.5:
				u := live[rng.Intn(len(live))]
				s.Offer(Event{Kind: EventReport, Client: u})
			default:
				i := rng.Intn(len(live))
				s.Offer(Event{Kind: EventDepart, ClientID: live[i].ID})
				live = append(live[:i], live[i+1:]...)
			}
		}
		if rng.Float64() < 0.7 {
			s.Pump()
		}
		if d := s.Depth(); d > maxQueue {
			t.Fatalf("queue bound broken at step %d: depth %d", step, d)
		}
	}
	// Quiesce: drain everything.
	for s.Pump() > 0 {
	}

	st := s.Stats()
	if st.MaxDepth > maxQueue {
		t.Fatalf("max depth %d exceeded bound %d", st.MaxDepth, maxQueue)
	}
	if st.QueueLen != 0 || st.Depth != 0 {
		t.Fatalf("queue not drained: %+v", st)
	}
	accounted := st.Applied + st.Coalesced + 2*st.Annihilated +
		st.ShedReports + st.ShedCritical
	if st.Offered != accounted {
		t.Fatalf("conservation broken after storm: offered %d accounted %d (%+v)",
			st.Offered, accounted, st)
	}
	assertRateInvariant(t, s.Gate(), rate, burst)

	// Final state consistency: exactly the live clients are members, and
	// every one of them (all in range by construction) holds an association.
	if len(n.Clients) != len(live) {
		t.Fatalf("membership drift: %d network clients vs %d live", len(n.Clients), len(live))
	}
	cfg := ctrl.ConfigView()
	for _, u := range live {
		if cfg.Assoc[u.ID] == "" {
			t.Fatalf("live client %s unassociated after quiesce", u.ID)
		}
	}
	if len(cfg.Assoc) != len(live) {
		t.Fatalf("stale associations: %d assoc vs %d live", len(cfg.Assoc), len(live))
	}
}

// TestAssocMemoBoundedUnderChurn is the satellite acceptance test: 10k
// unique clients churn through a 4-AP cell with at most 64 alive at once;
// every per-client engine structure must stay O(live), not O(ever-seen).
func TestAssocMemoBoundedUnderChurn(t *testing.T) {
	ctrl, n := streamFixture(t, 4, 6)
	const totalClients = 10000
	const maxLive = 64

	var live []*wlan.Client
	for i := 0; i < totalClients; i++ {
		u := clientNear(n, i, fmt.Sprintf("m%05d", i))
		n.Clients = append(n.Clients, u)
		ctrl.Admit(u)
		live = append(live, u)
		if len(live) > maxLive {
			old := live[0]
			live = live[1:]
			ctrl.Evict(old.ID)
			n.RemoveClient(old.ID)
		}
	}
	e := ctrl.engine
	if e == nil {
		t.Fatal("engine fell back during churn")
	}
	if len(e.clients) != maxLive {
		t.Fatalf("client states not evicted: %d tracked, %d live", len(e.clients), maxLive)
	}
	if len(e.memoKeys) > maxLive {
		t.Fatalf("memo index not evicted: %d incarnations indexed", len(e.memoKeys))
	}
	// Each live client can hold at most one delay entry per in-range AP per
	// distinct channel it was priced on; channels are static here, so the
	// hard ceiling is live × APs. 10k clients would have blown past this by
	// two orders of magnitude before the eviction fix.
	if bound := maxLive * len(n.APs); len(e.beaconDelay) > bound {
		t.Fatalf("delay memo unbounded: %d entries, bound %d", len(e.beaconDelay), bound)
	}
	// The index and the memo agree entry-for-entry.
	indexed := 0
	for _, keys := range e.memoKeys {
		indexed += len(keys)
		for _, k := range keys {
			if _, ok := e.beaconDelay[k]; !ok {
				t.Fatalf("memo index points at evicted entry %+v", k)
			}
		}
	}
	if indexed != len(e.beaconDelay) {
		t.Fatalf("memo index out of sync: %d indexed, %d entries", indexed, len(e.beaconDelay))
	}
}

// TestStreamBackgroundConsumer smoke-tests Start/Stop with the real clock:
// offered events are applied without explicit Pump calls, and Stop drains.
func TestStreamBackgroundConsumer(t *testing.T) {
	ctrl, n := streamFixture(t, 4, 8)
	s := NewStreamController(ctrl, StreamOptions{})
	s.Start()
	for i := 0; i < 16; i++ {
		s.Offer(Event{Kind: EventArrive, Client: clientNear(n, i, fmt.Sprintf("bg%d", i))})
	}
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if s.Stats().Applied == 16 {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	s.Stop()
	if st := s.Stats(); st.Applied != 16 || st.Depth != 0 {
		t.Fatalf("background consumer incomplete: %+v", st)
	}
	if s.Offer(Event{Kind: EventDepart, ClientID: "bg0"}) {
		t.Fatal("closed stream accepted an offer")
	}
	if got := len(ctrl.ConfigView().Assoc); got != 16 {
		t.Fatalf("want 16 associations, got %d", got)
	}
}
