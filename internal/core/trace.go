package core

// Convergence tracing: every Reallocate can be recorded as a replayable
// JSONL stream — one event per line — so a run of Algorithm 2 can be
// inspected, plotted, or diffed after the fact. Events carry no wall-clock
// fields on purpose: a trace is a pure function of the inputs, which keeps
// golden-file tests and cross-run diffs byte-stable.

import (
	"encoding/json"
	"io"
	"sync"

	"acorn/internal/wlan"
)

// Trace event kinds, in the order they appear per reallocation.
const (
	TraceEventStart  = "reallocate_start"
	TraceEventSwitch = "switch"
	TraceEventEnd    = "reallocate_end"
)

// TraceEvent is one line of the JSONL convergence trace.
type TraceEvent struct {
	// Event is one of the TraceEvent* constants.
	Event string `json:"event"`
	// Realloc numbers the reallocation this event belongs to (1-based,
	// per TraceWriter).
	Realloc int `json:"realloc"`
	// GoodputMbps is the estimated aggregate network goodput at this
	// point: the pre-search estimate on start, the post-switch estimate on
	// switch, the final estimate on end.
	GoodputMbps float64 `json:"goodput_mbps"`
	// Period, AP, Channel, Rank and Ranks describe a switch event.
	Period  int                `json:"period,omitempty"`
	AP      string             `json:"ap,omitempty"`
	Channel string             `json:"channel,omitempty"`
	Rank    float64            `json:"rank,omitempty"`
	Ranks   map[string]float64 `json:"ranks,omitempty"`
	// APs, Clients, Switches, Periods and WidthsMHz summarize start/end
	// events; WidthsMHz records the installed per-cell width decision.
	APs       int            `json:"aps,omitempty"`
	Clients   int            `json:"clients,omitempty"`
	Switches  int            `json:"switches,omitempty"`
	Periods   int            `json:"periods,omitempty"`
	WidthsMHz map[string]int `json:"widths_mhz,omitempty"`
}

// TraceWriter serializes convergence events as JSONL. It is safe for
// concurrent use; events of one Reallocation are written contiguously.
type TraceWriter struct {
	mu      sync.Mutex
	enc     *json.Encoder
	realloc int
	err     error
}

// NewTraceWriter wraps w. Each event becomes one JSON object on its own
// line (encoding/json sorts map keys, so output is deterministic).
func NewTraceWriter(w io.Writer) *TraceWriter {
	return &TraceWriter{enc: json.NewEncoder(w)}
}

// Err returns the first write error, if any; later events after an error
// are dropped.
func (t *TraceWriter) Err() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.err
}

// Reallocation records one full Algorithm-2 run: a start event, one event
// per switch (with the iteration's per-AP ranks), and an end event with
// the installed per-cell width decisions.
func (t *TraceWriter) Reallocation(st AllocStats, cfg *wlan.Config) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.realloc++
	n := t.realloc
	t.emit(TraceEvent{
		Event:       TraceEventStart,
		Realloc:     n,
		GoodputMbps: st.InitialEstimate,
		APs:         len(cfg.Channels),
		Clients:     len(cfg.Assoc),
	})
	for _, rec := range st.History {
		t.emit(TraceEvent{
			Event:       TraceEventSwitch,
			Realloc:     n,
			GoodputMbps: rec.Estimate,
			Period:      rec.Period,
			AP:          rec.AP,
			Channel:     rec.Channel.String(),
			Rank:        rec.Rank,
			Ranks:       rec.Ranks,
		})
	}
	widths := make(map[string]int, len(cfg.Channels))
	for apID, ch := range cfg.Channels {
		widths[apID] = int(ch.Width)
	}
	t.emit(TraceEvent{
		Event:       TraceEventEnd,
		Realloc:     n,
		GoodputMbps: st.FinalEstimate,
		Switches:    st.Switches,
		Periods:     st.Periods,
		WidthsMHz:   widths,
	})
}

// emit writes one event; callers hold t.mu.
func (t *TraceWriter) emit(ev TraceEvent) {
	if t.err != nil {
		return
	}
	t.err = t.enc.Encode(ev)
}
