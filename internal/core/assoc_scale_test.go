package core

// Equivalence and scale harness for the incremental association engine
// (assocstate.go / assocsweep.go): a randomized churn suite driving the
// engine and the beacon-path oracle through identical event sequences and
// requiring bit-identical decisions, a committed golden churn fixture
// generated from the oracle and replayed by the engine at worker counts
// 1/2/8, and the benchmark pairs behind BENCH_assoc.json.

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"runtime"
	"sort"
	"testing"

	"acorn/internal/rf"
	"acorn/internal/spectrum"
	"acorn/internal/stats"
	"acorn/internal/units"
	"acorn/internal/wlan"
)

// assocDriver abstracts "one association subsystem" so the oracle and the
// engine can be driven through the same script. Every method mirrors the
// Controller's semantics exactly.
type assocDriver interface {
	admit(u *wlan.Client) AssociationDecision
	evict(id string)
	roam(u *wlan.Client, margin float64) AssociationDecision
	sweepSticky(us []*wlan.Client, margin float64) []AssociationDecision
	sweepFresh(us []*wlan.Client) []AssociationDecision
	install(channels map[string]spectrum.Channel) // a reallocation's channel switch
	config() *wlan.Config
}

// oracleDriver is the reference implementation: the plain beacon path over a
// configuration, exactly as the Controller behaves without an engine.
type oracleDriver struct {
	n   *wlan.Network
	cfg *wlan.Config
}

func (o *oracleDriver) admit(u *wlan.Client) AssociationDecision {
	d := Associate(o.n, o.cfg, u)
	if d.APID != "" {
		o.cfg.SetAssoc(u.ID, d.APID)
	}
	return d
}

func (o *oracleDriver) evict(id string) { o.cfg.Unassoc(id) }

func (o *oracleDriver) roam(u *wlan.Client, margin float64) AssociationDecision {
	d := AssociateSticky(o.n, o.cfg, u, o.cfg.Assoc[u.ID], margin)
	if d.APID != "" {
		o.cfg.SetAssoc(u.ID, d.APID)
	}
	return d
}

func (o *oracleDriver) sweepSticky(us []*wlan.Client, margin float64) []AssociationDecision {
	ds := make([]AssociationDecision, 0, len(us))
	for _, u := range us {
		ds = append(ds, o.roam(u, margin))
	}
	return ds
}

func (o *oracleDriver) sweepFresh(us []*wlan.Client) []AssociationDecision {
	ds := make([]AssociationDecision, 0, len(us))
	for _, u := range us {
		o.cfg.Unassoc(u.ID)
		d := Associate(o.n, o.cfg, u)
		if d.APID != "" {
			o.cfg.SetAssoc(u.ID, d.APID)
		}
		ds = append(ds, d)
	}
	return ds
}

func (o *oracleDriver) install(channels map[string]spectrum.Channel) {
	for apID, ch := range channels {
		o.cfg.Channels[apID] = ch
	}
}

func (o *oracleDriver) config() *wlan.Config { return o.cfg }

// engineDriver drives the incremental engine. install clones the
// configuration like Controller.Reallocate does, exercising the rebind path.
type engineDriver struct {
	t       testing.TB
	n       *wlan.Network
	cfg     *wlan.Config
	eng     *assocEngine
	workers int
}

func newEngineDriver(t testing.TB, n *wlan.Network, cfg *wlan.Config, workers int) *engineDriver {
	t.Helper()
	eng := newAssocEngine(n, cfg)
	if eng == nil {
		t.Fatal("association engine rejected a representable configuration")
	}
	return &engineDriver{t: t, n: n, cfg: cfg, eng: eng, workers: workers}
}

func (e *engineDriver) rebind() {
	e.t.Helper()
	if !e.eng.bind(e.cfg) {
		e.t.Fatalf("association engine lost its binding mid-script (assoc=%d expect=%d nClients=%d seen=%d)",
			len(e.cfg.Assoc), e.eng.expectAssocLen, len(e.n.Clients), e.eng.nClientsSeen)
	}
}

func (e *engineDriver) admit(u *wlan.Client) AssociationDecision {
	e.rebind()
	d := e.eng.associate(u)
	if d.APID != "" {
		e.eng.applyHome(u.ID, e.eng.clients[u.ID], e.eng.apIdx[d.APID])
	}
	return d
}

func (e *engineDriver) evict(id string) {
	e.rebind()
	if !e.eng.evict(id) {
		e.t.Fatal("engine evict hit an invariant breach")
	}
}

func (e *engineDriver) roam(u *wlan.Client, margin float64) AssociationDecision {
	e.rebind()
	st := e.eng.ensureState(u)
	d := e.eng.evalOne(st, sweepSticky, margin, nil)
	if d.APID != "" {
		e.eng.applyHome(u.ID, st, e.eng.apIdx[d.APID])
	}
	return d
}

func (e *engineDriver) sweepSticky(us []*wlan.Client, margin float64) []AssociationDecision {
	e.rebind()
	ds, _ := e.eng.sweep(us, sweepSticky, margin, e.workers)
	return ds
}

func (e *engineDriver) sweepFresh(us []*wlan.Client) []AssociationDecision {
	e.rebind()
	ds, _ := e.eng.sweep(us, sweepFresh, 0, e.workers)
	return ds
}

func (e *engineDriver) install(channels map[string]spectrum.Channel) {
	next := e.cfg.Clone()
	for apID, ch := range channels {
		next.Channels[apID] = ch
	}
	e.cfg = next
	e.rebind()
}

func (e *engineDriver) config() *wlan.Config { return e.cfg }

// decisionsEqual requires bit-identical decisions (utilities compared by
// their float bits).
func decisionsEqual(a, b AssociationDecision) bool {
	if a.ClientID != b.ClientID || a.APID != b.APID ||
		math.Float64bits(a.Utility) != math.Float64bits(b.Utility) ||
		len(a.Candidates) != len(b.Candidates) {
		return false
	}
	for i := range a.Candidates {
		if a.Candidates[i].APID != b.Candidates[i].APID ||
			math.Float64bits(a.Candidates[i].Utility) != math.Float64bits(b.Candidates[i].Utility) {
			return false
		}
	}
	return true
}

func assocMapsEqual(t *testing.T, tag string, ref, got *wlan.Config) {
	t.Helper()
	if len(ref.Assoc) != len(got.Assoc) {
		t.Fatalf("%s: engine tracks %d associations, oracle %d", tag, len(got.Assoc), len(ref.Assoc))
	}
	for id, apID := range ref.Assoc {
		if got.Assoc[id] != apID {
			t.Fatalf("%s: client %s at %q, oracle says %q", tag, id, got.Assoc[id], apID)
		}
	}
}

// TestAssocEngineChurnEquivalence drives the oracle and the engine through
// ≥10k randomized admit/evict/roam events — interleaved with whole-population
// sweeps, channel reshuffles (rebinds), client departures from the network,
// and re-arrivals under reused IDs with new geometry — and requires every
// decision and the association map to stay bit-identical throughout.
func TestAssocEngineChurnEquivalence(t *testing.T) {
	rng := stats.NewRand(99)
	var aps []*wlan.AP
	for i := 0; i < 6; i++ {
		aps = append(aps, &wlan.AP{
			ID:      fmt.Sprintf("AP%d", i+1),
			Pos:     rf.Point{X: float64(i%3) * 100, Y: float64(i/3) * 100},
			TxPower: 18,
		})
	}
	n := wlan.NewNetwork(aps, nil)
	channels := n.Band.AllChannels()

	cfgRef := wlan.NewConfig()
	RandomInitial(n, cfgRef, rng.Intn)
	cfgEng := cfgRef.Clone()
	oracle := &oracleDriver{n: n, cfg: cfgRef}
	engine := newEngineDriver(t, n, cfgEng, 1)

	spawn := func(id string) *wlan.Client {
		home := aps[rng.Intn(len(aps))]
		c := &wlan.Client{ID: id, Pos: rf.Point{
			X: home.Pos.X + rng.Float64()*24 - 12,
			Y: home.Pos.Y + rng.Float64()*24 - 12,
		}}
		if rng.Float64() < 0.35 {
			wall := units.DB(40 + rng.Float64()*15)
			c.ExtraLoss = make(map[string]units.DB, len(aps))
			for _, ap := range aps {
				c.ExtraLoss[ap.ID] = wall
			}
		}
		return c
	}
	var active []*wlan.Client
	var departed []string
	seq := 0
	const events = 10000
	for i := 0; i < events; i++ {
		tag := fmt.Sprintf("event %d", i)
		r := rng.Float64()
		switch {
		case r < 0.02 && i > 0: // reallocation: new channels, engine rebind
			next := make(map[string]spectrum.Channel, len(aps))
			for _, ap := range aps {
				next[ap.ID] = channels[rng.Intn(len(channels))]
			}
			oracle.install(next)
			engine.install(next)
		case r < 0.04 && len(active) > 1: // sticky whole-population sweep
			us := append([]*wlan.Client(nil), active...)
			want := oracle.sweepSticky(us, 0.05)
			got := engine.sweepSticky(us, 0.05)
			for k := range want {
				if !decisionsEqual(want[k], got[k]) {
					t.Fatalf("%s: sticky sweep decision for %s diverged:\noracle %+v\nengine %+v",
						tag, us[k].ID, want[k], got[k])
				}
			}
		case r < 0.05 && len(active) > 1: // fresh reassociation sweep
			us := append([]*wlan.Client(nil), active...)
			want := oracle.sweepFresh(us)
			got := engine.sweepFresh(us)
			for k := range want {
				if !decisionsEqual(want[k], got[k]) {
					t.Fatalf("%s: fresh sweep decision for %s diverged:\noracle %+v\nengine %+v",
						tag, us[k].ID, want[k], got[k])
				}
			}
		case r < 0.30 || len(active) == 0: // arrival (sometimes a reused ID)
			var id string
			if len(departed) > 0 && rng.Float64() < 0.25 {
				// Reincarnation: a departed ID returns with new geometry.
				k := rng.Intn(len(departed))
				id = departed[k]
				departed[k] = departed[len(departed)-1]
				departed = departed[:len(departed)-1]
			} else {
				seq++
				id = fmt.Sprintf("u%04d", seq)
			}
			if len(active) >= 80 {
				break // population cap; treat as a dropped arrival
			}
			c := spawn(id)
			n.Clients = append(n.Clients, c)
			active = append(active, c)
			want := oracle.admit(c)
			got := engine.admit(c)
			if !decisionsEqual(want, got) {
				t.Fatalf("%s: admission of %s diverged:\noracle %+v\nengine %+v", tag, c.ID, want, got)
			}
		case r < 0.50 && len(active) > 0: // departure (evict, then leave the network)
			k := rng.Intn(len(active))
			id := active[k].ID
			active = append(active[:k], active[k+1:]...)
			oracle.evict(id)
			engine.evict(id)
			n.RemoveClient(id)
			departed = append(departed, id)
		default: // roam one client
			u := active[rng.Intn(len(active))]
			want := oracle.roam(u, 0.05)
			got := engine.roam(u, 0.05)
			if !decisionsEqual(want, got) {
				t.Fatalf("%s: roam of %s diverged:\noracle %+v\nengine %+v", tag, u.ID, want, got)
			}
		}
		assocMapsEqual(t, tag, oracle.config(), engine.config())
		if i%50 == 0 && len(active) > 0 {
			// Spot-check the raw beacons bit-for-bit, not just decisions.
			u := active[rng.Intn(len(active))]
			engine.rebind()
			want := GatherBeacons(n, engine.config(), u)
			got := engine.eng.beaconsFor(engine.eng.ensureState(u), nil)
			if len(want) != len(got) {
				t.Fatalf("%s: %d fast beacons, oracle %d", tag, len(got), len(want))
			}
			for b := range want {
				w, g := want[b], got[b]
				if w.APID != g.APID || w.Channel != g.Channel || w.K != g.K ||
					math.Float64bits(w.M) != math.Float64bits(g.M) ||
					math.Float64bits(w.ATD) != math.Float64bits(g.ATD) ||
					math.Float64bits(w.DU) != math.Float64bits(g.DU) {
					t.Fatalf("%s: beacon %s for %s diverged:\noracle %+v\nengine %+v",
						tag, w.APID, u.ID, w, g)
				}
			}
		}
	}
	if seq < 100 {
		t.Fatalf("script degenerated: only %d distinct clients", seq)
	}
}

// TestAssocSweepWorkersDeterminism pins the parallel sweep's contract: for
// worker counts 1, 2 and 8 the decisions and the resulting configuration are
// bit-identical to the sequential oracle loop.
func TestAssocSweepWorkersDeterminism(t *testing.T) {
	n, base := scaleSetup(t, 16, 8, 7)
	clients := append([]*wlan.Client(nil), n.Clients...)
	sort.Slice(clients, func(a, b int) bool { return clients[a].ID < clients[b].ID })

	for _, mode := range []string{"sticky", "fresh"} {
		mode := mode
		t.Run(mode, func(t *testing.T) {
			refCfg := base.Clone()
			oracle := &oracleDriver{n: n, cfg: refCfg}
			var want []AssociationDecision
			if mode == "sticky" {
				want = oracle.sweepSticky(clients, 0.05)
			} else {
				want = oracle.sweepFresh(clients)
			}
			for _, workers := range []int{1, 2, 8} {
				cfg := base.Clone()
				drv := newEngineDriver(t, n, cfg, workers)
				var got []AssociationDecision
				if mode == "sticky" {
					got = drv.sweepSticky(clients, 0.05)
				} else {
					got = drv.sweepFresh(clients)
				}
				if len(got) != len(want) {
					t.Fatalf("workers=%d: %d decisions, want %d", workers, len(got), len(want))
				}
				for k := range want {
					if !decisionsEqual(want[k], got[k]) {
						t.Fatalf("workers=%d: decision for %s diverged:\noracle %+v\nengine %+v",
							workers, clients[k].ID, want[k], got[k])
					}
				}
				assocMapsEqual(t, fmt.Sprintf("workers=%d", workers), refCfg, cfg)
			}
		})
	}
}

// --- Golden churn fixture -------------------------------------------------

const assocGoldenPath = "testdata/assoc_churn_golden.json"

// assocGolden is the committed fixture: every decision of a scripted churn,
// utilities hex-formatted for bit-exact comparison, plus the final
// association map. Generated from the oracle with -update; replayed by the
// engine at workers 1/2/8.
type assocGolden struct {
	Events    int               `json:"events"`
	Decisions []assocGoldenStep `json:"decisions"`
	Final     map[string]string `json:"final_assoc"`
}

type assocGoldenStep struct {
	Client  string `json:"client"`
	AP      string `json:"ap"`
	Utility string `json:"utility_hex"`
}

// runAssocChurnScript executes the fixed scripted churn against a driver and
// returns the recorded decision stream. The client pool stays in the network
// throughout (arrival = admission, departure = eviction), so the script is a
// pure function of the driver.
func runAssocChurnScript(n *wlan.Network, pool []*wlan.Client, drv assocDriver) []assocGoldenStep {
	rng := stats.NewRand(1234)
	channels := n.Band.AllChannels()
	var steps []assocGoldenStep
	record := func(ds ...AssociationDecision) {
		for _, d := range ds {
			steps = append(steps, assocGoldenStep{Client: d.ClientID, AP: d.APID, Utility: hexFloat(d.Utility)})
		}
	}
	present := make(map[string]bool, len(pool))
	const events = 400
	for i := 0; i < events; i++ {
		switch {
		case i%97 == 42:
			next := make(map[string]spectrum.Channel)
			for _, ap := range n.APs {
				next[ap.ID] = channels[rng.Intn(len(channels))]
			}
			drv.install(next)
		case i%53 == 17:
			record(drv.sweepSticky(pool, 0.05)...)
		case i%89 == 60:
			record(drv.sweepFresh(pool)...)
		default:
			u := pool[rng.Intn(len(pool))]
			switch {
			case !present[u.ID]:
				record(drv.admit(u))
				present[u.ID] = true
			case rng.Float64() < 0.3:
				drv.evict(u.ID)
				present[u.ID] = false
			default:
				record(drv.roam(u, 0.05))
			}
		}
	}
	return steps
}

// TestAssocChurnGolden replays the engine against the committed oracle
// fixture at worker counts 1, 2 and 8: every recorded decision and the final
// association map must match bit for bit.
func TestAssocChurnGolden(t *testing.T) {
	n, _ := scaleNetwork(8, 5, 11)
	pool := append([]*wlan.Client(nil), n.Clients...)
	baseCfg := wlan.NewConfig()
	rng := stats.NewRand(11)
	RandomInitial(n, baseCfg, rng.Intn)

	if *updateGolden {
		drv := &oracleDriver{n: n, cfg: baseCfg.Clone()}
		steps := runAssocChurnScript(n, pool, drv)
		g := assocGolden{Events: len(steps), Decisions: steps, Final: map[string]string{}}
		for id, apID := range drv.config().Assoc {
			g.Final[id] = apID
		}
		data, err := json.MarshalIndent(g, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(assocGoldenPath, append(data, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s (%d decisions)", assocGoldenPath, len(steps))
		return
	}
	raw, err := os.ReadFile(assocGoldenPath)
	if err != nil {
		t.Fatalf("missing golden file (run with -update): %v", err)
	}
	var want assocGolden
	if err := json.Unmarshal(raw, &want); err != nil {
		t.Fatalf("corrupt golden: %v", err)
	}
	for _, workers := range []int{1, 2, 8} {
		workers := workers
		t.Run(fmt.Sprintf("workers-%d", workers), func(t *testing.T) {
			drv := newEngineDriver(t, n, baseCfg.Clone(), workers)
			steps := runAssocChurnScript(n, pool, drv)
			if len(steps) != len(want.Decisions) {
				t.Fatalf("script produced %d decisions, golden has %d", len(steps), len(want.Decisions))
			}
			for i := range steps {
				if steps[i] != want.Decisions[i] {
					t.Fatalf("decision %d = %+v, want %+v (bit-exact)", i, steps[i], want.Decisions[i])
				}
			}
			final := drv.config().Assoc
			if len(final) != len(want.Final) {
				t.Fatalf("final map has %d associations, golden %d", len(final), len(want.Final))
			}
			for id, apID := range want.Final {
				if final[id] != apID {
					t.Errorf("final: client %s at %q, golden %q", id, final[id], apID)
				}
			}
		})
	}
}

// --- Benchmarks -----------------------------------------------------------
//
// The pairs behind BENCH_assoc.json: a full reassociation sweep of the
// 50-AP / 2000-client fixture through the reference beacon path versus the
// incremental engine. The reference costs minutes per iteration (each beacon
// re-derives contention by scanning every client in the network), so it
// skips under -short; the derived ratio in BENCH_assoc.json compares like
// with like from the same `make bench` run.

func BenchmarkAssocReferenceSweep50AP(b *testing.B) {
	if testing.Short() {
		b.Skip("reference sweep at 50 AP / 2000 clients takes minutes per run")
	}
	n, cfg := scaleSetup(b, 50, 40, 42)
	clients := n.Clients
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		drv := &oracleDriver{n: n, cfg: cfg.Clone()}
		drv.sweepFresh(clients)
	}
}

func benchAssocIncremental(b *testing.B, workers int) {
	if workers < 1 {
		// sweep() clamps workers<1 to the sequential fast path, so "0 means
		// GOMAXPROCS" must be resolved here — passing 0 through silently
		// benchmarked the sequential loop under the Parallel name.
		workers = runtime.GOMAXPROCS(0)
	}
	n, cfg := scaleSetup(b, 50, 40, 42)
	clients := n.Clients
	b.ReportAllocs()
	b.ResetTimer()
	var total sweepStats
	for i := 0; i < b.N; i++ {
		// The engine build is inside the measured region: the comparison is
		// one sweep from cold, like the reference (deployments amortize the
		// build across sweeps via the Controller, so this is conservative).
		drv := newEngineDriver(b, n, cfg.Clone(), workers)
		_, sst := drv.eng.sweep(clients, sweepFresh, 0, workers)
		total.rounds += sst.rounds
		total.overlayNanos += sst.overlayNanos
	}
	if total.rounds > 0 {
		b.ReportMetric(float64(total.overlayNanos)/float64(total.rounds), "overlay-ns/round")
	}
}

func BenchmarkAssocIncrementalSweep50AP(b *testing.B) {
	benchAssocIncremental(b, 1)
}

func BenchmarkAssocIncrementalSweep50APParallel(b *testing.B) {
	benchAssocIncremental(b, 0) // GOMAXPROCS
}

// BenchmarkAssocAdmit measures one engine-backed admission under a standing
// population — the steady-state churn cost.
func BenchmarkAssocAdmit(b *testing.B) {
	n, cfg := scaleSetup(b, 50, 40, 42)
	drv := newEngineDriver(b, n, cfg.Clone(), 1)
	u := n.Clients[len(n.Clients)/2]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		drv.admit(u)
	}
}
