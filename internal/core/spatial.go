package core

// Spatial candidate pruning for the contention-graph builders (the PR-9
// tentpole; DESIGN.md §15).
//
// wlan.Network.Contend is a geometric predicate: two cells contend only if
// some transmitter of one is received above CSThreshold at some point of
// the other (AP↔AP, or an AP against the other cell's clients). The
// propagation model is monotone in distance, so every check that can pass
// does so within the carrier-sense radius of the strongest transmitter in
// play (rf.CarrierSenseRange). A uniform grid over all points of the
// populated cells — each AP position and each associated client position,
// tagged with its owner cell — therefore yields a conservative candidate
// superset: query the grid around each populated AP with the global cutoff
// radius, and any pair the queries never surface provably fails every
// check of contendPair. Candidates still go through the exact predicate,
// so the resulting graph is boolean-identical to the O(P²) scan by
// construction — the equivalence suite pins neighbor lists with == on the
// full adjacency.
//
// The prune degrades to the exact full scan whenever no sound cutoff
// exists: a ContendOverride (arbitrary predicate, no geometry), a
// non-invertible propagation model, a non-finite cutoff, or an explicit
// opt-out (AllocOptions.NoSpatialIndex).

import (
	"math"
	"sort"

	"acorn/internal/geo"
	"acorn/internal/wlan"
)

// spatialCandidates returns, for each position a in popIdx order, the
// ascending list of global AP indices j > popIdx[a] whose pair may contend
// with popIdx[a] (a conservative superset). scanned is the total candidate
// pair count. ok=false means no sound cutoff exists and the caller must run
// the full scan.
func spatialCandidates(n *wlan.Network, popIdx []int, clientsOf [][]*wlan.Client, opts AllocOptions) (rows [][]int32, scanned int, ok bool) {
	if opts.NoSpatialIndex || n.ContendOverride != nil || len(popIdx) < 2 {
		return nil, 0, false
	}
	maxTx := n.APs[popIdx[0]].TxPower
	for _, i := range popIdx[1:] {
		if tx := n.APs[i].TxPower; tx > maxTx {
			maxTx = tx
		}
	}
	cutoff, invertible := n.Prop.CarrierSenseRange(maxTx, n.CSThreshold)
	if !invertible || math.IsInf(cutoff, 1) || math.IsNaN(cutoff) {
		return nil, 0, false
	}
	cell := opts.GridCellM
	if cell <= 0 {
		cell = cutoff
	}

	// One grid over every point of every populated cell, tagged with the
	// owner's position in popIdx. Client positions matter as much as AP
	// positions: the client-mediated checks of contendPair fire when a
	// *client* of one cell sits within the cutoff of the other cell's AP.
	p := len(popIdx)
	grid := geo.NewGrid(cell)
	for a, i := range popIdx {
		ap := n.APs[i]
		grid.Add(int32(a), ap.Pos.X, ap.Pos.Y)
		for _, cl := range clientsOf[i] {
			grid.Add(int32(a), cl.Pos.X, cl.Pos.Y)
		}
	}

	// Query around each populated AP. A hit in either direction marks the
	// unordered pair, deduplicated with a per-query generation stamp; the
	// pair lands in the lower index's row so the caller's (a, j > i) scan
	// visits each pair exactly once, in the oracle's order.
	rows = make([][]int32, p)
	stamp := make([]int, p)
	for a := range stamp {
		stamp[a] = -1
	}
	for a, i := range popIdx {
		ap := n.APs[i]
		grid.VisitWithin(ap.Pos.X, ap.Pos.Y, cutoff, func(owner int32) {
			b := int(owner)
			if b == a || stamp[b] == a {
				return
			}
			stamp[b] = a
			lo, hi := a, b
			if lo > hi {
				lo, hi = hi, lo
			}
			rows[lo] = append(rows[lo], int32(popIdx[hi]))
		})
	}
	for a := range rows {
		row := rows[a]
		sort.Slice(row, func(x, y int) bool { return row[x] < row[y] })
		// Both queries of a pair can mark it (a sees b's point, b sees
		// a's): drop duplicates after the sort.
		w := 0
		for r := range row {
			if r == 0 || row[r] != row[r-1] {
				row[w] = row[r]
				w++
			}
		}
		rows[a] = row[:w]
		scanned += w
	}
	return rows, scanned, true
}

// totalPairs is the pair count of the full O(P²) scan over p populated
// cells — the denominator of the pruning stats.
func totalPairs(p int) int { return p * (p - 1) / 2 }
