package core

// The incremental Algorithm 2 driver: dirty-rank caching across inner
// iterations and deterministic worker-parallel rank scans on top of the
// allocState delta evaluator (allocstate.go). DESIGN.md §10 carries the
// correctness argument; the load-bearing invariants are
//
//  1. Cache key is the rank r = bestY − y, not the absolute bestY. After an
//     unrelated switch moves the total from y to y', a clean AP's best
//     candidate still improves the network by the same per-cell deltas, so
//     its selection is unchanged and it competes as y' + r. Structural
//     zeros survive exactly: an AP that cannot improve has r = 0.0 and
//     y' + 0.0 == y', so it can never become a spurious winner.
//  2. Invalidation: after the winner switches and changes the cell set C,
//     every AP j with N(j) ∩ C ≠ ∅ is marked dirty (walk the reverse
//     adjacency of each changed cell), plus the winner itself. Everyone
//     else's candidate deltas touch only cells outside C, which are
//     bit-identical, so their cached entries stay exact.
//  3. A winner chosen from a cached entry is re-ranked fresh on the base
//     view before committing, so every committed bestY/Trajectory/Rank
//     value comes from a real evaluation — bit-identical to the generic
//     path — and never from a shifted cache value.
//  4. Parallel rank scans write into per-AP slots of a shared array (no
//     ordering race) from per-worker scratch views; the winner reduction
//     is a serial lexicographic scan. Results are bit-identical for any
//     worker count.

import (
	"sync"
	"time"

	"acorn/internal/wlan"
)

// rankEntry is one dirty-rank cache slot.
type rankEntry struct {
	// ci is the winning candidate's index into allocState.channels.
	ci int
	// fresh marks an entry evaluated in the current inner iteration; absY
	// is then the evaluated total and authoritative. At iteration end the
	// entry converts to its rank form.
	fresh bool
	absY  float64
	// rank is bestY − y as of the entry's evaluation; clean entries
	// compete as y + rank in later iterations.
	rank float64
}

// allocRunner carries the per-run mutable search state.
type allocRunner struct {
	st    *allocState
	cache []rankEntry
	valid []bool
	views []*allocView
	dirty []int
}

// allocateIncremental runs Algorithm 2 on the incremental engine. The
// control flow — period loop, per-period switch budget, winner selection
// with strict > in lexicographic AP order, ε stopping rule — mirrors
// allocateGeneric statement for statement; only candidate pricing differs.
func allocateIncremental(cfg *wlan.Config, st *allocState, opts AllocOptions) (*wlan.Config, AllocStats) {
	cur := cfg.Clone()
	nAP := len(st.apIDs)
	stats := AllocStats{
		InitialEstimate:    st.base.curY,
		SpectrumComponents: st.nComp,
		GraphComponents:    len(st.comps),
		GraphPairsScanned:  st.pairsScanned,
		GraphPairsPruned:   st.pairsPruned,
		SpatialIndex:       st.spatial,
	}
	for _, comp := range st.comps {
		if len(comp) > stats.LargestComponent {
			stats.LargestComponent = len(comp)
		}
	}
	prevPeriod := stats.InitialEstimate
	y := prevPeriod

	r := &allocRunner{
		st:    st,
		cache: make([]rankEntry, nAP),
		valid: make([]bool, nAP),
	}
	// Eligibility under opts.Only: ineligible APs hold their channel, are
	// never ranked, and never enter the winner scan — mirroring the generic
	// path's restricted apOrder.
	elig := make([]bool, nAP)
	nElig := 0
	for i, apID := range st.apIDs {
		if opts.eligible(apID) {
			elig[i] = true
			nElig++
		}
	}
	// Unpopulated cells price every candidate at the current total, so
	// their rank is a structural 0.0 forever: seed permanent cache entries
	// and never invalidate them (no changed cell is ever their neighbor).
	for i := 0; i < nAP; i++ {
		if st.populated[i] == 0 {
			r.valid[i] = true
		}
	}

	for period := 0; period < opts.maxPeriods(); period++ {
		stats.Periods++
		switched := make([]bool, nAP)
		remaining := nElig
		for sw := 0; remaining > 0 && sw < opts.switchBudget(); sw++ {
			// Fresh-rank every dirty eligible AP, fanned across workers.
			r.dirty = r.dirty[:0]
			for _, i := range st.sortedIdx {
				if elig[i] && !switched[i] && !r.valid[i] {
					r.dirty = append(r.dirty, i)
				}
			}
			rankT0 := time.Now()
			r.runRanks(opts.workers())
			stats.RankNanos += time.Since(rankT0).Nanoseconds()
			stats.Evals.RankCacheHits += remaining - len(r.dirty)

			// Winner selection: strict > scan in lexicographic AP order,
			// fresh entries competing with their evaluated total, clean
			// entries with y + rank. A cached winner is re-ranked fresh
			// before it is allowed to commit; the (rare) refresh can
			// change the standings, so re-scan until the winner is fresh.
			winner := -1
			winnerY := y
			for {
				winner = -1
				winnerY = y
				for _, i := range st.sortedIdx {
					if !elig[i] || switched[i] {
						continue
					}
					e := &r.cache[i]
					bv := y + e.rank
					if e.fresh {
						bv = e.absY
					}
					if bv > winnerY {
						winner, winnerY = i, bv
					}
				}
				if winner < 0 || r.cache[winner].fresh {
					break
				}
				ci, absY := st.base.rankOf(winner)
				r.cache[winner] = rankEntry{ci: ci, fresh: true, absY: absY}
			}

			// Record the iteration's ranks for every eligible AP, exactly
			// as the generic path reports them: fresh entries as their
			// evaluated bestY − y, clean entries as their cached rank.
			ranks := make(map[string]float64, remaining)
			for _, i := range st.sortedIdx {
				if !elig[i] || switched[i] {
					continue
				}
				e := &r.cache[i]
				if e.fresh {
					ranks[st.apIDs[i]] = e.absY - y
				} else {
					ranks[st.apIDs[i]] = e.rank
				}
			}

			if winner < 0 {
				r.convertFresh(y)
				break // max rank < 0: nobody can improve
			}

			ci := r.cache[winner].ci
			winnerCh := st.channels[ci]
			changed := st.commitMove(winner, ci)
			st.base.curY = winnerY
			cur.Channels[st.apIDs[winner]] = winnerCh
			switched[winner] = true
			remaining--
			rank := winnerY - y
			yBefore := y
			y = winnerY
			stats.Switches++
			stats.Trajectory = append(stats.Trajectory, y)
			stats.History = append(stats.History, SwitchRecord{
				Period:   period + 1,
				AP:       st.apIDs[winner],
				Channel:  winnerCh,
				Rank:     rank,
				Estimate: y,
				Ranks:    ranks,
			})

			// Surviving fresh entries become clean cache entries relative
			// to the pre-switch total they were evaluated against...
			r.convertFresh(yBefore)
			// ...then the switch's blast radius goes dirty: the winner and
			// every AP with a neighbor among the changed cells.
			r.valid[winner] = false
			for _, c := range changed {
				for _, j := range st.neighbors[c] {
					r.valid[j] = false
				}
			}
		}
		// Stop when the period's gain is within ε of the previous
		// period (≤5% improvement by default).
		if y < opts.epsilon()*prevPeriod {
			break
		}
		prevPeriod = y
	}
	stats.FinalEstimate = y
	stats.Evals.add(st.base.evals)
	st.base.evals = EvalStats{}
	return cur, stats
}

// convertFresh turns this iteration's fresh entries into clean rank-keyed
// entries: rank = absY − yIter, the improvement over the total they were
// evaluated against.
func (r *allocRunner) convertFresh(yIter float64) {
	for i := range r.cache {
		if e := &r.cache[i]; e.fresh {
			e.rank = e.absY - yIter
			e.fresh = false
		}
	}
}

// runRanks fresh-evaluates every AP in r.dirty and stores the results in
// the cache. Work is split into contiguous chunks over per-worker scratch
// views; each result lands in its own cache slot, so no ordering race
// exists and the outcome is independent of scheduling.
func (r *allocRunner) runRanks(workers int) {
	st := r.st
	if workers > len(r.dirty) {
		workers = len(r.dirty)
	}
	if workers <= 1 {
		// Serial scan straight on the base view (evalMove reverts
		// everything it touches).
		for _, i := range r.dirty {
			ci, absY := st.base.rankOf(i)
			r.cache[i] = rankEntry{ci: ci, fresh: true, absY: absY}
			r.valid[i] = true
		}
		return
	}
	for len(r.views) < workers {
		r.views = append(r.views, st.newView())
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := w * len(r.dirty) / workers
		hi := (w + 1) * len(r.dirty) / workers
		v := r.views[w]
		v.syncFrom(&st.base)
		wg.Add(1)
		go func(v *allocView, chunk []int) {
			defer wg.Done()
			for _, i := range chunk {
				ci, absY := v.rankOf(i)
				r.cache[i] = rankEntry{ci: ci, fresh: true, absY: absY}
			}
		}(v, r.dirty[lo:hi])
	}
	wg.Wait()
	for _, i := range r.dirty {
		r.valid[i] = true
	}
	// Fold the workers' counters into the run totals; integer sums are
	// associative, so the totals match the serial scan's.
	for _, v := range r.views {
		st.base.evals.add(v.evals)
		v.evals = EvalStats{}
	}
}
