package core

// The deterministic parallel roaming sweep (the second half of the
// association-scaling tentpole; see assocstate.go and DESIGN.md §11).
//
// The sequential contract a sweep must honor is strict: clients are
// processed one by one in input order, each decision applied before the next
// client gathers beacons. Naive parallelization breaks that — an early
// client's move changes later clients' beacons.
//
// The engine parallelizes in rounds instead. Each round freezes the engine
// state, fans the pending clients' beacon evaluations across workers
// (read-only: per-worker delay overlays absorb memo writes), then applies
// decisions serially in input order — but only while they are provably
// unaffected by the moves already applied this round. A move of client w
// from home h to AP b can change client u's beacons only if some candidate
// a of u satisfies
//
//	a ∈ {h, b}  ∨  mask(a) & (mask(h)|mask(b)) ≠ 0
//
// (the move edits exactly the cells h and b: their memberships — felt
// through ClientsOf — and their populations and pair counts, which enter
// another cell's M only through channel-conflict-gated contender terms).
// A client whose candidates intersect the round's dirty set defers to the
// next round; clean clients keep applying. Deferral must poison forward:
// a deferred client re-evaluates next round and may move anywhere in
// {home} ∪ cands, so those cells (and their channels) join the dirty set
// the moment it defers — any later client entangled with them defers too.
// Clients in independent contention components never intersect each other's
// dirty sets, so disjoint campuses drain concurrently within a round
// instead of serializing behind another component's deferral (the sweep
// half of the component-sharding story; see components.go and DESIGN.md
// §13). A deferred client re-evaluates against the updated state next
// round, so by induction every applied decision equals the one the
// sequential loop would have produced, bit for bit, regardless of worker
// count. The first pending client is always clean (nothing precedes it in
// its round), so every round makes progress.
//
// Roaming sweeps defer rarely: most decisions are "stay", and staying moves
// nothing, so rounds drain whole batches. Mass reshuffles degrade toward
// sequential plus wasted evaluations — the deferral counter in the metrics
// makes that visible.

import (
	"sort"
	"sync"
	"time"

	"acorn/internal/bitset"
	"acorn/internal/wlan"
)

type sweepMode int

const (
	// sweepFresh is Controller.reassociate semantics: each client is
	// re-evaluated from scratch; out of range means unassociated.
	sweepFresh sweepMode = iota
	// sweepSticky is Controller.Roam semantics: hysteresis against the
	// incumbent; out of range keeps the incumbent.
	sweepSticky
)

// sweepStats summarizes one sweep's round structure. overlayNanos is the
// wall time spent in the frozen-round overlay machinery (worker fan-out
// plus serial merge) — the parallelization overhead the benchmarks report
// per round.
type sweepStats struct {
	rounds, moves, deferrals int
	overlayNanos             int64
}

// delayOverlay is a worker-private write layer over the engine's beacon
// delay memo, plus the worker's share of the stats. Merged serially after
// each round; the values are deterministic, so merge order is irrelevant.
type delayOverlay struct {
	m     map[assocDelayKey]float64
	stats assocEngineStats
}

// evalOne produces the decision the sequential loop would make for the
// client against the engine's current state, without applying it.
func (e *assocEngine) evalOne(cst *assocClient, mode sweepMode, margin float64, ov *delayOverlay) AssociationDecision {
	d := AssociateFromBeacons(cst.c.ID, e.beaconsFor(cst, ov))
	sort.Slice(d.Candidates, func(a, b int) bool { return d.Candidates[a].APID < d.Candidates[b].APID })
	if mode == sweepSticky {
		incumbent := ""
		if cst.home >= 0 {
			incumbent = e.apIDs[cst.home]
		}
		d = applySticky(d, incumbent, margin)
	}
	return d
}

// sweepDirty reports whether any of the client's candidate APs intersects
// the round's dirty set (by identity or by channel conflict).
func (e *assocEngine) sweepDirty(cst *assocClient, dirtyAPs []uint64, dirtyComp bitset.Set, anyComp bool) bool {
	for w, word := range cst.candBits {
		if word&dirtyAPs[w] != 0 {
			return true
		}
	}
	if anyComp {
		for _, a := range cst.cands {
			if e.mask.At(int(a)).Intersects(dirtyComp) {
				return true
			}
		}
	}
	return false
}

// sweep runs Algorithm 1 over the given clients in input order — fresh
// (reassociation) or sticky (roaming) — applying every move, and returns the
// decisions in input order. Bit-identical to the sequential reference loop
// for any worker count.
func (e *assocEngine) sweep(clients []*wlan.Client, mode sweepMode, margin float64, workers int) ([]AssociationDecision, sweepStats) {
	decisions := make([]AssociationDecision, len(clients))
	states := make([]*assocClient, len(clients))
	for i, u := range clients {
		states[i] = e.ensureState(u)
	}
	if workers > len(clients) {
		workers = len(clients)
	}
	if workers < 1 {
		workers = 1
	}
	var sst sweepStats
	if workers <= 1 {
		// Sequential fast path: evaluate and apply one client at a time.
		// This sidesteps the round machinery's worst case — a sweep where
		// most decisions are moves (e.g. building associations from an
		// empty configuration) shrinks every round to one client, and the
		// frozen-round evaluations of everyone behind it are wasted.
		sst.rounds = 1
		for i, u := range clients {
			cst := states[i]
			d := e.evalOne(cst, mode, margin, nil)
			decisions[i] = d
			target := -1
			if d.APID != "" {
				target = e.apIdx[d.APID]
			} else if mode == sweepSticky {
				target = cst.home
			}
			if target != cst.home {
				e.applyHome(u.ID, cst, target)
				sst.moves++
			}
		}
		return decisions, sst
	}
	pending := make([]int, len(clients))
	for i := range pending {
		pending[i] = i
	}
	results := make([]AssociationDecision, len(clients))
	words := (len(e.aps) + 63) / 64
	dirtyAPs := make([]uint64, words)
	dirtyComp := bitset.New(e.compWords)
	// Worker overlays live for the whole sweep (cleared after each merge):
	// a fresh map per round showed up as the dominant parallelization
	// overhead on all-stay sweeps, where rounds drain thousands of clients
	// and the maps grow large just to be thrown away.
	overlays := make([]*delayOverlay, 0, workers)
	var deferredScratch []int
	for len(pending) > 0 {
		sst.rounds++
		// Build the reverse association index before the read-only fan-out
		// so workers never trigger its lazy construction concurrently.
		e.cfg.ClientsOf("")
		if workers <= 1 {
			for _, ci := range pending {
				results[ci] = e.evalOne(states[ci], mode, margin, nil)
			}
		} else {
			ovStart := time.Now()
			var wg sync.WaitGroup
			chunk := (len(pending) + workers - 1) / workers
			nw := 0
			for lo := 0; lo < len(pending); lo += chunk {
				hi := lo + chunk
				if hi > len(pending) {
					hi = len(pending)
				}
				if nw == len(overlays) {
					overlays = append(overlays, &delayOverlay{m: make(map[assocDelayKey]float64)})
				}
				ov := overlays[nw]
				nw++
				wg.Add(1)
				go func(idx []int, ov *delayOverlay) {
					defer wg.Done()
					for _, ci := range idx {
						results[ci] = e.evalOne(states[ci], mode, margin, ov)
					}
				}(pending[lo:hi], ov)
			}
			wg.Wait()
			for _, ov := range overlays[:nw] {
				for k, v := range ov.m {
					// Two workers may have computed the same key; index it
					// once so eviction purges cannot double-count.
					if _, ok := e.beaconDelay[k]; !ok {
						e.memoKeys[k.cl] = append(e.memoKeys[k.cl], k)
					}
					e.beaconDelay[k] = v
				}
				e.stats.add(ov.stats)
				clear(ov.m)
				ov.stats = assocEngineStats{}
			}
			sst.overlayNanos += time.Since(ovStart).Nanoseconds()
		}
		// Serial application in input order. A client entangled with the
		// round's dirty state defers; everyone else applies. Deferring
		// poisons forward: the deferred client may move anywhere in
		// {home} ∪ cands next round, so those cells join the dirty set and
		// later entangled clients defer with it. Independent contention
		// components never entangle, so they drain in the same round.
		deferred := deferredScratch[:0]
		for i := range dirtyAPs {
			dirtyAPs[i] = 0
		}
		dirtyComp.Clear()
		anyDirt := false
		for _, ci := range pending {
			cst := states[ci]
			if anyDirt && e.sweepDirty(cst, dirtyAPs, dirtyComp, true) {
				// Deferral: mark every cell the re-evaluation could touch.
				if h := cst.home; h >= 0 {
					dirtyAPs[h/64] |= 1 << (uint(h) % 64)
					dirtyComp.Or(e.mask.At(h))
				}
				for w, word := range cst.candBits {
					dirtyAPs[w] |= word
				}
				for _, a := range cst.cands {
					dirtyComp.Or(e.mask.At(int(a)))
				}
				deferred = append(deferred, ci)
				continue
			}
			d := results[ci]
			decisions[ci] = d
			target := -1
			if d.APID != "" {
				target = e.apIdx[d.APID]
			} else if mode == sweepSticky {
				target = cst.home // out of range: sticky keeps the incumbent
			}
			if h := cst.home; target != h {
				if h >= 0 {
					dirtyAPs[h/64] |= 1 << (uint(h) % 64)
					dirtyComp.Or(e.mask.At(h))
				}
				if target >= 0 {
					dirtyAPs[target/64] |= 1 << (uint(target) % 64)
					dirtyComp.Or(e.mask.At(target))
				}
				e.applyHome(cst.c.ID, cst, target)
				sst.moves++
				anyDirt = true
			}
		}
		sst.deferrals += len(deferred)
		copy(pending, deferred)
		pending = pending[:len(deferred)]
		deferredScratch = deferred
	}
	return decisions, sst
}
