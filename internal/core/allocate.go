package core

// Channel bonding selection — Algorithm 2 of the paper.
//
// The allocation problem (assign each AP a basic 20 MHz or composite 40 MHz
// "color" maximizing total network throughput, Eq. 5) is NP-complete, so
// ACORN runs a greedy gradient-style search: in each iteration every AP
// that has not yet switched this period evaluates the network throughput it
// could reach on every candidate channel (others held fixed), the AP with
// the maximum positive improvement ("rank") wins and switches, and the
// process repeats until no AP can improve. Periods repeat until the
// period-over-period improvement falls below ε (5%).
//
// The worst case is every AP trapped on the same color — throughput
// Σ X_isol/(deg_i+1) ≥ Y*/(Δ+1) — giving the O(1/(Δ+1)) approximation
// ratio; Section 5's Fig 14 experiment shows practice is far kinder.
//
// Two implementations share this contract. The generic path below evaluates
// every candidate with a full estimator sweep and works with any
// ThroughputEstimator. When the estimator is the default *Estimator, the
// search instead runs the incremental engine (allocstate.go, allocrun.go):
// per-cell throughput caching, dirty-rank caching across inner iterations,
// and deterministic parallel rank evaluation. Both paths implement the same
// greedy tie-breaking (lexicographically first AP wins on equal rank) and
// the incremental path reproduces the generic path's float arithmetic
// term-for-term, so allocations and trajectories are bit-identical; see
// DESIGN.md §10 for the invariants.

import (
	"runtime"
	"sort"
	"time"

	"acorn/internal/spectrum"
	"acorn/internal/wlan"
)

// DefaultEpsilon is the paper's stopping threshold: the search stops when a
// period improves total throughput by 5% or less (ε = 1.05).
const DefaultEpsilon = 1.05

// AllocOptions tunes Algorithm 2.
type AllocOptions struct {
	// Epsilon is the multiplicative improvement threshold; a period must
	// beat the previous period's throughput by this factor to continue.
	// Zero means DefaultEpsilon.
	Epsilon float64
	// MaxPeriods bounds the outer loop as a safety net; zero means 16.
	MaxPeriods int
	// Workers is the number of goroutines the incremental path fans the
	// per-AP rank scans across. Zero or negative means GOMAXPROCS; one
	// forces the serial scan. The resulting allocation, statistics and
	// trace are bit-identical for every value (the reduction is a serial
	// lexicographic scan over deterministically computed ranks). The
	// generic fallback path ignores it.
	Workers int
	// MaxSwitchesPerPeriod caps the number of channel switches one period
	// may perform; zero means unbounded (every AP may switch once, the
	// paper's rule). Large deployments use it to bound per-period
	// reconfiguration churn; benchmarks use it to bound measured work.
	// Both search paths apply it identically. Under sharding the cap is
	// per component (each subproblem is its own search).
	MaxSwitchesPerPeriod int
	// ShardWorkers, when positive, runs the search component-sharded:
	// the populated contention graph is split into connected components
	// and each component is solved as an independent subproblem, fanned
	// across this many workers with a deterministic serial merge
	// (components.go). The result is bit-identical for every ShardWorkers
	// value, and each component matches the reference oracle run on the
	// same subproblem — but the sharded search is not bit-identical to the
	// unsharded one: ε and the switch budget apply per component, and the
	// merged estimates sum over solved components. Zero or negative keeps
	// the whole-network search. Requires the default *Estimator; other
	// estimators ignore it.
	ShardWorkers int
	// Only, when non-nil, restricts which APs may switch: APs absent from
	// the set keep their current channel and are never ranked, though their
	// cells still price every candidate evaluation. The streaming controller
	// uses it to bound per-event re-optimization to a conflict
	// neighbourhood. Both search paths apply it identically; nil means every
	// AP is eligible (the paper's rule).
	Only map[string]bool
	// NoSpatialIndex disables the uniform-grid candidate pruning of the
	// contention-graph builds (spatial.go); every populated pair then
	// reaches the exact predicate. The resulting graph — and therefore the
	// allocation — is bit-identical either way (the index is a conservative
	// pre-filter); the flag exists as a measurement baseline and an escape
	// hatch.
	NoSpatialIndex bool
	// GridCellM overrides the spatial index's cell size in meters. Zero (the
	// default) uses the carrier-sense cutoff radius, which makes a
	// neighborhood query touch at most a 3×3 cell block.
	GridCellM float64
	// Partition, when non-nil, lets a sharded solve reuse the association
	// engine's incrementally maintained contention partition instead of
	// rebuilding the conflict graph (partition.go). Ignored unless the
	// handle is valid for exactly the (network, configuration) being solved;
	// the Controller and StreamController attach it on their own calls.
	Partition *ContentionPartition
}

// eligible reports whether apID may switch under the Only restriction.
func (o AllocOptions) eligible(apID string) bool {
	return o.Only == nil || o.Only[apID]
}

func (o AllocOptions) epsilon() float64 {
	if o.Epsilon <= 0 {
		return DefaultEpsilon
	}
	return o.Epsilon
}

func (o AllocOptions) maxPeriods() int {
	if o.MaxPeriods <= 0 {
		return 16
	}
	return o.MaxPeriods
}

func (o AllocOptions) workers() int {
	if o.Workers <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return o.Workers
}

func (o AllocOptions) shardWorkers() int {
	if o.ShardWorkers <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return o.ShardWorkers
}

// switchBudget returns the per-period switch cap as a sentinel-free count.
func (o AllocOptions) switchBudget() int {
	if o.MaxSwitchesPerPeriod <= 0 {
		return int(^uint(0) >> 1) // unbounded
	}
	return o.MaxSwitchesPerPeriod
}

// EvalStats counts the evaluation work one AllocateChannels run performed.
// The counts depend only on the inputs — never on Workers or goroutine
// scheduling — so they are as deterministic as the allocation itself. The
// two search paths do different kinds of work: the generic path reports
// FullEvals, the incremental path reports DeltaEvals, CellRecomputes and
// RankCacheHits.
type EvalStats struct {
	// RankEvals is the number of fresh per-AP argmax scans (a Tmp_i
	// evaluation over every candidate channel).
	RankEvals int
	// RankCacheHits is the number of per-AP rank lookups served by the
	// dirty-rank cache instead of a fresh scan.
	RankCacheHits int
	// DeltaEvals is the number of candidate configurations evaluated
	// incrementally (recompute the affected neighborhood, resum).
	DeltaEvals int
	// FullEvals is the number of candidate configurations evaluated by a
	// full estimator sweep (the generic path).
	FullEvals int
	// CellRecomputes is the number of per-cell throughput recomputations
	// the incremental path performed while applying deltas.
	CellRecomputes int
}

func (e *EvalStats) add(o EvalStats) {
	e.RankEvals += o.RankEvals
	e.RankCacheHits += o.RankCacheHits
	e.DeltaEvals += o.DeltaEvals
	e.FullEvals += o.FullEvals
	e.CellRecomputes += o.CellRecomputes
}

// AllocStats reports how the search went.
type AllocStats struct {
	// Periods is the number of outer iterations executed.
	Periods int
	// Switches is the total number of channel switches performed.
	Switches int
	// InitialEstimate and FinalEstimate are the estimator's view of total
	// network throughput before and after the search (Mbit/s).
	InitialEstimate float64
	FinalEstimate   float64
	// Trajectory records the estimated throughput after every switch.
	Trajectory []float64
	// History records every switch in order with the per-AP ranks of the
	// iteration that chose it — the raw material of the convergence trace.
	History []SwitchRecord
	// Evals counts the evaluation work behind the search.
	Evals EvalStats
	// RankNanos is wall time spent inside fresh rank evaluations
	// (runRanks), summed over the run — trace attribution for the
	// streaming pipeline. A timing, not a count: unlike Evals it varies
	// run to run and is excluded from determinism comparisons.
	RankNanos int64

	// Fallback marks a run (or, under sharding, any component) that priced
	// candidates with the generic full-sweep reference path instead of the
	// incremental engine — the latch the obs fallback counter watches.
	Fallback bool
	// SpectrumComponents is the number of distinct 20 MHz components the
	// engine assigned mask bits to (under sharding: the largest component's
	// count). The engines handle any number; this reports the scale.
	SpectrumComponents int
	// GraphComponents is the number of connected components of the
	// populated contention graph; LargestComponent is the AP count of the
	// biggest one. Zero when the generic path ran (it builds no graph).
	GraphComponents  int
	LargestComponent int
	// SolvedComponents and ShardWorkersUsed describe the sharded solve:
	// how many components held an eligible AP (and were therefore solved)
	// and how wide the worker fan-out was. ComponentDurations holds each
	// solved component's wall time, in component order. All zero/nil when
	// the search ran unsharded.
	SolvedComponents   int
	ShardWorkersUsed   int
	ComponentDurations []time.Duration
	// GraphPairsScanned counts populated AP pairs that reached the exact
	// contention predicate during the run's top-level graph build;
	// GraphPairsPruned counts pairs the spatial index proved incapable of
	// contending (zero on full scans). SpatialIndex reports whether the
	// index ran. All zero/false when the run reused a maintained partition
	// or took the generic path (neither builds a graph).
	GraphPairsScanned int
	GraphPairsPruned  int
	SpatialIndex      bool
	// PartitionReused marks a sharded run that skipped the graph build
	// entirely by reusing the association engine's incrementally maintained
	// contention partition.
	PartitionReused bool
}

// SwitchRecord captures one inner-loop decision of Algorithm 2: the
// max-rank AP that switched, where it moved, and what every still-eligible
// AP could have gained in the same iteration.
type SwitchRecord struct {
	// Period is the 1-based outer iteration this switch happened in.
	Period int
	// AP is the winner (the max-rank AP of the paper's greedy step).
	AP string
	// Channel is the assignment the winner switched to.
	Channel spectrum.Channel
	// Rank is the winner's improvement in estimated network throughput
	// (Mbit/s) over the state before this switch.
	Rank float64
	// Estimate is the estimated total network throughput after the switch.
	Estimate float64
	// Ranks holds, for every AP that was still eligible this iteration,
	// the best improvement it could have achieved (the winner's entry
	// equals Rank; non-positive entries mean "cannot improve").
	Ranks map[string]float64
}

// ThroughputEstimator is what Algorithm 2 needs from an estimator: a
// prediction of total network throughput for a hypothetical configuration.
// The default implementation is *Estimator (single measurement per link,
// recalibrated across widths); *ScanningEstimator trades scan time for
// per-channel accuracy.
type ThroughputEstimator interface {
	NetworkThroughput(cfg *wlan.Config) float64
}

// AllocateChannels runs Algorithm 2 over the current configuration and
// returns the improved configuration (cfg is not mutated) plus search
// statistics. Every AP must already hold a channel (use RandomInitial for
// the random bootstrap of Section 5.2).
//
// With the default *Estimator the search runs the incremental engine —
// delta evaluation, dirty-rank caching and (opts.Workers) parallel rank
// scans — which produces bit-identical results to the generic sweep. Any
// other estimator takes the generic path.
func AllocateChannels(n *wlan.Network, cfg *wlan.Config, est ThroughputEstimator, opts AllocOptions) (*wlan.Config, AllocStats) {
	if e, ok := est.(*Estimator); ok {
		if opts.ShardWorkers > 0 {
			if out, st, ok := allocateSharded(n, cfg, e, opts); ok {
				return out, st
			}
		}
		if st := newAllocState(n, cfg, e, opts); st != nil {
			return allocateIncremental(cfg, st, opts)
		}
	}
	return allocateGeneric(n, cfg, est, opts)
}

// allocateGeneric is the reference implementation of Algorithm 2: every
// candidate is priced by a full estimator sweep. It serves any
// ThroughputEstimator (e.g. *ScanningEstimator) and doubles as the oracle
// the incremental engine is tested and benchmarked against.
func allocateGeneric(n *wlan.Network, cfg *wlan.Config, est ThroughputEstimator, opts AllocOptions) (*wlan.Config, AllocStats) {
	cur := cfg.Clone()
	channels := n.Band.AllChannels()
	stats := AllocStats{InitialEstimate: est.NetworkThroughput(cur), Fallback: true}
	prevPeriod := stats.InitialEstimate
	y := prevPeriod
	// The candidate order is fixed for the whole search: sort once and
	// filter switched APs per iteration instead of re-sorting the
	// remaining set every inner iteration. APs outside opts.Only never
	// enter the order — they hold their channel and are never ranked.
	apOrder := make([]string, 0, len(n.APs))
	for _, ap := range n.APs {
		if opts.eligible(ap.ID) {
			apOrder = append(apOrder, ap.ID)
		}
	}
	sort.Strings(apOrder)

	for period := 0; period < opts.maxPeriods(); period++ {
		stats.Periods++
		switched := make(map[string]bool, len(apOrder))
		remaining := len(apOrder)
		// Inner loop: each AP may switch at most once per period; the
		// AP offering the best improvement moves first.
		for sw := 0; remaining > 0 && sw < opts.switchBudget(); sw++ {
			winner, winnerCh, winnerY := "", spectrum.Channel{}, y
			ranks := make(map[string]float64, remaining)
			for _, apID := range apOrder {
				if switched[apID] {
					continue
				}
				bestCh, bestY := bestChannelFor(cur, est, apID, channels)
				stats.Evals.RankEvals++
				stats.Evals.FullEvals += len(channels)
				ranks[apID] = bestY - y
				if bestY > winnerY {
					winner, winnerCh, winnerY = apID, bestCh, bestY
				}
			}
			if winner == "" {
				break // max rank < 0: nobody can improve
			}
			cur.Channels[winner] = winnerCh
			switched[winner] = true
			remaining--
			rank := winnerY - y
			y = winnerY
			stats.Switches++
			stats.Trajectory = append(stats.Trajectory, y)
			stats.History = append(stats.History, SwitchRecord{
				Period:   period + 1,
				AP:       winner,
				Channel:  winnerCh,
				Rank:     rank,
				Estimate: y,
				Ranks:    ranks,
			})
		}
		// Stop when the period's gain is within ε of the previous
		// period (≤5% improvement by default).
		if y < opts.epsilon()*prevPeriod {
			break
		}
		prevPeriod = y
	}
	stats.FinalEstimate = y
	return cur, stats
}

// bestChannelFor evaluates Tmp_i(c) for every candidate channel c of AP
// apID, holding all other assignments fixed, and returns the argmax and its
// estimated network throughput.
func bestChannelFor(cfg *wlan.Config, est ThroughputEstimator, apID string, channels []spectrum.Channel) (spectrum.Channel, float64) {
	orig := cfg.Channels[apID]
	bestCh, bestY := orig, -1.0
	for _, ch := range channels {
		cfg.Channels[apID] = ch
		yTmp := est.NetworkThroughput(cfg)
		if yTmp > bestY {
			bestCh, bestY = ch, yTmp
		}
	}
	cfg.Channels[apID] = orig
	return bestCh, bestY
}

// RandomInitial assigns every AP a uniformly random channel (20 or 40 MHz)
// from the band — the bootstrap state of Section 5.2 ("Initially, all APs
// are assigned either a 20 MHz or a 40 MHz channel at random").
func RandomInitial(n *wlan.Network, cfg *wlan.Config, randIntn func(int) int) {
	channels := n.Band.AllChannels()
	for _, ap := range n.APs {
		cfg.Channels[ap.ID] = channels[randIntn(len(channels))]
	}
}
