package core

import (
	"fmt"
	"testing"
	"time"

	"acorn/internal/obs"
	"acorn/internal/wlan"
)

// BenchmarkStreamEvents measures the streaming controller's sustained event
// throughput on a realistic mix (mostly measurement reports over a live
// population, with steady membership churn), pumping in consumer-sized
// batches. Reported metrics feed BENCH_stream.json: events/s against the
// 1M events/hour acceptance floor, decision-latency percentiles, and the
// shed fraction.
func BenchmarkStreamEvents(b *testing.B) {
	ctrl, n := streamFixture(b, 16, 1)
	s := NewStreamController(ctrl, StreamOptions{
		MaxBatch:        256,
		RecordLatencies: 1 << 16,
		Gate:            GateOptions{Streak: 1, RatePerHour: 60, Burst: 10},
	})

	// A live population to report against. cur tracks each slot's current
	// incarnation so steady-state reports can resend the same object — the
	// shape the no-op fast path exists for.
	const pool = 128
	live := make([]string, 0, pool)
	cur := make([]*wlan.Client, pool)
	for i := 0; i < pool; i++ {
		id := fmt.Sprintf("u%04d", i)
		c := clientNear(n, i, id)
		cur[i] = c
		s.Offer(Event{Kind: EventArrive, Client: c})
		live = append(live, id)
	}
	s.Pump()

	b.ResetTimer()
	start := time.Now()
	for i := 0; i < b.N; i++ {
		switch i % 16 {
		case 0: // churn: depart one, arrive a replacement
			s.Offer(Event{Kind: EventDepart, ClientID: live[i/16%pool]})
		case 1:
			slot := (i / 16) % pool
			cur[slot] = clientNear(n, i, live[slot])
			s.Offer(Event{Kind: EventArrive, Client: cur[slot]})
		default: // measurement refresh
			slot := i % pool
			if i%2 == 0 {
				// Steady-state heartbeat: same incarnation, unchanged
				// geometry — the no-op fast path.
				s.Offer(Event{Kind: EventReport, Client: cur[slot]})
			} else {
				// Geometry update: a new incarnation re-optimizes.
				cur[slot] = clientNear(n, i, live[slot])
				s.Offer(Event{Kind: EventReport, Client: cur[slot]})
			}
		}
		if i%64 == 63 {
			s.Pump()
		}
	}
	for s.Pump() > 0 {
	}
	elapsed := time.Since(start)
	b.StopTimer()

	st := s.Stats()
	b.ReportMetric(float64(b.N)/elapsed.Seconds(), "events/s")
	b.ReportMetric(float64(st.LatencyP50Cum.Nanoseconds()), "p50_ns")
	b.ReportMetric(float64(st.LatencyP99Cum.Nanoseconds()), "p99_ns")
	b.ReportMetric(float64(st.NoopLatencyP99.Nanoseconds()), "noop_p99_ns")
	if st.Applied > 0 {
		b.ReportMetric(float64(st.NoopSkips)/float64(st.Applied), "noop_frac")
	}
	if st.Offered > 0 {
		b.ReportMetric(float64(st.ShedReports+st.ShedCritical)/float64(st.Offered), "shed_frac")
	}
}

// benchStreamTraced is the shared body of the BenchmarkStreamTracedOff/On
// pair: the exact event mix of BenchmarkStreamEvents, with span tracing
// either absent or at sample rate 1. The Off/On delta is the tracing
// overhead contract reported in BENCH_trace.json; b.ReportAllocs makes the
// disabled path's zero-allocation promise visible in the output.
func benchStreamTraced(b *testing.B, tracer *obs.Tracer) {
	ctrl, n := streamFixture(b, 16, 1)
	opts := StreamOptions{
		MaxBatch:        256,
		RecordLatencies: 1 << 16,
		Gate:            GateOptions{Streak: 1, RatePerHour: 60, Burst: 10},
	}
	if tracer != nil {
		opts.Tracer = tracer
	}
	s := NewStreamController(ctrl, opts)

	const pool = 128
	live := make([]string, 0, pool)
	for i := 0; i < pool; i++ {
		id := fmt.Sprintf("u%04d", i)
		s.Offer(Event{Kind: EventArrive, Client: clientNear(n, i, id)})
		live = append(live, id)
	}
	s.Pump()

	b.ReportAllocs()
	b.ResetTimer()
	start := time.Now()
	for i := 0; i < b.N; i++ {
		switch i % 16 {
		case 0:
			s.Offer(Event{Kind: EventDepart, ClientID: live[i/16%pool]})
		case 1:
			id := live[(i/16)%pool]
			s.Offer(Event{Kind: EventArrive, Client: clientNear(n, i, id)})
		default:
			s.Offer(Event{Kind: EventReport, Client: clientNear(n, i, live[i%pool])})
		}
		if i%64 == 63 {
			s.Pump()
		}
	}
	for s.Pump() > 0 {
	}
	elapsed := time.Since(start)
	b.StopTimer()

	b.ReportMetric(float64(b.N)/elapsed.Seconds(), "events/s")
	if tracer != nil {
		if snap := tracer.Snapshot(1); len(snap) == 0 {
			b.Fatalf("tracing enabled but no spans recorded")
		}
	}
}

// BenchmarkStreamTracedOff is the tracing-disabled baseline (nil tracer).
func BenchmarkStreamTracedOff(b *testing.B) { benchStreamTraced(b, nil) }

// BenchmarkStreamTracedOn runs the same mix with every event traced.
func BenchmarkStreamTracedOn(b *testing.B) {
	benchStreamTraced(b, NewStreamTracer(4096, 1, nil))
}
