package core

import (
	"math"
	"testing"

	"acorn/internal/rf"
	"acorn/internal/spectrum"
	"acorn/internal/units"
	"acorn/internal/wlan"
)

// mixedNetwork: two isolated APs; AP1 near a good and a poor client
// cluster, AP2 near a good cluster. Both APs hear a "between" client.
func mixedNetwork() (*wlan.Network, []*wlan.Client) {
	ap1 := &wlan.AP{ID: "AP1", Pos: rf.Point{X: 0, Y: 0}, TxPower: 18}
	ap2 := &wlan.AP{ID: "AP2", Pos: rf.Point{X: 600, Y: 0}, TxPower: 18}
	wall := func(db float64) map[string]units.DB {
		return map[string]units.DB{"AP1": units.DB(db), "AP2": units.DB(db)}
	}
	clients := []*wlan.Client{
		{ID: "g1", Pos: rf.Point{X: 5, Y: 2}},
		{ID: "p1", Pos: rf.Point{X: 7, Y: -4}, ExtraLoss: wall(50)},
		{ID: "p2", Pos: rf.Point{X: 9, Y: 4}, ExtraLoss: wall(50.5)},
		{ID: "g2", Pos: rf.Point{X: 604, Y: 3}},
		{ID: "g3", Pos: rf.Point{X: 596, Y: -2}},
	}
	return wlan.NewNetwork([]*wlan.AP{ap1, ap2}, clients), clients
}

func staticConfig(n *wlan.Network) *wlan.Config {
	cfg := wlan.NewConfig()
	cfg.Channels["AP1"] = spectrum.NewChannel20(36)
	cfg.Channels["AP2"] = spectrum.NewChannel40(44, 48)
	return cfg
}

func TestBeaconArithmetic(t *testing.T) {
	b := Beacon{K: 3, M: 0.5, ATD: 0.2, DU: 0.05}
	if got := b.XWith(); math.Abs(got-2.5) > 1e-12 {
		t.Errorf("XWith = %v, want 2.5", got)
	}
	if got := b.XWithout(); math.Abs(got-0.5/0.15) > 1e-12 {
		t.Errorf("XWithout = %v", got)
	}
	// A beacon representing only the inquirer: without them the cell is
	// empty, not infinite.
	solo := Beacon{K: 1, M: 1, ATD: 0.05, DU: 0.05}
	if got := solo.XWithout(); got != 0 {
		t.Errorf("solo XWithout = %v, want 0", got)
	}
	if (Beacon{}).XWith() != 0 {
		t.Error("zero beacon XWith should be 0")
	}
}

func TestGatherBeaconCountsInquirer(t *testing.T) {
	n, clients := mixedNetwork()
	cfg := staticConfig(n)
	cfg.Assoc["g1"] = "AP1"
	u := clients[1] // p1, not yet associated
	b := GatherBeacon(n, cfg, n.AP("AP1"), u)
	if b.K != 2 {
		t.Errorf("beacon K = %d, want 2 (g1 + inquirer)", b.K)
	}
	if b.DU <= 0 || b.ATD < b.DU {
		t.Errorf("beacon delays malformed: ATD %v, DU %v", b.ATD, b.DU)
	}
	// An already-associated inquirer is not double counted.
	cfg.SetAssoc("p1", "AP1")
	b2 := GatherBeacon(n, cfg, n.AP("AP1"), u)
	if b2.K != 2 {
		t.Errorf("re-inquiry K = %d, want 2", b2.K)
	}
}

func TestGatherBeaconsSortedAndRanged(t *testing.T) {
	n, clients := mixedNetwork()
	cfg := staticConfig(n)
	// g1 only hears AP1.
	bs := GatherBeacons(n, cfg, clients[0])
	if len(bs) != 1 || bs[0].APID != "AP1" {
		t.Errorf("g1 beacons = %+v", bs)
	}
}

func TestAssociateGroupsByQuality(t *testing.T) {
	n, clients := mixedNetwork()
	cfg := staticConfig(n)
	decisions := AssociateAll(n, cfg, clients)
	for _, d := range decisions {
		if d.APID == "" {
			t.Fatalf("client %s left unassociated", d.ClientID)
		}
	}
	// Local clients must associate locally (the remote AP is out of
	// range in this sparse deployment).
	for _, pair := range []struct{ client, ap string }{
		{"g1", "AP1"}, {"p1", "AP1"}, {"p2", "AP1"}, {"g2", "AP2"}, {"g3", "AP2"},
	} {
		if got := cfg.Assoc[pair.client]; got != pair.ap {
			t.Errorf("%s associated with %s, want %s", pair.client, got, pair.ap)
		}
	}
}

func TestAssociateUtilityConsistency(t *testing.T) {
	// The chosen AP's utility must be the max over candidates, and the
	// decision must not mutate the configuration.
	n, clients := mixedNetwork()
	cfg := staticConfig(n)
	cfg.Assoc["g1"] = "AP1"
	before := len(cfg.Assoc)
	d := Associate(n, cfg, clients[3]) // g2
	if len(cfg.Assoc) != before {
		t.Error("Associate mutated the config")
	}
	best := math.Inf(-1)
	for _, c := range d.Candidates {
		if c.Utility > best {
			best = c.Utility
		}
	}
	if d.Utility != best {
		t.Errorf("decision utility %v is not the candidate max %v", d.Utility, best)
	}
}

func TestAssociateOutOfRange(t *testing.T) {
	n, _ := mixedNetwork()
	cfg := staticConfig(n)
	lost := &wlan.Client{ID: "lost", Pos: rf.Point{X: 300, Y: 5000}}
	n.Clients = append(n.Clients, lost)
	d := Associate(n, cfg, lost)
	if d.APID != "" {
		t.Errorf("out-of-range client associated with %s", d.APID)
	}
}

func TestEstimatorRecalibration(t *testing.T) {
	n, _ := mixedNetwork()
	est := NewEstimator(n)
	s20 := est.LinkSNR("AP1", "g1", spectrum.Width20)
	s40 := est.LinkSNR("AP1", "g1", spectrum.Width40)
	gap := float64(s20 - s40)
	if gap < 3 || gap > 3.2 {
		t.Errorf("estimator width gap = %v, want ≈3.1 dB", gap)
	}
	// Unknown link → -Inf.
	if !math.IsInf(float64(est.LinkSNR("AP1", "ghost", spectrum.Width20)), -1) {
		t.Error("unknown link should report -Inf")
	}
}

func TestEstimatorMatchesEvaluatorShape(t *testing.T) {
	// The estimator ignores jitter, so it won't equal the ground-truth
	// evaluation, but it must be close and rank configurations the same
	// way for clearly different options.
	n, clients := mixedNetwork()
	cfg := staticConfig(n)
	AssociateAll(n, cfg, clients)
	est := NewEstimator(n)

	got := est.NetworkThroughput(cfg)
	truth := n.Evaluate(cfg).TotalUDP
	if got < truth*0.7 || got > truth*1.3 {
		t.Errorf("estimate %v too far from ground truth %v", got, truth)
	}

	// Rank check: putting AP2 (good clients) on 20 MHz must rank below
	// keeping it bonded.
	worse := cfg.Clone()
	worse.Channels["AP2"] = spectrum.NewChannel20(44)
	if est.NetworkThroughput(worse) >= got {
		t.Error("estimator failed to rank bonded good cell above 20 MHz")
	}
}

func TestEstimatorMeasurementNoise(t *testing.T) {
	n, _ := mixedNetwork()
	est := NewEstimator(n)
	clean := est.LinkSNR("AP1", "g1", spectrum.Width20)
	est.MeasurementNoiseDB = 1.5
	noisy := est.LinkSNR("AP1", "g1", spectrum.Width20)
	if clean == noisy {
		t.Error("measurement noise had no effect")
	}
	if math.Abs(float64(clean-noisy)) > 1.5 {
		t.Errorf("noise exceeded its amplitude: %v vs %v", clean, noisy)
	}
	// Deterministic per link.
	if noisy != est.LinkSNR("AP1", "g1", spectrum.Width20) {
		t.Error("measurement noise not deterministic")
	}
}

func TestAllocateChannelsImprovesAndSeparates(t *testing.T) {
	n, clients := mixedNetwork()
	cfg := staticConfig(n)
	AssociateAll(n, cfg, clients)
	// Adversarial start: both APs on the same bonded channel.
	cfg.Channels["AP1"] = spectrum.NewChannel40(36, 40)
	cfg.Channels["AP2"] = spectrum.NewChannel40(36, 40)
	est := NewEstimator(n)
	out, st := AllocateChannels(n, cfg, est, AllocOptions{})
	if st.FinalEstimate < st.InitialEstimate {
		t.Errorf("allocation regressed: %v → %v", st.InitialEstimate, st.FinalEstimate)
	}
	// AP1 holds near-dead clients alongside a good one: its width choice
	// is a wash; the key outcome is AP2 bonded (good cell).
	if got := out.Channels["AP2"].Width; got != spectrum.Width40 {
		t.Errorf("AP2 width = %v, want 40 MHz", got)
	}
	if st.Periods < 1 || st.Switches < 1 {
		t.Errorf("stats look wrong: %+v", st)
	}
	// Input config untouched.
	if cfg.Channels["AP1"] != spectrum.NewChannel40(36, 40) {
		t.Error("AllocateChannels mutated its input")
	}
}

func TestAllocateChannelsTrajectoryMonotone(t *testing.T) {
	n, clients := mixedNetwork()
	cfg := staticConfig(n)
	AssociateAll(n, cfg, clients)
	est := NewEstimator(n)
	_, st := AllocateChannels(n, cfg, est, AllocOptions{})
	prev := st.InitialEstimate
	for i, y := range st.Trajectory {
		if y+1e-9 < prev {
			t.Errorf("trajectory decreased at switch %d: %v → %v", i, prev, y)
		}
		prev = y
	}
}

func TestAllocateEpsilonStopsEarly(t *testing.T) {
	n, clients := mixedNetwork()
	cfg := staticConfig(n)
	AssociateAll(n, cfg, clients)
	est := NewEstimator(n)
	// A huge epsilon demands a 10x period improvement — must stop after
	// one period.
	_, st := AllocateChannels(n, cfg, est, AllocOptions{Epsilon: 10})
	if st.Periods != 1 {
		t.Errorf("periods = %d, want 1 with huge epsilon", st.Periods)
	}
	// MaxPeriods caps the loop even with an epsilon that never stops.
	_, st = AllocateChannels(n, cfg, est, AllocOptions{Epsilon: 1.0000001, MaxPeriods: 2})
	if st.Periods > 2 {
		t.Errorf("periods = %d, want ≤ 2", st.Periods)
	}
}

func TestRandomInitialAssignsEveryAP(t *testing.T) {
	n, _ := mixedNetwork()
	cfg := wlan.NewConfig()
	calls := 0
	RandomInitial(n, cfg, func(k int) int { calls++; return calls % k })
	for _, ap := range n.APs {
		ch := cfg.Channels[ap.ID]
		if ch.IsZero() || !n.Band.Contains(ch) {
			t.Errorf("AP %s got invalid channel %v", ap.ID, ch)
		}
	}
}

func TestControllerLifecycle(t *testing.T) {
	n, clients := mixedNetwork()
	ctrl, err := NewController(n, 7)
	if err != nil {
		t.Fatal(err)
	}
	// Every AP starts with a channel.
	cfg := ctrl.Config()
	for _, ap := range n.APs {
		if cfg.Channels[ap.ID].IsZero() {
			t.Fatalf("AP %s has no initial channel", ap.ID)
		}
	}
	rep := ctrl.AutoConfigure(clients)
	if rep.TotalUDP <= 0 {
		t.Fatal("auto-configured network has zero throughput")
	}
	final := ctrl.Config()
	if err := final.Validate(n); err != nil {
		t.Fatalf("final config invalid: %v", err)
	}
	// Config() returns a clone.
	final.Channels["AP1"] = spectrum.Channel{}
	if ctrl.Config().Channels["AP1"].IsZero() {
		t.Error("Config() exposed internal state")
	}
}

func TestControllerRejectsInvalidNetwork(t *testing.T) {
	bad := wlan.NewNetwork([]*wlan.AP{{ID: "A"}, {ID: "A"}}, nil)
	if _, err := NewController(bad, 1); err == nil {
		t.Error("invalid network accepted")
	}
}

func TestControllerDeterministicPerSeed(t *testing.T) {
	run := func() float64 {
		n, clients := mixedNetwork()
		ctrl, err := NewController(n, 99)
		if err != nil {
			t.Fatal(err)
		}
		return ctrl.AutoConfigure(clients).TotalUDP
	}
	if a, b := run(), run(); a != b {
		t.Errorf("same seed produced different outcomes: %v vs %v", a, b)
	}
}

func TestWidthAdapterSwitches(t *testing.T) {
	n, _ := mixedNetwork()
	ad := NewWidthAdapter(spectrum.NewChannel40(36, 40))
	good := map[string]units.DB{"a": 25, "b": 28}
	if ch := ad.Decide(n, good); ch.Width != spectrum.Width40 {
		t.Errorf("good cell width = %v, want 40", ch.Width)
	}
	poor := map[string]units.DB{"a": 25, "b": -1}
	if ch := ad.Decide(n, poor); ch.Width != spectrum.Width20 {
		t.Errorf("poor-client cell width = %v, want 20", ch.Width)
	}
	// Fallback keeps the primary component.
	if ad.Current().Primary != 36 {
		t.Errorf("fallback channel = %v, want primary 36", ad.Current())
	}
	// Recovery bonds again.
	if ch := ad.Decide(n, good); ch.Width != spectrum.Width40 {
		t.Errorf("recovered cell width = %v, want 40", ch.Width)
	}
}

func TestWidthAdapterRejectsBasicChannel(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("adapter should panic on a 20 MHz allocation")
		}
	}()
	NewWidthAdapter(spectrum.NewChannel20(36))
}

func TestCellThroughputAtEdgeCases(t *testing.T) {
	n, _ := mixedNetwork()
	if got := CellThroughputAt(n, nil, spectrum.Width20); got != 0 {
		t.Errorf("empty cell throughput = %v", got)
	}
	one := map[string]units.DB{"x": 20}
	t20 := CellThroughputAt(n, one, spectrum.Width20)
	t40 := CellThroughputAt(n, one, spectrum.Width40)
	if t20 <= 0 || t40 <= t20 {
		t.Errorf("good single client: t20 %v, t40 %v (want 0 < t20 < t40)", t20, t40)
	}
}

func TestAssociateStickyHysteresis(t *testing.T) {
	n, clients := mixedNetwork()
	cfg := staticConfig(n)
	AssociateAll(n, cfg, clients)
	u := clients[0] // g1
	incumbent := cfg.Assoc[u.ID]
	// With a generous margin the client never moves off a sane incumbent.
	d := AssociateSticky(n, cfg, u, incumbent, 0.5)
	if d.APID != incumbent {
		t.Errorf("sticky association moved %s → %s for <50%% gain", incumbent, d.APID)
	}
	// With no incumbent it matches plain Associate.
	plain := Associate(n, cfg, u)
	fresh := AssociateSticky(n, cfg, u, "", 0.5)
	if fresh.APID != plain.APID {
		t.Errorf("no-incumbent sticky %s differs from Associate %s", fresh.APID, plain.APID)
	}
	// Out-of-range incumbent falls through to the best candidate.
	gone := AssociateSticky(n, cfg, u, "AP-nonexistent", 0.5)
	if gone.APID != plain.APID {
		t.Errorf("vanished incumbent should yield best candidate, got %s", gone.APID)
	}
}

func TestControllerRoam(t *testing.T) {
	n, clients := mixedNetwork()
	ctrl, err := NewController(n, 3)
	if err != nil {
		t.Fatal(err)
	}
	ctrl.AdmitAll(clients)
	before := ctrl.Config().Assoc[clients[0].ID]
	d := ctrl.Roam(clients[0], 0.25)
	if d.APID == "" {
		t.Fatal("roam lost the client")
	}
	// A quarter-margin roam right after admission keeps the incumbent
	// (the admission decision was already utility-optimal).
	if got := ctrl.Config().Assoc[clients[0].ID]; got != before {
		t.Errorf("gratuitous roam %s → %s", before, got)
	}
}

// TestCellThroughputUsesCachedAccessShare pins the fix for the silent
// cache bypass: CellThroughput must price the access share through the
// estimator's cached contention relation (like NetworkThroughput), not the
// network's live predicate. The cached relation is deliberately frozen at
// first query, so after moving a bridging client away the live predicate
// changes while the estimator's view — and therefore CellThroughput — must
// not.
func TestCellThroughputUsesCachedAccessShare(t *testing.T) {
	a := &wlan.AP{ID: "A", Pos: rf.Point{X: 0, Y: 0}, TxPower: 18}
	b := &wlan.AP{ID: "B", Pos: rf.Point{X: 400, Y: 0}, TxPower: 18}
	ca := &wlan.Client{ID: "ca", Pos: rf.Point{X: 2, Y: 1}}
	mid := &wlan.Client{ID: "mid", Pos: rf.Point{X: 100, Y: 0}}
	farB := &wlan.Client{ID: "farB", Pos: rf.Point{X: 402, Y: 1}}
	n := wlan.NewNetwork([]*wlan.AP{a, b}, []*wlan.Client{ca, mid, farB})
	cfg := wlan.NewConfig()
	cfg.Channels["A"] = spectrum.NewChannel20(36)
	cfg.Channels["B"] = spectrum.NewChannel20(36)
	cfg.SetAssoc("ca", "A")
	cfg.SetAssoc("farB", "B")
	cfg.SetAssoc("mid", "B") // B's client in A's range → A and B contend
	if !n.Contend(a, b, cfg) {
		t.Fatal("test setup: APs should contend via the bridging client")
	}
	est := NewEstimator(n)
	shared := est.CellThroughput(cfg, "A") // caches contend(A,B) = true
	if shared <= 0 {
		t.Fatal("cell throughput should be positive")
	}
	// Remove the bridging client: the live predicate now says the APs are
	// independent (farB keeps B populated), but the estimator's relation —
	// deliberately frozen at first query — still charges the contender.
	// A's cell content is unchanged, so the fixed CellThroughput must
	// reproduce its first answer bit-for-bit; the old n.AccessShare path
	// would silently double it.
	cfg.Unassoc("mid")
	if n.Contend(a, b, cfg) {
		t.Fatal("test setup: removing the bridge should break live contention")
	}
	if got := est.CellThroughput(cfg, "A"); got != shared {
		t.Errorf("CellThroughput bypassed the cached relation: %v, want %v", got, shared)
	}
	// And the per-cell pricing must agree with NetworkThroughput's: on a
	// fresh estimator the cell terms sum to the network total.
	fresh := NewEstimator(n)
	cfg.SetAssoc("mid", "B")
	total := fresh.NetworkThroughput(cfg)
	sum := fresh.CellThroughput(cfg, "A") + fresh.CellThroughput(cfg, "B")
	if math.Abs(total-sum) > 1e-9 {
		t.Errorf("cell sum %v diverges from network total %v", sum, total)
	}
}

func TestEstimatorContentionCacheMatchesNetwork(t *testing.T) {
	// The estimator's cached contention relation must agree with the
	// network's geometric predicate for a fixed association.
	n, clients := mixedNetwork()
	// Move AP2 into range so contention actually exists.
	n.AP("AP2").Pos = rf.Point{X: 40, Y: 0}
	cfg := staticConfig(n)
	AssociateAll(n, cfg, clients)
	est := NewEstimator(n)
	// Trigger cache population through a throughput call.
	est.NetworkThroughput(cfg)
	for _, a := range n.APs {
		for _, b := range n.APs {
			if a == b {
				continue
			}
			if est.contend(cfg, a, b) != n.Contend(a, b, cfg) {
				t.Errorf("cached contention for %s–%s diverges", a.ID, b.ID)
			}
		}
	}
}
