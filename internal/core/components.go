package core

// Connected-component decomposition of the AP contention graph, and the
// component-sharded Algorithm-2 solver built on it (DESIGN.md §13).
//
// Contention is channel-independent and static during one run, so the
// populated cells split into connected components of the contention graph —
// independent sub-WLANs that share no term of the objective: a cell's M
// depends only on its contending neighbors, its k and ATD only on its own
// members. A candidate move inside one component cannot change any other
// component's cells, so Algorithm 2 decomposes into per-component searches
// (the structure Faridi et al.'s interference-network analysis predicts for
// dense deployments, and what a multi-building campus looks like in
// practice).
//
// The sharded solver exploits that: each component becomes a self-contained
// subproblem (its APs, their clients, the same band) solved by the ordinary
// incremental engine on its own worker, and the results are merged serially
// in component order. Determinism is structural — components are
// discovered in AP order, subproblems are independent by construction, and
// the merge folds their statistics in a fixed order — so the output is
// bit-identical for every worker count, and each subproblem is bit-exact
// against the generic oracle run on the same subproblem (the engine's
// standing invariant).
//
// Sharding is a different search than the whole-network solve, not a faster
// encoding of it: the ε stopping rule and the switch budget apply per
// component (a converged campus cannot keep a distant building iterating,
// and vice versa), and estimates in the merged statistics cover the solved
// components. On near-degenerate float ties the per-component argmax can
// also pick a different winner than the global-sum argmax (adding a large
// cross-component constant to both sides of a comparison can absorb a
// one-ULP difference). Both are deliberate; the equivalence suite therefore
// pins the sharded path against per-component oracles, not the global one.

import (
	"sync"
	"time"

	"acorn/internal/wlan"
)

// contentionComponents returns the connected components of the populated
// contention graph: each component is an ascending slice of AP indices, and
// components are ordered by their smallest member. neighbors is the
// adjacency restricted to populated cells (allocState.neighbors); popIdx
// lists the populated AP indices ascending.
func contentionComponents(neighbors [][]int32, popIdx []int) [][]int32 {
	seen := make(map[int]bool, len(popIdx))
	var comps [][]int32
	var stack []int32
	for _, start := range popIdx {
		if seen[start] {
			continue
		}
		comp := []int32{}
		stack = append(stack[:0], int32(start))
		seen[start] = true
		for len(stack) > 0 {
			i := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			comp = append(comp, i)
			for _, j := range neighbors[i] {
				if !seen[int(j)] {
					seen[int(j)] = true
					stack = append(stack, j)
				}
			}
		}
		sortInt32s(comp)
		comps = append(comps, comp)
	}
	return comps
}

func sortInt32s(s []int32) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// conflictGraph is the standalone contention-graph build the sharded solver
// uses: the same predicate as allocState (contendPair restricted to the two
// cells' clients), but without the delay tables — the subproblem states
// compute those for their own members only. The pair scan is fanned across
// workers; verdicts are pure and land in per-pair slots, so the graph is
// identical for any worker count.
type conflictGraph struct {
	apIdx     map[string]int
	populated []int
	popIdx    []int
	clientsOf [][]*wlan.Client
	neighbors [][]int32
	comps     [][]int32

	// pairsScanned/pairsPruned/spatial mirror allocState's build stats.
	pairsScanned int
	pairsPruned  int
	spatial      bool
}

func buildConflictGraph(n *wlan.Network, cfg *wlan.Config, workers int, opts AllocOptions) *conflictGraph {
	g := &conflictGraph{
		apIdx:     make(map[string]int, len(n.APs)),
		populated: make([]int, len(n.APs)),
		clientsOf: clientsByHome(n, cfg),
		neighbors: make([][]int32, len(n.APs)),
	}
	for i, ap := range n.APs {
		g.apIdx[ap.ID] = i
	}
	for _, apID := range cfg.Assoc {
		if i, ok := g.apIdx[apID]; ok {
			g.populated[i]++
		}
	}
	for i := range g.populated {
		if g.populated[i] > 0 {
			g.popIdx = append(g.popIdx, i)
		}
	}

	// Pair scan: candidate pairs (a < b), chunked by row across workers.
	// st.contendPair needs only the fields mirrored here, so a throwaway
	// allocState shell carries them. With a sound cutoff the rows hold the
	// spatial candidates; otherwise row a covers popIdx[a+1:] — either way
	// verdicts are pure and land in per-pair slots, so the graph is
	// identical for any worker count, with or without the index.
	shell := &allocState{n: n}
	p := len(g.popIdx)
	rows, scanned, spatial := spatialCandidates(n, g.popIdx, g.clientsOf, opts)
	g.spatial = spatial
	if spatial {
		g.pairsScanned = scanned
		g.pairsPruned = totalPairs(p) - scanned
	} else {
		g.pairsScanned = totalPairs(p)
	}
	verdicts := make([][]bool, p)
	if workers > p {
		workers = p
	}
	if workers < 1 {
		workers = 1
	}
	var wg sync.WaitGroup
	var next int64
	var mu sync.Mutex
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				mu.Lock()
				a := int(next)
				next++
				mu.Unlock()
				if a >= p {
					return
				}
				i := g.popIdx[a]
				if spatial {
					row := make([]bool, len(rows[a]))
					for k, j32 := range rows[a] {
						row[k] = shell.contendPair(i, int(j32), g.clientsOf)
					}
					verdicts[a] = row
				} else {
					row := make([]bool, p-a-1)
					for k := range row {
						j := g.popIdx[a+1+k]
						row[k] = shell.contendPair(i, j, g.clientsOf)
					}
					verdicts[a] = row
				}
			}
		}()
	}
	wg.Wait()
	for a := 0; a < p; a++ {
		i := g.popIdx[a]
		for k, hit := range verdicts[a] {
			if hit {
				j := g.popIdx[a+1+k]
				if spatial {
					j = int(rows[a][k])
				}
				g.neighbors[i] = append(g.neighbors[i], int32(j))
				g.neighbors[j] = append(g.neighbors[j], int32(i))
			}
		}
	}
	for i := range g.neighbors {
		sortInt32s(g.neighbors[i])
	}
	g.comps = contentionComponents(g.neighbors, g.popIdx)
	return g
}

// clientsByHome buckets the network's clients by their home AP index, in
// n.Clients order — the association snapshot both the graph build and the
// subproblem extraction walk.
func clientsByHome(n *wlan.Network, cfg *wlan.Config) [][]*wlan.Client {
	apIdx := make(map[string]int, len(n.APs))
	for i, ap := range n.APs {
		apIdx[ap.ID] = i
	}
	clientsOf := make([][]*wlan.Client, len(n.APs))
	for _, c := range n.Clients {
		if home, ok := apIdx[cfg.Assoc[c.ID]]; ok {
			clientsOf[home] = append(clientsOf[home], c)
		}
	}
	return clientsOf
}

// shardResult is one component's solved subproblem.
type shardResult struct {
	comp     []int32
	cfg      *wlan.Config
	stats    AllocStats
	duration time.Duration
}

// allocateSharded runs Algorithm 2 per contention component on
// opts.ShardWorkers workers and merges the results deterministically. It
// returns ok=false only when the band is empty (nothing to allocate from) —
// the caller then falls through to the unsharded dispatch.
func allocateSharded(n *wlan.Network, cfg *wlan.Config, est *Estimator, opts AllocOptions) (*wlan.Config, AllocStats, bool) {
	if len(n.Band.AllChannels()) == 0 {
		return nil, AllocStats{}, false
	}
	workers := opts.shardWorkers()

	// The component partition either comes from the association engine's
	// incrementally maintained partition (attached by the Controller or
	// StreamController, valid for exactly this binding) or from a fresh
	// conflict-graph build. The maintained partition is kept equal to the
	// built one by construction (partition.go), so the solve below cannot
	// tell them apart — it only needs the components and the per-AP client
	// buckets.
	var comps [][]int32
	var clientsOf [][]*wlan.Client
	var graphStats AllocStats
	if opts.Partition.validFor(n, cfg) {
		comps = opts.Partition.components()
		clientsOf = clientsByHome(n, cfg)
		graphStats.PartitionReused = true
	} else {
		g := buildConflictGraph(n, cfg, workers, opts)
		comps, clientsOf = g.comps, g.clientsOf
		graphStats.GraphPairsScanned = g.pairsScanned
		graphStats.GraphPairsPruned = g.pairsPruned
		graphStats.SpatialIndex = g.spatial
	}

	// Only components holding at least one eligible AP are solved; the
	// rest keep their channels untouched and cost nothing — the property
	// the streaming controller's neighbourhood re-optimization relies on
	// (a dirty cell wakes its own component, not the campus).
	var jobs []int
	for ci, comp := range comps {
		for _, i := range comp {
			if opts.eligible(n.APs[i].ID) {
				jobs = append(jobs, ci)
				break
			}
		}
	}

	stats := AllocStats{
		GraphComponents:    len(comps),
		SolvedComponents:   len(jobs),
		ShardWorkersUsed:   workers,
		ComponentDurations: make([]time.Duration, len(jobs)),
		GraphPairsScanned:  graphStats.GraphPairsScanned,
		GraphPairsPruned:   graphStats.GraphPairsPruned,
		SpatialIndex:       graphStats.SpatialIndex,
		PartitionReused:    graphStats.PartitionReused,
	}
	for _, comp := range comps {
		if len(comp) > stats.LargestComponent {
			stats.LargestComponent = len(comp)
		}
	}
	out := cfg.Clone()
	if len(jobs) == 0 {
		stats.Periods = 0
		return out, stats, true
	}

	// Per-component solves: each worker builds the component's subproblem
	// (sub-network, sub-configuration, fresh sub-estimator over exactly its
	// links) and runs the ordinary dispatch on it. Results land in per-job
	// slots; no ordering race.
	subOpts := opts
	subOpts.ShardWorkers = 0 // no recursive sharding: one component is connected
	subOpts.Workers = 1      // parallelism comes from components, not rank scans
	subOpts.Only = nil       // restored below
	subOpts.Partition = nil  // the handle is for the whole network, not a subproblem
	results := make([]shardResult, len(jobs))
	if workers > len(jobs) {
		workers = len(jobs)
	}
	var wg sync.WaitGroup
	var mu sync.Mutex
	var next int
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				mu.Lock()
				k := next
				next++
				mu.Unlock()
				if k >= len(jobs) {
					return
				}
				start := time.Now()
				comp := comps[jobs[k]]
				subN, subCfg := buildSubproblem(n, cfg, comp, clientsOf)
				subEst := NewEstimator(subN)
				subEst.MeasurementNoiseDB = est.MeasurementNoiseDB
				o := subOpts
				o.Only = opts.Only
				subOut, subStats := AllocateChannels(subN, subCfg, subEst, o)
				results[k] = shardResult{comp: comp, cfg: subOut, stats: subStats, duration: time.Since(start)}
			}
		}()
	}
	wg.Wait()

	// Serial merge in component order. Channel assignments are disjoint by
	// construction. Estimate-valued statistics are offset so the merged
	// trajectory reads as one monotone global search: a switch in component
	// c is reported against the earlier components' final totals plus the
	// later components' initial totals — deterministic regardless of which
	// worker solved what, and consistent with Initial/FinalEstimate being
	// the ordered sums of the component totals.
	for _, r := range results {
		stats.InitialEstimate += r.stats.InitialEstimate
	}
	base := 0.0 // sum of finals of components already merged
	rest := stats.InitialEstimate
	for k, r := range results {
		for _, i := range r.comp {
			apID := n.APs[i].ID
			out.Channels[apID] = r.cfg.Channels[apID]
		}
		rest -= r.stats.InitialEstimate
		offset := base + rest
		for _, y := range r.stats.Trajectory {
			stats.Trajectory = append(stats.Trajectory, offset+y)
		}
		for _, rec := range r.stats.History {
			rec.Estimate = offset + rec.Estimate
			stats.History = append(stats.History, rec)
		}
		base += r.stats.FinalEstimate
		stats.Switches += r.stats.Switches
		if r.stats.Periods > stats.Periods {
			stats.Periods = r.stats.Periods
		}
		stats.Evals.add(r.stats.Evals)
		stats.RankNanos += r.stats.RankNanos
		if r.stats.Fallback {
			stats.Fallback = true
		}
		if r.stats.SpectrumComponents > stats.SpectrumComponents {
			stats.SpectrumComponents = r.stats.SpectrumComponents
		}
		stats.ComponentDurations[k] = r.duration
	}
	stats.FinalEstimate = base
	return out, stats, true
}

// buildSubproblem extracts one component's self-contained allocation
// problem: the component's APs (in network AP order), the clients homed at
// them (in network client order), and the component's slice of the
// configuration. Every float the subproblem's estimator produces is the
// same bits the full network's estimator would produce for the same cell —
// link SNRs and delays depend only on the (AP, client) pair, populations
// and contention only on the component's own members.
func buildSubproblem(n *wlan.Network, cfg *wlan.Config, comp []int32, clientsOf [][]*wlan.Client) (*wlan.Network, *wlan.Config) {
	subN := &wlan.Network{
		Band:            n.Band,
		Prop:            n.Prop,
		PacketBytes:     n.PacketBytes,
		JitterDB:        n.JitterDB,
		CSThreshold:     n.CSThreshold,
		AssocMinSNR:     n.AssocMinSNR,
		NoiseFigure:     n.NoiseFigure,
		ContendOverride: n.ContendOverride,
	}
	subCfg := wlan.NewConfig()
	for _, i := range comp {
		ap := n.APs[i]
		subN.APs = append(subN.APs, ap)
		if ch := cfg.Channels[ap.ID]; !ch.IsZero() {
			subCfg.Channels[ap.ID] = ch
		}
	}
	// Clients in network order: walk n.Clients and keep those homed in the
	// component, preserving the estimator's ATD fold order.
	members := make(map[string]bool)
	for _, i := range comp {
		for _, c := range clientsOf[i] {
			members[c.ID] = true
		}
	}
	for _, c := range n.Clients {
		if members[c.ID] {
			subN.Clients = append(subN.Clients, c)
			subCfg.SetAssoc(c.ID, cfg.Assoc[c.ID])
		}
	}
	return subN, subCfg
}
