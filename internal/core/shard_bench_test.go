package core

// The benchmark pair behind BENCH_shard.json: one bounded Algorithm-2 pass
// over a 2000-AP campus (40 buildings of 50 APs, kilometers apart — 40
// independent contention components), solved by the component-sharded path
// on 1 worker versus 8. The derived shard_speedup_2000ap ratio is the
// multi-worker speedup; the unsharded whole-network run is included for
// context (it prices the same pass through one global state build).

import (
	"runtime"
	"testing"
)

var shardBenchOpts = AllocOptions{MaxPeriods: 1, MaxSwitchesPerPeriod: 2}

func benchShardSolve(b *testing.B, shardWorkers int) {
	n, cfg := multiBuildingSetup(b, 40, 50, 2, 77, nil)
	est := NewEstimator(n)
	opts := shardBenchOpts
	opts.ShardWorkers = shardWorkers
	b.ReportAllocs()
	b.ResetTimer()
	var last AllocStats
	for i := 0; i < b.N; i++ {
		_, last = AllocateChannels(n, cfg, est, opts)
	}
	b.ReportMetric(float64(last.GraphComponents), "components")
	b.ReportMetric(float64(last.LargestComponent), "largest_comp_aps")
}

func BenchmarkShardSolve2000AP1W(b *testing.B) {
	benchShardSolve(b, 1)
}

func BenchmarkShardSolve2000AP8W(b *testing.B) {
	benchShardSolve(b, 8)
}

// BenchmarkShardUnsharded2000AP prices the same pass without sharding: one
// whole-network incremental state (its contention scan is the quadratic
// term sharding sidesteps), rank workers at GOMAXPROCS.
func BenchmarkShardUnsharded2000AP(b *testing.B) {
	if testing.Short() {
		b.Skip("whole-network 2000-AP state build takes seconds per run")
	}
	n, cfg := multiBuildingSetup(b, 40, 50, 2, 77, nil)
	est := NewEstimator(n)
	opts := shardBenchOpts
	opts.Workers = runtime.GOMAXPROCS(0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		AllocateChannels(n, cfg, est, opts)
	}
}
