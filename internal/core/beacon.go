// Package core implements ACORN itself: the modified-beacon information
// base, the user-association algorithm (Algorithm 1 / Eq. 4), the channel
// bonding selection algorithm (Algorithm 2), the link-quality estimator that
// recalibrates SNR across channel widths, and the opportunistic width
// adaptation used under mobility. The two modules are deliberately joint:
// association groups clients of similar link quality so that the allocator
// can hand 40 MHz channels to the cells that profit from them and plain
// 20 MHz channels to cells holding poor links (Section 4).
package core

import (
	"math"
	"sort"

	"acorn/internal/phy"
	"acorn/internal/ratecontrol"
	"acorn/internal/spectrum"
	"acorn/internal/units"
	"acorn/internal/wlan"
)

// Beacon is the modified beacon of Section 4.1: everything a client needs to
// compute X_w,u and X_wo,u for one AP. K includes the inquiring client u
// (who trial-associates to obtain cross-layer information, as in [17]/[18]),
// and ATD includes u's own delay d_u.
type Beacon struct {
	APID    string
	Channel spectrum.Channel
	// K is the number of associated clients including the inquirer.
	K int
	// M is the AP's channel access share (1 under no contention,
	// estimated as 1/(|con_a|+1) otherwise).
	M float64
	// ATD is the aggregate transmission delay Σ d_cl including the
	// inquirer's delay (s/Mbit).
	ATD float64
	// DU is the inquirer's own transmission delay d_u at this AP
	// (s/Mbit), measured during trial association.
	DU float64
}

// XWith returns X^i_w,u = M_i/ATD_i — the per-client throughput of the AP
// with the inquirer on board.
func (b Beacon) XWith() float64 {
	if b.ATD <= 0 || math.IsInf(b.ATD, 1) {
		return 0
	}
	return b.M / b.ATD
}

// XWithout returns X^i_wo,u = M_i/(ATD_i − d_u) — the per-client throughput
// the AP would see without the inquirer.
func (b Beacon) XWithout() float64 {
	rem := b.ATD - b.DU
	if rem <= 0 || math.IsInf(rem, 1) {
		return 0
	}
	return b.M / rem
}

// clientDelay computes d_u for one AP→client link on the AP's current
// channel, the quantity APs derive from the PER-estimation procedure and the
// client's nominal rate (Section 5.1).
func clientDelay(n *wlan.Network, ap *wlan.AP, c *wlan.Client, ch spectrum.Channel) float64 {
	snr := n.ClientSNR(ap, c, ch)
	sel := ratecontrol.Best(snr, ch.Width, n.PacketBytes)
	return 1 / sel.GoodputMbps // goodput is floored by the MAC delay cap
}

// GatherBeacon produces the Beacon AP ap would broadcast for inquiring
// client u under configuration cfg. The inquirer is counted even though the
// persistent association map does not (yet) include it.
func GatherBeacon(n *wlan.Network, cfg *wlan.Config, ap *wlan.AP, u *wlan.Client) Beacon {
	ch := cfg.Channels[ap.ID]
	du := clientDelay(n, ap, u, ch)
	atd := du
	k := 1
	for _, id := range cfg.ClientsOf(ap.ID) {
		if id == u.ID {
			continue // u may already be associated during re-evaluation
		}
		atd += clientDelay(n, ap, n.Client(id), ch)
		k++
	}
	// M as the client would observe it: the AP's current access share,
	// counting itself as active now that u brings it traffic.
	m := accessShareWith(n, cfg, ap, u)
	return Beacon{APID: ap.ID, Channel: ch, K: k, M: m, ATD: atd, DU: du}
}

// accessShareWith computes the access share of ap assuming client u is (at
// least temporarily) associated with it, so the cell counts as active. The
// trial association is applied in place and restored — this runs once per
// candidate AP per admission, and cloning the whole configuration here
// dominated admission cost in churn simulations. The toggle goes through
// SetAssoc/Unassoc so the reverse index AccessShare reads stays consistent.
func accessShareWith(n *wlan.Network, cfg *wlan.Config, ap *wlan.AP, u *wlan.Client) float64 {
	prev, had := cfg.Assoc[u.ID]
	cfg.SetAssoc(u.ID, ap.ID)
	m := n.AccessShare(cfg, ap)
	if had {
		cfg.SetAssoc(u.ID, prev)
	} else {
		cfg.Unassoc(u.ID)
	}
	return m
}

// GatherBeacons collects beacons from every AP in range of u, sorted by AP
// ID for determinism.
func GatherBeacons(n *wlan.Network, cfg *wlan.Config, u *wlan.Client) []Beacon {
	aps := n.APsInRange(u)
	beacons := make([]Beacon, 0, len(aps))
	for _, ap := range aps {
		beacons = append(beacons, GatherBeacon(n, cfg, ap, u))
	}
	sort.Slice(beacons, func(i, j int) bool { return beacons[i].APID < beacons[j].APID })
	return beacons
}

// snrForWidth recalibrates a link SNR measured at 20 MHz to the given
// width: moving to 40 MHz costs the bonding penalty (~3 dB), staying at
// 20 MHz costs nothing (the SNR calibration module of Section 4.2).
func snrForWidth(snr20 units.DB, w spectrum.Width) units.DB {
	if w == spectrum.Width40 {
		return snr20.Minus(phy.BondingSNRPenalty())
	}
	return snr20
}
