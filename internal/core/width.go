package core

// Opportunistic width adaptation (Section 5.2, mobility experiments). An AP
// holding a 40 MHz assignment owns both 20 MHz components, so it may fall
// back to its primary 20 MHz channel at any time without changing the
// interference it projects on neighbors — the allocation already reserved
// the spectrum. ACORN exploits this under client mobility: as a client's
// link degrades, bonding starts hurting the whole cell (performance
// anomaly), and the AP drops to 20 MHz; when the link recovers, it bonds
// again.

import (
	"acorn/internal/spectrum"
	"acorn/internal/units"
	"acorn/internal/wlan"
)

// WidthAdapter makes the per-beacon-interval 20-vs-40 decision for one AP
// that was allocated a composite channel.
type WidthAdapter struct {
	// Allocated is the 40 MHz channel the allocator granted.
	Allocated spectrum.Channel
	// HysteresisMbps is the throughput margin required to change the
	// current width, damping oscillation near the crossover.
	HysteresisMbps float64

	current spectrum.Channel
}

// NewWidthAdapter returns an adapter for an AP granted the given composite
// channel. It panics if the channel is not 40 MHz wide, which would be a
// programming error: adaptation only applies to bonded grants.
func NewWidthAdapter(allocated spectrum.Channel) *WidthAdapter {
	if allocated.Width != spectrum.Width40 {
		panic("core: WidthAdapter requires a 40 MHz allocation")
	}
	return &WidthAdapter{Allocated: allocated, HysteresisMbps: 0.5, current: allocated}
}

// Current returns the channel the AP is presently operating.
func (w *WidthAdapter) Current() spectrum.Channel { return w.current }

// Decide evaluates the cell throughput at both widths from the clients'
// measured 20 MHz-reference SNRs and switches when the other width wins by
// more than the hysteresis margin. It returns the channel to operate.
//
// The evaluation mirrors the estimator: recalibrate SNR for width, run rate
// control, apply the DCF anomaly (no contention term — the spectrum is
// reserved either way).
func (w *WidthAdapter) Decide(n *wlan.Network, clientSNR20 map[string]units.DB) spectrum.Channel {
	t40 := CellThroughputAt(n, clientSNR20, spectrum.Width40)
	t20 := CellThroughputAt(n, clientSNR20, spectrum.Width20)
	switch {
	case w.current.Width == spectrum.Width40 && t20 > t40+w.HysteresisMbps:
		w.current = w.Allocated.PrimaryOnly()
	case w.current.Width == spectrum.Width20 && t40 > t20+w.HysteresisMbps:
		w.current = w.Allocated
	}
	return w.current
}

// CellThroughputAt computes the anomaly-model aggregate throughput of a
// cell whose clients have the given 20 MHz-reference SNRs, operated at
// width wd with full channel access (no contention). The mobility
// experiments evaluate ACORN and the fixed-width baselines through it.
func CellThroughputAt(n *wlan.Network, clientSNR20 map[string]units.DB, wd spectrum.Width) float64 {
	if len(clientSNR20) == 0 {
		return 0
	}
	var atd float64
	count := 0
	for _, snr20 := range clientSNR20 {
		d := delayAt(n, snr20, wd)
		atd += d
		count++
	}
	if atd <= 0 {
		return 0
	}
	return float64(count) / atd
}

func delayAt(n *wlan.Network, snr20 units.DB, wd spectrum.Width) float64 {
	return 1 / bestAt(n, snr20, wd) // goodput is floored by the MAC delay cap
}

func bestAt(n *wlan.Network, snr20 units.DB, wd spectrum.Width) float64 {
	snr := snrForWidth(snr20, wd)
	return goodputAt(n, snr, wd)
}
