package core

// Equivalence suite for the spatial-index conflict-graph build (spatial.go,
// geo.Grid) and the incrementally maintained contention partition
// (partition.go). The contract everywhere is exactness, not approximation:
// the indexed build must produce neighbor lists and component partitions
// bit-identical to the O(P²) full scan on every geometry — including the
// adversarial ones (clusters denser than a grid cell, colinear layouts that
// stress one grid axis, every AP at one point so a single cell holds the
// whole network) — and the maintained partition must equal a from-scratch
// component decomposition after every kind of churn the engine supports.

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"
	"time"

	"acorn/internal/rf"
	"acorn/internal/stats"
	"acorn/internal/units"
	"acorn/internal/wlan"
)

// geomNetwork builds an nAP-AP network in the named layout with clients
// scattered near APs and heterogeneous transmit powers (directional
// carrier sense exercises the lower-index-transmits convention).
func geomNetwork(layout string, nAP, clientsPer int, seed int64) (*wlan.Network, []*wlan.Client) {
	rng := rand.New(rand.NewSource(seed))
	pos := make([]rf.Point, nAP)
	switch layout {
	case "uniform":
		for i := range pos {
			pos[i] = rf.Point{X: rng.Float64() * 2500, Y: rng.Float64() * 2500}
		}
	case "clustered":
		// A handful of dense clusters far apart: many points per grid cell
		// inside a cluster, empty cells between them.
		nClusters := 4
		for i := range pos {
			c := i % nClusters
			cx, cy := float64(c%2)*3000, float64(c/2)*3000
			pos[i] = rf.Point{X: cx + rng.Float64()*40, Y: cy + rng.Float64()*40}
		}
	case "colinear":
		for i := range pos {
			pos[i] = rf.Point{X: rng.Float64()*4000 - 2000, Y: 0}
		}
	case "coincident":
		for i := range pos {
			pos[i] = rf.Point{X: -123.25, Y: 77.5}
		}
	default:
		panic("unknown layout " + layout)
	}
	aps := make([]*wlan.AP, nAP)
	var clients []*wlan.Client
	for i := range aps {
		aps[i] = &wlan.AP{
			ID:      fmt.Sprintf("ap%04d", i),
			Pos:     pos[i],
			TxPower: units.DBm(12 + i%9), // heterogeneous powers: directional CS
		}
		for k := 0; k < clientsPer; k++ {
			clients = append(clients, &wlan.Client{
				ID: fmt.Sprintf("u%05d", i*clientsPer+k),
				Pos: rf.Point{
					X: pos[i].X + (rng.Float64()-0.5)*60,
					Y: pos[i].Y + (rng.Float64()-0.5)*60,
				},
			})
		}
	}
	return wlan.NewNetwork(aps, clients), clients
}

// geomSetup associates most clients (some to far APs, some left out, so the
// populated set is a strict subset and client-mediated edges exist).
func geomSetup(t *testing.T, layout string, nAP, clientsPer int, seed int64) (*wlan.Network, *wlan.Config) {
	t.Helper()
	n, clients := geomNetwork(layout, nAP, clientsPer, seed)
	cfg := wlan.NewConfig()
	rng := stats.NewRand(seed)
	RandomInitial(n, cfg, rng.Intn)
	for i, c := range clients {
		switch i % 7 {
		case 6:
			// unassociated
		default:
			cfg.SetAssoc(c.ID, n.APs[(i+i/3)%len(n.APs)].ID)
		}
	}
	return n, cfg
}

// TestSpatialGraphEquivalence pins the tentpole contract: for every layout,
// the spatial-index build's neighbor lists, component partition, and
// allocState adjacency are identical to the NoSpatialIndex full scan, for
// every worker count, and the pair-scan accounting is conserved
// (scanned + pruned = P·(P−1)/2).
func TestSpatialGraphEquivalence(t *testing.T) {
	layouts := []string{"uniform", "clustered", "colinear", "coincident"}
	for _, layout := range layouts {
		for seed := int64(1); seed <= 3; seed++ {
			t.Run(fmt.Sprintf("%s/seed%d", layout, seed), func(t *testing.T) {
				n, cfg := geomSetup(t, layout, 60, 2, seed)
				ref := buildConflictGraph(n, cfg, 1, AllocOptions{NoSpatialIndex: true})
				if ref.spatial {
					t.Fatal("NoSpatialIndex build claims spatial")
				}
				for _, workers := range []int{1, 2, 8} {
					g := buildConflictGraph(n, cfg, workers, AllocOptions{})
					if !g.spatial {
						t.Fatalf("workers=%d: spatial path did not engage", workers)
					}
					if !reflect.DeepEqual(g.neighbors, ref.neighbors) {
						t.Fatalf("workers=%d: neighbor lists diverge from full scan", workers)
					}
					if !reflect.DeepEqual(g.comps, ref.comps) {
						t.Fatalf("workers=%d: components diverge from full scan", workers)
					}
					if total := totalPairs(len(g.popIdx)); g.pairsScanned+g.pairsPruned != total {
						t.Fatalf("workers=%d: scanned %d + pruned %d != %d pairs",
							workers, g.pairsScanned, g.pairsPruned, total)
					}
				}

				stRef := newAllocState(n, cfg, NewEstimator(n), AllocOptions{NoSpatialIndex: true})
				st := newAllocState(n, cfg, NewEstimator(n), AllocOptions{})
				if !st.spatial {
					t.Fatal("allocState spatial path did not engage")
				}
				if !reflect.DeepEqual(st.neighbors, stRef.neighbors) {
					t.Fatal("allocState adjacency diverges from full scan")
				}
				if !reflect.DeepEqual(st.comps, stRef.comps) {
					t.Fatal("allocState components diverge from full scan")
				}
			})
		}
	}
}

// TestSpatialGridCellOverride pins that a custom grid cell size changes
// nothing but the bucketing: results stay identical to the full scan.
func TestSpatialGridCellOverride(t *testing.T) {
	n, cfg := geomSetup(t, "uniform", 50, 2, 9)
	ref := buildConflictGraph(n, cfg, 1, AllocOptions{NoSpatialIndex: true})
	for _, cell := range []float64{7, 150, 1e6} {
		g := buildConflictGraph(n, cfg, 1, AllocOptions{GridCellM: cell})
		if !g.spatial {
			t.Fatalf("cell=%g: spatial path did not engage", cell)
		}
		if !reflect.DeepEqual(g.neighbors, ref.neighbors) || !reflect.DeepEqual(g.comps, ref.comps) {
			t.Fatalf("cell=%g: indexed build diverges from full scan", cell)
		}
	}
}

// TestSpatialOverrideDispatch pins the fallback contract: a contention
// override disables the spatial candidate pass (verdicts are not geometric)
// and both the graph build and the association engine take the exact full
// scan, with identical results to a non-indexed build.
func TestSpatialOverrideDispatch(t *testing.T) {
	n, cfg := geomSetup(t, "uniform", 40, 2, 4)
	n.ContendOverride = func(a, b string) bool { return (len(a)+len(b))%2 == 0 || a < b }
	if rows, _, ok := spatialCandidates(n, []int{0, 1}, make([][]*wlan.Client, len(n.APs)), AllocOptions{}); ok || rows != nil {
		t.Fatal("spatialCandidates accepted an overridden network")
	}
	g := buildConflictGraph(n, cfg, 2, AllocOptions{})
	ref := buildConflictGraph(n, cfg, 1, AllocOptions{NoSpatialIndex: true})
	if g.spatial {
		t.Fatal("spatial path engaged under a contention override")
	}
	if !reflect.DeepEqual(g.neighbors, ref.neighbors) || !reflect.DeepEqual(g.comps, ref.comps) {
		t.Fatal("override build diverges")
	}
	e := newAssocEngine(n, cfg)
	if e == nil {
		t.Fatal("engine rejected override fixture")
	}
	if e.buildApapSpatial() {
		t.Fatal("buildApapSpatial accepted an overridden network")
	}
}

// TestSpatialNoInvertibleBound pins the other fallback: a degenerate
// propagation model (non-positive exponent ⇒ no monotone distance bound)
// must route both builders to the full scan.
func TestSpatialNoInvertibleBound(t *testing.T) {
	n, cfg := geomSetup(t, "uniform", 30, 1, 5)
	n.Prop.Exponent = 0
	g := buildConflictGraph(n, cfg, 1, AllocOptions{})
	if g.spatial {
		t.Fatal("spatial path engaged without an invertible propagation bound")
	}
	ref := buildConflictGraph(n, cfg, 1, AllocOptions{NoSpatialIndex: true})
	if !reflect.DeepEqual(g.neighbors, ref.neighbors) {
		t.Fatal("degenerate-model build diverges")
	}
}

// partitionOracle rebuilds components from scratch off the live (n, cfg).
func partitionOracle(n *wlan.Network, cfg *wlan.Config) [][]int32 {
	return buildConflictGraph(n, cfg, 1, AllocOptions{NoSpatialIndex: true}).comps
}

// TestPartitionTracksChurn drives the association engine through every
// mutation it supports — admissions, roams, evictions, reincarnations with
// new geometry — and checks after each step that the incrementally
// maintained partition equals a from-scratch component decomposition of the
// current configuration (invariant I3 of partition.go).
func TestPartitionTracksChurn(t *testing.T) {
	for _, layout := range []string{"uniform", "clustered"} {
		t.Run(layout, func(t *testing.T) {
			n, clients := geomNetwork(layout, 40, 3, 11)
			cfg := wlan.NewConfig()
			rng := stats.NewRand(11)
			RandomInitial(n, cfg, rng.Intn)
			e := newAssocEngine(n, cfg)
			if e == nil {
				t.Fatal("engine rejected fixture")
			}
			h := e.partitionHandle()
			if !h.validFor(n, cfg) {
				t.Fatal("fresh handle invalid")
			}

			check := func(step string) {
				t.Helper()
				got := h.components()
				want := partitionOracle(n, cfg)
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("%s: partition %v, oracle %v", step, got, want)
				}
			}
			check("initial (all unassociated)")

			r := rand.New(rand.NewSource(99))
			ids := make([]string, len(clients))
			// Admit everyone through the engine.
			for i, u := range clients {
				ids[i] = u.ID
				st := e.ensureState(u)
				if len(st.cands) > 0 {
					e.applyHome(u.ID, st, int(st.cands[r.Intn(len(st.cands))]))
				}
			}
			check("after admissions")

			for step := 0; step < 200; step++ {
				id := ids[r.Intn(len(ids))]
				u := n.Client(id) // the incarnation the oracle sees
				st := e.clients[id]
				switch op := r.Intn(10); {
				case op < 5: // roam (possibly to the same AP, possibly out)
					if st == nil {
						continue
					}
					target := -1
					if len(st.cands) > 0 && r.Intn(5) > 0 {
						target = int(st.cands[r.Intn(len(st.cands))])
					}
					e.applyHome(id, st, target)
				case op < 7: // evict
					if !e.evict(id) {
						t.Fatal("evict invariant breach")
					}
				case op < 9: // reincarnate with new geometry, then re-admit
					moved := &wlan.Client{ID: id, Pos: rf.Point{
						X: u.Pos.X + (r.Float64()-0.5)*800,
						Y: u.Pos.Y + (r.Float64()-0.5)*800,
					}}
					n.RemoveClient(id)
					n.Clients = append(n.Clients, moved)
					stNew := e.ensureState(moved)
					if len(stNew.cands) > 0 {
						e.applyHome(id, stNew, int(stNew.cands[0]))
					}
				default: // unassociate without eviction
					if st != nil {
						e.applyHome(id, st, -1)
					}
				}
				if step%10 == 0 || step > 190 {
					check(fmt.Sprintf("step %d", step))
				}
			}
			if e.stats.partRebuilds != 1 {
				t.Fatalf("churn performed %d partition rebuilds, want exactly the build-time one", e.stats.partRebuilds)
			}
			if e.stats.partUpdates == 0 {
				t.Fatal("no incremental partition updates recorded")
			}
		})
	}
}

// TestPartitionHandleValidity pins the handle's guard conditions: a handle
// must refuse to serve a different network, a different configuration, or a
// changed AP set.
func TestPartitionHandleValidity(t *testing.T) {
	n, cfg := geomSetup(t, "uniform", 10, 1, 2)
	e := newAssocEngine(n, cfg)
	if e == nil {
		t.Fatal("engine rejected fixture")
	}
	h := e.partitionHandle()
	if !h.validFor(n, cfg) {
		t.Fatal("handle invalid for its own binding")
	}
	if h.validFor(n, cfg.Clone()) {
		t.Fatal("handle accepted a cloned configuration")
	}
	n2, cfg2 := geomSetup(t, "uniform", 10, 1, 3)
	if h.validFor(n2, cfg2) {
		t.Fatal("handle accepted a different network")
	}
	var nilH *ContentionPartition
	if nilH.validFor(n, cfg) {
		t.Fatal("nil handle claims validity")
	}
	n.APs = n.APs[:len(n.APs)-1]
	if h.validFor(n, cfg) {
		t.Fatal("handle accepted a shrunk AP set")
	}
}

// TestClientChurnZeroPartitionRebuilds is the PR's acceptance pin: a stream
// of client-only churn (arrivals, reports, departures) must drive the
// reallocation path entirely off the maintained partition — the rebuild
// counter stays at the single engine-build rebuild while updates and
// partition reuses advance.
func TestClientChurnZeroPartitionRebuilds(t *testing.T) {
	ctrl, n := streamFixture(t, 16, 21)
	ctrl.Alloc.ShardWorkers = 2
	ctrl.Alloc.MaxPeriods = 1
	vc := newVclock()
	s := NewStreamController(ctrl, StreamOptions{Now: vc.now, Gate: GateOptions{Streak: 1}, Alloc: ctrl.Alloc})

	for i := 0; i < 48; i++ {
		s.Offer(Event{Kind: EventArrive, Client: clientNear(n, i, fmt.Sprintf("u%03d", i))})
		if i%6 == 5 {
			s.Pump()
			vc.advance(200 * time.Millisecond)
		}
	}
	for i := 0; i < 120; i++ {
		switch i % 8 {
		case 0:
			s.Offer(Event{Kind: EventDepart, ClientID: fmt.Sprintf("u%03d", i%48)})
		case 1:
			s.Offer(Event{Kind: EventArrive, Client: clientNear(n, i, fmt.Sprintf("u%03d", i%48))})
		default:
			s.Offer(Event{Kind: EventReport, Client: clientNear(n, 2*i, fmt.Sprintf("u%03d", (i+1)%48))})
		}
		if i%5 == 4 {
			s.Pump()
			vc.advance(200 * time.Millisecond)
		}
	}
	for s.Pump() > 0 {
	}
	ctrl.publishEngineStats()

	reg := ctrl.registry()
	rebuilds := reg.Counter("acorn_core_partition_rebuilds_total", "").Value()
	updates := reg.Counter("acorn_core_partition_updates_total", "").Value()
	reuses := reg.Counter("acorn_core_alloc_partition_reuses_total", "").Value()
	builds := reg.Counter("acorn_core_assoc_engine_builds_total", "").Value()
	if rebuilds != builds {
		t.Fatalf("partition rebuilds %d != engine builds %d: client churn forced full recomputes", rebuilds, builds)
	}
	if builds != 1 {
		t.Fatalf("client-only churn rebuilt the engine %d times, want 1", builds)
	}
	if updates == 0 {
		t.Fatal("no incremental partition updates under churn")
	}
	if reuses == 0 {
		t.Fatal("no reallocation reused the maintained partition")
	}
	if st := s.Stats(); st.NoopSkips != 0 && st.LocalReopts == 0 {
		t.Fatalf("inconsistent stream accounting: %+v", st)
	}
}

// TestPartitionReuseMatchesGraphBuild pins that a sharded solve fed by the
// maintained partition installs exactly the channels a graph-building solve
// would: same components ⇒ same subproblems ⇒ bit-identical merge.
func TestPartitionReuseMatchesGraphBuild(t *testing.T) {
	n, clients := geomNetwork("uniform", 30, 2, 7)
	cfg := wlan.NewConfig()
	rng := stats.NewRand(7)
	RandomInitial(n, cfg, rng.Intn)
	e := newAssocEngine(n, cfg)
	if e == nil {
		t.Fatal("engine rejected fixture")
	}
	for _, u := range clients {
		st := e.ensureState(u)
		if len(st.cands) > 0 {
			e.applyHome(u.ID, st, int(st.cands[0]))
		}
	}
	opts := AllocOptions{ShardWorkers: 2, MaxPeriods: 2, MaxSwitchesPerPeriod: 4}
	est := NewEstimator(n)
	refOut, refSt := AllocateChannels(n, cfg, est, opts)
	if refSt.PartitionReused {
		t.Fatal("reference run unexpectedly reused a partition")
	}
	opts.Partition = e.partitionHandle()
	out, st := AllocateChannels(n, cfg, est, opts)
	if !st.PartitionReused {
		t.Fatal("partition handle was valid but not reused")
	}
	if !reflect.DeepEqual(out.Channels, refOut.Channels) {
		t.Fatal("partition-reusing solve installed different channels")
	}
	if st.GraphComponents != refSt.GraphComponents || st.FinalEstimate != refSt.FinalEstimate {
		t.Fatalf("solve stats diverge: %+v vs %+v", st, refSt)
	}
}

// TestStreamNoopFastPath pins the no-op satellite: a same-incarnation
// report that keeps its association skips re-optimization and is counted;
// a new incarnation (fresh geometry) at the same AP still re-optimizes.
func TestStreamNoopFastPath(t *testing.T) {
	ctrl, n := streamFixture(t, 8, 3)
	vc := newVclock()
	s := NewStreamController(ctrl, StreamOptions{Now: vc.now, RecordLatencies: 64})

	u := clientNear(n, 0, "u1")
	s.Offer(Event{Kind: EventArrive, Client: u})
	s.Pump()
	base := s.Stats()

	// Same pointer, stable association: pure no-op.
	s.Offer(Event{Kind: EventReport, Client: u})
	s.Pump()
	st := s.Stats()
	if st.NoopSkips != base.NoopSkips+1 {
		t.Fatalf("no-op report not skipped: %+v", st)
	}
	if st.LocalReopts != base.LocalReopts {
		t.Fatalf("no-op report still re-optimized: %+v", st)
	}
	if st.NoopLatencyCount != 1 {
		t.Fatalf("no-op latency ring holds %d samples, want 1", st.NoopLatencyCount)
	}

	// New incarnation at the same position: association may stay, but the
	// geometry refresh must re-optimize (hearing sets could have changed).
	u2 := clientNear(n, 0, "u1")
	s.Offer(Event{Kind: EventReport, Client: u2})
	s.Pump()
	st2 := s.Stats()
	if st2.NoopSkips != st.NoopSkips {
		t.Fatalf("geometry-refresh report wrongly treated as no-op: %+v", st2)
	}
	if st2.LocalReopts != st.LocalReopts+1 {
		t.Fatalf("geometry-refresh report did not re-optimize: %+v", st2)
	}

	mReg := ctrl.registry()
	if v := mReg.Counter("acorn_core_stream_noop_skips_total", "").Value(); v != st2.NoopSkips {
		t.Fatalf("metric %d != stats %d", v, st2.NoopSkips)
	}
}
