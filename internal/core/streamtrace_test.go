package core

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"acorn/internal/obs"
	"acorn/internal/profiling"
	"acorn/internal/wlan"
)

// TestStreamSpansPartitionLatency is the attribution acceptance check: under
// a virtual clock, every finished span's per-stage durations must sum
// exactly to its total, and the total must equal the enqueue-to-applied
// latency the stats ring recorded for the same pump. "Every microsecond is
// attributed" is a structural property of the Mark partition, so the
// comparison is exact, not a tolerance band.
func TestStreamSpansPartitionLatency(t *testing.T) {
	ctrl, n := streamFixture(t, 4, 3)
	vc := newVclock()
	tr := NewStreamTracer(256, 1, vc.now)
	s := NewStreamController(ctrl, StreamOptions{
		Now:             vc.now,
		Tracer:          tr,
		RecordLatencies: 256,
	})

	// Churn: arrivals, reports against the live set, and departures, with
	// the clock advancing between offers so queue time is non-zero.
	clients := make([]*wlan.Client, 0, 6)
	for i := 0; i < 6; i++ {
		u := clientNear(n, i, fmt.Sprintf("c%d", i))
		clients = append(clients, u)
		s.Offer(Event{Kind: EventArrive, Client: u})
		vc.advance(3 * time.Millisecond)
	}
	s.Pump()
	for i, u := range clients {
		s.Offer(Event{Kind: EventReport, Client: clientNear(n, i+8, u.ID)})
		vc.advance(2 * time.Millisecond)
	}
	s.Pump()
	// Depart after the reports have drained — a depart offered on top of a
	// queued report would coalesce into the report's span.
	s.Offer(Event{Kind: EventDepart, ClientID: clients[0].ID})
	vc.advance(5 * time.Millisecond)
	s.Pump()

	spans := tr.Snapshot(0)
	if len(spans) == 0 {
		t.Fatalf("no spans recorded")
	}
	kinds := map[string]int{}
	for _, sp := range spans {
		kinds[sp.Kind]++
		var sum int64
		for _, ns := range sp.Stages {
			sum += ns
		}
		if sum != sp.TotalNs {
			t.Fatalf("span %d (%s %s): stage sum %d != total %d (%+v)",
				sp.ID, sp.Kind, sp.Key, sum, sp.TotalNs, sp.Stages)
		}
		if sp.TotalNs <= 0 {
			t.Fatalf("span %d: non-positive total %d under advancing clock", sp.ID, sp.TotalNs)
		}
		for stage := range sp.Stages {
			found := false
			for _, name := range StreamTraceStages {
				if stage == name {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("span %d charged unknown stage %q", sp.ID, stage)
			}
		}
	}
	for _, k := range []string{"arrive", "report", "depart"} {
		if kinds[k] == 0 {
			t.Fatalf("no spans of kind %q (got %v)", k, kinds)
		}
	}

	// Cross-check against the stats ring: the largest span total must equal
	// the largest recorded latency — both are "oldest entry in its pump's
	// batch", measured on the same virtual clock.
	st := s.Stats()
	var maxSpan time.Duration
	for _, sp := range spans {
		if d := time.Duration(sp.TotalNs); d > maxSpan {
			maxSpan = d
		}
	}
	var maxLat time.Duration
	for _, d := range s.lat.buf[:s.lat.next] {
		if d > maxLat {
			maxLat = d
		}
	}
	if maxSpan != maxLat {
		t.Fatalf("max span total %v != max ring latency %v (stats %+v)", maxSpan, maxLat, st)
	}

}

// tickClock is a virtual clock that advances a fixed amount on every read,
// so every pipeline stage (all executed between two clock reads) gets a
// non-zero duration and shows up in the span's stage map.
type tickClock struct {
	t    time.Time
	step time.Duration
}

func (c *tickClock) now() time.Time {
	c.t = c.t.Add(c.step)
	return c.t
}

// TestStreamReportSpansChargeAllStages drives reports through a local
// re-optimization with a self-ticking clock and asserts the spans carry the
// full stage walk — queue, batch, admit, neigh, reopt, gate, final — plus
// the engine attribution buckets (rank_eval from the allocator, assoc_eval
// from the association engine).
func TestStreamReportSpansChargeAllStages(t *testing.T) {
	ctrl, n := streamFixture(t, 4, 3)
	tc := &tickClock{t: time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC), step: 100 * time.Microsecond}
	tr := NewStreamTracer(256, 1, tc.now)
	s := NewStreamController(ctrl, StreamOptions{Now: tc.now, Tracer: tr})

	for i := 0; i < 4; i++ {
		s.Offer(Event{Kind: EventArrive, Client: clientNear(n, i, fmt.Sprintf("c%d", i))})
	}
	s.Pump()
	for i := 0; i < 4; i++ {
		s.Offer(Event{Kind: EventReport, Client: clientNear(n, i+8, fmt.Sprintf("c%d", i))})
	}
	s.Pump()

	if st := s.Stats(); st.LocalReopts == 0 {
		t.Fatalf("fixture did not exercise local re-optimization: %+v", st)
	}
	sawReport := false
	for _, sp := range tr.Snapshot(0) {
		if sp.Kind != "report" {
			continue
		}
		sawReport = true
		for _, stage := range []string{"queue", "batch", "admit", "neigh", "reopt", "gate", "final"} {
			if sp.Stages[stage] <= 0 {
				t.Fatalf("report span %s missing stage %q: %v", sp.Key, stage, sp.Stages)
			}
		}
		if sp.Attrs["assoc_eval"] <= 0 || sp.Counts["assoc_eval"] == 0 {
			t.Fatalf("report span %s missing assoc_eval attribution: attrs=%v counts=%v",
				sp.Key, sp.Attrs, sp.Counts)
		}
		if sp.Counts["rank_eval"] == 0 {
			t.Fatalf("report span %s missing rank_eval attribution: counts=%v", sp.Key, sp.Counts)
		}
		// The partition property holds for any monotone clock: stage sums
		// can lag the total only by the reads between last Mark and End.
		var sum int64
		for _, ns := range sp.Stages {
			sum += ns
		}
		if sum > sp.TotalNs || sp.TotalNs-sum > int64(time.Millisecond) {
			t.Fatalf("report span %s stage sum %d vs total %d out of tolerance", sp.Key, sum, sp.TotalNs)
		}
	}
	if !sawReport {
		t.Fatalf("no report spans recorded")
	}
}

// TestStreamSLOBreachCapturesProfile induces a pipeline stall under a
// virtual clock — 10ms of decision latency against a 1ms budget — and
// asserts the SLO monitor breaches and its hook lands a CPU profile
// artifact on disk, exercising the full flight-recorder path.
func TestStreamSLOBreachCapturesProfile(t *testing.T) {
	ctrl, n := streamFixture(t, 4, 3)
	vc := newVclock()
	profPath := filepath.Join(t.TempDir(), "slo_breach.pprof")
	captured := make(chan error, 1)
	slo := obs.NewSLO(obs.SLOOptions{
		Name:       "stream_decision_p99",
		Budget:     time.Millisecond,
		MinCount:   4,
		CheckEvery: time.Nanosecond,
		Now:        vc.now,
		Win:        obs.NewWindow(30*time.Second, 0, nil, vc.now),
		OnBreach: func(b obs.Breach) {
			captured <- profiling.CaptureCPU(profPath, 50*time.Millisecond)
		},
	})
	s := NewStreamController(ctrl, StreamOptions{Now: vc.now, SLO: slo})

	// Two stalled pumps: checks are throttled per Observe timestamp, so the
	// second pump (clock advanced past the first pump's check) re-evaluates
	// with a full window and trips the budget.
	for round := 0; round < 2; round++ {
		for i := 0; i < 4; i++ {
			id := fmt.Sprintf("c%d_%d", round, i)
			s.Offer(Event{Kind: EventArrive, Client: clientNear(n, round*4+i, id)})
			vc.advance(10 * time.Millisecond) // every event waits 10ms+ in queue
		}
		s.Pump()
	}

	st := slo.Status()
	if st.Breaches == 0 || !st.Breached {
		t.Fatalf("induced stall did not trip the SLO: %+v", st)
	}
	select {
	case err := <-captured:
		if err != nil {
			t.Fatalf("breach hook capture failed: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatalf("breach hook never fired")
	}
	fi, err := os.Stat(profPath)
	if err != nil {
		t.Fatalf("no profile artifact: %v", err)
	}
	if fi.Size() == 0 {
		t.Fatalf("profile artifact is empty")
	}
}

// TestStreamTracerDisabledIsInert pins the "tracing off costs nothing"
// contract at the controller level: with no tracer configured, spans are
// dead refs and Stats still works.
func TestStreamTracerDisabledIsInert(t *testing.T) {
	ctrl, n := streamFixture(t, 4, 3)
	vc := newVclock()
	s := NewStreamController(ctrl, StreamOptions{Now: vc.now})
	for i := 0; i < 4; i++ {
		s.Offer(Event{Kind: EventArrive, Client: clientNear(n, i, fmt.Sprintf("c%d", i))})
		vc.advance(time.Millisecond)
	}
	s.Pump()
	if s.Tracer() != nil {
		t.Fatalf("tracer should be nil when unset")
	}
	if st := s.Stats(); st.Applied != 4 {
		t.Fatalf("pump broken without tracer: %+v", st)
	}
}

// TestStreamCoalescingKeepsOriginalSpan: a report folded into a queued
// report keeps the first span (origin = first enqueue), so queue time of
// the coalesced wait is attributed, not lost.
func TestStreamCoalescingKeepsOriginalSpan(t *testing.T) {
	ctrl, n := streamFixture(t, 4, 3)
	vc := newVclock()
	tr := NewStreamTracer(64, 1, vc.now)
	s := NewStreamController(ctrl, StreamOptions{Now: vc.now, Tracer: tr})

	u := clientNear(n, 0, "c0")
	s.Offer(Event{Kind: EventArrive, Client: u})
	s.Pump()

	s.Offer(Event{Kind: EventReport, Client: clientNear(n, 1, "c0")})
	vc.advance(20 * time.Millisecond)
	s.Offer(Event{Kind: EventReport, Client: clientNear(n, 2, "c0")}) // coalesces
	vc.advance(5 * time.Millisecond)
	s.Pump()

	var reportSpans []obs.SpanView
	for _, sp := range tr.Snapshot(0) {
		if sp.Kind == "report" {
			reportSpans = append(reportSpans, sp)
		}
	}
	if len(reportSpans) != 1 {
		t.Fatalf("want exactly one report span after coalescing, got %d", len(reportSpans))
	}
	if total := time.Duration(reportSpans[0].TotalNs); total != 25*time.Millisecond {
		t.Fatalf("coalesced span should start at first enqueue: total %v, want 25ms", total)
	}
}
