package core

// User association — Algorithm 1 of the paper.
//
// A newly arriving client u gathers modified beacons from every AP in range
// and associates with the AP i* maximizing the utility of Eq. 4:
//
//	U_assoc(u, i) = K_i·X^i_w,u + Σ_{j∈A_u, j≠i} (K_j − 1)·X^j_wo,u
//
// The first term is the total throughput of the cell u joins; the second is
// the total throughput of every other in-range cell once u is *not* there.
// Maximizing U therefore maximizes the aggregate network throughput impact
// of the decision — a poor client ends up grouped with similarly poor
// clients, where its long airtime does not trigger the 802.11 performance
// anomaly against fast clients, and cells of uniformly good clients stay
// eligible for channel bonding.

import (
	"runtime"
	"sort"

	"acorn/internal/wlan"
)

// AssocOptions tunes the engine-backed Algorithm 1 paths (assocstate.go,
// assocsweep.go).
type AssocOptions struct {
	// Workers is the number of goroutines a roaming sweep fans the
	// per-client beacon evaluations across. Zero or negative means
	// GOMAXPROCS; one forces the serial sweep. The resulting decisions and
	// configuration are bit-identical for every value (evaluations run
	// against a frozen round snapshot and are applied serially in stable
	// client order). Paths without an engine ignore it.
	Workers int
}

func (o AssocOptions) workers() int {
	if o.Workers <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return o.Workers
}

// AssociationDecision records the outcome of Algorithm 1 for one client.
type AssociationDecision struct {
	ClientID string
	// APID is the chosen AP i*; empty when no AP is in range.
	APID string
	// Utility is U_assoc(u, i*).
	Utility float64
	// Candidates lists the per-AP utilities considered, sorted by AP ID.
	Candidates []CandidateUtility
}

// CandidateUtility is one row of the association decision.
type CandidateUtility struct {
	APID    string
	Utility float64
}

// Associate runs Algorithm 1 for client u against the current configuration
// and returns the decision without mutating cfg. The caller applies the
// decision with cfg.Assoc[u.ID] = d.APID. The decision rule itself lives in
// AssociateFromBeacons — the same computation a real client runs over
// beacons decoded from the air.
func Associate(n *wlan.Network, cfg *wlan.Config, u *wlan.Client) AssociationDecision {
	d := AssociateFromBeacons(u.ID, GatherBeacons(n, cfg, u))
	sort.Slice(d.Candidates, func(a, b int) bool { return d.Candidates[a].APID < d.Candidates[b].APID })
	return d
}

// AssociateAll runs Algorithm 1 for the given clients in order, applying
// each decision before processing the next (the paper activates clients
// "randomly ... one by one"). It returns the decisions in processing order.
func AssociateAll(n *wlan.Network, cfg *wlan.Config, clients []*wlan.Client) []AssociationDecision {
	decisions := make([]AssociationDecision, 0, len(clients))
	for _, u := range clients {
		d := Associate(n, cfg, u)
		if d.APID != "" {
			cfg.SetAssoc(u.ID, d.APID)
		}
		decisions = append(decisions, d)
	}
	return decisions
}

// AssociateSticky is Associate with roaming hysteresis: the client keeps
// its incumbent AP unless some other candidate's utility beats the
// incumbent's by more than margin (fractional, e.g. 0.05 = 5%). Real
// clients do not roam for marginal or tie-valued gains — gratuitous moves
// churn the very groupings Algorithm 1 built. With an empty incumbent it
// degenerates to Associate.
func AssociateSticky(n *wlan.Network, cfg *wlan.Config, u *wlan.Client, incumbentID string, margin float64) AssociationDecision {
	return applySticky(Associate(n, cfg, u), incumbentID, margin)
}

// applySticky applies roaming hysteresis to a fresh association decision —
// the shared post-processing step of AssociateSticky and the incremental
// engine's sticky sweeps.
func applySticky(d AssociationDecision, incumbentID string, margin float64) AssociationDecision {
	if incumbentID == "" || d.APID == incumbentID {
		return d
	}
	for _, c := range d.Candidates {
		if c.APID != incumbentID {
			continue
		}
		if d.Utility <= c.Utility*(1+margin) {
			// The best alternative doesn't clear the hysteresis bar;
			// stay.
			d.APID = incumbentID
			d.Utility = c.Utility
		}
		return d
	}
	// Incumbent no longer in range: take the new best.
	return d
}

// RoamSweep re-evaluates the association of every given client in input
// order with roaming hysteresis, applying each move to cfg, and returns the
// decisions in the same order. It is equivalent to calling AssociateSticky
// for each client in turn (each decision applied before the next client is
// evaluated) but runs the incremental association engine with
// opts.Workers-wide parallel beacon evaluation when the configuration is
// representable; the fallback is the sequential reference loop. Both paths
// produce bit-identical decisions and final configurations.
//
// Long-lived deployments that sweep repeatedly should prefer
// Controller.RoamAll, which reuses one engine (and its delay memos) across
// sweeps instead of rebuilding per call.
func RoamSweep(n *wlan.Network, cfg *wlan.Config, clients []*wlan.Client, margin float64, opts AssocOptions) []AssociationDecision {
	if e := newAssocEngine(n, cfg); e != nil {
		ds, _ := e.sweep(clients, sweepSticky, margin, opts.workers())
		return ds
	}
	ds := make([]AssociationDecision, 0, len(clients))
	for _, u := range clients {
		d := AssociateSticky(n, cfg, u, cfg.Assoc[u.ID], margin)
		if d.APID != "" {
			cfg.SetAssoc(u.ID, d.APID)
		}
		ds = append(ds, d)
	}
	return ds
}
