package core

// The scanning estimator variant of Section 4.2: "ACORN can easily be
// modified, such that each AP scans (one at a time) all the available
// channels and gets more accurate information regarding the link quality to
// its clients. However, this would add more complexity and increase the
// convergence time of the system." This file implements that variant so the
// trade-off can be measured (the abl-scan ablation): per-(link, channel)
// measurements instead of one reference measurement per link, at a scan
// cost of |channels| × |links| probes.

import (
	"math"

	"acorn/internal/mac"
	"acorn/internal/ratecontrol"
	"acorn/internal/spectrum"
	"acorn/internal/units"
	"acorn/internal/wlan"
)

// ScanningEstimator predicts throughput from exhaustive per-channel link
// measurements: every AP has scanned every available channel and recorded
// the true per-channel SNR (including frequency-dependent jitter) to each
// of its clients. It is strictly more informed than Estimator at a scan
// cost recorded in Probes.
type ScanningEstimator struct {
	n   *wlan.Network
	snr map[scanKey]units.DB
	// Probes counts the measurements the scan performed.
	Probes int
	// delayScratch is reused across NetworkThroughput calls; the search
	// loop of Algorithm 2 calls the estimator thousands of times per
	// allocation, and a fresh delay slice per cell per call dominated the
	// allocation profile of the abl-scan ablation.
	delayScratch []float64
}

type scanKey struct {
	ap, client string
	ch         spectrum.Channel
}

// NewScanningEstimator performs the full scan: one probe per (AP, client,
// channel) triple.
func NewScanningEstimator(n *wlan.Network) *ScanningEstimator {
	channels := n.Band.AllChannels()
	e := &ScanningEstimator{n: n, snr: make(map[scanKey]units.DB, len(n.APs)*len(n.Clients)*len(channels))}
	for _, ap := range n.APs {
		for _, c := range n.Clients {
			for _, ch := range channels {
				e.snr[scanKey{ap.ID, c.ID, ch}] = n.ClientSNR(ap, c, ch)
				e.Probes++
			}
		}
	}
	return e
}

// LinkSNR returns the scanned per-subcarrier SNR of the link on the exact
// channel (not just the width).
func (e *ScanningEstimator) LinkSNR(apID, clientID string, ch spectrum.Channel) units.DB {
	if snr, ok := e.snr[scanKey{apID, clientID, ch}]; ok {
		return snr
	}
	return units.DB(math.Inf(-1))
}

// NetworkThroughput implements ThroughputEstimator with the scanned values.
func (e *ScanningEstimator) NetworkThroughput(cfg *wlan.Config) float64 {
	var total float64
	for _, ap := range e.n.APs {
		clients := cfg.ClientsOf(ap.ID)
		if len(clients) == 0 {
			continue
		}
		ch := cfg.Channels[ap.ID]
		delays := e.delayScratch[:0]
		for _, id := range clients {
			sel := ratecontrol.Best(e.LinkSNR(ap.ID, id, ch), ch.Width, e.n.PacketBytes)
			delays = append(delays, 1/sel.GoodputMbps)
		}
		// Cell does not retain Delays past AggregateThroughput, so the
		// scratch can be handed out and reclaimed each iteration.
		cell := mac.Cell{Delays: delays, AccessShare: e.n.AccessShare(cfg, ap)}
		total += cell.AggregateThroughput()
		e.delayScratch = delays
	}
	return total
}
