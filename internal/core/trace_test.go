package core

import (
	"bytes"
	"encoding/json"
	"flag"
	"math"
	"os"
	"path/filepath"
	"testing"

	"acorn/internal/obs"
)

var updateGolden = flag.Bool("update", false, "rewrite golden trace files")

const goldenTracePath = "testdata/convergence_trace.jsonl"

// runTracedAutoConfigure runs the full pipeline on the shared fixture with
// tracing on and returns the JSONL bytes plus the registry it reported to.
func runTracedAutoConfigure(t *testing.T) ([]byte, *obs.Registry) {
	t.Helper()
	n, clients := mixedNetwork()
	c, err := NewController(n, 7)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	reg := obs.NewRegistry()
	c.Obs = reg
	c.Trace = NewTraceWriter(&buf)
	c.AutoConfigure(clients)
	if err := c.Trace.Err(); err != nil {
		t.Fatalf("trace write error: %v", err)
	}
	return buf.Bytes(), reg
}

func parseTrace(t *testing.T, data []byte) []TraceEvent {
	t.Helper()
	var evs []TraceEvent
	dec := json.NewDecoder(bytes.NewReader(data))
	for dec.More() {
		var ev TraceEvent
		if err := dec.Decode(&ev); err != nil {
			t.Fatalf("malformed JSONL trace: %v\n%s", err, data)
		}
		evs = append(evs, ev)
	}
	return evs
}

// TestConvergenceTraceWellFormed asserts the structural contract of the
// trace: every line is valid JSON, each reallocation is a contiguous
// start/switch*/end block, and the aggregate goodput is monotone
// non-decreasing across greedy iterations (the search only ever accepts
// improvements).
func TestConvergenceTraceWellFormed(t *testing.T) {
	data, reg := runTracedAutoConfigure(t)
	evs := parseTrace(t, data)
	if len(evs) == 0 {
		t.Fatal("empty trace")
	}

	// AutoConfigure reallocates twice.
	reallocs := map[int]bool{}
	var cur int // realloc currently open, 0 = none
	var goodput float64
	for i, ev := range evs {
		switch ev.Event {
		case TraceEventStart:
			if cur != 0 {
				t.Fatalf("event %d: start inside open reallocation %d", i, cur)
			}
			cur = ev.Realloc
			reallocs[cur] = true
			goodput = ev.GoodputMbps
			if ev.APs == 0 {
				t.Errorf("event %d: start without ap count", i)
			}
		case TraceEventSwitch:
			if ev.Realloc != cur {
				t.Fatalf("event %d: switch outside its reallocation", i)
			}
			if ev.GoodputMbps < goodput-1e-9 {
				t.Errorf("event %d: goodput regressed %.6f -> %.6f",
					i, goodput, ev.GoodputMbps)
			}
			goodput = ev.GoodputMbps
			if ev.AP == "" || ev.Channel == "" {
				t.Errorf("event %d: switch without ap/channel: %+v", i, ev)
			}
			if ev.Rank < -1e-9 {
				t.Errorf("event %d: accepted switch with negative rank %v", i, ev.Rank)
			}
			if _, ok := ev.Ranks[ev.AP]; !ok {
				t.Errorf("event %d: winner %s missing from ranks %v", i, ev.AP, ev.Ranks)
			}
		case TraceEventEnd:
			if ev.Realloc != cur {
				t.Fatalf("event %d: end outside its reallocation", i)
			}
			if ev.GoodputMbps < goodput-1e-9 {
				t.Errorf("event %d: final goodput below last switch", i)
			}
			if len(ev.WidthsMHz) == 0 {
				t.Errorf("event %d: end without width decisions", i)
			}
			for ap, w := range ev.WidthsMHz {
				if w != 20 && w != 40 {
					t.Errorf("event %d: cell %s has width %d", i, ap, w)
				}
			}
			cur = 0
		default:
			t.Errorf("event %d: unknown event %q", i, ev.Event)
		}
	}
	if cur != 0 {
		t.Error("trace ends with an open reallocation")
	}
	if len(reallocs) != 2 {
		t.Errorf("AutoConfigure should trace 2 reallocations, got %d", len(reallocs))
	}

	// The same run must also have landed in the metrics registry.
	found := map[string]obs.MetricSnapshot{}
	for _, s := range reg.Snapshot() {
		found[s.Name] = s
	}
	if s, ok := found["acorn_core_reallocations_total"]; !ok || *s.Value != 2 {
		t.Errorf("acorn_core_reallocations_total = %+v, want 2", s)
	}
	if s, ok := found["acorn_core_goodput_mbps"]; !ok || *s.Value <= 0 {
		t.Errorf("acorn_core_goodput_mbps = %+v, want > 0", s)
	}
	if _, ok := found["acorn_core_reallocate_seconds"]; !ok {
		t.Error("missing acorn_core_reallocate_seconds histogram")
	}
}

// TestConvergenceTraceGolden locks the exact trace of the fixture run.
// Regenerate with `go test ./internal/core -run Golden -update`. The
// comparison is field-wise with a float tolerance so a platform's FMA
// contraction cannot flake the byte comparison.
func TestConvergenceTraceGolden(t *testing.T) {
	data, _ := runTracedAutoConfigure(t)
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(goldenTracePath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenTracePath, data, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s (%d bytes)", goldenTracePath, len(data))
		return
	}
	want, err := os.ReadFile(goldenTracePath)
	if err != nil {
		t.Fatalf("missing golden file (run with -update): %v", err)
	}
	got, exp := parseTrace(t, data), parseTrace(t, want)
	if len(got) != len(exp) {
		t.Fatalf("trace has %d events, golden has %d\ngot:\n%s", len(got), len(exp), data)
	}
	for i := range got {
		if !traceEventsEqual(got[i], exp[i]) {
			t.Errorf("event %d differs:\ngot  %+v\nwant %+v", i, got[i], exp[i])
		}
	}
}

func traceEventsEqual(a, b TraceEvent) bool {
	if a.Event != b.Event || a.Realloc != b.Realloc || a.Period != b.Period ||
		a.AP != b.AP || a.Channel != b.Channel || a.APs != b.APs ||
		a.Clients != b.Clients || a.Switches != b.Switches || a.Periods != b.Periods {
		return false
	}
	if !floatEq(a.GoodputMbps, b.GoodputMbps) || !floatEq(a.Rank, b.Rank) {
		return false
	}
	if len(a.Ranks) != len(b.Ranks) || len(a.WidthsMHz) != len(b.WidthsMHz) {
		return false
	}
	for k, v := range a.Ranks {
		if !floatEq(v, b.Ranks[k]) {
			return false
		}
	}
	for k, v := range a.WidthsMHz {
		if v != b.WidthsMHz[k] {
			return false
		}
	}
	return true
}

func floatEq(a, b float64) bool {
	return math.Abs(a-b) <= 1e-6*(1+math.Abs(a)+math.Abs(b))
}
