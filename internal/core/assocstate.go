package core

// Incremental evaluation state for Algorithm 1 (the association-scaling
// tentpole; see DESIGN.md §11 — the companion of the Algorithm-2 engine in
// allocstate.go).
//
// The reference association path prices one admission by gathering a
// modified beacon from every in-range AP, and each beacon costs a full
// network walk: ClientsOf + a rate-control evaluation per cell member for
// ATD, and an AccessShare whose contention predicate scans every client in
// the network per AP pair. Under churn (admit/evict/roam at every event) and
// during whole-population roaming sweeps this is O(cands · (K + APs·clients))
// per client — the dominant cost at enterprise scale.
//
// The engine maintains the quantities those walks re-derive:
//
//   - pop[i]        — cell population K_i, updated O(1) per move;
//   - cntHome[h][o] — how many clients homed at AP h are carrier-sensed by
//     AP o: the client term of wlan.Network.Contend for the pair, updated
//     O(|heardBy|) per move from the client's static hearing bitset;
//   - apapDir[a][o] — the direct AP→AP carrier-sense term (directional:
//     "o hears a's transmit power"), precomputed once;
//   - a per-(AP, client, channel) memo of the beacon transmission delays
//     (the rate-control evaluations), valid for the client's lifetime
//     because link SNR depends only on static geometry and the channel;
//   - per-client candidate sets (the in-range predicate is jitter-free and
//     static) pre-sorted in the beacon order GatherBeacons pins.
//
// With those, a beacon's M is an O(APs) loop of integer mask/count checks
// (the trial-association adjustments are closed-form: moving the inquirer u
// from home h to candidate a shifts pop[o] by −[h==o] and the pair count
// cnt(a,o) by +[h≠a]·heard(o,u) − [h==o]·heard(a,u)), and ATD is an O(K)
// re-fold of memoized delays.
//
// ATD is deliberately re-folded per beacon instead of kept as a running
// float: float addition is not associative, so an incrementally maintained
// Σd_cl would drift from the oracle's left-to-right fold after removals, and
// the argmax of Eq. 4 would amplify one ULP of drift into different
// associations. The re-fold walks cfg.ClientsOf(ap) in the same (sorted)
// order with the inquirer's delay first — the exact float expression
// GatherBeacon evaluates — so every Beacon field is bit-identical to the
// reference, decisions reuse AssociateFromBeacons verbatim, and the
// equivalence suite can require == rather than ≈.
//
// Like the allocator engine, channel conflicts reduce to bitmask
// intersection. Masks are multi-word bitsets sized at engine build from the
// components of the band plus the bound configuration, so any component
// count is representable; if a later configuration brings components beyond
// the built capacity, bind() fails and the Controller rebuilds the engine
// with wider masks — the reference path is never needed for component
// count.

import (
	"math"
	"math/bits"
	"sort"

	"acorn/internal/bitset"
	"acorn/internal/geo"
	"acorn/internal/spectrum"
	"acorn/internal/units"
	"acorn/internal/wlan"
)

// assocEngine is the incremental association engine for one (network,
// configuration) binding. All mutations of the bound configuration's
// association map must flow through the engine (applyHome/evict) so the
// maintained aggregates track it; the Controller enforces this by owning
// both. Channel changes arrive via bind after a reallocation.
type assocEngine struct {
	n   *wlan.Network
	cfg *wlan.Config

	// aps snapshots n.APs (the engine is rebuilt if the AP set changes);
	// apIDs/apIdx index it, chans/mask mirror cfg.Channels.
	aps     []*wlan.AP
	apIDs   []string
	apIdx   map[string]int
	chans   []spectrum.Channel
	mask    bitset.Field
	compBit map[spectrum.ChannelID]uint
	// compCap is the mask bit capacity (compWords·64). A configuration
	// whose component set outgrows it fails syncChannels, and the
	// Controller rebuilds the engine with wider masks.
	compWords int
	compCap   uint

	// override is true when the network's contention predicate is replaced
	// wholesale (measurement-driven deployments); client terms are skipped
	// then, exactly as wlan.Network.Contend does.
	override bool
	// apapDir[a][o] is the direct carrier-sense term of Contend(APs[a],
	// APs[o]) — whether o hears a's transmit power (directional when
	// transmit powers differ). In override mode it holds the override's
	// verdict for the ordered pair.
	apapDir [][]bool
	// apapNbr[a] lists the o with the unordered AP↔AP contention term true
	// (apapDir in the lower-index-transmits direction) — the static edge
	// lists the partition unions along population transitions.
	apapNbr [][]int32

	// part is the incrementally maintained contention partition
	// (partition.go), rebuilt with the engine and updated by the
	// applyHome/ensureState hooks.
	part *contentionPartition

	// pop is the cell population K per AP (associations to APs the network
	// does not know are tracked by the configuration but price as nothing,
	// mirroring the reference).
	pop []int
	// cntHome[h][o] counts clients homed at AP h that AP o carrier-senses
	// — the client term of Contend(h, o) from h's side.
	cntHome [][]int32

	clients map[string]*assocClient
	nextIdx int32

	// expectAssocLen and nClientsSeen are the cheap consistency sentinels
	// bind() checks: an association map mutated behind the engine's back or
	// a client removed from the network while still associated invalidates
	// the engine (the Controller then rebuilds it).
	expectAssocLen int
	nClientsSeen   int

	// beaconDelay memoizes the per-(AP, client, channel) transmission
	// delays of the beacon path (jittered per-channel SNR). Keyed by the
	// client's incarnation index, so a re-arriving client with new geometry
	// gets fresh entries. memoKeys indexes the memo by incarnation so a
	// departure (evict) or reincarnation purges exactly its own entries in
	// O(entries purged) — memo size stays O(live clients) under indefinite
	// churn.
	beaconDelay map[assocDelayKey]float64
	memoKeys    map[int32][]assocDelayKey

	// snr20/widthDelay back the estimators the engine vends for Algorithm 2
	// (Controller.Reallocate): the measured reference SNRs and the
	// per-(link, width) delay memo survive across reallocations.
	snr20      map[linkKey]units.DB
	snrDone    map[string]*wlan.Client
	widthDelay map[widthKey]float64

	stats assocEngineStats
}

// assocClient is the engine's per-client state. Candidate sets and hearing
// bitsets depend only on the client's geometry, which the engine assumes
// fixed for one incarnation (a new *wlan.Client pointer under the same ID
// triggers a refresh).
type assocClient struct {
	c   *wlan.Client
	idx int32
	// home is the index of the client's current AP, or -1 when the client
	// is unassociated (or associated to an AP outside the network, which
	// prices identically).
	home int
	// cands lists the in-range AP indices in ascending AP-ID order — the
	// beacon order GatherBeacons pins.
	cands []int32
	// heard is a bitset over AP indices: the APs that carrier-sense this
	// client (the client term of the contention predicate).
	heard []uint64
	// candBits is cands as a bitset, for the sweep's dirty test.
	candBits []uint64
}

type assocDelayKey struct {
	ap int32
	cl int32
	ch spectrum.Channel
}

// assocEngineStats counts the engine's work. Plain ints: mutated serially
// (worker overlays are merged in after each sweep round).
type assocEngineStats struct {
	// updates counts aggregate-update operations (association moves applied
	// to the maintained state).
	updates int
	// fastBeacons counts beacons produced by the engine.
	fastBeacons int
	// memoHits/memoMisses count beacon-delay memo lookups.
	memoHits   int
	memoMisses int
	// partUpdates counts incremental partition hook invocations;
	// partRefreshes counts lazy dirty-group re-partitions; partRebuilds
	// counts from-scratch partition constructions (one per engine build —
	// client-only churn must keep this flat, which the stream tests pin).
	partUpdates   int
	partRefreshes int
	partRebuilds  int
}

func (s *assocEngineStats) add(o assocEngineStats) {
	s.updates += o.updates
	s.fastBeacons += o.fastBeacons
	s.memoHits += o.memoHits
	s.memoMisses += o.memoMisses
	s.partUpdates += o.partUpdates
	s.partRefreshes += o.partRefreshes
	s.partRebuilds += o.partRebuilds
}

// newAssocEngine builds the engine for the given binding, or returns nil
// when the configuration cannot be represented (an associated client the
// network does not know) — callers then use the reference path. Component
// count never prevents a build: masks are sized to fit the band and the
// bound configuration.
func newAssocEngine(n *wlan.Network, cfg *wlan.Config) *assocEngine {
	e := &assocEngine{
		n:           n,
		cfg:         cfg,
		aps:         append([]*wlan.AP(nil), n.APs...),
		apIDs:       make([]string, len(n.APs)),
		apIdx:       make(map[string]int, len(n.APs)),
		chans:       make([]spectrum.Channel, len(n.APs)),
		compBit:     make(map[spectrum.ChannelID]uint, 16),
		pop:         make([]int, len(n.APs)),
		cntHome:     make([][]int32, len(n.APs)),
		clients:     make(map[string]*assocClient, len(cfg.Assoc)),
		beaconDelay: make(map[assocDelayKey]float64, 4*len(cfg.Assoc)),
		memoKeys:    make(map[int32][]assocDelayKey, len(cfg.Assoc)),
		snr20:       make(map[linkKey]units.DB),
		snrDone:     make(map[string]*wlan.Client),
		widthDelay:  make(map[widthKey]float64),
	}
	for i, ap := range e.aps {
		e.apIDs[i] = ap.ID
		e.apIdx[ap.ID] = i
	}
	// Size the masks from every component in sight — the band (what a
	// reallocation can assign) plus the bound configuration (which may
	// hold channels beyond the band). New components arriving later fill
	// the headroom up to compCap; past that, bind() rebuilds wider.
	for _, ch := range n.Band.AllChannels() {
		for _, comp := range ch.Components() {
			if _, ok := e.compBit[comp]; !ok {
				e.compBit[comp] = uint(len(e.compBit))
			}
		}
	}
	for _, ap := range e.aps {
		if ch := cfg.Channels[ap.ID]; !ch.IsZero() {
			for _, comp := range ch.Components() {
				if _, ok := e.compBit[comp]; !ok {
					e.compBit[comp] = uint(len(e.compBit))
				}
			}
		}
	}
	e.compWords = bitset.Words(len(e.compBit))
	e.compCap = uint(e.compWords) * 64
	e.mask = bitset.NewField(len(e.aps), e.compWords)
	if !e.syncChannels(cfg) {
		return nil // unreachable: capacity was sized from this cfg
	}
	e.override = n.ContendOverride != nil
	e.apapDir = make([][]bool, len(e.aps))
	for a := range e.aps {
		e.apapDir[a] = make([]bool, len(e.aps))
	}
	if !e.buildApapSpatial() {
		for a, apA := range e.aps {
			row := e.apapDir[a]
			for o, apO := range e.aps {
				if o == a {
					continue
				}
				if e.override {
					row[o] = n.ContendOverride(apA.ID, apO.ID)
				} else {
					row[o] = n.Prop.RxPower(apA.TxPower, apA.Pos.DistanceTo(apO.Pos), 0) >= n.CSThreshold
				}
			}
		}
	}
	// The unordered AP↔AP contention term reads the lower-index-transmits
	// direction only; materialize it once as symmetric neighbor lists for
	// the partition's population-transition unions.
	e.apapNbr = make([][]int32, len(e.aps))
	for a := range e.aps {
		row := e.apapDir[a]
		for o := a + 1; o < len(e.aps); o++ {
			if row[o] {
				e.apapNbr[a] = append(e.apapNbr[a], int32(o))
				e.apapNbr[o] = append(e.apapNbr[o], int32(a))
			}
		}
	}
	for i := range e.cntHome {
		e.cntHome[i] = make([]int32, len(e.aps))
	}
	e.nClientsSeen = len(n.Clients)
	e.expectAssocLen = len(cfg.Assoc)
	for id, apID := range cfg.Assoc {
		u := n.Client(id)
		if u == nil {
			return nil // an associated phantom the contention walk never sees
		}
		st := e.ensureState(u)
		if hi, ok := e.apIdx[apID]; ok {
			st.home = hi
			e.pop[hi]++
			e.addHeardCounts(hi, st, +1)
		}
	}
	e.part = newContentionPartition(e)
	return e
}

// buildApapSpatial fills apapDir through per-row grid queries instead of
// the O(APs²) distance scan: row a's true entries all lie within the
// carrier-sense range of a's transmit power (rf.CarrierSenseRange is a
// conservative upper bound), so querying the AP grid at that radius and
// running the exact predicate on the survivors reproduces the full scan's
// rows bit-identically. Returns false — leaving the full scan to run —
// under a contention override (verdicts are not geometric) or when the
// propagation model exposes no invertible bound.
func (e *assocEngine) buildApapSpatial() bool {
	if e.override || len(e.aps) < 2 {
		return false
	}
	radii := make([]float64, len(e.aps))
	maxR := 0.0
	for a, ap := range e.aps {
		r, ok := e.n.Prop.CarrierSenseRange(ap.TxPower, e.n.CSThreshold)
		if !ok || math.IsInf(r, 0) || math.IsNaN(r) {
			return false
		}
		radii[a] = r
		if r > maxR {
			maxR = r
		}
	}
	g := geo.NewGrid(maxR)
	for a, ap := range e.aps {
		g.Add(int32(a), ap.Pos.X, ap.Pos.Y)
	}
	for a, apA := range e.aps {
		row := e.apapDir[a]
		g.VisitWithin(apA.Pos.X, apA.Pos.Y, radii[a], func(o32 int32) {
			o := int(o32)
			if o == a {
				return
			}
			row[o] = e.n.Prop.RxPower(apA.TxPower, apA.Pos.DistanceTo(e.aps[o].Pos), 0) >= e.n.CSThreshold
		})
	}
	return true
}

// syncChannels refreshes the per-AP channel/mask mirrors from cfg. It fails
// (engine masks too narrow) when the component set outgrows the capacity
// the engine was built with — the caller then rebuilds with wider masks.
func (e *assocEngine) syncChannels(cfg *wlan.Config) bool {
	for i, ap := range e.aps {
		ch := cfg.Channels[ap.ID]
		if !e.maskInto(e.mask.At(i), ch) {
			return false
		}
		e.chans[i] = ch
	}
	return true
}

// maskInto writes ch's conflict mask into dst (a zero mask for the zero
// channel, which conflicts with nothing, like Channel.Conflicts). It fails
// when a new component would exceed the mask capacity.
func (e *assocEngine) maskInto(dst bitset.Set, ch spectrum.Channel) bool {
	dst.Clear()
	if ch.IsZero() {
		return true
	}
	for _, comp := range ch.Components() {
		bit, ok := e.compBit[comp]
		if !ok {
			bit = uint(len(e.compBit))
			if bit >= e.compCap {
				return false
			}
			e.compBit[comp] = bit
		}
		dst.SetBit(bit)
	}
	return true
}

// bind revalidates the engine against the (possibly new) configuration
// pointer and the network's current client set. It returns false when the
// engine can no longer vouch for its aggregates — the caller rebuilds.
func (e *assocEngine) bind(cfg *wlan.Config) bool {
	if len(e.n.APs) != len(e.aps) {
		return false
	}
	if len(cfg.Assoc) != e.expectAssocLen {
		return false
	}
	if cfg != e.cfg {
		// A reallocation installed a cloned configuration: same
		// associations (checked by count above — Reallocate clones the map
		// verbatim), new channels.
		if !e.syncChannels(cfg) {
			return false
		}
		e.cfg = cfg
	}
	if len(e.n.Clients) != e.nClientsSeen {
		// The client set changed. Arrivals are handled lazily; what must
		// never happen is a client leaving the network while still
		// associated (the reference contention walk would stop seeing it).
		// An associated client replaced by a new incarnation (same ID, new
		// object — refreshed geometry) is absorbed incrementally: ensureState
		// retires the old hearing contributions and adopts the new ones, so
		// a membership-churn batch never forces a whole-engine rebuild.
		for id := range cfg.Assoc {
			st := e.clients[id]
			if st == nil {
				return false
			}
			if u := e.n.Client(id); u == nil {
				return false
			} else if u != st.c {
				e.ensureState(u)
			}
		}
		e.nClientsSeen = len(e.n.Clients)
	}
	return true
}

// ensureState returns the engine state for u, building or refreshing it when
// u is new or re-arrived with a different object (new geometry).
func (e *assocEngine) ensureState(u *wlan.Client) *assocClient {
	st := e.clients[u.ID]
	if st != nil && st.c == u {
		return st
	}
	words := (len(e.aps) + 63) / 64
	if st == nil {
		st = &assocClient{idx: e.nextIdx, home: -1}
		e.nextIdx++
		e.clients[u.ID] = st
	} else {
		// Reincarnation: retire the old geometry's contributions, its
		// delay-memo entries (by incarnation index), and its link caches.
		if st.home >= 0 {
			e.addHeardCounts(st.home, st, -1)
			if e.part != nil {
				e.part.afterRemove(e, st.home, st)
			}
		}
		e.purgeDelayMemo(st.idx)
		st.idx = e.nextIdx
		e.nextIdx++
		e.purgeLinks(u.ID)
	}
	st.c = u
	st.heard = make([]uint64, words)
	st.candBits = make([]uint64, words)
	st.cands = st.cands[:0]
	for i, ap := range e.aps {
		if e.n.Prop.RxPower(ap.TxPower, ap.Pos.DistanceTo(u.Pos), 0) >= e.n.CSThreshold {
			st.heard[i/64] |= 1 << (uint(i) % 64)
		}
		if e.n.ClientSNR20(ap, u) >= e.n.AssocMinSNR {
			st.cands = append(st.cands, int32(i))
			st.candBits[i/64] |= 1 << (uint(i) % 64)
		}
	}
	sort.Slice(st.cands, func(x, y int) bool {
		return e.apIDs[st.cands[x]] < e.apIDs[st.cands[y]]
	})
	if st.home >= 0 {
		e.addHeardCounts(st.home, st, +1)
		if e.part != nil {
			e.part.afterAdd(e, st.home, st)
		}
	}
	return st
}

// purgeDelayMemo drops one incarnation's beacon-delay memo entries via the
// memoKeys index, in time proportional to the entries dropped.
func (e *assocEngine) purgeDelayMemo(idx int32) {
	for _, k := range e.memoKeys[idx] {
		delete(e.beaconDelay, k)
	}
	delete(e.memoKeys, idx)
}

// purgeLinks drops the ID-keyed link caches of a reincarnated client so the
// vended estimators re-measure it.
func (e *assocEngine) purgeLinks(id string) {
	for _, apID := range e.apIDs {
		delete(e.widthDelay, widthKey{apID, id, spectrum.Width20})
		delete(e.widthDelay, widthKey{apID, id, spectrum.Width40})
		delete(e.snr20, linkKey{apID, id})
	}
	delete(e.snrDone, id)
}

// addHeardCounts folds the client's hearing bitset into (or out of) home h's
// pair counts.
func (e *assocEngine) addHeardCounts(h int, st *assocClient, delta int32) {
	row := e.cntHome[h]
	for w, word := range st.heard {
		for word != 0 {
			o := w*64 + bits.TrailingZeros64(word)
			word &= word - 1
			if o != h {
				row[o] += delta
			}
		}
	}
}

// heardBit reports whether AP index o carrier-senses the client.
func (st *assocClient) heardBit(o int) bool {
	return st.heard[o/64]&(1<<(uint(o)%64)) != 0
}

// applyHome moves the client to AP index target (-1 = unassociated),
// updating the configuration and every maintained aggregate in
// O(|heardBy|). No-op when the client is already there.
func (e *assocEngine) applyHome(id string, st *assocClient, target int) {
	if target == st.home {
		return
	}
	_, had := e.cfg.Assoc[id]
	if st.home >= 0 {
		old := st.home
		e.pop[old]--
		e.addHeardCounts(old, st, -1)
		if e.part != nil {
			e.part.afterRemove(e, old, st)
		}
	}
	st.home = target
	if target >= 0 {
		e.pop[target]++
		e.addHeardCounts(target, st, +1)
		if e.part != nil {
			e.part.afterAdd(e, target, st)
		}
		e.cfg.SetAssoc(id, e.apIDs[target])
		if !had {
			e.expectAssocLen++
		}
	} else {
		e.cfg.Unassoc(id)
		if had {
			e.expectAssocLen--
		}
	}
	e.stats.updates++
}

// evict removes a departed client's association and retires its engine
// state (delay-memo entries, link caches, per-client aggregates), bounding
// every per-client structure to the live population. It reports false when
// the engine holds no state for an associated client — an invariant breach
// that forces a rebuild.
func (e *assocEngine) evict(id string) bool {
	st := e.clients[id]
	if _, ok := e.cfg.Assoc[id]; !ok {
		// Unknown or already unassociated: the reference path is a no-op
		// too, but a departing never-associated client still retires its
		// engine state.
		if st != nil {
			e.dropClient(id, st)
		}
		return true
	}
	if st == nil {
		return false
	}
	e.applyHome(id, st, -1)
	e.dropClient(id, st)
	return true
}

// dropClient retires a departed (unassociated) client's engine state.
func (e *assocEngine) dropClient(id string, st *assocClient) {
	e.purgeDelayMemo(st.idx)
	e.purgeLinks(id)
	delete(e.clients, id)
}

// delayOf returns the memoized beacon transmission delay of (AP a, client,
// channel), computing and caching it on miss. With a non-nil overlay (worker
// context) writes go to the overlay; the shared memo is read-only then.
func (e *assocEngine) delayOf(a int, st *assocClient, ch spectrum.Channel, ov *delayOverlay) float64 {
	k := assocDelayKey{int32(a), st.idx, ch}
	if ov != nil {
		if d, ok := ov.m[k]; ok {
			ov.stats.memoHits++
			return d
		}
		if d, ok := e.beaconDelay[k]; ok {
			ov.stats.memoHits++
			return d
		}
		d := clientDelay(e.n, e.aps[a], st.c, ch)
		ov.m[k] = d
		ov.stats.memoMisses++
		return d
	}
	if d, ok := e.beaconDelay[k]; ok {
		e.stats.memoHits++
		return d
	}
	d := clientDelay(e.n, e.aps[a], st.c, ch)
	e.beaconDelay[k] = d
	e.memoKeys[k.cl] = append(e.memoKeys[k.cl], k)
	e.stats.memoMisses++
	return d
}

// trialAccessShare computes the M the inquirer would observe at candidate a
// — the access share of a with the inquirer trial-associated — without
// touching the configuration. Mirrors accessShareWith/AccessShare exactly:
// same skip conditions, same contention verdicts, so the resulting float is
// the same 1/(contenders+1).
func (e *assocEngine) trialAccessShare(a int, st *assocClient) float64 {
	h := st.home
	ma := e.mask.At(a)
	contenders := 0
	for o := range e.aps {
		if o == a {
			continue
		}
		popT := e.pop[o]
		if h == o {
			popT-- // the trial association pulls the inquirer out of o
		}
		if popT == 0 {
			continue
		}
		if !ma.Intersects(e.mask.At(o)) {
			continue
		}
		var contend bool
		if e.override {
			contend = e.apapDir[a][o]
		} else if e.apapDir[a][o] {
			contend = true
		} else {
			cnt := e.cntHome[a][o] + e.cntHome[o][a]
			if h != a && st.heardBit(o) {
				cnt++ // the inquirer joins a's cell within o's earshot
			}
			if h == o && st.heardBit(a) {
				cnt-- // ... and leaves o's cell within a's earshot
			}
			contend = cnt > 0
		}
		if contend {
			contenders++
		}
	}
	return 1 / float64(contenders+1)
}

// beaconsFor produces the beacons the client would gather, in the AP-ID
// order GatherBeacons pins, bit-identical to the reference: ATD re-folds the
// memoized delays over cfg.ClientsOf in the same order with the inquirer's
// delay first, K counts the inquirer, M comes from the closed-form trial.
func (e *assocEngine) beaconsFor(st *assocClient, ov *delayOverlay) []Beacon {
	out := make([]Beacon, 0, len(st.cands))
	for _, a32 := range st.cands {
		a := int(a32)
		ch := e.chans[a]
		du := e.delayOf(a, st, ch, ov)
		atd := du
		k := 1
		apID := e.apIDs[a]
		for _, id := range e.cfg.ClientsOf(apID) {
			if id == st.c.ID {
				continue
			}
			atd += e.delayOf(a, e.clients[id], ch, ov)
			k++
		}
		out = append(out, Beacon{APID: apID, Channel: ch, K: k, M: e.trialAccessShare(a, st), ATD: atd, DU: du})
	}
	if ov != nil {
		ov.stats.fastBeacons += len(out)
	} else {
		e.stats.fastBeacons += len(out)
	}
	return out
}

// associate runs Algorithm 1 for one client through the engine — the fast
// counterpart of Associate, bit-identical by construction (the decision rule
// itself is the shared AssociateFromBeacons). The caller applies the
// decision with applyHome.
func (e *assocEngine) associate(u *wlan.Client) AssociationDecision {
	st := e.ensureState(u)
	d := AssociateFromBeacons(u.ID, e.beaconsFor(st, nil))
	sort.Slice(d.Candidates, func(a, b int) bool { return d.Candidates[a].APID < d.Candidates[b].APID })
	return d
}

// vendEstimator hands Algorithm 2 an estimator backed by the engine's
// link caches: the reference SNRs and the per-(link, width) delay memo
// survive across reallocations instead of being re-measured each period. The
// contention cache starts empty on purpose — it is association-dependent and
// must be fresh per run. The vended estimator's floats are identical to a
// NewEstimator's (same measurement expressions), so allocations are
// unchanged bit-for-bit.
func (e *assocEngine) vendEstimator() *Estimator {
	for _, c := range e.n.Clients {
		if old := e.snrDone[c.ID]; old == c {
			continue
		} else if old != nil {
			e.purgeLinks(c.ID)
		}
		for _, ap := range e.aps {
			e.snr20[linkKey{ap.ID, c.ID}] = e.n.ClientSNR20(ap, c)
		}
		e.snrDone[c.ID] = c
	}
	return &Estimator{n: e.n, snr20: e.snr20, delayMemo: e.widthDelay}
}
