package core

// Tuning knobs of the event-driven streaming controller (stream.go) and the
// anti-flap switch gate it shares with the networked control plane. All
// defaults are resolved through accessor methods so the zero value of each
// struct is a sane production configuration, matching the convention of
// AllocOptions/AssocOptions.

import (
	"time"

	"acorn/internal/obs"
)

// GateOptions parameterizes the anti-flap SwitchGate: goodput hysteresis
// (a proposed channel switch must beat the incumbent by a relative margin,
// sustained over a streak of consecutive evaluations) plus a per-AP token
// bucket bounding the switch rate, plus the flap-detector window.
type GateOptions struct {
	// Margin is the minimum relative network-goodput gain a proposed switch
	// must offer (rank / pre-switch estimate). Zero means DefaultGateMargin;
	// negative disables the margin test.
	Margin float64
	// Streak is the number of consecutive evaluations that must propose the
	// same switch before it may commit (the K of the hysteresis rule). Zero
	// means DefaultGateStreak; negative or 1 commits on the first proposal.
	Streak int
	// RatePerHour is the per-AP token refill rate: the sustained switch
	// rate one AP may not exceed. Zero means DefaultGateRatePerHour;
	// negative disables rate limiting.
	RatePerHour float64
	// Burst is the token bucket capacity — how many switches one AP may
	// perform back-to-back before the rate limit bites. Zero means
	// DefaultGateBurst.
	Burst int
	// FlapWindow is the sliding window of the flap detector (and the span
	// over which per-AP switch history is retained). Zero means
	// DefaultFlapWindow.
	FlapWindow time.Duration
	// FlapThreshold is the per-AP switch count within FlapWindow at which
	// an AP counts as flapping. Zero means DefaultFlapThreshold.
	FlapThreshold int
}

// Gate defaults. A switch must win by 2% twice in a row, and no AP may
// switch more than ~12 times an hour (burst 3) — bounds far inside the
// paper's one-switch-per-30-min periodic regime, yet loose enough that a
// genuinely better configuration lands within seconds.
const (
	DefaultGateMargin      = 0.02
	DefaultGateStreak      = 2
	DefaultGateRatePerHour = 12.0
	DefaultGateBurst       = 3
	DefaultFlapWindow      = 10 * time.Minute
	DefaultFlapThreshold   = 4
)

func (o GateOptions) margin() float64 {
	if o.Margin == 0 {
		return DefaultGateMargin
	}
	if o.Margin < 0 {
		return 0
	}
	return o.Margin
}

func (o GateOptions) streak() int {
	if o.Streak == 0 {
		return DefaultGateStreak
	}
	if o.Streak < 1 {
		return 1
	}
	return o.Streak
}

func (o GateOptions) ratePerHour() float64 {
	if o.RatePerHour == 0 {
		return DefaultGateRatePerHour
	}
	if o.RatePerHour < 0 {
		return 0 // disabled
	}
	return o.RatePerHour
}

func (o GateOptions) burst() int {
	if o.Burst <= 0 {
		return DefaultGateBurst
	}
	return o.Burst
}

func (o GateOptions) flapWindow() time.Duration {
	if o.FlapWindow <= 0 {
		return DefaultFlapWindow
	}
	return o.FlapWindow
}

func (o GateOptions) flapThreshold() int {
	if o.FlapThreshold <= 0 {
		return DefaultFlapThreshold
	}
	return o.FlapThreshold
}

// StreamOptions tunes the StreamController.
type StreamOptions struct {
	// MaxQueue bounds the event queue (live entries; coalesced updates do
	// not grow it). When full, the shed policy drops the oldest report-kind
	// entry first — membership events (arrive/depart) are shed only when no
	// report remains, and are counted separately because dropping one can
	// leave the configuration stale until the next full pass. Zero means
	// DefaultStreamMaxQueue.
	MaxQueue int
	// MaxBatch bounds how many events one Pump drains before running the
	// batched local re-optimization; zero means DefaultStreamMaxBatch.
	MaxBatch int
	// Gate configures the anti-flap switch gate.
	Gate GateOptions
	// RoamMargin is the association-roaming hysteresis applied when a
	// report event re-evaluates its client (Controller.Roam semantics).
	// Zero means DefaultStreamRoamMargin; negative disables.
	RoamMargin float64
	// Alloc tunes the bounded local re-optimizations (Workers, Epsilon,
	// MaxPeriods); Only is owned by the stream and must stay nil. Setting
	// Alloc.ShardWorkers makes every re-optimization component-sharded:
	// a dirty cell's neighbourhood wakes only the contention components it
	// touches, and independent components solve on parallel workers
	// (components.go).
	Alloc AllocOptions
	// AssocWorkers bounds the parallelism of full-pass roaming sweeps.
	AssocWorkers int

	// DegradeDepth is the queue depth at or above which the stream counts
	// as saturated; zero means MaxQueue/2.
	DegradeDepth int
	// DegradeAfter is how long saturation must persist before the stream
	// degrades to deferred batched reallocation (per-event local
	// re-optimization suspended). Zero means DefaultStreamDegradeAfter.
	DegradeAfter time.Duration
	// RecoverBelow is the queue depth below which a degraded stream
	// recovers; zero means MaxQueue/4.
	RecoverBelow int
	// WatchdogPeriod bounds how stale the configuration may grow: if the
	// stream is degraded, saturated, or holding unserviced dirty state for
	// this long, the watchdog forces a full periodic pass (whole-network
	// Reallocate plus roaming sweep, still rate-gated). Zero means
	// DefaultStreamWatchdogPeriod.
	WatchdogPeriod time.Duration

	// Now replaces time.Now for deterministic replay (the dynamic package
	// drives it from simulated time). Nil means time.Now.
	Now func() time.Time
	// Log receives shed/degradation warnings (sheds are also counted, so
	// nothing is dropped silently even with logging off). Nil means obs.Nop.
	Log *obs.Logger
	// RecordLatencies keeps a ring of the last N per-event decision
	// latencies so benchmarks can report exact cumulative p50/p99
	// quantiles; zero disables the ring (the obs histogram and the
	// sliding latency window are always fed).
	RecordLatencies int

	// Tracer records one pipeline span per queued event (stage catalog in
	// streamtrace.go; build one with NewStreamTracer). Nil disables
	// tracing — the disabled path is a handful of nil checks and adds no
	// allocations.
	Tracer *obs.Tracer
	// LatencyWindow is the sliding window behind StreamStats.LatencyP50/
	// LatencyP99 and the windowed-quantile gauges. Zero means
	// DefaultStreamLatencyWindow.
	LatencyWindow time.Duration
	// SLO, when non-nil, receives every decision latency; a breach of its
	// budget fires its hook (the daemons wire it to a CPU-profile
	// capture). Build it over the same clock as Now for replay.
	SLO *obs.SLO
}

// Stream defaults.
const (
	DefaultStreamMaxQueue       = 4096
	DefaultStreamMaxBatch       = 256
	DefaultStreamRoamMargin     = 0.05
	DefaultStreamDegradeAfter   = 2 * time.Second
	DefaultStreamWatchdogPeriod = 2 * time.Minute
	DefaultStreamLatencyWindow  = 30 * time.Second
)

func (o StreamOptions) maxQueue() int {
	if o.MaxQueue <= 0 {
		return DefaultStreamMaxQueue
	}
	return o.MaxQueue
}

func (o StreamOptions) maxBatch() int {
	if o.MaxBatch <= 0 {
		return DefaultStreamMaxBatch
	}
	return o.MaxBatch
}

func (o StreamOptions) roamMargin() float64 {
	if o.RoamMargin == 0 {
		return DefaultStreamRoamMargin
	}
	if o.RoamMargin < 0 {
		return 0
	}
	return o.RoamMargin
}

func (o StreamOptions) degradeDepth() int {
	if o.DegradeDepth > 0 {
		return o.DegradeDepth
	}
	d := o.maxQueue() / 2
	if d < 1 {
		d = 1
	}
	return d
}

func (o StreamOptions) degradeAfter() time.Duration {
	if o.DegradeAfter <= 0 {
		return DefaultStreamDegradeAfter
	}
	return o.DegradeAfter
}

func (o StreamOptions) recoverBelow() int {
	if o.RecoverBelow > 0 {
		return o.RecoverBelow
	}
	d := o.maxQueue() / 4
	if d < 1 {
		d = 1
	}
	return d
}

func (o StreamOptions) watchdogPeriod() time.Duration {
	if o.WatchdogPeriod <= 0 {
		return DefaultStreamWatchdogPeriod
	}
	return o.WatchdogPeriod
}

func (o StreamOptions) latencyWindow() time.Duration {
	if o.LatencyWindow <= 0 {
		return DefaultStreamLatencyWindow
	}
	return o.LatencyWindow
}

func (o StreamOptions) now() func() time.Time {
	if o.Now != nil {
		return o.Now
	}
	return time.Now
}
