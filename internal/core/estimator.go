package core

// The link-quality estimator of Section 4.2. When Algorithm 2 evaluates a
// candidate channel, the AP cannot measure the new channel directly; it
// estimates. Two assumptions, both validated in the paper:
//
//  1. Link quality does not vary significantly across different channels of
//     the *same* width (Fig 8, MIMO flattens frequency selectivity), so the
//     measured SNR carries over unchanged.
//  2. Changing *width* shifts the per-subcarrier SNR by the bonding penalty
//     (≈3 dB); the SNR-calibration module applies it, a BER-estimation
//     module computes the theoretical coded BER at the calibrated SNR, and
//     Eq. 6 turns BER into PER. ACORN needs only a coarse good/poor
//     classification, so theoretical formulas suffice.

import (
	"math"

	"acorn/internal/mac"
	"acorn/internal/ratecontrol"
	"acorn/internal/spectrum"
	"acorn/internal/units"
	"acorn/internal/wlan"
)

// Estimator predicts cell and network throughputs for hypothetical channel
// assignments from measured 20 MHz link SNRs. It is deliberately ignorant
// of per-channel jitter — the real network applies jitter; the estimator
// assumes channels of equal width are interchangeable.
type Estimator struct {
	n *wlan.Network
	// snr20 caches the measured reference SNR of every AP→client link.
	snr20 map[linkKey]units.DB
	// MeasurementNoiseDB, when non-zero, perturbs each cached measurement
	// deterministically to model imperfect driver SNR reports.
	MeasurementNoiseDB float64

	// contends caches the pairwise contention relation. Contention
	// depends on geometry and the association map — not on channel
	// assignments — so during one Algorithm 2 run (association fixed)
	// the relation is static, and caching it removes the dominant
	// O(APs²·clients) term from every candidate evaluation.
	contends map[linkKey]bool

	// delayMemo, when non-nil, memoizes the per-(link, width) transmission
	// delays across the estimator's lifetime — and beyond it, when the
	// association engine vends estimators sharing one memo across
	// reallocations. nil (the NewEstimator default) keeps the original
	// uncached behavior. The memo is bypassed under measurement noise,
	// whose perturbation is part of the delay.
	delayMemo map[widthKey]float64
}

type linkKey struct{ ap, client string }

type widthKey struct {
	ap, client string
	w          spectrum.Width
}

// NewEstimator builds an estimator over the network, measuring (caching)
// the 20 MHz reference SNR of every AP→client pair.
func NewEstimator(n *wlan.Network) *Estimator {
	e := &Estimator{n: n, snr20: make(map[linkKey]units.DB, len(n.APs)*len(n.Clients))}
	for _, ap := range n.APs {
		for _, c := range n.Clients {
			e.snr20[linkKey{ap.ID, c.ID}] = n.ClientSNR20(ap, c)
		}
	}
	return e
}

// LinkSNR returns the estimated per-subcarrier SNR of the link on a channel
// of the given width: the measured 20 MHz reference, recalibrated by the
// bonding penalty when the target is 40 MHz.
func (e *Estimator) LinkSNR(apID, clientID string, w spectrum.Width) units.DB {
	snr, ok := e.snr20[linkKey{apID, clientID}]
	if !ok {
		return units.DB(math.Inf(-1))
	}
	if e.MeasurementNoiseDB != 0 {
		snr += units.DB(e.MeasurementNoiseDB * noiseUnit(apID, clientID))
	}
	return snrForWidth(snr, w)
}

// noiseUnit returns a deterministic pseudo-random value in (-1, 1) per link.
func noiseUnit(apID, clientID string) float64 {
	var h uint64 = 14695981039346656037
	for _, s := range []string{apID, "~", clientID} {
		for i := 0; i < len(s); i++ {
			h ^= uint64(s[i])
			h *= 1099511628211
		}
	}
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	return float64(int64(h)) / math.MaxInt64
}

// ClientDelay returns the estimated d_cl of the link on the given channel.
// The delay depends on the channel only through its width, which is what
// lets the incremental allocator precompute per-(link, width) delay tables.
func (e *Estimator) ClientDelay(apID, clientID string, ch spectrum.Channel) float64 {
	return e.clientDelayWidth(apID, clientID, ch.Width)
}

// clientDelayWidth is ClientDelay keyed by width directly.
func (e *Estimator) clientDelayWidth(apID, clientID string, w spectrum.Width) float64 {
	memo := e.delayMemo != nil && e.MeasurementNoiseDB == 0
	if memo {
		if d, ok := e.delayMemo[widthKey{apID, clientID, w}]; ok {
			return d
		}
	}
	snr := e.LinkSNR(apID, clientID, w)
	sel := ratecontrol.Best(snr, w, e.n.PacketBytes)
	d := 1 / sel.GoodputMbps // goodput is floored by the MAC delay cap
	if memo {
		e.delayMemo[widthKey{apID, clientID, w}] = d
	}
	return d
}

// ClientPER returns the estimated PER of the link at the given width, the
// output of the BER-estimation module followed by Eq. 6: calibrate the SNR
// for the width (bonding penalty), then select the rate a card would run at
// that width and report its residual PER.
func (e *Estimator) ClientPER(apID, clientID string, w spectrum.Width) float64 {
	snr := e.LinkSNR(apID, clientID, w)
	sel := ratecontrol.Best(snr, w, e.n.PacketBytes)
	return sel.PER
}

// contend returns the (cached) contention relation between two APs. The
// cache assumes the association map is stable for the estimator's lifetime,
// which holds during an Algorithm 2 run; build a fresh estimator after
// changing associations.
func (e *Estimator) contend(cfg *wlan.Config, a, b *wlan.AP) bool {
	if a.ID == b.ID {
		return false
	}
	key := linkKey{a.ID, b.ID}
	if v, ok := e.contends[key]; ok {
		return v
	}
	if e.contends == nil {
		e.contends = make(map[linkKey]bool)
	}
	v := e.n.Contend(a, b, cfg)
	e.contends[key] = v
	e.contends[linkKey{b.ID, a.ID}] = v
	return v
}

// accessShare mirrors wlan.Network.AccessShare using the cached contention
// relation and precomputed cell sizes.
func (e *Estimator) accessShare(cfg *wlan.Config, ap *wlan.AP, populated map[string]int) float64 {
	ch := cfg.Channels[ap.ID]
	contenders := 0
	for _, other := range e.n.APs {
		if other.ID == ap.ID || populated[other.ID] == 0 {
			continue
		}
		if !ch.Conflicts(cfg.Channels[other.ID]) {
			continue
		}
		if e.contend(cfg, ap, other) {
			contenders++
		}
	}
	return 1 / float64(contenders+1)
}

// CellThroughput estimates the aggregate throughput of ap's cell under the
// hypothetical configuration cfg (UDP saturated model). Like
// NetworkThroughput it prices the access share through the estimator's own
// cached contention relation — not the network's live predicate — so the
// hot path the cache was built for actually uses it (and the result is
// consistent with the per-cell terms of NetworkThroughput).
func (e *Estimator) CellThroughput(cfg *wlan.Config, apID string) float64 {
	clients := cfg.ClientsOf(apID)
	if len(clients) == 0 {
		return 0
	}
	ch := cfg.Channels[apID]
	delays := make([]float64, 0, len(clients))
	for _, id := range clients {
		delays = append(delays, e.ClientDelay(apID, id, ch))
	}
	populated := make(map[string]int, len(e.n.APs))
	for _, homeID := range cfg.Assoc {
		populated[homeID]++
	}
	cell := mac.Cell{Delays: delays, AccessShare: e.accessShare(cfg, e.n.AP(apID), populated)}
	return cell.AggregateThroughput()
}

// NetworkThroughput estimates the total aggregate throughput Y of the
// hypothetical configuration — the objective of Eq. 5 as Algorithm 2 sees
// it while searching.
func (e *Estimator) NetworkThroughput(cfg *wlan.Config) float64 {
	// Cell population is channel-independent; compute it once.
	populated := make(map[string]int, len(e.n.APs))
	for _, apID := range cfg.Assoc {
		populated[apID]++
	}
	var total float64
	for _, ap := range e.n.APs {
		k := populated[ap.ID]
		if k == 0 {
			continue
		}
		ch := cfg.Channels[ap.ID]
		var atd float64
		// Sum in the network's stable client order — summing in map
		// iteration order makes the float total run-dependent, which
		// the argmax search would amplify into different allocations.
		for _, c := range e.n.Clients {
			if cfg.Assoc[c.ID] == ap.ID {
				atd += e.ClientDelay(ap.ID, c.ID, ch)
			}
		}
		if atd > 0 {
			// K·M/ATD, the anomaly-model cell aggregate.
			total += float64(k) * e.accessShare(cfg, ap, populated) / atd
		}
	}
	return total
}
