package core

import (
	"testing"

	"acorn/internal/ratecontrol"
	"acorn/internal/spectrum"
	"acorn/internal/units"
)

// TestClientPERUsesRequestedWidth pins the width handling of ClientPER: the
// reported PER must come from the rate a card would select *at the requested
// width* (calibrated SNR, width-matched MCS evaluation). A regression once
// calibrated the SNR for 40 MHz but then selected the rate as if on a 20 MHz
// channel, reporting the wrong residual PER for every bonded link.
func TestClientPERUsesRequestedWidth(t *testing.T) {
	n, clients := mixedNetwork()
	est := NewEstimator(n)

	for _, ap := range n.APs {
		for _, c := range clients {
			for _, w := range []spectrum.Width{spectrum.Width20, spectrum.Width40} {
				want := ratecontrol.Best(est.LinkSNR(ap.ID, c.ID, w), w, n.PacketBytes).PER
				if got := est.ClientPER(ap.ID, c.ID, w); got != want {
					t.Fatalf("ClientPER(%s, %s, %v) = %v, want %v", ap.ID, c.ID, w, got, want)
				}
			}
		}
	}

	// The pin above is only meaningful if width-mismatched selection can
	// actually change the reported PER; sweep the SNR range to show at least
	// one operating point where it does.
	discriminates := false
	for snr := -5.0; snr <= 45; snr += 0.25 {
		right := ratecontrol.Best(units.DB(snr), spectrum.Width40, n.PacketBytes).PER
		wrong := ratecontrol.Best(units.DB(snr), spectrum.Width20, n.PacketBytes).PER
		if right != wrong {
			discriminates = true
			break
		}
	}
	if !discriminates {
		t.Fatal("no SNR where width-mismatched rate selection changes the PER; the pin is vacuous")
	}
}
