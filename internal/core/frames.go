package core

// The client side of Section 5.1: "The client receives the beacons from
// every AP in its range and makes appropriate association decisions." This
// file converts decoded over-the-air beacons (internal/proto) into the
// Beacon quantities Algorithm 1 consumes, so the association decision can
// run from actual frames rather than simulator introspection.

import (
	"fmt"
	"sort"

	"acorn/internal/proto"
)

// BeaconFromFrame converts a decoded beacon frame into Algorithm 1's
// Beacon for the inquiring client. The frame's ACORN element carries the
// per-client delay records; the inquirer must appear among them (the AP
// measured d_u during trial association) or the beacon is unusable for the
// decision.
func BeaconFromFrame(f *proto.BeaconFrame, apID, inquirerID string) (Beacon, error) {
	ie := f.ACORN
	if ie == nil {
		return Beacon{}, fmt.Errorf("core: beacon from %s has no ACORN element", apID)
	}
	var du float64
	found := false
	var atd float64
	for _, c := range ie.Clients {
		d := proto.DelayFromWire(c.DelayMicroPerMbit)
		atd += d
		if c.ClientID == inquirerID {
			du = d
			found = true
		}
	}
	if !found {
		return Beacon{}, fmt.Errorf("core: beacon from %s lacks inquirer %s's delay record", apID, inquirerID)
	}
	return Beacon{
		APID:    apID,
		Channel: ie.Channel,
		K:       int(ie.K),
		M:       ie.M(),
		ATD:     atd,
		DU:      du,
	}, nil
}

// FrameFromBeacon builds the over-the-air element for a Beacon the AP
// computed, given the per-client delays (s/Mbit) of every associated client
// including the inquirer. It is the transmit-side counterpart of
// BeaconFromFrame.
func FrameFromBeacon(b Beacon, clientDelays map[string]float64) (*proto.BeaconIE, error) {
	ie := &proto.BeaconIE{
		Channel: b.Channel,
		K:       uint16(b.K),
	}
	ie.SetM(b.M)
	var atd float64
	for id, d := range clientDelays {
		_ = id
		atd += d
	}
	ie.ATDMicroPerMbit = proto.DelayToWire(atd)
	// Stable order for reproducible frames.
	for _, id := range sortedDelayKeys(clientDelays) {
		ie.Clients = append(ie.Clients, proto.ClientDelay{
			ClientID:          id,
			DelayMicroPerMbit: proto.DelayToWire(clientDelays[id]),
		})
	}
	return ie, nil
}

func sortedDelayKeys(m map[string]float64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// AssociateFromBeacons runs Algorithm 1's decision rule over beacons the
// client decoded from the air (one per candidate AP). It mirrors Associate
// exactly, but its inputs come from frames instead of the simulator.
func AssociateFromBeacons(clientID string, beacons []Beacon) AssociationDecision {
	d := AssociationDecision{ClientID: clientID}
	if len(beacons) == 0 {
		return d
	}
	best := -1.0
	for i, bi := range beacons {
		utility := float64(bi.K) * bi.XWith()
		for j, bj := range beacons {
			if j == i {
				continue
			}
			utility += float64(bj.K-1) * bj.XWithout()
		}
		d.Candidates = append(d.Candidates, CandidateUtility{APID: bi.APID, Utility: utility})
		if utility > best {
			best = utility
			d.APID = bi.APID
			d.Utility = utility
		}
	}
	return d
}
