package core

// Statistics and observability bindings of the streaming controller
// (stream.go). The StreamController mutates a plain counter struct under its
// own locks and mirrors every change into the obs registry, so tests can
// assert on exact snapshots while dashboards read the registry.

import (
	"sort"
	"time"

	"acorn/internal/obs"
)

// GateStats is a snapshot of the anti-flap switch gate's decisions.
type GateStats struct {
	// Proposals counts Consider calls; every proposal is either approved or
	// vetoed by exactly one of the three rules.
	Proposals uint64
	// Approved counts switches the gate let through.
	Approved uint64
	// MarginVetoes counts proposals whose relative gain fell below the
	// hysteresis margin (these also reset the AP's streak).
	MarginVetoes uint64
	// StreakVetoes counts proposals that cleared the margin but had not yet
	// repeated for the required K consecutive evaluations.
	StreakVetoes uint64
	// RateVetoes counts proposals blocked by the per-AP token bucket (the
	// streak survives, so the switch commits once a token refills).
	RateVetoes uint64
	// FlappingAPs is the number of APs whose switch count inside FlapWindow
	// is at or above FlapThreshold at snapshot time.
	FlappingAPs int
	// MaxSwitchesPerAP is the largest per-AP switch count inside FlapWindow
	// at snapshot time — the quantity the rate-limit invariant bounds.
	MaxSwitchesPerAP int
}

// StreamStats is a snapshot of the streaming controller.
type StreamStats struct {
	// Offered counts every Offer call accepted (including those that
	// coalesced into or annihilated against a pending entry).
	Offered uint64
	// Coalesced counts offers folded into an already-queued entry for the
	// same client (latest wins) instead of growing the queue.
	Coalesced uint64
	// Annihilated counts queued entries cancelled outright by a later offer
	// (an arrival met by a departure before it was ever processed). Each
	// annihilation retires two events: the queued one and the offer.
	Annihilated uint64
	// ShedReports counts report-kind entries dropped by the overload shed
	// policy (oldest report first — reports are refreshed by the next
	// periodic report, so they are the cheap thing to lose).
	ShedReports uint64
	// ShedCritical counts membership (arrive/depart) entries shed because
	// the queue was saturated with nothing cheaper to drop. These can leave
	// the configuration stale until the watchdog's next full pass, hence
	// the separate ledger.
	ShedCritical uint64
	// Applied counts events the pump has fully processed.
	Applied uint64
	// NoopSkips counts report events whose roaming decision kept the same
	// incarnation on the same AP: the pump skips the conflict-neighbourhood
	// re-optimization outright for them (nothing in the contention state
	// changed), so they ride the cheapest path through the stream.
	NoopSkips uint64
	// Depth is the current number of live queued entries; QueueLen includes
	// not-yet-compacted tombstones; MaxDepth is the high-water Depth.
	Depth    int
	QueueLen int
	MaxDepth int
	// Degraded reports whether the controller is currently in the deferred
	// batched mode; Degradations counts transitions into it.
	Degraded     bool
	Degradations uint64
	// LocalReopts counts bounded conflict-neighbourhood re-optimizations;
	// BatchedReopts counts deferred-dirty batches run on recovery;
	// FullPasses counts whole-network passes (all watchdog-forced —
	// WatchdogFires and FullPasses currently advance together).
	LocalReopts   uint64
	BatchedReopts uint64
	FullPasses    uint64
	WatchdogFires uint64
	// EngineDeferrals counts pumps that skipped local re-optimization
	// because the incremental engines had latched off (degradation ladder
	// rung 2); GenericReopts counts re-optimizations that silently fell
	// back to the generic full-sweep allocator mid-run.
	EngineDeferrals uint64
	GenericReopts   uint64
	// SwitchesApplied counts channel switches actually installed (post-gate).
	SwitchesApplied uint64
	// Gate is the switch gate's snapshot.
	Gate GateStats
	// LatencyP50/LatencyP99 are decision-latency quantiles (enqueue to
	// applied) over the sliding StreamOptions.LatencyWindow — "how is the
	// stream doing right now", so a late-run regression is visible
	// instead of averaged into the whole run. LatencyWindowCount is how
	// many samples are inside the window.
	LatencyP50         time.Duration
	LatencyP99         time.Duration
	LatencyWindowCount uint64
	// LatencyP50Cum/LatencyP99Cum are the exact (sort-on-read) quantiles
	// over the ring of the last StreamOptions.RecordLatencies events —
	// effectively whole-run for bounded runs, which is what benchmarks
	// report; zero when recording is disabled. LatencyCount is how many
	// samples that ring holds.
	LatencyP50Cum time.Duration
	LatencyP99Cum time.Duration
	LatencyCount  int
	// NoopLatencyP50/NoopLatencyP99 are the same exact ring quantiles
	// restricted to no-op report decisions — the latency floor of the
	// fast path, which BENCH_stream reports alongside the overall figures.
	NoopLatencyP50   time.Duration
	NoopLatencyP99   time.Duration
	NoopLatencyCount int
}

// latRing is a fixed-size ring of the most recent decision latencies; the
// quantiles are exact over the retained window (sort-on-read — reads are
// rare, writes are per-event).
type latRing struct {
	buf  []time.Duration
	next int
	full bool
}

func newLatRing(n int) *latRing {
	if n <= 0 {
		return nil
	}
	return &latRing{buf: make([]time.Duration, n)}
}

func (r *latRing) add(d time.Duration) {
	if r == nil {
		return
	}
	r.buf[r.next] = d
	r.next++
	if r.next == len(r.buf) {
		r.next = 0
		r.full = true
	}
}

func (r *latRing) count() int {
	if r == nil {
		return 0
	}
	if r.full {
		return len(r.buf)
	}
	return r.next
}

// quantile returns the p-quantile (0 ≤ p ≤ 1, nearest-rank) of the retained
// samples, or zero when empty.
func (r *latRing) quantile(p float64) time.Duration {
	n := r.count()
	if n == 0 {
		return 0
	}
	s := make([]time.Duration, n)
	if r.full {
		copy(s, r.buf)
	} else {
		copy(s, r.buf[:r.next])
	}
	sort.Slice(s, func(a, b int) bool { return s[a] < s[b] })
	i := int(p*float64(n-1) + 0.5)
	if i < 0 {
		i = 0
	}
	if i >= n {
		i = n - 1
	}
	return s[i]
}

// streamMetrics holds the controller's bound obs handles so the hot path
// never re-resolves metric names.
type streamMetrics struct {
	depth        *obs.Gauge
	offered      *obs.Counter
	coalesced    *obs.Counter
	annihilated  *obs.Counter
	shed         *obs.CounterVec
	applied      *obs.Counter
	decision     *obs.Histogram
	reopt        *obs.Histogram
	switches     *obs.Counter
	vetoes       *obs.CounterVec
	degraded     *obs.Gauge
	degradations *obs.Counter
	noopSkips    *obs.Counter
	localReopts  *obs.Counter
	batched      *obs.Counter
	fullPasses   *obs.Counter
	watchdog     *obs.Counter
	flapping     *obs.Gauge
}

func bindStreamMetrics(reg *obs.Registry) *streamMetrics {
	return &streamMetrics{
		depth: reg.Gauge("acorn_stream_queue_depth",
			"live entries in the streaming controller's event queue"),
		offered: reg.Counter("acorn_stream_events_offered_total",
			"events offered to the streaming controller"),
		coalesced: reg.Counter("acorn_stream_events_coalesced_total",
			"offers folded into an already-queued entry (latest wins)"),
		annihilated: reg.Counter("acorn_stream_events_annihilated_total",
			"queued entries cancelled by an opposite later offer"),
		shed: reg.CounterVec("acorn_stream_events_shed_total",
			"events dropped by the overload shed policy", "class"),
		applied: reg.Counter("acorn_stream_events_applied_total",
			"events fully processed by the pump"),
		decision: reg.Histogram("acorn_stream_decision_seconds",
			"per-event decision latency, enqueue to applied",
			obs.ExpBuckets(1e-6, 4, 12)),
		reopt: reg.Histogram("acorn_stream_reopt_seconds",
			"wall time of one bounded re-optimization",
			obs.ExpBuckets(1e-6, 4, 12)),
		switches: reg.Counter("acorn_stream_switches_applied_total",
			"channel switches installed by the streaming controller (post-gate)"),
		vetoes: reg.CounterVec("acorn_stream_gate_vetoes_total",
			"switch proposals vetoed by the anti-flap gate", "reason"),
		degraded: reg.Gauge("acorn_stream_degraded",
			"1 while the streaming controller is in deferred batched mode"),
		degradations: reg.Counter("acorn_stream_degradations_total",
			"transitions into deferred batched mode"),
		noopSkips: reg.Counter("acorn_core_stream_noop_skips_total",
			"report events whose no-op roaming decision skipped re-optimization"),
		localReopts: reg.Counter("acorn_stream_local_reopts_total",
			"bounded conflict-neighbourhood re-optimizations"),
		batched: reg.Counter("acorn_stream_batched_reopts_total",
			"deferred dirty batches re-optimized on recovery"),
		fullPasses: reg.Counter("acorn_stream_full_passes_total",
			"whole-network passes run by the streaming controller"),
		watchdog: reg.Counter("acorn_stream_watchdog_fires_total",
			"watchdog-forced full periodic passes"),
		flapping: reg.Gauge("acorn_stream_flapping_aps",
			"APs at or above the flap threshold inside the flap window"),
	}
}
