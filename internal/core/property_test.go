package core

import (
	"fmt"
	"math"
	"testing"
	"testing/quick"

	"acorn/internal/rf"
	"acorn/internal/stats"
	"acorn/internal/units"
	"acorn/internal/wlan"
)

// randomNetwork builds an arbitrary small deployment from a seed: 2–5 APs
// on a loose grid, up to 10 clients with random positions and obstruction
// losses spanning clean to dead.
func randomNetwork(seed int64) (*wlan.Network, []*wlan.Client) {
	rng := stats.NewRand(seed)
	nAPs := 2 + rng.Intn(4)
	var aps []*wlan.AP
	for i := 0; i < nAPs; i++ {
		aps = append(aps, &wlan.AP{
			ID:      fmt.Sprintf("AP%d", i+1),
			Pos:     rf.Point{X: float64(i%3)*80 + rng.Float64()*20, Y: float64(i/3)*80 + rng.Float64()*20},
			TxPower: 18,
		})
	}
	nClients := 1 + rng.Intn(10)
	var clients []*wlan.Client
	for i := 0; i < nClients; i++ {
		home := aps[rng.Intn(nAPs)]
		c := &wlan.Client{
			ID:  fmt.Sprintf("u%02d", i+1),
			Pos: rf.Point{X: home.Pos.X + rng.Float64()*30 - 15, Y: home.Pos.Y + rng.Float64()*30 - 15},
		}
		if rng.Float64() < 0.5 {
			wall := units.DB(rng.Float64() * 55)
			c.ExtraLoss = map[string]units.DB{}
			for _, ap := range aps {
				c.ExtraLoss[ap.ID] = wall
			}
		}
		clients = append(clients, c)
	}
	return wlan.NewNetwork(aps, clients), clients
}

func TestPropertyAutoConfigureAlwaysValid(t *testing.T) {
	f := func(seedRaw int16) bool {
		seed := int64(seedRaw)
		n, clients := randomNetwork(seed)
		ctrl, err := NewController(n, seed)
		if err != nil {
			t.Logf("seed %d: controller: %v", seed, err)
			return false
		}
		rep := ctrl.AutoConfigure(clients)
		cfg := ctrl.Config()
		if err := cfg.Validate(n); err != nil {
			t.Logf("seed %d: invalid config: %v", seed, err)
			return false
		}
		// Every client in range of some AP is associated.
		for _, c := range clients {
			if len(n.APsInRange(c)) > 0 && cfg.Assoc[c.ID] == "" {
				t.Logf("seed %d: in-range client %s unassociated", seed, c.ID)
				return false
			}
		}
		// Totals are finite and nonnegative.
		if math.IsNaN(rep.TotalUDP) || math.IsInf(rep.TotalUDP, 0) || rep.TotalUDP < 0 {
			t.Logf("seed %d: bad total %v", seed, rep.TotalUDP)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestPropertyAssociationChoosesCandidate(t *testing.T) {
	f := func(seedRaw int16) bool {
		seed := int64(seedRaw)
		n, clients := randomNetwork(seed)
		cfg := wlan.NewConfig()
		rng := stats.NewRand(seed)
		RandomInitial(n, cfg, rng.Intn)
		for _, u := range clients {
			d := Associate(n, cfg, u)
			inRange := n.APsInRange(u)
			if len(inRange) == 0 {
				if d.APID != "" {
					t.Logf("seed %d: out-of-range %s associated", seed, u.ID)
					return false
				}
				continue
			}
			found := false
			for _, ap := range inRange {
				if ap.ID == d.APID {
					found = true
				}
			}
			if !found {
				t.Logf("seed %d: %s chose %q outside its candidate set", seed, u.ID, d.APID)
				return false
			}
			// Utility must be finite.
			if math.IsNaN(d.Utility) || math.IsInf(d.Utility, 0) {
				t.Logf("seed %d: non-finite utility %v", seed, d.Utility)
				return false
			}
			cfg.SetAssoc(u.ID, d.APID)
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestPropertyAllocationNeverRegressesEstimate(t *testing.T) {
	f := func(seedRaw int16) bool {
		seed := int64(seedRaw)
		n, clients := randomNetwork(seed)
		cfg := wlan.NewConfig()
		rng := stats.NewRand(seed)
		RandomInitial(n, cfg, rng.Intn)
		AssociateAll(n, cfg, clients)
		est := NewEstimator(n)
		_, st := AllocateChannels(n, cfg, est, AllocOptions{})
		if st.FinalEstimate+1e-9 < st.InitialEstimate {
			t.Logf("seed %d: allocation regressed %v → %v", seed, st.InitialEstimate, st.FinalEstimate)
			return false
		}
		prev := st.InitialEstimate
		for _, y := range st.Trajectory {
			if y+1e-9 < prev {
				t.Logf("seed %d: trajectory regressed", seed)
				return false
			}
			prev = y
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestPropertyAllocationIdempotentAtFixpoint(t *testing.T) {
	// Running Algorithm 2 again right after it converged must not move
	// the estimate (it may permute equal-value channels).
	f := func(seedRaw int16) bool {
		seed := int64(seedRaw)
		n, clients := randomNetwork(seed)
		cfg := wlan.NewConfig()
		rng := stats.NewRand(seed)
		RandomInitial(n, cfg, rng.Intn)
		AssociateAll(n, cfg, clients)
		est := NewEstimator(n)
		first, st1 := AllocateChannels(n, cfg, est, AllocOptions{})
		_, st2 := AllocateChannels(n, first, est, AllocOptions{})
		if st2.FinalEstimate+1e-6 < st1.FinalEstimate {
			t.Logf("seed %d: second run regressed %v → %v", seed, st1.FinalEstimate, st2.FinalEstimate)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestPropertyEvaluatorInvariants(t *testing.T) {
	f := func(seedRaw int16) bool {
		seed := int64(seedRaw)
		n, clients := randomNetwork(seed)
		ctrl, err := NewController(n, seed)
		if err != nil {
			return false
		}
		rep := ctrl.AutoConfigure(clients)
		var sumUDP, sumTCP float64
		for _, cell := range rep.Cells {
			sumUDP += cell.ThroughputUDP
			sumTCP += cell.ThroughputTCP
			if cell.ThroughputTCP > cell.ThroughputUDP+1e-9 {
				t.Logf("seed %d: %s TCP above UDP", seed, cell.APID)
				return false
			}
			// Performance anomaly: equal per-client UDP throughput.
			for i := 1; i < len(cell.Clients); i++ {
				if math.Abs(cell.Clients[i].ThroughputUDP-cell.Clients[0].ThroughputUDP) > 1e-9 {
					t.Logf("seed %d: unequal per-client shares in %s", seed, cell.APID)
					return false
				}
			}
			// Access share within (0, 1].
			if cell.AccessShare <= 0 || cell.AccessShare > 1 {
				t.Logf("seed %d: access share %v", seed, cell.AccessShare)
				return false
			}
		}
		return math.Abs(sumUDP-rep.TotalUDP) < 1e-6 && math.Abs(sumTCP-rep.TotalTCP) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
