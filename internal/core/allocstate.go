package core

// Incremental evaluation state for Algorithm 2 (the tentpole of the
// allocator-scaling work; see DESIGN.md §10).
//
// The generic path prices a candidate (AP i on channel c) with a full
// estimator sweep: O(APs·clients + APs²) map-heavy work per candidate. But
// between two candidates only one assignment differs, and the estimator's
// objective is a sum of per-cell terms
//
//	Y(cfg) = Σ_i  k_i · M_i / ATD_i      (populated cells, AP order)
//
// where k_i and ATD_i depend only on the association map and the cell's
// width (two widths → fully precomputable), and M_i = 1/(contenders+1)
// depends only on which *conflicting* neighbors cell i has. Moving AP i
// from channel a to channel b therefore changes exactly the cells
//
//	C = {i} ∪ {j ∈ N(i) : Conflicts(a, ch_j) ≠ Conflicts(b, ch_j)}
//
// (N(i) = populated contenders of i, a static graph during one run). The
// incremental engine caches every cell term, recomputes only C, and re-sums
// the cached terms in the same left-to-right AP order the estimator uses.
// Because every term is produced by the same float expression and the sum
// runs in the same order over bit-identical values, the result is
// bit-identical to Estimator.NetworkThroughput — not merely close. That is
// the property the golden-trace test and the parallel-equivalence tests
// pin.
//
// Channel conflicts reduce to bitmask intersection: each 20 MHz component
// gets one bit, a channel's mask is the OR of its component bits, and
// Conflicts(a, b) ⟺ mask(a) ∩ mask(b) ≠ ∅. This removes the slice
// allocations of spectrum.Channel.Conflicts from the hot path. Masks are
// multi-word bitsets (internal/bitset) whose word count is fixed when the
// state is built from the number of distinct components in play, so a
// campus-scale band with hundreds of components runs on the same engine —
// there is no 64-component fallback.

import (
	"sort"

	"acorn/internal/bitset"
	"acorn/internal/spectrum"
	"acorn/internal/wlan"
)

// allocState is the immutable-per-run part of the incremental engine plus
// the base view holding the committed configuration. It is built once per
// AllocateChannels call.
type allocState struct {
	n *wlan.Network

	// apIDs mirrors n.APs order (the estimator's summation order); apIdx
	// inverts it. sortedIdx lists AP indices in lexicographic ID order —
	// the greedy tie-breaking order of the search.
	apIDs     []string
	apIdx     map[string]int
	sortedIdx []int

	// populated is the cell size k_i; popIdx lists populated AP indices
	// ascending (the cells that contribute to the objective).
	populated []int
	popIdx    []int

	// atd holds the precomputed aggregate total delay of every populated
	// cell for both widths ([0]=20 MHz, [1]=40 MHz), summed in n.Clients
	// order exactly as Estimator.NetworkThroughput does.
	atd [][2]float64

	// neighbors is the static contention graph restricted to populated
	// cells: neighbors[i] lists populated j ≠ i with Contend(i, j), in
	// ascending index order. Contention is channel-independent, so the
	// graph never changes during a run.
	neighbors [][]int32

	// channels is the candidate color set (band order, as the generic
	// path iterates it); chMask and chWidthIdx are its per-candidate
	// conflict masks and atd column indices. compWords is the mask word
	// count (fixed at build from nComp, the number of distinct 20 MHz
	// components across the band and the current configuration).
	channels   []spectrum.Channel
	chMask     bitset.Field
	chWidthIdx []uint8
	compWords  int
	nComp      int

	// comps lists the connected components of the populated contention
	// graph, each a sorted slice of AP indices, ordered by smallest member
	// (see components.go). The sharded solver fans these across workers;
	// the metrics report their count and sizes.
	comps [][]int32

	// pairsScanned/pairsPruned count the populated pairs that reached
	// contendPair vs. were pruned by the spatial index during the graph
	// build; spatial records whether the index ran (see spatial.go).
	pairsScanned int
	pairsPruned  int
	spatial      bool

	// base is the committed configuration's view; scratch views for
	// worker-parallel rank scans are cloned from it on demand.
	base allocView

	// commitScratch collects the changed-cell set of the last commit.
	commitScratch []int32
}

// allocView is one mutable view of the search state: the per-AP channel
// masks and width columns, the cached per-cell terms, and the cached total.
// The base view tracks the committed configuration; each worker owns a
// private view so candidate evaluations never contend. A view's arrays are
// versioned against the base so workers resynchronize with two copies
// instead of re-deriving anything.
type allocView struct {
	st      *allocState
	mask    bitset.Field
	wIdx    []uint8
	cellY   []float64
	curY    float64
	version uint64

	// Apply/revert scratch for evalMove: touched cells, their saved terms,
	// and the moving AP's saved mask (multi-word, so it cannot ride in a
	// register like the old uint64 did).
	touched []int32
	savedY  []float64
	oldMask bitset.Set

	// evals accumulates this view's work counters; the runner folds them
	// into the run totals after every parallel round, keeping the totals
	// independent of how work was sharded.
	evals EvalStats
}

// newAllocState builds the incremental state for one run, or returns nil
// when the configuration cannot be represented (an empty band, or a
// populated AP without an assigned channel) — the caller then falls back to
// the generic path, which handles anything. The component count no longer
// bounds representability: masks are sized to fit whatever the band and the
// configuration hold. opts supplies the spatial-index knobs of the
// contention-graph build; the graph is identical with or without the index.
func newAllocState(n *wlan.Network, cfg *wlan.Config, est *Estimator, opts AllocOptions) *allocState {
	st := &allocState{
		n:         n,
		apIDs:     make([]string, len(n.APs)),
		apIdx:     make(map[string]int, len(n.APs)),
		populated: make([]int, len(n.APs)),
		atd:       make([][2]float64, len(n.APs)),
		neighbors: make([][]int32, len(n.APs)),
		channels:  n.Band.AllChannels(),
	}
	for i, ap := range n.APs {
		st.apIDs[i] = ap.ID
		st.apIdx[ap.ID] = i
	}
	if len(st.channels) == 0 {
		return nil
	}
	st.sortedIdx = make([]int, len(st.apIDs))
	for i := range st.sortedIdx {
		st.sortedIdx[i] = i
	}
	sort.Slice(st.sortedIdx, func(a, b int) bool {
		return st.apIDs[st.sortedIdx[a]] < st.apIDs[st.sortedIdx[b]]
	})

	// Component → bit assignment: band components first, then whatever the
	// current configuration holds beyond the band. Two passes — the first
	// enumerates every component in play so the mask word count is known
	// before any mask is built, the second fills the masks (and can no
	// longer encounter a new component).
	compBit := make(map[spectrum.ChannelID]uint, 16)
	enumerate := func(ch spectrum.Channel) {
		for _, comp := range ch.Components() {
			if _, ok := compBit[comp]; !ok {
				compBit[comp] = uint(len(compBit))
			}
		}
	}
	for _, ch := range st.channels {
		enumerate(ch)
	}
	for _, ap := range n.APs {
		if ch := cfg.Channels[ap.ID]; !ch.IsZero() {
			enumerate(ch)
		}
	}
	st.nComp = len(compBit)
	st.compWords = bitset.Words(st.nComp)
	maskInto := func(dst bitset.Set, ch spectrum.Channel) {
		for _, comp := range ch.Components() {
			dst.SetBit(compBit[comp])
		}
	}
	st.chMask = bitset.NewField(len(st.channels), st.compWords)
	st.chWidthIdx = make([]uint8, len(st.channels))
	for ci, ch := range st.channels {
		maskInto(st.chMask.At(ci), ch)
		st.chWidthIdx[ci] = widthIdx(ch.Width)
	}

	// Cell population, mirroring the estimator: count every association,
	// read counts only for known APs.
	for _, apID := range cfg.Assoc {
		if i, ok := st.apIdx[apID]; ok {
			st.populated[i]++
		}
	}
	for i := range st.populated {
		if st.populated[i] > 0 {
			st.popIdx = append(st.popIdx, i)
		}
	}

	// Current assignment masks. A populated cell must hold a representable
	// channel; unpopulated cells may sit on anything (they contribute
	// nothing and conflict with nothing when unassigned).
	v := &st.base
	v.st = st
	v.mask = bitset.NewField(len(n.APs), st.compWords)
	v.wIdx = make([]uint8, len(n.APs))
	v.cellY = make([]float64, len(n.APs))
	v.oldMask = bitset.New(st.compWords)
	for i, ap := range n.APs {
		ch := cfg.Channels[ap.ID]
		if ch.IsZero() {
			if st.populated[i] > 0 {
				return nil
			}
			continue
		}
		maskInto(v.mask.At(i), ch)
		v.wIdx[i] = widthIdx(ch.Width)
	}

	// Per-cell delay tables for both widths, summed in n.Clients order —
	// the exact order (and therefore the exact float sums) the estimator
	// produces. Clients associated to unknown APs are skipped, like the
	// estimator's per-cell loop never visits them.
	clientsOf := make([][]*wlan.Client, len(n.APs))
	for _, c := range n.Clients {
		home, ok := st.apIdx[cfg.Assoc[c.ID]]
		if !ok {
			continue
		}
		st.atd[home][0] += est.clientDelayWidth(st.apIDs[home], c.ID, spectrum.Width20)
		st.atd[home][1] += est.clientDelayWidth(st.apIDs[home], c.ID, spectrum.Width40)
		clientsOf[home] = append(clientsOf[home], c)
	}

	// Static contention graph over populated cells. The predicate
	// replicates wlan.Network.Contend for the pair (i, j) — the same
	// direction the estimator's cache would fix on first query — but walks
	// only the two cells' clients instead of every client in the network.
	// When the spatial index yields a sound cutoff, only candidate pairs
	// reach the predicate; pruned pairs provably cannot contend, so the
	// adjacency is identical either way (candidates arrive in the same
	// (a ascending, j ascending) order the full scan uses).
	if rows, scanned, ok := spatialCandidates(n, st.popIdx, clientsOf, opts); ok {
		st.spatial = true
		st.pairsScanned = scanned
		st.pairsPruned = totalPairs(len(st.popIdx)) - scanned
		for a, i := range st.popIdx {
			for _, j32 := range rows[a] {
				j := int(j32)
				if st.contendPair(i, j, clientsOf) {
					st.neighbors[i] = append(st.neighbors[i], int32(j))
					st.neighbors[j] = append(st.neighbors[j], int32(i))
				}
			}
		}
	} else {
		st.pairsScanned = totalPairs(len(st.popIdx))
		for a := 0; a < len(st.popIdx); a++ {
			i := st.popIdx[a]
			for b := a + 1; b < len(st.popIdx); b++ {
				j := st.popIdx[b]
				if st.contendPair(i, j, clientsOf) {
					st.neighbors[i] = append(st.neighbors[i], int32(j))
					st.neighbors[j] = append(st.neighbors[j], int32(i))
				}
			}
		}
	}

	// Connected components of the populated contention graph — the units
	// of independence the sharded solver and the metrics report on.
	st.comps = contentionComponents(st.neighbors, st.popIdx)

	// Seed the per-cell terms and the cached total.
	for _, i := range st.popIdx {
		v.recompute(i)
	}
	v.curY = v.resum()
	return st
}

// widthIdx maps a channel width to its atd column.
func widthIdx(w spectrum.Width) uint8 {
	if w == spectrum.Width40 {
		return 1
	}
	return 0
}

// contendPair reports whether APs i and j contend for the medium: the
// predicate of wlan.Network.Contend (carrier-sense between the APs, or
// either AP carrier-sensing a client of the other), restricted to the two
// cells' own clients. Boolean-equivalent to n.Contend(APs[i], APs[j], cfg).
func (st *allocState) contendPair(i, j int, clientsOf [][]*wlan.Client) bool {
	n := st.n
	a, b := n.APs[i], n.APs[j]
	if n.ContendOverride != nil {
		return n.ContendOverride(a.ID, b.ID)
	}
	if n.Prop.RxPower(a.TxPower, a.Pos.DistanceTo(b.Pos), 0) >= n.CSThreshold {
		return true
	}
	for _, cl := range clientsOf[i] {
		if n.Prop.RxPower(b.TxPower, b.Pos.DistanceTo(cl.Pos), 0) >= n.CSThreshold {
			return true
		}
	}
	for _, cl := range clientsOf[j] {
		if n.Prop.RxPower(a.TxPower, a.Pos.DistanceTo(cl.Pos), 0) >= n.CSThreshold {
			return true
		}
	}
	return false
}

// newView clones the base view for a worker.
func (st *allocState) newView() *allocView {
	v := &allocView{
		st:      st,
		mask:    st.base.mask.Clone(),
		wIdx:    append([]uint8(nil), st.base.wIdx...),
		cellY:   append([]float64(nil), st.base.cellY...),
		oldMask: bitset.New(st.compWords),
	}
	v.curY = st.base.curY
	v.version = st.base.version
	return v
}

// syncFrom refreshes a worker view to the base's committed state. Cheap:
// three array copies, no recomputation.
func (v *allocView) syncFrom(base *allocView) {
	if v.version == base.version {
		return
	}
	v.mask.CopyFrom(base.mask)
	copy(v.wIdx, base.wIdx)
	copy(v.cellY, base.cellY)
	v.curY = base.curY
	v.version = base.version
}

// recompute refreshes the cached term of cell i from the view's current
// masks. The expression — including operation order — matches the
// estimator's `float64(k) * accessShare / atd` term exactly.
func (v *allocView) recompute(i int) {
	st := v.st
	v.evals.CellRecomputes++
	atd := st.atd[i][v.wIdx[i]]
	if atd <= 0 {
		// The estimator skips such cells; a zero term keeps the resum
		// bit-identical (adding +0.0 to a non-negative partial sum is
		// exact).
		v.cellY[i] = 0
		return
	}
	m := v.mask.At(i)
	contenders := 0
	for _, j := range st.neighbors[i] {
		if v.mask.At(int(j)).Intersects(m) {
			contenders++
		}
	}
	share := 1 / float64(contenders+1)
	v.cellY[i] = float64(st.populated[i]) * share / atd
}

// resum folds the cached per-cell terms in AP order — the estimator's
// summation order, which the comment in NetworkThroughput pins as the
// determinism contract.
func (v *allocView) resum() float64 {
	var total float64
	for _, i := range v.st.popIdx {
		total += v.cellY[i]
	}
	return total
}

// evalMove prices the candidate "AP i moves to the channel with mask m and
// width column w": it recomputes the affected cells, resums, and reverts.
// Bit-identical to a full estimator sweep of the hypothetical
// configuration.
func (v *allocView) evalMove(i int, m bitset.Set, w uint8) float64 {
	st := v.st
	maskI := v.mask.At(i)
	if m.Equal(maskI) || st.populated[i] == 0 {
		// Same channel, or a cell that contributes nothing and conflicts
		// with nothing: the objective cannot change.
		return v.curY
	}
	v.evals.DeltaEvals++
	v.touched = v.touched[:0]
	v.savedY = v.savedY[:0]
	old := v.oldMask
	old.Copy(maskI)
	oldW := v.wIdx[i]

	v.touched = append(v.touched, int32(i))
	v.savedY = append(v.savedY, v.cellY[i])
	maskI.Copy(m)
	v.wIdx[i] = w
	v.recompute(i)
	for _, j := range st.neighbors[i] {
		nm := v.mask.At(int(j))
		if nm.Intersects(old) != nm.Intersects(m) {
			v.touched = append(v.touched, j)
			v.savedY = append(v.savedY, v.cellY[j])
			v.recompute(int(j))
		}
	}
	total := v.resum()

	for k, j := range v.touched {
		v.cellY[j] = v.savedY[k]
	}
	maskI.Copy(old)
	v.wIdx[i] = oldW
	return total
}

// rankOf runs the candidate argmax for AP i over every channel in the band
// — the incremental counterpart of bestChannelFor, with identical argmax
// semantics (first maximum in candidate order wins; the current channel
// prices at the cached total). It returns the winning candidate's index
// into st.channels and its evaluated total.
func (v *allocView) rankOf(i int) (int, float64) {
	st := v.st
	v.evals.RankEvals++
	bestCi, bestY := 0, -1.0
	for ci := range st.channels {
		y := v.evalMove(i, st.chMask.At(ci), st.chWidthIdx[ci])
		if y > bestY {
			bestCi, bestY = ci, y
		}
	}
	return bestCi, bestY
}

// commitMove installs "AP i moves to candidate ci" into the base view and
// returns the changed-cell set C = {i} ∪ {flipped neighbors} (valid until
// the next commit). The caller updates curY with the winner's evaluated
// total — the same bits commitMove's own resum would produce.
func (st *allocState) commitMove(i, ci int) []int32 {
	v := &st.base
	m, w := st.chMask.At(ci), st.chWidthIdx[ci]
	old := v.oldMask // scratch is free here: commits never overlap an eval
	old.Copy(v.mask.At(i))
	changed := st.commitScratch[:0]

	v.mask.At(i).Copy(m)
	v.wIdx[i] = w
	changed = append(changed, int32(i))
	v.recompute(i)
	for _, j := range st.neighbors[i] {
		nm := v.mask.At(int(j))
		if nm.Intersects(old) != nm.Intersects(m) {
			changed = append(changed, j)
			v.recompute(int(j))
		}
	}
	v.curY = v.resum()
	v.version++
	st.commitScratch = changed
	return changed
}
