package core

import (
	"math"
	"testing"

	"acorn/internal/proto"
	"acorn/internal/spectrum"
)

// TestOverTheAirAssociationMatchesDirect is the end-to-end client path: the
// simulator's beacons are serialized into real 802.11 beacon frames,
// transmitted (byte-for-byte), decoded, and fed to the over-the-air
// decision rule. The decision must match the in-simulator Associate call
// exactly.
func TestOverTheAirAssociationMatchesDirect(t *testing.T) {
	n, clients := mixedNetwork()
	cfg := staticConfig(n)
	cfg.Assoc["g1"] = "AP1"
	cfg.Assoc["g2"] = "AP2"
	u := clients[2] // p2, still unassociated

	direct := Associate(n, cfg, u)
	if direct.APID == "" {
		t.Fatal("direct association failed")
	}

	// AP side: compute beacons, wrap them in frames.
	var decoded []Beacon
	for _, ap := range n.APsInRange(u) {
		b := GatherBeacon(n, cfg, ap, u)
		delays := map[string]float64{u.ID: b.DU}
		for _, id := range cfg.ClientsOf(ap.ID) {
			if id != u.ID {
				delays[id] = clientDelay(n, ap, n.Client(id), cfg.Channels[ap.ID])
			}
		}
		ie, err := FrameFromBeacon(b, delays)
		if err != nil {
			t.Fatal(err)
		}
		frame := &proto.BeaconFrame{
			BSSID: [6]byte{0x02, 0, 0, 0, 0, byte(len(decoded))},
			SSID:  "acorn",
			ACORN: ie,
		}
		wire, err := frame.MarshalFrame()
		if err != nil {
			t.Fatal(err)
		}
		// Client side: decode the frame and recover the beacon.
		rx, err := proto.UnmarshalFrame(wire)
		if err != nil {
			t.Fatal(err)
		}
		back, err := BeaconFromFrame(rx, ap.ID, u.ID)
		if err != nil {
			t.Fatal(err)
		}
		decoded = append(decoded, back)
	}

	otA := AssociateFromBeacons(u.ID, decoded)
	if otA.APID != direct.APID {
		t.Errorf("over-the-air decision %s differs from direct %s", otA.APID, direct.APID)
	}
	// Utilities agree to wire quantization (µs/Mbit delays, ‰ access
	// share).
	if math.Abs(otA.Utility-direct.Utility) > 0.01*math.Abs(direct.Utility)+1e-6 {
		t.Errorf("utility drifted through the wire: %v vs %v", otA.Utility, direct.Utility)
	}
}

func TestBeaconFromFrameErrors(t *testing.T) {
	ie := &proto.BeaconIE{Channel: spectrum.NewChannel20(36), K: 2}
	ie.SetM(1)
	ie.Clients = []proto.ClientDelay{{ClientID: "other", DelayMicroPerMbit: 100}}
	f := &proto.BeaconFrame{ACORN: ie}
	if _, err := BeaconFromFrame(f, "AP1", "me"); err == nil {
		t.Error("beacon without the inquirer's record accepted")
	}
	if _, err := BeaconFromFrame(&proto.BeaconFrame{}, "AP1", "me"); err == nil {
		t.Error("beacon without ACORN element accepted")
	}
	ie.Clients = append(ie.Clients, proto.ClientDelay{ClientID: "me", DelayMicroPerMbit: 7500})
	b, err := BeaconFromFrame(f, "AP1", "me")
	if err != nil {
		t.Fatal(err)
	}
	if b.DU != 0.0075 {
		t.Errorf("DU = %v, want 0.0075", b.DU)
	}
	if b.ATD != 0.0076 {
		t.Errorf("ATD = %v, want 0.0076", b.ATD)
	}
}

func TestAssociateFromBeaconsEmpty(t *testing.T) {
	d := AssociateFromBeacons("u", nil)
	if d.APID != "" {
		t.Error("empty beacon set should not associate")
	}
}
