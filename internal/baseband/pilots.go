package baseband

// Trained channel estimation. The genie-CSI receiver knows the channel
// exactly; a real 802.11n receiver estimates it from known training
// symbols. This file adds both halves, following the 802.11n structure:
//
//   - the transmitter prepends one full-band training symbol per antenna
//     (the HT-LTF equivalent): known BPSK values on every used tone,
//     antennas sounding on separate symbol times so the receiver can
//     separate their channels;
//   - pilot tones at the standard positions (±7, ±21 at 20 MHz; ±11, ±25,
//     ±53 at 40 MHz) are transmitted throughout the payload, as the
//     standard does for phase tracking;
//   - the receiver least-squares-estimates the per-tone channel of every
//     antenna path from its training symbol — exact up to noise, even on
//     frequency-selective channels, because the LTF covers every tone
//     (sparse pilots alone cannot resolve an 8-tap channel, which is
//     precisely why the standard trains on the LTF).
//
// The csi ablation (TestPilotVsGenieGap) measures what trained estimation
// costs versus genie knowledge: the per-tone LS estimate carries the noise
// of a single observation.

import (
	"acorn/internal/dsp"
	"acorn/internal/phy"
	"acorn/internal/spectrum"
)

// CSIMode selects how the receiver obtains channel knowledge.
type CSIMode int

const (
	// CSIGenie hands the receiver the exact channel realization (the
	// default, standard for BER reference curves).
	CSIGenie CSIMode = iota
	// CSIPilot estimates the channel from the transmitted training
	// symbols (HT-LTF equivalent) — the real receiver's path.
	CSIPilot
)

// pilotValue is the known BPSK pilot symbol (all ones; a real system
// scrambles the sign per symbol, which changes nothing for estimation).
const pilotValue = 1.0

// insertPilots writes pilots into the frequency grid for the sounding
// antenna of the given OFDM symbol index. Antenna 0 sounds on even symbols,
// antenna 1 on odd ones — time-orthogonal, so the phase-tracking pilots of
// the two antennas never collide.
func insertPilots(grid []complex128, bins []int, antenna, symbolIdx int, gain float64) {
	if symbolIdx%2 != antenna%2 {
		return // the other antenna sounds this symbol
	}
	for _, bin := range bins {
		grid[bin] = complex(pilotValue*gain, 0)
	}
}

// ltfSign is the deterministic BPSK training value (+1/−1) of a tone. The
// sign pattern breaks up the waveform's peak factor like the standard's LTF
// sequence; any fixed full-band pattern works for LS estimation.
func ltfSign(bin int) float64 {
	// A cheap hash → sign.
	h := uint32(bin) * 2654435761
	if h&0x10000 != 0 {
		return -1
	}
	return 1
}

// ltfSymbol builds the time-domain training symbol for one antenna: known
// BPSK on every used tone (data + pilot bins) at the given amplitude.
func (c ChainConfig) ltfSymbol(gain float64) []complex128 {
	grid := make([]complex128, c.FFTSize)
	for _, bin := range c.DataCarriers {
		grid[bin] = complex(ltfSign(bin)*gain, 0)
	}
	for _, bin := range c.PilotCarriers {
		grid[bin] = complex(ltfSign(bin)*gain, 0)
	}
	return c.gridToTimeDomain(grid)
}

// estimateFromLTF least-squares-estimates each antenna path's frequency
// response at every data carrier from the two received training symbols,
// then denoises by truncating the implied impulse response to the cyclic
// prefix length (the physical channel cannot be longer, so everything past
// the CP is estimation noise — a 6 dB noise reduction for a CP of N/4).
// ltfGrids[r][t] is RX antenna r's FFT grid of training symbol t (antenna t
// sounded symbol t); gain is the transmitted training amplitude.
func estimateFromLTF(ltfGrids [2][2][]complex128, cfg ChainConfig, gain float64) toneResponse {
	var h toneResponse
	for tx := 0; tx < 2; tx++ {
		for r := 0; r < 2; r++ {
			grid := ltfGrids[r][tx]
			full := make([]complex128, cfg.FFTSize)
			if grid != nil {
				for bin := range full {
					full[bin] = grid[bin] / complex(ltfSign(bin)*gain, 0)
				}
				denoiseByCPTruncation(full, cfg.CPLen)
			} else {
				for bin := range full {
					full[bin] = 1
				}
			}
			perTone := make([]complex128, len(cfg.DataCarriers))
			for i, bin := range cfg.DataCarriers {
				perTone[i] = full[bin]
			}
			h[tx][r] = perTone
		}
	}
	return h
}

// denoiseByCPTruncation transforms a per-bin channel estimate to the time
// domain, zeroes taps beyond the cyclic prefix, and transforms back.
func denoiseByCPTruncation(est []complex128, cpLen int) {
	dsp.IFFT(est)
	for i := cpLen; i < len(est); i++ {
		est[i] = 0
	}
	dsp.FFT(est)
}

// LTFSymbols is the number of training symbols prepended when CSI
// estimation is on (one per antenna).
const LTFSymbols = 2

// phyPilotCount is referenced by tests to cross-check counts against the
// phy numerology.
func phyPilotCount(w spectrum.Width) int {
	if w == spectrum.Width40 {
		return phy.PilotSubcarriers40
	}
	return phy.PilotSubcarriers20
}
