package baseband

import (
	"math"
	"math/rand"
	"testing"

	"acorn/internal/phy"
	"acorn/internal/spectrum"
	"acorn/internal/units"
)

func TestMultipathLoopbackNoErrors(t *testing.T) {
	// Frequency-selective channel, no noise: per-tone equalization with
	// genie CSI must recover every bit — the cyclic prefix absorbing the
	// delay spread is exactly what OFDM is for.
	for _, w := range []spectrum.Width{spectrum.Width20, spectrum.Width40} {
		for _, mode := range []TxMode{ModeSTBC, ModeSISO} {
			ch := &Channel{Fading: FadingMultipath, Noiseless: true}
			l := NewLink(NewChainConfig(w), phy.QPSK, mode, 15, ch, 5)
			meas := l.Run(4, 300)
			if meas.BitErrors != 0 {
				t.Errorf("%v/%v: %d bit errors over noiseless multipath", w, mode, meas.BitErrors)
			}
		}
	}
}

func TestMultipathQAMLoopback(t *testing.T) {
	// Dense constellations are the sensitive ones for equalization error.
	ch := &Channel{Fading: FadingMultipath, Noiseless: true}
	l := NewLink(NewChainConfig(spectrum.Width20), phy.QAM64, ModeSTBC, 15, ch, 9)
	if meas := l.Run(3, 300); meas.BitErrors != 0 {
		t.Errorf("64QAM multipath loopback had %d bit errors", meas.BitErrors)
	}
}

func TestMultipathTapsUnitPower(t *testing.T) {
	// The tapped-delay-line realization preserves average path power
	// (unit gain before path loss), so multipath does not change the
	// mean link budget.
	ch := &Channel{Fading: FadingMultipath, rng: newTestRNG(3)}
	var total float64
	const draws = 4000
	for i := 0; i < draws; i++ {
		st := ch.drawState()
		for _, tap := range st.Taps[0][0] {
			total += real(tap)*real(tap) + imag(tap)*imag(tap)
		}
	}
	mean := total / draws
	if math.Abs(mean-1) > 0.05 {
		t.Errorf("mean multipath power = %v, want ≈1", mean)
	}
}

func TestMultipathFrequencySelective(t *testing.T) {
	// Unlike flat fading, the multipath response must vary across tones.
	ch := &Channel{Fading: FadingMultipath, rng: newTestRNG(7)}
	st := ch.drawState()
	resp := st.FreqResponse(0, 0, 64)
	var min, max float64 = math.Inf(1), 0
	for _, v := range resp {
		mag := real(v)*real(v) + imag(v)*imag(v)
		if mag < min {
			min = mag
		}
		if mag > max {
			max = mag
		}
	}
	if max/min < 2 {
		t.Errorf("frequency response too flat: max/min = %v", max/min)
	}
	// Flat fading is flat.
	flat := (&Channel{Fading: FadingFlat, rng: newTestRNG(7)}).drawState()
	fresp := flat.FreqResponse(0, 0, 64)
	for i := 1; i < len(fresp); i++ {
		if math.Abs(real(fresp[i])-real(fresp[0]))+math.Abs(imag(fresp[i])-imag(fresp[0])) > 1e-9 {
			t.Fatal("flat fading response varies across tones")
		}
	}
}

func TestJammerLocalizedDamage(t *testing.T) {
	// A strong narrowband jammer on a handful of tones should corrupt
	// roughly (jammed data tones / data tones) of the bits — OFDM
	// localizes interference. A wideband system would lose everything.
	cfg := NewChainConfig(spectrum.Width20)
	tx := units.DBm(15)
	// Jam 4 of the 52 data carriers with power comparable to the signal.
	jamBins := cfg.DataCarriers[3:7]
	mkLink := func(jam *Jammer, seed int64) *Link {
		ch := &Channel{PathLoss: 40, Jam: jam}
		ch.NoiseFloorOverride = 1e-12 // negligible thermal noise
		return NewLink(cfg, phy.QPSK, ModeSISO, tx, ch, seed)
	}
	clean := mkLink(nil, 3).Run(6, 500)
	if clean.BER() != 0 {
		t.Fatalf("clean link should be error-free, BER %v", clean.BER())
	}
	rxPowerMW := float64(tx.MilliWatts()) * math.Pow(10, -40.0/10)
	jammed := mkLink(&Jammer{Bins: append([]int(nil), jamBins...), PowerMW: rxPowerMW}, 3).Run(6, 500)
	ber := jammed.BER()
	if ber == 0 {
		t.Fatal("jammer had no effect")
	}
	// At most the jammed fraction of bits (4/52 ≈ 7.7%) can err, and a
	// same-power-per-tone jammer should corrupt a good share of them.
	frac := float64(len(jamBins)) / float64(len(cfg.DataCarriers))
	if ber > frac*0.55 {
		t.Errorf("jammer damage %v exceeds plausible bound for %v jammed fraction", ber, frac)
	}
	if ber < frac*0.05 {
		t.Errorf("jammer damage %v implausibly small for %v jammed fraction", ber, frac)
	}
}

func TestJammerSpreadOver40MHz(t *testing.T) {
	// The same narrowband jammer hurts a 40 MHz transmission *less* in
	// relative terms: the jammed tones are a smaller fraction of 108.
	tx := units.DBm(15)
	run := func(w spectrum.Width, seed int64) float64 {
		cfg := NewChainConfig(w)
		rxPowerMW := float64(tx.MilliWatts()) * math.Pow(10, -40.0/10)
		ch := &Channel{PathLoss: 40, Jam: &Jammer{Bins: cfg.DataCarriers[3:7], PowerMW: rxPowerMW}}
		ch.NoiseFloorOverride = 1e-12
		return NewLink(cfg, phy.QPSK, ModeSISO, tx, ch, seed).Run(6, 500).BER()
	}
	b20 := run(spectrum.Width20, 3)
	b40 := run(spectrum.Width40, 3)
	if b40 >= b20 {
		t.Errorf("4-tone jammer: 40 MHz BER %v should be below 20 MHz BER %v", b40, b20)
	}
}

// newTestRNG builds a deterministic RNG for white-box channel tests.
func newTestRNG(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

func TestDQPSKMultipathLoopback(t *testing.T) {
	// Differential modulation composed with per-tone equalization over a
	// frequency-selective channel.
	ch := &Channel{Fading: FadingMultipath, Noiseless: true}
	l := NewLink(NewChainConfig(spectrum.Width40), phy.DQPSK, ModeSTBC, 15, ch, 21)
	if meas := l.Run(3, 300); meas.BitErrors != 0 {
		t.Errorf("DQPSK multipath loopback had %d bit errors", meas.BitErrors)
	}
}

func TestSTBCOddSymbolPadding(t *testing.T) {
	// A payload that fills an odd number of OFDM symbols exercises the
	// Alamouti padding path; every payload bit must still round-trip.
	cfg := NewChainConfig(spectrum.Width20)
	m := NewMapper(phy.QPSK)
	// One OFDM symbol carries 104 bits; 1.5 symbols → odd padded count.
	payloadBytes := (cfg.BitsPerOFDMSymbol(m) + cfg.BitsPerOFDMSymbol(m)/2) / 8
	ch := &Channel{Noiseless: true}
	l := NewLink(cfg, phy.QPSK, ModeSTBC, 15, ch, 23)
	if meas := l.Run(2, payloadBytes); meas.BitErrors != 0 {
		t.Errorf("odd-symbol STBC payload had %d bit errors", meas.BitErrors)
	}
}

func TestJammerVsCoding(t *testing.T) {
	// Coding spreads each information bit across many tones; a narrowband
	// jammer that corrupts a handful of tones should be largely repaired
	// by the convolutional code.
	cfg := NewChainConfig(spectrum.Width20)
	tx := units.DBm(15)
	rxPowerMW := float64(tx.MilliWatts()) * math.Pow(10, -4.0)
	jam := &Jammer{Bins: cfg.DataCarriers[3:6], PowerMW: rxPowerMW * 3 / 52}
	mk := func(coded bool) float64 {
		ch := &Channel{PathLoss: 40, Jam: jam, NoiseFloorOverride: 1e-12}
		l := NewLink(cfg, phy.QPSK, ModeSISO, tx, ch, 5)
		if coded {
			rate := phy.Rate12
			l.Coding = &rate
		}
		return l.Run(8, 400).BER()
	}
	uncoded := mk(false)
	coded := mk(true)
	if uncoded == 0 {
		t.Skip("jammer too weak to measure")
	}
	if coded >= uncoded/3 {
		t.Errorf("coding should largely repair narrowband jamming: coded %v vs uncoded %v", coded, uncoded)
	}
}
