package baseband

import "acorn/internal/phy"

// Scratch-buffer layer for the steady-state packet loop.
//
// Ownership rules (see DESIGN.md, "Execution engine"): every Link owns one
// workspace and every Channel owns one chanWorkspace; all slices handed out
// by them are valid only until the next packet through the same Link or
// Channel. Nothing here is safe for concurrent use — the parallelism model
// is one Link (with its Channel) per worker, cloned per shard by
// internal/simrun, never a shared Link across goroutines.

// symGrid is a reusable rows×cols grid of complex samples backed by one
// flat allocation, replacing the per-symbol [][]complex128 allocations of
// the modem hot path.
type symGrid struct {
	store []complex128
	rows  [][]complex128
}

// shape resizes the grid to nRows×rowLen and returns the row slices. Row
// contents are unspecified; callers fully overwrite them.
func (g *symGrid) shape(nRows, rowLen int) [][]complex128 {
	need := nRows * rowLen
	if cap(g.store) < need {
		g.store = make([]complex128, need)
	}
	g.store = g.store[:need]
	if cap(g.rows) < nRows {
		g.rows = make([][]complex128, nRows)
	}
	g.rows = g.rows[:nRows]
	for i := range g.rows {
		g.rows[i] = g.store[i*rowLen : (i+1)*rowLen : (i+1)*rowLen]
	}
	return g.rows
}

// aliasRows points every one of nRows rows at the same backing slice — the
// representation of a silent antenna, where every OFDM symbol is the same
// all-zero tone vector.
func (g *symGrid) aliasRows(nRows int, row []complex128) [][]complex128 {
	if cap(g.rows) < nRows {
		g.rows = make([][]complex128, nRows)
	}
	g.rows = g.rows[:nRows]
	for i := range g.rows {
		g.rows[i] = row
	}
	return g.rows
}

// growC/growB/growF return buf resized to n, reallocating only when the
// capacity is insufficient. Contents are unspecified.
func growC(buf []complex128, n int) []complex128 {
	if cap(buf) < n {
		buf = make([]complex128, n)
	}
	return buf[:n]
}

func growB(buf []byte, n int) []byte {
	if cap(buf) < n {
		buf = make([]byte, n)
	}
	return buf[:n]
}

// workspace holds every reusable buffer of a Link's TX→channel→RX chain, so
// the steady-state packet loop runs with near-zero allocations.
type workspace struct {
	// Cached demappers, invalidated when l.Modulation changes.
	mapper    Mapper
	mapperMod phy.Modulation
	sd        *softDemapper
	sdMod     phy.Modulation

	bits    []byte // payload / info bits
	padBits []byte // zero-padded tail symbol bits
	decoded []byte // hard-decision scratch
	soft    []float64

	syms symGrid // modulated frequency-domain symbols
	ref  symGrid // pre-differential reference symbols for EVM
	ant1 symGrid // Alamouti antenna streams
	ant2 symGrid
	eq   symGrid // equalized RX symbols

	zeroRow []complex128 // shared silent OFDM symbol (SISO antenna 2)
	grid    []complex128 // FFT-size work grid

	tx [2][]complex128 // assembled antenna sample streams

	preamble    []complex128 // cached Barker preamble at the link amplitude
	silent      []complex128
	preambleAmp float64

	ltf        []complex128 // cached training symbol (CSIPilot)
	ltfSilence []complex128
	ltfGain    float64

	rxF     [2]symGrid // received frequency-domain data rows
	ltfGrid symGrid    // received LTF FFT grids (CSIPilot)
	hGrid   symGrid    // genie per-tone responses
	resp    []complex128
}

// scratch returns the link's workspace, creating it on first use so Links
// built by struct literal keep working.
func (l *Link) scratch() *workspace {
	if l.ws == nil {
		l.ws = &workspace{}
	}
	return l.ws
}

// mapper returns the cached constellation mapper for the link's current
// modulation.
func (l *Link) mapper() Mapper {
	ws := l.scratch()
	if ws.mapper == nil || ws.mapperMod != l.Modulation {
		ws.mapper = NewMapper(l.Modulation)
		ws.mapperMod = l.Modulation
	}
	return ws.mapper
}

// softMapper returns the cached soft demapper for the link's current
// modulation.
func (l *Link) softMapper() *softDemapper {
	ws := l.scratch()
	if ws.sd == nil || ws.sdMod != l.Modulation {
		ws.sd = newSoftDemapper(l.mapper())
		ws.sdMod = l.Modulation
	}
	return ws.sd
}
