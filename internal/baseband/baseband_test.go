package baseband

import (
	"math"
	"math/cmplx"
	"testing"

	"acorn/internal/dsp"
	"acorn/internal/phy"
	"acorn/internal/spectrum"
	"acorn/internal/units"
)

func TestMapperRoundTrip(t *testing.T) {
	for _, mod := range []phy.Modulation{phy.BPSK, phy.QPSK, phy.QAM16, phy.QAM64} {
		m := NewMapper(mod)
		n := m.Bits()
		for v := 0; v < 1<<n; v++ {
			bits := make([]byte, n)
			for b := 0; b < n; b++ {
				bits[b] = byte(v>>b) & 1
			}
			sym := m.Map(bits)
			back := m.Demap(sym, nil)
			for b := 0; b < n; b++ {
				if back[b] != bits[b] {
					t.Fatalf("%v: bits %v → %v → %v", mod, bits, sym, back)
				}
			}
		}
	}
}

func TestMapperUnitEnergy(t *testing.T) {
	for _, mod := range []phy.Modulation{phy.BPSK, phy.QPSK, phy.QAM16, phy.QAM64} {
		m := NewMapper(mod)
		n := m.Bits()
		var total float64
		count := 1 << n
		for v := 0; v < count; v++ {
			bits := make([]byte, n)
			for b := 0; b < n; b++ {
				bits[b] = byte(v>>b) & 1
			}
			s := m.Map(bits)
			total += real(s)*real(s) + imag(s)*imag(s)
		}
		if avg := total / float64(count); math.Abs(avg-1) > 1e-9 {
			t.Errorf("%v: average symbol energy = %v, want 1", mod, avg)
		}
	}
}

func TestGrayMappingAdjacency(t *testing.T) {
	// Adjacent 16QAM PAM levels must differ in exactly one bit.
	m := qamMapper{bits: 4, levels: []float64{-3, -1, 1, 3}, scale: 1 / math.Sqrt(10)}
	for idx := 0; idx+1 < 4; idx++ {
		a := grayBits(idx, 2, nil)
		b := grayBits(idx+1, 2, nil)
		diff := 0
		for i := range a {
			if a[i] != b[i] {
				diff++
			}
		}
		if diff != 1 {
			t.Errorf("levels %d,%d differ in %d bits, want 1", idx, idx+1, diff)
		}
	}
	_ = m
}

func TestDiffEncodeDecode(t *testing.T) {
	m := NewMapper(phy.QPSK)
	syms := []complex128{m.Map([]byte{0, 1}), m.Map([]byte{1, 1}), m.Map([]byte{0, 0}), m.Map([]byte{1, 0})}
	enc := diffEncode(syms, complex(1, 0))
	dec := diffDecode(enc, complex(1, 0))
	for i := range syms {
		if cmplx.Abs(dec[i]-syms[i]) > 1e-9 {
			t.Errorf("diff round trip[%d] = %v, want %v", i, dec[i], syms[i])
		}
	}
}

func TestChainConfigNumerology(t *testing.T) {
	c20 := NewChainConfig(spectrum.Width20)
	if c20.FFTSize != 64 || len(c20.DataCarriers) != 52 {
		t.Errorf("20 MHz chain: FFT %d carriers %d", c20.FFTSize, len(c20.DataCarriers))
	}
	if c20.SampleRate != 20e6 {
		t.Errorf("20 MHz sample rate = %v", c20.SampleRate)
	}
	c40 := NewChainConfig(spectrum.Width40)
	if c40.FFTSize != 128 || len(c40.DataCarriers) != 108 {
		t.Errorf("40 MHz chain: FFT %d carriers %d", c40.FFTSize, len(c40.DataCarriers))
	}
	if c40.SampleRate != 40e6 {
		t.Errorf("40 MHz sample rate = %v", c40.SampleRate)
	}
	// No duplicate carriers, none at DC.
	seen := map[int]bool{}
	for _, k := range c40.DataCarriers {
		if k == 0 {
			t.Error("data carrier at DC")
		}
		if seen[k] {
			t.Errorf("duplicate carrier %d", k)
		}
		seen[k] = true
	}
}

func TestOFDMSymbolRoundTrip(t *testing.T) {
	cfg := NewChainConfig(spectrum.Width20)
	m := NewMapper(phy.QPSK)
	bits := make([]byte, cfg.BitsPerOFDMSymbol(m))
	for i := range bits {
		bits[i] = byte(i % 2)
	}
	syms := cfg.modulateSymbols(bits, m)
	td := cfg.toTimeDomain(syms[0], 2.5, 0, 1) // odd symbol: antenna 0 silent on pilots
	if len(td) != cfg.SymbolSamples() {
		t.Fatalf("symbol length %d, want %d", len(td), cfg.SymbolSamples())
	}
	// Cyclic prefix property: first CPLen samples replicate the tail.
	for i := 0; i < cfg.CPLen; i++ {
		if cmplx.Abs(td[i]-td[cfg.FFTSize+i]) > 1e-9 {
			t.Fatalf("cyclic prefix mismatch at %d", i)
		}
	}
	back, grid := cfg.fromTimeDomain(td)
	if len(grid) != cfg.FFTSize {
		t.Fatalf("grid length %d", len(grid))
	}
	for k := range back {
		if cmplx.Abs(back[k]/complex(2.5, 0)-syms[0][k]) > 1e-9 {
			t.Fatalf("tone %d round trip failed", k)
		}
	}
}

// noiselessLink builds a link over a perfect channel.
func noiselessLink(w spectrum.Width, mod phy.Modulation, mode TxMode, seed int64) *Link {
	ch := &Channel{Fading: FadingNone, Noiseless: true}
	return NewLink(NewChainConfig(w), mod, mode, 15, ch, seed)
}

func TestLoopbackNoErrors(t *testing.T) {
	for _, w := range []spectrum.Width{spectrum.Width20, spectrum.Width40} {
		for _, mod := range []phy.Modulation{phy.BPSK, phy.QPSK, phy.DQPSK, phy.QAM16, phy.QAM64} {
			for _, mode := range []TxMode{ModeSTBC, ModeSISO} {
				l := noiselessLink(w, mod, mode, 7)
				meas := l.Run(2, 300)
				if meas.BitErrors != 0 {
					t.Errorf("%v/%v/%v: %d bit errors on noiseless channel",
						w, mod, mode, meas.BitErrors)
				}
				if meas.PacketErrors != 0 {
					t.Errorf("%v/%v/%v: packet errors on noiseless channel", w, mod, mode)
				}
			}
		}
	}
}

func TestLoopbackWithTimingDetection(t *testing.T) {
	l := noiselessLink(spectrum.Width20, phy.QPSK, ModeSTBC, 3)
	l.DetectTiming = true
	meas := l.Run(1, 200)
	if meas.BitErrors != 0 {
		t.Errorf("timing-detected loopback had %d bit errors", meas.BitErrors)
	}
}

func TestLoopbackFlatFading(t *testing.T) {
	// Genie-CSI STBC over flat fading without noise must still be exact.
	ch := &Channel{Fading: FadingFlat, Noiseless: true}
	l := NewLink(NewChainConfig(spectrum.Width20), phy.QPSK, ModeSTBC, 15, ch, 11)
	meas := l.Run(4, 200)
	if meas.BitErrors != 0 {
		t.Errorf("fading loopback had %d bit errors", meas.BitErrors)
	}
}

func TestTxPowerConservation(t *testing.T) {
	// Payload sample power should equal the configured TX power
	// (summed over both antennas) regardless of width.
	for _, w := range []spectrum.Width{spectrum.Width20, spectrum.Width40} {
		l := noiselessLink(w, phy.QPSK, ModeSTBC, 5)
		bits := l.randomBits(240 * 8)
		tx, _ := l.buildTx(bits)
		pre := l.Chain.PreambleSamples()
		p := dsp.MeanPower(tx[0][pre:]) + dsp.MeanPower(tx[1][pre:])
		want := float64(units.DBm(15).MilliWatts())
		// The cyclic prefix repeats signal, preserving mean power; allow
		// a few percent for modulation randomness.
		if math.Abs(p-want) > 0.1*want {
			t.Errorf("%v: tx power %v mW, want ≈%v", w, p, want)
		}
	}
}

func TestPerSubcarrierEnergyDropsWithBonding(t *testing.T) {
	// The Fig 1 micro-effect at the waveform level: same total power,
	// about 3 dB less energy per tone at 40 MHz.
	l20 := noiselessLink(spectrum.Width20, phy.QPSK, ModeSISO, 5)
	l40 := noiselessLink(spectrum.Width40, phy.QPSK, ModeSISO, 5)
	g20 := l20.toneGain()
	g40 := l40.toneGain()
	// Per-tone *power* at the transmitter: gain² scaled by FFT-size
	// normalization (gain includes N² factor; compare per-tone energy
	// E = gain²/N²).
	e20 := g20 * g20 / float64(64*64)
	e40 := g40 * g40 / float64(128*128)
	dropDB := 10 * math.Log10(e20/e40)
	if dropDB < 2.9 || dropDB > 3.4 {
		t.Errorf("per-tone energy drop = %v dB, want ≈3.1", dropDB)
	}
}

func TestMeasuredSNRMatchesAnalytic(t *testing.T) {
	// Configure a path loss that lands the per-subcarrier SNR near
	// 15 dB at 20 MHz and check the EVM-derived measurement agrees.
	tx := units.DBm(15)
	pl := units.DB(50)
	want := float64(phy.RxSubcarrierSNR(tx, pl, spectrum.Width20))
	ch := &Channel{PathLoss: pl, Fading: FadingNone}
	l := NewLink(NewChainConfig(spectrum.Width20), phy.QPSK, ModeSISO, tx, ch, 9)
	meas := l.Run(4, 500)
	got := meas.MeasuredSNRdB()
	// MRC over two RX antennas adds 3 dB array gain over the analytic
	// single-antenna value.
	if math.Abs(got-(want+3)) > 1.0 {
		t.Errorf("measured SNR %v dB, want ≈%v (+3 dB MRC)", got, want+3)
	}
}

func TestBERMatchesTheoryQPSK(t *testing.T) {
	// Monte-Carlo BER at a few SNR points vs the closed-form curve used
	// for Fig 3a. SISO mode with a single RX path is emulated by
	// subtracting the 3 dB MRC gain from the target.
	tx := units.DBm(15)
	for _, targetSNR := range []float64{4, 6, 8} {
		// Choose path loss so the post-MRC per-subcarrier SNR is
		// targetSNR: analytic + 3 = target → analytic = target − 3.
		pl := float64(tx) - (targetSNR - 3) - float64(phy.SubcarrierNoiseFloor()) -
			10*math.Log10(float64(phy.UsedSubcarriers(spectrum.Width20)))
		ch := &Channel{PathLoss: units.DB(pl), Fading: FadingNone}
		l := NewLink(NewChainConfig(spectrum.Width20), phy.QPSK, ModeSISO, tx, ch, 13)
		meas := l.Run(30, 500)
		want := phy.UncodedBER(phy.QPSK, units.DB(targetSNR))
		got := meas.BER()
		if got == 0 && want > 1e-4 {
			t.Errorf("SNR %v: no errors observed, want BER %v", targetSNR, want)
			continue
		}
		ratio := got / want
		if ratio < 0.4 || ratio > 2.5 {
			t.Errorf("SNR %v: BER %v vs theory %v (ratio %v)", targetSNR, got, want, ratio)
		}
	}
}

func TestSTBCBeatsSISOUnderFading(t *testing.T) {
	// Alamouti's diversity should cut BER versus single-antenna
	// transmission over fading at the same total power.
	// Path loss chosen for a per-subcarrier SNR around 8 dB, where
	// diversity matters.
	tx := units.DBm(10)
	pl := units.DB(float64(tx) - 8 - float64(phy.SubcarrierNoiseFloor()) -
		10*math.Log10(float64(phy.UsedSubcarriers(spectrum.Width20))))
	run := func(mode TxMode) float64 {
		ch := &Channel{PathLoss: pl, Fading: FadingFlat}
		l := NewLink(NewChainConfig(spectrum.Width20), phy.QPSK, mode, tx, ch, 21)
		return l.Run(60, 200).BER()
	}
	siso := run(ModeSISO)
	stbc := run(ModeSTBC)
	if stbc >= siso {
		t.Errorf("STBC BER %v should beat SISO BER %v under fading", stbc, siso)
	}
}

func TestWiderChannelWorseAtSameTxPower(t *testing.T) {
	// The headline Fig 3b/4b effect: same Tx power, same path loss —
	// the 40 MHz link has strictly more bit errors.
	// Path loss placing the 20 MHz link near 6 dB per-subcarrier SNR, so
	// the 40 MHz link sits ~3 dB lower, inside the error waterfall.
	tx := units.DBm(12)
	pl := units.DB(float64(tx) - 6 - float64(phy.SubcarrierNoiseFloor()) -
		10*math.Log10(float64(phy.UsedSubcarriers(spectrum.Width20))))
	run := func(w spectrum.Width) *Measurement {
		ch := &Channel{PathLoss: pl, Fading: FadingNone}
		l := NewLink(NewChainConfig(w), phy.QPSK, ModeSTBC, tx, ch, 17)
		return l.Run(25, 500)
	}
	m20 := run(spectrum.Width20)
	m40 := run(spectrum.Width40)
	if m40.BER() <= m20.BER() {
		t.Errorf("40 MHz BER %v should exceed 20 MHz BER %v at same Tx", m40.BER(), m20.BER())
	}
	if m40.PER() < m20.PER() {
		t.Errorf("40 MHz PER %v should be ≥ 20 MHz PER %v", m40.PER(), m20.PER())
	}
}

func TestConstellationCapture(t *testing.T) {
	l := noiselessLink(spectrum.Width20, phy.QPSK, ModeSTBC, 3)
	meas := l.Run(1, 400)
	if len(meas.Constellation) == 0 {
		t.Fatal("no constellation captured")
	}
	if len(meas.Constellation) > ConstellationCap {
		t.Fatalf("constellation exceeds cap: %d", len(meas.Constellation))
	}
	// Noiseless: every point sits on the ideal QPSK constellation.
	for _, p := range meas.Constellation {
		if math.Abs(cmplx.Abs(p)-1) > 1e-6 {
			t.Fatalf("constellation point %v off unit circle", p)
		}
	}
}

func TestTxWaveformLength(t *testing.T) {
	l := noiselessLink(spectrum.Width20, phy.QPSK, ModeSISO, 3)
	w := l.TxWaveform(1500)
	m := NewMapper(phy.QPSK)
	nSyms := (1500*8 + l.Chain.BitsPerOFDMSymbol(m) - 1) / l.Chain.BitsPerOFDMSymbol(m)
	want := l.Chain.PreambleSamples() + nSyms*l.Chain.SymbolSamples()
	if len(w) != want {
		t.Errorf("waveform length %d, want %d", len(w), want)
	}
}
