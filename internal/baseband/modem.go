// Package baseband is the sample-level OFDM simulator standing in for the
// paper's WARP/WarpLab hardware experiments (Section 3.1). It implements
// the exact chain the paper describes: a random bitstream is modulated
// (DQPSK/QPSK/QAM), the I-Q samples are placed on the data subcarriers and
// passed through an IFFT (64-point for 20 MHz, 128-point for 40 MHz), a
// cyclic prefix is added, a Barker sequence is prepended for symbol
// detection, and the frames are transmitted with 2×2 Alamouti STBC over an
// AWGN (optionally fading) channel. The receiver detects the preamble,
// strips the cyclic prefix, FFTs, combines, demodulates and counts bit
// errors — the BERMAC measurement loop.
package baseband

import (
	"fmt"
	"math"
	"math/cmplx"

	"acorn/internal/phy"
)

// Mapper converts bits to unit-average-energy constellation points and back.
// Demap performs hard decisions on an equalized symbol.
type Mapper interface {
	// Bits is the number of bits per symbol.
	Bits() int
	// Map converts the next Bits() bits (LSB-first in the slice) to a
	// constellation point with unit average energy.
	Map(bits []byte) complex128
	// Demap hard-decides the symbol back to bits, appending to dst.
	Demap(sym complex128, dst []byte) []byte
}

// NewMapper returns the mapper for the given modulation. DQPSK is handled
// by the differential wrapper in the OFDM chain, using the QPSK mapper
// underneath.
func NewMapper(m phy.Modulation) Mapper {
	switch m {
	case phy.BPSK:
		return bpskMapper{}
	case phy.QPSK, phy.DQPSK:
		return qpskMapper{}
	case phy.QAM16:
		return qamMapper{bits: 4, levels: []float64{-3, -1, 1, 3}, scale: 1 / math.Sqrt(10)}
	case phy.QAM64:
		return qamMapper{bits: 6, levels: []float64{-7, -5, -3, -1, 1, 3, 5, 7}, scale: 1 / math.Sqrt(42)}
	default:
		panic(fmt.Sprintf("baseband: no mapper for modulation %v", m))
	}
}

type bpskMapper struct{}

func (bpskMapper) Bits() int { return 1 }

func (bpskMapper) Map(bits []byte) complex128 {
	if bits[0] != 0 {
		return complex(1, 0)
	}
	return complex(-1, 0)
}

func (bpskMapper) Demap(sym complex128, dst []byte) []byte {
	if real(sym) >= 0 {
		return append(dst, 1)
	}
	return append(dst, 0)
}

type qpskMapper struct{}

func (qpskMapper) Bits() int { return 2 }

func (qpskMapper) Map(bits []byte) complex128 {
	// Gray mapping: bit0 → I sign, bit1 → Q sign, unit energy.
	i, q := -1.0, -1.0
	if bits[0] != 0 {
		i = 1
	}
	if bits[1] != 0 {
		q = 1
	}
	return complex(i/math.Sqrt2, q/math.Sqrt2)
}

func (qpskMapper) Demap(sym complex128, dst []byte) []byte {
	b0, b1 := byte(0), byte(0)
	if real(sym) >= 0 {
		b0 = 1
	}
	if imag(sym) >= 0 {
		b1 = 1
	}
	return append(dst, b0, b1)
}

// qamMapper implements square Gray-coded M-QAM with per-axis PAM levels.
type qamMapper struct {
	bits   int
	levels []float64
	scale  float64
}

func (m qamMapper) Bits() int { return m.bits }

// grayIndex converts half the symbol's bits to a PAM level index via Gray
// decoding.
func grayIndex(bits []byte) int {
	// Binary-reflected Gray code: index = gray^ (gray>>1) ^ ...
	g := 0
	for _, b := range bits {
		g = g<<1 | int(b)
	}
	idx := g
	for s := 1; s < len(bits); s++ {
		idx ^= g >> s
	}
	return idx
}

// grayBits is the inverse of grayIndex: PAM level index → Gray bits.
func grayBits(idx, n int, dst []byte) []byte {
	g := idx ^ (idx >> 1)
	for s := n - 1; s >= 0; s-- {
		dst = append(dst, byte(g>>s)&1)
	}
	return dst
}

func (m qamMapper) Map(bits []byte) complex128 {
	half := m.bits / 2
	i := m.levels[grayIndex(bits[:half])]
	q := m.levels[grayIndex(bits[half:m.bits])]
	return complex(i*m.scale, q*m.scale)
}

func (m qamMapper) Demap(sym complex128, dst []byte) []byte {
	half := m.bits / 2
	dst = grayBits(m.nearest(real(sym)/m.scale), half, dst)
	dst = grayBits(m.nearest(imag(sym)/m.scale), half, dst)
	return dst
}

// nearest returns the index of the PAM level closest to v.
func (m qamMapper) nearest(v float64) int {
	best, bestD := 0, math.Inf(1)
	for i, l := range m.levels {
		if d := math.Abs(v - l); d < bestD {
			best, bestD = i, d
		}
	}
	return best
}

// diffEncode applies DQPSK differential encoding across a symbol stream:
// each output symbol is the previous output rotated by the current QPSK
// point's phase. ref is the reference (pilot) symbol.
func diffEncode(syms []complex128, ref complex128) []complex128 {
	out := make([]complex128, len(syms))
	prev := ref
	for i, s := range syms {
		// Rotate by the phase of s; magnitudes stay unit.
		rot := cmplx.Rect(1, cmplx.Phase(s))
		prev *= rot
		out[i] = prev
	}
	return out
}

// diffDecode inverts diffEncode given the same reference.
func diffDecode(syms []complex128, ref complex128) []complex128 {
	out := make([]complex128, len(syms))
	prev := ref
	for i, s := range syms {
		d := s * cmplx.Conj(prev)
		if abs := cmplx.Abs(d); abs > 0 {
			d /= complex(abs, 0)
		}
		// Undo the √2 normalization the QPSK demapper expects.
		out[i] = d * complex(1, 0)
		prev = s
	}
	return out
}
