package baseband

import (
	"math"
	"math/rand"

	"acorn/internal/dsp"
	"acorn/internal/fec"
	"acorn/internal/phy"
	"acorn/internal/units"
)

// TxMode selects the spatial transmission scheme.
type TxMode int

const (
	// ModeSTBC is 2×2 Alamouti space-time coding, the mode the paper's
	// WARP experiments use.
	ModeSTBC TxMode = iota
	// ModeSISO transmits on antenna 1 only, with maximum-ratio combining
	// across the two receive antennas.
	ModeSISO
)

// Link is one configured baseband link: a transmitter chain, a channel, and
// a receiver chain, equivalent to a WARP TX board / RX board pair running
// the BERMAC measurement design.
type Link struct {
	Chain      ChainConfig
	Modulation phy.Modulation
	Mode       TxMode
	// Coding, when non-nil, runs the 802.11 convolutional code at the
	// given rate around the modem: information bits are encoded before
	// modulation and Viterbi-decoded from per-bit soft LLRs after
	// equalization. Nil transmits uncoded (the WARP BERMAC setup).
	Coding *phy.CodeRate
	// TxPower is the total transmit power across both antennas.
	TxPower units.DBm
	Channel *Channel
	// DetectTiming makes the receiver find the payload via Barker
	// correlation instead of using genie timing. With heavy noise or
	// deep fades detection can fail; the receiver then falls back to
	// nominal timing (as BERMAC's known-payload setup effectively does).
	DetectTiming bool
	// CSI selects genie channel knowledge (default) or pilot-based
	// least-squares estimation.
	CSI CSIMode

	rng *rand.Rand
}

// NewLink builds a link with the given parameters, drawing bit and noise
// randomness from seed.
func NewLink(cfg ChainConfig, mod phy.Modulation, mode TxMode, txPower units.DBm, ch *Channel, seed int64) *Link {
	rng := rand.New(rand.NewSource(seed))
	if ch.rng == nil {
		ch.rng = rng
	}
	return &Link{Chain: cfg, Modulation: mod, Mode: mode, TxPower: txPower, Channel: ch, rng: rng}
}

// toneGain returns the per-tone amplitude scale, per antenna, such that the
// total transmitted power equals TxPower regardless of FFT size — this is
// the mechanism behind the 3 dB per-subcarrier energy drop with bonding:
// the same total power divides across more tones.
func (l *Link) toneGain() float64 {
	pMW := float64(l.TxPower.MilliWatts())
	n := float64(l.Chain.FFTSize)
	nsc := float64(len(l.Chain.DataCarriers))
	es := pMW * n * n / nsc // per-tone energy for the full power
	if l.Mode == ModeSTBC {
		es /= 2 // split across the two antennas
	}
	return math.Sqrt(es)
}

// randomBits fills a fresh bit slice (one bit per byte, values 0/1).
func (l *Link) randomBits(n int) []byte {
	bits := make([]byte, n)
	for i := range bits {
		bits[i] = byte(l.rng.Intn(2))
	}
	return bits
}

// buildTx modulates bits into the two antenna sample streams.
func (l *Link) buildTx(bits []byte) (tx [2][]complex128, freqSyms [][]complex128) {
	mapper := NewMapper(l.Modulation)
	freqSyms = l.Chain.modulateSymbols(bits, mapper)
	if l.Modulation == phy.DQPSK {
		diffEncodeAcrossTime(freqSyms)
	}
	gain := l.toneGain()
	preambleAmp := math.Sqrt(float64(l.TxPower.MilliWatts()))
	preamble := dsp.BarkerPreamble(l.Chain.PreambleReps, preambleAmp)
	silent := make([]complex128, len(preamble))

	var ant1Syms, ant2Syms [][]complex128
	if l.Mode == ModeSTBC {
		ant1Syms, ant2Syms = alamoutiEncode(freqSyms)
	} else {
		ant1Syms = freqSyms
		ant2Syms = make([][]complex128, len(freqSyms))
		empty := make([]complex128, len(l.Chain.DataCarriers))
		for i := range ant2Syms {
			ant2Syms[i] = empty
		}
	}
	tx[0] = append(tx[0], preamble...)
	tx[1] = append(tx[1], silent...)
	if l.CSI == CSIPilot {
		// Training: antenna 0's LTF, then antenna 1's, each with the
		// other antenna silent so the receiver separates the paths.
		ltfSilence := make([]complex128, l.Chain.SymbolSamples())
		tx[0] = append(tx[0], l.Chain.ltfSymbol(gain)...)
		tx[1] = append(tx[1], ltfSilence...)
		tx[0] = append(tx[0], ltfSilence...)
		tx[1] = append(tx[1], l.Chain.ltfSymbol(gain)...)
	}
	for i := range ant1Syms {
		tx[0] = append(tx[0], l.Chain.toTimeDomain(ant1Syms[i], gain, 0, i)...)
		tx[1] = append(tx[1], l.Chain.toTimeDomain(ant2Syms[i], gain, 1, i)...)
	}
	return tx, freqSyms
}

// diffEncodeAcrossTime applies DQPSK differential encoding independently on
// each subcarrier across the OFDM symbol sequence.
func diffEncodeAcrossTime(syms [][]complex128) {
	if len(syms) == 0 {
		return
	}
	tones := len(syms[0])
	col := make([]complex128, len(syms))
	for k := 0; k < tones; k++ {
		for t := range syms {
			col[t] = syms[t][k]
		}
		enc := diffEncode(col, complex(1, 0))
		for t := range syms {
			syms[t][k] = enc[t]
		}
	}
}

// diffDecodeAcrossTime inverts diffEncodeAcrossTime on equalized symbols.
func diffDecodeAcrossTime(syms [][]complex128) {
	if len(syms) == 0 {
		return
	}
	tones := len(syms[0])
	col := make([]complex128, len(syms))
	for k := 0; k < tones; k++ {
		for t := range syms {
			col[t] = syms[t][k]
		}
		dec := diffDecode(col, complex(1, 0))
		for t := range syms {
			syms[t][k] = dec[t]
		}
	}
}

// receive demodulates the two received streams back into equalized
// unit-scale constellation symbols, one vector per transmitted OFDM symbol.
func (l *Link) receive(rx [2][]complex128, st *State, nSyms int) [][]complex128 {
	start := l.Chain.PreambleSamples()
	if l.DetectTiming {
		amp := math.Sqrt(float64(l.TxPower.MilliWatts())) * l.Channel.attenuation()
		if s, _, ok := dsp.DetectPreamble(rx[0], l.Chain.PreambleReps, amp, 0.5); ok {
			start = s
		}
	}
	symLen := l.Chain.SymbolSamples()
	nRxSyms := nSyms
	if l.Mode == ModeSTBC && nRxSyms%2 == 1 {
		nRxSyms++ // STBC pads to an even symbol count
	}
	var ltfGrids [2][2][]complex128
	if l.CSI == CSIPilot {
		for r := 0; r < 2; r++ {
			for t := 0; t < LTFSymbols; t++ {
				lo := start + t*symLen
				if lo+symLen > len(rx[r]) {
					continue
				}
				_, grid := l.Chain.fromTimeDomain(rx[r][lo : lo+symLen])
				ltfGrids[r][t] = grid
			}
		}
		start += LTFSymbols * symLen
	}
	var rxF [2][][]complex128
	for r := 0; r < 2; r++ {
		for t := 0; t < nRxSyms; t++ {
			lo := start + t*symLen
			if lo+symLen > len(rx[r]) {
				break
			}
			data, _ := l.Chain.fromTimeDomain(rx[r][lo : lo+symLen])
			rxF[r] = append(rxF[r], data)
		}
	}
	if len(rxF[0]) == 0 {
		return nil
	}
	var h toneResponse
	if l.CSI == CSIPilot {
		h = estimateFromLTF(ltfGrids, l.Chain, l.toneGain())
	} else {
		// Genie CSI: the exact per-tone response of every antenna path.
		for t := 0; t < 2; t++ {
			for r := 0; r < 2; r++ {
				full := st.FreqResponse(t, r, l.Chain.FFTSize)
				perTone := make([]complex128, len(l.Chain.DataCarriers))
				for k, bin := range l.Chain.DataCarriers {
					perTone[k] = full[bin]
				}
				h[t][r] = perTone
			}
		}
	}
	gain := l.toneGain()
	var eq [][]complex128
	if l.Mode == ModeSTBC {
		eq = alamoutiDecode(rxF, h)
	} else {
		eq = mrcDecode(rxF, h)
	}
	for _, syms := range eq {
		for k := range syms {
			syms[k] /= complex(gain, 0)
		}
	}
	if len(eq) > nSyms {
		eq = eq[:nSyms]
	}
	if l.Modulation == phy.DQPSK {
		diffDecodeAcrossTime(eq)
	}
	return eq
}

// Measurement accumulates BERMAC-style statistics over a run.
type Measurement struct {
	Packets      int
	PacketErrors int
	Bits         int
	BitErrors    int
	// Constellation holds up to ConstellationCap equalized RX symbols.
	Constellation []complex128
	// evSum accumulates error-vector power, sigSum signal power, for EVM.
	evSum, sigSum float64
}

// ConstellationCap bounds the stored constellation sample.
const ConstellationCap = 512

// BER returns the measured bit error rate.
func (m *Measurement) BER() float64 {
	if m.Bits == 0 {
		return 0
	}
	return float64(m.BitErrors) / float64(m.Bits)
}

// PER returns the measured packet error rate.
func (m *Measurement) PER() float64 {
	if m.Packets == 0 {
		return 0
	}
	return float64(m.PacketErrors) / float64(m.Packets)
}

// EVM returns the root-mean-square error-vector magnitude relative to the
// ideal constellation, and MeasuredSNRdB derives the link SNR from it
// (SNR ≈ 1/EVM²) — how the reproduction "measures" SNR like the paper's
// receiver does.
func (m *Measurement) EVM() float64 {
	if m.sigSum == 0 {
		return 0
	}
	return math.Sqrt(m.evSum / m.sigSum)
}

// MeasuredSNRdB returns the SNR inferred from the error vectors.
func (m *Measurement) MeasuredSNRdB() float64 {
	evm := m.EVM()
	if evm == 0 {
		return math.Inf(1)
	}
	return -20 * math.Log10(evm)
}

// RunPacket transmits one packet of the given payload size and accumulates
// the outcome into meas. With Coding set, the payload is convolutionally
// encoded before modulation and Viterbi-decoded at the receiver; BER and
// PER are then measured on the information bits.
func (l *Link) RunPacket(payloadBytes int, meas *Measurement) {
	if _, coded := l.codeRateOf(); coded {
		l.runCodedPacket(payloadBytes, meas)
		return
	}
	mapper := NewMapper(l.Modulation)
	nBits := payloadBytes * 8
	bits := l.randomBits(nBits)
	tx, freqSyms := l.buildTx(bits)
	rx, st := l.Channel.Transmit(tx, l.Chain.SampleRate, l.Chain.FFTSize)
	eq := l.receive(rx, st, len(freqSyms))

	// Reference (pre-differential-encoding) symbols for EVM.
	ref := l.Chain.modulateSymbols(bits, mapper)

	errors := 0
	var decoded []byte
	for t, syms := range eq {
		for k, s := range syms {
			decoded = mapper.Demap(s, decoded[:0])
			base := t*l.Chain.BitsPerOFDMSymbol(mapper) + k*mapper.Bits()
			for b, bit := range decoded {
				idx := base + b
				if idx < nBits && bit != bits[idx] {
					errors++
				}
			}
			if idxInPayload(t, k, mapper, l.Chain, nBits) {
				r := ref[t][k]
				d := s - r
				meas.evSum += real(d)*real(d) + imag(d)*imag(d)
				meas.sigSum += real(r)*real(r) + imag(r)*imag(r)
				if len(meas.Constellation) < ConstellationCap {
					meas.Constellation = append(meas.Constellation, s)
				}
			}
		}
	}
	meas.Packets++
	meas.Bits += nBits
	meas.BitErrors += errors
	if errors > 0 {
		meas.PacketErrors++
	}
}

// idxInPayload reports whether symbol (t, k) carries payload (not padding).
func idxInPayload(t, k int, m Mapper, cfg ChainConfig, nBits int) bool {
	base := t*cfg.BitsPerOFDMSymbol(m) + k*m.Bits()
	return base+m.Bits() <= nBits
}

// Run transmits packets back to back (the paper sends 9000 × 1500 B) and
// returns the accumulated measurement.
func (l *Link) Run(packets, payloadBytes int) *Measurement {
	meas := &Measurement{}
	for i := 0; i < packets; i++ {
		l.RunPacket(payloadBytes, meas)
	}
	return meas
}

// runCodedPacket is RunPacket's coded path.
func (l *Link) runCodedPacket(payloadBytes int, meas *Measurement) {
	rate, _ := l.codeRateOf()
	mapper := NewMapper(l.Modulation)
	nInfo := payloadBytes * 8
	info := l.randomBits(nInfo)
	coded := fec.Encode(info, rate)
	tx, freqSyms := l.buildTx(coded)
	rx, st := l.Channel.Transmit(tx, l.Chain.SampleRate, l.Chain.FFTSize)
	eq := l.receive(rx, st, len(freqSyms))

	ref := l.Chain.modulateSymbols(coded, mapper)
	sd := newSoftDemapper(mapper)
	soft := make([]float64, 0, len(coded))
	for t, syms := range eq {
		for k, s := range syms {
			soft = sd.Demap(s, soft)
			if idxInPayload(t, k, mapper, l.Chain, len(coded)) {
				r := ref[t][k]
				d := s - r
				meas.evSum += real(d)*real(d) + imag(d)*imag(d)
				meas.sigSum += real(r)*real(r) + imag(r)*imag(r)
				if len(meas.Constellation) < ConstellationCap {
					meas.Constellation = append(meas.Constellation, s)
				}
			}
		}
	}
	if len(soft) > len(coded) {
		soft = soft[:len(coded)] // drop modulation padding
	}
	decoded := fec.Decode(soft, nInfo, rate)
	errors := 0
	for i := range info {
		if decoded[i] != info[i] {
			errors++
		}
	}
	meas.Packets++
	meas.Bits += nInfo
	meas.BitErrors += errors
	if errors > 0 {
		meas.PacketErrors++
	}
}

// TxWaveform returns the antenna-1 transmit samples of one packet, for
// spectral analysis (Fig 1).
func (l *Link) TxWaveform(payloadBytes int) []complex128 {
	bits := l.randomBits(payloadBytes * 8)
	tx, _ := l.buildTx(bits)
	return tx[0]
}
