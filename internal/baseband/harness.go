package baseband

import (
	"math"
	"math/rand"

	"acorn/internal/dsp"
	"acorn/internal/fec"
	"acorn/internal/phy"
	"acorn/internal/stats"
	"acorn/internal/units"
)

// TxMode selects the spatial transmission scheme.
type TxMode int

const (
	// ModeSTBC is 2×2 Alamouti space-time coding, the mode the paper's
	// WARP experiments use.
	ModeSTBC TxMode = iota
	// ModeSISO transmits on antenna 1 only, with maximum-ratio combining
	// across the two receive antennas.
	ModeSISO
)

// Link is one configured baseband link: a transmitter chain, a channel, and
// a receiver chain, equivalent to a WARP TX board / RX board pair running
// the BERMAC measurement design.
type Link struct {
	Chain      ChainConfig
	Modulation phy.Modulation
	Mode       TxMode
	// Coding, when non-nil, runs the 802.11 convolutional code at the
	// given rate around the modem: information bits are encoded before
	// modulation and Viterbi-decoded from per-bit soft LLRs after
	// equalization. Nil transmits uncoded (the WARP BERMAC setup).
	Coding *phy.CodeRate
	// TxPower is the total transmit power across both antennas.
	TxPower units.DBm
	Channel *Channel
	// DetectTiming makes the receiver find the payload via Barker
	// correlation instead of using genie timing. With heavy noise or
	// deep fades detection can fail; the receiver then falls back to
	// nominal timing (as BERMAC's known-payload setup effectively does).
	DetectTiming bool
	// CSI selects genie channel knowledge (default) or pilot-based
	// least-squares estimation.
	CSI CSIMode

	rng *rand.Rand
	ws  *workspace
}

// channelStream is the substream tag that derives a channel's RNG seed from
// its link's seed.
const channelStream = 0x6368 // "ch"

// NewLink builds a link with the given parameters, drawing bit randomness
// from seed. A channel without its own RNG gets a separate seed-derived
// stream: sharing the link's rand.Rand would entangle noise draws with
// payload-bit draws, so two links cloned from related seeds (as the
// Monte-Carlo shards are) would not be statistically independent.
func NewLink(cfg ChainConfig, mod phy.Modulation, mode TxMode, txPower units.DBm, ch *Channel, seed int64) *Link {
	rng := rand.New(rand.NewSource(seed))
	if ch.rng == nil {
		ch.rng = rand.New(rand.NewSource(stats.DeriveSeed(seed, channelStream)))
	}
	return &Link{Chain: cfg, Modulation: mod, Mode: mode, TxPower: txPower, Channel: ch, rng: rng}
}

// toneGain returns the per-tone amplitude scale, per antenna, such that the
// total transmitted power equals TxPower regardless of FFT size — this is
// the mechanism behind the 3 dB per-subcarrier energy drop with bonding:
// the same total power divides across more tones.
func (l *Link) toneGain() float64 {
	pMW := float64(l.TxPower.MilliWatts())
	n := float64(l.Chain.FFTSize)
	nsc := float64(len(l.Chain.DataCarriers))
	es := pMW * n * n / nsc // per-tone energy for the full power
	if l.Mode == ModeSTBC {
		es /= 2 // split across the two antennas
	}
	return math.Sqrt(es)
}

// randomBits fills the link's reusable bit slice (one bit per byte, values
// 0/1); the result is valid until the next call.
func (l *Link) randomBits(n int) []byte {
	ws := l.scratch()
	ws.bits = growB(ws.bits, n)
	for i := range ws.bits {
		ws.bits[i] = byte(l.rng.Intn(2))
	}
	return ws.bits
}

// buildTx modulates bits into the two antenna sample streams. The returned
// streams and symbol grid alias the link's workspace and are valid until
// the next packet.
func (l *Link) buildTx(bits []byte) (tx [2][]complex128, freqSyms [][]complex128) {
	ws := l.scratch()
	mapper := l.mapper()
	freqSyms = l.Chain.modulateSymbolsInto(&ws.syms, bits, mapper, &ws.padBits)
	if l.Modulation == phy.DQPSK {
		diffEncodeAcrossTime(freqSyms)
	}
	gain := l.toneGain()
	preambleAmp := math.Sqrt(float64(l.TxPower.MilliWatts()))
	if ws.preamble == nil || ws.preambleAmp != preambleAmp {
		ws.preamble = dsp.BarkerPreamble(l.Chain.PreambleReps, preambleAmp)
		ws.silent = make([]complex128, len(ws.preamble))
		ws.preambleAmp = preambleAmp
	}

	var ant1Syms, ant2Syms [][]complex128
	if l.Mode == ModeSTBC {
		ant1Syms, ant2Syms = alamoutiEncodeInto(&ws.ant1, &ws.ant2, freqSyms)
	} else {
		ant1Syms = freqSyms
		ws.zeroRow = growC(ws.zeroRow, len(l.Chain.DataCarriers))
		for i := range ws.zeroRow {
			ws.zeroRow[i] = 0
		}
		ant2Syms = ws.ant2.aliasRows(len(freqSyms), ws.zeroRow)
	}
	ws.grid = growC(ws.grid, l.Chain.FFTSize)
	ws.tx[0] = append(ws.tx[0][:0], ws.preamble...)
	ws.tx[1] = append(ws.tx[1][:0], ws.silent...)
	if l.CSI == CSIPilot {
		// Training: antenna 0's LTF, then antenna 1's, each with the
		// other antenna silent so the receiver separates the paths.
		if ws.ltf == nil || ws.ltfGain != gain {
			ws.ltf = l.Chain.ltfSymbol(gain)
			ws.ltfSilence = growC(ws.ltfSilence, l.Chain.SymbolSamples())
			for i := range ws.ltfSilence {
				ws.ltfSilence[i] = 0
			}
			ws.ltfGain = gain
		}
		ws.tx[0] = append(ws.tx[0], ws.ltf...)
		ws.tx[1] = append(ws.tx[1], ws.ltfSilence...)
		ws.tx[0] = append(ws.tx[0], ws.ltfSilence...)
		ws.tx[1] = append(ws.tx[1], ws.ltf...)
	}
	for i := range ant1Syms {
		ws.tx[0] = l.Chain.appendTimeDomain(ws.tx[0], ant1Syms[i], gain, 0, i, ws.grid)
		ws.tx[1] = l.Chain.appendTimeDomain(ws.tx[1], ant2Syms[i], gain, 1, i, ws.grid)
	}
	return ws.tx, freqSyms
}

// diffEncodeAcrossTime applies DQPSK differential encoding independently on
// each subcarrier across the OFDM symbol sequence.
func diffEncodeAcrossTime(syms [][]complex128) {
	if len(syms) == 0 {
		return
	}
	tones := len(syms[0])
	col := make([]complex128, len(syms))
	for k := 0; k < tones; k++ {
		for t := range syms {
			col[t] = syms[t][k]
		}
		enc := diffEncode(col, complex(1, 0))
		for t := range syms {
			syms[t][k] = enc[t]
		}
	}
}

// diffDecodeAcrossTime inverts diffEncodeAcrossTime on equalized symbols.
func diffDecodeAcrossTime(syms [][]complex128) {
	if len(syms) == 0 {
		return
	}
	tones := len(syms[0])
	col := make([]complex128, len(syms))
	for k := 0; k < tones; k++ {
		for t := range syms {
			col[t] = syms[t][k]
		}
		dec := diffDecode(col, complex(1, 0))
		for t := range syms {
			syms[t][k] = dec[t]
		}
	}
}

// receive demodulates the two received streams back into equalized
// unit-scale constellation symbols, one vector per transmitted OFDM symbol.
// The returned rows alias the link's workspace and are valid until the next
// packet.
func (l *Link) receive(rx [2][]complex128, st *State, nSyms int) [][]complex128 {
	ws := l.scratch()
	start := l.Chain.PreambleSamples()
	if l.DetectTiming {
		amp := math.Sqrt(float64(l.TxPower.MilliWatts())) * l.Channel.attenuation()
		if s, _, ok := dsp.DetectPreamble(rx[0], l.Chain.PreambleReps, amp, 0.5); ok {
			start = s
		}
	}
	symLen := l.Chain.SymbolSamples()
	nRxSyms := nSyms
	if l.Mode == ModeSTBC && nRxSyms%2 == 1 {
		nRxSyms++ // STBC pads to an even symbol count
	}
	var ltfGrids [2][2][]complex128
	if l.CSI == CSIPilot {
		grids := ws.ltfGrid.shape(2*LTFSymbols, l.Chain.FFTSize)
		for r := 0; r < 2; r++ {
			for t := 0; t < LTFSymbols; t++ {
				lo := start + t*symLen
				if lo+symLen > len(rx[r]) {
					continue
				}
				grid := grids[r*LTFSymbols+t]
				copy(grid, rx[r][lo+l.Chain.CPLen:lo+l.Chain.CPLen+l.Chain.FFTSize])
				dsp.FFT(grid)
				ltfGrids[r][t] = grid
			}
		}
		start += LTFSymbols * symLen
	}
	tones := len(l.Chain.DataCarriers)
	avail := 0
	for t := 0; t < nRxSyms; t++ {
		if start+(t+1)*symLen > len(rx[0]) {
			break
		}
		avail++
	}
	if avail == 0 {
		return nil
	}
	ws.grid = growC(ws.grid, l.Chain.FFTSize)
	var rxF [2][][]complex128
	for r := 0; r < 2; r++ {
		rows := ws.rxF[r].shape(avail, tones)
		for t := 0; t < avail; t++ {
			lo := start + t*symLen
			l.Chain.fromTimeDomainInto(rx[r][lo:lo+symLen], rows[t], ws.grid)
		}
		rxF[r] = rows
	}
	var h toneResponse
	if l.CSI == CSIPilot {
		h = estimateFromLTF(ltfGrids, l.Chain, l.toneGain())
	} else {
		// Genie CSI: the exact per-tone response of every antenna path.
		hRows := ws.hGrid.shape(4, tones)
		ws.resp = growC(ws.resp, l.Chain.FFTSize)
		for t := 0; t < 2; t++ {
			for r := 0; r < 2; r++ {
				st.FreqResponseInto(t, r, ws.resp)
				perTone := hRows[t*2+r]
				for k, bin := range l.Chain.DataCarriers {
					perTone[k] = ws.resp[bin]
				}
				h[t][r] = perTone
			}
		}
	}
	gain := l.toneGain()
	var eq [][]complex128
	if l.Mode == ModeSTBC {
		eq = alamoutiDecodeInto(&ws.eq, rxF, h)
	} else {
		eq = mrcDecodeInto(&ws.eq, rxF, h)
	}
	for _, syms := range eq {
		dsp.Scale(syms, 1/gain)
	}
	if len(eq) > nSyms {
		eq = eq[:nSyms]
	}
	if l.Modulation == phy.DQPSK {
		diffDecodeAcrossTime(eq)
	}
	return eq
}

// Measurement accumulates BERMAC-style statistics over a run.
type Measurement struct {
	Packets      int
	PacketErrors int
	Bits         int
	BitErrors    int
	// Constellation holds up to ConstellationCap equalized RX symbols.
	Constellation []complex128
	// evSum accumulates error-vector power, sigSum signal power, for EVM.
	evSum, sigSum float64
}

// ConstellationCap bounds the stored constellation sample.
const ConstellationCap = 512

// BER returns the measured bit error rate.
func (m *Measurement) BER() float64 {
	if m.Bits == 0 {
		return 0
	}
	return float64(m.BitErrors) / float64(m.Bits)
}

// PER returns the measured packet error rate.
func (m *Measurement) PER() float64 {
	if m.Packets == 0 {
		return 0
	}
	return float64(m.PacketErrors) / float64(m.Packets)
}

// EVM returns the root-mean-square error-vector magnitude relative to the
// ideal constellation, and MeasuredSNRdB derives the link SNR from it
// (SNR ≈ 1/EVM²) — how the reproduction "measures" SNR like the paper's
// receiver does.
func (m *Measurement) EVM() float64 {
	if m.sigSum == 0 {
		return 0
	}
	return math.Sqrt(m.evSum / m.sigSum)
}

// MeasuredSNRdB returns the SNR inferred from the error vectors.
func (m *Measurement) MeasuredSNRdB() float64 {
	evm := m.EVM()
	if evm == 0 {
		return math.Inf(1)
	}
	return -20 * math.Log10(evm)
}

// Merge folds other into m: counters and error-vector power sums
// accumulate, and the stored constellation absorbs other's samples up to
// ConstellationCap. The Monte-Carlo engine merges shard results in
// ascending shard order, which keeps the floating-point sums — and thus
// every derived statistic — bit-identical regardless of how many workers
// produced them.
func (m *Measurement) Merge(other *Measurement) {
	m.Packets += other.Packets
	m.PacketErrors += other.PacketErrors
	m.Bits += other.Bits
	m.BitErrors += other.BitErrors
	m.evSum += other.evSum
	m.sigSum += other.sigSum
	if room := ConstellationCap - len(m.Constellation); room > 0 {
		take := other.Constellation
		if len(take) > room {
			take = take[:room]
		}
		m.Constellation = append(m.Constellation, take...)
	}
}

// RunPacket transmits one packet of the given payload size and accumulates
// the outcome into meas. With Coding set, the payload is convolutionally
// encoded before modulation and Viterbi-decoded at the receiver; BER and
// PER are then measured on the information bits.
func (l *Link) RunPacket(payloadBytes int, meas *Measurement) {
	if _, coded := l.codeRateOf(); coded {
		l.runCodedPacket(payloadBytes, meas)
		return
	}
	ws := l.scratch()
	mapper := l.mapper()
	nBits := payloadBytes * 8
	bits := l.randomBits(nBits)
	tx, freqSyms := l.buildTx(bits)
	rx, st := l.Channel.Transmit(tx, l.Chain.SampleRate, l.Chain.FFTSize)
	eq := l.receive(rx, st, len(freqSyms))

	// Reference (pre-differential-encoding) symbols for EVM.
	ref := l.Chain.modulateSymbolsInto(&ws.ref, bits, mapper, &ws.padBits)

	errors := 0
	decoded := ws.decoded
	perSym := l.Chain.BitsPerOFDMSymbol(mapper)
	bitsPer := mapper.Bits()
	for t, syms := range eq {
		for k, s := range syms {
			decoded = mapper.Demap(s, decoded[:0])
			base := t*perSym + k*bitsPer
			for b, bit := range decoded {
				idx := base + b
				if idx < nBits && bit != bits[idx] {
					errors++
				}
			}
			if base+bitsPer <= nBits { // symbol carries payload, not padding
				r := ref[t][k]
				d := s - r
				meas.evSum += real(d)*real(d) + imag(d)*imag(d)
				meas.sigSum += real(r)*real(r) + imag(r)*imag(r)
				if len(meas.Constellation) < ConstellationCap {
					meas.Constellation = append(meas.Constellation, s)
				}
			}
		}
	}
	ws.decoded = decoded
	meas.Packets++
	meas.Bits += nBits
	meas.BitErrors += errors
	if errors > 0 {
		meas.PacketErrors++
	}
}

// Run transmits packets back to back (the paper sends 9000 × 1500 B) and
// returns the accumulated measurement.
func (l *Link) Run(packets, payloadBytes int) *Measurement {
	meas := &Measurement{}
	for i := 0; i < packets; i++ {
		l.RunPacket(payloadBytes, meas)
	}
	return meas
}

// runCodedPacket is RunPacket's coded path.
func (l *Link) runCodedPacket(payloadBytes int, meas *Measurement) {
	rate, _ := l.codeRateOf()
	ws := l.scratch()
	mapper := l.mapper()
	nInfo := payloadBytes * 8
	info := l.randomBits(nInfo)
	coded := fec.Encode(info, rate)
	tx, freqSyms := l.buildTx(coded)
	rx, st := l.Channel.Transmit(tx, l.Chain.SampleRate, l.Chain.FFTSize)
	eq := l.receive(rx, st, len(freqSyms))

	ref := l.Chain.modulateSymbolsInto(&ws.ref, coded, mapper, &ws.padBits)
	sd := l.softMapper()
	soft := ws.soft[:0]
	perSym := l.Chain.BitsPerOFDMSymbol(mapper)
	bitsPer := mapper.Bits()
	for t, syms := range eq {
		for k, s := range syms {
			soft = sd.Demap(s, soft)
			if base := t*perSym + k*bitsPer; base+bitsPer <= len(coded) {
				r := ref[t][k]
				d := s - r
				meas.evSum += real(d)*real(d) + imag(d)*imag(d)
				meas.sigSum += real(r)*real(r) + imag(r)*imag(r)
				if len(meas.Constellation) < ConstellationCap {
					meas.Constellation = append(meas.Constellation, s)
				}
			}
		}
	}
	if len(soft) > len(coded) {
		soft = soft[:len(coded)] // drop modulation padding
	}
	ws.soft = soft
	decoded := fec.Decode(soft, nInfo, rate)
	errors := 0
	for i := range info {
		if decoded[i] != info[i] {
			errors++
		}
	}
	meas.Packets++
	meas.Bits += nInfo
	meas.BitErrors += errors
	if errors > 0 {
		meas.PacketErrors++
	}
}

// TxWaveform returns the antenna-1 transmit samples of one packet, for
// spectral analysis (Fig 1). The samples are copied out of the link's
// workspace, so the result survives later packets.
func (l *Link) TxWaveform(payloadBytes int) []complex128 {
	bits := l.randomBits(payloadBytes * 8)
	tx, _ := l.buildTx(bits)
	return append([]complex128(nil), tx[0]...)
}
