package baseband

import (
	"math"
	"reflect"
	"testing"

	"acorn/internal/phy"
	"acorn/internal/spectrum"
)

// TestMeasurementMerge checks that Merge accumulates every statistic a
// Measurement derives: BER, PER, EVM, and the bounded constellation store.
func TestMeasurementMerge(t *testing.T) {
	a := &Measurement{
		Packets: 10, PacketErrors: 2,
		Bits: 8000, BitErrors: 40,
		evSum: 0.5, sigSum: 100,
		Constellation: []complex128{1, 2i},
	}
	b := &Measurement{
		Packets: 5, PacketErrors: 1,
		Bits: 4000, BitErrors: 20,
		evSum: 0.25, sigSum: 50,
		Constellation: []complex128{3, 4i},
	}
	a.Merge(b)
	if a.Packets != 15 || a.PacketErrors != 3 {
		t.Fatalf("packet counters: %d/%d", a.Packets, a.PacketErrors)
	}
	if a.Bits != 12000 || a.BitErrors != 60 {
		t.Fatalf("bit counters: %d/%d", a.Bits, a.BitErrors)
	}
	if got, want := a.BER(), 60.0/12000; got != want {
		t.Fatalf("BER = %v, want %v", got, want)
	}
	if got, want := a.PER(), 3.0/15; got != want {
		t.Fatalf("PER = %v, want %v", got, want)
	}
	if got, want := a.EVM(), math.Sqrt(0.75/150); got != want {
		t.Fatalf("EVM = %v, want %v", got, want)
	}
	if want := []complex128{1, 2i, 3, 4i}; !reflect.DeepEqual(a.Constellation, want) {
		t.Fatalf("Constellation = %v, want %v", a.Constellation, want)
	}
}

// TestMeasurementMergeConstellationCap checks the constellation store never
// exceeds ConstellationCap under merge.
func TestMeasurementMergeConstellationCap(t *testing.T) {
	a := &Measurement{Constellation: make([]complex128, ConstellationCap-3)}
	b := &Measurement{Constellation: make([]complex128, 10)}
	for i := range b.Constellation {
		b.Constellation[i] = complex(float64(i), 0)
	}
	a.Merge(b)
	if len(a.Constellation) != ConstellationCap {
		t.Fatalf("len = %d, want cap %d", len(a.Constellation), ConstellationCap)
	}
	// The absorbed prefix is b's first three samples.
	for i := 0; i < 3; i++ {
		if a.Constellation[ConstellationCap-3+i] != complex(float64(i), 0) {
			t.Fatalf("sample %d = %v", i, a.Constellation[ConstellationCap-3+i])
		}
	}
	full := &Measurement{Constellation: make([]complex128, ConstellationCap)}
	full.Merge(b)
	if len(full.Constellation) != ConstellationCap {
		t.Fatalf("full store grew to %d", len(full.Constellation))
	}
}

// TestMergeEquivalentToSequentialRun checks that two half-runs on links
// with the same seeds merge into the single accumulated run: the counters
// and stored constellation are exact; the error-vector power sums agree to
// float rounding (merging regroups a long running sum, so the last bits
// may differ — which is why simrun fixes the grouping, not the history).
func TestMergeEquivalentToSequentialRun(t *testing.T) {
	mk := func(seed int64) *Link {
		ch := &Channel{PathLoss: 98, Fading: FadingMultipath}
		return NewLink(NewChainConfig(spectrum.Width20), phy.QPSK, ModeSTBC, 15, ch, seed)
	}
	const packets, bytes = 8, 200
	whole := &Measurement{}
	for _, seed := range []int64{11, 12} {
		l := mk(seed)
		for i := 0; i < packets; i++ {
			l.RunPacket(bytes, whole)
		}
	}
	merged := &Measurement{}
	for _, seed := range []int64{11, 12} {
		part := mk(seed).Run(packets, bytes)
		merged.Merge(part)
	}
	if whole.Packets != merged.Packets || whole.PacketErrors != merged.PacketErrors ||
		whole.Bits != merged.Bits || whole.BitErrors != merged.BitErrors {
		t.Fatalf("counters differ: %+v vs %+v", whole, merged)
	}
	if !reflect.DeepEqual(whole.Constellation, merged.Constellation) {
		t.Fatalf("constellation stores differ")
	}
	if rel := math.Abs(whole.EVM()-merged.EVM()) / whole.EVM(); rel > 1e-12 {
		t.Fatalf("EVM relative difference %g exceeds rounding tolerance", rel)
	}
}

// TestSteadyStateAllocs pins the zero-alloc contract of the warm packet
// loop: after the first packet sizes every scratch buffer, further packets
// allocate (nearly) nothing. The small allowance covers the constellation
// store before it reaches ConstellationCap.
func TestSteadyStateAllocs(t *testing.T) {
	ch := &Channel{PathLoss: 100, Fading: FadingMultipath}
	l := NewLink(NewChainConfig(spectrum.Width20), phy.QPSK, ModeSTBC, 15, ch, 1)
	var m Measurement
	for i := 0; i < 4; i++ {
		l.RunPacket(1500, &m) // warm the workspace and fill the store
	}
	avg := testing.AllocsPerRun(20, func() {
		l.RunPacket(1500, &m)
	})
	if avg > 8 {
		t.Fatalf("steady-state RunPacket allocates %.1f objects/op, want <= 8", avg)
	}
}
