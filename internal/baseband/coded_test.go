package baseband

import (
	"testing"

	"acorn/internal/phy"
	"acorn/internal/spectrum"
	"acorn/internal/units"
)

func codedLink(w spectrum.Width, mod phy.Modulation, rate phy.CodeRate, ch *Channel, seed int64) *Link {
	l := NewLink(NewChainConfig(w), mod, ModeSTBC, 15, ch, seed)
	l.Coding = &rate
	return l
}

func TestCodedLoopbackAllRates(t *testing.T) {
	for _, rate := range []phy.CodeRate{phy.Rate12, phy.Rate23, phy.Rate34, phy.Rate56} {
		ch := &Channel{Noiseless: true}
		l := codedLink(spectrum.Width20, phy.QPSK, rate, ch, 5)
		meas := l.Run(2, 300)
		if meas.BitErrors != 0 {
			t.Errorf("rate %v: %d info-bit errors on noiseless channel", rate, meas.BitErrors)
		}
	}
}

func TestCodedLoopbackQAMAndMultipath(t *testing.T) {
	ch := &Channel{Fading: FadingMultipath, Noiseless: true}
	l := codedLink(spectrum.Width40, phy.QAM64, phy.Rate34, ch, 7)
	if meas := l.Run(2, 300); meas.BitErrors != 0 {
		t.Errorf("coded 64QAM multipath loopback had %d errors", meas.BitErrors)
	}
}

// codedVsUncoded measures both flavours at the same operating point.
func codedVsUncoded(t *testing.T, targetSNR float64) (coded, uncoded *Measurement) {
	t.Helper()
	tx := units.DBm(15)
	pl := pathLossForTestSNR(tx, targetSNR)
	rate := phy.Rate12
	cl := codedLink(spectrum.Width20, phy.QPSK, rate, &Channel{PathLoss: pl}, 11)
	coded = cl.Run(40, 250)
	ul := NewLink(NewChainConfig(spectrum.Width20), phy.QPSK, ModeSTBC, tx, &Channel{PathLoss: pl}, 11)
	uncoded = ul.Run(40, 250)
	return coded, uncoded
}

func TestCodingGainMeasured(t *testing.T) {
	// At a mid-waterfall SNR the rate-1/2 code must crush the BER
	// relative to uncoded transmission — the measured coding gain that
	// the analytic CodedBER model promises.
	coded, uncoded := codedVsUncoded(t, 5)
	if uncoded.BER() == 0 {
		t.Fatal("operating point too clean to observe coding gain")
	}
	if coded.BER() >= uncoded.BER()/5 {
		t.Errorf("coded BER %v not well below uncoded %v", coded.BER(), uncoded.BER())
	}
	if coded.PER() > uncoded.PER() {
		t.Errorf("coded PER %v above uncoded %v", coded.PER(), uncoded.PER())
	}
}

func TestCodedWaterfallOrdering(t *testing.T) {
	// Across rates at a fixed SNR, weaker codes leave more errors —
	// the ordering the analytic model (and Table 1) depends on.
	tx := units.DBm(15)
	pl := pathLossForTestSNR(tx, 3.0)
	ber := func(rate phy.CodeRate, seed int64) float64 {
		l := codedLink(spectrum.Width20, phy.QPSK, rate, &Channel{PathLoss: pl}, seed)
		return l.Run(30, 250).BER()
	}
	b12 := ber(phy.Rate12, 3)
	b56 := ber(phy.Rate56, 3)
	if b12 >= b56 {
		t.Errorf("rate 1/2 BER %v should be below rate 5/6 BER %v", b12, b56)
	}
}

func TestCodedBondingPenaltyPersists(t *testing.T) {
	// The paper's central effect survives coding: at the same Tx power
	// the 40 MHz coded link has more residual errors than the 20 MHz one.
	tx := units.DBm(15)
	pl := pathLossForTestSNR(tx, 4.0)
	run := func(w spectrum.Width) *Measurement {
		l := codedLink(w, phy.QPSK, phy.Rate34, &Channel{PathLoss: pl}, 13)
		return l.Run(30, 250)
	}
	m20 := run(spectrum.Width20)
	m40 := run(spectrum.Width40)
	if m40.PER() < m20.PER() {
		t.Errorf("coded: 40 MHz PER %v below 20 MHz PER %v at same Tx", m40.PER(), m20.PER())
	}
}

// pathLossForTestSNR mirrors the experiments helper: path loss landing the
// pre-combining per-subcarrier SNR at target for 20 MHz.
func pathLossForTestSNR(tx units.DBm, target float64) units.DB {
	perSC := phy.SubcarrierTxPower(tx, spectrum.Width20)
	return units.DB(float64(perSC)-target) - units.DB(float64(phy.SubcarrierNoiseFloor()))
}
