package baseband

import (
	"testing"

	"acorn/internal/phy"
	"acorn/internal/spectrum"
	"acorn/internal/units"
)

func TestPilotLayoutMatchesNumerology(t *testing.T) {
	for _, w := range []spectrum.Width{spectrum.Width20, spectrum.Width40} {
		cfg := NewChainConfig(w)
		if got, want := len(cfg.PilotCarriers), phyPilotCount(w); got != want {
			t.Errorf("%v: %d pilot carriers, want %d", w, got, want)
		}
		// Pilot and data bins must be disjoint.
		data := map[int]bool{}
		for _, b := range cfg.DataCarriers {
			data[b] = true
		}
		for _, b := range cfg.PilotCarriers {
			if data[b] {
				t.Errorf("%v: pilot bin %d collides with a data carrier", w, b)
			}
			if b == 0 {
				t.Errorf("%v: pilot at DC", w)
			}
		}
		if got, want := len(cfg.DataCarriers)+len(cfg.PilotCarriers),
			phy.UsedSubcarriers(w); got != want {
			t.Errorf("%v: %d used tones, want %d", w, got, want)
		}
	}
}

func TestPilotCSILoopbackFlat(t *testing.T) {
	// Flat channels: linear interpolation from pilots is exact, so pilot
	// CSI must decode cleanly without noise, both modes and widths.
	for _, w := range []spectrum.Width{spectrum.Width20, spectrum.Width40} {
		for _, mode := range []TxMode{ModeSTBC, ModeSISO} {
			ch := &Channel{Fading: FadingFlat, Noiseless: true}
			l := NewLink(NewChainConfig(w), phy.QPSK, mode, 15, ch, 3)
			l.CSI = CSIPilot
			meas := l.Run(3, 300)
			if meas.BitErrors != 0 {
				t.Errorf("%v/%v: pilot-CSI flat loopback had %d bit errors", w, mode, meas.BitErrors)
			}
		}
	}
}

func TestTrainedCSIHandlesMultipath(t *testing.T) {
	// Frequency-selective channel: the full-band LTF resolves every tone,
	// so trained estimation decodes cleanly without noise.
	ch := &Channel{Fading: FadingMultipath, Noiseless: true}
	l := NewLink(NewChainConfig(spectrum.Width20), phy.QPSK, ModeSISO, 15, ch, 7)
	l.CSI = CSIPilot
	meas := l.Run(10, 300)
	if meas.BitErrors != 0 {
		t.Errorf("trained-CSI multipath loopback had %d bit errors", meas.BitErrors)
	}
}

func TestPilotVsGenieGap(t *testing.T) {
	// With noise, estimated CSI must be worse than genie CSI — but in
	// the same ballpark (the estimation penalty is a couple of dB, not a
	// collapse).
	tx := units.DBm(15)
	pl := pathLossForTestSNR(tx, 5)
	run := func(csi CSIMode, seed int64) float64 {
		ch := &Channel{PathLoss: pl, Fading: FadingFlat}
		l := NewLink(NewChainConfig(spectrum.Width20), phy.QPSK, ModeSTBC, tx, ch, seed)
		l.CSI = csi
		return l.Run(40, 300).BER()
	}
	genie := run(CSIGenie, 13)
	pilot := run(CSIPilot, 13)
	if genie == 0 {
		t.Skip("operating point too clean to compare")
	}
	if pilot < genie {
		t.Errorf("pilot CSI (%v) should not beat genie CSI (%v)", pilot, genie)
	}
	if pilot > 30*genie {
		t.Errorf("pilot CSI BER %v collapsed vs genie %v", pilot, genie)
	}
}

func TestInsertPilotsAlternation(t *testing.T) {
	cfg := NewChainConfig(spectrum.Width20)
	grid := make([]complex128, cfg.FFTSize)
	// Antenna 0 sounds even symbols.
	insertPilots(grid, cfg.PilotCarriers, 0, 0, 2)
	if grid[cfg.PilotCarriers[0]] == 0 {
		t.Error("antenna 0 should sound symbol 0")
	}
	grid2 := make([]complex128, cfg.FFTSize)
	insertPilots(grid2, cfg.PilotCarriers, 0, 1, 2)
	if grid2[cfg.PilotCarriers[0]] != 0 {
		t.Error("antenna 0 must stay silent on odd symbols")
	}
	grid3 := make([]complex128, cfg.FFTSize)
	insertPilots(grid3, cfg.PilotCarriers, 1, 1, 2)
	if grid3[cfg.PilotCarriers[0]] == 0 {
		t.Error("antenna 1 should sound symbol 1")
	}
}

func TestLTFSignDeterministicAndMixed(t *testing.T) {
	cfg := NewChainConfig(spectrum.Width20)
	plus, minus := 0, 0
	for _, bin := range cfg.DataCarriers {
		if ltfSign(bin) != ltfSign(bin) {
			t.Fatal("ltfSign not deterministic")
		}
		if ltfSign(bin) > 0 {
			plus++
		} else {
			minus++
		}
	}
	// The sign pattern must actually mix (peak-factor control).
	if plus == 0 || minus == 0 {
		t.Errorf("degenerate LTF sign pattern: %d plus, %d minus", plus, minus)
	}
}
