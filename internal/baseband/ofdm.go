package baseband

import (
	"fmt"

	"acorn/internal/dsp"
	"acorn/internal/phy"
	"acorn/internal/spectrum"
)

// ChainConfig fixes the OFDM numerology of a transmit/receive chain.
type ChainConfig struct {
	Width spectrum.Width
	// FFTSize is 64 at 20 MHz, 128 at 40 MHz.
	FFTSize int
	// CPLen is the cyclic prefix length in samples (1/4 of the FFT, the
	// 800 ns long guard interval).
	CPLen int
	// DataCarriers lists the FFT bin indices carrying data.
	DataCarriers []int
	// PilotCarriers lists the FFT bin indices reserved for pilot tones
	// (the standard 802.11n positions: ±7, ±21 at 20 MHz; ±11, ±25, ±53
	// at 40 MHz).
	PilotCarriers []int
	// SampleRate is FFTSize × subcarrier spacing (20 or 40 Msps).
	SampleRate float64
	// PreambleReps is the number of Barker-13 repetitions prepended.
	PreambleReps int
}

// NewChainConfig builds the standard configuration for a width, with the
// paper's subcarrier counts and the 802.11n tone layout: at 20 MHz the 56
// used tones are ±1…±28 with pilots at ±7 and ±21 (52 data); at 40 MHz the
// 114 used tones are ±2…±58 with pilots at ±11, ±25 and ±53 (108 data).
func NewChainConfig(w spectrum.Width) ChainConfig {
	fftSize := phy.FFTSize20
	lo, hi := 1, 28
	pilots := []int{7, 21}
	if w == spectrum.Width40 {
		fftSize = phy.FFTSize40
		lo, hi = 2, 58
		pilots = []int{11, 25, 53}
	}
	cfg := ChainConfig{
		Width:        w,
		FFTSize:      fftSize,
		CPLen:        fftSize / 4,
		SampleRate:   float64(fftSize) * phy.SubcarrierSpacingHz,
		PreambleReps: 4,
	}
	isPilot := func(k int) bool {
		for _, p := range pilots {
			if k == p {
				return true
			}
		}
		return false
	}
	bin := func(tone int) int { return (tone + fftSize) % fftSize }
	for _, sign := range []int{1, -1} {
		for k := lo; k <= hi; k++ {
			if isPilot(k) {
				cfg.PilotCarriers = append(cfg.PilotCarriers, bin(sign*k))
			} else {
				cfg.DataCarriers = append(cfg.DataCarriers, bin(sign*k))
			}
		}
	}
	return cfg
}

// SymbolSamples is the length of one OFDM symbol including the cyclic
// prefix.
func (c ChainConfig) SymbolSamples() int { return c.FFTSize + c.CPLen }

// PreambleSamples is the length of the prepended Barker preamble.
func (c ChainConfig) PreambleSamples() int { return c.PreambleReps * len(dsp.Barker13) }

// BitsPerOFDMSymbol returns the data bits carried by one OFDM symbol at the
// given modulation.
func (c ChainConfig) BitsPerOFDMSymbol(m Mapper) int {
	return len(c.DataCarriers) * m.Bits()
}

// modulateSymbols maps a bitstream onto a sequence of frequency-domain OFDM
// symbols (one slice of len(DataCarriers) constellation points per symbol).
// Trailing bits that do not fill a symbol are zero-padded.
func (c ChainConfig) modulateSymbols(bits []byte, m Mapper) [][]complex128 {
	var g symGrid
	var pad []byte
	return c.modulateSymbolsInto(&g, bits, m, &pad)
}

// modulateSymbolsInto is the scratch-buffer variant of modulateSymbols: the
// symbol grid and the zero-padded tail buffer are reused across packets.
func (c ChainConfig) modulateSymbolsInto(dst *symGrid, bits []byte, m Mapper, pad *[]byte) [][]complex128 {
	perSym := c.BitsPerOFDMSymbol(m)
	nSyms := (len(bits) + perSym - 1) / perSym
	rows := dst.shape(nSyms, len(c.DataCarriers))
	b := m.Bits()
	for s := 0; s < nSyms; s++ {
		base := s * perSym
		chunk := bits[base:min(base+perSym, len(bits))]
		if len(chunk) < perSym {
			p := growB(*pad, perSym)
			*pad = p
			n := copy(p, chunk)
			for i := n; i < perSym; i++ {
				p[i] = 0
			}
			chunk = p
		}
		row := rows[s]
		for i := range row {
			row[i] = m.Map(chunk[i*b : i*b+b])
		}
	}
	return rows
}

// toTimeDomain converts one frequency-domain symbol (data-carrier order) to
// time-domain samples with cyclic prefix, scaling each tone by gain. The
// antenna/symbol indices control pilot sounding: each antenna transmits the
// known pilots on alternating OFDM symbols (time-orthogonal sounding), so a
// pilot-based receiver can separate the two spatial channels.
func (c ChainConfig) toTimeDomain(freqSyms []complex128, gain float64, antenna, symbolIdx int) []complex128 {
	grid := make([]complex128, c.FFTSize)
	out := make([]complex128, 0, c.SymbolSamples())
	return c.appendTimeDomain(out, freqSyms, gain, antenna, symbolIdx, grid)
}

// appendTimeDomain is the scratch-buffer variant of toTimeDomain: it appends
// the cyclic-prefixed time-domain samples of one OFDM symbol to dst, using
// the caller-owned grid (length FFTSize) as FFT scratch.
func (c ChainConfig) appendTimeDomain(dst, freqSyms []complex128, gain float64, antenna, symbolIdx int, grid []complex128) []complex128 {
	if len(freqSyms) != len(c.DataCarriers) {
		panic(fmt.Sprintf("baseband: %d symbols for %d carriers", len(freqSyms), len(c.DataCarriers)))
	}
	grid = grid[:c.FFTSize]
	for i := range grid {
		grid[i] = 0
	}
	for i, bin := range c.DataCarriers {
		grid[bin] = freqSyms[i]
	}
	insertPilots(grid, c.PilotCarriers, antenna, symbolIdx, 1)
	dsp.Scale(grid, gain)
	dsp.IFFT(grid)
	dst = append(dst, grid[c.FFTSize-c.CPLen:]...)
	dst = append(dst, grid...)
	return dst
}

// gridToTimeDomain IFFTs a frequency grid and prepends the cyclic prefix.
// The grid is transformed in place.
func (c ChainConfig) gridToTimeDomain(grid []complex128) []complex128 {
	dsp.IFFT(grid)
	out := make([]complex128, 0, c.SymbolSamples())
	out = append(out, grid[c.FFTSize-c.CPLen:]...) // cyclic prefix
	out = append(out, grid...)
	return out
}

// fromTimeDomain strips the cyclic prefix from one received OFDM symbol and
// returns the frequency-domain data-carrier values plus the full FFT grid
// (which pilot-based channel estimation reads).
func (c ChainConfig) fromTimeDomain(samples []complex128) (data, grid []complex128) {
	grid = make([]complex128, c.FFTSize)
	data = make([]complex128, len(c.DataCarriers))
	c.fromTimeDomainInto(samples, data, grid)
	return data, grid
}

// fromTimeDomainInto is the scratch-buffer variant of fromTimeDomain: data
// (length len(DataCarriers)) and grid (length FFTSize) are caller-owned and
// reused across symbols.
func (c ChainConfig) fromTimeDomainInto(samples, data, grid []complex128) {
	if len(samples) < c.SymbolSamples() {
		panic("baseband: short OFDM symbol")
	}
	copy(grid, samples[c.CPLen:c.CPLen+c.FFTSize])
	dsp.FFT(grid)
	for i, bin := range c.DataCarriers {
		data[i] = grid[bin]
	}
}
