package baseband

import (
	"math"
	"math/cmplx"
	"math/rand"

	"acorn/internal/dsp"
	"acorn/internal/phy"
	"acorn/internal/units"
)

// FadingModel selects how the propagation channel between each TX/RX
// antenna pair behaves within a packet.
type FadingModel int

const (
	// FadingNone is a pure AWGN channel: unit gains, noise only. It is
	// the model behind the theoretical curves of Fig 3.
	FadingNone FadingModel = iota
	// FadingFlat draws one complex Rayleigh gain per antenna pair per
	// packet (quasi-static flat fading).
	FadingFlat
	// FadingRician mixes a line-of-sight component with scattered energy
	// (K-factor below), matching indoor links with a dominant path.
	FadingRician
	// FadingMultipath draws a tapped-delay-line impulse response per
	// antenna pair (exponential power-delay profile, MultipathTaps taps)
	// and convolves the transmitted samples with it. The delay spread is
	// absorbed by the OFDM cyclic prefix and equalized per subcarrier —
	// the frequency-selective case OFDM exists to handle.
	FadingMultipath
)

// RicianK is the K-factor (linear) used by FadingRician.
const RicianK = 6.0

// MultipathTaps is the impulse-response length of FadingMultipath, well
// inside the 16-sample (20 MHz) cyclic prefix.
const MultipathTaps = 8

// multipathDecay is the per-tap power decay of the exponential profile.
const multipathDecay = 0.6

// Jammer is a narrowband interferer: a set of tones at given FFT bins with
// the given total power, active for the whole packet. OFDM localizes the
// damage to the jammed subcarriers — the resilience the paper's Section 2
// credits OFDM with.
type Jammer struct {
	// Bins are FFT bin indices (of the receiver's transform) to jam.
	Bins []int
	// PowerMW is the total jammer power in milliwatts at the receiver,
	// split across the bins.
	PowerMW float64
}

// Channel is the simulated radio channel between a 2-antenna transmitter
// and a 2-antenna receiver.
type Channel struct {
	// PathLoss attenuates the signal (amplitude applied as 10^(−PL/20)).
	PathLoss units.DB
	// Fading selects the small-scale model.
	Fading FadingModel
	// NoiseFloorOverride, when non-zero, replaces the thermal noise power
	// (mW) derived from the chain's sample rate. Tests use it to build
	// noiseless channels.
	NoiseFloorOverride float64
	// Noiseless disables thermal noise entirely (for loopback tests).
	Noiseless bool
	// Jam, when non-nil, adds a narrowband interferer.
	Jam *Jammer

	rng *rand.Rand
	ws  chanWorkspace
}

// chanWorkspace holds the channel's reusable buffers: the received sample
// streams, the jammer waveform, and the per-packet state realization. The
// slices returned by Transmit alias these buffers and are valid only until
// the next packet through the same Channel.
type chanWorkspace struct {
	rx   [2][]complex128
	jam  []complex128
	st   State
	taps [2][2][MultipathTaps]complex128
}

// NewChannel builds a channel with the given path loss and fading model,
// drawing randomness from rng.
func NewChannel(pathLoss units.DB, fading FadingModel, rng *rand.Rand) *Channel {
	return &Channel{PathLoss: pathLoss, Fading: fading, rng: rng}
}

// State is the realization of the channel for one packet: the impulse
// response of every TX→RX antenna path (length 1 for flat models), with
// path loss folded in.
type State struct {
	// Taps[t][r] is the impulse response from TX antenna t to RX
	// antenna r.
	Taps [2][2][]complex128
}

// FreqResponse returns the per-bin frequency response of path (t, r) for
// an FFT of the given size.
func (st *State) FreqResponse(t, r, fftSize int) []complex128 {
	grid := make([]complex128, fftSize)
	st.FreqResponseInto(t, r, grid)
	return grid
}

// FreqResponseInto is the scratch-buffer variant of FreqResponse: dst must
// have the FFT size as its length and is fully overwritten.
func (st *State) FreqResponseInto(t, r int, dst []complex128) {
	for i := range dst {
		dst[i] = 0
	}
	copy(dst, st.Taps[t][r])
	dsp.FFT(dst)
}

// gain draws one complex small-scale coefficient for the configured model.
func (c *Channel) gain() complex128 {
	switch c.Fading {
	case FadingFlat:
		return complex(c.rng.NormFloat64()/math.Sqrt2, c.rng.NormFloat64()/math.Sqrt2)
	case FadingRician:
		los := complex(math.Sqrt(RicianK), 0)
		scatter := complex(c.rng.NormFloat64()/math.Sqrt2, c.rng.NormFloat64()/math.Sqrt2)
		return (los + scatter) / complex(math.Sqrt(RicianK+1), 0)
	default:
		return 1
	}
}

// drawState realizes the per-packet channel into the channel-owned State,
// reusing the tap storage; the returned pointer is valid until the next
// draw.
func (c *Channel) drawState() *State {
	st := &c.ws.st
	att := complex(c.attenuation(), 0)
	for t := 0; t < 2; t++ {
		for r := 0; r < 2; r++ {
			if c.Fading == FadingMultipath {
				taps := c.ws.taps[t][r][:MultipathTaps]
				// Exponential power-delay profile, unit total power.
				var norm float64
				p := 1.0
				for i := range taps {
					taps[i] = complex(c.rng.NormFloat64(), c.rng.NormFloat64()) * complex(math.Sqrt(p/2), 0)
					norm += p
					p *= multipathDecay
				}
				scale := complex(1/math.Sqrt(norm), 0) * att
				for i := range taps {
					taps[i] *= scale
				}
				st.Taps[t][r] = taps
			} else {
				taps := c.ws.taps[t][r][:1]
				taps[0] = c.gain() * att
				st.Taps[t][r] = taps
			}
		}
	}
	return st
}

// noisePowerMW returns the per-sample complex noise variance in mW for the
// given sample rate.
func (c *Channel) noisePowerMW(sampleRate float64) float64 {
	if c.Noiseless {
		return 0
	}
	if c.NoiseFloorOverride > 0 {
		return c.NoiseFloorOverride
	}
	floor := phy.NoiseFloor(units.Hertz(sampleRate))
	return float64(floor.MilliWatts())
}

// attenuation returns the amplitude attenuation factor from the path loss.
func (c *Channel) attenuation() float64 {
	return math.Pow(10, -float64(c.PathLoss)/20)
}

// Transmit passes the two per-antenna sample streams through the channel
// and returns the two received streams plus the realized channel state.
// All four TX→RX paths share the packet's quasi-static realization;
// independent AWGN is added per RX antenna and sample; the jammer's tones,
// if configured, are superimposed with a random phase per packet. The
// returned streams and state alias channel-owned scratch buffers: they are
// valid until the next Transmit on the same Channel.
func (c *Channel) Transmit(tx [2][]complex128, sampleRate float64, fftSize int) (rx [2][]complex128, st *State) {
	n := len(tx[0])
	if len(tx[1]) != n {
		panic("baseband: antenna streams of unequal length")
	}
	st = c.drawState()
	sigma := math.Sqrt(c.noisePowerMW(sampleRate) / 2) // per real dimension
	var jam []complex128
	if c.Jam != nil && len(c.Jam.Bins) > 0 && c.Jam.PowerMW > 0 {
		jam = c.jammerSamples(n, fftSize)
	}
	for r := 0; r < 2; r++ {
		out := growC(c.ws.rx[r], n)
		c.ws.rx[r] = out
		for i := range out {
			out[i] = 0
		}
		for t := 0; t < 2; t++ {
			taps := st.Taps[t][r]
			src := tx[t]
			if len(taps) == 1 {
				// Flat models: a single complex gain, no delay line.
				h := taps[0]
				for i := 0; i < n; i++ {
					out[i] += src[i] * h
				}
				continue
			}
			for i := 0; i < n; i++ {
				var v complex128
				for d, h := range taps {
					if i-d >= 0 {
						v += src[i-d] * h
					}
				}
				out[i] += v
			}
		}
		if sigma > 0 {
			for i := 0; i < n; i++ {
				out[i] += complex(c.rng.NormFloat64()*sigma, c.rng.NormFloat64()*sigma)
			}
		}
		if jam != nil {
			for i := 0; i < n; i++ {
				out[i] += jam[i]
			}
		}
		rx[r] = out
	}
	return rx, st
}

// jammerSamples synthesizes the narrowband interference waveform into the
// channel's reusable buffer: one complex exponential per jammed bin, each
// with an independent random phase, total power split evenly.
func (c *Channel) jammerSamples(n, fftSize int) []complex128 {
	perTone := math.Sqrt(c.Jam.PowerMW / float64(len(c.Jam.Bins)))
	out := growC(c.ws.jam, n)
	c.ws.jam = out
	for i := range out {
		out[i] = 0
	}
	for _, bin := range c.Jam.Bins {
		phase := c.rng.Float64() * 2 * math.Pi
		w := 2 * math.Pi * float64(bin) / float64(fftSize)
		for i := 0; i < n; i++ {
			out[i] += cmplx.Rect(perTone, phase+w*float64(i))
		}
	}
	return out
}
