package baseband

import "math/cmplx"

// Alamouti 2×2 space-time block coding (Section 3.1: "These samples are
// transmitted over the air using 2x2 STBC ... Alamouti"; the testbed's
// auto-rate falls back to this mode on poor links).
//
// Per subcarrier and per pair of OFDM symbol times (t, t+1):
//
//	antenna 1 sends  s0, −s1*
//	antenna 2 sends  s1,  s0*
//
// With per-subcarrier channel responses H[t][r][k] the receiver combines
// both antennas and both times to recover s0, s1 with full diversity; the
// per-tone combining handles frequency-selective (multipath) channels.

// alamoutiEncode expands a sequence of frequency-domain symbol vectors into
// the two antenna streams. The number of OFDM symbols is padded to even.
// Each antenna's tone amplitude must be scaled by 1/√2 by the caller (so
// the two antennas together emit the nominal power).
func alamoutiEncode(symbols [][]complex128) (ant1, ant2 [][]complex128) {
	var g1, g2 symGrid
	return alamoutiEncodeInto(&g1, &g2, symbols)
}

// alamoutiEncodeInto is the scratch-buffer variant of alamoutiEncode: the
// two antenna grids are reused across packets. A trailing odd symbol is
// padded with zeros in place of an allocated pad row.
func alamoutiEncodeInto(g1, g2 *symGrid, symbols [][]complex128) (ant1, ant2 [][]complex128) {
	n := len(symbols)
	if n == 0 {
		return g1.shape(0, 0), g2.shape(0, 0)
	}
	m := n
	if m%2 == 1 {
		m++
	}
	tones := len(symbols[0])
	ant1 = g1.shape(m, tones)
	ant2 = g2.shape(m, tones)
	for t := 0; t < m; t += 2 {
		s0 := symbols[t]
		a1t, a2t := ant1[t], ant2[t]
		a1t1, a2t1 := ant1[t+1], ant2[t+1]
		if t+1 < n {
			s1 := symbols[t+1]
			for k := range s0 {
				a1t[k] = s0[k]
				a2t[k] = s1[k]
				a1t1[k] = -cmplx.Conj(s1[k])
				a2t1[k] = cmplx.Conj(s0[k])
			}
		} else {
			// Odd tail: the implicit second symbol is all zeros.
			for k := range s0 {
				a1t[k] = s0[k]
				a2t[k] = 0
				a1t1[k] = 0
				a2t1[k] = cmplx.Conj(s0[k])
			}
		}
	}
	return ant1, ant2
}

// toneResponse holds the channel response of every TX→RX path at the data
// carriers: h[t][r][k].
type toneResponse [2][2][]complex128

// alamoutiDecode combines the two received frequency-domain streams (per RX
// antenna, per OFDM symbol time) back into estimates of the original symbol
// vectors, using genie per-tone channel knowledge. The output length equals
// the (even) input length; a trailing pad symbol is the caller's to drop.
func alamoutiDecode(rx [2][][]complex128, h toneResponse) [][]complex128 {
	var g symGrid
	return alamoutiDecodeInto(&g, rx, h)
}

// alamoutiDecodeInto is the scratch-buffer variant of alamoutiDecode,
// writing the recovered symbol vectors into the reusable grid.
func alamoutiDecodeInto(g *symGrid, rx [2][][]complex128, h toneResponse) [][]complex128 {
	n := len(rx[0])
	if n < 2 {
		return nil
	}
	tones := len(rx[0][0])
	out := g.shape(n-n%2, tones)
	for t := 0; t+1 < n; t += 2 {
		s0 := out[t]
		s1 := out[t+1]
		for k := 0; k < tones; k++ {
			var norm float64
			for a := 0; a < 2; a++ {
				for r := 0; r < 2; r++ {
					v := h[a][r][k]
					norm += real(v)*real(v) + imag(v)*imag(v)
				}
			}
			if norm == 0 {
				norm = 1
			}
			var e0, e1 complex128
			for r := 0; r < 2; r++ {
				rt := rx[r][t][k]
				rt1 := rx[r][t+1][k]
				e0 += cmplx.Conj(h[0][r][k])*rt + h[1][r][k]*cmplx.Conj(rt1)
				e1 += cmplx.Conj(h[1][r][k])*rt - h[0][r][k]*cmplx.Conj(rt1)
			}
			// Real divisor: scale by the reciprocal instead of paying the
			// complex128 division runtime call per tone.
			inv := 1 / norm
			s0[k] = complex(real(e0)*inv, imag(e0)*inv)
			s1[k] = complex(real(e1)*inv, imag(e1)*inv)
		}
	}
	return out
}

// mrcDecode combines the two RX antennas for a SISO transmission from
// antenna 1 via per-tone maximum-ratio combining with genie CSI.
func mrcDecode(rx [2][][]complex128, h toneResponse) [][]complex128 {
	var g symGrid
	return mrcDecodeInto(&g, rx, h)
}

// mrcDecodeInto is the scratch-buffer variant of mrcDecode.
func mrcDecodeInto(g *symGrid, rx [2][][]complex128, h toneResponse) [][]complex128 {
	n := len(rx[0])
	if n == 0 {
		return nil
	}
	tones := len(rx[0][0])
	out := g.shape(n, tones)
	for t := 0; t < n; t++ {
		s := out[t]
		for k := 0; k < tones; k++ {
			var norm float64
			for r := 0; r < 2; r++ {
				v := h[0][r][k]
				norm += real(v)*real(v) + imag(v)*imag(v)
			}
			if norm == 0 {
				norm = 1
			}
			var e complex128
			for r := 0; r < 2; r++ {
				if t < len(rx[r]) {
					e += cmplx.Conj(h[0][r][k]) * rx[r][t][k]
				}
			}
			inv := 1 / norm
			s[k] = complex(real(e)*inv, imag(e)*inv)
		}
	}
	return out
}
