package baseband

import (
	"testing"

	"acorn/internal/phy"
	"acorn/internal/spectrum"
)

// BenchmarkRunPacket is the headline steady-state packet-loop benchmark
// tracked in BENCH_phy.json: uncoded QPSK STBC at 20 MHz, AWGN.
func BenchmarkRunPacket(b *testing.B) {
	ch := &Channel{PathLoss: 100}
	l := NewLink(NewChainConfig(spectrum.Width20), phy.QPSK, ModeSTBC, 15, ch, 1)
	var m Measurement
	b.ReportAllocs()
	b.SetBytes(1500)
	for i := 0; i < b.N; i++ {
		l.RunPacket(1500, &m)
	}
}

func BenchmarkRunPacketQPSK20(b *testing.B) {
	ch := &Channel{PathLoss: 100}
	l := NewLink(NewChainConfig(spectrum.Width20), phy.QPSK, ModeSTBC, 15, ch, 1)
	var m Measurement
	b.ReportAllocs()
	b.SetBytes(1500)
	for i := 0; i < b.N; i++ {
		l.RunPacket(1500, &m)
	}
}

func BenchmarkRunPacketCoded(b *testing.B) {
	ch := &Channel{PathLoss: 100}
	l := NewLink(NewChainConfig(spectrum.Width20), phy.QPSK, ModeSTBC, 15, ch, 1)
	rate := phy.Rate34
	l.Coding = &rate
	var m Measurement
	b.ReportAllocs()
	b.SetBytes(1500)
	for i := 0; i < b.N; i++ {
		l.RunPacket(1500, &m)
	}
}

func BenchmarkRunPacketMultipath40(b *testing.B) {
	ch := &Channel{PathLoss: 100, Fading: FadingMultipath}
	l := NewLink(NewChainConfig(spectrum.Width40), phy.QAM64, ModeSTBC, 15, ch, 1)
	var m Measurement
	b.ReportAllocs()
	b.SetBytes(1500)
	for i := 0; i < b.N; i++ {
		l.RunPacket(1500, &m)
	}
}
