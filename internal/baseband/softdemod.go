package baseband

import (
	"acorn/internal/phy"
)

// softDemapper computes per-bit max-log LLRs for an arbitrary mapper by
// enumerating the constellation. Positive LLR means bit 1, matching the
// fec.Decode convention; the magnitude is the metric difference between the
// nearest point with the bit set and the nearest with it clear.
type softDemapper struct {
	bits   int
	points []complex128
	labels [][]byte
}

func newSoftDemapper(m Mapper) *softDemapper {
	n := m.Bits()
	count := 1 << n
	sd := &softDemapper{bits: n}
	for v := 0; v < count; v++ {
		bits := make([]byte, n)
		for b := 0; b < n; b++ {
			bits[b] = byte(v>>b) & 1
		}
		sd.points = append(sd.points, m.Map(bits))
		sd.labels = append(sd.labels, bits)
	}
	return sd
}

// Demap appends the LLRs of one equalized symbol to dst.
func (sd *softDemapper) Demap(sym complex128, dst []float64) []float64 {
	// min squared distance over points with bit b = 0 / 1, per position.
	const huge = 1e30
	var d0, d1 [6]float64 // max 6 bits per symbol (64QAM)
	for b := 0; b < sd.bits; b++ {
		d0[b], d1[b] = huge, huge
	}
	for i, p := range sd.points {
		dr := real(sym) - real(p)
		di := imag(sym) - imag(p)
		dist := dr*dr + di*di
		for b := 0; b < sd.bits; b++ {
			if sd.labels[i][b] == 1 {
				if dist < d1[b] {
					d1[b] = dist
				}
			} else if dist < d0[b] {
				d0[b] = dist
			}
		}
	}
	for b := 0; b < sd.bits; b++ {
		dst = append(dst, d0[b]-d1[b])
	}
	return dst
}

// codeRateOf returns the configured code rate, ok=false when uncoded.
func (l *Link) codeRateOf() (phy.CodeRate, bool) {
	if l.Coding == nil {
		return 0, false
	}
	return *l.Coding, true
}
