// Package dynamic simulates ACORN operating over time in a live WLAN:
// clients arrive as a Poisson process, stay for CRAWDAD-calibrated
// lognormal durations (internal/assoctrace), and depart; the controller
// admits each arrival with Algorithm 1 and re-runs channel allocation
// (Algorithm 2) every period T, paying a switching outage on every AP that
// changes channel.
//
// Section 4.2 of the paper picks T = 30 minutes from the association-
// duration CDF but does not evaluate the trade-off; this package makes the
// trade-off measurable: reallocating too often burns switching outages
// inside typical associations, too rarely leaves the allocation stale as
// the client population turns over. PeriodSweep quantifies both sides.
package dynamic

import (
	"fmt"
	"math/rand"
	"sort"
	"time"

	"acorn/internal/assoctrace"
	"acorn/internal/core"
	"acorn/internal/rf"
	"acorn/internal/stats"
	"acorn/internal/units"
	"acorn/internal/wlan"
)

// Scenario configures a churn simulation.
type Scenario struct {
	// Seed drives arrivals, placements and link qualities.
	Seed int64
	// Duration is the simulated span.
	Duration time.Duration
	// ArrivalsPerHour is the Poisson client arrival intensity.
	ArrivalsPerHour float64
	// Period is the reallocation period T.
	Period time.Duration
	// SwitchOutage is the per-AP service interruption caused by a
	// channel switch (CSA, queue drain, client re-sync).
	SwitchOutage time.Duration
	// NumAPs places a grid of APs.
	NumAPs int
	// PoorFraction of arrivals sit behind heavy obstructions.
	PoorFraction float64
	// Reassociate re-runs Algorithm 1 for every present client at each
	// reallocation tick, letting associations track the new channel
	// widths (the deployed system interleaves these continuously).
	Reassociate bool
	// AssocWorkers bounds the parallelism of the roaming sweeps run at
	// each reallocation tick (0 = GOMAXPROCS). The sweep is bit-identical
	// to the sequential loop for any worker count, so this only affects
	// wall-clock time.
	AssocWorkers int
}

// DefaultScenario returns a moderate-size office: 6 APs, ~20 concurrent
// clients, 30-minute reallocation, 5-second switch outage.
func DefaultScenario(seed int64) Scenario {
	return Scenario{
		Seed:            seed,
		Duration:        8 * time.Hour,
		ArrivalsPerHour: 40,
		Period:          30 * time.Minute,
		SwitchOutage:    5 * time.Second,
		NumAPs:          6,
		PoorFraction:    0.35,
	}
}

// Result summarizes a run.
type Result struct {
	// MeanThroughputMbps is the time-averaged total network throughput,
	// net of switching outages.
	MeanThroughputMbps float64
	// Reallocations and Switches count Algorithm 2 runs and the channel
	// switches they performed.
	Reallocations, Switches int
	// OutageSeconds is the total throughput-weighted time lost to
	// switches.
	OutageSeconds float64
	// PeakClients is the maximum concurrent client count.
	PeakClients int
	// Arrivals processed.
	Arrivals int
}

type event struct {
	at   time.Duration
	kind int // 0 = arrival, 1 = departure, 2 = reallocate, 3 = report refresh
	id   string
}

// buildGrid places the scenario's AP grid and its controller.
func buildGrid(sc Scenario) ([]*wlan.AP, *wlan.Network, *core.Controller) {
	var aps []*wlan.AP
	for i := 0; i < sc.NumAPs; i++ {
		aps = append(aps, &wlan.AP{
			ID:      fmt.Sprintf("AP%d", i+1),
			Pos:     rf.Point{X: float64(i%3) * 100, Y: float64(i/3) * 100},
			TxPower: 18,
		})
	}
	n := wlan.NewNetwork(aps, nil)
	ctrl, err := core.NewController(n, sc.Seed)
	if err != nil {
		panic(err) // scenario construction bug, not a data condition
	}
	ctrl.Assoc.Workers = sc.AssocWorkers
	return aps, n, ctrl
}

// churnEvents pre-generates the arrival/departure trace. The RNG draws here
// are the only ones before replay, so Run and RunStream walk the identical
// trace for the same seed — the comparison between periodic and streaming
// operation is paired, not merely distributionally equal.
func churnEvents(sc Scenario, rng *rand.Rand, gen assoctrace.Generator) []event {
	var events []event
	clientSeq := 0
	lambdaPerSec := sc.ArrivalsPerHour / 3600
	for t := 0.0; ; {
		t += rng.ExpFloat64() / lambdaPerSec
		at := time.Duration(t * float64(time.Second))
		if at > sc.Duration {
			break
		}
		clientSeq++
		id := fmt.Sprintf("u%04d", clientSeq)
		stay := gen.SampleDuration(rng)
		events = append(events, event{at: at, kind: 0, id: id})
		if dep := at + stay; dep < sc.Duration {
			events = append(events, event{at: dep, kind: 1, id: id})
		}
	}
	sort.SliceStable(events, func(i, j int) bool { return events[i].at < events[j].at })
	return events
}

// Run executes the scenario.
func Run(sc Scenario) Result {
	rng := stats.NewRand(sc.Seed)
	gen := assoctrace.DefaultGenerator()
	aps, n, ctrl := buildGrid(sc)

	// Pre-generate the event list: arrivals (with departures) and the
	// reallocation ticks.
	events := churnEvents(sc, rng, gen)
	if sc.Period > 0 {
		for at := sc.Period; at < sc.Duration; at += sc.Period {
			events = append(events, event{at: at, kind: 2})
		}
	}
	sort.SliceStable(events, func(i, j int) bool { return events[i].at < events[j].at })

	// Walk the timeline: between events throughput is constant.
	var res Result
	var integral float64 // Mbit
	prev := time.Duration(0)
	current := 0.0 // current total throughput
	clientsByID := map[string]*wlan.Client{}

	recompute := func() {
		current = n.Evaluate(ctrl.ConfigView()).TotalUDP
	}
	recompute()

	for _, ev := range events {
		integral += current * (ev.at - prev).Seconds()
		prev = ev.at
		switch ev.kind {
		case 0: // arrival
			res.Arrivals++
			c := spawnClient(rng, aps, ev.id, sc.PoorFraction, n)
			clientsByID[ev.id] = c
			n.Clients = append(n.Clients, c)
			ctrl.Admit(c)
			if len(clientsByID) > res.PeakClients {
				res.PeakClients = len(clientsByID)
			}
		case 1: // departure
			if c := clientsByID[ev.id]; c != nil {
				delete(clientsByID, ev.id)
				ctrl.Evict(ev.id)
				removeClient(n, ev.id)
			}
		case 2: // periodic reallocation
			before := ctrl.ConfigView().Channels
			if sc.Reassociate {
				// Refresh associations first so the allocation fits
				// the current population (the order AutoConfigure
				// uses); reallocating against stale groupings and
				// then moving clients would leave the channel plan
				// mismatched until the next tick.
				ids := make([]string, 0, len(clientsByID))
				for id := range clientsByID {
					ids = append(ids, id)
				}
				sort.Strings(ids)
				clients := make([]*wlan.Client, 0, len(ids))
				for _, id := range ids {
					clients = append(clients, clientsByID[id])
				}
				ctrl.RoamAll(clients, 0.05)
			}
			st := ctrl.Reallocate()
			res.Reallocations++
			_ = st
			after := ctrl.ConfigView().Channels
			// Charge the switching outage: each switched AP loses its
			// cell throughput for SwitchOutage seconds.
			rep := n.Evaluate(ctrl.ConfigView())
			for apID, ch := range after {
				if before[apID] != ch {
					res.Switches++
					if cell := rep.Cell(apID); cell != nil {
						lost := cell.ThroughputUDP * sc.SwitchOutage.Seconds()
						integral -= lost
						res.OutageSeconds += sc.SwitchOutage.Seconds()
					}
				}
			}
		}
		recompute()
	}
	integral += current * (sc.Duration - prev).Seconds()

	res.MeanThroughputMbps = integral / sc.Duration.Seconds()
	return res
}

// spawnClient places a new client near a random AP, possibly behind heavy
// obstructions.
func spawnClient(rng interface {
	Intn(int) int
	Float64() float64
}, aps []*wlan.AP, id string, poorFraction float64, n *wlan.Network) *wlan.Client {
	home := aps[rng.Intn(len(aps))]
	c := &wlan.Client{
		ID: id,
		Pos: rf.Point{
			X: home.Pos.X + rng.Float64()*24 - 12,
			Y: home.Pos.Y + rng.Float64()*24 - 12,
		},
	}
	if rng.Float64() < poorFraction {
		wall := units.DB(44 + rng.Float64()*10)
		c.ExtraLoss = make(map[string]units.DB, len(aps))
		for _, ap := range aps {
			c.ExtraLoss[ap.ID] = wall
		}
	}
	return c
}

func removeClient(n *wlan.Network, id string) {
	n.RemoveClient(id)
}

// PeriodSweepPoint is one row of the periodicity study.
type PeriodSweepPoint struct {
	Period time.Duration
	Result Result
}

// PeriodSweep runs the same churn trace under different reallocation
// periods (including "never": period 0 disables reallocation after the
// random initial assignment).
func PeriodSweep(seed int64, periods []time.Duration) []PeriodSweepPoint {
	out := make([]PeriodSweepPoint, 0, len(periods))
	for _, p := range periods {
		sc := DefaultScenario(seed)
		sc.Period = p
		out = append(out, PeriodSweepPoint{Period: p, Result: Run(sc)})
	}
	return out
}
