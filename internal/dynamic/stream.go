package dynamic

// Event-driven replay: the same churn trace Run walks on a periodic timer,
// fed through core.StreamController one event at a time under a virtual
// clock. Run and RunStream consume identical RNG draws, so for one seed the
// two results differ only in *when* the controller re-optimizes — the
// paired comparison behind the goodput-vs-periodic benchmark.

import (
	"sort"
	"time"

	"acorn/internal/assoctrace"
	"acorn/internal/core"
	"acorn/internal/stats"
	"acorn/internal/wlan"
)

// StreamResult pairs the churn outcome of an event-driven run with the
// stream's own accounting (queue pressure, shedding, gate decisions,
// decision latency — measured in virtual time).
type StreamResult struct {
	Result
	Stream core.StreamStats
}

// RunStream replays the scenario's churn trace through a StreamController:
// arrivals and departures become stream events, pumped deterministically at
// their trace timestamps under a virtual clock (so hysteresis streaks,
// token-bucket refills, and the watchdog all advance in simulated time).
// sc.Period is ignored — the stream decides when to re-optimize; the
// switching outage is charged exactly as in Run. When reportEvery > 0,
// every live client additionally refreshes its measurement on that cadence,
// exercising the report-coalescing and roaming paths.
func RunStream(sc Scenario, reportEvery time.Duration, opts core.StreamOptions) StreamResult {
	rng := stats.NewRand(sc.Seed)
	gen := assoctrace.DefaultGenerator()
	aps, n, ctrl := buildGrid(sc)
	events := churnEvents(sc, rng, gen)

	if reportEvery > 0 {
		// Synthesize per-client report refreshes from the arrival/departure
		// pairs. Purely derived — no RNG draws, so the paired trace holds.
		depart := make(map[string]time.Duration, len(events))
		for _, ev := range events {
			if ev.kind == 1 {
				depart[ev.id] = ev.at
			}
		}
		var reports []event
		for _, ev := range events {
			if ev.kind != 0 {
				continue
			}
			end, ok := depart[ev.id]
			if !ok {
				end = sc.Duration
			}
			for at := ev.at + reportEvery; at < end; at += reportEvery {
				reports = append(reports, event{at: at, kind: 3, id: ev.id})
			}
		}
		events = append(events, reports...)
		sort.SliceStable(events, func(i, j int) bool { return events[i].at < events[j].at })
	}

	// Virtual clock: the stream sees trace time, not wall time.
	start := time.Unix(0, 0).UTC()
	vnow := start
	opts.Now = func() time.Time { return vnow }
	s := core.NewStreamController(ctrl, opts)
	defer s.Stop()

	var res Result
	var integral float64 // Mbit
	prev := time.Duration(0)
	current := 0.0
	clientsByID := map[string]*wlan.Client{}
	recompute := func() { current = n.Evaluate(ctrl.ConfigView()).TotalUDP }
	recompute()

	for _, ev := range events {
		integral += current * (ev.at - prev).Seconds()
		prev = ev.at
		vnow = start.Add(ev.at)
		before := ctrl.ConfigView().Channels
		switch ev.kind {
		case 0: // arrival
			res.Arrivals++
			c := spawnClient(rng, aps, ev.id, sc.PoorFraction, n)
			clientsByID[ev.id] = c
			s.Offer(core.Event{Kind: core.EventArrive, Client: c})
			if len(clientsByID) > res.PeakClients {
				res.PeakClients = len(clientsByID)
			}
		case 1: // departure
			if clientsByID[ev.id] != nil {
				delete(clientsByID, ev.id)
				s.Offer(core.Event{Kind: core.EventDepart, ClientID: ev.id})
			}
		case 3: // measurement refresh
			if c := clientsByID[ev.id]; c != nil {
				s.Offer(core.Event{Kind: core.EventReport, Client: c})
			}
		}
		s.Pump()
		// Charge the switching outage on every AP the pump moved, exactly
		// as Run charges the periodic pass. The pre-pump Channels snapshot
		// survives because re-optimization installs a cloned config.
		after := ctrl.ConfigView().Channels
		var rep *wlan.NetworkReport
		for apID, ch := range after {
			if before[apID] != ch {
				res.Switches++
				if rep == nil {
					rep = n.Evaluate(ctrl.ConfigView())
				}
				if cell := rep.Cell(apID); cell != nil {
					integral -= cell.ThroughputUDP * sc.SwitchOutage.Seconds()
					res.OutageSeconds += sc.SwitchOutage.Seconds()
				}
			}
		}
		recompute()
	}
	integral += current * (sc.Duration - prev).Seconds()
	res.MeanThroughputMbps = integral / sc.Duration.Seconds()

	st := s.Stats()
	res.Reallocations = int(st.LocalReopts + st.BatchedReopts + st.FullPasses)
	return StreamResult{Result: res, Stream: st}
}
