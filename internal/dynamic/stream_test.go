package dynamic

import (
	"testing"
	"time"

	"acorn/internal/core"
)

// streamOpts is the tuning used across the streaming replay tests and
// benchmarks. The anti-flap defaults (streak of 2, 12 switches/hour) are
// deliberately loosened here: the replay is a goodput comparison against a
// periodic controller that switches without any hysteresis, so the stream
// gets an immediate-commit streak and a rate bound comfortably above the
// trace's churn — the margin hysteresis still applies.
func streamOpts() core.StreamOptions {
	return core.StreamOptions{
		WatchdogPeriod: 30 * time.Minute,
		Gate: core.GateOptions{
			Streak:      1,
			RatePerHour: 60,
			Burst:       10,
		},
	}
}

func TestRunStreamBasics(t *testing.T) {
	sc := fastScenario(1)
	res := RunStream(sc, 0, streamOpts())
	if res.Arrivals == 0 || res.MeanThroughputMbps <= 0 {
		t.Fatalf("degenerate stream run: %+v", res.Result)
	}
	// Paired trace: the stream walks the same arrivals Run does.
	if periodic := Run(sc); periodic.Arrivals != res.Arrivals {
		t.Errorf("trace diverged: stream saw %d arrivals, periodic %d", res.Arrivals, periodic.Arrivals)
	}
	// Event conservation: everything offered is accounted for.
	st := res.Stream
	got := st.Applied + st.Coalesced + 2*st.Annihilated + st.ShedReports + st.ShedCritical + uint64(st.Depth)
	if st.Offered != got {
		t.Errorf("conservation violated: offered %d != accounted %d (%+v)", st.Offered, got, st)
	}
	if st.Depth != 0 {
		t.Errorf("queue not drained at end of trace: depth %d", st.Depth)
	}
}

func TestRunStreamDeterministic(t *testing.T) {
	a := RunStream(fastScenario(5), time.Minute, streamOpts())
	b := RunStream(fastScenario(5), time.Minute, streamOpts())
	if a.MeanThroughputMbps != b.MeanThroughputMbps || a.Switches != b.Switches ||
		a.Stream.Offered != b.Stream.Offered {
		t.Errorf("same seed diverged: %+v vs %+v", a.Result, b.Result)
	}
}

func TestRunStreamReportsCoalesceAndRoam(t *testing.T) {
	sc := fastScenario(7)
	res := RunStream(sc, 30*time.Second, streamOpts())
	if res.Stream.Offered == 0 {
		t.Fatal("no events offered")
	}
	noReports := RunStream(sc, 0, streamOpts())
	if res.Stream.Offered <= noReports.Stream.Offered {
		t.Errorf("report cadence added no events: %d vs %d",
			res.Stream.Offered, noReports.Stream.Offered)
	}
	// Reports must not wreck goodput relative to the membership-only run.
	if res.MeanThroughputMbps < 0.95*noReports.MeanThroughputMbps {
		t.Errorf("report replay hurt goodput: %v vs %v",
			res.MeanThroughputMbps, noReports.MeanThroughputMbps)
	}
}

// TestStreamGoodputCompetitiveWithPeriodic is the headline acceptance
// bound: over the same churn trace, event-driven operation must deliver at
// least 97% of the periodic controller's time-averaged goodput.
func TestStreamGoodputCompetitiveWithPeriodic(t *testing.T) {
	for _, seed := range []int64{1, 2, 3} {
		sc := fastScenario(seed)
		periodic := Run(sc)
		stream := RunStream(sc, 0, streamOpts())
		if stream.MeanThroughputMbps < 0.97*periodic.MeanThroughputMbps {
			t.Errorf("seed %d: stream goodput %.1f < 97%% of periodic %.1f",
				seed, stream.MeanThroughputMbps, periodic.MeanThroughputMbps)
		}
	}
}

// BenchmarkPeriodicGoodput and BenchmarkStreamGoodput run the identical
// churn trace under the two control disciplines; benchjson derives the
// goodput ratio from the reported goodput_mbps metrics.
func BenchmarkPeriodicGoodput(b *testing.B) {
	sc := fastScenario(42)
	var last Result
	for i := 0; i < b.N; i++ {
		last = Run(sc)
	}
	b.ReportMetric(last.MeanThroughputMbps, "goodput_mbps")
	b.ReportMetric(float64(last.Switches), "switches")
}

func BenchmarkStreamGoodput(b *testing.B) {
	sc := fastScenario(42)
	var last StreamResult
	for i := 0; i < b.N; i++ {
		last = RunStream(sc, time.Minute, streamOpts())
	}
	b.ReportMetric(last.MeanThroughputMbps, "goodput_mbps")
	b.ReportMetric(float64(last.Switches), "switches")
	if last.Stream.Offered > 0 {
		b.ReportMetric(float64(last.Stream.ShedReports+last.Stream.ShedCritical)/float64(last.Stream.Offered), "shed_frac")
	}
}
