package dynamic

import (
	"testing"
	"time"
)

func fastScenario(seed int64) Scenario {
	sc := DefaultScenario(seed)
	sc.Duration = 2 * time.Hour
	sc.ArrivalsPerHour = 30
	return sc
}

func TestRunBasics(t *testing.T) {
	res := Run(fastScenario(1))
	if res.Arrivals == 0 {
		t.Fatal("no arrivals in a 2-hour window")
	}
	if res.MeanThroughputMbps <= 0 {
		t.Fatal("no throughput")
	}
	if res.Reallocations != 3 {
		t.Errorf("reallocations = %d, want 3 (every 30 min over 2 h)", res.Reallocations)
	}
	if res.PeakClients == 0 {
		t.Error("no concurrent clients recorded")
	}
}

func TestRunDeterministic(t *testing.T) {
	a := Run(fastScenario(5))
	b := Run(fastScenario(5))
	if a.MeanThroughputMbps != b.MeanThroughputMbps || a.Switches != b.Switches {
		t.Errorf("same seed diverged: %+v vs %+v", a, b)
	}
}

func TestReallocationBeatsNever(t *testing.T) {
	// Periodic reallocation must out-earn the frozen random initial
	// assignment over a churn-heavy day.
	sc := fastScenario(2)
	withRealloc := Run(sc)
	sc.Period = 0
	frozen := Run(sc)
	if withRealloc.MeanThroughputMbps <= frozen.MeanThroughputMbps {
		t.Errorf("periodic reallocation (%v) should beat never (%v)",
			withRealloc.MeanThroughputMbps, frozen.MeanThroughputMbps)
	}
	if frozen.Reallocations != 0 || frozen.Switches != 0 {
		t.Error("frozen run should not reallocate")
	}
}

func TestOutageAccounting(t *testing.T) {
	sc := fastScenario(3)
	sc.SwitchOutage = 0
	free := Run(sc)
	sc.SwitchOutage = 2 * time.Minute // exaggerated outage
	costly := Run(sc)
	if costly.Switches != free.Switches {
		t.Fatalf("outage must not change the decision sequence: %d vs %d switches",
			costly.Switches, free.Switches)
	}
	if costly.Switches > 0 && costly.MeanThroughputMbps >= free.MeanThroughputMbps {
		t.Errorf("outage should cost throughput: %v vs %v",
			costly.MeanThroughputMbps, free.MeanThroughputMbps)
	}
	if costly.Switches > 0 && costly.OutageSeconds == 0 {
		t.Error("outage seconds not accounted")
	}
}

func TestPeriodSweepShape(t *testing.T) {
	points := PeriodSweep(4, []time.Duration{
		5 * time.Minute, 30 * time.Minute, 2 * time.Hour,
	})
	if len(points) != 3 {
		t.Fatalf("want 3 points, got %d", len(points))
	}
	// More frequent reallocation performs more (or equal) switches.
	if points[0].Result.Reallocations <= points[2].Result.Reallocations {
		t.Errorf("5-min period should reallocate more often than 2-hour: %d vs %d",
			points[0].Result.Reallocations, points[2].Result.Reallocations)
	}
	for _, p := range points {
		if p.Result.MeanThroughputMbps <= 0 {
			t.Errorf("period %v produced no throughput", p.Period)
		}
	}
}

func TestReassociationHelpsOrMatches(t *testing.T) {
	// Letting associations track reallocated widths must not hurt, and
	// over a churn-heavy window it typically helps.
	sc := fastScenario(6)
	static := Run(sc)
	sc.Reassociate = true
	roaming := Run(sc)
	if roaming.MeanThroughputMbps < 0.95*static.MeanThroughputMbps {
		t.Errorf("reassociation hurt: %v vs %v",
			roaming.MeanThroughputMbps, static.MeanThroughputMbps)
	}
}
