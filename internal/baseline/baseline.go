// Package baseline implements the comparison schemes of Section 5.2: the
// modified Kauffmann et al. [17] configuration system (delay-based user
// association plus a greedy single-width channel scan that aggressively
// uses 40 MHz channels), and the random manual configurator behind Table 3.
// Both are "CB-agnostic": they inherited their logic from legacy 802.11
// networks with a single channel width, which is precisely what ACORN is
// measured against.
package baseline

import (
	"math"
	"math/rand"

	"acorn/internal/core"
	"acorn/internal/spectrum"
	"acorn/internal/units"
	"acorn/internal/wlan"
)

// AssociateDelayBased runs the association of [17] for client u: the client
// picks the AP minimizing the total transmission delay impact — which,
// unlike Eq. 4, balances load evenly without regard to grouping link
// qualities. The paper notes [17] "evenly divides the clients between these
// APs regardless of the specific client link qualities".
//
// Concretely the client joins the AP i minimizing ATD_i^{+u}·K_i⁻¹-weighted
// delay — implemented as minimizing the cell's post-join ATD (the delay
// objective of [17] under saturated traffic).
func AssociateDelayBased(n *wlan.Network, cfg *wlan.Config, u *wlan.Client) string {
	best, bestATD := "", math.Inf(1)
	for _, b := range core.GatherBeacons(n, cfg, u) {
		if b.ATD < bestATD {
			bestATD = b.ATD
			best = b.APID
		}
	}
	if best == "" {
		// Every candidate cell is currently undecodable for u (e.g. all
		// APs bonded while u's links are poor); a real client still
		// associates, by signal strength.
		return AssociateRSS(n, cfg, u)
	}
	return best
}

// AssociateRSS is the simplest legacy policy: join the strongest-signal AP.
// It is the "more simplistic approach" Section 4.1 contrasts against and an
// ablation point for the association utility.
func AssociateRSS(n *wlan.Network, cfg *wlan.Config, u *wlan.Client) string {
	aps := n.APsInRange(u)
	if len(aps) == 0 {
		return ""
	}
	return aps[0].ID // APsInRange sorts by descending SNR
}

// Greedy40 is the modified [17] channel selector: every AP scans the
// available (single-width, 40 MHz) channels and picks the one minimizing
// the total noise and interference it senses — the received power from
// co-channel APs plus the width's thermal noise floor. APs decide in ID
// order, each seeing the choices already made (a greedy sequential scan,
// as when APs boot one by one).
func Greedy40(n *wlan.Network, cfg *wlan.Config) *wlan.Config {
	out := cfg.Clone()
	chans := n.Band.Channels40()
	if len(chans) == 0 {
		chans = n.Band.Channels20()
	}
	for _, ap := range n.APs {
		bestCh, bestCost := chans[0], math.Inf(1)
		for _, ch := range chans {
			cost := InterferenceCost(n, out, ap, ch)
			if cost < bestCost {
				bestCost = cost
				bestCh = ch
			}
		}
		out.Channels[ap.ID] = bestCh
	}
	return out
}

// InterferenceCost is the linear-domain noise-plus-interference power AP ap
// would sense on channel ch given the other APs' current assignments. It is
// the metric the greedy scan minimizes; the Fig 11 experiment reuses it to
// emulate aggressive fixed-width placements.
func InterferenceCost(n *wlan.Network, cfg *wlan.Config, ap *wlan.AP, ch spectrum.Channel) float64 {
	total := noisePowerMW(ch.Width)
	for _, other := range n.APs {
		if other == ap {
			continue
		}
		och := cfg.Channels[other.ID]
		if och.IsZero() || !ch.Conflicts(och) {
			continue
		}
		rx := n.Prop.RxPower(other.TxPower, ap.Pos.DistanceTo(other.Pos), 0)
		total += float64(rx.MilliWatts())
	}
	return total
}

func noisePowerMW(w spectrum.Width) float64 {
	var floor units.DBm
	if w == spectrum.Width40 {
		floor = -174 + units.DBm(10*math.Log10(40e6))
	} else {
		floor = -174 + units.DBm(10*math.Log10(20e6))
	}
	return float64(floor.MilliWatts())
}

// Configure runs the full modified-[17] pipeline: delay-based association
// client by client, then the greedy 40 MHz channel scan, then a
// re-association pass under the chosen channels (mirroring how ACORN's
// pipeline is run, for a fair comparison).
func Configure(n *wlan.Network, clients []*wlan.Client) *wlan.Config {
	cfg := wlan.NewConfig()
	// Bootstrap: every AP starts on the first 40 MHz channel so beacons
	// exist for the association phase.
	chans := n.Band.Channels40()
	if len(chans) == 0 {
		chans = n.Band.Channels20()
	}
	for _, ap := range n.APs {
		cfg.Channels[ap.ID] = chans[0]
	}
	for _, u := range clients {
		if ap := AssociateDelayBased(n, cfg, u); ap != "" {
			cfg.SetAssoc(u.ID, ap)
		}
	}
	cfg = Greedy40(n, cfg)
	for _, u := range clients {
		cfg.Unassoc(u.ID)
		if ap := AssociateDelayBased(n, cfg, u); ap != "" {
			cfg.SetAssoc(u.ID, ap)
		}
	}
	return cfg
}

// RandomConfig produces one random manual configuration for Table 3: every
// AP gets a uniformly random channel (both widths eligible) and every
// client associates with a uniformly random in-range AP.
func RandomConfig(n *wlan.Network, rng *rand.Rand) *wlan.Config {
	cfg := wlan.NewConfig()
	chans := n.Band.AllChannels()
	for _, ap := range n.APs {
		cfg.Channels[ap.ID] = chans[rng.Intn(len(chans))]
	}
	for _, cl := range n.Clients {
		aps := n.APsInRange(cl)
		if len(aps) == 0 {
			continue
		}
		cfg.SetAssoc(cl.ID, aps[rng.Intn(len(aps))].ID)
	}
	return cfg
}
