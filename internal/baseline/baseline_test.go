package baseline

import (
	"testing"

	"acorn/internal/rf"
	"acorn/internal/spectrum"
	"acorn/internal/stats"
	"acorn/internal/units"
	"acorn/internal/wlan"
)

func testNetwork() (*wlan.Network, []*wlan.Client) {
	ap1 := &wlan.AP{ID: "AP1", Pos: rf.Point{X: 0, Y: 0}, TxPower: 18}
	ap2 := &wlan.AP{ID: "AP2", Pos: rf.Point{X: 40, Y: 0}, TxPower: 18}
	clients := []*wlan.Client{
		{ID: "a", Pos: rf.Point{X: 3, Y: 2}},
		{ID: "b", Pos: rf.Point{X: 37, Y: 1}},
		{ID: "c", Pos: rf.Point{X: 20, Y: 3}},
	}
	return wlan.NewNetwork([]*wlan.AP{ap1, ap2}, clients), clients
}

func TestAssociateRSSPicksStrongest(t *testing.T) {
	n, clients := testNetwork()
	cfg := wlan.NewConfig()
	if got := AssociateRSS(n, cfg, clients[0]); got != "AP1" {
		t.Errorf("client a → %s, want AP1", got)
	}
	if got := AssociateRSS(n, cfg, clients[1]); got != "AP2" {
		t.Errorf("client b → %s, want AP2", got)
	}
	lost := &wlan.Client{ID: "lost", Pos: rf.Point{X: 9999, Y: 9999}}
	n.Clients = append(n.Clients, lost)
	if got := AssociateRSS(n, cfg, lost); got != "" {
		t.Errorf("out-of-range client → %q, want empty", got)
	}
}

func TestAssociateDelayBasedBalancesLoad(t *testing.T) {
	// [17] "evenly divides the clients": with AP1 already serving a
	// client, a midway client should join the emptier AP2.
	n, clients := testNetwork()
	cfg := wlan.NewConfig()
	cfg.Channels["AP1"] = spectrum.NewChannel20(36)
	cfg.Channels["AP2"] = spectrum.NewChannel20(44)
	cfg.Assoc["a"] = "AP1"
	if got := AssociateDelayBased(n, cfg, clients[2]); got != "AP2" {
		t.Errorf("midway client → %s, want the emptier AP2", got)
	}
}

func TestGreedy40PrefersOrthogonal(t *testing.T) {
	n, clients := testNetwork()
	cfg := wlan.NewConfig()
	for _, c := range clients {
		cfg.Assoc[c.ID] = "AP1"
	}
	out := Greedy40(n, cfg)
	ch1, ch2 := out.Channels["AP1"], out.Channels["AP2"]
	if ch1.Width != spectrum.Width40 || ch2.Width != spectrum.Width40 {
		t.Errorf("greedy should always bond: %v, %v", ch1, ch2)
	}
	if ch1.Conflicts(ch2) {
		t.Errorf("with 6 bonded channels available the APs must not overlap: %v vs %v", ch1, ch2)
	}
	// Input not mutated.
	if !cfg.Channels["AP1"].IsZero() {
		t.Error("Greedy40 mutated its input")
	}
}

func TestGreedy40ForcedOverlapSharesWithFarthest(t *testing.T) {
	// Three APs, one bonded channel pair available: the last AP must
	// overlap someone and picks the weakest-heard co-channel AP.
	a := &wlan.AP{ID: "A", Pos: rf.Point{X: 0, Y: 0}, TxPower: 18}
	b := &wlan.AP{ID: "B", Pos: rf.Point{X: 20, Y: 0}, TxPower: 18}
	c := &wlan.AP{ID: "C", Pos: rf.Point{X: 45, Y: 0}, TxPower: 18}
	n := wlan.NewNetwork([]*wlan.AP{a, b, c}, nil)
	n.Band = n.Band.Subset(4) // two bonded channels
	out := Greedy40(n, wlan.NewConfig())
	chA, chB, chC := out.Channels["A"], out.Channels["B"], out.Channels["C"]
	if chA.Conflicts(chB) {
		t.Errorf("first two APs should take distinct channels: %v, %v", chA, chB)
	}
	// C is farther from A (45 m) than from B (25 m): least interference
	// means sharing with A.
	if !chC.Conflicts(chA) || chC.Conflicts(chB) {
		t.Errorf("C should share with the farthest AP (A): C=%v A=%v B=%v", chC, chA, chB)
	}
}

func TestConfigureProducesValidConfig(t *testing.T) {
	n, clients := testNetwork()
	cfg := Configure(n, clients)
	if err := cfg.Validate(n); err != nil {
		t.Fatalf("baseline config invalid: %v", err)
	}
	for _, c := range clients {
		if cfg.Assoc[c.ID] == "" {
			t.Errorf("client %s left unassociated", c.ID)
		}
	}
	// All channels bonded (the aggressive scheme).
	for _, ap := range n.APs {
		if cfg.Channels[ap.ID].Width != spectrum.Width40 {
			t.Errorf("AP %s width = %v, want 40 MHz", ap.ID, cfg.Channels[ap.ID].Width)
		}
	}
}

func TestConfigureAssociatesDeadClients(t *testing.T) {
	// A client too poor to decode any bonded cell still associates (RSS
	// fallback).
	n, clients := testNetwork()
	dead := &wlan.Client{ID: "dead", Pos: rf.Point{X: 5, Y: 5},
		ExtraLoss: map[string]units.DB{"AP1": 53, "AP2": 53}}
	n.Clients = append(n.Clients, dead)
	cfg := Configure(n, append(clients, dead))
	if cfg.Assoc["dead"] == "" {
		t.Error("dead-link client should still associate via RSS fallback")
	}
}

func TestRandomConfigValidAndVaried(t *testing.T) {
	n, _ := testNetwork()
	rng := stats.NewRand(5)
	seen := map[spectrum.Channel]bool{}
	for i := 0; i < 20; i++ {
		cfg := RandomConfig(n, rng)
		if err := cfg.Validate(n); err != nil {
			t.Fatalf("random config %d invalid: %v", i, err)
		}
		for _, ch := range cfg.Channels {
			seen[ch] = true
		}
		for _, c := range n.Clients {
			if cfg.Assoc[c.ID] == "" {
				t.Errorf("random config %d left %s unassociated", i, c.ID)
			}
		}
	}
	if len(seen) < 5 {
		t.Errorf("random configs drew only %d distinct channels", len(seen))
	}
}

func TestInterferenceCostMonotoneInNeighbors(t *testing.T) {
	n, _ := testNetwork()
	cfg := wlan.NewConfig()
	ap1 := n.AP("AP1")
	ch := spectrum.NewChannel40(36, 40)
	clean := InterferenceCost(n, cfg, ap1, ch)
	cfg.Channels["AP2"] = spectrum.NewChannel40(36, 40)
	busy := InterferenceCost(n, cfg, ap1, ch)
	if busy <= clean {
		t.Errorf("co-channel neighbor should raise the cost: %v vs %v", busy, clean)
	}
	// Orthogonal neighbor costs nothing extra.
	cfg.Channels["AP2"] = spectrum.NewChannel40(44, 48)
	if got := InterferenceCost(n, cfg, ap1, ch); got != clean {
		t.Errorf("orthogonal neighbor changed the cost: %v vs %v", got, clean)
	}
}
