// Package report renders a set of regenerated experiment outputs as a
// single self-contained HTML page — the artifact a reviewer opens to check
// a reproduction run without a Go toolchain. cmd/experiments -html drives
// it.
package report

import (
	"html/template"
	"io"
	"sort"
	"time"
)

// Entry is one experiment's output.
type Entry struct {
	// ID is the experiment identifier (fig10a, table3, …).
	ID string
	// Title is the first line of the formatted output.
	Title string
	// Body is the formatted text block.
	Body string
	// Elapsed is how long regeneration took.
	Elapsed time.Duration
}

// Page is the full report.
type Page struct {
	// GeneratedBy describes the producing command.
	GeneratedBy string
	Entries     []Entry
}

var tmpl = template.Must(template.New("report").Parse(`<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<title>ACORN reproduction report</title>
<style>
  body { font-family: system-ui, sans-serif; margin: 2rem auto; max-width: 72rem; }
  h1 { border-bottom: 2px solid #444; padding-bottom: .3rem; }
  h2 { margin-top: 2rem; }
  pre { background: #f6f6f6; border: 1px solid #ddd; padding: .8rem; overflow-x: auto;
        font-size: .85rem; line-height: 1.3; }
  nav a { margin-right: .8rem; }
  .meta { color: #666; font-size: .85rem; }
</style>
</head>
<body>
<h1>ACORN reproduction report</h1>
<p class="meta">{{.GeneratedBy}}</p>
<nav>
{{range .Entries}}<a href="#{{.ID}}">{{.ID}}</a>
{{end}}</nav>
{{range .Entries}}
<h2 id="{{.ID}}">{{.ID}} — {{.Title}}</h2>
<p class="meta">regenerated in {{.Elapsed}}</p>
<pre>{{.Body}}</pre>
{{end}}
</body>
</html>
`))

// Write renders the page. Entries are sorted by ID for stable output.
func Write(w io.Writer, p Page) error {
	sorted := append([]Entry(nil), p.Entries...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].ID < sorted[j].ID })
	p.Entries = sorted
	return tmpl.Execute(w, p)
}

// TitleOf extracts a human title from a formatted experiment block: the
// text of its first "# "-prefixed line, or the first line outright.
func TitleOf(body string) string {
	line := firstLine(body)
	if len(line) > 2 && line[0] == '#' && line[1] == ' ' {
		return line[2:]
	}
	return line
}

func firstLine(s string) string {
	for i := 0; i < len(s); i++ {
		if s[i] == '\n' {
			return s[:i]
		}
	}
	return s
}
