package report

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

func TestWriteReport(t *testing.T) {
	var buf bytes.Buffer
	err := Write(&buf, Page{
		GeneratedBy: "unit test",
		Entries: []Entry{
			{ID: "table1", Title: "σ transitions", Body: "# Table 1\nrow", Elapsed: time.Millisecond},
			{ID: "fig1", Title: "PSD", Body: "# Fig 1\n<script>alert(1)</script>", Elapsed: time.Second},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	// Sorted by ID: fig1 section precedes table1.
	if strings.Index(out, `id="fig1"`) > strings.Index(out, `id="table1"`) {
		t.Error("entries not sorted by ID")
	}
	// HTML-escaped body (no raw script injection).
	if strings.Contains(out, "<script>alert") {
		t.Error("body not HTML-escaped")
	}
	if !strings.Contains(out, "&lt;script&gt;") {
		t.Error("escaped body missing")
	}
	if !strings.Contains(out, "unit test") {
		t.Error("GeneratedBy missing")
	}
	// Navigation links for each entry.
	if !strings.Contains(out, `href="#fig1"`) || !strings.Contains(out, `href="#table1"`) {
		t.Error("nav links missing")
	}
}

func TestTitleOf(t *testing.T) {
	if got := TitleOf("# Fig 1: PSD\nrest"); got != "Fig 1: PSD" {
		t.Errorf("TitleOf = %q", got)
	}
	if got := TitleOf("plain first line\nmore"); got != "plain first line" {
		t.Errorf("TitleOf plain = %q", got)
	}
	if got := TitleOf("oneline"); got != "oneline" {
		t.Errorf("TitleOf oneline = %q", got)
	}
	if got := TitleOf(""); got != "" {
		t.Errorf("TitleOf empty = %q", got)
	}
}
