// Package faultnet wraps net.Conn and net.Listener with deterministic,
// seedable fault injection: delays, connection resets, corrupted bytes,
// partial writes, and silently dropped writes. It exists so the control
// plane's resilience machinery (heartbeats, deadlines, reconnect, replay)
// can be exercised by chaos tests against realistic transport misbehavior
// instead of only the happy path of net.Pipe.
//
// All randomness flows from a single seeded source, so a failing chaos run
// reproduces exactly. An Injector can be disabled at runtime to let a test
// end in a calm network and assert convergence deterministically.
package faultnet

import (
	"errors"
	"math/rand"
	"net"
	"sync"
	"time"
)

// ErrInjectedReset is returned from Read/Write when the injector tears the
// connection down mid-operation.
var ErrInjectedReset = errors.New("faultnet: injected connection reset")

// ErrInjectedShortWrite is returned when the injector truncates a write but
// leaves the connection open — the recoverable cousin of PartialWriteProb.
// Callers that treat any write error as fatal will reconnect; callers that
// resume from the returned count keep the connection.
var ErrInjectedShortWrite = errors.New("faultnet: injected short write")

// Config sets the fault mix. All probabilities are in [0, 1].
type Config struct {
	// Seed drives every random decision. The zero seed is valid (and
	// deterministic), like math/rand.
	Seed int64
	// ConnResetProb is the chance, rolled once per connection, that the
	// connection is doomed: after 1..ResetAfterOps reads/writes it is
	// closed and the operation returns ErrInjectedReset.
	ConnResetProb float64
	// ResetAfterOps bounds how many operations a doomed connection
	// survives. Zero means 8.
	ResetAfterOps int
	// DelayProb is the per-operation chance of sleeping up to MaxDelay
	// before the operation proceeds.
	DelayProb float64
	// MaxDelay bounds injected delays. Zero disables delays.
	MaxDelay time.Duration
	// LatencyMin/LatencyMax model a per-connection path latency: each
	// wrapped connection draws one base latency uniformly from
	// [LatencyMin, LatencyMax] at wrap time and every operation on it
	// sleeps that long (unlike DelayProb, which is per-operation and
	// memoryless — a slow link is slow for its whole life). Zero
	// LatencyMax disables.
	LatencyMin, LatencyMax time.Duration
	// Jitter adds a per-operation uniform draw from [0, Jitter) on top of
	// the connection's base latency. Zero disables.
	Jitter time.Duration
	// ShortWriteProb is the per-write chance of writing only a prefix and
	// returning ErrInjectedShortWrite with the connection left open.
	ShortWriteProb float64
	// CorruptProb is the per-write chance of flipping one byte.
	CorruptProb float64
	// PartialWriteProb is the per-write chance of writing only a prefix
	// and then resetting the connection (a short write with an error, as
	// net.Conn requires).
	PartialWriteProb float64
	// DropWriteProb is the per-write chance of reporting success while
	// writing nothing — a blackholed packet.
	DropWriteProb float64
}

// Stats counts injected faults. Read a snapshot with Injector.Stats.
type Stats struct {
	Conns         int64 // connections wrapped
	Resets        int64 // connections reset (doomed countdowns that fired)
	Delays        int64 // delays injected
	LatencyOps    int64 // operations slowed by per-connection latency/jitter
	Corruptions   int64 // writes with a flipped byte
	PartialWrites int64 // truncated writes that also reset the connection
	ShortWrites   int64 // truncated writes with the connection left open
	DroppedWrites int64 // blackholed writes
}

// Injector owns the fault configuration, RNG, and counters shared by every
// connection it wraps. Safe for concurrent use.
type Injector struct {
	mu       sync.Mutex
	cfg      Config
	rng      *rand.Rand
	stats    Stats
	disabled bool
}

// NewInjector returns an injector for the given fault mix.
func NewInjector(cfg Config) *Injector {
	if cfg.ResetAfterOps <= 0 {
		cfg.ResetAfterOps = 8
	}
	return &Injector{cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}
}

// Disable turns all fault injection off; wrapped connections behave like
// their underlying transport from now on. Chaos tests call this to end in
// a calm network.
func (inj *Injector) Disable() {
	inj.mu.Lock()
	inj.disabled = true
	inj.mu.Unlock()
}

// Stats returns a snapshot of the fault counters.
func (inj *Injector) Stats() Stats {
	inj.mu.Lock()
	defer inj.mu.Unlock()
	return inj.stats
}

// roll returns true with probability p (false when disabled).
func (inj *Injector) roll(p float64) bool {
	if p <= 0 {
		return false
	}
	inj.mu.Lock()
	defer inj.mu.Unlock()
	if inj.disabled {
		return false
	}
	return inj.rng.Float64() < p
}

// intn draws from [0, n) under the shared lock.
func (inj *Injector) intn(n int) int {
	inj.mu.Lock()
	defer inj.mu.Unlock()
	return inj.rng.Intn(n)
}

func (inj *Injector) count(f func(*Stats)) {
	inj.mu.Lock()
	f(&inj.stats)
	inj.mu.Unlock()
}

// maybeDelay sleeps a random duration up to MaxDelay with DelayProb.
func (inj *Injector) maybeDelay() {
	if inj.cfg.MaxDelay <= 0 || !inj.roll(inj.cfg.DelayProb) {
		return
	}
	inj.count(func(s *Stats) { s.Delays++ })
	time.Sleep(time.Duration(inj.intn(int(inj.cfg.MaxDelay))))
}

// opLatency returns the injected latency for one operation on a connection
// with base latency base: base plus a fresh jitter draw. Zero when disabled.
func (inj *Injector) opLatency(base time.Duration) time.Duration {
	inj.mu.Lock()
	defer inj.mu.Unlock()
	if inj.disabled {
		return 0
	}
	d := base
	if inj.cfg.Jitter > 0 {
		d += time.Duration(inj.rng.Intn(int(inj.cfg.Jitter)))
	}
	return d
}

// WrapConn returns c with this injector's faults applied to every
// operation.
func (inj *Injector) WrapConn(c net.Conn) net.Conn {
	fc := &conn{Conn: c, inj: inj, opsLeft: -1}
	inj.count(func(s *Stats) { s.Conns++ })
	if inj.roll(inj.cfg.ConnResetProb) {
		fc.opsLeft = 1 + inj.intn(inj.cfg.ResetAfterOps)
	}
	if span := inj.cfg.LatencyMax; span > 0 {
		// One base latency per connection: a slow path stays slow.
		lo := inj.cfg.LatencyMin
		if lo > span {
			lo = span
		}
		fc.baseLat = lo
		if span > lo {
			fc.baseLat += time.Duration(inj.intn(int(span - lo)))
		}
	}
	return fc
}

// WrapListener returns l with every accepted connection wrapped.
func (inj *Injector) WrapListener(l net.Listener) net.Listener {
	return &listener{Listener: l, inj: inj}
}

type listener struct {
	net.Listener
	inj *Injector
}

func (l *listener) Accept() (net.Conn, error) {
	c, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	return l.inj.WrapConn(c), nil
}

// conn applies the injector's faults around an underlying net.Conn.
type conn struct {
	net.Conn
	inj *Injector

	// baseLat is the connection's drawn path latency (zero: fast path).
	baseLat time.Duration

	mu      sync.Mutex
	opsLeft int // -1: not doomed; otherwise ops until the injected reset
}

// maybeLatency applies the connection's base latency plus jitter.
func (c *conn) maybeLatency() {
	if c.baseLat <= 0 && c.inj.cfg.Jitter <= 0 {
		return
	}
	if d := c.inj.opLatency(c.baseLat); d > 0 {
		c.inj.count(func(s *Stats) { s.LatencyOps++ })
		time.Sleep(d)
	}
}

// countdown decrements the doom counter and reports whether the reset
// fires on this operation.
func (c *conn) countdown() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.opsLeft < 0 {
		return false
	}
	c.opsLeft--
	return c.opsLeft <= 0
}

// reset closes the underlying connection and records the fault.
func (c *conn) reset() error {
	c.inj.count(func(s *Stats) { s.Resets++ })
	_ = c.Conn.Close()
	return ErrInjectedReset
}

func (c *conn) Read(p []byte) (int, error) {
	c.maybeLatency()
	c.inj.maybeDelay()
	if c.countdown() {
		return 0, c.reset()
	}
	return c.Conn.Read(p)
}

func (c *conn) Write(p []byte) (int, error) {
	c.maybeLatency()
	c.inj.maybeDelay()
	if c.countdown() {
		return 0, c.reset()
	}
	if c.inj.roll(c.inj.cfg.DropWriteProb) {
		c.inj.count(func(s *Stats) { s.DroppedWrites++ })
		return len(p), nil
	}
	if len(p) > 1 && c.inj.roll(c.inj.cfg.ShortWriteProb) {
		// A prefix goes out and the connection survives; the caller sees a
		// short-write error and must resynchronize (for the newline-JSON
		// protocol that means the peer reads a torn line).
		c.inj.count(func(s *Stats) { s.ShortWrites++ })
		n, err := c.Conn.Write(p[:1+c.inj.intn(len(p)-1)])
		if err != nil {
			return n, err
		}
		return n, ErrInjectedShortWrite
	}
	if len(p) > 1 && c.inj.roll(c.inj.cfg.PartialWriteProb) {
		c.inj.count(func(s *Stats) { s.PartialWrites++ })
		n, err := c.Conn.Write(p[:1+c.inj.intn(len(p)-1)])
		_ = c.reset()
		if err != nil {
			return n, err
		}
		return n, ErrInjectedReset
	}
	if len(p) > 0 && c.inj.roll(c.inj.cfg.CorruptProb) {
		c.inj.count(func(s *Stats) { s.Corruptions++ })
		corrupted := make([]byte, len(p))
		copy(corrupted, p)
		corrupted[c.inj.intn(len(corrupted))] ^= 0x20
		return c.Conn.Write(corrupted)
	}
	return c.Conn.Write(p)
}
