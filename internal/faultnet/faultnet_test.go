package faultnet

import (
	"bytes"
	"errors"
	"io"
	"net"
	"sync"
	"testing"
	"time"
)

// loopPair returns two ends of a real TCP connection, with the accept side
// wrapped by the injector.
func loopPair(t *testing.T, inj *Injector) (wrapped, raw net.Conn) {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	wl := inj.WrapListener(l)
	var (
		srv net.Conn
		wg  sync.WaitGroup
	)
	wg.Add(1)
	go func() {
		defer wg.Done()
		srv, err = wl.Accept()
	}()
	cli, dialErr := net.Dial("tcp", l.Addr().String())
	if dialErr != nil {
		t.Fatal(dialErr)
	}
	wg.Wait()
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close(); cli.Close() })
	return srv, cli
}

func TestCleanPassthrough(t *testing.T) {
	inj := NewInjector(Config{Seed: 1}) // no faults configured
	srv, cli := loopPair(t, inj)
	msg := []byte("hello over a clean faultnet\n")
	go func() { _, _ = srv.Write(msg) }()
	got := make([]byte, len(msg))
	if _, err := io.ReadFull(cli, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatalf("got %q, want %q", got, msg)
	}
	if s := inj.Stats(); s.Conns != 1 || s.Resets != 0 {
		t.Fatalf("unexpected stats: %+v", s)
	}
}

func TestDoomedConnResets(t *testing.T) {
	inj := NewInjector(Config{Seed: 3, ConnResetProb: 1, ResetAfterOps: 4})
	srv, cli := loopPair(t, inj)
	go func() { _, _ = io.Copy(io.Discard, cli) }()
	var err error
	for i := 0; i < 10; i++ {
		if _, err = srv.Write([]byte("x\n")); err != nil {
			break
		}
	}
	if !errors.Is(err, ErrInjectedReset) {
		t.Fatalf("doomed conn never reset: %v", err)
	}
	if s := inj.Stats(); s.Resets != 1 {
		t.Fatalf("want 1 reset, got %+v", s)
	}
	// The peer observes a real close, not a hang.
	cli.SetReadDeadline(time.Now().Add(2 * time.Second))
	buf := make([]byte, 64)
	for {
		if _, err := cli.Read(buf); err != nil {
			return
		}
	}
}

func TestCorruptionFlipsAByte(t *testing.T) {
	inj := NewInjector(Config{Seed: 5, CorruptProb: 1})
	srv, cli := loopPair(t, inj)
	msg := []byte("abcdefgh")
	go func() { _, _ = srv.Write(msg) }()
	got := make([]byte, len(msg))
	if _, err := io.ReadFull(cli, got); err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(got, msg) {
		t.Fatal("write passed through uncorrupted")
	}
	diff := 0
	for i := range msg {
		if got[i] != msg[i] {
			diff++
		}
	}
	if diff != 1 {
		t.Fatalf("want exactly 1 corrupted byte, got %d", diff)
	}
	if s := inj.Stats(); s.Corruptions != 1 {
		t.Fatalf("want 1 corruption, got %+v", s)
	}
}

func TestDroppedWriteReportsSuccess(t *testing.T) {
	inj := NewInjector(Config{Seed: 7, DropWriteProb: 1})
	srv, cli := loopPair(t, inj)
	if n, err := srv.Write([]byte("into the void")); err != nil || n != 13 {
		t.Fatalf("dropped write: n=%d err=%v", n, err)
	}
	cli.SetReadDeadline(time.Now().Add(100 * time.Millisecond))
	buf := make([]byte, 64)
	if n, err := cli.Read(buf); err == nil {
		t.Fatalf("peer received %d bytes of a dropped write", n)
	}
	if s := inj.Stats(); s.DroppedWrites != 1 {
		t.Fatalf("want 1 dropped write, got %+v", s)
	}
}

func TestPartialWriteTruncatesAndResets(t *testing.T) {
	inj := NewInjector(Config{Seed: 9, PartialWriteProb: 1})
	srv, cli := loopPair(t, inj)
	msg := []byte("0123456789")
	n, err := srv.Write(msg)
	if !errors.Is(err, ErrInjectedReset) {
		t.Fatalf("partial write err = %v", err)
	}
	if n <= 0 || n >= len(msg) {
		t.Fatalf("partial write wrote %d of %d bytes", n, len(msg))
	}
	got, _ := io.ReadAll(cli)
	if len(got) != n || !bytes.Equal(got, msg[:n]) {
		t.Fatalf("peer saw %q, want prefix %q", got, msg[:n])
	}
}

func TestDelayInjected(t *testing.T) {
	inj := NewInjector(Config{Seed: 11, DelayProb: 1, MaxDelay: 20 * time.Millisecond})
	srv, cli := loopPair(t, inj)
	go func() { _, _ = srv.Write([]byte("delayed\n")) }()
	buf := make([]byte, 64)
	if _, err := cli.Read(buf); err != nil {
		t.Fatal(err)
	}
	if s := inj.Stats(); s.Delays == 0 {
		t.Fatalf("no delays recorded: %+v", s)
	}
}

func TestDisableStopsFaults(t *testing.T) {
	inj := NewInjector(Config{Seed: 13, ConnResetProb: 1, ResetAfterOps: 1, CorruptProb: 1, DropWriteProb: 1})
	inj.Disable()
	srv, cli := loopPair(t, inj)
	msg := []byte("calm network\n")
	go func() { _, _ = srv.Write(msg) }()
	got := make([]byte, len(msg))
	if _, err := io.ReadFull(cli, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatalf("disabled injector still faulted: %q", got)
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	run := func() Stats {
		inj := NewInjector(Config{Seed: 42, ConnResetProb: 0.5, ResetAfterOps: 3, CorruptProb: 0.3})
		for i := 0; i < 20; i++ {
			srv, cli := loopPair(t, inj)
			go func() { _, _ = io.Copy(io.Discard, cli) }()
			for j := 0; j < 5; j++ {
				if _, err := srv.Write([]byte("probe\n")); err != nil {
					break
				}
			}
			srv.Close()
			cli.Close()
		}
		return inj.Stats()
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("same seed diverged: %+v vs %+v", a, b)
	}
}

func TestShortWriteKeepsConnectionOpen(t *testing.T) {
	inj := NewInjector(Config{Seed: 15, ShortWriteProb: 1})
	srv, cli := loopPair(t, inj)
	msg := []byte("0123456789")
	n, err := srv.Write(msg)
	if !errors.Is(err, ErrInjectedShortWrite) {
		t.Fatalf("short write err = %v", err)
	}
	if n <= 0 || n >= len(msg) {
		t.Fatalf("short write wrote %d of %d bytes", n, len(msg))
	}
	got := make([]byte, n)
	if _, err := io.ReadFull(cli, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg[:n]) {
		t.Fatalf("peer saw %q, want prefix %q", got, msg[:n])
	}
	// Unlike PartialWriteProb, the connection survives: turn injection off
	// and push another payload through the same conn.
	inj.Disable()
	rest := []byte("still alive\n")
	go func() { _, _ = srv.Write(rest) }()
	got2 := make([]byte, len(rest))
	if _, err := io.ReadFull(cli, got2); err != nil {
		t.Fatalf("connection did not survive the short write: %v", err)
	}
	if s := inj.Stats(); s.ShortWrites != 1 || s.Resets != 0 {
		t.Fatalf("want 1 short write and 0 resets, got %+v", s)
	}
}

func TestPerConnectionLatency(t *testing.T) {
	inj := NewInjector(Config{
		Seed:       17,
		LatencyMin: 5 * time.Millisecond,
		LatencyMax: 10 * time.Millisecond,
		Jitter:     2 * time.Millisecond,
	})
	srv, cli := loopPair(t, inj)
	start := time.Now()
	go func() { _, _ = srv.Write([]byte("slow path\n")) }()
	buf := make([]byte, 64)
	if _, err := cli.Read(buf); err != nil {
		t.Fatal(err)
	}
	if el := time.Since(start); el < 5*time.Millisecond {
		t.Fatalf("latency not applied: elapsed %v", el)
	}
	if s := inj.Stats(); s.LatencyOps == 0 {
		t.Fatalf("no latency ops recorded: %+v", s)
	}
	// Disabling stops the sleeps too.
	inj.Disable()
	before := inj.Stats().LatencyOps
	go func() { _, _ = srv.Write([]byte("fast now\n")) }()
	if _, err := cli.Read(buf); err != nil {
		t.Fatal(err)
	}
	if after := inj.Stats().LatencyOps; after != before {
		t.Fatalf("disabled injector still injected latency (%d -> %d)", before, after)
	}
}
