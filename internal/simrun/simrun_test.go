package simrun

import (
	"reflect"
	"testing"

	"acorn/internal/baseband"
	"acorn/internal/phy"
	"acorn/internal/spectrum"
	"acorn/internal/units"
)

// makeLink is a representative Monte-Carlo point: QPSK STBC over a noisy
// flat-fading channel, rebuilt fresh per shard.
func makeLink(fading baseband.FadingModel) func(seed int64) *baseband.Link {
	return func(seed int64) *baseband.Link {
		cfg := baseband.NewChainConfig(spectrum.Width20)
		ch := baseband.NewChannel(units.DB(95), fading, nil)
		return baseband.NewLink(cfg, phy.QPSK, baseband.ModeSTBC, units.DBm(15), ch, seed)
	}
}

// TestRunDeterministicAcrossWorkers is the engine's core contract: the
// merged Measurements are bit-identical (including float sums) for any
// worker count, for fixed seeds.
func TestRunDeterministicAcrossWorkers(t *testing.T) {
	points := []Point{
		{Seed: 1, Packets: 60, PacketBytes: 120, Make: makeLink(baseband.FadingNone)},
		{Seed: 2, Packets: 37, PacketBytes: 80, Make: makeLink(baseband.FadingMultipath)},
	}
	ref := Run(points, Options{Workers: 1, ShardPackets: 10})
	for _, workers := range []int{2, 8} {
		got := Run(points, Options{Workers: workers, ShardPackets: 10})
		if !reflect.DeepEqual(ref, got) {
			t.Fatalf("workers=%d: results differ from workers=1", workers)
		}
	}
}

// TestRunPacketBudget checks the shard decomposition covers the exact
// packet budget, including a tail shard.
func TestRunPacketBudget(t *testing.T) {
	p := Point{Seed: 7, Packets: 53, PacketBytes: 60, Make: makeLink(baseband.FadingNone)}
	m := RunPoint(p, Options{Workers: 4, ShardPackets: 25})
	if m.Packets != 53 {
		t.Fatalf("Packets = %d, want 53", m.Packets)
	}
	if m.Bits != 53*60*8 {
		t.Fatalf("Bits = %d, want %d", m.Bits, 53*60*8)
	}
	if len(m.Constellation) == 0 || len(m.Constellation) > baseband.ConstellationCap {
		t.Fatalf("Constellation length %d outside (0, %d]", len(m.Constellation), baseband.ConstellationCap)
	}
}

// TestRunShardSeedsDiffer confirms that shards see different random
// streams: a run split into many shards must not repeat the first shard's
// packets (the BER over a noisy channel would be suspiciously identical).
func TestRunShardSeedsDiffer(t *testing.T) {
	p := Point{Seed: 3, Packets: 20, PacketBytes: 100, Make: makeLink(baseband.FadingFlat)}
	a := RunPoint(p, Options{Workers: 1, ShardPackets: 10})
	// Same point, same total budget, different shard granularity: the
	// decomposition (and thus the derived seeds) differs, so the realized
	// error-vector sums must differ while the deterministic counters agree.
	b := RunPoint(p, Options{Workers: 1, ShardPackets: 5})
	if a.Packets != b.Packets || a.Bits != b.Bits {
		t.Fatalf("packet budgets disagree: %+v vs %+v", a, b)
	}
	if a.EVM() == b.EVM() {
		t.Fatalf("EVM identical across different shard decompositions: %v", a.EVM())
	}
}
