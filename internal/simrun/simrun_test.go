package simrun

import (
	"reflect"
	"testing"

	"acorn/internal/baseband"
	"acorn/internal/obs"
	"acorn/internal/phy"
	"acorn/internal/spectrum"
	"acorn/internal/units"
)

// makeLink is a representative Monte-Carlo point: QPSK STBC over a noisy
// flat-fading channel, rebuilt fresh per shard.
func makeLink(fading baseband.FadingModel) func(seed int64) *baseband.Link {
	return func(seed int64) *baseband.Link {
		cfg := baseband.NewChainConfig(spectrum.Width20)
		ch := baseband.NewChannel(units.DB(95), fading, nil)
		return baseband.NewLink(cfg, phy.QPSK, baseband.ModeSTBC, units.DBm(15), ch, seed)
	}
}

// TestRunDeterministicAcrossWorkers is the engine's core contract: the
// merged Measurements are bit-identical (including float sums) for any
// worker count, for fixed seeds.
func TestRunDeterministicAcrossWorkers(t *testing.T) {
	points := []Point{
		{Seed: 1, Packets: 60, PacketBytes: 120, Make: makeLink(baseband.FadingNone)},
		{Seed: 2, Packets: 37, PacketBytes: 80, Make: makeLink(baseband.FadingMultipath)},
	}
	ref := Run(points, Options{Workers: 1, ShardPackets: 10})
	for _, workers := range []int{2, 8} {
		got := Run(points, Options{Workers: workers, ShardPackets: 10})
		if !reflect.DeepEqual(ref, got) {
			t.Fatalf("workers=%d: results differ from workers=1", workers)
		}
	}
}

// TestRunPacketBudget checks the shard decomposition covers the exact
// packet budget, including a tail shard.
func TestRunPacketBudget(t *testing.T) {
	p := Point{Seed: 7, Packets: 53, PacketBytes: 60, Make: makeLink(baseband.FadingNone)}
	m := RunPoint(p, Options{Workers: 4, ShardPackets: 25})
	if m.Packets != 53 {
		t.Fatalf("Packets = %d, want 53", m.Packets)
	}
	if m.Bits != 53*60*8 {
		t.Fatalf("Bits = %d, want %d", m.Bits, 53*60*8)
	}
	if len(m.Constellation) == 0 || len(m.Constellation) > baseband.ConstellationCap {
		t.Fatalf("Constellation length %d outside (0, %d]", len(m.Constellation), baseband.ConstellationCap)
	}
}

// TestRunMetrics asserts a Run reports its work to the injected registry:
// exact packet/shard/point counts, a shard-timing histogram with one
// observation per shard, and sane throughput/utilization gauges.
func TestRunMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	points := []Point{
		{Seed: 1, Packets: 30, PacketBytes: 80, Make: makeLink(baseband.FadingNone)},
		{Seed: 2, Packets: 25, PacketBytes: 80, Make: makeLink(baseband.FadingFlat)},
	}
	Run(points, Options{Workers: 2, ShardPackets: 10, Obs: reg})

	snap := map[string]obs.MetricSnapshot{}
	for _, s := range reg.Snapshot() {
		snap[s.Name] = s
	}
	wantCounters := map[string]float64{
		"acorn_simrun_runs_total":    1,
		"acorn_simrun_points_total":  2,
		"acorn_simrun_packets_total": 55,
		"acorn_simrun_shards_total":  6, // 3 shards of 10 + (10,10,5)
	}
	for name, want := range wantCounters {
		s, ok := snap[name]
		if !ok || s.Value == nil || *s.Value != want {
			t.Errorf("%s = %+v, want %v", name, s, want)
		}
	}
	if s := snap["acorn_simrun_shard_seconds"]; s.Count == nil || *s.Count != 6 {
		t.Errorf("acorn_simrun_shard_seconds count = %+v, want 6", s)
	}
	if s := snap["acorn_simrun_merge_seconds"]; s.Count == nil || *s.Count != 1 {
		t.Errorf("acorn_simrun_merge_seconds count = %+v, want 1", s)
	}
	if s := snap["acorn_simrun_workers"]; s.Value == nil || *s.Value != 2 {
		t.Errorf("acorn_simrun_workers = %+v, want 2", s)
	}
	if s := snap["acorn_simrun_packets_per_second"]; s.Value == nil || *s.Value <= 0 {
		t.Errorf("acorn_simrun_packets_per_second = %+v, want > 0", s)
	}
	if s := snap["acorn_simrun_worker_utilization"]; s.Value == nil || *s.Value <= 0 || *s.Value > 1.5 {
		t.Errorf("acorn_simrun_worker_utilization = %+v, want in (0, 1.5]", s)
	}
}

// TestRunShardSeedsDiffer confirms that shards see different random
// streams: a run split into many shards must not repeat the first shard's
// packets (the BER over a noisy channel would be suspiciously identical).
func TestRunShardSeedsDiffer(t *testing.T) {
	p := Point{Seed: 3, Packets: 20, PacketBytes: 100, Make: makeLink(baseband.FadingFlat)}
	a := RunPoint(p, Options{Workers: 1, ShardPackets: 10})
	// Same point, same total budget, different shard granularity: the
	// decomposition (and thus the derived seeds) differs, so the realized
	// error-vector sums must differ while the deterministic counters agree.
	b := RunPoint(p, Options{Workers: 1, ShardPackets: 5})
	if a.Packets != b.Packets || a.Bits != b.Bits {
		t.Fatalf("packet budgets disagree: %+v vs %+v", a, b)
	}
	if a.EVM() == b.EVM() {
		t.Fatalf("EVM identical across different shard decompositions: %v", a.EVM())
	}
}
