// Package simrun is the parallel Monte-Carlo execution engine behind the
// PHY experiments: it shards a packets×links work grid across worker
// goroutines and merges the per-shard measurements back in a fixed order,
// so the result is bit-identical for any worker count.
//
// Determinism contract. A Point's packet budget is cut into shards of
// ShardPackets packets each; the decomposition depends only on the point,
// never on the worker count. Shard s of a point draws every random number
// from a link built with seed DeriveSeed(point.Seed, s), so the stream a
// shard consumes is a pure function of (point seed, shard index) — which
// worker happens to execute the shard is irrelevant. Per-shard
// Measurements are merged in ascending shard order; since merging is the
// only place floating-point sums from different shards meet, the
// non-associativity of float addition never observes the scheduling.
//
// Scratch-buffer ownership. Each shard builds its own Link (and Channel)
// via Point.Make and is the only goroutine that ever touches it, so the
// zero-alloc workspaces inside internal/baseband need no locking.
package simrun

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"acorn/internal/baseband"
	"acorn/internal/obs"
	"acorn/internal/stats"
)

// DefaultShardPackets is the shard granularity when Options.ShardPackets
// is zero: small enough to load-balance a paper-scale run across many
// cores, large enough to amortize the per-shard link construction.
const DefaultShardPackets = 25

// Point is one Monte-Carlo work item: a link configuration (captured by
// Make) to be exercised for Packets packets of PacketBytes each, seeded
// from Seed.
type Point struct {
	// Seed is the point's base seed; shard seeds are derived from it.
	Seed int64
	// Packets is the total packet budget for the point.
	Packets int
	// PacketBytes is the payload size of every packet.
	PacketBytes int
	// Make builds an independent link for one shard. It must return a
	// fresh Link (with a fresh Channel) on every call: shards run
	// concurrently and links are not safe for concurrent use.
	Make func(seed int64) *baseband.Link
}

// Options tunes the engine. The zero value means GOMAXPROCS workers and
// DefaultShardPackets packets per shard.
type Options struct {
	// Workers is the number of goroutines; <=0 means GOMAXPROCS.
	Workers int
	// ShardPackets is the shard granularity; <=0 means
	// DefaultShardPackets. Results do not depend on it beyond the seed
	// decomposition: two runs with the same ShardPackets are
	// bit-identical for any worker count.
	ShardPackets int
	// Obs receives engine metrics (shard timings, merge latency, worker
	// utilization, packet throughput); nil means obs.Default. Everything
	// is recorded at shard granularity — tens of packets per observation —
	// so the per-packet modem path stays allocation-free.
	Obs *obs.Registry
}

// engineMetrics holds the bound simrun metrics for one Run call.
type engineMetrics struct {
	runs, points, shards, packets *obs.Counter
	shardSeconds, mergeSeconds    *obs.Histogram
	workers, packetsPerSec, util  *obs.Gauge
}

func bindMetrics(reg *obs.Registry) engineMetrics {
	shardBuckets := []float64{1e-5, 1e-4, 1e-3, 0.01, 0.1, 1, 10}
	return engineMetrics{
		runs:    reg.Counter("acorn_simrun_runs_total", "Monte-Carlo Run invocations"),
		points:  reg.Counter("acorn_simrun_points_total", "Monte-Carlo points executed"),
		shards:  reg.Counter("acorn_simrun_shards_total", "work shards executed"),
		packets: reg.Counter("acorn_simrun_packets_total", "packets simulated"),
		shardSeconds: reg.Histogram("acorn_simrun_shard_seconds",
			"per-shard execution time (link build + packets)", shardBuckets),
		mergeSeconds: reg.Histogram("acorn_simrun_merge_seconds",
			"time to merge all shard measurements back in shard order", shardBuckets),
		workers: reg.Gauge("acorn_simrun_workers",
			"worker goroutines used by the most recent Run"),
		packetsPerSec: reg.Gauge("acorn_simrun_packets_per_second",
			"aggregate packet throughput of the most recent Run"),
		util: reg.Gauge("acorn_simrun_worker_utilization",
			"busy-time share of the most recent Run's workers (0..1)"),
	}
}

// shard is one unit of schedulable work.
type shard struct {
	point   int   // index into points
	seed    int64 // derived link seed
	packets int
}

// Run executes every point's packet budget and returns one merged
// Measurement per point, in point order.
func Run(points []Point, opts Options) []*baseband.Measurement {
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	shardPackets := opts.ShardPackets
	if shardPackets <= 0 {
		shardPackets = DefaultShardPackets
	}

	var shards []shard
	for pi, p := range points {
		remaining := p.Packets
		for s := 0; remaining > 0; s++ {
			n := min(shardPackets, remaining)
			shards = append(shards, shard{
				point:   pi,
				seed:    stats.DeriveSeed(p.Seed, uint64(s)),
				packets: n,
			})
			remaining -= n
		}
	}

	m := bindMetrics(obs.Or(opts.Obs))
	start := time.Now()

	results := make([]*baseband.Measurement, len(shards))
	var next atomic.Int64
	var busyNanos atomic.Int64
	var wg sync.WaitGroup
	if workers > len(shards) {
		workers = len(shards)
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(shards) {
					return
				}
				sh := shards[i]
				p := points[sh.point]
				span := m.shardSeconds.Start()
				link := p.Make(sh.seed)
				meas := &baseband.Measurement{}
				for k := 0; k < sh.packets; k++ {
					link.RunPacket(p.PacketBytes, meas)
				}
				busyNanos.Add(int64(span.End()))
				results[i] = meas
			}
		}()
	}
	wg.Wait()

	// Merge in ascending shard order: shards of one point are contiguous,
	// so this folds each point's shards left to right.
	mergeSpan := m.mergeSeconds.Start()
	out := make([]*baseband.Measurement, len(points))
	for i := range out {
		out[i] = &baseband.Measurement{}
	}
	for i, sh := range shards {
		out[sh.point].Merge(results[i])
	}
	mergeSpan.End()

	var totalPackets uint64
	for _, sh := range shards {
		totalPackets += uint64(sh.packets)
	}
	m.runs.Inc()
	m.points.Add(uint64(len(points)))
	m.shards.Add(uint64(len(shards)))
	m.packets.Add(totalPackets)
	m.workers.Set(float64(workers))
	if wall := time.Since(start); wall > 0 {
		m.packetsPerSec.Set(float64(totalPackets) / wall.Seconds())
		if workers > 0 {
			m.util.Set(float64(busyNanos.Load()) / (float64(workers) * float64(wall)))
		}
	}
	return out
}

// RunPoint is the single-point convenience wrapper around Run.
func RunPoint(p Point, opts Options) *baseband.Measurement {
	return Run([]Point{p}, opts)[0]
}
