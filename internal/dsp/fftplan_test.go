package dsp

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
)

// naiveDFT is the O(n²) reference transform the plans are checked against.
func naiveDFT(x []complex128, inverse bool) []complex128 {
	n := len(x)
	out := make([]complex128, n)
	sign := -1.0
	if inverse {
		sign = 1.0
	}
	for k := 0; k < n; k++ {
		var sum complex128
		for t := 0; t < n; t++ {
			ang := sign * 2 * math.Pi * float64(k) * float64(t) / float64(n)
			sum += x[t] * cmplx.Rect(1, ang)
		}
		if inverse {
			sum /= complex(float64(n), 0)
		}
		out[k] = sum
	}
	return out
}

func randomSignal(n int, seed int64) []complex128 {
	rng := rand.New(rand.NewSource(seed))
	x := make([]complex128, n)
	for i := range x {
		x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	return x
}

func TestFFTPlanMatchesNaiveDFT(t *testing.T) {
	for _, n := range []int{64, 128} {
		x := randomSignal(n, int64(n))

		fwd := append([]complex128(nil), x...)
		PlanFFT(n).Forward(fwd)
		wantF := naiveDFT(x, false)
		for k := range fwd {
			if cmplx.Abs(fwd[k]-wantF[k]) > 1e-9*float64(n) {
				t.Fatalf("n=%d forward bin %d: plan %v, DFT %v", n, k, fwd[k], wantF[k])
			}
		}

		inv := append([]complex128(nil), x...)
		PlanFFT(n).Inverse(inv)
		wantI := naiveDFT(x, true)
		for k := range inv {
			if cmplx.Abs(inv[k]-wantI[k]) > 1e-12*float64(n) {
				t.Fatalf("n=%d inverse bin %d: plan %v, DFT %v", n, k, inv[k], wantI[k])
			}
		}
	}
}

func TestFFTPlanRoundTrip(t *testing.T) {
	for _, n := range []int{64, 128, 256} {
		x := randomSignal(n, 7)
		y := append([]complex128(nil), x...)
		FFT(y)
		IFFT(y)
		for i := range x {
			if cmplx.Abs(y[i]-x[i]) > 1e-12*float64(n) {
				t.Fatalf("n=%d sample %d: round trip %v, want %v", n, i, y[i], x[i])
			}
		}
	}
}

func TestFFTPlanReuse(t *testing.T) {
	if PlanFFT(64) != PlanFFT(64) || PlanFFT(128) != PlanFFT(128) {
		t.Error("compile-time OFDM sizes must return the shared plan")
	}
	if PlanFFT(256) != PlanFFT(256) {
		t.Error("cached sizes must return the shared plan")
	}
	if got := PlanFFT(64).Size(); got != 64 {
		t.Errorf("plan size = %d, want 64", got)
	}
}

func TestFFTZeroAlloc(t *testing.T) {
	x := randomSignal(64, 3)
	if allocs := testing.AllocsPerRun(100, func() { FFT(x) }); allocs != 0 {
		t.Errorf("FFT via cached plan allocates %v/op, want 0", allocs)
	}
	if allocs := testing.AllocsPerRun(100, func() { IFFT(x) }); allocs != 0 {
		t.Errorf("IFFT via cached plan allocates %v/op, want 0", allocs)
	}
}
