// Package dsp implements the signal-processing primitives the baseband
// simulator is built from: a radix-2 FFT/IFFT, window functions, a Welch
// power-spectral-density estimator, and the Barker preamble sequence the
// WARP reference design uses for symbol detection.
package dsp

import (
	"fmt"
	"math"
	"math/cmplx"
)

// IsPowerOfTwo reports whether n is a positive power of two.
func IsPowerOfTwo(n int) bool { return n > 0 && n&(n-1) == 0 }

// FFT computes the in-place decimation-in-time radix-2 fast Fourier
// transform of x. len(x) must be a power of two; FFT panics otherwise since
// a wrong transform size is a programming error in this codebase (OFDM FFT
// sizes are the compile-time constants 64 and 128).
//
// The transform is unnormalized: FFT followed by IFFT returns the original
// sequence (IFFT applies the 1/N factor).
func FFT(x []complex128) {
	fft(x, false)
}

// IFFT computes the inverse FFT of x in place, including the 1/N
// normalization, so IFFT(FFT(x)) == x up to rounding.
func IFFT(x []complex128) {
	fft(x, true)
	n := complex(float64(len(x)), 0)
	for i := range x {
		x[i] /= n
	}
}

func fft(x []complex128, inverse bool) {
	n := len(x)
	if !IsPowerOfTwo(n) {
		panic(fmt.Sprintf("dsp: FFT size %d is not a power of two", n))
	}
	// Bit-reversal permutation.
	for i, j := 1, 0; i < n; i++ {
		bit := n >> 1
		for ; j&bit != 0; bit >>= 1 {
			j ^= bit
		}
		j ^= bit
		if i < j {
			x[i], x[j] = x[j], x[i]
		}
	}
	// Danielson-Lanczos butterflies.
	for length := 2; length <= n; length <<= 1 {
		ang := 2 * math.Pi / float64(length)
		if !inverse {
			ang = -ang
		}
		wl := cmplx.Rect(1, ang)
		for start := 0; start < n; start += length {
			w := complex(1, 0)
			half := length / 2
			for k := 0; k < half; k++ {
				u := x[start+k]
				v := x[start+k+half] * w
				x[start+k] = u + v
				x[start+k+half] = u - v
				w *= wl
			}
		}
	}
}

// Convolve returns the full linear convolution of a and b (length
// len(a)+len(b)-1), computed directly. It is used for matched filtering
// against short preamble sequences where an FFT-based convolution would not
// pay off.
func Convolve(a, b []float64) []float64 {
	if len(a) == 0 || len(b) == 0 {
		return nil
	}
	out := make([]float64, len(a)+len(b)-1)
	for i, av := range a {
		for j, bv := range b {
			out[i+j] += av * bv
		}
	}
	return out
}

// Energy returns the total energy (sum of squared magnitudes) of x.
func Energy(x []complex128) float64 {
	var e float64
	for _, v := range x {
		e += real(v)*real(v) + imag(v)*imag(v)
	}
	return e
}

// MeanPower returns the average power (energy per sample) of x.
func MeanPower(x []complex128) float64 {
	if len(x) == 0 {
		return 0
	}
	return Energy(x) / float64(len(x))
}

// Scale multiplies every sample of x by the real gain g, in place.
func Scale(x []complex128, g float64) {
	c := complex(g, 0)
	for i := range x {
		x[i] *= c
	}
}
