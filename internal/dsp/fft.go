// Package dsp implements the signal-processing primitives the baseband
// simulator is built from: a planned radix-2 FFT/IFFT, window functions, a
// Welch power-spectral-density estimator, and the Barker preamble sequence
// the WARP reference design uses for symbol detection.
package dsp

import (
	"fmt"
	"math"
	"math/cmplx"
	"sync"
)

// IsPowerOfTwo reports whether n is a positive power of two.
func IsPowerOfTwo(n int) bool { return n > 0 && n&(n-1) == 0 }

// FFTPlan holds the precomputed machinery for a fixed transform size: the
// bit-reversal permutation and per-stage twiddle-factor tables for both
// directions. A plan is immutable after construction and safe for concurrent
// use by any number of goroutines; the Monte-Carlo engine shares one plan
// per size across all workers.
type FFTPlan struct {
	n      int
	bitrev []int          // bit-reversed index of every position
	fwd    [][]complex128 // fwd[s] is stage s's length/2 twiddle table
	inv    [][]complex128
}

// NewFFTPlan builds the plan for size n. n must be a power of two; the OFDM
// transform sizes in this codebase are the compile-time constants 64 and
// 128, so a wrong size is a programming error and panics.
func NewFFTPlan(n int) *FFTPlan {
	if !IsPowerOfTwo(n) {
		panic(fmt.Sprintf("dsp: FFT size %d is not a power of two", n))
	}
	p := &FFTPlan{n: n, bitrev: make([]int, n)}
	for i, j := 1, 0; i < n; i++ {
		bit := n >> 1
		for ; j&bit != 0; bit >>= 1 {
			j ^= bit
		}
		j ^= bit
		p.bitrev[i] = j
	}
	for length := 2; length <= n; length <<= 1 {
		half := length / 2
		fwd := make([]complex128, half)
		inv := make([]complex128, half)
		for k := 0; k < half; k++ {
			// Each twiddle is generated exactly from its stage index
			// rather than by cumulative multiplication (w *= wl), which
			// compounds rounding error across the butterfly sweep.
			ang := 2 * math.Pi * float64(k) / float64(length)
			fwd[k] = cmplx.Rect(1, -ang)
			inv[k] = cmplx.Rect(1, ang)
		}
		p.fwd = append(p.fwd, fwd)
		p.inv = append(p.inv, inv)
	}
	return p
}

// Size returns the transform size the plan was built for.
func (p *FFTPlan) Size() int { return p.n }

func (p *FFTPlan) transform(x []complex128, twiddles [][]complex128) {
	n := p.n
	if len(x) != n {
		panic(fmt.Sprintf("dsp: FFT input length %d does not match plan size %d", len(x), n))
	}
	for i := 1; i < n; i++ {
		if j := p.bitrev[i]; i < j {
			x[i], x[j] = x[j], x[i]
		}
	}
	// Stage 0 (length 2) uses only the twiddle 1+0i: a pure add/sub pass.
	// Multiplying by exactly 1+0i is the identity in IEEE arithmetic, so
	// skipping it (here and for k==0 below) is bit-identical to the naive
	// sweep, just cheaper.
	for start := 0; start < n; start += 2 {
		u, v := x[start], x[start+1]
		x[start], x[start+1] = u+v, u-v
	}
	for s, length := 1, 4; length <= n; s, length = s+1, length<<1 {
		w := twiddles[s]
		half := length / 2
		for start := 0; start < n; start += length {
			u, v := x[start], x[start+half]
			x[start], x[start+half] = u+v, u-v
			for k := 1; k < half; k++ {
				u := x[start+k]
				v := x[start+k+half] * w[k]
				x[start+k] = u + v
				x[start+k+half] = u - v
			}
		}
	}
}

// Forward computes the in-place decimation-in-time FFT of x (len(x) must
// equal the plan size). The transform is unnormalized: Forward followed by
// Inverse returns the original sequence (Inverse applies the 1/N factor).
func (p *FFTPlan) Forward(x []complex128) { p.transform(x, p.fwd) }

// Inverse computes the inverse FFT of x in place, including the 1/N
// normalization, so Inverse(Forward(x)) == x up to rounding.
func (p *FFTPlan) Inverse(x []complex128) {
	p.transform(x, p.inv)
	// 1/N is exact for power-of-two N, so multiplying is bit-identical to
	// dividing and avoids the complex128 division runtime call.
	c := complex(1/float64(p.n), 0)
	for i := range x {
		x[i] *= c
	}
}

// The 64- and 128-point plans (20 and 40 MHz OFDM) are built at package
// init; other power-of-two sizes (e.g. Welch PSD segments) are cached on
// first use.
var (
	plan64    = NewFFTPlan(64)
	plan128   = NewFFTPlan(128)
	planCache sync.Map // int → *FFTPlan
)

// PlanFFT returns the shared plan for size n, building and caching it if
// needed. Plans are read-only, so the returned plan can be used from any
// goroutine.
func PlanFFT(n int) *FFTPlan {
	switch n {
	case 64:
		return plan64
	case 128:
		return plan128
	}
	if v, ok := planCache.Load(n); ok {
		return v.(*FFTPlan)
	}
	v, _ := planCache.LoadOrStore(n, NewFFTPlan(n))
	return v.(*FFTPlan)
}

// FFT computes the in-place radix-2 fast Fourier transform of x via the
// cached plan for len(x). len(x) must be a power of two; FFT panics
// otherwise since a wrong transform size is a programming error in this
// codebase.
func FFT(x []complex128) {
	PlanFFT(len(x)).Forward(x)
}

// IFFT computes the inverse FFT of x in place, including the 1/N
// normalization, so IFFT(FFT(x)) == x up to rounding.
func IFFT(x []complex128) {
	PlanFFT(len(x)).Inverse(x)
}

// Convolve returns the full linear convolution of a and b (length
// len(a)+len(b)-1), computed directly. It is used for matched filtering
// against short preamble sequences where an FFT-based convolution would not
// pay off.
func Convolve(a, b []float64) []float64 {
	if len(a) == 0 || len(b) == 0 {
		return nil
	}
	out := make([]float64, len(a)+len(b)-1)
	for i, av := range a {
		for j, bv := range b {
			out[i+j] += av * bv
		}
	}
	return out
}

// Energy returns the total energy (sum of squared magnitudes) of x.
func Energy(x []complex128) float64 {
	var e float64
	for _, v := range x {
		e += real(v)*real(v) + imag(v)*imag(v)
	}
	return e
}

// MeanPower returns the average power (energy per sample) of x.
func MeanPower(x []complex128) float64 {
	if len(x) == 0 {
		return 0
	}
	return Energy(x) / float64(len(x))
}

// Scale multiplies every sample of x by the real gain g, in place.
func Scale(x []complex128, g float64) {
	c := complex(g, 0)
	for i := range x {
		x[i] *= c
	}
}
