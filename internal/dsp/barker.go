package dsp

// Barker13 is the length-13 Barker code, the longest known Barker sequence.
// The WARP reference design prepends a Barker sequence to each frame so the
// receiver can detect the symbol boundary by matched filtering; the baseband
// simulator does the same.
var Barker13 = []float64{+1, +1, +1, +1, +1, -1, -1, +1, +1, -1, +1, -1, +1}

// BarkerPreamble returns the Barker-13 sequence repeated reps times as
// complex baseband samples (BPSK on the in-phase rail), scaled to the given
// amplitude.
func BarkerPreamble(reps int, amplitude float64) []complex128 {
	out := make([]complex128, 0, reps*len(Barker13))
	for r := 0; r < reps; r++ {
		for _, chip := range Barker13 {
			out = append(out, complex(chip*amplitude, 0))
		}
	}
	return out
}

// DetectPreamble correlates the received samples against the Barker-13
// matched filter and returns the sample index where the payload begins
// (i.e. just past the preamble of reps repetitions), along with the peak
// correlation magnitude. It returns ok=false when no correlation peak
// exceeds threshold times the preamble's nominal autocorrelation energy.
func DetectPreamble(rx []complex128, reps int, amplitude, threshold float64) (payloadStart int, peak float64, ok bool) {
	preLen := reps * len(Barker13)
	if len(rx) < preLen {
		return 0, 0, false
	}
	// Nominal autocorrelation energy of the full preamble at perfect
	// alignment: amplitude² per chip times chip count.
	nominal := amplitude * amplitude * float64(preLen)
	bestIdx, bestVal := -1, 0.0
	// Slide the matched filter over the plausible search window (the
	// preamble should appear near the start; cap the search to avoid
	// correlating against the whole payload).
	searchEnd := len(rx) - preLen
	if searchEnd > 4*preLen {
		searchEnd = 4 * preLen
	}
	for start := 0; start <= searchEnd; start++ {
		var corr float64
		for r := 0; r < reps; r++ {
			for c, chip := range Barker13 {
				corr += real(rx[start+r*len(Barker13)+c]) * chip * amplitude
			}
		}
		if corr > bestVal {
			bestVal = corr
			bestIdx = start
		}
	}
	if bestIdx < 0 || bestVal < threshold*nominal {
		return 0, bestVal, false
	}
	return bestIdx + preLen, bestVal, true
}
