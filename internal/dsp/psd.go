package dsp

import "math"

// HannWindow returns the length-n Hann window, the standard taper for Welch
// PSD estimation.
func HannWindow(n int) []float64 {
	w := make([]float64, n)
	if n == 1 {
		w[0] = 1
		return w
	}
	for i := range w {
		w[i] = 0.5 * (1 - math.Cos(2*math.Pi*float64(i)/float64(n-1)))
	}
	return w
}

// WelchPSD estimates the power spectral density of the complex baseband
// signal x using Welch's method of averaged modified periodograms: the
// signal is split into segments of the given length with 50% overlap, each
// segment is Hann-windowed and transformed, and the squared magnitudes are
// averaged and normalized by the window energy and the sample rate.
//
// The result has segLen bins covering [0, sampleRate) in FFT order (bin k is
// frequency k*sampleRate/segLen; the upper half aliases to negative
// frequencies). Values are linear power per Hz. segLen must be a power of
// two and len(x) >= segLen.
//
// Figure 1 of the paper shows exactly this estimate for the 20 and 40 MHz
// OFDM waveforms; the headline observation — a ≈3 dB drop in per-subcarrier
// energy when bonding doubles the number of subcarriers at fixed total
// power — falls directly out of comparing the two estimates.
func WelchPSD(x []complex128, segLen int, sampleRate float64) []float64 {
	if !IsPowerOfTwo(segLen) {
		panic("dsp: WelchPSD segment length must be a power of two")
	}
	if len(x) < segLen {
		panic("dsp: WelchPSD input shorter than one segment")
	}
	window := HannWindow(segLen)
	var windowEnergy float64
	for _, w := range window {
		windowEnergy += w * w
	}
	hop := segLen / 2
	psd := make([]float64, segLen)
	seg := make([]complex128, segLen)
	segments := 0
	for start := 0; start+segLen <= len(x); start += hop {
		for i := 0; i < segLen; i++ {
			seg[i] = x[start+i] * complex(window[i], 0)
		}
		FFT(seg)
		for i, v := range seg {
			psd[i] += real(v)*real(v) + imag(v)*imag(v)
		}
		segments++
	}
	norm := 1 / (float64(segments) * windowEnergy * sampleRate)
	for i := range psd {
		psd[i] *= norm
	}
	return psd
}

// PSDPeakDB returns the peak PSD value in dB (10·log10). It is the summary
// statistic the Fig 1 reproduction compares across channel widths: the paper
// reads −92 dB for 20 MHz and −95 dB for 40 MHz off its analyzer, a 3 dB gap
// whose absolute level depends on the analyzer reference; only the gap is
// meaningful here.
func PSDPeakDB(psd []float64) float64 {
	peak := 0.0
	for _, p := range psd {
		if p > peak {
			peak = p
		}
	}
	if peak <= 0 {
		return math.Inf(-1)
	}
	return 10 * math.Log10(peak)
}

// OccupiedBins returns the indices of PSD bins whose power exceeds the given
// fraction of the peak, i.e. the occupied bandwidth of the waveform. The Fig
// 1 reproduction uses it to verify that the 40 MHz waveform occupies about
// twice the bins of the 20 MHz one.
func OccupiedBins(psd []float64, fractionOfPeak float64) []int {
	peak := 0.0
	for _, p := range psd {
		if p > peak {
			peak = p
		}
	}
	threshold := peak * fractionOfPeak
	var bins []int
	for i, p := range psd {
		if p >= threshold {
			bins = append(bins, i)
		}
	}
	return bins
}
