package dsp

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestFFTKnownValues(t *testing.T) {
	// FFT of a constant is an impulse at DC.
	x := []complex128{1, 1, 1, 1}
	FFT(x)
	want := []complex128{4, 0, 0, 0}
	for i := range x {
		if cmplx.Abs(x[i]-want[i]) > 1e-12 {
			t.Errorf("FFT(const)[%d] = %v, want %v", i, x[i], want[i])
		}
	}
	// FFT of an impulse is flat.
	y := []complex128{1, 0, 0, 0}
	FFT(y)
	for i := range y {
		if cmplx.Abs(y[i]-1) > 1e-12 {
			t.Errorf("FFT(impulse)[%d] = %v, want 1", i, y[i])
		}
	}
}

func TestFFTSingleTone(t *testing.T) {
	n := 64
	k := 5
	x := make([]complex128, n)
	for i := range x {
		x[i] = cmplx.Rect(1, 2*math.Pi*float64(k*i)/float64(n))
	}
	FFT(x)
	for i := range x {
		want := 0.0
		if i == k {
			want = float64(n)
		}
		if math.Abs(cmplx.Abs(x[i])-want) > 1e-9 {
			t.Errorf("bin %d = %v, want magnitude %v", i, cmplx.Abs(x[i]), want)
		}
	}
}

func TestIFFTInvertsFFT(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{2, 8, 64, 128, 256} {
		x := make([]complex128, n)
		orig := make([]complex128, n)
		for i := range x {
			x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
			orig[i] = x[i]
		}
		FFT(x)
		IFFT(x)
		for i := range x {
			if cmplx.Abs(x[i]-orig[i]) > 1e-9 {
				t.Fatalf("n=%d: IFFT(FFT(x))[%d] = %v, want %v", n, i, x[i], orig[i])
			}
		}
	}
}

func TestFFTParseval(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 64
		x := make([]complex128, n)
		for i := range x {
			x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
		}
		timeEnergy := Energy(x)
		FFT(x)
		freqEnergy := Energy(x) / float64(n)
		return math.Abs(timeEnergy-freqEnergy) < 1e-6*timeEnergy
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFFTPanicsOnBadSize(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("FFT of non-power-of-two should panic")
		}
	}()
	FFT(make([]complex128, 3))
}

func TestIsPowerOfTwo(t *testing.T) {
	for _, n := range []int{1, 2, 4, 64, 128, 1024} {
		if !IsPowerOfTwo(n) {
			t.Errorf("IsPowerOfTwo(%d) = false", n)
		}
	}
	for _, n := range []int{0, -1, 3, 6, 100} {
		if IsPowerOfTwo(n) {
			t.Errorf("IsPowerOfTwo(%d) = true", n)
		}
	}
}

func TestConvolve(t *testing.T) {
	got := Convolve([]float64{1, 2}, []float64{3, 4})
	want := []float64{3, 10, 8}
	if len(got) != len(want) {
		t.Fatalf("len = %d, want %d", len(got), len(want))
	}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			t.Errorf("conv[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	if Convolve(nil, []float64{1}) != nil {
		t.Error("empty input should give nil")
	}
}

func TestEnergyScale(t *testing.T) {
	x := []complex128{complex(3, 4)}
	if e := Energy(x); e != 25 {
		t.Errorf("Energy = %v, want 25", e)
	}
	Scale(x, 2)
	if e := Energy(x); e != 100 {
		t.Errorf("Energy after Scale(2) = %v, want 100", e)
	}
	if p := MeanPower(nil); p != 0 {
		t.Errorf("MeanPower(nil) = %v", p)
	}
}

func TestHannWindow(t *testing.T) {
	w := HannWindow(5)
	if w[0] != 0 || w[4] != 0 {
		t.Error("Hann endpoints should be 0")
	}
	if math.Abs(w[2]-1) > 1e-12 {
		t.Errorf("Hann midpoint = %v, want 1", w[2])
	}
	if got := HannWindow(1); got[0] != 1 {
		t.Errorf("HannWindow(1) = %v", got)
	}
}

func TestWelchPSDWhiteNoiseLevel(t *testing.T) {
	// White noise of power P over sample rate Fs has PSD P/Fs per Hz.
	rng := rand.New(rand.NewSource(7))
	n := 1 << 14
	power := 2.0
	fs := 20e6
	x := make([]complex128, n)
	s := math.Sqrt(power / 2)
	for i := range x {
		x[i] = complex(rng.NormFloat64()*s, rng.NormFloat64()*s)
	}
	psd := WelchPSD(x, 256, fs)
	var mean float64
	for _, p := range psd {
		mean += p
	}
	mean /= float64(len(psd))
	want := power / fs * float64(256) / 256 // flat: P/Fs per bin-Hz
	_ = want
	// Total power recovered: Σ psd · (fs/segLen) ≈ power.
	total := 0.0
	for _, p := range psd {
		total += p * fs / 256
	}
	if math.Abs(total-power) > 0.15*power {
		t.Errorf("Welch total power = %v, want ≈%v", total, power)
	}
}

func TestWelchPSDPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("non-power-of-two segment should panic")
		}
	}()
	WelchPSD(make([]complex128, 100), 100, 1)
}

func TestPSDHelpers(t *testing.T) {
	psd := []float64{1, 10, 100, 10, 1}
	if got := PSDPeakDB(psd); math.Abs(got-20) > 1e-9 {
		t.Errorf("PSDPeakDB = %v, want 20", got)
	}
	bins := OccupiedBins(psd, 0.05)
	if len(bins) != 3 {
		t.Errorf("OccupiedBins = %v, want 3 bins", bins)
	}
	if math.IsInf(PSDPeakDB([]float64{0, 0}), -1) == false {
		t.Error("zero PSD peak should be -Inf")
	}
}

func TestBarkerPreambleDetection(t *testing.T) {
	pre := BarkerPreamble(4, 1.5)
	if len(pre) != 4*13 {
		t.Fatalf("preamble length = %d", len(pre))
	}
	// Embed the preamble after a small offset and detect it.
	rx := make([]complex128, 0, 300)
	for i := 0; i < 7; i++ {
		rx = append(rx, complex(0.01, 0))
	}
	rx = append(rx, pre...)
	payload := make([]complex128, 100)
	rx = append(rx, payload...)
	start, _, ok := DetectPreamble(rx, 4, 1.5, 0.5)
	if !ok {
		t.Fatal("preamble not detected")
	}
	if start != 7+len(pre) {
		t.Errorf("payload start = %d, want %d", start, 7+len(pre))
	}
}

func TestBarkerDetectionFailsOnNoise(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	rx := make([]complex128, 400)
	for i := range rx {
		rx[i] = complex(rng.NormFloat64()*0.01, rng.NormFloat64()*0.01)
	}
	if _, _, ok := DetectPreamble(rx, 4, 1.0, 0.5); ok {
		t.Error("detected preamble in pure noise")
	}
	if _, _, ok := DetectPreamble(rx[:10], 4, 1.0, 0.5); ok {
		t.Error("detected preamble in too-short input")
	}
}

func TestFFTLinearity(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	n := 64
	a := make([]complex128, n)
	b := make([]complex128, n)
	sum := make([]complex128, n)
	for i := 0; i < n; i++ {
		a[i] = complex(rng.NormFloat64(), rng.NormFloat64())
		b[i] = complex(rng.NormFloat64(), rng.NormFloat64())
		sum[i] = a[i] + 2*b[i]
	}
	FFT(a)
	FFT(b)
	FFT(sum)
	for i := 0; i < n; i++ {
		want := a[i] + 2*b[i]
		if cmplx.Abs(sum[i]-want) > 1e-9 {
			t.Fatalf("linearity violated at bin %d", i)
		}
	}
}

func TestFFTTimeShiftTheorem(t *testing.T) {
	// A circular shift by d multiplies bin k by e^{-2πi·k·d/N}.
	rng := rand.New(rand.NewSource(6))
	n := 64
	d := 5
	x := make([]complex128, n)
	for i := range x {
		x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	shifted := make([]complex128, n)
	for i := range x {
		shifted[i] = x[(i-d+n)%n]
	}
	X := append([]complex128(nil), x...)
	S := append([]complex128(nil), shifted...)
	FFT(X)
	FFT(S)
	for k := 0; k < n; k++ {
		phase := cmplx.Rect(1, -2*math.Pi*float64(k*d)/float64(n))
		if cmplx.Abs(S[k]-X[k]*phase) > 1e-9 {
			t.Fatalf("shift theorem violated at bin %d", k)
		}
	}
}
