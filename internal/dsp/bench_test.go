package dsp

import (
	"math/rand"
	"testing"
)

func benchSignal(n int) []complex128 {
	rng := rand.New(rand.NewSource(1))
	x := make([]complex128, n)
	for i := range x {
		x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	return x
}

func BenchmarkFFT64(b *testing.B) {
	x := benchSignal(64)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		FFT(x)
	}
}

func BenchmarkFFT128(b *testing.B) {
	x := benchSignal(128)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		FFT(x)
	}
}

func BenchmarkWelchPSD(b *testing.B) {
	x := benchSignal(1 << 13)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		WelchPSD(x, 256, 20e6)
	}
}

func BenchmarkDetectPreamble(b *testing.B) {
	pre := BarkerPreamble(4, 1)
	rx := append(append([]complex128{0.01, 0.02}, pre...), benchSignal(512)...)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		DetectPreamble(rx, 4, 1, 0.5)
	}
}
