// Package profiling wires runtime/pprof into the CLIs: one call starts CPU
// profiling and registers a heap snapshot, one call stops both. It exists so
// every command exposes -cpuprofile/-memprofile the same way.
package profiling

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"sync/atomic"
	"time"
)

// Start begins CPU profiling to cpuPath (if non-empty) and arranges for a
// heap profile to be written to memPath (if non-empty) when the returned
// stop function runs. Either path may be empty; with both empty, Start is a
// no-op and stop always succeeds.
func Start(cpuPath, memPath string) (stop func() error, err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("profiling: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("profiling: %w", err)
		}
	}
	return func() error {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				return fmt.Errorf("profiling: %w", err)
			}
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				return fmt.Errorf("profiling: %w", err)
			}
			defer f.Close()
			runtime.GC() // flush garbage so the snapshot shows live memory
			if err := pprof.WriteHeapProfile(f); err != nil {
				return fmt.Errorf("profiling: %w", err)
			}
		}
		return nil
	}, nil
}

// captureBusy serializes CaptureCPU callers: the runtime supports only one
// CPU profile at a time, and SLO-breach hooks can fire from several
// goroutines at once. Extra callers return ErrCaptureBusy instead of
// queueing, so a storm of breaches yields one profile, not a pile-up.
var captureBusy atomic.Bool

// ErrCaptureBusy reports that a CPU capture was skipped because another one
// (started here or via Start) is already running.
var ErrCaptureBusy = fmt.Errorf("profiling: a CPU capture is already running")

// CaptureCPU records a CPU profile of duration d into path, blocking until
// the capture completes. It is the SLO-breach flight recorder: call it from
// a breach hook (usually in a goroutine) to snapshot what the process was
// doing while the pipeline was slow. Only one capture runs at a time;
// concurrent calls fail fast with ErrCaptureBusy. On any error the partial
// file is removed.
func CaptureCPU(path string, d time.Duration) error {
	if d <= 0 {
		d = 5 * time.Second
	}
	if !captureBusy.CompareAndSwap(false, true) {
		return ErrCaptureBusy
	}
	defer captureBusy.Store(false)
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("profiling: %w", err)
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		f.Close()
		os.Remove(path)
		return fmt.Errorf("profiling: %w", err)
	}
	time.Sleep(d)
	pprof.StopCPUProfile()
	if err := f.Close(); err != nil {
		os.Remove(path)
		return fmt.Errorf("profiling: %w", err)
	}
	return nil
}
