// Package profiling wires runtime/pprof into the CLIs: one call starts CPU
// profiling and registers a heap snapshot, one call stops both. It exists so
// every command exposes -cpuprofile/-memprofile the same way.
package profiling

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Start begins CPU profiling to cpuPath (if non-empty) and arranges for a
// heap profile to be written to memPath (if non-empty) when the returned
// stop function runs. Either path may be empty; with both empty, Start is a
// no-op and stop always succeeds.
func Start(cpuPath, memPath string) (stop func() error, err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("profiling: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("profiling: %w", err)
		}
	}
	return func() error {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				return fmt.Errorf("profiling: %w", err)
			}
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				return fmt.Errorf("profiling: %w", err)
			}
			defer f.Close()
			runtime.GC() // flush garbage so the snapshot shows live memory
			if err := pprof.WriteHeapProfile(f); err != nil {
				return fmt.Errorf("profiling: %w", err)
			}
		}
		return nil
	}, nil
}
