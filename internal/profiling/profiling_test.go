package profiling

import (
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

func TestCaptureCPUWritesProfile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cpu.pprof")
	if err := CaptureCPU(path, 50*time.Millisecond); err != nil {
		t.Fatalf("CaptureCPU: %v", err)
	}
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatalf("profile not written: %v", err)
	}
	if fi.Size() == 0 {
		t.Fatalf("profile file is empty")
	}
}

func TestCaptureCPUSingleflight(t *testing.T) {
	// Deterministic half: with the busy flag held, a capture fails fast.
	if !captureBusy.CompareAndSwap(false, true) {
		t.Fatalf("busy flag unexpectedly set at test start")
	}
	err := CaptureCPU(filepath.Join(t.TempDir(), "cpu.pprof"), 10*time.Millisecond)
	captureBusy.Store(false)
	if err != ErrCaptureBusy {
		t.Fatalf("want ErrCaptureBusy while a capture is running, got %v", err)
	}

	// Concurrent half: N racers, every outcome is success or busy, at
	// least one succeeds, and the flag is clear at the end.
	dir := t.TempDir()
	var wg sync.WaitGroup
	errs := make([]error, 4)
	for i := range errs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = CaptureCPU(filepath.Join(dir, "cpu"+string(rune('a'+i))+".pprof"), 50*time.Millisecond)
		}(i)
	}
	wg.Wait()
	ok := 0
	for _, err := range errs {
		switch err {
		case nil:
			ok++
		case ErrCaptureBusy:
		default:
			t.Fatalf("unexpected error: %v", err)
		}
	}
	if ok == 0 {
		t.Fatalf("no capture succeeded")
	}
	if captureBusy.Load() {
		t.Fatalf("busy flag left set after captures finished")
	}
}
