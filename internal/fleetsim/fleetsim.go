package fleetsim

import (
	"context"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"acorn/internal/ctlnet"
	"acorn/internal/obs"
	"acorn/internal/spectrum"
)

// Options configures one fleet run. The zero value is a small sane fleet;
// every field has a default.
type Options struct {
	// Agents is the fleet size. Zero means 200.
	Agents int
	// ClientsPerAP is how many measured clients each AP reports. Zero
	// means 2.
	ClientsPerAP int
	// ClusterSize groups agents into mutual-hearing contention clusters
	// of this size (the interference graph is a disjoint union of
	// cliques). Zero means 4.
	ClusterSize int
	// Frame is the framing version agents request (ctlnet.FrameV1 or
	// FrameV2). Zero means FrameV2.
	Frame int
	// Shards is the server's accept/IO shard count. Zero means 4.
	Shards int
	// QueueCap bounds each shard's report queue. Zero sizes it to the
	// fleet (Agents + slack) so a full-fleet report burst sheds nothing.
	QueueCap int
	// Transport is "pipe" (in-memory, default — 10k+ agents need no file
	// descriptors) or "tcp" (loopback, end-to-end).
	Transport string
	// ReportInterval is each agent's steady-state report cadence,
	// jittered ±50%. Zero means 2s; negative disables steady reporting.
	ReportInterval time.Duration
	// Heartbeat is the agent ping cadence. Zero means 5s; negative
	// disables heartbeats.
	Heartbeat time.Duration
	// Duration is the steady-state measurement phase. Zero means 3s.
	Duration time.Duration
	// ChurnFrac is the fraction of agents whose live connection is killed
	// once during the steady phase (they reconnect with backoff).
	ChurnFrac float64
	// StormFrac is the fraction of agents that fire one burst of
	// StormBurst back-to-back reports during the steady phase.
	StormFrac float64
	// StormBurst is the burst length. Zero means 20.
	StormBurst int
	// Seed drives topology, report jitter, churn and storm schedules.
	// Zero means 42.
	Seed int64
	// Log, when non-nil, receives fleet lifecycle lines.
	Log *obs.Logger
}

func (o Options) withDefaults() Options {
	if o.Agents <= 0 {
		o.Agents = 200
	}
	if o.ClientsPerAP <= 0 {
		o.ClientsPerAP = 2
	}
	if o.ClusterSize <= 0 {
		o.ClusterSize = 4
	}
	if o.Frame == 0 {
		o.Frame = ctlnet.FrameV2
	}
	if o.Shards <= 0 {
		o.Shards = 4
	}
	if o.QueueCap <= 0 {
		o.QueueCap = o.Agents + 1024
	}
	if o.Transport == "" {
		o.Transport = "pipe"
	}
	if o.ReportInterval == 0 {
		o.ReportInterval = 2 * time.Second
	}
	if o.Heartbeat == 0 {
		o.Heartbeat = 5 * time.Second
	}
	if o.Duration <= 0 {
		o.Duration = 3 * time.Second
	}
	if o.StormBurst <= 0 {
		o.StormBurst = 20
	}
	if o.Seed == 0 {
		o.Seed = 42
	}
	return o
}

// Result is what one fleet run measured.
type Result struct {
	Agents int `json:"agents"`
	Frame  int `json:"frame"`

	// Converged is true when, at the end of the run, every agent holds
	// exactly the controller's stored assignment for its AP.
	Converged bool `json:"converged"`
	// ConvergeTime is first Reallocate start → last agent holding its
	// assignment.
	ConvergeTime time.Duration `json:"converge_time"`
	// SteadyDuration is the measured churn/storm phase length.
	SteadyDuration time.Duration `json:"steady_duration"`

	// ReportsApplied counts reports installed into the controller view;
	// ReportsPerSec is the sustained apply rate over the steady phase.
	ReportsApplied uint64  `json:"reports_applied"`
	ReportsPerSec  float64 `json:"reports_per_sec"`
	// ReportsSame counts unchanged reports the v2 agents collapsed to
	// seq-only report-same frames (zero in a v1 fleet).
	ReportsSame uint64 `json:"reports_same"`
	// ShardCoalesced/ShardShed count reports absorbed latest-wins in
	// shard queues and reports shed from a full queue (zero in a
	// well-sized run).
	ShardCoalesced uint64 `json:"shard_coalesced"`
	ShardShed      uint64 `json:"shard_shed"`

	PushesEnqueued uint64 `json:"pushes_enqueued"`
	PushesDeduped  uint64 `json:"pushes_deduped"`
	PushErrors     uint64 `json:"push_errors"`
	Heartbeats     uint64 `json:"heartbeats"`

	// PushP50/PushP99 are quantiles of assignment push latency (outbox
	// enqueue → write completed) over the server's sliding window.
	PushP50 time.Duration `json:"push_p50"`
	PushP99 time.Duration `json:"push_p99"`

	// BytesOnWire is all traffic as seen from the server (tx + rx).
	BytesOnWire uint64 `json:"bytes_on_wire"`

	// Resets counts connections the churn schedule killed; Sessions is
	// the total sessions established fleet-wide (≥ Agents + Resets when
	// every churned agent reconnected).
	Resets   uint64 `json:"resets"`
	Sessions uint64 `json:"sessions"`
	// MembershipLost is how many APs the controller forgot (always 0:
	// membership survives disconnects by design).
	MembershipLost int `json:"membership_lost"`

	// ReallocStages breaks the final full reallocation pass into traced
	// stage nanoseconds (view/assoc/alloc/gate/push), from the PR-8
	// tracer.
	ReallocStages map[string]int64 `json:"realloc_stages,omitempty"`
}

// fleetAgent is one simulated AP: its reconnecting agent plus the state
// the steady-phase driver needs.
type fleetAgent struct {
	idx int
	id  string
	ra  *ctlnet.ReconnectingAgent
	rep ctlnet.Report // this AP's (fixed) measurement

	mu   sync.Mutex
	conn net.Conn // live transport conn, for churn kills
}

func (fa *fleetAgent) track(c net.Conn) {
	fa.mu.Lock()
	fa.conn = c
	fa.mu.Unlock()
}

// kill closes the agent's current transport connection (a churn event).
func (fa *fleetAgent) kill() bool {
	fa.mu.Lock()
	c := fa.conn
	fa.conn = nil
	fa.mu.Unlock()
	if c == nil {
		return false
	}
	c.Close()
	return true
}

// Run boots the fleet, converges it, drives the steady churn/storm phase,
// re-converges, and returns the measurements. It tears everything down
// before returning.
func Run(ctx context.Context, o Options) (*Result, error) {
	o = o.withDefaults()
	log := o.Log
	if log == nil {
		log = obs.Nop
	}
	reg := obs.NewRegistry()
	tracer := ctlnet.NewServerTracer(64, 1, nil)
	srv := ctlnet.NewServer(o.Seed)
	srv.Obs = reg
	srv.Tracer = tracer
	srv.Shards = ctlnet.ShardConfig{N: o.Shards, QueueCap: o.QueueCap}

	var ln net.Listener
	var baseDial func(ctx context.Context, addr string) (net.Conn, error)
	addr := "fleet"
	switch o.Transport {
	case "pipe":
		ml := newMemListener()
		ln = ml
		baseDial = ml.Dial
	case "tcp":
		var err error
		ln, err = net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		addr = ln.Addr().String()
		var d net.Dialer
		baseDial = func(ctx context.Context, addr string) (net.Conn, error) {
			return d.DialContext(ctx, "tcp", addr)
		}
	default:
		return nil, fmt.Errorf("fleetsim: unknown transport %q", o.Transport)
	}
	serveDone := make(chan struct{})
	go func() {
		defer close(serveDone)
		_ = srv.Serve(ln)
	}()
	defer func() {
		srv.Close()
		<-serveDone
	}()

	rng := rand.New(rand.NewSource(o.Seed))
	agents := make([]*fleetAgent, o.Agents)
	actx, acancel := context.WithCancel(ctx)
	defer acancel()
	closeFleet := func() {
		acancel()
		var wg sync.WaitGroup
		for _, fa := range agents {
			if fa == nil || fa.ra == nil {
				continue
			}
			wg.Add(1)
			go func(fa *fleetAgent) {
				defer wg.Done()
				fa.ra.Close()
			}(fa)
		}
		wg.Wait()
	}
	defer closeFleet()

	log.Info("booting fleet", "agents", o.Agents, "frame", o.Frame, "transport", o.Transport)
	for i := range agents {
		fa := &fleetAgent{idx: i, id: fmt.Sprintf("ap-%05d", i)}
		fa.rep = buildReport(fa.id, i, o, rng)
		agents[i] = fa
		ropts := ctlnet.ReconnectOptions{
			Backoff: ctlnet.Backoff{Min: 25 * time.Millisecond, Max: time.Second},
			Agent: ctlnet.AgentOptions{
				HeartbeatInterval: o.Heartbeat,
				Frame:             o.Frame,
				ReadBufBytes:      4 << 10,
				Obs:               reg,
			},
			Dial: func(ctx context.Context, a string) (net.Conn, error) {
				c, err := baseDial(ctx, a)
				if err == nil {
					fa.track(c)
				}
				return c, err
			},
			Obs:  reg,
			Seed: int64(i + 1),
		}
		ra, err := ctlnet.NewReconnectingAgent(actx, addr, ctlnet.Hello{APID: fa.id, TxPowerDBm: 20}, ropts)
		if err != nil {
			return nil, err
		}
		fa.ra = ra
		if err := ra.SendReport(fa.rep); err != nil {
			return nil, err
		}
	}

	// Wait for full membership and a report from everyone.
	bootDeadline := time.Now().Add(2 * time.Minute)
	for srv.KnownAgents() < o.Agents || srv.ReportedAgents() < o.Agents {
		if time.Now().After(bootDeadline) {
			return nil, fmt.Errorf("fleetsim: boot stalled: %d/%d known, %d/%d reported",
				srv.KnownAgents(), o.Agents, srv.ReportedAgents(), o.Agents)
		}
		if err := sleepCtx(ctx, 20*time.Millisecond); err != nil {
			return nil, err
		}
	}
	// Reports replayed on a reconnect can race the boot check; give every
	// agent a fresh report so the view is fully sequenced before solving.
	log.Info("fleet booted, reallocating")

	res := &Result{Agents: o.Agents, Frame: o.Frame}

	// Initial convergence.
	t0 := time.Now()
	if _, err := srv.Reallocate(); err != nil {
		return nil, fmt.Errorf("fleetsim: reallocate: %w", err)
	}
	if err := waitConverged(ctx, srv, agents, 2*time.Minute); err != nil {
		return nil, err
	}
	res.ConvergeTime = time.Since(t0)
	log.Info("fleet converged", "agents", o.Agents, "in", res.ConvergeTime)

	// Steady phase: jittered periodic reports, churn kills, storm bursts.
	appliedBefore := counterVal(reg, "acorn_ctlnet_reports_total")
	var resets atomic.Uint64
	steadyStart := time.Now()
	sctx, scancel := context.WithTimeout(ctx, o.Duration)
	var wg sync.WaitGroup
	if o.ReportInterval > 0 {
		for _, fa := range agents {
			wg.Add(1)
			go func(fa *fleetAgent, seed int64) {
				defer wg.Done()
				r := rand.New(rand.NewSource(seed))
				for {
					d := o.ReportInterval/2 + time.Duration(r.Int63n(int64(o.ReportInterval)))
					if sleepCtx(sctx, d) != nil {
						return
					}
					_ = fa.ra.SendReport(fa.rep)
				}
			}(fa, o.Seed+int64(fa.idx)*7919)
		}
	}
	// Churn: kill ChurnFrac of the fleet, spread over the phase.
	if o.ChurnFrac > 0 {
		kills := rng.Perm(o.Agents)[:int(float64(o.Agents)*o.ChurnFrac)]
		wg.Add(1)
		go func() {
			defer wg.Done()
			for _, idx := range kills {
				if sleepCtx(sctx, o.Duration/time.Duration(len(kills)+1)) != nil {
					return
				}
				if agents[idx].kill() {
					resets.Add(1)
				}
			}
		}()
	}
	// Storms: StormFrac of the fleet each fires one back-to-back burst.
	if o.StormFrac > 0 {
		stormers := rng.Perm(o.Agents)[:int(float64(o.Agents)*o.StormFrac)]
		for _, idx := range stormers {
			fa := agents[idx]
			wg.Add(1)
			go func(fa *fleetAgent, at time.Duration) {
				defer wg.Done()
				if sleepCtx(sctx, at) != nil {
					return
				}
				for b := 0; b < o.StormBurst; b++ {
					_ = fa.ra.SendReport(fa.rep)
				}
			}(fa, time.Duration(rng.Int63n(int64(o.Duration))))
		}
	}
	<-sctx.Done()
	scancel()
	wg.Wait()
	res.SteadyDuration = time.Since(steadyStart)
	res.Resets = resets.Load()

	// Let churned agents reconnect, then re-converge the fleet.
	if res.Resets > 0 {
		reconnectDeadline := time.Now().Add(time.Minute)
		for {
			connected := 0
			for _, fa := range agents {
				if fa.ra.Connected() {
					connected++
				}
			}
			if connected == o.Agents {
				break
			}
			if time.Now().After(reconnectDeadline) {
				return nil, fmt.Errorf("fleetsim: %d/%d agents reconnected after churn", connected, o.Agents)
			}
			if err := sleepCtx(ctx, 25*time.Millisecond); err != nil {
				return nil, err
			}
		}
		if _, err := srv.Reallocate(); err != nil {
			return nil, fmt.Errorf("fleetsim: post-churn reallocate: %w", err)
		}
	}
	if err := waitConverged(ctx, srv, agents, time.Minute); err != nil {
		return nil, err
	}
	res.Converged = true

	// Harvest.
	res.ReportsApplied = counterVal(reg, "acorn_ctlnet_reports_total")
	if steady := res.ReportsApplied - appliedBefore; res.SteadyDuration > 0 {
		res.ReportsPerSec = float64(steady) / res.SteadyDuration.Seconds()
	}
	res.ShardCoalesced = sumSeries(reg, "acorn_ctlnet_shard_reports_coalesced_total")
	res.ShardShed = sumSeries(reg, "acorn_ctlnet_shard_reports_shed_total")
	res.ReportsSame = counterVal(reg, "acorn_ctlnet_agent_reports_same_total")
	res.PushesEnqueued = counterVal(reg, "acorn_ctlnet_assignment_pushes_total")
	res.PushesDeduped = counterVal(reg, "acorn_ctlnet_pushes_deduped_total")
	res.PushErrors = counterVal(reg, "acorn_ctlnet_assignment_push_errors_total")
	res.Heartbeats = counterVal(reg, "acorn_ctlnet_heartbeats_total")
	res.Sessions = counterVal(reg, "acorn_ctlnet_sessions_total")
	res.PushP50 = srv.PushLatencyQuantile(0.50)
	res.PushP99 = srv.PushLatencyQuantile(0.99)
	res.BytesOnWire = counterVal(reg, "acorn_ctlnet_server_tx_bytes_total") +
		counterVal(reg, "acorn_ctlnet_server_rx_bytes_total")
	res.MembershipLost = o.Agents - srv.KnownAgents()
	for _, sv := range tracer.Snapshot(8) {
		if sv.Kind == "full" {
			res.ReallocStages = sv.Stages
			break
		}
	}
	return res, nil
}

// waitConverged polls until every agent's current channel equals the
// controller's stored assignment for its AP.
func waitConverged(ctx context.Context, srv *ctlnet.Server, agents []*fleetAgent, limit time.Duration) error {
	deadline := time.Now().Add(limit)
	for {
		want := srv.Assignments()
		ok := 0
		for _, fa := range agents {
			w, has := want[fa.id]
			if has && w != (spectrum.Channel{}) && fa.ra.Current() == w {
				ok++
			}
		}
		if ok == len(agents) {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("fleetsim: convergence stalled: %d/%d agents hold their assignment", ok, len(agents))
		}
		if err := sleepCtx(ctx, 50*time.Millisecond); err != nil {
			return err
		}
	}
}

// buildReport synthesizes AP i's fixed measurement: ClientsPerAP clients
// with jittered SNRs and full mutual hearing inside its cluster.
func buildReport(id string, i int, o Options, rng *rand.Rand) ctlnet.Report {
	rep := ctlnet.Report{APID: id}
	for c := 0; c < o.ClientsPerAP; c++ {
		rep.Clients = append(rep.Clients, ctlnet.ClientObs{
			ClientID: fmt.Sprintf("c%d", c),
			SNR20dB:  18 + 14*rng.Float64(),
		})
	}
	cluster := i / o.ClusterSize
	lo, hi := cluster*o.ClusterSize, (cluster+1)*o.ClusterSize
	if hi > o.Agents {
		hi = o.Agents
	}
	for p := lo; p < hi; p++ {
		if p != i {
			rep.Hears = append(rep.Hears, fmt.Sprintf("ap-%05d", p))
		}
	}
	return rep
}

// sleepCtx sleeps d or until ctx is done (returning its error).
func sleepCtx(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// counterVal reads one counter from a registry snapshot (0 if absent).
func counterVal(reg *obs.Registry, name string) uint64 {
	for _, s := range reg.Snapshot() {
		if s.Name == name && s.Value != nil {
			return uint64(*s.Value)
		}
	}
	return 0
}

// sumSeries sums a labelled family's children (0 if absent).
func sumSeries(reg *obs.Registry, name string) uint64 {
	for _, s := range reg.Snapshot() {
		if s.Name == name && s.Series != nil {
			var sum float64
			for _, v := range s.Series {
				sum += v
			}
			return uint64(sum)
		}
	}
	return 0
}
