// Package fleetsim boots fleets of in-process reconnecting agents against
// a real ctlnet controller and measures what the control plane does under
// load: convergence time, push tail latency, bytes on the wire, and
// behavior under connection churn and report storms.
//
// The default transport is in-memory pipes: at 10-50k agents a TCP fleet
// would need two file descriptors per agent (past typical ulimits) and
// measure the loopback stack as much as the control plane. net.Pipe keeps
// the whole protocol path — framing, batching, outboxes, shard queues —
// while staying fd-free. A "tcp" transport is available for smaller,
// more end-to-end runs.
package fleetsim

import (
	"context"
	"net"
	"sync"
)

// memAddr satisfies net.Addr for the in-memory listener.
type memAddr struct{}

func (memAddr) Network() string { return "mem" }
func (memAddr) String() string  { return "mem:fleet" }

// memListener is a net.Listener whose Dial side hands the server half of a
// net.Pipe to Accept. Accept and Dial are both safe for concurrent use,
// matching the server's sharded accept loops.
type memListener struct {
	ch     chan net.Conn
	closed chan struct{}
	once   sync.Once
}

func newMemListener() *memListener {
	return &memListener{ch: make(chan net.Conn), closed: make(chan struct{})}
}

func (l *memListener) Accept() (net.Conn, error) {
	select {
	case c := <-l.ch:
		return c, nil
	case <-l.closed:
		return nil, net.ErrClosed
	}
}

func (l *memListener) Close() error {
	l.once.Do(func() { close(l.closed) })
	return nil
}

func (l *memListener) Addr() net.Addr { return memAddr{} }

// Dial returns the client half of a fresh pipe whose server half is
// delivered to Accept. It honors ctx cancellation and fails once the
// listener closes (so reconnecting agents back off cleanly at shutdown).
func (l *memListener) Dial(ctx context.Context, _ string) (net.Conn, error) {
	client, server := net.Pipe()
	select {
	case l.ch <- server:
		return client, nil
	case <-l.closed:
		client.Close()
		server.Close()
		return nil, net.ErrClosed
	case <-ctx.Done():
		client.Close()
		server.Close()
		return nil, ctx.Err()
	}
}
