package fleetsim

import (
	"context"
	"runtime"
	"testing"
	"time"

	"acorn/internal/ctlnet"
)

// waitGoroutines polls until the goroutine count returns to the bracket
// taken before the test, with small slack for runtime housekeeping.
func waitGoroutines(t *testing.T, before int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= before+4 {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutine leak: %d before, %d after\n%s",
				before, runtime.NumGoroutine(), buf[:n])
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestFleetConverges is the smoke fleet: a few hundred v2 agents over the
// in-memory transport boot, report, and converge to the controller's
// assignment table, with zero membership loss and zero shed reports. This
// is the target `make fleet-bench-smoke` runs.
func TestFleetConverges(t *testing.T) {
	before := runtime.NumGoroutine()
	agents := 200
	if testing.Short() {
		agents = 64
	}
	res, err := Run(context.Background(), Options{
		Agents:         agents,
		Duration:       500 * time.Millisecond,
		ReportInterval: 200 * time.Millisecond,
		Heartbeat:      250 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("fleet did not converge")
	}
	if res.MembershipLost != 0 {
		t.Fatalf("controller lost %d memberships", res.MembershipLost)
	}
	if res.ShardShed != 0 {
		t.Fatalf("%d reports shed from well-sized shard queues", res.ShardShed)
	}
	if res.BytesOnWire == 0 {
		t.Fatal("no bytes measured on the wire")
	}
	if res.Frame != ctlnet.FrameV2 {
		t.Fatalf("frame = %d, want v2", res.Frame)
	}
	waitGoroutines(t, before)
}

// TestFleetConvergesV1TCP exercises the other corner: JSON framing over
// real loopback TCP. Small, because each agent costs two file descriptors.
func TestFleetConvergesV1TCP(t *testing.T) {
	res, err := Run(context.Background(), Options{
		Agents:         32,
		Frame:          ctlnet.FrameV1,
		Transport:      "tcp",
		Duration:       300 * time.Millisecond,
		ReportInterval: 150 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("v1/tcp fleet did not converge")
	}
	if res.MembershipLost != 0 {
		t.Fatalf("controller lost %d memberships", res.MembershipLost)
	}
}
