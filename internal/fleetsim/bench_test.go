package fleetsim

import (
	"context"
	"testing"
	"time"

	"acorn/internal/ctlnet"
)

// runWireProfile runs one fixed fleet profile under the given framing and
// reports its bytes-on-wire so `benchjson -derive` can compute the v2/v1
// wire ratio from the BenchmarkFleetWireV1/V2 pair. The profile is
// identical on both sides — same seed, topology, cadence — so the byte
// counts differ only by framing.
func runWireProfile(b *testing.B, frame int) {
	agents := 300
	if testing.Short() {
		agents = 64
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := Run(context.Background(), Options{
			Agents:         agents,
			Frame:          frame,
			Duration:       1500 * time.Millisecond,
			ReportInterval: 200 * time.Millisecond,
			Heartbeat:      300 * time.Millisecond,
			Seed:           42,
		})
		if err != nil {
			b.Fatal(err)
		}
		if !res.Converged {
			b.Fatal("fleet did not converge")
		}
		b.ReportMetric(float64(res.BytesOnWire), "bytes_on_wire")
		b.ReportMetric(res.ReportsPerSec, "reports_per_s")
	}
}

func BenchmarkFleetWireV1(b *testing.B) { runWireProfile(b, ctlnet.FrameV1) }
func BenchmarkFleetWireV2(b *testing.B) { runWireProfile(b, ctlnet.FrameV2) }

// BenchmarkFleetConverge10k is the committed BENCH_fleet headline: a 10k-
// agent in-process fleet boots, converges, and sustains a steady phase,
// with convergence time, push tail latency, and sustained report rate
// reported as benchjson extras. Skipped under -short (it runs for minutes
// on one core).
func BenchmarkFleetConverge10k(b *testing.B) {
	if testing.Short() {
		b.Skip("10k-agent fleet is a long run; skipped under -short")
	}
	for i := 0; i < b.N; i++ {
		res, err := Run(context.Background(), Options{
			Agents:         10000,
			Shards:         8,
			Duration:       10 * time.Second,
			ReportInterval: 2 * time.Second,
			Heartbeat:      5 * time.Second,
			ChurnFrac:      0.02,
			StormFrac:      0.02,
		})
		if err != nil {
			b.Fatal(err)
		}
		if !res.Converged {
			b.Fatal("10k fleet did not converge")
		}
		if res.MembershipLost != 0 {
			b.Fatalf("controller lost %d memberships", res.MembershipLost)
		}
		if res.ShardShed != 0 {
			b.Fatalf("%d reports shed", res.ShardShed)
		}
		b.ReportMetric(res.ConvergeTime.Seconds(), "converge_s")
		b.ReportMetric(float64(res.Agents)/res.ConvergeTime.Seconds(), "agents_per_s")
		b.ReportMetric(float64(res.PushP50.Microseconds())/1000, "push_p50_ms")
		b.ReportMetric(float64(res.PushP99.Microseconds())/1000, "push_p99_ms")
		b.ReportMetric(res.ReportsPerSec, "reports_per_s")
		b.ReportMetric(float64(res.BytesOnWire), "bytes_on_wire")
		b.ReportMetric(float64(res.ShardCoalesced), "shard_coalesced")
		b.ReportMetric(float64(res.Resets), "resets")
	}
}
