package fleetsim

import (
	"context"
	"runtime"
	"testing"
	"time"
)

// TestFleetStorm is the chaos fleet: 1k agents (256 under -short) with a
// quarter of the fleet's connections reset mid-run and another quarter
// firing report storms. The fleet must re-converge, the controller must
// keep every membership, and the reset agents must all come back (asserted
// on the obs counters the run harvests). Runs under -race in `make race`.
func TestFleetStorm(t *testing.T) {
	before := runtime.NumGoroutine()
	agents := 1000
	dur := 2 * time.Second
	if testing.Short() {
		agents = 256
		dur = time.Second
	}
	res, err := Run(context.Background(), Options{
		Agents:         agents,
		Duration:       dur,
		ReportInterval: 300 * time.Millisecond,
		Heartbeat:      500 * time.Millisecond,
		ChurnFrac:      0.25,
		StormFrac:      0.25,
		StormBurst:     20,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("storm fleet did not re-converge")
	}
	if res.MembershipLost != 0 {
		t.Fatalf("controller lost %d memberships through churn", res.MembershipLost)
	}
	if want := uint64(float64(agents) * 0.20); res.Resets < want {
		t.Fatalf("only %d connection resets, want >= %d (20%% of fleet)", res.Resets, want)
	}
	// Every churned agent reconnected: one session per boot plus one per
	// reset (the counter is fleet-wide, from the reconnect supervisors).
	if want := uint64(agents) + res.Resets; res.Sessions < want {
		t.Fatalf("sessions = %d, want >= %d (boot + reconnects)", res.Sessions, want)
	}
	// Storm bursts overrun the per-connection outbox and shard queues by
	// design; latest-wins coalescing (not shedding) must absorb them.
	if res.ShardShed != 0 {
		t.Fatalf("%d reports shed; storms must coalesce, not shed", res.ShardShed)
	}
	if res.PushErrors > res.Resets {
		t.Fatalf("push errors (%d) exceed connection resets (%d)", res.PushErrors, res.Resets)
	}
	waitGoroutines(t, before)
}
