// Package units provides the physical-unit conversions used throughout the
// ACORN codebase: decibel arithmetic, dBm/milliwatt power conversions and a
// few strongly typed scalar wrappers (DB, DBm, MilliWatt, Hertz) that keep
// link-budget code honest about what it is adding to what.
//
// Conventions:
//
//   - Ratios (SNR, gains, losses) are expressed in dB (type DB).
//   - Absolute powers are expressed in dBm (type DBm) or mW (type MilliWatt).
//   - Bandwidths and frequencies are expressed in Hz (type Hertz).
//
// Adding a DB to a DBm yields a DBm (gain applied to a power); subtracting two
// DBm values yields a DB (a ratio). The Go type system cannot enforce that
// with operators, so the methods below encode the legal combinations.
package units

import (
	"fmt"
	"math"
)

// DB is a dimensionless ratio expressed in decibels.
type DB float64

// DBm is an absolute power level referenced to one milliwatt.
type DBm float64

// MilliWatt is an absolute power in milliwatts (linear scale).
type MilliWatt float64

// Hertz is a frequency or bandwidth in hertz.
type Hertz float64

// MHz is one megahertz, the unit channel plans are quoted in.
const MHz Hertz = 1e6

// Channel bandwidths used by 802.11n.
const (
	Bandwidth20MHz Hertz = 20e6
	Bandwidth40MHz Hertz = 40e6
)

// Ratio converts a linear power ratio to decibels.
// Ratio(2) ≈ 3.0103 dB; Ratio(0) is -Inf.
func Ratio(linear float64) DB {
	return DB(10 * math.Log10(linear))
}

// Linear converts the decibel ratio back to a linear power ratio.
func (d DB) Linear() float64 {
	return math.Pow(10, float64(d)/10)
}

// Plus adds two decibel ratios (multiplies the underlying linear ratios).
func (d DB) Plus(o DB) DB { return d + o }

// Minus subtracts a decibel ratio.
func (d DB) Minus(o DB) DB { return d - o }

// String implements fmt.Stringer.
func (d DB) String() string { return fmt.Sprintf("%.2f dB", float64(d)) }

// MilliWatts converts an absolute dBm power to linear milliwatts.
func (p DBm) MilliWatts() MilliWatt {
	return MilliWatt(math.Pow(10, float64(p)/10))
}

// Plus applies a gain (or, if g is negative, a loss) to the power.
func (p DBm) Plus(g DB) DBm { return p + DBm(g) }

// Minus applies a loss to the power.
func (p DBm) Minus(l DB) DBm { return p - DBm(l) }

// Over returns the ratio between two absolute powers, in dB. This is the
// operation that turns a received power and a noise floor into an SNR.
func (p DBm) Over(q DBm) DB { return DB(p - q) }

// String implements fmt.Stringer.
func (p DBm) String() string { return fmt.Sprintf("%.2f dBm", float64(p)) }

// DBm converts a linear milliwatt power to dBm. Zero or negative powers map
// to -Inf dBm.
func (m MilliWatt) DBm() DBm {
	return DBm(10 * math.Log10(float64(m)))
}

// Plus adds two linear powers. Combining interference powers must happen in
// the linear domain; this method exists so call sites don't accidentally sum
// dBm values.
func (m MilliWatt) Plus(o MilliWatt) MilliWatt { return m + o }

// String implements fmt.Stringer.
func (m MilliWatt) String() string { return fmt.Sprintf("%.6g mW", float64(m)) }

// SumPowers combines several absolute powers (e.g. interference sources plus
// thermal noise) in the linear domain and returns the total in dBm.
func SumPowers(powers ...DBm) DBm {
	var total MilliWatt
	for _, p := range powers {
		total += p.MilliWatts()
	}
	return total.DBm()
}
