package units

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestRatioDoubling(t *testing.T) {
	if got := float64(Ratio(2)); !almostEqual(got, 3.0103, 1e-3) {
		t.Errorf("Ratio(2) = %v, want ≈3.0103", got)
	}
	if got := float64(Ratio(10)); !almostEqual(got, 10, 1e-9) {
		t.Errorf("Ratio(10) = %v, want 10", got)
	}
	if got := float64(Ratio(1)); !almostEqual(got, 0, 1e-12) {
		t.Errorf("Ratio(1) = %v, want 0", got)
	}
}

func TestRatioLinearRoundTrip(t *testing.T) {
	f := func(x float64) bool {
		lin := math.Abs(x) + 0.001 // positive linear ratio
		back := Ratio(lin).Linear()
		return almostEqual(back, lin, lin*1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDBmMilliWattRoundTrip(t *testing.T) {
	cases := []struct {
		dbm DBm
		mw  float64
	}{
		{0, 1},
		{30, 1000},
		{-30, 0.001},
		{23, 199.526},
	}
	for _, c := range cases {
		if got := float64(c.dbm.MilliWatts()); !almostEqual(got, c.mw, c.mw*1e-3) {
			t.Errorf("%v.MilliWatts() = %v, want %v", c.dbm, got, c.mw)
		}
		if got := float64(MilliWatt(c.mw).DBm()); !almostEqual(got, float64(c.dbm), 1e-3) {
			t.Errorf("MilliWatt(%v).DBm() = %v, want %v", c.mw, got, c.dbm)
		}
	}
}

func TestDBmArithmetic(t *testing.T) {
	p := DBm(10)
	if got := p.Plus(3); got != 13 {
		t.Errorf("10 dBm + 3 dB = %v, want 13 dBm", got)
	}
	if got := p.Minus(13); got != -3 {
		t.Errorf("10 dBm − 13 dB = %v, want −3 dBm", got)
	}
	if got := DBm(-60).Over(-90); got != 30 {
		t.Errorf("(-60 dBm)/(-90 dBm) = %v, want 30 dB", got)
	}
}

func TestSumPowers(t *testing.T) {
	// Two equal powers sum to +3 dB.
	got := float64(SumPowers(-90, -90))
	if !almostEqual(got, -90+3.0103, 1e-3) {
		t.Errorf("SumPowers(-90,-90) = %v, want ≈-86.99", got)
	}
	// A much weaker power barely moves the sum.
	got = float64(SumPowers(-60, -100))
	if !almostEqual(got, -60, 0.01) {
		t.Errorf("SumPowers(-60,-100) = %v, want ≈-60", got)
	}
}

func TestSumPowersCommutative(t *testing.T) {
	f := func(a, b int8) bool {
		x, y := DBm(a), DBm(b)
		return almostEqual(float64(SumPowers(x, y)), float64(SumPowers(y, x)), 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestStringFormats(t *testing.T) {
	if got := DB(3.005).String(); got != "3.00 dB" && got != "3.01 dB" {
		t.Errorf("DB.String() = %q", got)
	}
	if got := DBm(-82).String(); got != "-82.00 dBm" {
		t.Errorf("DBm.String() = %q", got)
	}
}

func TestDBArithmeticAndStrings(t *testing.T) {
	if got := DB(3).Plus(4); got != 7 {
		t.Errorf("3dB+4dB = %v", got)
	}
	if got := DB(3).Minus(4); got != -1 {
		t.Errorf("3dB-4dB = %v", got)
	}
	if got := MilliWatt(2).Plus(3); got != 5 {
		t.Errorf("2mW+3mW = %v", got)
	}
	if got := MilliWatt(0.5).String(); got != "0.5 mW" {
		t.Errorf("MilliWatt.String() = %q", got)
	}
}
