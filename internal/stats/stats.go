// Package stats provides the small statistical toolkit the experiment
// harnesses need: empirical CDFs, percentiles, summary statistics, the
// coefficient of determination used in the paper to compare measured and
// theoretical BER curves, and deterministic RNG construction so every
// experiment is reproducible run to run.
package stats

import (
	"math"
	"math/rand"
	"sort"
)

// NewRand returns a deterministic *rand.Rand seeded with the given seed.
// Every simulator and workload generator in this repository draws randomness
// through this constructor so experiments are reproducible.
func NewRand(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Variance returns the population variance of xs, or 0 when len(xs) < 2.
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var ss float64
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return ss / float64(len(xs))
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// Min returns the smallest element of xs. It panics on an empty slice, which
// would indicate a harness bug rather than a data condition.
func Min(xs []float64) float64 {
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the largest element of xs. It panics on an empty slice.
func Max(xs []float64) float64 {
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Percentile returns the p-th percentile (0 ≤ p ≤ 100) of xs using linear
// interpolation between closest ranks. It returns 0 for an empty slice.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Median returns the 50th percentile of xs.
func Median(xs []float64) float64 { return Percentile(xs, 50) }

// RSquared returns the coefficient of determination between observed values
// and the values a model predicts for the same inputs. The paper reports
// R² of 0.8 and 0.89 between measured and theoretical BER for the 20 and
// 40 MHz channels (Section 3.1); Table EXPERIMENTS.md/F3a reproduces that
// comparison with this function.
//
// R² = 1 − SSres/SStot. A perfect fit gives 1; a model no better than the
// observed mean gives 0; worse-than-mean models give negative values.
// It returns NaN when the observed series has zero variance.
func RSquared(observed, predicted []float64) float64 {
	if len(observed) != len(predicted) || len(observed) == 0 {
		return math.NaN()
	}
	mean := Mean(observed)
	var ssRes, ssTot float64
	for i, o := range observed {
		r := o - predicted[i]
		ssRes += r * r
		t := o - mean
		ssTot += t * t
	}
	if ssTot == 0 {
		return math.NaN()
	}
	return 1 - ssRes/ssTot
}

// ECDF is an empirical cumulative distribution function over a sample.
type ECDF struct {
	sorted []float64
}

// NewECDF builds an ECDF from the sample. The input slice is copied.
func NewECDF(sample []float64) *ECDF {
	s := append([]float64(nil), sample...)
	sort.Float64s(s)
	return &ECDF{sorted: s}
}

// Len returns the sample size.
func (e *ECDF) Len() int { return len(e.sorted) }

// At returns P(X ≤ x), i.e. the fraction of the sample at or below x.
func (e *ECDF) At(x float64) float64 {
	if len(e.sorted) == 0 {
		return 0
	}
	// First index with value > x.
	idx := sort.SearchFloat64s(e.sorted, math.Nextafter(x, math.Inf(1)))
	return float64(idx) / float64(len(e.sorted))
}

// Quantile returns the smallest sample value v such that At(v) ≥ q, for
// q in (0, 1]. Quantile(0.5) is the empirical median.
func (e *ECDF) Quantile(q float64) float64 {
	if len(e.sorted) == 0 {
		return 0
	}
	if q <= 0 {
		return e.sorted[0]
	}
	if q >= 1 {
		return e.sorted[len(e.sorted)-1]
	}
	idx := int(math.Ceil(q*float64(len(e.sorted)))) - 1
	if idx < 0 {
		idx = 0
	}
	return e.sorted[idx]
}

// Points returns (x, F(x)) pairs suitable for plotting the CDF as a step
// function, downsampled to at most n points to keep report output bounded.
func (e *ECDF) Points(n int) (xs, fs []float64) {
	if len(e.sorted) == 0 || n <= 0 {
		return nil, nil
	}
	if n > len(e.sorted) {
		n = len(e.sorted)
	}
	for i := 0; i < n; i++ {
		idx := i * (len(e.sorted) - 1) / max(n-1, 1)
		xs = append(xs, e.sorted[idx])
		fs = append(fs, float64(idx+1)/float64(len(e.sorted)))
	}
	return xs, fs
}

// DeriveSeed expands (base, stream) into a decorrelated 64-bit seed using
// the SplitMix64 finalizer. Monte-Carlo shards (stream = shard index) and
// per-link substreams (noise vs payload bits) each get an independent RNG
// whose sequence does not alias any other stream derived from the same base
// seed, so sharded runs stay statistically independent yet fully
// reproducible.
func DeriveSeed(base int64, stream uint64) int64 {
	z := uint64(base) ^ (stream+1)*0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return int64(z ^ (z >> 31))
}
