package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestMeanVariance(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	if m := Mean(xs); m != 3 {
		t.Errorf("Mean = %v, want 3", m)
	}
	if v := Variance(xs); v != 2 {
		t.Errorf("Variance = %v, want 2", v)
	}
	if s := StdDev(xs); math.Abs(s-math.Sqrt2) > 1e-12 {
		t.Errorf("StdDev = %v, want √2", s)
	}
	if m := Mean(nil); m != 0 {
		t.Errorf("Mean(nil) = %v, want 0", m)
	}
	if v := Variance([]float64{7}); v != 0 {
		t.Errorf("Variance(single) = %v, want 0", v)
	}
}

func TestMinMax(t *testing.T) {
	xs := []float64{3, -1, 4, 1, 5}
	if Min(xs) != -1 {
		t.Errorf("Min = %v", Min(xs))
	}
	if Max(xs) != 5 {
		t.Errorf("Max = %v", Max(xs))
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{10, 20, 30, 40, 50}
	cases := []struct{ p, want float64 }{
		{0, 10}, {25, 20}, {50, 30}, {75, 40}, {100, 50}, {-5, 10}, {110, 50},
	}
	for _, c := range cases {
		if got := Percentile(xs, c.p); got != c.want {
			t.Errorf("Percentile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
	if got := Percentile(nil, 50); got != 0 {
		t.Errorf("Percentile(nil) = %v", got)
	}
	if got := Median([]float64{1, 3}); got != 2 {
		t.Errorf("Median interpolation = %v, want 2", got)
	}
}

func TestPercentileWithinRange(t *testing.T) {
	f := func(raw []float64, p uint8) bool {
		var xs []float64
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				xs = append(xs, x)
			}
		}
		if len(xs) == 0 {
			return true
		}
		got := Percentile(xs, float64(p%101))
		return got >= Min(xs) && got <= Max(xs)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRSquared(t *testing.T) {
	obs := []float64{1, 2, 3, 4}
	if r := RSquared(obs, obs); math.Abs(r-1) > 1e-12 {
		t.Errorf("perfect fit R² = %v, want 1", r)
	}
	mean := []float64{2.5, 2.5, 2.5, 2.5}
	if r := RSquared(obs, mean); math.Abs(r) > 1e-12 {
		t.Errorf("mean-model R² = %v, want 0", r)
	}
	if r := RSquared(obs, []float64{1, 2}); !math.IsNaN(r) {
		t.Errorf("length mismatch should be NaN, got %v", r)
	}
	if r := RSquared([]float64{5, 5}, []float64{5, 5}); !math.IsNaN(r) {
		t.Errorf("zero-variance should be NaN, got %v", r)
	}
	// A slightly noisy fit should land between 0 and 1.
	noisy := []float64{1.1, 1.9, 3.2, 3.9}
	if r := RSquared(obs, noisy); r <= 0.9 || r >= 1 {
		t.Errorf("noisy fit R² = %v, want in (0.9, 1)", r)
	}
}

func TestECDF(t *testing.T) {
	e := NewECDF([]float64{1, 2, 2, 3})
	cases := []struct{ x, want float64 }{
		{0.5, 0}, {1, 0.25}, {2, 0.75}, {2.5, 0.75}, {3, 1}, {10, 1},
	}
	for _, c := range cases {
		if got := e.At(c.x); got != c.want {
			t.Errorf("At(%v) = %v, want %v", c.x, got, c.want)
		}
	}
	if q := e.Quantile(0.5); q != 2 {
		t.Errorf("Quantile(0.5) = %v, want 2", q)
	}
	if q := e.Quantile(1); q != 3 {
		t.Errorf("Quantile(1) = %v, want 3", q)
	}
	if q := e.Quantile(0); q != 1 {
		t.Errorf("Quantile(0) = %v, want 1", q)
	}
}

func TestECDFQuantileAtInverse(t *testing.T) {
	f := func(raw []float64) bool {
		var xs []float64
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				xs = append(xs, x)
			}
		}
		if len(xs) == 0 {
			return true
		}
		e := NewECDF(xs)
		for _, q := range []float64{0.1, 0.5, 0.9} {
			v := e.Quantile(q)
			if e.At(v) < q-1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestECDFPoints(t *testing.T) {
	e := NewECDF([]float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10})
	xs, fs := e.Points(5)
	if len(xs) != 5 || len(fs) != 5 {
		t.Fatalf("Points(5) returned %d/%d values", len(xs), len(fs))
	}
	if fs[len(fs)-1] != 1 {
		t.Errorf("last CDF point = %v, want 1", fs[len(fs)-1])
	}
	for i := 1; i < len(xs); i++ {
		if xs[i] < xs[i-1] || fs[i] < fs[i-1] {
			t.Errorf("Points not monotone at %d", i)
		}
	}
	if xs, fs := e.Points(0); xs != nil || fs != nil {
		t.Error("Points(0) should be nil")
	}
}

func TestNewRandDeterminism(t *testing.T) {
	a, b := NewRand(42), NewRand(42)
	for i := 0; i < 10; i++ {
		if a.Float64() != b.Float64() {
			t.Fatal("same seed produced different streams")
		}
	}
}

func TestDeriveSeed(t *testing.T) {
	// Deterministic, and distinct across both base and stream.
	if DeriveSeed(1, 0) != DeriveSeed(1, 0) {
		t.Error("DeriveSeed is not deterministic")
	}
	seen := map[int64]bool{}
	for base := int64(0); base < 8; base++ {
		for stream := uint64(0); stream < 64; stream++ {
			s := DeriveSeed(base, stream)
			if seen[s] {
				t.Fatalf("seed collision at base %d stream %d", base, stream)
			}
			seen[s] = true
		}
	}
}
