package ratecontrol

import (
	"testing"

	"acorn/internal/phy"
	"acorn/internal/spectrum"
	"acorn/internal/units"
)

func TestBestPicksRobustAtLowSNR(t *testing.T) {
	sel := Best(0, spectrum.Width20, 1500)
	if sel.MCS.Index > 1 {
		t.Errorf("at 0 dB expected MCS 0–1, got %v", sel.MCS)
	}
	if sel.Mode != phy.STBC {
		t.Errorf("poor link should use STBC, got %v", sel.Mode)
	}
}

func TestBestPicksSDMAtHighSNR(t *testing.T) {
	sel := Best(30, spectrum.Width20, 1500)
	if sel.Mode != phy.SDM {
		t.Errorf("strong link should use SDM, got %v", sel.Mode)
	}
	if sel.MCS.Index != 15 {
		t.Errorf("strong link should reach MCS 15, got %v", sel.MCS)
	}
	if sel.PER > 0.01 {
		t.Errorf("strong link PER = %v, want ≈0", sel.PER)
	}
}

func TestBestGoodputMonotoneInSNR(t *testing.T) {
	prev := -1.0
	for snr := units.DB(-10); snr <= 35; snr++ {
		g := Best(snr, spectrum.Width20, 1500).GoodputMbps
		if g < prev-1e-6 {
			t.Fatalf("goodput decreased at %v dB: %v < %v", snr, g, prev)
		}
		prev = g
	}
}

func TestBestMCSMonotoneInSNRRoughly(t *testing.T) {
	// The selected MCS ladder should climb with SNR; allow plateaus and
	// mode-switch dips but the final selection must be the top MCS.
	low := Best(-2, spectrum.Width20, 1500).MCS.Index
	high := Best(28, spectrum.Width20, 1500).MCS.Index
	if low >= high {
		t.Errorf("MCS should climb with SNR: %d → %d", low, high)
	}
}

func TestDeadLinkReportsRobustSelection(t *testing.T) {
	sel := Best(-20, spectrum.Width20, 1500)
	// Dead links bottom out at the MAC delay cap (1 kbit/s equivalent).
	if sel.GoodputMbps > 0.01 {
		t.Errorf("dead link goodput = %v, want ≈0", sel.GoodputMbps)
	}
	if sel.PER < 0.99 {
		t.Errorf("dead link PER = %v, want ≈1", sel.PER)
	}
}

func TestOptimalFixedMCSFig6bShape(t *testing.T) {
	// Fig 6(b): the optimal MCS with 40 MHz is almost always less
	// aggressive (≤) than with 20 MHz for the same link.
	for snr := units.DB(-2); snr <= 30; snr += 2 {
		b20, b40 := OptimalFixedMCS(snr, 1500)
		// Compare within the same stream count by folding MCS 8–15
		// onto 0–7 plus stream info; the raw index comparison is the
		// paper's, so use it but tolerate equal stream jumps.
		if b40.MCS.Index > b20.MCS.Index {
			t.Errorf("at %v dB optimal 40 MHz MCS %d more aggressive than 20 MHz MCS %d",
				snr, b40.MCS.Index, b20.MCS.Index)
		}
	}
}

func TestOptimal40NeverMoreThanDoubleGoodput(t *testing.T) {
	// Section 3.2: throughput with CB is almost always "less than
	// double" that without CB.
	for snr := units.DB(0); snr <= 35; snr++ {
		b20, b40 := OptimalFixedMCS(snr, 1500)
		if b20.GoodputMbps > 0 && b40.GoodputMbps > 2*b20.GoodputMbps {
			t.Errorf("at %v dB CB more than doubles goodput: %v vs %v",
				snr, b40.GoodputMbps, b20.GoodputMbps)
		}
	}
}

func TestCBHurtsPoorLinks(t *testing.T) {
	// Around the decode floor, 20 MHz must win (the σ ≥ 2 regime).
	b20, b40 := OptimalFixedMCS(-1, 1500)
	if b40.GoodputMbps >= b20.GoodputMbps {
		t.Errorf("poor link: 40 MHz goodput %v should lose to 20 MHz %v",
			b40.GoodputMbps, b20.GoodputMbps)
	}
}

func TestCBHelpsGoodLinks(t *testing.T) {
	b20, b40 := OptimalFixedMCS(25, 1500)
	if b40.GoodputMbps <= 1.3*b20.GoodputMbps {
		t.Errorf("good link: 40 MHz goodput %v should clearly beat 20 MHz %v",
			b40.GoodputMbps, b20.GoodputMbps)
	}
}

func TestEvaluateModeAssignment(t *testing.T) {
	m0, _ := phy.MCSByIndex(0)
	m8, _ := phy.MCSByIndex(8)
	if s := Evaluate(m0, 10, spectrum.Width20, 1500); s.Mode != phy.STBC {
		t.Errorf("single-stream MCS should evaluate as STBC, got %v", s.Mode)
	}
	if s := Evaluate(m8, 10, spectrum.Width20, 1500); s.Mode != phy.SDM {
		t.Errorf("two-stream MCS should evaluate as SDM, got %v", s.Mode)
	}
}

func TestAutoRateHysteresis(t *testing.T) {
	ar := NewAutoRate(spectrum.Width20, 1500)
	s1 := ar.Update(10)
	// A sub-hysteresis wiggle must not change the selection object.
	s2 := ar.Update(10.5)
	if s1 != s2 {
		t.Error("selection changed within hysteresis band")
	}
	// A large jump re-evaluates.
	s3 := ar.Update(28)
	if s3.MCS.Index <= s1.MCS.Index {
		t.Errorf("selection should climb after big SNR jump: %v → %v", s1.MCS, s3.MCS)
	}
	// Dropping back re-evaluates again.
	s4 := ar.Update(0)
	if s4.MCS.Index >= s3.MCS.Index {
		t.Error("selection should fall after SNR collapse")
	}
}

func TestShortGI(t *testing.T) {
	// On a strong link the short GI's ~11% rate bump wins.
	long := Best(30, spectrum.Width40, 1500)
	both := BestGI(30, spectrum.Width40, 1500)
	if !both.ShortGI {
		t.Errorf("strong link should choose short GI (goodput %v vs long-GI %v)",
			both.GoodputMbps, long.GoodputMbps)
	}
	if both.GoodputMbps <= long.GoodputMbps {
		t.Errorf("short GI goodput %v not above long GI %v", both.GoodputMbps, long.GoodputMbps)
	}
	// BestGI never does worse than Best.
	for snr := units.DB(-4); snr <= 32; snr += 4 {
		if BestGI(snr, spectrum.Width20, 1500).GoodputMbps+1e-9 < Best(snr, spectrum.Width20, 1500).GoodputMbps {
			t.Fatalf("BestGI regressed at %v dB", snr)
		}
	}
	// The nominal-rate bump is ≈11%.
	m, _ := phy.MCSByIndex(15)
	longR := EvaluateGI(m, 35, spectrum.Width40, 1500, false).RateMbps
	shortR := EvaluateGI(m, 35, spectrum.Width40, 1500, true).RateMbps
	if ratio := shortR / longR; ratio < 1.10 || ratio > 1.12 {
		t.Errorf("short-GI rate ratio = %v, want ≈1.11", ratio)
	}
}
