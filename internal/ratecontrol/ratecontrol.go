// Package ratecontrol emulates the proprietary auto-rate behaviour of the
// testbed's Ralink cards: given a link's quality it selects the MCS and the
// MIMO operating mode (SDM for rate on strong links, STBC for reliability on
// weak ones), maximizing expected goodput R·(1−PER). It also provides the
// exhaustive "optimal fixed MCS" search the paper runs for Fig 6(b).
package ratecontrol

import (
	"math"
	"sync"

	"acorn/internal/mac"
	"acorn/internal/phy"
	"acorn/internal/spectrum"
	"acorn/internal/units"
)

// MIMO mode SNR adjustments for a 2×2 link, applied to the per-subcarrier
// SNR before evaluating BER:
//
//   - Alamouti STBC combines both antennas coherently, an array gain of
//     ≈3 dB on top of the transmit diversity that stabilizes fading links —
//     this is why the cards fall back to STBC on poor links.
//   - SDM splits the same total power across two independent streams, so
//     each stream runs ≈3 dB below the link SNR (plus residual inter-stream
//     interference, folded into the same constant).
const (
	STBCGain   units.DB = 3
	SDMPenalty units.DB = 3
)

// Selection is the outcome of a rate-control decision.
type Selection struct {
	MCS  phy.MCS
	Mode phy.MIMOMode
	// RateMbps is the nominal PHY rate of the selection.
	RateMbps float64
	// PER is the predicted packet error rate at the evaluated SNR.
	PER float64
	// GoodputMbps is the expected MAC-layer goodput (what the selection
	// was optimized for).
	GoodputMbps float64
	// ShortGI reports whether the selection uses the 400 ns guard
	// interval (only BestGI/EvaluateGI consider it).
	ShortGI bool
}

// effectiveSNR returns the per-stream subcarrier SNR for an MCS given the
// link's per-subcarrier SNR and the implied MIMO mode.
func effectiveSNR(snr units.DB, m phy.MCS) (units.DB, phy.MIMOMode) {
	if m.Streams >= 2 {
		return snr.Minus(SDMPenalty), phy.SDM
	}
	return snr.Plus(STBCGain), phy.STBC
}

// Evaluate predicts PER and goodput for one MCS at the given link SNR and
// width, using the standard 800 ns guard interval. The goodput accounts for
// MAC overheads and retransmissions via the mac package, so comparisons
// between a slow-reliable and fast-lossy MCS are made in the currency that
// matters.
func Evaluate(m phy.MCS, snr units.DB, w spectrum.Width, packetBytes int) Selection {
	return EvaluateGI(m, snr, w, packetBytes, false)
}

// EvaluateGI is Evaluate with an explicit guard-interval choice. The short
// 400 ns GI raises nominal rates ≈11% but shrinks the multipath guard; this
// model charges it a small SNR penalty (ShortGIPenalty) reflecting residual
// inter-symbol interference on indoor channels.
func EvaluateGI(m phy.MCS, snr units.DB, w spectrum.Width, packetBytes int, shortGI bool) Selection {
	eff, mode := effectiveSNR(snr, m)
	if shortGI {
		eff = eff.Minus(ShortGIPenalty)
	}
	per := phy.CodedPERFaded(m.ModCod(), eff, packetBytes, phy.DefaultFadeSigmaDB)
	rate := phy.NominalRateMbps(m, w, shortGI)
	delay := mac.ClientDelay(packetBytes, rate, per)
	goodput := 0.0
	if delay > 0 {
		goodput = 1 / delay
	}
	return Selection{MCS: m, Mode: mode, RateMbps: rate, PER: per, GoodputMbps: goodput, ShortGI: shortGI}
}

// ShortGIPenalty is the effective SNR cost of halving the guard interval on
// an indoor channel whose delay spread occasionally exceeds 400 ns.
const ShortGIPenalty units.DB = 0.5

// BestGI extends Best with the guard-interval dimension: the search
// considers both GI settings for every MCS/mode and returns the overall
// goodput maximizer.
func BestGI(snr units.DB, w spectrum.Width, packetBytes int) Selection {
	best := Best(snr, w, packetBytes)
	for _, m := range phy.MCSTable() {
		if s := EvaluateGI(m, snr, w, packetBytes, true); s.GoodputMbps > best.GoodputMbps {
			best = s
		}
	}
	return best
}

// bestCache memoizes Best: the function is pure and the allocation search
// evaluates the same links thousands of times. The key carries the exact
// SNR bits — an earlier version quantized to 0.01 dB, which let two SNRs
// within half a centi-dB share a slot and made every caller after the first
// read a Selection computed from a *different* SNR. That turned results
// order-dependent process-wide (whoever evaluated a bucket first seeded it
// for everyone), which breaks any bit-exactness contract between two code
// paths pricing the same links. Exact keying makes the memo invisible:
// cached and uncached calls return identical bits in any call order.
var bestCache sync.Map // bestKey → Selection

type bestKey struct {
	snrBits     uint64
	width       spectrum.Width
	packetBytes int
}

// Best returns the MCS/mode pair maximizing expected goodput for a link
// whose per-subcarrier SNR at width w is snr. This emulates the Ralink
// auto-rate: it "not only adjusts the rates in response to packet
// successes/failures but also picks the best mode of operation (SDM or
// STBC) based on the channel quality" (Section 3.2).
func Best(snr units.DB, w spectrum.Width, packetBytes int) Selection {
	key := bestKey{snrBits: math.Float64bits(float64(snr)), width: w, packetBytes: packetBytes}
	if v, ok := bestCache.Load(key); ok {
		return v.(Selection)
	}
	var best Selection
	for _, m := range phy.MCSTable() {
		s := Evaluate(m, snr, w, packetBytes)
		if s.GoodputMbps > best.GoodputMbps {
			best = s
		}
	}
	if best.GoodputMbps == 0 {
		// Nothing decodes: report the most robust MCS so callers see a
		// concrete (failing) selection rather than a zero value.
		best = Evaluate(phy.MCSTable()[0], snr, w, packetBytes)
	}
	bestCache.Store(key, best)
	return best
}

// OptimalFixedMCS performs the exhaustive search of Fig 6(b): for the given
// link SNR it finds, separately for 20 and 40 MHz, the fixed MCS (considering
// both SDM and STBC operation) that yields the highest goodput. The 40 MHz
// SNR is derived from the 20 MHz SNR by subtracting the bonding penalty.
func OptimalFixedMCS(snr20 units.DB, packetBytes int) (best20, best40 Selection) {
	best20 = Best(snr20, spectrum.Width20, packetBytes)
	best40 = Best(snr20.Minus(phy.BondingSNRPenalty()), spectrum.Width40, packetBytes)
	return best20, best40
}

// AutoRate is a stateful rate controller with hysteresis, used by the
// mobility experiments where SNR varies over time. It re-runs Best only when
// the SNR moves more than Hysteresis away from the SNR of the last decision,
// mimicking the sluggishness of a real probing rate adapter.
type AutoRate struct {
	Width       spectrum.Width
	PacketBytes int
	// Hysteresis is the SNR change (dB) required to trigger a new search.
	Hysteresis units.DB

	lastSNR units.DB
	current Selection
	valid   bool
}

// NewAutoRate returns an AutoRate for the given width with the default 1 dB
// hysteresis.
func NewAutoRate(w spectrum.Width, packetBytes int) *AutoRate {
	return &AutoRate{Width: w, PacketBytes: packetBytes, Hysteresis: 1}
}

// Update feeds a new SNR observation and returns the (possibly unchanged)
// current selection.
func (a *AutoRate) Update(snr units.DB) Selection {
	if !a.valid || abs(snr-a.lastSNR) >= a.Hysteresis {
		a.current = Best(snr, a.Width, a.PacketBytes)
		a.lastSNR = snr
		a.valid = true
	}
	return a.current
}

func abs(d units.DB) units.DB {
	if d < 0 {
		return -d
	}
	return d
}
