package bitset

import (
	"math/big"
	"math/rand"
	"testing"
)

// refSet is the math/big-backed reference model: a big.Int holding the same
// bits, truncated to the set's capacity after every mutating op (big.Int
// has unbounded width; the Set under test does not).
type refSet struct {
	n    *big.Int
	bits int
}

func newRef(words int) *refSet { return &refSet{n: new(big.Int), bits: words * 64} }

func (r *refSet) trunc() {
	mask := new(big.Int).Lsh(big.NewInt(1), uint(r.bits))
	mask.Sub(mask, big.NewInt(1))
	r.n.And(r.n, mask)
}

func (r *refSet) setBit(i uint)      { r.n.SetBit(r.n, int(i), 1) }
func (r *refSet) test(i uint) bool   { return r.n.Bit(int(i)) == 1 }
func (r *refSet) and(o *refSet)      { r.n.And(r.n, o.n); r.trunc() }
func (r *refSet) andNot(o *refSet)   { r.n.AndNot(r.n, o.n); r.trunc() }
func (r *refSet) or(o *refSet)       { r.n.Or(r.n, o.n); r.trunc() }
func (r *refSet) equal(o *refSet) bool {
	return r.n.Cmp(o.n) == 0
}
func (r *refSet) intersects(o *refSet) bool {
	return new(big.Int).And(r.n, o.n).Sign() != 0
}
func (r *refSet) popCount() int {
	n := 0
	for _, w := range r.n.Bits() {
		for ; w != 0; w &= w - 1 {
			n++
		}
	}
	return n
}
func (r *refSet) isZero() bool { return r.n.Sign() == 0 }

// checkAgainst asserts the Set and its reference agree on every observable.
func checkAgainst(t *testing.T, tag string, s Set, r *refSet) {
	t.Helper()
	if got, want := s.PopCount(), r.popCount(); got != want {
		t.Fatalf("%s: PopCount = %d, reference %d", tag, got, want)
	}
	if got, want := s.IsZero(), r.isZero(); got != want {
		t.Fatalf("%s: IsZero = %v, reference %v", tag, got, want)
	}
	for i := 0; i < len(s)*64; i++ {
		if got, want := s.Test(uint(i)), r.test(uint(i)); got != want {
			t.Fatalf("%s: Test(%d) = %v, reference %v", tag, i, got, want)
		}
	}
}

// applyOps drives the pair of sets (and their references) through a random
// op sequence, checking agreement after every step. Each byte of ops picks
// an operation and a bit index, so the sequence is replayable from a seed
// corpus entry.
func applyOps(t *testing.T, words int, ops []byte) {
	t.Helper()
	a, b := New(words), New(words)
	ra, rb := newRef(words), newRef(words)
	for k := 0; k+1 < len(ops); k += 2 {
		op, arg := ops[k]%8, uint(ops[k+1])%uint(words*64)
		switch op {
		case 0:
			a.SetBit(arg)
			ra.setBit(arg)
		case 1:
			b.SetBit(arg)
			rb.setBit(arg)
		case 2:
			a.And(b)
			ra.and(rb)
		case 3:
			a.AndNot(b)
			ra.andNot(rb)
		case 4:
			a.Or(b)
			ra.or(rb)
		case 5:
			a.Clear()
			ra.n.SetInt64(0)
		case 6:
			a.Copy(b)
			ra.n.Set(rb.n)
		case 7:
			if got, want := a.Intersects(b), ra.intersects(rb); got != want {
				t.Fatalf("op %d: Intersects = %v, reference %v", k, got, want)
			}
			if got, want := a.Equal(b), ra.equal(rb); got != want {
				t.Fatalf("op %d: Equal = %v, reference %v", k, got, want)
			}
		}
		checkAgainst(t, "a", a, ra)
		checkAgainst(t, "b", b, rb)
	}
}

// TestSetOpsRandomized replays seeded random op sequences at several word
// counts — the deterministic arm of the fuzz harness, always on in CI.
func TestSetOpsRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, words := range []int{1, 2, 3, 5} {
		for trial := 0; trial < 200; trial++ {
			ops := make([]byte, 64)
			rng.Read(ops)
			applyOps(t, words, ops)
		}
	}
}

// FuzzSetOps is the coverage-guided arm: `go test -fuzz=FuzzSetOps` mutates
// op sequences; plain `go test` replays the seed corpus.
func FuzzSetOps(f *testing.F) {
	f.Add(2, []byte{0, 5, 1, 5, 7, 0, 2, 9, 4, 70, 3, 70, 7, 0})
	f.Add(1, []byte{0, 63, 1, 63, 7, 1})
	f.Add(3, []byte{0, 190, 1, 64, 4, 0, 7, 2, 5, 0, 6, 1})
	f.Fuzz(func(t *testing.T, words int, ops []byte) {
		if words < 1 || words > 8 {
			return
		}
		applyOps(t, words, ops)
	})
}

func TestWords(t *testing.T) {
	cases := map[int]int{-3: 1, 0: 1, 1: 1, 63: 1, 64: 1, 65: 2, 128: 2, 129: 3}
	for nbits, want := range cases {
		if got := Words(nbits); got != want {
			t.Fatalf("Words(%d) = %d, want %d", nbits, got, want)
		}
	}
}

func TestFieldViewsAlias(t *testing.T) {
	f := NewField(3, 2)
	if f.Len() != 3 || f.Words() != 2 {
		t.Fatalf("shape = (%d, %d), want (3, 2)", f.Len(), f.Words())
	}
	f.At(1).SetBit(65)
	if !f.At(1).Test(65) {
		t.Fatal("write through view not visible")
	}
	if f.At(0).PopCount() != 0 || f.At(2).PopCount() != 0 {
		t.Fatal("view write leaked into sibling set")
	}
	g := NewField(3, 2)
	g.CopyFrom(f)
	if !g.At(1).Test(65) {
		t.Fatal("CopyFrom missed a word")
	}
	c := f.Clone()
	f.At(1).Clear()
	if !c.At(1).Test(65) {
		t.Fatal("Clone aliases the original")
	}
}
