// Package bitset provides small fixed-capacity multi-word bitsets for the
// incremental engines in internal/core. The engines map every distinct
// 20 MHz spectrum component to one bit and reduce channel-conflict tests to
// mask intersection; a single uint64 capped them at 64 components, which a
// campus-scale band exceeds. A Set is a []uint64 whose length (the word
// count) is fixed when the owning state is built, so every operation is a
// straight word loop with no bounds decisions, no allocation, and a
// single-word fast path that keeps the common small-band case as cheap as
// the raw uint64 it replaces.
//
// Operations that combine two sets require equal word counts; the engines
// guarantee this by construction (all masks of one state share one Field).
// Like the raw-word code it replaces, the package does not range-check bit
// indices against capacity — callers size the set first (see Words).
package bitset

import "math/bits"

// Set is a little-endian multi-word bitset: bit i lives in word i/64. The
// value is a slice header, so passing and storing Sets never copies words;
// two Sets may alias the same storage (Field hands out aliased views).
type Set []uint64

// Words returns the word count needed to hold nbits bits (at least 1, so a
// zero-component state still has a valid empty mask to intersect against).
func Words(nbits int) int {
	if nbits <= 0 {
		return 1
	}
	return (nbits + 63) / 64
}

// New returns an empty set with the given word count.
func New(words int) Set { return make(Set, words) }

// SetBit sets bit i.
func (s Set) SetBit(i uint) { s[i/64] |= 1 << (i % 64) }

// Test reports whether bit i is set.
func (s Set) Test(i uint) bool { return s[i/64]&(1<<(i%64)) != 0 }

// Clear zeroes every word.
func (s Set) Clear() {
	for i := range s {
		s[i] = 0
	}
}

// Copy overwrites s with o. The word counts must match.
func (s Set) Copy(o Set) { copy(s, o) }

// IsZero reports whether no bit is set.
func (s Set) IsZero() bool {
	if len(s) == 1 {
		return s[0] == 0
	}
	for _, w := range s {
		if w != 0 {
			return false
		}
	}
	return true
}

// Equal reports whether s and o hold the same bits.
func (s Set) Equal(o Set) bool {
	if len(s) == 1 {
		return s[0] == o[0]
	}
	for i, w := range s {
		if w != o[i] {
			return false
		}
	}
	return true
}

// Intersects reports whether s and o share any set bit — the channel
// conflict test, and the reason this package exists.
func (s Set) Intersects(o Set) bool {
	if len(s) == 1 {
		return s[0]&o[0] != 0
	}
	for i, w := range s {
		if w&o[i] != 0 {
			return true
		}
	}
	return false
}

// And keeps in s only the bits also set in o (s &= o).
func (s Set) And(o Set) {
	for i := range s {
		s[i] &= o[i]
	}
}

// AndNot clears in s every bit set in o (s &^= o).
func (s Set) AndNot(o Set) {
	for i := range s {
		s[i] &^= o[i]
	}
}

// Or adds to s every bit set in o (s |= o).
func (s Set) Or(o Set) {
	if len(s) == 1 {
		s[0] |= o[0]
		return
	}
	for i := range s {
		s[i] |= o[i]
	}
}

// PopCount returns the number of set bits.
func (s Set) PopCount() int {
	n := 0
	for _, w := range s {
		n += bits.OnesCount64(w)
	}
	return n
}

// Field is a dense arena of n equally-sized Sets in one backing slice —
// the per-AP (or per-channel) mask tables of an engine state. One
// allocation, cache-friendly iteration, and O(words) whole-table copy via
// CopyFrom for the worker-view resynchronization path.
type Field struct {
	words int
	data  []uint64
}

// NewField returns a Field of n all-zero sets of the given word count.
func NewField(n, words int) Field {
	return Field{words: words, data: make([]uint64, n*words)}
}

// Len returns the number of sets in the field.
func (f Field) Len() int {
	if f.words == 0 {
		return 0
	}
	return len(f.data) / f.words
}

// Words returns the per-set word count.
func (f Field) Words() int { return f.words }

// At returns the i-th set as a view aliasing the field's storage: writes
// through the view mutate the field.
func (f Field) At(i int) Set {
	lo := i * f.words
	return Set(f.data[lo : lo+f.words : lo+f.words])
}

// CopyFrom overwrites the field's contents with src's. The shapes must
// match (same word count and set count).
func (f Field) CopyFrom(src Field) { copy(f.data, src.data) }

// Clone returns a deep copy of the field.
func (f Field) Clone() Field {
	return Field{words: f.words, data: append([]uint64(nil), f.data...)}
}
