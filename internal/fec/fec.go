// Package fec implements the 802.11 binary convolutional code: the K=7
// encoder with generator polynomials 133/171 (octal), the puncturing
// patterns that derive rates 2/3, 3/4 and 5/6 from the rate-1/2 mother
// code, and a soft-decision Viterbi decoder.
//
// The analytic PHY model (internal/phy.CodedBER) predicts post-Viterbi
// error rates from a truncated union bound; this package lets the
// sample-level baseband measure the real thing, closing the loop between
// the closed-form model the allocation algorithms rely on and an actual
// decoder.
package fec

import (
	"fmt"
	"math"

	"acorn/internal/phy"
)

// Constraint length and generators of the 802.11 mother code.
const (
	ConstraintLength = 7
	numStates        = 1 << (ConstraintLength - 1) // 64
	// Generators in binary (g0 = 133 octal, g1 = 171 octal).
	gen0 = 0o133
	gen1 = 0o171
)

// TailBits is the number of zero bits appended to terminate the trellis.
const TailBits = ConstraintLength - 1

// puncture patterns: for each input period, which of the two coded bits
// (c0, c1) per information bit are transmitted. true = keep.
var punctures = map[phy.CodeRate][][2]bool{
	phy.Rate12: {{true, true}},
	phy.Rate23: {{true, true}, {true, false}},
	phy.Rate34: {{true, true}, {true, false}, {false, true}},
	phy.Rate56: {{true, true}, {true, false}, {false, true}, {true, false}, {false, true}},
}

// parity returns the XOR of the bits of x.
func parity(x int) byte {
	x ^= x >> 16
	x ^= x >> 8
	x ^= x >> 4
	x ^= x >> 2
	x ^= x >> 1
	return byte(x & 1)
}

// Encode convolutionally encodes the information bits (one bit per byte,
// values 0/1), terminates the trellis with TailBits zeros, and punctures to
// the requested rate. The returned slice holds the transmitted coded bits.
func Encode(bits []byte, rate phy.CodeRate) []byte {
	pattern, ok := punctures[rate]
	if !ok {
		panic(fmt.Sprintf("fec: unsupported code rate %v", rate))
	}
	state := 0
	out := make([]byte, 0, (len(bits)+TailBits)*2)
	step := 0
	emit := func(b byte) {
		in := (int(b)&1)<<6 | state // input bit in the MSB position of the 7-bit window
		c0 := parity(in & gen0)
		c1 := parity(in & gen1)
		keep := pattern[step%len(pattern)]
		if keep[0] {
			out = append(out, c0)
		}
		if keep[1] {
			out = append(out, c1)
		}
		step++
		state = in >> 1
	}
	for _, b := range bits {
		emit(b & 1)
	}
	for i := 0; i < TailBits; i++ {
		emit(0)
	}
	return out
}

// CodedBits returns the number of transmitted bits Encode produces for n
// information bits at the given rate.
func CodedBits(n int, rate phy.CodeRate) int {
	pattern := punctures[rate]
	total := 0
	for step := 0; step < n+TailBits; step++ {
		keep := pattern[step%len(pattern)]
		if keep[0] {
			total++
		}
		if keep[1] {
			total++
		}
	}
	return total
}

// Decode runs soft-decision Viterbi over the received soft bits and returns
// the decoded information bits (length n). Soft bits use the convention
// value > 0 ⇒ bit 1, with |value| the confidence; punctured positions are
// reinserted with zero confidence. The trellis is terminated (the encoder's
// tail), so decoding traces back from state 0.
func Decode(soft []float64, n int, rate phy.CodeRate) []byte {
	pattern, ok := punctures[rate]
	if !ok {
		panic(fmt.Sprintf("fec: unsupported code rate %v", rate))
	}
	steps := n + TailBits
	// Depuncture into per-step (c0, c1) soft values.
	depunct := make([][2]float64, steps)
	idx := 0
	for step := 0; step < steps; step++ {
		keep := pattern[step%len(pattern)]
		if keep[0] && idx < len(soft) {
			depunct[step][0] = soft[idx]
			idx++
		}
		if keep[1] && idx < len(soft) {
			depunct[step][1] = soft[idx]
			idx++
		}
	}

	// Precompute per-state outputs for input 0/1.
	type branch struct {
		next   int
		c0, c1 float64 // expected soft signs (+1 for bit 1, −1 for bit 0)
	}
	var branches [numStates][2]branch
	for s := 0; s < numStates; s++ {
		for in := 0; in <= 1; in++ {
			win := in<<6 | s
			b := branch{next: win >> 1}
			if parity(win&gen0) == 1 {
				b.c0 = 1
			} else {
				b.c0 = -1
			}
			if parity(win&gen1) == 1 {
				b.c1 = 1
			} else {
				b.c1 = -1
			}
			branches[s][in] = b
		}
	}

	const neg = math.MaxFloat64
	metric := make([]float64, numStates)
	next := make([]float64, numStates)
	for s := 1; s < numStates; s++ {
		metric[s] = -neg
	}
	// survivors[step*numStates+state] = (prevState << 1) | inputBit,
	// flat to keep the decoder at one allocation for the whole trellis.
	survivors := make([]int32, steps*numStates)
	for step := 0; step < steps; step++ {
		for s := range next {
			next[s] = -neg
		}
		surv := survivors[step*numStates : (step+1)*numStates]
		for i := range surv {
			surv[i] = -1
		}
		c0, c1 := depunct[step][0], depunct[step][1]
		for s := 0; s < numStates; s++ {
			if metric[s] == -neg {
				continue
			}
			for in := 0; in <= 1; in++ {
				b := branches[s][in]
				m := metric[s] + b.c0*c0 + b.c1*c1
				if m > next[b.next] {
					next[b.next] = m
					surv[b.next] = int32(s<<1 | in)
				}
			}
		}
		copy(metric, next)
	}

	// Trace back from the terminated state 0.
	bits := make([]byte, n)
	state := 0
	for step := steps - 1; step >= 0; step-- {
		sv := survivors[step*numStates+state]
		if sv < 0 {
			break // unreachable state (shouldn't happen on valid input)
		}
		in := byte(sv & 1)
		if step < n {
			bits[step] = in
		}
		state = int(sv >> 1)
	}
	return bits
}

// HardToSoft converts hard bits (0/1) into unit-confidence soft values for
// Decode.
func HardToSoft(bits []byte) []float64 {
	out := make([]float64, len(bits))
	for i, b := range bits {
		if b&1 == 1 {
			out[i] = 1
		} else {
			out[i] = -1
		}
	}
	return out
}
