package fec

import (
	"math/rand"
	"testing"

	"acorn/internal/phy"
)

func BenchmarkEncode1500B(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	bits := randBits(rng, 1500*8)
	b.ReportAllocs()
	b.SetBytes(1500)
	for i := 0; i < b.N; i++ {
		Encode(bits, phy.Rate34)
	}
}

func BenchmarkViterbiDecode1500B(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	bits := randBits(rng, 1500*8)
	soft := HardToSoft(Encode(bits, phy.Rate34))
	b.ReportAllocs()
	b.SetBytes(1500)
	for i := 0; i < b.N; i++ {
		Decode(soft, len(bits), phy.Rate34)
	}
}
