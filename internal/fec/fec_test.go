package fec

import (
	"math/rand"
	"testing"
	"testing/quick"

	"acorn/internal/phy"
)

var allRates = []phy.CodeRate{phy.Rate12, phy.Rate23, phy.Rate34, phy.Rate56}

func randBits(rng *rand.Rand, n int) []byte {
	bits := make([]byte, n)
	for i := range bits {
		bits[i] = byte(rng.Intn(2))
	}
	return bits
}

func TestEncodeLengths(t *testing.T) {
	// Coded length must match CodedBits and approximate n/rate.
	for _, rate := range allRates {
		for _, n := range []int{1, 7, 100, 999} {
			coded := Encode(make([]byte, n), rate)
			if len(coded) != CodedBits(n, rate) {
				t.Errorf("rate %v n=%d: len %d vs CodedBits %d", rate, n, len(coded), CodedBits(n, rate))
			}
			approx := float64(n+TailBits) / rate.Value()
			if f := float64(len(coded)); f < approx-2 || f > approx+2 {
				t.Errorf("rate %v n=%d: coded len %v, want ≈%v", rate, n, f, approx)
			}
		}
	}
}

func TestEncodeKnownVector(t *testing.T) {
	// All-zero input yields all-zero output for a linear code.
	coded := Encode(make([]byte, 16), phy.Rate12)
	for i, b := range coded {
		if b != 0 {
			t.Fatalf("all-zero input produced 1 at %d", i)
		}
	}
	// A single 1 produces the generator impulse response: the first two
	// coded bits are (parity(64&g0), parity(64&g1)) = (1, 1).
	coded = Encode([]byte{1}, phy.Rate12)
	if coded[0] != 1 || coded[1] != 1 {
		t.Errorf("impulse first branch = %d,%d want 1,1", coded[0], coded[1])
	}
}

func TestRoundTripNoiseless(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, rate := range allRates {
		for _, n := range []int{1, 17, 240, 1000} {
			bits := randBits(rng, n)
			coded := Encode(bits, rate)
			decoded := Decode(HardToSoft(coded), n, rate)
			for i := range bits {
				if decoded[i] != bits[i] {
					t.Fatalf("rate %v n=%d: bit %d wrong", rate, n, i)
				}
			}
		}
	}
}

func TestRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	f := func(seed int64, rateIdx uint8) bool {
		rate := allRates[int(rateIdx)%len(allRates)]
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(300)
		bits := randBits(r, n)
		decoded := Decode(HardToSoft(Encode(bits, rate)), n, rate)
		for i := range bits {
			if decoded[i] != bits[i] {
				return false
			}
		}
		return true
	}
	_ = rng
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestCorrectsRandomErrors(t *testing.T) {
	// Rate 1/2, d_free = 10: a few percent of flipped coded bits spread
	// over a long block decode cleanly.
	rng := rand.New(rand.NewSource(3))
	bits := randBits(rng, 600)
	coded := Encode(bits, phy.Rate12)
	flips := len(coded) / 40 // 2.5% bit errors
	for i := 0; i < flips; i++ {
		p := rng.Intn(len(coded))
		coded[p] ^= 1
	}
	decoded := Decode(HardToSoft(coded), len(bits), phy.Rate12)
	errors := 0
	for i := range bits {
		if decoded[i] != bits[i] {
			errors++
		}
	}
	if errors != 0 {
		t.Errorf("2.5%% channel errors left %d info errors after Viterbi", errors)
	}
}

func TestPuncturedCorrectsFewerErrors(t *testing.T) {
	// Rate 5/6 tolerates fewer channel errors than 1/2: at an error rate
	// the mother code shrugs off, the punctured code shows residual
	// errors sooner. Verify the ordering statistically.
	countErrors := func(rate phy.CodeRate, flipFrac float64, seed int64) int {
		rng := rand.New(rand.NewSource(seed))
		bits := randBits(rng, 800)
		coded := Encode(bits, rate)
		for i := range coded {
			if rng.Float64() < flipFrac {
				coded[i] ^= 1
			}
		}
		decoded := Decode(HardToSoft(coded), len(bits), rate)
		errs := 0
		for i := range bits {
			if decoded[i] != bits[i] {
				errs++
			}
		}
		return errs
	}
	var total12, total56 int
	for seed := int64(0); seed < 8; seed++ {
		total12 += countErrors(phy.Rate12, 0.04, seed)
		total56 += countErrors(phy.Rate56, 0.04, seed)
	}
	if total12 >= total56 {
		t.Errorf("rate 1/2 residual errors (%d) should be below rate 5/6 (%d)", total12, total56)
	}
}

func TestSoftBeatsErasures(t *testing.T) {
	// Zero-confidence (erased) positions are worse than confident ones
	// but the decoder must still recover when enough survive.
	rng := rand.New(rand.NewSource(5))
	bits := randBits(rng, 300)
	coded := Encode(bits, phy.Rate12)
	soft := HardToSoft(coded)
	// Erase 10% of positions.
	for i := 0; i < len(soft)/10; i++ {
		soft[rng.Intn(len(soft))] = 0
	}
	decoded := Decode(soft, len(bits), phy.Rate12)
	errs := 0
	for i := range bits {
		if decoded[i] != bits[i] {
			errs++
		}
	}
	if errs != 0 {
		t.Errorf("10%% erasures left %d errors", errs)
	}
}

func TestDecodeShortInput(t *testing.T) {
	// Truncated soft input (missing tail) must not panic; the prefix
	// should still mostly decode.
	bits := []byte{1, 0, 1, 1, 0, 0, 1}
	coded := Encode(bits, phy.Rate12)
	soft := HardToSoft(coded[:len(coded)-4])
	decoded := Decode(soft, len(bits), phy.Rate12)
	if len(decoded) != len(bits) {
		t.Fatalf("decoded length %d, want %d", len(decoded), len(bits))
	}
}

func TestUnsupportedRatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Encode with invalid rate should panic")
		}
	}()
	Encode([]byte{1}, phy.CodeRate(99))
}
