package experiments

// Extension experiments beyond the paper's figures, exercising substrate
// capabilities the paper invokes qualitatively:
//
//   - narrowband-interference resilience (Section 2 credits OFDM with
//     coping well with narrowband interference; we measure it, and show
//     the wider channel dilutes a fixed-band jammer);
//   - empirical validation of the analytic DCF model via the
//     discrete-event simulator (internal/dcfsim).

import (
	"fmt"
	"math"

	"acorn/internal/baseband"
	"acorn/internal/core"
	"acorn/internal/dcfsim"
	"acorn/internal/phy"
	"acorn/internal/simrun"
	"acorn/internal/spectrum"
	"acorn/internal/units"
)

// ------------------------------------------------------ jammer sweep --

// JammerPoint is one row of the narrowband-interference study.
type JammerPoint struct {
	JammedTones  int
	BER20, BER40 float64
}

// JammerResult is the sweep outcome.
type JammerResult struct {
	Points []JammerPoint
}

// RunJammerSweep measures uncoded QPSK BER against the number of jammed
// subcarriers, for both widths at the same transmit power. Damage grows
// with the jammed fraction; a fixed set of jammed tones is a smaller
// fraction of the 40 MHz channel's 108 data tones, so the wider channel is
// relatively more resilient to a fixed narrowband interferer.
func RunJammerSweep(opts PHYOptions) JammerResult {
	opts = opts.orDefault()
	tx := units.DBm(15)
	const pathLoss = 40.0
	rxPowerMW := float64(tx.MilliWatts()) * math.Pow(10, -pathLoss/10)
	var r JammerResult
	toneCounts := []int{0, 2, 4, 8, 16}
	widths := []spectrum.Width{spectrum.Width20, spectrum.Width40}
	var points []simrun.Point
	for _, tones := range toneCounts {
		for _, w := range widths {
			cfg := baseband.NewChainConfig(w)
			var jam *baseband.Jammer
			if tones > 0 {
				jam = &baseband.Jammer{
					Bins:    append([]int(nil), cfg.DataCarriers[:tones]...),
					PowerMW: rxPowerMW * float64(tones) / float64(len(cfg.DataCarriers)),
				}
			}
			points = append(points, simrun.Point{
				Seed:        opts.Seed,
				Packets:     max(opts.Packets/10, 4),
				PacketBytes: opts.PacketBytes,
				Make: func(seed int64) *baseband.Link {
					ch := &baseband.Channel{PathLoss: units.DB(pathLoss), Jam: jam, NoiseFloorOverride: 1e-12}
					return baseband.NewLink(cfg, phy.QPSK, baseband.ModeSISO, tx, ch, seed)
				},
			})
		}
	}
	meas := simrun.Run(points, opts.engineOptions())
	for i, tones := range toneCounts {
		r.Points = append(r.Points, JammerPoint{
			JammedTones: tones,
			BER20:       meas[i*len(widths)].BER(),
			BER40:       meas[i*len(widths)+1].BER(),
		})
	}
	return r
}

// Format renders the sweep.
func (r JammerResult) Format() string {
	rows := make([][]string, 0, len(r.Points))
	for _, p := range r.Points {
		rows = append(rows, []string{
			fmt.Sprintf("%d", p.JammedTones),
			fmt.Sprintf("%.4g", p.BER20),
			fmt.Sprintf("%.4g", p.BER40),
		})
	}
	return FormatTable("Extension: narrowband jammer — uncoded QPSK BER vs jammed tones",
		[]string{"jammed tones", "BER 20MHz", "BER 40MHz"}, rows)
}

// ----------------------------------------------------- coded validation --

// CodedPoint is one operating point of the coded-PHY validation.
type CodedPoint struct {
	SNR                   float64
	MeasuredPER, ModelPER float64
	MeasuredBER, ModelBER float64
}

// CodedValidationResult compares the Viterbi-decoded baseband against the
// analytic union-bound model the allocation algorithms rely on.
type CodedValidationResult struct {
	ModCod phy.ModCod
	Points []CodedPoint
	// WaterfallOffsetDB is the SNR distance between the measured and
	// modeled PER=0.5 crossings (positive when the model is optimistic).
	WaterfallOffsetDB float64
}

// RunCodedValidation sweeps SNR through the QPSK 3/4 waterfall, measuring
// PER with the real convolutional encoder + soft Viterbi decoder and
// comparing against phy.CodedPER. The union bound is exact only
// asymptotically, so the comparison targets the waterfall position (within
// a couple of dB) and the monotone shape rather than point equality.
func RunCodedValidation(opts PHYOptions) CodedValidationResult {
	opts = opts.orDefault()
	mc := phy.ModCod{Modulation: phy.QPSK, Rate: phy.Rate34}
	r := CodedValidationResult{ModCod: mc}
	rate := mc.Rate
	tx := units.DBm(15)
	packetBytes := 250
	var snrs []float64
	var points []simrun.Point
	for snr := 0.0; snr <= 8; snr += 1.0 {
		snrs = append(snrs, snr)
		// STBC combining adds ≈3 dB over the analytic single-path SNR.
		pl := pathLossForSNR(tx, snr-3, spectrum.Width20)
		points = append(points, simrun.Point{
			Seed:        opts.Seed + int64(snr*13),
			Packets:     max(opts.Packets/3, 10),
			PacketBytes: packetBytes,
			Make: func(seed int64) *baseband.Link {
				ch := &baseband.Channel{PathLoss: pl}
				l := baseband.NewLink(baseband.NewChainConfig(spectrum.Width20), mc.Modulation, baseband.ModeSTBC, tx, ch, seed)
				l.Coding = &rate
				return l
			},
		})
	}
	meas := simrun.Run(points, opts.engineOptions())
	for i, snr := range snrs {
		m := meas[i]
		r.Points = append(r.Points, CodedPoint{
			SNR:         snr,
			MeasuredPER: m.PER(),
			ModelPER:    phy.CodedPER(mc, units.DB(snr), packetBytes),
			MeasuredBER: m.BER(),
			ModelBER:    phy.CodedBER(mc.Modulation, mc.Rate, units.DB(snr)),
		})
	}
	r.WaterfallOffsetDB = perHalfCrossing(r.Points, func(p CodedPoint) float64 { return p.MeasuredPER }) -
		perHalfCrossing(r.Points, func(p CodedPoint) float64 { return p.ModelPER })
	return r
}

// perHalfCrossing returns the first swept SNR at which the PER drops below
// one half.
func perHalfCrossing(points []CodedPoint, per func(CodedPoint) float64) float64 {
	for _, p := range points {
		if per(p) < 0.5 {
			return p.SNR
		}
	}
	if len(points) == 0 {
		return 0
	}
	return points[len(points)-1].SNR
}

// Format renders the validation sweep.
func (r CodedValidationResult) Format() string {
	rows := make([][]string, 0, len(r.Points))
	for _, p := range r.Points {
		rows = append(rows, []string{
			fmt.Sprintf("%.1f", p.SNR),
			fmt.Sprintf("%.3f", p.MeasuredPER),
			fmt.Sprintf("%.3f", p.ModelPER),
			fmt.Sprintf("%.3g", p.MeasuredBER),
			fmt.Sprintf("%.3g", p.ModelBER),
		})
	}
	s := FormatTable(fmt.Sprintf("Extension: Viterbi-measured vs analytic coded PER (%v)", r.ModCod),
		[]string{"SNR(dB)", "PER meas", "PER model", "BER meas", "BER model"}, rows)
	s += fmt.Sprintf("waterfall offset (measured − model): %.1f dB\n", r.WaterfallOffsetDB)
	return s
}

// ------------------------------------------------- empirical validation --

// ValidationRow compares the analytic evaluator against the discrete-event
// DCF simulation for one AP.
type ValidationRow struct {
	APID      string
	Analytic  float64
	Empirical float64
}

// ValidationResult is the model-validation study.
type ValidationResult struct {
	Rows []ValidationRow
	// MaxRelativeError across cells with nonzero analytic throughput.
	MaxRelativeError float64
}

// RunModelValidation configures the Fig 10 Topology 2 network with ACORN
// and replays the result through the discrete-event DCF simulator,
// reporting per-AP analytic vs empirical throughput.
func RunModelValidation(seed int64) ValidationResult {
	n, clients := Topology2()
	ctrl, err := core.NewController(n, seed)
	if err != nil {
		panic(err)
	}
	rep := ctrl.AutoConfigure(clients)
	cfg := ctrl.Config()

	sim := dcfsim.FromConfig(n, cfg, seed)
	res := sim.Run(30)
	var out ValidationResult
	for _, ap := range n.APs {
		analytic := rep.Cell(ap.ID).ThroughputUDP
		empirical := res.StationThroughputMbps(ap.ID)
		out.Rows = append(out.Rows, ValidationRow{APID: ap.ID, Analytic: analytic, Empirical: empirical})
		if analytic > 1 {
			if rel := math.Abs(empirical-analytic) / analytic; rel > out.MaxRelativeError {
				out.MaxRelativeError = rel
			}
		}
	}
	return out
}

// Format renders the validation table.
func (r ValidationResult) Format() string {
	rows := make([][]string, 0, len(r.Rows))
	for _, row := range r.Rows {
		rows = append(rows, []string{
			row.APID,
			fmt.Sprintf("%.2f", row.Analytic),
			fmt.Sprintf("%.2f", row.Empirical),
		})
	}
	s := FormatTable("Extension: analytic DCF model vs discrete-event simulation (ACORN config)",
		[]string{"AP", "analytic (Mb/s)", "empirical (Mb/s)"}, rows)
	s += fmt.Sprintf("max relative error: %.1f%%\n", 100*r.MaxRelativeError)
	return s
}

// ------------------------------------------------------- CSI estimation --

// CSIPoint compares genie and trained channel knowledge at one SNR.
type CSIPoint struct {
	SNR                  float64
	GenieBER, TrainedBER float64
}

// CSIResult is the channel-estimation ablation.
type CSIResult struct {
	Points []CSIPoint
}

// RunCSIAblation measures what real (LTF-trained least-squares) channel
// estimation costs versus genie channel knowledge, over a flat fading
// channel across the QPSK waterfall. The trained estimate carries the
// noise of a single full-band observation, costing a small, roughly
// constant SNR penalty.
func RunCSIAblation(opts PHYOptions) CSIResult {
	opts = opts.orDefault()
	tx := units.DBm(15)
	var r CSIResult
	snrs := []float64{2, 4, 6, 8}
	modes := []baseband.CSIMode{baseband.CSIGenie, baseband.CSIPilot}
	var points []simrun.Point
	for _, snr := range snrs {
		pl := pathLossForSNR(tx, snr-3, spectrum.Width20)
		for _, csi := range modes {
			points = append(points, simrun.Point{
				Seed:        opts.Seed + int64(snr*7),
				Packets:     max(opts.Packets/3, 10),
				PacketBytes: opts.PacketBytes,
				Make: func(seed int64) *baseband.Link {
					ch := &baseband.Channel{PathLoss: pl, Fading: baseband.FadingFlat}
					l := baseband.NewLink(baseband.NewChainConfig(spectrum.Width20), phy.QPSK, baseband.ModeSTBC, tx, ch, seed)
					l.CSI = csi
					return l
				},
			})
		}
	}
	meas := simrun.Run(points, opts.engineOptions())
	for i, snr := range snrs {
		r.Points = append(r.Points, CSIPoint{
			SNR:        snr,
			GenieBER:   meas[i*len(modes)].BER(),
			TrainedBER: meas[i*len(modes)+1].BER(),
		})
	}
	return r
}

// Format renders the ablation.
func (r CSIResult) Format() string {
	rows := make([][]string, 0, len(r.Points))
	for _, p := range r.Points {
		rows = append(rows, []string{
			fmt.Sprintf("%.1f", p.SNR),
			fmt.Sprintf("%.4g", p.GenieBER),
			fmt.Sprintf("%.4g", p.TrainedBER),
		})
	}
	return FormatTable("Extension: genie vs LTF-trained channel estimation (QPSK, flat fading)",
		[]string{"SNR(dB)", "BER genie CSI", "BER trained CSI"}, rows)
}
