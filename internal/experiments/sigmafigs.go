package experiments

import (
	"fmt"

	"acorn/internal/phy"
	"acorn/internal/spectrum"
	"acorn/internal/units"
)

// ---------------------------------------------------------------- Fig 5 --

// Fig5Result holds the σ-value sweeps of Fig 5: for each of the four
// representative links and each modcod, σ as a function of the driver Tx
// power scale [0:100].
type Fig5Result struct {
	// TxScale is the driver power scale 0–100 (mapped linearly onto
	// −10…+23 dBm as commodity drivers do).
	TxScale []float64
	// Sigma[modcod][link] is the σ series per link.
	Sigma map[string]map[string][]float64
	// Links records the link path losses used.
	Links map[string]units.DB
}

// TxScaleToDBm maps the driver's 0–100 power scale onto dBm.
func TxScaleToDBm(scale float64) units.DBm {
	return units.DBm(-10 + scale/100*33)
}

// RunFig5 regenerates Fig 5: coded σ-values versus transmit power for four
// links and the four modcods. For every link there is a power window where
// σ ≥ 2 (CB hurts); below it both widths fail (σ ≈ 1) and above it both
// succeed (σ ≈ 1).
func RunFig5() Fig5Result {
	links := FourLinks()
	r := Fig5Result{
		Sigma: make(map[string]map[string][]float64),
		Links: links,
	}
	for scale := 0.0; scale <= 100; scale += 2 {
		r.TxScale = append(r.TxScale, scale)
	}
	for _, mc := range phy.Fig5ModCods {
		perLink := make(map[string][]float64)
		for name, pl := range links {
			series := make([]float64, 0, len(r.TxScale))
			for _, scale := range r.TxScale {
				tx := TxScaleToDBm(scale)
				snr20 := phy.RxSubcarrierSNR(tx, pl, spectrum.Width20)
				series = append(series, phy.SigmaAt(mc, snr20, phy.DefaultPacketSizeBytes))
			}
			perLink[name] = series
		}
		r.Sigma[mc.String()] = perLink
	}
	return r
}

// Format renders one panel per modcod.
func (r Fig5Result) Format() string {
	var out string
	for _, mc := range phy.Fig5ModCods {
		perLink := r.Sigma[mc.String()]
		var series []Series
		for _, name := range []string{"LinkA", "LinkB", "LinkC", "LinkD"} {
			series = append(series, Series{Name: name + "-σ", X: r.TxScale, Y: perLink[name]})
		}
		out += FormatSeries(fmt.Sprintf("Fig 5: σ vs Tx scale — %s", mc), "Tx[0:100]", series)
	}
	return out
}

// SigmaWindow returns, for one link and modcod, the Tx-scale interval where
// σ ≥ 2, or ok=false if CB never loses on this link at any power.
func (r Fig5Result) SigmaWindow(modcod, link string) (lo, hi float64, ok bool) {
	series := r.Sigma[modcod][link]
	lo, hi = -1, -1
	for i, s := range series {
		if s >= 2 {
			if lo < 0 {
				lo = r.TxScale[i]
			}
			hi = r.TxScale[i]
		}
	}
	return lo, hi, lo >= 0
}

// -------------------------------------------------------------- Table 1 --

// Table1Row is one row of the experimental transition table: the SNR at the
// last sampled point where σ ≥ 2 and the first above it where σ < 2.
type Table1Row struct {
	ModCod phy.ModCod
	// SNRSigmaGE2 is the highest per-subcarrier SNR (dB) with σ ≥ 2.
	SNRSigmaGE2 float64
	// SNRSigmaLT2 is the lowest SNR above the window with σ < 2.
	SNRSigmaLT2 float64
}

// Table1Result is the reproduced Table 1.
type Table1Result struct {
	Rows []Table1Row
}

// RunTable1 regenerates Table 1: for each modcod, scan the link SNR and
// find where σ transitions back below 2. The paper's absolute γ values are
// testbed-specific; the reproduced shape is (i) a 2–3 dB window and (ii)
// thresholds that rise as the modulation becomes more aggressive.
func RunTable1() Table1Result {
	var res Table1Result
	for _, mc := range phy.Fig5ModCods {
		row := Table1Row{ModCod: mc, SNRSigmaGE2: -1000, SNRSigmaLT2: -1000}
		last2 := -1000.0
		for snr := -10.0; snr <= 35; snr += 0.1 {
			s := phy.SigmaAt(mc, units.DB(snr), phy.DefaultPacketSizeBytes)
			if s >= 2 {
				last2 = snr
			}
		}
		if last2 > -1000 {
			row.SNRSigmaGE2 = last2
			row.SNRSigmaLT2 = last2 + 0.1
			// Refine: first SNR beyond the window where σ stays < 2.
			for snr := last2 + 0.1; snr <= 36; snr += 0.1 {
				if phy.SigmaAt(mc, units.DB(snr), phy.DefaultPacketSizeBytes) < 2 {
					row.SNRSigmaLT2 = snr
					break
				}
			}
		}
		res.Rows = append(res.Rows, row)
	}
	return res
}

// Format renders the transition table.
func (r Table1Result) Format() string {
	rows := make([][]string, 0, len(r.Rows))
	for _, row := range r.Rows {
		rows = append(rows, []string{
			row.ModCod.String(),
			fmt.Sprintf("%.1f dB", row.SNRSigmaGE2),
			fmt.Sprintf("%.1f dB", row.SNRSigmaLT2),
		})
	}
	return FormatTable("Table 1: σ transition SNRs (σ≥2 boundary, first σ<2)",
		[]string{"modcod", "σ≥2 up to", "σ<2 from"}, rows)
}
