package experiments

import (
	"fmt"

	"acorn/internal/rf"
	"acorn/internal/stats"
	"acorn/internal/units"
	"acorn/internal/wlan"
)

// The constructed topologies of Section 5.2. Wall/obstruction losses stand
// in for the indoor/outdoor link-quality diversity of the paper's testbed
// ("the testbed contains both indoor and outdoor links").

// calibrate pins a client's link to its home AP at the target 20 MHz
// per-subcarrier SNR by setting an obstruction loss, applied uniformly
// toward every AP (the walls surround the client, so links to all APs pay
// it). Links to other APs only get worse, preserving topology intent.
func calibrate(n *wlan.Network, c *wlan.Client, homeAP string, targetSNR float64) {
	ap := n.AP(homeAP)
	c.ExtraLoss = nil
	base := float64(n.ClientSNR20(ap, c))
	wall := base - targetSNR
	if wall <= 0 {
		return
	}
	c.ExtraLoss = make(map[string]units.DB, len(n.APs))
	for _, a := range n.APs {
		c.ExtraLoss[a.ID] = units.DB(wall)
	}
}

// Topology1 is Fig 10(a): a sparse two-AP WLAN where AP1 serves clients
// behind heavy obstructions (≈1–2 dB links, where a 20 MHz channel still
// works but bonding collapses) and AP2 serves nearby good clients. The two
// cells are far enough apart that neither contends with — nor is even
// audible to — the other's clients.
func Topology1() (*wlan.Network, []*wlan.Client) {
	ap1 := &wlan.AP{ID: "AP1", Pos: rf.Point{X: 0, Y: 0}, TxPower: 18}
	ap2 := &wlan.AP{ID: "AP2", Pos: rf.Point{X: 650, Y: 0}, TxPower: 18}
	clients := []*wlan.Client{
		{ID: "p1", Pos: rf.Point{X: 30, Y: 4}},
		{ID: "p2", Pos: rf.Point{X: 28, Y: -5}},
		{ID: "g1", Pos: rf.Point{X: 646, Y: 3}},
		{ID: "g2", Pos: rf.Point{X: 653, Y: -2}},
	}
	n := wlan.NewNetwork([]*wlan.AP{ap1, ap2}, clients)
	calibrate(n, clients[0], "AP1", -2.2)
	calibrate(n, clients[1], "AP1", -1.9)
	return n, clients
}

// Topology2 is Fig 10(b): five well-separated APs with a client population
// mixing good, medium and very poor links:
//
//   - AP1's area holds one good client and two medium ones; AP3 nearby
//     holds one good client, so the AP1/AP3 association split is the
//     interesting decision (the paper's 1.8× AP3 gain);
//   - AP2's area holds good clients;
//   - AP4's area holds two clients behind heavy walls (≈1 dB links,
//     the paper's 6× AP);
//   - AP5's area holds two poor-but-alive clients (≈2 dB, the 1.5× AP).
func Topology2() (*wlan.Network, []*wlan.Client) {
	mk := func(id string, x, y float64) *wlan.AP {
		return &wlan.AP{ID: id, Pos: rf.Point{X: x, Y: y}, TxPower: 18}
	}
	ap1 := mk("AP1", 0, 0)
	ap2 := mk("AP2", 500, 0)
	ap3 := mk("AP3", 60, 0)
	ap4 := mk("AP4", 0, 500)
	ap5 := mk("AP5", 500, 500)
	clients := []*wlan.Client{
		// AP1/AP3 neighborhood: a good client near each AP plus two
		// medium clients between them.
		{ID: "a", Pos: rf.Point{X: 5, Y: 4}},
		{ID: "b1", Pos: rf.Point{X: 20, Y: -6}},
		{ID: "b2", Pos: rf.Point{X: 25, Y: 8}},
		{ID: "c", Pos: rf.Point{X: 55, Y: 5}},
		// AP2: two good clients.
		{ID: "d", Pos: rf.Point{X: 496, Y: 4}},
		{ID: "e", Pos: rf.Point{X: 505, Y: -3}},
		// AP4: two very poor clients (heavy obstructions).
		{ID: "f", Pos: rf.Point{X: 25, Y: 520}},
		{ID: "g", Pos: rf.Point{X: 22, Y: 478}},
		// AP5: two poor-but-alive clients.
		{ID: "h", Pos: rf.Point{X: 523, Y: 516}},
		{ID: "i", Pos: rf.Point{X: 478, Y: 487}},
	}
	n := wlan.NewNetwork([]*wlan.AP{ap1, ap2, ap3, ap4, ap5}, clients)
	calibrate(n, n.Client("b1"), "AP1", 8)
	calibrate(n, n.Client("b2"), "AP1", 8.5)
	calibrate(n, n.Client("f"), "AP4", -2.3)
	calibrate(n, n.Client("g"), "AP4", -2.0)
	calibrate(n, n.Client("h"), "AP5", -1.2)
	calibrate(n, n.Client("i"), "AP5", -0.9)
	return n, clients
}

// DenseTriangle is Fig 11: three mutually contending APs with only four
// 20 MHz channels available. AP1 serves one good client; AP2 and AP3 serve
// poor clients. Only one AP can bond without overlap.
func DenseTriangle() (*wlan.Network, []*wlan.Client) {
	mk := func(id string, x, y float64) *wlan.AP {
		return &wlan.AP{ID: id, Pos: rf.Point{X: x, Y: y}, TxPower: 18}
	}
	// AP3 is farther from AP1 than from AP2, so a greedy least-
	// interference scan parks AP3's bonded channel on top of AP1's — the
	// aggressive allocation hurting exactly the AP that profits from
	// bonding, as in the paper's scenario.
	ap1 := mk("AP1", 0, 0)
	ap2 := mk("AP2", 18, 0)
	ap3 := mk("AP3", 30, 18)
	clients := []*wlan.Client{
		{ID: "good", Pos: rf.Point{X: 3, Y: 2}},
		{ID: "poorB", Pos: rf.Point{X: 20, Y: 3}},
		{ID: "poorC", Pos: rf.Point{X: 32, Y: 21}},
	}
	n := wlan.NewNetwork([]*wlan.AP{ap1, ap2, ap3}, clients)
	n.Band = n.Band.Subset(4)
	calibrate(n, n.Client("poorB"), "AP2", -1.6)
	calibrate(n, n.Client("poorC"), "AP3", -1.3)
	return n, clients
}

// ContendingTriple builds one of the nine 3-AP sets of the Fig 14
// approximation-ratio experiment: three mutually contending APs (Δ = 2),
// each serving two clients whose qualities vary per set. The seed selects
// the set.
func ContendingTriple(seed int64) (*wlan.Network, []*wlan.Client) {
	rng := stats.NewRand(seed)
	mk := func(id string, x, y float64) *wlan.AP {
		return &wlan.AP{ID: id, Pos: rf.Point{X: x, Y: y}, TxPower: 18}
	}
	aps := []*wlan.AP{mk("AP1", 0, 0), mk("AP2", 30, 0), mk("AP3", 15, 25)}
	var clients []*wlan.Client
	for i, ap := range aps {
		for j := 0; j < 2; j++ {
			// Obstruction spanning clean (0 dB) to near-dead (38 dB),
			// giving per-set mixes of good and poor links — including
			// sets where some AP is better off at 20 MHz, the case the
			// paper highlights for the 4-channel runs.
			wall := rng.Float64() * 38
			id := fmt.Sprintf("c%d%d", i+1, j)
			clients = append(clients, &wlan.Client{
				ID:  id,
				Pos: rf.Point{X: ap.Pos.X + rng.Float64()*8 - 4, Y: ap.Pos.Y + rng.Float64()*8 - 4},
				ExtraLoss: map[string]units.DB{
					"AP1": units.DB(wall), "AP2": units.DB(wall), "AP3": units.DB(wall),
				},
			})
		}
	}
	return wlan.NewNetwork(aps, clients), clients
}

// RandomEnterprise builds the "randomly picked topology" of the Table 3
// experiment: nAPs APs on a grid with clients scattered around them at
// qualities spanning the full range.
func RandomEnterprise(seed int64, nAPs, nClients int) (*wlan.Network, []*wlan.Client) {
	rng := stats.NewRand(seed)
	var aps []*wlan.AP
	cols := 3
	for i := 0; i < nAPs; i++ {
		aps = append(aps, &wlan.AP{
			ID:      fmt.Sprintf("AP%d", i+1),
			Pos:     rf.Point{X: float64(i%cols) * 120, Y: float64(i/cols) * 120},
			TxPower: 18,
		})
	}
	var clients []*wlan.Client
	for i := 0; i < nClients; i++ {
		home := aps[rng.Intn(len(aps))]
		wall := 0.0
		if rng.Float64() < 0.4 {
			wall = 15 + rng.Float64()*16 // a poor-link minority
		}
		extra := make(map[string]units.DB, len(aps))
		for _, ap := range aps {
			extra[ap.ID] = units.DB(wall)
		}
		clients = append(clients, &wlan.Client{
			ID:        fmt.Sprintf("u%02d", i+1),
			Pos:       rf.Point{X: home.Pos.X + rng.Float64()*30 - 15, Y: home.Pos.Y + rng.Float64()*30 - 15},
			ExtraLoss: extra,
		})
	}
	return wlan.NewNetwork(aps, clients), clients
}

// FourLinks returns the four representative links A–D of Fig 5 as path
// losses (dB): A fair, B robust, C poor, D very poor. The Tx-power sweep of
// the figure moves each link through its σ window at a different power.
func FourLinks() map[string]units.DB {
	return map[string]units.DB{
		"LinkA": 104,
		"LinkB": 96,
		"LinkC": 112,
		"LinkD": 118,
	}
}
