package experiments

import "testing"

func TestJammerSweepShapes(t *testing.T) {
	r := RunJammerSweep(fastPHY)
	if len(r.Points) != 5 {
		t.Fatalf("want 5 points, got %d", len(r.Points))
	}
	if r.Points[0].BER20 != 0 || r.Points[0].BER40 != 0 {
		t.Error("zero jammed tones should be error-free")
	}
	// Damage grows with jammed tones at 20 MHz.
	prev := -1.0
	for _, p := range r.Points {
		if p.BER20 < prev {
			t.Errorf("20 MHz BER not nondecreasing at %d tones", p.JammedTones)
		}
		prev = p.BER20
	}
	// The wider channel dilutes the same jammed band.
	last := r.Points[len(r.Points)-1]
	if last.BER40 >= last.BER20 {
		t.Errorf("40 MHz should be relatively more resilient: %v vs %v", last.BER40, last.BER20)
	}
	if s := r.Format(); len(s) < 60 {
		t.Error("formatter output too short")
	}
}

func TestModelValidation(t *testing.T) {
	r := RunModelValidation(1)
	if len(r.Rows) != 5 {
		t.Fatalf("want 5 APs, got %d", len(r.Rows))
	}
	if r.MaxRelativeError > 0.15 {
		t.Errorf("analytic vs empirical divergence %.1f%% exceeds 15%%", 100*r.MaxRelativeError)
	}
	if s := r.Format(); len(s) < 60 {
		t.Error("formatter output too short")
	}
}

func TestCodedValidation(t *testing.T) {
	r := RunCodedValidation(PHYOptions{Packets: 90, PacketBytes: 250, Seed: 2})
	if len(r.Points) < 5 {
		t.Fatalf("too few sweep points: %d", len(r.Points))
	}
	// Measured PER must be monotone nonincreasing along the sweep
	// (within Monte-Carlo wobble at the extremes).
	for i := 1; i < len(r.Points); i++ {
		if r.Points[i].MeasuredPER > r.Points[i-1].MeasuredPER+0.15 {
			t.Errorf("measured PER rose at %v dB: %v → %v",
				r.Points[i].SNR, r.Points[i-1].MeasuredPER, r.Points[i].MeasuredPER)
		}
	}
	// The measured waterfall sits within 3 dB of the union-bound model.
	if r.WaterfallOffsetDB < -3 || r.WaterfallOffsetDB > 3 {
		t.Errorf("waterfall offset %v dB exceeds ±3 dB", r.WaterfallOffsetDB)
	}
	// Both endpoints behave: PER ≈ 1 at the bottom, ≈ 0 at the top.
	if r.Points[0].MeasuredPER < 0.7 {
		t.Errorf("bottom of sweep PER = %v, want ≈1", r.Points[0].MeasuredPER)
	}
	if last := r.Points[len(r.Points)-1].MeasuredPER; last > 0.2 {
		t.Errorf("top of sweep PER = %v, want ≈0", last)
	}
	if s := r.Format(); len(s) < 80 {
		t.Error("formatter output too short")
	}
}

func TestCSIAblation(t *testing.T) {
	r := RunCSIAblation(PHYOptions{Packets: 60, PacketBytes: 300, Seed: 4})
	if len(r.Points) != 4 {
		t.Fatalf("want 4 points, got %d", len(r.Points))
	}
	for _, p := range r.Points {
		// Trained CSI never beats genie (up to Monte-Carlo wobble at
		// clean operating points).
		if p.GenieBER > 1e-4 && p.TrainedBER < 0.8*p.GenieBER {
			t.Errorf("SNR %v: trained BER %v implausibly below genie %v",
				p.SNR, p.TrainedBER, p.GenieBER)
		}
		// And costs at most a modest factor.
		if p.GenieBER > 1e-3 && p.TrainedBER > 10*p.GenieBER {
			t.Errorf("SNR %v: trained BER %v collapsed vs genie %v",
				p.SNR, p.TrainedBER, p.GenieBER)
		}
	}
	if s := r.Format(); len(s) < 60 {
		t.Error("formatter output too short")
	}
}
