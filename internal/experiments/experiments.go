// Package experiments regenerates every table and figure of the paper's
// evaluation. Each RunXxx function executes one experiment end to end on
// the simulated substrate and returns a typed result whose Format method
// prints the same rows/series the paper reports. EXPERIMENTS.md records the
// paper-vs-measured comparison for each.
//
// Absolute throughputs differ from the paper's testbed (different hardware,
// different propagation); the reproduction targets the paper's *shapes*:
// who wins, by roughly what factor, and where the crossovers fall.
package experiments

import (
	"fmt"
	"strings"
)

// Series is one named (x, y) sequence of a figure.
type Series struct {
	Name string
	X    []float64
	Y    []float64
}

// Row formats one x/y pair.
func (s Series) Row(i int) string {
	return fmt.Sprintf("%12.4g %12.4g", s.X[i], s.Y[i])
}

// FormatSeries renders aligned columns: x then one column per series
// (series are assumed to share their X grid; the first series' X is used).
func FormatSeries(title string, xLabel string, series []Series) string {
	var b strings.Builder
	fmt.Fprintf(&b, "# %s\n", title)
	fmt.Fprintf(&b, "%-12s", xLabel)
	for _, s := range series {
		fmt.Fprintf(&b, " %14s", s.Name)
	}
	b.WriteByte('\n')
	if len(series) == 0 {
		return b.String()
	}
	for i := range series[0].X {
		fmt.Fprintf(&b, "%-12.4g", series[0].X[i])
		for _, s := range series {
			if i < len(s.Y) {
				fmt.Fprintf(&b, " %14.6g", s.Y[i])
			} else {
				fmt.Fprintf(&b, " %14s", "-")
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// FormatTable renders a simple aligned table.
func FormatTable(title string, header []string, rows [][]string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "# %s\n", title)
	widths := make([]int, len(header))
	for i, h := range header {
		widths[i] = len(h)
	}
	for _, r := range rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(header)
	for _, r := range rows {
		line(r)
	}
	return b.String()
}
