package experiments

import (
	"reflect"
	"testing"
)

// TestFig3aDeterministicAcrossWorkers pins the figure pipeline to the
// simrun determinism contract: the full Fig 3a series — measured SNRs,
// BERs, theory overlay, R² — is identical whether the Monte-Carlo grid
// runs on 1, 2, or 8 workers.
func TestFig3aDeterministicAcrossWorkers(t *testing.T) {
	base := PHYOptions{Packets: 20, PacketBytes: 120, Seed: 5, Workers: 1}
	ref := RunFig3a(base)
	for _, workers := range []int{2, 8} {
		opts := base
		opts.Workers = workers
		got := RunFig3a(opts)
		if !reflect.DeepEqual(ref, got) {
			t.Fatalf("Fig 3a series differ between 1 and %d workers:\n%+v\n%+v", workers, ref, got)
		}
	}
}

// TestJammerSweepDeterministicAcrossWorkers covers the extension pipeline
// the same way, including the coded/CSI option plumbing through Point.Make.
func TestJammerSweepDeterministicAcrossWorkers(t *testing.T) {
	base := PHYOptions{Packets: 30, PacketBytes: 100, Seed: 9, Workers: 1}
	ref := RunJammerSweep(base)
	opts := base
	opts.Workers = 4
	if got := RunJammerSweep(opts); !reflect.DeepEqual(ref, got) {
		t.Fatalf("jammer sweep differs between 1 and 4 workers:\n%+v\n%+v", ref, got)
	}
}
