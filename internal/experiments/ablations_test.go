package experiments

import (
	"testing"
)

func TestAblationEpsilon(t *testing.T) {
	points := AblationEpsilon(7)
	if len(points) != 3 {
		t.Fatalf("want 3 ε points, got %d", len(points))
	}
	// Running to the local optimum (ε→1) can only do at least as well as
	// stopping early, and never spends fewer periods.
	tight, def, loose := points[0], points[1], points[2]
	if tight.Throughput+1 < loose.Throughput {
		t.Errorf("ε→1 throughput %v below ε=1.2 %v", tight.Throughput, loose.Throughput)
	}
	if tight.Periods < loose.Periods {
		t.Errorf("ε→1 should run at least as many periods: %d vs %d", tight.Periods, loose.Periods)
	}
	// The paper's default lands within a few percent of the local optimum.
	if def.Throughput < 0.9*tight.Throughput {
		t.Errorf("default ε throughput %v more than 10%% below optimum %v", def.Throughput, tight.Throughput)
	}
	if s := FormatEpsilon(points); len(s) < 40 {
		t.Error("formatter output too short")
	}
}

func TestAblationAssociation(t *testing.T) {
	points := AblationAssociation(7)
	if len(points) != 6 {
		t.Fatalf("want 3 policies x 2 topologies, got %d", len(points))
	}
	byKey := map[string]AssociationPoint{}
	for _, p := range points {
		byKey[p.Topology+"/"+p.Policy] = p
		if p.UDP <= 0 {
			t.Errorf("%s/%s produced no throughput", p.Topology, p.Policy)
		}
	}
	// On the hotspot, RSS overloads one cell; both utility-aware
	// policies must clearly beat it.
	rssHot := byKey["hotspot/RSS (strongest)"].UDP
	if acorn := byKey["hotspot/ACORN Eq.4"].UDP; acorn < 1.5*rssHot {
		t.Errorf("hotspot: ACORN (%v) should beat RSS (%v) by ≥1.5x", acorn, rssHot)
	}
	// Against the delay-min baseline, ACORN holds its own on both
	// topologies (Eq. 4 optimizes the throughput objective directly).
	for _, topo := range []string{"uniform", "hotspot"} {
		acorn := byKey[topo+"/ACORN Eq.4"].UDP
		delay := byKey[topo+"/delay-min [17]"].UDP
		if acorn < 0.95*delay {
			t.Errorf("%s: ACORN (%v) below delay-min (%v)", topo, acorn, delay)
		}
	}
	if s := FormatAssociation(points); len(s) < 40 {
		t.Error("formatter output too short")
	}
}

func TestAblationRestarts(t *testing.T) {
	points := AblationRestarts(7)
	if len(points) != 3 {
		t.Fatalf("want 3 restart counts, got %d", len(points))
	}
	// Best-of-N is monotone in N by construction; verify and check the
	// marginal gain of 16 restarts over 1 stays modest (the single run
	// the paper uses is near-optimal in practice).
	for i := 1; i < len(points); i++ {
		if points[i].Throughput+1e-9 < points[i-1].Throughput {
			t.Errorf("best-of-%d below best-of-%d", points[i].Restarts, points[i-1].Restarts)
		}
	}
	if gain := points[2].Throughput / points[0].Throughput; gain > 1.3 {
		t.Errorf("16 restarts gained %vx — single-run search is worse than expected", gain)
	}
	if s := FormatRestarts(points); len(s) < 40 {
		t.Error("formatter output too short")
	}
}

func TestPeriodicitySweep(t *testing.T) {
	r := RunPeriodicity(11)
	if len(r.Points) != 4 {
		t.Fatalf("want 4 period points, got %d", len(r.Points))
	}
	byPeriod := map[string]float64{}
	for _, p := range r.Points {
		byPeriod[p.Period.String()] = p.Result.MeanThroughputMbps
		if p.Result.MeanThroughputMbps <= 0 {
			t.Errorf("period %v produced no throughput", p.Period)
		}
	}
	// The paper's 30-minute period must beat never reallocating.
	if byPeriod["30m0s"] <= byPeriod["0s"] {
		t.Errorf("30 min period (%v) should beat never (%v)", byPeriod["30m0s"], byPeriod["0s"])
	}
	if s := r.Format(); len(s) < 60 {
		t.Error("formatter output too short")
	}
}

func TestAblationScanning(t *testing.T) {
	points := AblationScanning(7)
	if len(points) != 2 {
		t.Fatalf("want 2 estimators, got %d", len(points))
	}
	ref, scan := points[0], points[1]
	// The scan costs |channels| times the probes of the reference pass.
	if scan.Probes <= 10*ref.Probes {
		t.Errorf("scan probes %d should dwarf reference probes %d", scan.Probes, ref.Probes)
	}
	// With MIMO-flat channels the exhaustive scan buys little: within a
	// few percent of the cheap estimator (Fig 8's point).
	if scan.Throughput < 0.9*ref.Throughput || ref.Throughput < 0.9*scan.Throughput {
		t.Errorf("estimators diverge: ref %v vs scan %v", ref.Throughput, scan.Throughput)
	}
	if s := FormatScanning(points); len(s) < 60 {
		t.Error("formatter output too short")
	}
}
