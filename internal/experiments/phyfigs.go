package experiments

import (
	"fmt"
	"math"

	"acorn/internal/baseband"
	"acorn/internal/dsp"
	"acorn/internal/phy"
	"acorn/internal/simrun"
	"acorn/internal/spectrum"
	"acorn/internal/stats"
	"acorn/internal/units"
)

// PHYOptions tunes the Monte-Carlo cost of the baseband experiments. The
// defaults keep every experiment under about a second; the cmd/phylab tool
// can raise them to the paper's 9000×1500 B scale.
type PHYOptions struct {
	Packets     int
	PacketBytes int
	Seed        int64
	// Workers is the parallel Monte-Carlo worker count handed to
	// internal/simrun; <=0 means GOMAXPROCS. Results are bit-identical
	// for any value (see the simrun determinism contract).
	Workers int
}

// engineOptions converts the experiment options to engine options.
func (o PHYOptions) engineOptions() simrun.Options {
	return simrun.Options{Workers: o.Workers}
}

// DefaultPHYOptions returns the fast defaults.
func DefaultPHYOptions() PHYOptions {
	return PHYOptions{Packets: 150, PacketBytes: 500, Seed: 1}
}

func (o PHYOptions) orDefault() PHYOptions {
	d := DefaultPHYOptions()
	if o.Packets <= 0 {
		o.Packets = d.Packets
	}
	if o.PacketBytes <= 0 {
		o.PacketBytes = d.PacketBytes
	}
	return o
}

// ---------------------------------------------------------------- Fig 1 --

// Fig1Result summarizes the PSD comparison of the 20 and 40 MHz waveforms.
type Fig1Result struct {
	// InBandDB20 and InBandDB40 are the mean in-band PSD levels in dB;
	// the paper reads −92 dB vs −95 dB off its analyzer — only the gap
	// is meaningful (absolute levels depend on the analyzer reference).
	InBandDB20, InBandDB40 float64
	// PerSubcarrierDropDB is InBandDB20 − InBandDB40, expected ≈3 dB.
	PerSubcarrierDropDB float64
	// OccupiedMHz20 and OccupiedMHz40 are the occupied bandwidths (bins
	// within 3 dB of the peak, converted to Hz); the 40 MHz waveform
	// occupies roughly twice the spectrum.
	OccupiedMHz20, OccupiedMHz40 float64
	// PSD20 and PSD40 are the full estimates (FFT order) for plotting.
	PSD20, PSD40 []float64
}

// RunFig1 regenerates Fig 1: the Welch PSD estimate of the transmitted
// OFDM waveform at both widths, same total transmit power.
func RunFig1(opts PHYOptions) Fig1Result {
	opts = opts.orDefault()
	tx := units.DBm(15)
	const segLen = 256
	wave := func(w spectrum.Width) (psd []float64, sampleRate float64) {
		ch := &baseband.Channel{Noiseless: true}
		l := baseband.NewLink(baseband.NewChainConfig(w), phy.QPSK, baseband.ModeSISO, tx, ch, opts.Seed)
		samples := l.TxWaveform(opts.PacketBytes * 4)
		// Drop the preamble so only OFDM spectrum is analyzed.
		pre := l.Chain.PreambleSamples()
		return dsp.WelchPSD(samples[pre:], segLen, l.Chain.SampleRate), l.Chain.SampleRate
	}
	psd20, rate20 := wave(spectrum.Width20)
	psd40, rate40 := wave(spectrum.Width40)
	inBand := func(psd []float64) (meanDB float64, bins []int) {
		bins = dsp.OccupiedBins(psd, 0.5)
		var sum float64
		for _, b := range bins {
			sum += psd[b]
		}
		return 10 * math.Log10(sum/float64(len(bins))), bins
	}
	db20, bins20 := inBand(psd20)
	db40, bins40 := inBand(psd40)
	return Fig1Result{
		InBandDB20:          db20,
		InBandDB40:          db40,
		PerSubcarrierDropDB: db20 - db40,
		OccupiedMHz20:       float64(len(bins20)) * rate20 / segLen / 1e6,
		OccupiedMHz40:       float64(len(bins40)) * rate40 / segLen / 1e6,
		PSD20:               psd20,
		PSD40:               psd40,
	}
}

// Format renders the figure summary.
func (r Fig1Result) Format() string {
	return FormatTable("Fig 1: PSD estimate with different channel widths",
		[]string{"width", "in-band PSD (dB)", "occupied bandwidth (MHz)"},
		[][]string{
			{"20 MHz", fmt.Sprintf("%.2f", r.InBandDB20), fmt.Sprintf("%.1f", r.OccupiedMHz20)},
			{"40 MHz", fmt.Sprintf("%.2f", r.InBandDB40), fmt.Sprintf("%.1f", r.OccupiedMHz40)},
			{"drop", fmt.Sprintf("%.2f dB (paper: ≈3 dB, −92→−95)", r.PerSubcarrierDropDB), ""},
		})
}

// ---------------------------------------------------------------- Fig 2 --

// Fig2Result compares received constellations with 52 vs 108 subcarriers at
// the same transmit power.
type Fig2Result struct {
	// EVM20 and EVM40 are the RMS error-vector magnitudes; bonding's
	// lower per-subcarrier energy shows as a larger EVM.
	EVM20, EVM40 float64
	// SER20 and SER40 are the measured baud (QPSK symbol) error rates.
	SER20, SER40 float64
	// Constellation20 and Constellation40 are received I-Q samples.
	Constellation20, Constellation40 []complex128
}

// RunFig2 regenerates Fig 2: QPSK constellations at both widths over a link
// whose 20 MHz per-subcarrier SNR sits around 10 dB.
func RunFig2(opts PHYOptions) Fig2Result {
	opts = opts.orDefault()
	tx := units.DBm(15)
	pl := pathLossForSNR(tx, 10, spectrum.Width20)
	run := func(w spectrum.Width) *baseband.Measurement {
		ch := &baseband.Channel{PathLoss: pl}
		l := baseband.NewLink(baseband.NewChainConfig(w), phy.QPSK, baseband.ModeSTBC, tx, ch, opts.Seed)
		return l.Run(max(opts.Packets/10, 4), opts.PacketBytes)
	}
	m20 := run(spectrum.Width20)
	m40 := run(spectrum.Width40)
	return Fig2Result{
		EVM20: m20.EVM(), EVM40: m40.EVM(),
		SER20: symbolErrorRate(m20), SER40: symbolErrorRate(m40),
		Constellation20: m20.Constellation, Constellation40: m40.Constellation,
	}
}

// symbolErrorRate estimates the QPSK baud error rate from the bit error
// count (a QPSK symbol errs roughly when either of its two bits errs; for
// small rates SER ≈ 2·BER·(1 − BER/2) ≈ the union of the two).
func symbolErrorRate(m *baseband.Measurement) float64 {
	ber := m.BER()
	return 1 - (1-ber)*(1-ber)
}

// Format renders the figure summary.
func (r Fig2Result) Format() string {
	return FormatTable("Fig 2: received QPSK constellations, 52 vs 108 subcarriers",
		[]string{"width", "RMS EVM", "baud error rate"},
		[][]string{
			{"20 MHz (52 sc)", fmt.Sprintf("%.4f", r.EVM20), fmt.Sprintf("%.3g", r.SER20)},
			{"40 MHz (108 sc)", fmt.Sprintf("%.4f", r.EVM40), fmt.Sprintf("%.3g", r.SER40)},
		})
}

// ---------------------------------------------------------------- Fig 3 --

// Fig3aResult is the uncoded BER vs measured SNR comparison with theory.
type Fig3aResult struct {
	// SNR20/BER20 and SNR40/BER40 are the measured operating points.
	SNR20, BER20, SNR40, BER40 []float64
	// Theory20 and Theory40 are the closed-form BERs at the measured
	// SNRs.
	Theory20, Theory40 []float64
	// R2_20 and R2_40 are the coefficients of determination between
	// measurement and theory in log-BER space (paper: 0.8 and 0.89).
	R2_20, R2_40 float64
}

// RunFig3a regenerates Fig 3(a): uncoded QPSK BER vs SNR for both widths,
// overlaid with theory. For a given SNR the BER must not depend on width.
func RunFig3a(opts PHYOptions) Fig3aResult {
	opts = opts.orDefault()
	tx := units.DBm(15)
	var r Fig3aResult
	// Post-MRC/STBC target SNRs spanning the waterfall (0–12 dB as in
	// the figure).
	targets := []float64{1.5, 3, 4.5, 6, 7.5, 9, 10.5}
	widths := []spectrum.Width{spectrum.Width20, spectrum.Width40}
	var points []simrun.Point
	for _, w := range widths {
		for _, target := range targets {
			// STBC over AWGN adds ≈3 dB combining gain over the
			// single-path analytic SNR.
			pl := pathLossForSNR(tx, target-3, w)
			points = append(points, simrun.Point{
				Seed:        opts.Seed + int64(target*10),
				Packets:     opts.Packets,
				PacketBytes: opts.PacketBytes,
				Make: func(seed int64) *baseband.Link {
					ch := &baseband.Channel{PathLoss: pl}
					return baseband.NewLink(baseband.NewChainConfig(w), phy.QPSK, baseband.ModeSTBC, tx, ch, seed)
				},
			})
		}
	}
	meas := simrun.Run(points, opts.engineOptions())
	for i, w := range widths {
		for j := range targets {
			m := meas[i*len(targets)+j]
			snr := m.MeasuredSNRdB()
			ber := m.BER()
			if ber == 0 {
				ber = 0.5 / float64(m.Bits) // measurement floor
			}
			th := phy.UncodedBER(phy.QPSK, units.DB(snr))
			if w == spectrum.Width20 {
				r.SNR20 = append(r.SNR20, snr)
				r.BER20 = append(r.BER20, ber)
				r.Theory20 = append(r.Theory20, th)
			} else {
				r.SNR40 = append(r.SNR40, snr)
				r.BER40 = append(r.BER40, ber)
				r.Theory40 = append(r.Theory40, th)
			}
		}
	}
	r.R2_20 = logR2(r.BER20, r.Theory20)
	r.R2_40 = logR2(r.BER40, r.Theory40)
	return r
}

// logR2 computes R² in log10 space, the scale on which BER curves are
// compared.
func logR2(observed, predicted []float64) float64 {
	lo := make([]float64, 0, len(observed))
	lp := make([]float64, 0, len(predicted))
	for i := range observed {
		if observed[i] <= 0 || predicted[i] <= 0 {
			continue
		}
		lo = append(lo, math.Log10(observed[i]))
		lp = append(lp, math.Log10(predicted[i]))
	}
	return stats.RSquared(lo, lp)
}

// Format renders the figure series.
func (r Fig3aResult) Format() string {
	s := FormatSeries("Fig 3a: uncoded QPSK BER vs SNR (theory overlay)", "SNR20(dB)",
		[]Series{
			{Name: "BER-20MHz", X: r.SNR20, Y: r.BER20},
			{Name: "Theory@20", X: r.SNR20, Y: r.Theory20},
		})
	s += FormatSeries("", "SNR40(dB)",
		[]Series{
			{Name: "BER-40MHz", X: r.SNR40, Y: r.BER40},
			{Name: "Theory@40", X: r.SNR40, Y: r.Theory40},
		})
	s += fmt.Sprintf("R² vs theory: 20 MHz %.3f, 40 MHz %.3f (paper: 0.8, 0.89)\n", r.R2_20, r.R2_40)
	return s
}

// Fig3bResult is the uncoded BER vs transmit power comparison.
type Fig3bResult struct {
	TxDBm        []float64
	BER20, BER40 []float64
}

// RunFig3b regenerates Fig 3(b): at fixed path loss, the wider channel has
// more bits in error for any given transmit power.
func RunFig3b(opts PHYOptions) Fig3bResult {
	opts = opts.orDefault()
	// Path loss chosen so the sweep crosses the QPSK waterfall.
	pl := pathLossForSNR(12, 3, spectrum.Width20)
	var r Fig3bResult
	widths := []spectrum.Width{spectrum.Width20, spectrum.Width40}
	var points []simrun.Point
	for tx := 0.0; tx <= 25; tx += 2.5 {
		r.TxDBm = append(r.TxDBm, tx)
		for _, w := range widths {
			points = append(points, simrun.Point{
				Seed:        opts.Seed + int64(tx*4),
				Packets:     opts.Packets,
				PacketBytes: opts.PacketBytes,
				Make: func(seed int64) *baseband.Link {
					ch := &baseband.Channel{PathLoss: pl}
					return baseband.NewLink(baseband.NewChainConfig(w), phy.QPSK, baseband.ModeSTBC, units.DBm(tx), ch, seed)
				},
			})
		}
	}
	meas := simrun.Run(points, opts.engineOptions())
	for i, m := range meas {
		ber := m.BER()
		if ber == 0 {
			ber = 0.5 / float64(m.Bits)
		}
		if i%len(widths) == 0 {
			r.BER20 = append(r.BER20, ber)
		} else {
			r.BER40 = append(r.BER40, ber)
		}
	}
	return r
}

// Format renders the figure series.
func (r Fig3bResult) Format() string {
	return FormatSeries("Fig 3b: uncoded QPSK BER vs Tx power", "Tx(dBm)",
		[]Series{
			{Name: "BER-20MHz", X: r.TxDBm, Y: r.BER20},
			{Name: "BER-40MHz", X: r.TxDBm, Y: r.BER40},
		})
}

// ---------------------------------------------------------------- Fig 4 --

// Fig4Result carries the uncoded PER counterparts of Fig 3.
type Fig4Result struct {
	// vs SNR (Fig 4a).
	SNR20, PER20vsSNR, SNR40, PER40vsSNR []float64
	// vs Tx (Fig 4b).
	TxDBm, PER20vsTx, PER40vsTx []float64
}

// RunFig4 regenerates Fig 4: uncoded PER for QPSK vs SNR (a) and vs Tx (b).
func RunFig4(opts PHYOptions) Fig4Result {
	opts = opts.orDefault()
	tx := units.DBm(15)
	var r Fig4Result
	targets := []float64{1.5, 3, 4.5, 6, 7.5, 9}
	widths := []spectrum.Width{spectrum.Width20, spectrum.Width40}
	var points []simrun.Point
	for _, w := range widths {
		for _, target := range targets {
			pl := pathLossForSNR(tx, target-3, w)
			points = append(points, simrun.Point{
				Seed:        opts.Seed + int64(target*7),
				Packets:     opts.Packets,
				PacketBytes: opts.PacketBytes,
				Make: func(seed int64) *baseband.Link {
					ch := &baseband.Channel{PathLoss: pl}
					return baseband.NewLink(baseband.NewChainConfig(w), phy.QPSK, baseband.ModeSTBC, tx, ch, seed)
				},
			})
		}
	}
	pl := pathLossForSNR(12, 3, spectrum.Width20)
	for txp := 0.0; txp <= 25; txp += 2.5 {
		r.TxDBm = append(r.TxDBm, txp)
		for _, w := range widths {
			points = append(points, simrun.Point{
				Seed:        opts.Seed + int64(txp*3),
				Packets:     opts.Packets,
				PacketBytes: opts.PacketBytes,
				Make: func(seed int64) *baseband.Link {
					ch := &baseband.Channel{PathLoss: pl}
					return baseband.NewLink(baseband.NewChainConfig(w), phy.QPSK, baseband.ModeSTBC, units.DBm(txp), ch, seed)
				},
			})
		}
	}
	meas := simrun.Run(points, opts.engineOptions())
	floorPER := func(m *baseband.Measurement) float64 {
		per := m.PER()
		if per == 0 {
			per = 0.5 / float64(m.Packets)
		}
		return per
	}
	for i, w := range widths {
		for j := range targets {
			m := meas[i*len(targets)+j]
			if w == spectrum.Width20 {
				r.SNR20 = append(r.SNR20, m.MeasuredSNRdB())
				r.PER20vsSNR = append(r.PER20vsSNR, floorPER(m))
			} else {
				r.SNR40 = append(r.SNR40, m.MeasuredSNRdB())
				r.PER40vsSNR = append(r.PER40vsSNR, floorPER(m))
			}
		}
	}
	for i, m := range meas[len(widths)*len(targets):] {
		if i%len(widths) == 0 {
			r.PER20vsTx = append(r.PER20vsTx, floorPER(m))
		} else {
			r.PER40vsTx = append(r.PER40vsTx, floorPER(m))
		}
	}
	return r
}

// Format renders both panels.
func (r Fig4Result) Format() string {
	s := FormatSeries("Fig 4a: uncoded PER vs SNR", "SNR20(dB)",
		[]Series{{Name: "PER-20MHz", X: r.SNR20, Y: r.PER20vsSNR}})
	s += FormatSeries("", "SNR40(dB)",
		[]Series{{Name: "PER-40MHz", X: r.SNR40, Y: r.PER40vsSNR}})
	s += FormatSeries("Fig 4b: uncoded PER vs Tx", "Tx(dBm)",
		[]Series{
			{Name: "PER-20MHz", X: r.TxDBm, Y: r.PER20vsTx},
			{Name: "PER-40MHz", X: r.TxDBm, Y: r.PER40vsTx},
		})
	return s
}

// pathLossForSNR returns the path loss that lands the analytic (pre-MRC)
// per-subcarrier SNR at the target for the given width and Tx power.
func pathLossForSNR(tx units.DBm, targetSNR float64, w spectrum.Width) units.DB {
	return units.DB(float64(tx) - targetSNR - float64(phy.SubcarrierNoiseFloor()) -
		10*math.Log10(float64(phy.UsedSubcarriers(w))))
}
