package experiments

// Ablation studies for the design choices DESIGN.md §5 calls out: the
// ε stopping threshold and random-restart count of Algorithm 2, and the
// association utility of Algorithm 1 against simpler policies. None of
// these appear as paper figures; they quantify why the paper's choices are
// reasonable on the same substrate the figures use.

import (
	"fmt"
	"time"

	"acorn/internal/baseline"
	"acorn/internal/core"
	"acorn/internal/dynamic"
	"acorn/internal/rf"
	"acorn/internal/stats"
	"acorn/internal/wlan"
)

// ------------------------------------------------------------ epsilon --

// EpsilonPoint is one row of the ε ablation.
type EpsilonPoint struct {
	Epsilon float64
	// Throughput is the evaluated total after allocation; Switches and
	// Periods measure the work spent.
	Throughput float64
	Switches   int
	Periods    int
}

// AblationEpsilon runs Algorithm 2 with different stopping thresholds on
// the Table 3 enterprise topology. ε = 1.0 runs to the local optimum
// (every period must strictly improve); larger values stop earlier.
func AblationEpsilon(seed int64) []EpsilonPoint {
	n, clients := RandomEnterprise(seed, 6, 14)
	out := make([]EpsilonPoint, 0, 3)
	for _, eps := range []float64{1.000001, core.DefaultEpsilon, 1.2} {
		cfg := wlan.NewConfig()
		rng := stats.NewRand(seed)
		core.RandomInitial(n, cfg, rng.Intn)
		core.AssociateAll(n, cfg, clients)
		est := core.NewEstimator(n)
		alloc, st := core.AllocateChannels(n, cfg, est, core.AllocOptions{Epsilon: eps})
		out = append(out, EpsilonPoint{
			Epsilon:    eps,
			Throughput: n.Evaluate(alloc).TotalUDP,
			Switches:   st.Switches,
			Periods:    st.Periods,
		})
	}
	return out
}

// FormatEpsilon renders the ε ablation.
func FormatEpsilon(points []EpsilonPoint) string {
	rows := make([][]string, 0, len(points))
	for _, p := range points {
		rows = append(rows, []string{
			fmt.Sprintf("%.4g", p.Epsilon),
			fmt.Sprintf("%.1f", p.Throughput),
			fmt.Sprintf("%d", p.Switches),
			fmt.Sprintf("%d", p.Periods),
		})
	}
	return FormatTable("Ablation: Algorithm 2 stopping threshold ε",
		[]string{"ε", "throughput (Mb/s)", "switches", "periods"}, rows)
}

// -------------------------------------------------------- association --

// AssociationPoint is one row of the association-policy ablation.
type AssociationPoint struct {
	Policy   string
	Topology string
	UDP      float64
	TCP      float64
}

// HotspotTopology builds the scenario where naïve signal-strength
// association collapses: three mutually reachable APs with the entire
// client population gathered around AP1 (a lecture hall next to two idle
// offices). RSS piles everyone onto AP1; a load- or utility-aware policy
// spreads the crowd. This is the overload case the paper cites [29] when
// dismissing RSS-based affiliation.
func HotspotTopology(seed int64) (*wlan.Network, []*wlan.Client) {
	rng := stats.NewRand(seed)
	mk := func(id string, x, y float64) *wlan.AP {
		return &wlan.AP{ID: id, Pos: rf.Point{X: x, Y: y}, TxPower: 18}
	}
	aps := []*wlan.AP{mk("AP1", 0, 0), mk("AP2", 55, 0), mk("AP3", 27, 48)}
	var clients []*wlan.Client
	for i := 0; i < 9; i++ {
		clients = append(clients, &wlan.Client{
			ID:  fmt.Sprintf("h%02d", i+1),
			Pos: rf.Point{X: rng.Float64()*14 - 7, Y: rng.Float64()*14 - 7},
		})
	}
	return wlan.NewNetwork(aps, clients), clients
}

// AblationAssociation compares ACORN's Eq. 4 utility against the two
// legacy association policies, holding the channel allocator fixed
// (Algorithm 2 runs after association in every arm). Two topologies make
// the trade-off visible: on a uniform enterprise floor every policy is
// near-equivalent (clients already sit near their best AP), while on a
// hotspot RSS overloads one cell and pays the anomaly.
func AblationAssociation(seed int64) []AssociationPoint {
	type policy struct {
		name      string
		associate func(n *wlan.Network, cfg *wlan.Config, u *wlan.Client) string
	}
	policies := []policy{
		{"ACORN Eq.4", func(n *wlan.Network, cfg *wlan.Config, u *wlan.Client) string {
			return core.Associate(n, cfg, u).APID
		}},
		{"delay-min [17]", baseline.AssociateDelayBased},
		{"RSS (strongest)", baseline.AssociateRSS},
	}
	type topo struct {
		name  string
		build func() (*wlan.Network, []*wlan.Client)
	}
	topos := []topo{
		{"uniform", func() (*wlan.Network, []*wlan.Client) { return RandomEnterprise(seed, 6, 14) }},
		{"hotspot", func() (*wlan.Network, []*wlan.Client) { return HotspotTopology(seed) }},
	}
	var out []AssociationPoint
	for _, tp := range topos {
		for _, pol := range policies {
			n, clients := tp.build()
			cfg := wlan.NewConfig()
			rng := stats.NewRand(seed)
			core.RandomInitial(n, cfg, rng.Intn)
			for _, u := range clients {
				if ap := pol.associate(n, cfg, u); ap != "" {
					cfg.SetAssoc(u.ID, ap)
				}
			}
			est := core.NewEstimator(n)
			alloc, _ := core.AllocateChannels(n, cfg, est, core.AllocOptions{})
			rep := n.Evaluate(alloc)
			out = append(out, AssociationPoint{
				Policy: pol.name, Topology: tp.name,
				UDP: rep.TotalUDP, TCP: rep.TotalTCP,
			})
		}
	}
	return out
}

// FormatAssociation renders the association ablation.
func FormatAssociation(points []AssociationPoint) string {
	rows := make([][]string, 0, len(points))
	for _, p := range points {
		rows = append(rows, []string{p.Topology, p.Policy, fmt.Sprintf("%.1f", p.UDP), fmt.Sprintf("%.1f", p.TCP)})
	}
	return FormatTable("Ablation: association policy (channel allocation fixed to Algorithm 2)",
		[]string{"topology", "policy", "UDP (Mb/s)", "TCP (Mb/s)"}, rows)
}

// ----------------------------------------------------------- restarts --

// RestartPoint is one row of the random-restart ablation.
type RestartPoint struct {
	Restarts   int
	Throughput float64
}

// AblationRestarts measures how much restarting Algorithm 2 from multiple
// random initial colorings buys over the single run the paper uses. Because
// the gradient search can be trapped in a local optimum, extra restarts can
// only help — the question is by how much.
func AblationRestarts(seed int64) []RestartPoint {
	n, clients := RandomEnterprise(seed, 6, 14)
	assoc := wlan.NewConfig()
	rng := stats.NewRand(seed)
	core.RandomInitial(n, assoc, rng.Intn)
	core.AssociateAll(n, assoc, clients)
	est := core.NewEstimator(n)

	runOnce := func(restartSeed int64) float64 {
		cfg := assoc.Clone()
		r := stats.NewRand(restartSeed)
		core.RandomInitial(n, cfg, r.Intn)
		alloc, _ := core.AllocateChannels(n, cfg, est, core.AllocOptions{})
		return n.Evaluate(alloc).TotalUDP
	}
	var out []RestartPoint
	best := 0.0
	done := 0
	for _, target := range []int{1, 4, 16} {
		for done < target {
			if t := runOnce(seed + int64(done)*101); t > best {
				best = t
			}
			done++
		}
		out = append(out, RestartPoint{Restarts: target, Throughput: best})
	}
	return out
}

// FormatRestarts renders the restart ablation.
func FormatRestarts(points []RestartPoint) string {
	rows := make([][]string, 0, len(points))
	for _, p := range points {
		rows = append(rows, []string{fmt.Sprintf("%d", p.Restarts), fmt.Sprintf("%.1f", p.Throughput)})
	}
	return FormatTable("Ablation: random restarts of Algorithm 2 (best-of-N)",
		[]string{"restarts", "best throughput (Mb/s)"}, rows)
}

// -------------------------------------------------------- periodicity --

// PeriodicityResult is the reallocation-period study built on the churn
// simulator.
type PeriodicityResult struct {
	Points []dynamic.PeriodSweepPoint
}

// RunPeriodicity sweeps the reallocation period over a churn trace,
// quantifying the trade-off Section 4.2 argues qualitatively.
func RunPeriodicity(seed int64) PeriodicityResult {
	periods := []time.Duration{
		0, // never reallocate after the random initial assignment
		5 * time.Minute,
		30 * time.Minute, // the paper's choice
		2 * time.Hour,
	}
	return PeriodicityResult{Points: dynamic.PeriodSweep(seed, periods)}
}

// Format renders the periodicity study.
func (r PeriodicityResult) Format() string {
	rows := make([][]string, 0, len(r.Points))
	for _, p := range r.Points {
		label := p.Period.String()
		if p.Period == 0 {
			label = "never"
		}
		rows = append(rows, []string{
			label,
			fmt.Sprintf("%.1f", p.Result.MeanThroughputMbps),
			fmt.Sprintf("%d", p.Result.Switches),
			fmt.Sprintf("%.0f", p.Result.OutageSeconds),
		})
	}
	return FormatTable("Periodicity: time-averaged throughput vs reallocation period (8 h churn)",
		[]string{"period T", "mean throughput (Mb/s)", "switches", "outage (s)"}, rows)
}

// ---------------------------------------------------------------- scan --

// ScanPoint is one row of the scanning-estimator ablation.
type ScanPoint struct {
	Estimator  string
	Throughput float64
	Probes     int
}

// AblationScanning compares the default estimator (one reference
// measurement per link, width-recalibrated) against the scanning variant
// Section 4.2 sketches (a true measurement per link per channel). The
// question is whether exhaustive scanning buys enough throughput to justify
// |channels| × |links| probes; with MIMO-flattened channels (Fig 8) it
// should not.
func AblationScanning(seed int64) []ScanPoint {
	run := func(name string, build func(n *wlan.Network) (core.ThroughputEstimator, int)) ScanPoint {
		n, clients := RandomEnterprise(seed, 6, 14)
		cfg := wlan.NewConfig()
		rng := stats.NewRand(seed)
		core.RandomInitial(n, cfg, rng.Intn)
		core.AssociateAll(n, cfg, clients)
		est, probes := build(n)
		alloc, _ := core.AllocateChannels(n, cfg, est, core.AllocOptions{})
		return ScanPoint{
			Estimator:  name,
			Throughput: n.Evaluate(alloc).TotalUDP,
			Probes:     probes,
		}
	}
	return []ScanPoint{
		run("reference+recalibrate", func(n *wlan.Network) (core.ThroughputEstimator, int) {
			return core.NewEstimator(n), len(n.APs) * len(n.Clients)
		}),
		run("exhaustive scan", func(n *wlan.Network) (core.ThroughputEstimator, int) {
			e := core.NewScanningEstimator(n)
			return e, e.Probes
		}),
	}
}

// FormatScanning renders the scan ablation.
func FormatScanning(points []ScanPoint) string {
	rows := make([][]string, 0, len(points))
	for _, p := range points {
		rows = append(rows, []string{p.Estimator, fmt.Sprintf("%.1f", p.Throughput), fmt.Sprintf("%d", p.Probes)})
	}
	return FormatTable("Ablation: link-quality estimator — reference measurement vs exhaustive scan",
		[]string{"estimator", "throughput (Mb/s)", "probes"}, rows)
}
