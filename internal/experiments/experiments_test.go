package experiments

import (
	"strings"
	"testing"

	"acorn/internal/phy"
	"acorn/internal/spectrum"
)

// fastPHY keeps the Monte-Carlo experiments quick in tests.
var fastPHY = PHYOptions{Packets: 40, PacketBytes: 300, Seed: 1}

func TestFig1PSDDrop(t *testing.T) {
	r := RunFig1(fastPHY)
	if r.PerSubcarrierDropDB < 2.5 || r.PerSubcarrierDropDB > 4 {
		t.Errorf("per-subcarrier PSD drop = %v dB, want ≈3", r.PerSubcarrierDropDB)
	}
	ratio := r.OccupiedMHz40 / r.OccupiedMHz20
	if ratio < 1.8 || ratio > 2.8 {
		t.Errorf("occupied bandwidth ratio = %v, want ≈2", ratio)
	}
	if !strings.Contains(r.Format(), "Fig 1") {
		t.Error("Format missing title")
	}
}

func TestFig2ConstellationDegradation(t *testing.T) {
	r := RunFig2(fastPHY)
	if r.EVM40 <= r.EVM20 {
		t.Errorf("40 MHz EVM %v should exceed 20 MHz EVM %v", r.EVM40, r.EVM20)
	}
	// The EVM ratio reflects the ~3 dB SNR gap (√2 in amplitude).
	if ratio := r.EVM40 / r.EVM20; ratio < 1.15 || ratio > 1.8 {
		t.Errorf("EVM ratio = %v, want ≈√2", ratio)
	}
	if r.SER40 < r.SER20 {
		t.Errorf("40 MHz baud error rate %v below 20 MHz %v", r.SER40, r.SER20)
	}
	if len(r.Constellation20) == 0 || len(r.Constellation40) == 0 {
		t.Error("constellations not captured")
	}
}

func TestFig3aBERMatchesTheory(t *testing.T) {
	opts := fastPHY
	opts.Packets = 120 // needs statistics in the waterfall
	r := RunFig3a(opts)
	if r.R2_20 < 0.8 || r.R2_40 < 0.8 {
		t.Errorf("R² vs theory = %v / %v, want ≥ 0.8 (paper: 0.8, 0.89)", r.R2_20, r.R2_40)
	}
	// BER must decrease along the SNR sweep.
	if r.BER20[0] <= r.BER20[len(r.BER20)-1] {
		t.Error("20 MHz BER not decreasing with SNR")
	}
}

func TestFig3bWiderChannelWorse(t *testing.T) {
	r := RunFig3b(fastPHY)
	worse := 0
	for i := range r.TxDBm {
		if r.BER40[i] >= r.BER20[i] {
			worse++
		}
	}
	// At every power the wider channel is at least as bad (a sampling
	// wobble at the extremes is tolerated).
	if worse < len(r.TxDBm)-1 {
		t.Errorf("40 MHz BER worse at only %d/%d points", worse, len(r.TxDBm))
	}
}

func TestFig4PERShapes(t *testing.T) {
	r := RunFig4(fastPHY)
	// vs Tx: the 40 MHz curve must be ≥ the 20 MHz curve everywhere.
	for i := range r.TxDBm {
		if r.PER40vsTx[i]+1e-9 < r.PER20vsTx[i] {
			t.Errorf("at %v dBm PER40 %v < PER20 %v", r.TxDBm[i], r.PER40vsTx[i], r.PER20vsTx[i])
		}
	}
	// Both PER-vs-Tx curves eventually fall below 0.1.
	if r.PER20vsTx[len(r.TxDBm)-1] > 0.1 || r.PER40vsTx[len(r.TxDBm)-1] > 0.1 {
		t.Error("PER should collapse at high power")
	}
}

func TestFig5WindowsShiftWithLinkAndModcod(t *testing.T) {
	r := RunFig5()
	// Poorer links need more power before CB stops hurting: window
	// positions must order LinkB < LinkA < LinkC for every modcod.
	for _, mc := range phy.Fig5ModCods {
		loB, _, okB := r.SigmaWindow(mc.String(), "LinkB")
		loA, _, okA := r.SigmaWindow(mc.String(), "LinkA")
		loC, _, okC := r.SigmaWindow(mc.String(), "LinkC")
		if !okA || !okB || !okC {
			t.Fatalf("%v: missing σ window", mc)
		}
		if !(loB < loA && loA < loC) {
			t.Errorf("%v: window order B(%v) < A(%v) < C(%v) violated", mc, loB, loA, loC)
		}
	}
	// More aggressive modcods push the window to higher power on the
	// same link.
	loQPSK, _, _ := r.SigmaWindow("QPSK 3/4", "LinkA")
	lo64, _, _ := r.SigmaWindow("64QAM 5/6", "LinkA")
	if lo64 <= loQPSK {
		t.Errorf("64QAM 5/6 window (%v) should sit above QPSK 3/4 (%v)", lo64, loQPSK)
	}
}

func TestTable1ThresholdsMonotone(t *testing.T) {
	r := RunTable1()
	if len(r.Rows) != 4 {
		t.Fatalf("want 4 modcod rows, got %d", len(r.Rows))
	}
	prev := -1e9
	for _, row := range r.Rows {
		if row.SNRSigmaGE2 <= prev {
			t.Errorf("%v: transition SNR %v not above previous %v — aggressiveness ordering broken",
				row.ModCod, row.SNRSigmaGE2, prev)
		}
		if row.SNRSigmaLT2 < row.SNRSigmaGE2 {
			t.Errorf("%v: σ<2 SNR below σ≥2 SNR", row.ModCod)
		}
		prev = row.SNRSigmaGE2
	}
}

func TestFig6Fractions(t *testing.T) {
	r := RunFig6(42)
	if len(r.Links) != 24 {
		t.Fatalf("want 24 links, got %d", len(r.Links))
	}
	// Paper: ≈10% of UDP and ≈30% of TCP trials prefer 20 MHz; TCP must
	// exceed UDP and both must be nontrivial.
	if r.Frac20WinsUDP <= 0 || r.Frac20WinsUDP > 0.3 {
		t.Errorf("UDP 20-wins fraction = %v, want ≈0.1", r.Frac20WinsUDP)
	}
	if r.Frac20WinsTCP < r.Frac20WinsUDP {
		t.Errorf("TCP fraction %v should be ≥ UDP fraction %v", r.Frac20WinsTCP, r.Frac20WinsUDP)
	}
	if r.FracBelow2x < 0.95 {
		t.Errorf("fraction below y=2x = %v, want ≈1", r.FracBelow2x)
	}
	// Fig 6b: the optimal MCS at 40 MHz is never more aggressive.
	for _, l := range r.Links {
		if l.OptMCS40 > l.OptMCS20 {
			t.Errorf("%s: optimal 40 MHz MCS %d above 20 MHz MCS %d", l.Name, l.OptMCS40, l.OptMCS20)
		}
	}
}

func TestFig8Flatness(t *testing.T) {
	r := RunFig8()
	if len(r.ChannelIndex20) != 12 || len(r.ChannelIndex40) != 6 {
		t.Fatalf("channel counts: %d/%d", len(r.ChannelIndex20), len(r.ChannelIndex40))
	}
	if r.MaxSpread20 > 0.15 || r.MaxSpread40 > 0.15 {
		t.Errorf("PER spread across channels too large: %v / %v", r.MaxSpread20, r.MaxSpread40)
	}
	// The panels must be informative: at least one link with nonzero PER.
	nonzero := false
	for _, s := range r.PER20 {
		for _, p := range s {
			if p > 0.01 {
				nonzero = true
			}
		}
	}
	if !nonzero {
		t.Error("all PERs pinned at 0; experiment uninformative")
	}
}

func TestFig9TraceStatistics(t *testing.T) {
	r := RunFig9(1)
	if r.MedianMinutes < 28 || r.MedianMinutes > 34 {
		t.Errorf("median = %v min, want ≈31", r.MedianMinutes)
	}
	if r.FracUnder40Min < 0.88 {
		t.Errorf("under-40-min fraction = %v, want > 0.9", r.FracUnder40Min)
	}
	if r.RecommendedPeriod.Minutes() != 30 {
		t.Errorf("period = %v, want 30m", r.RecommendedPeriod)
	}
}

func TestFig10Topology1Gain(t *testing.T) {
	r := RunFig10Topology1(1)
	var ap1 Fig10Cell
	for _, c := range r.Cells {
		if c.APID == "AP1" {
			ap1 = c
		}
	}
	// The poor cell: ACORN must pick 20 MHz and beat the bonded legacy
	// configuration by a large factor (paper: 4×).
	if ap1.ACORNCh.Width != spectrum.Width20 {
		t.Errorf("ACORN width for the poor cell = %v, want 20 MHz", ap1.ACORNCh.Width)
	}
	if ap1.LegacyCh.Width != spectrum.Width40 {
		t.Errorf("legacy width = %v, want 40 MHz", ap1.LegacyCh.Width)
	}
	if ap1.Legacy <= 0 || ap1.ACORN/ap1.Legacy < 2.5 {
		t.Errorf("AP1 gain = %v/%v, want ≥ 2.5x (paper 4x)", ap1.ACORN, ap1.Legacy)
	}
	if r.TotalACORN < r.TotalLegacy {
		t.Errorf("ACORN total %v below legacy %v", r.TotalACORN, r.TotalLegacy)
	}
}

func TestFig10Topology2Gains(t *testing.T) {
	r := RunFig10Topology2(1)
	cells := map[string]Fig10Cell{}
	for _, c := range r.Cells {
		cells[c.APID] = c
	}
	// AP4 (very poor clients): large gain via 20 MHz (paper 6×).
	ap4 := cells["AP4"]
	if ap4.ACORNCh.Width != spectrum.Width20 {
		t.Errorf("AP4 ACORN width = %v, want 20 MHz", ap4.ACORNCh.Width)
	}
	if ap4.Legacy > 0 && ap4.ACORN/ap4.Legacy < 2 {
		t.Errorf("AP4 gain = %.1fx, want ≥ 2x (paper 6x)", ap4.ACORN/ap4.Legacy)
	}
	// AP5 (poor-but-alive): moderate gain (paper 1.5×).
	ap5 := cells["AP5"]
	if ap5.Legacy > 0 && ap5.ACORN/ap5.Legacy < 1.1 {
		t.Errorf("AP5 gain = %.1fx, want ≥ 1.1x (paper 1.5x)", ap5.ACORN/ap5.Legacy)
	}
	// Network-wide ACORN wins.
	if r.TotalACORN <= r.TotalLegacy {
		t.Errorf("ACORN total %v not above legacy %v", r.TotalACORN, r.TotalLegacy)
	}
}

func TestFig11ACORNFindsBestCombo(t *testing.T) {
	r := RunFig11(1)
	best := 0.0
	for _, v := range r.Combos {
		if v > best {
			best = v
		}
	}
	// ACORN lands at (or above — it may also pick better channels) the
	// best width combo.
	if r.ACORN < 0.95*best {
		t.Errorf("ACORN %v below best manual combo %v", r.ACORN, best)
	}
	// And roughly doubles the aggressive all-40 configuration (paper 2×).
	if all40 := r.Combos["40,40,40"]; r.ACORN < 1.5*all40 {
		t.Errorf("ACORN %v vs all-40 %v: want ≥ 1.5x", r.ACORN, all40)
	}
	if r.ACORNWidths != "40,20,20" {
		t.Errorf("ACORN widths = %s, want 40,20,20", r.ACORNWidths)
	}
}

func TestTable3ACORNBeatsRandom(t *testing.T) {
	r := RunTable3(7)
	if len(r.BestRandomUDP) != 10 || len(r.BestRandomTCP) != 10 {
		t.Fatal("want the 10 best random configurations")
	}
	if r.ACORNUDP <= r.BestRandomUDP[0] {
		t.Errorf("ACORN UDP %v not above best random %v", r.ACORNUDP, r.BestRandomUDP[0])
	}
	if r.ACORNTCP <= r.BestRandomTCP[0] {
		t.Errorf("ACORN TCP %v not above best random %v", r.ACORNTCP, r.BestRandomTCP[0])
	}
	// Descending order.
	for i := 1; i < 10; i++ {
		if r.BestRandomUDP[i] > r.BestRandomUDP[i-1] {
			t.Error("random UDP list not descending")
		}
	}
	// TCP runs below UDP throughout.
	if r.ACORNTCP >= r.ACORNUDP {
		t.Error("TCP should run below UDP")
	}
}

func TestFig13MobilityShapes(t *testing.T) {
	away := RunFig13Away()
	if !away.DidSwitch || away.SwitchedTo != spectrum.Width20 {
		t.Fatal("walking away must trigger a fallback to 20 MHz")
	}
	if away.GainVsFixed < 1.5 {
		t.Errorf("post-switch gain over fixed 40 MHz = %v, want ≥ 1.5x", away.GainVsFixed)
	}
	toward := RunFig13Toward()
	if !toward.DidSwitch || toward.SwitchedTo != spectrum.Width40 {
		t.Fatal("approaching must trigger a switch to 40 MHz")
	}
	if toward.GainVsFixed < 1.2 {
		t.Errorf("post-switch gain over fixed 20 MHz = %v, want ≥ 1.2x", toward.GainVsFixed)
	}
}

func TestFig14ApproximationBound(t *testing.T) {
	r := RunFig14(3)
	if len(r.Points) != 27 {
		t.Fatalf("want 9 sets × 3 channel counts, got %d points", len(r.Points))
	}
	for _, p := range r.Points {
		if p.YStar <= 0 {
			t.Fatalf("set %d: nonpositive Y*", p.Set)
		}
		ratio := p.T / p.YStar
		// Δ = 2 ⇒ worst case 1/3 (allow a hair of evaluator jitter).
		if ratio < 1.0/3-0.02 {
			t.Errorf("set %d/%dch: ratio %v below the 1/(Δ+1) bound", p.Set, p.Channels, ratio)
		}
		if p.Channels == 6 && ratio < 0.9 {
			t.Errorf("set %d: with 6 channels ratio %v should approach 1", p.Set, ratio)
		}
	}
	// More channels never hurt on the same set.
	byset := map[int]map[int]float64{}
	for _, p := range r.Points {
		if byset[p.Set] == nil {
			byset[p.Set] = map[int]float64{}
		}
		byset[p.Set][p.Channels] = p.T
	}
	for set, m := range byset {
		if m[6] < m[2]-1 {
			t.Errorf("set %d: 6-channel throughput %v below 2-channel %v", set, m[6], m[2])
		}
	}
}

func TestFormattersProduceOutput(t *testing.T) {
	outputs := []string{
		RunFig5().Format(),
		RunTable1().Format(),
		RunFig6(1).Format(),
		RunFig8().Format(),
		RunFig9(1).Format(),
		RunFig10Topology1(1).Format(),
		RunFig11(1).Format(),
		RunTable3(1).Format(),
		RunFig13Away().Format(),
		RunFig14(1).Format(),
	}
	for i, out := range outputs {
		if len(out) < 40 || !strings.Contains(out, "#") {
			t.Errorf("formatter %d output suspicious: %q…", i, out[:min(len(out), 60)])
		}
	}
}

func TestFig12Trajectory(t *testing.T) {
	r := RunFig12()
	if len(r.TimeS) != len(r.X) || len(r.TimeS) < 10 {
		t.Fatalf("trajectory malformed: %d/%d points", len(r.TimeS), len(r.X))
	}
	// Monotone nondecreasing walk away from the AP.
	for i := 1; i < len(r.X); i++ {
		if r.X[i]+1e-9 < r.X[i-1] {
			t.Fatalf("walk-away trajectory moved backward at %v s", r.TimeS[i])
		}
	}
	// Crosses both room boundaries.
	if r.X[len(r.X)-1] <= r.RoomBoundaries[1] {
		t.Error("trajectory never reaches the far room")
	}
	if s := r.Format(); !strings.Contains(s, "room boundary") {
		t.Error("room annotations missing")
	}
}
