package experiments

import (
	"fmt"
	"math"
	"sort"

	"acorn/internal/baseline"
	"acorn/internal/core"
	"acorn/internal/spectrum"
	"acorn/internal/stats"
	"acorn/internal/wlan"
)

// --------------------------------------------------------------- Fig 10 --

// Fig10Cell is one AP's outcome under both schemes.
type Fig10Cell struct {
	APID string
	// ACORN and Legacy are the per-AP throughputs (Mbit/s); the
	// channels record the width decisions.
	ACORN, Legacy     float64
	ACORNCh, LegacyCh spectrum.Channel
	// ACORNClients and LegacyClients are the association groupings.
	ACORNClients, LegacyClients []string
}

// Fig10Result compares ACORN against the modified [17] on one topology.
type Fig10Result struct {
	Topology                string
	Cells                   []Fig10Cell
	TotalACORN, TotalLegacy float64
}

// runComparison executes ACORN and the legacy baseline on a network.
func runComparison(topology string, n *wlan.Network, clients []*wlan.Client, seed int64) Fig10Result {
	ctrl, err := core.NewController(n, seed)
	if err != nil {
		panic(err)
	}
	acornRep := ctrl.AutoConfigure(clients)
	acornCfg := ctrl.Config()

	legacyCfg := baseline.Configure(n, clients)
	legacyRep := n.Evaluate(legacyCfg)

	r := Fig10Result{Topology: topology, TotalACORN: acornRep.TotalUDP, TotalLegacy: legacyRep.TotalUDP}
	for _, ap := range n.APs {
		ac := acornRep.Cell(ap.ID)
		lc := legacyRep.Cell(ap.ID)
		r.Cells = append(r.Cells, Fig10Cell{
			APID:          ap.ID,
			ACORN:         ac.ThroughputUDP,
			Legacy:        lc.ThroughputUDP,
			ACORNCh:       acornCfg.Channels[ap.ID],
			LegacyCh:      legacyCfg.Channels[ap.ID],
			ACORNClients:  acornCfg.ClientsOf(ap.ID),
			LegacyClients: legacyCfg.ClientsOf(ap.ID),
		})
	}
	return r
}

// RunFig10Topology1 regenerates Fig 10(a): the sparse 2-AP deployment where
// ACORN's per-AP gain on the poor cell is large (paper: 4×).
func RunFig10Topology1(seed int64) Fig10Result {
	n, clients := Topology1()
	return runComparison("Topology 1", n, clients, seed)
}

// RunFig10Topology2 regenerates Fig 10(b): the 5-AP deployment (paper
// gains: 6× on AP4, 1.5× on AP5, 1.8× on AP3).
func RunFig10Topology2(seed int64) Fig10Result {
	n, clients := Topology2()
	return runComparison("Topology 2", n, clients, seed)
}

// Format renders the per-AP table.
func (r Fig10Result) Format() string {
	rows := make([][]string, 0, len(r.Cells)+1)
	for _, c := range r.Cells {
		gain := "-"
		if c.Legacy > 0 {
			gain = fmt.Sprintf("%.1fx", c.ACORN/c.Legacy)
		} else if c.ACORN > 0 {
			gain = "inf"
		}
		rows = append(rows, []string{
			c.APID,
			fmt.Sprintf("%.2f", c.ACORN), c.ACORNCh.String(), fmt.Sprint(c.ACORNClients),
			fmt.Sprintf("%.2f", c.Legacy), c.LegacyCh.String(), fmt.Sprint(c.LegacyClients),
			gain,
		})
	}
	rows = append(rows, []string{"Total",
		fmt.Sprintf("%.2f", r.TotalACORN), "", "",
		fmt.Sprintf("%.2f", r.TotalLegacy), "", "",
		fmt.Sprintf("%.1fx", r.TotalACORN/r.TotalLegacy)})
	return FormatTable("Fig 10 ("+r.Topology+"): per-AP throughput, ACORN vs [17]",
		[]string{"AP", "ACORN", "ch", "clients", "[17]", "ch", "clients", "gain"}, rows)
}

// --------------------------------------------------------------- Fig 11 --

// Fig11Result compares ACORN's dense-deployment allocation against every
// fixed width combination of Fig 11.
type Fig11Result struct {
	// Combos maps "X,Y,Z" width labels to total network throughput.
	Combos map[string]float64
	// ACORN is the throughput of ACORN's own allocation, and ACORNWidths
	// the widths it picked per AP (in AP order).
	ACORN       float64
	ACORNWidths string
}

// RunFig11 regenerates Fig 11: three contending APs, four 20 MHz channels.
// Each width combo is placed by the greedy least-interference scan a legacy
// controller would run; ACORN must find the best combo — giving the bonded
// channel to the AP with the good client while isolating the other two on
// the remaining 20 MHz channels.
func RunFig11(seed int64) Fig11Result {
	n, clients := DenseTriangle()
	ctrl, err := core.NewController(n, seed)
	if err != nil {
		panic(err)
	}
	rep := ctrl.AutoConfigure(clients)
	cfg := ctrl.Config()
	widths := ""
	for i, ap := range n.APs {
		if i > 0 {
			widths += ","
		}
		widths += fmt.Sprintf("%d", int(cfg.Channels[ap.ID].Width))
	}

	// Fixed combos with the natural association (each client to its
	// nearest AP) and the best channel placement per combo.
	assoc := wlan.NewConfig()
	for _, c := range clients {
		aps := n.APsInRange(c)
		if len(aps) > 0 {
			assoc.SetAssoc(c.ID, aps[0].ID)
		}
	}
	combos := map[string][]spectrum.Width{
		"40,40,40": {spectrum.Width40, spectrum.Width40, spectrum.Width40},
		"40,20,20": {spectrum.Width40, spectrum.Width20, spectrum.Width20},
		"20,40,20": {spectrum.Width20, spectrum.Width40, spectrum.Width20},
		"20,20,40": {spectrum.Width20, spectrum.Width20, spectrum.Width40},
	}
	r := Fig11Result{Combos: map[string]float64{}, ACORN: rep.TotalUDP, ACORNWidths: widths}
	for label, ws := range combos {
		r.Combos[label] = greedyPlacementThroughput(n, assoc, ws)
	}
	return r
}

// greedyPlacementThroughput places channels for a fixed width assignment
// the way a legacy controller would: AP by AP, each picking the channel of
// its width with the least sensed noise-plus-interference (the aggressive
// strategy of the modified [17]). With all three APs forced to 40 MHz and
// only two bonded channels available, the third AP lands on the good AP's
// channel — the congestion the paper's Fig 11 demonstrates.
func greedyPlacementThroughput(n *wlan.Network, assoc *wlan.Config, widths []spectrum.Width) float64 {
	cfg := assoc.Clone()
	for i, ap := range n.APs {
		var options []spectrum.Channel
		if widths[i] == spectrum.Width40 {
			options = n.Band.Channels40()
		} else {
			options = n.Band.Channels20()
		}
		bestCh, bestCost := options[0], math.Inf(1)
		for _, ch := range options {
			cost := baseline.InterferenceCost(n, cfg, ap, ch)
			if cost < bestCost {
				bestCost, bestCh = cost, ch
			}
		}
		cfg.Channels[ap.ID] = bestCh
	}
	return n.Evaluate(cfg).TotalUDP
}

// Format renders the comparison.
func (r Fig11Result) Format() string {
	labels := make([]string, 0, len(r.Combos))
	for l := range r.Combos {
		labels = append(labels, l)
	}
	sort.Strings(labels)
	rows := make([][]string, 0, len(labels)+1)
	for _, l := range labels {
		rows = append(rows, []string{l, fmt.Sprintf("%.2f", r.Combos[l])})
	}
	rows = append(rows, []string{"ACORN (" + r.ACORNWidths + ")", fmt.Sprintf("%.2f", r.ACORN)})
	return FormatTable("Fig 11: dense 3-AP deployment, 4 channels — width combos vs ACORN",
		[]string{"widths X,Y,Z (MHz)", "total throughput (Mbit/s)"}, rows)
}

// -------------------------------------------------------------- Table 3 --

// Table3Result compares ACORN with the 10 best of 50 random manual
// configurations, under UDP and TCP.
type Table3Result struct {
	ACORNUDP, ACORNTCP float64
	// BestRandomUDP and BestRandomTCP are the 10 best random totals in
	// descending order.
	BestRandomUDP, BestRandomTCP []float64
}

// RunTable3 regenerates Table 3 on the random enterprise topology.
func RunTable3(seed int64) Table3Result {
	n, clients := RandomEnterprise(seed, 6, 14)
	ctrl, err := core.NewController(n, seed)
	if err != nil {
		panic(err)
	}
	rep := ctrl.AutoConfigure(clients)

	rng := stats.NewRand(seed + 1000)
	var udps, tcps []float64
	for i := 0; i < 50; i++ {
		cfg := baseline.RandomConfig(n, rng)
		rr := n.Evaluate(cfg)
		udps = append(udps, rr.TotalUDP)
		tcps = append(tcps, rr.TotalTCP)
	}
	sort.Sort(sort.Reverse(sort.Float64Slice(udps)))
	sort.Sort(sort.Reverse(sort.Float64Slice(tcps)))
	return Table3Result{
		ACORNUDP:      rep.TotalUDP,
		ACORNTCP:      rep.TotalTCP,
		BestRandomUDP: udps[:10],
		BestRandomTCP: tcps[:10],
	}
}

// Format renders the table.
func (r Table3Result) Format() string {
	fmtList := func(xs []float64) string {
		s := ""
		for i, x := range xs {
			if i > 0 {
				s += ", "
			}
			s += fmt.Sprintf("%.1f", x)
		}
		return s
	}
	return FormatTable("Table 3: ACORN vs 10 best of 50 random configurations (Mbit/s)",
		[]string{"traffic", "ACORN", "best random configs (descending)"},
		[][]string{
			{"UDP", fmt.Sprintf("%.1f", r.ACORNUDP), fmtList(r.BestRandomUDP)},
			{"TCP", fmt.Sprintf("%.1f", r.ACORNTCP), fmtList(r.BestRandomTCP)},
		})
}

// --------------------------------------------------------------- Fig 14 --

// Fig14Point is one (Y*, T) pair of the approximation-ratio experiment.
type Fig14Point struct {
	Set      int
	Channels int
	// YStar is the loose upper bound Σ X_isol; T is ACORN's achieved
	// total throughput.
	YStar, T float64
}

// Fig14Result is the full experiment: 9 AP sets × {2, 4, 6} channels.
type Fig14Result struct {
	Points []Fig14Point
}

// RunFig14 regenerates Fig 14. With Δ = 2 the worst-case guarantee is
// T ≥ Y*/3; with 6 channels ACORN should isolate everyone and approach Y*.
func RunFig14(seed int64) Fig14Result {
	var r Fig14Result
	for set := 0; set < 9; set++ {
		n, clients := ContendingTriple(seed + int64(set)*17)
		for _, nch := range []int{2, 4, 6} {
			n.Band = spectrum.DefaultBand5GHz().Subset(nch)
			ctrl, err := core.NewController(n, seed+int64(set))
			if err != nil {
				panic(err)
			}
			rep := ctrl.AutoConfigure(clients)
			// Y* uses the full band's best isolated widths (the
			// theoretical optimum of total isolation).
			cfg := ctrl.Config()
			full := spectrum.DefaultBand5GHz()
			saved := n.Band
			n.Band = full
			ystar := n.UpperBound(cfg)
			n.Band = saved
			r.Points = append(r.Points, Fig14Point{
				Set: set + 1, Channels: nch, YStar: ystar, T: rep.TotalUDP,
			})
		}
	}
	return r
}

// Format renders the scatter rows.
func (r Fig14Result) Format() string {
	rows := make([][]string, 0, len(r.Points))
	for _, p := range r.Points {
		ratio := 0.0
		if p.YStar > 0 {
			ratio = p.T / p.YStar
		}
		rows = append(rows, []string{
			fmt.Sprintf("%d", p.Set), fmt.Sprintf("%d", p.Channels),
			fmt.Sprintf("%.1f", p.YStar), fmt.Sprintf("%.1f", p.T),
			fmt.Sprintf("%.2f", ratio),
		})
	}
	return FormatTable("Fig 14: approximation in practice — Y* vs achieved T (Δ=2 ⇒ bound T ≥ Y*/3)",
		[]string{"set", "channels", "Y*", "T", "T/Y*"}, rows)
}
