package experiments

import (
	"fmt"

	"acorn/internal/mac"
	"acorn/internal/phy"
	"acorn/internal/ratecontrol"
	"acorn/internal/rf"
	"acorn/internal/spectrum"
	"acorn/internal/stats"
	"acorn/internal/units"
	"acorn/internal/wlan"
)

// ---------------------------------------------------------------- Fig 6 --

// Fig6Link is one of the 24 testbed links with its throughput outcomes.
type Fig6Link struct {
	Name  string
	SNR20 float64 // per-subcarrier SNR at 20 MHz (dB)
	// UDP/TCP throughputs under auto rate control at each width (Mbit/s).
	UDP20, UDP40, TCP20, TCP40 float64
	// Optimal fixed MCS indices at each width (Fig 6b).
	OptMCS20, OptMCS40   int
	OptMode20, OptMode40 phy.MIMOMode
}

// Fig6Result aggregates the Fig 6 link study.
type Fig6Result struct {
	Links []Fig6Link
	// Frac20WinsUDP and Frac20WinsTCP are the fractions of links where
	// the plain 20 MHz channel out-throughputs CB (paper: ≈10% UDP,
	// ≈30% TCP, ≈20% overall).
	Frac20WinsUDP, Frac20WinsTCP float64
	// FracBelow2x is the fraction of links with UDP40 < 2·UDP20 (paper:
	// the vast majority of points lie right of y = 2x).
	FracBelow2x float64
}

// fig6SNRs spans the link-quality range of the 24 testbed links, weighted
// toward usable links with a poor-quality tail as in the paper (SNR < 6 dB
// trials are the ones where 20 MHz wins).
func fig6SNRs(seed int64) []float64 {
	rng := stats.NewRand(seed)
	snrs := make([]float64, 0, 24)
	for i := 0; i < 24; i++ {
		var snr float64
		switch {
		case i < 6: // poor tail
			snr = -1 + rng.Float64()*7
		case i < 14: // mid range
			snr = 6 + rng.Float64()*10
		default: // strong links
			snr = 16 + rng.Float64()*20
		}
		snrs = append(snrs, snr)
	}
	return snrs
}

// RunFig6 regenerates Fig 6: per-link achievable throughput with rate
// control at both widths (a) and the optimal fixed MCS comparison (b).
func RunFig6(seed int64) Fig6Result {
	var r Fig6Result
	for i, snr := range fig6SNRs(seed) {
		l := Fig6Link{Name: fmt.Sprintf("L%02d", i+1), SNR20: snr}
		sel20 := ratecontrol.Best(units.DB(snr), spectrum.Width20, phy.DefaultPacketSizeBytes)
		sel40 := ratecontrol.Best(units.DB(snr).Minus(phy.BondingSNRPenalty()), spectrum.Width40, phy.DefaultPacketSizeBytes)
		l.UDP20, l.UDP40 = sel20.GoodputMbps, sel40.GoodputMbps
		l.TCP20 = sel20.GoodputMbps * mac.TCPEfficiency(sel20.PER)
		l.TCP40 = sel40.GoodputMbps * mac.TCPEfficiency(sel40.PER)
		b20, b40 := ratecontrol.OptimalFixedMCS(units.DB(snr), phy.DefaultPacketSizeBytes)
		l.OptMCS20, l.OptMCS40 = b20.MCS.Index, b40.MCS.Index
		l.OptMode20, l.OptMode40 = b20.Mode, b40.Mode
		r.Links = append(r.Links, l)
	}
	var winsUDP, winsTCP, below2x int
	for _, l := range r.Links {
		if l.UDP20 > l.UDP40 {
			winsUDP++
		}
		if l.TCP20 > l.TCP40 {
			winsTCP++
		}
		if l.UDP40 < 2*l.UDP20 {
			below2x++
		}
	}
	n := float64(len(r.Links))
	r.Frac20WinsUDP = float64(winsUDP) / n
	r.Frac20WinsTCP = float64(winsTCP) / n
	r.FracBelow2x = float64(below2x) / n
	return r
}

// Format renders both panels.
func (r Fig6Result) Format() string {
	rows := make([][]string, 0, len(r.Links))
	for _, l := range r.Links {
		rows = append(rows, []string{
			l.Name, fmt.Sprintf("%.1f", l.SNR20),
			fmt.Sprintf("%.1f", l.UDP20), fmt.Sprintf("%.1f", l.UDP40),
			fmt.Sprintf("%.1f", l.TCP20), fmt.Sprintf("%.1f", l.TCP40),
			fmt.Sprintf("MCS%d/%v", l.OptMCS20, l.OptMode20),
			fmt.Sprintf("MCS%d/%v", l.OptMCS40, l.OptMode40),
		})
	}
	s := FormatTable("Fig 6: throughput and optimal MCS per link, 20 vs 40 MHz",
		[]string{"link", "SNR20", "UDP20", "UDP40", "TCP20", "TCP40", "optMCS20", "optMCS40"}, rows)
	s += fmt.Sprintf("20 MHz wins: UDP %.0f%%, TCP %.0f%% (paper ≈10%%, ≈30%%); UDP40 < 2×UDP20 on %.0f%% of links\n",
		100*r.Frac20WinsUDP, 100*r.Frac20WinsTCP, 100*r.FracBelow2x)
	return s
}

// ---------------------------------------------------------------- Fig 8 --

// Fig8Result measures link-quality flatness across channels of the same
// width at MCS 15.
type Fig8Result struct {
	// ChannelIndex20 and PER20[link] index PER per 20 MHz channel; same
	// for the 40 MHz channels.
	ChannelIndex20 []float64
	ChannelIndex40 []float64
	PER20, PER40   map[string][]float64
	// MaxSpread20 and MaxSpread40 are the largest per-link PER ranges
	// observed across channels — "negligible" is the claim.
	MaxSpread20, MaxSpread40 float64
}

// RunFig8 regenerates Fig 8: PER on every available channel at the maximum
// rate (MCS 15) for three representative links. Link qualities are pinned
// inside the MCS 15 waterfall so the PER is informative (not 0 or 1 on
// every channel).
func RunFig8() Fig8Result {
	ap := &wlan.AP{ID: "AP", Pos: rf.Point{X: 0, Y: 0}, TxPower: 18}
	clients := []*wlan.Client{
		{ID: "Link1", Pos: rf.Point{X: 4, Y: 2}},
		{ID: "Link2", Pos: rf.Point{X: 7, Y: -3}},
		{ID: "Link3", Pos: rf.Point{X: 11, Y: 5}},
	}
	n := wlan.NewNetwork([]*wlan.AP{ap}, clients)
	// Calibrate obstruction losses so the links land at SNRs where MCS 15
	// is partially reliable, emulating the paper's representative links.
	targets := map[string]float64{"Link1": 16.2, "Link2": 16.8, "Link3": 17.6}
	for _, c := range clients {
		base := float64(n.ClientSNR20(ap, c))
		c.ExtraLoss = map[string]units.DB{"AP": units.DB(base - targets[c.ID])}
	}
	// MIMO flattens frequency selectivity; the per-channel jitter of the
	// testbed links is a fraction of a dB.
	n.JitterDB = 0.15
	mcs15, _ := phy.MCSByIndex(phy.MaxMCSIndex)
	r := Fig8Result{PER20: map[string][]float64{}, PER40: map[string][]float64{}}
	for i, ch := range n.Band.Channels20() {
		r.ChannelIndex20 = append(r.ChannelIndex20, float64(i+1))
		for _, c := range clients {
			sel := ratecontrol.Evaluate(mcs15, n.ClientSNR(ap, c, ch), ch.Width, n.PacketBytes)
			r.PER20[c.ID] = append(r.PER20[c.ID], sel.PER)
		}
	}
	// Recalibrate for the 40 MHz panel: compensate the bonding penalty so
	// the links sit in the informative PER region at this width too. The
	// claim under test is flatness *across channels of one width*; the
	// analytic waterfall is far steeper than hardware, so without this
	// the wider panel would pin at PER 1 and show nothing.
	for _, c := range clients {
		delete(c.ExtraLoss, "AP")
		base := float64(n.ClientSNR20(ap, c))
		c.ExtraLoss["AP"] = units.DB(base - targets[c.ID] - float64(phy.BondingSNRPenalty()))
	}
	for i, ch := range n.Band.Channels40() {
		r.ChannelIndex40 = append(r.ChannelIndex40, float64(i+1))
		for _, c := range clients {
			sel := ratecontrol.Evaluate(mcs15, n.ClientSNR(ap, c, ch), ch.Width, n.PacketBytes)
			r.PER40[c.ID] = append(r.PER40[c.ID], sel.PER)
		}
	}
	spread := func(m map[string][]float64) float64 {
		worst := 0.0
		for _, series := range m {
			if len(series) == 0 {
				continue
			}
			if s := stats.Max(series) - stats.Min(series); s > worst {
				worst = s
			}
		}
		return worst
	}
	r.MaxSpread20 = spread(r.PER20)
	r.MaxSpread40 = spread(r.PER40)
	return r
}

// Format renders both panels.
func (r Fig8Result) Format() string {
	mk := func(title string, xs []float64, m map[string][]float64) string {
		var series []Series
		for _, name := range []string{"Link1", "Link2", "Link3"} {
			series = append(series, Series{Name: name, X: xs, Y: m[name]})
		}
		return FormatSeries(title, "channel#", series)
	}
	s := mk("Fig 8a: PER across 20 MHz channels (MCS 15)", r.ChannelIndex20, r.PER20)
	s += mk("Fig 8b: PER across 40 MHz channels (MCS 15)", r.ChannelIndex40, r.PER40)
	s += fmt.Sprintf("max per-link PER spread: 20 MHz %.3f, 40 MHz %.3f (negligible)\n",
		r.MaxSpread20, r.MaxSpread40)
	return s
}
