package experiments

import (
	"fmt"
	"time"

	"acorn/internal/assoctrace"
	"acorn/internal/mobility"
	"acorn/internal/spectrum"
	"acorn/internal/stats"
)

// ---------------------------------------------------------------- Fig 9 --

// Fig9Result is the association-duration CDF study that sets the allocation
// period T.
type Fig9Result struct {
	// MedianMinutes and P90Minutes summarize the duration distribution
	// (paper: median ≈31 min, >90% under 40 min).
	MedianMinutes, P90Minutes float64
	// FracUnder40Min is the CDF at 40 minutes.
	FracUnder40Min float64
	// RecommendedPeriod is the derived allocation periodicity (30 min).
	RecommendedPeriod time.Duration
	// CDFX (seconds) and CDFY are plot points of the ECDF.
	CDFX, CDFY []float64
	Sessions   int
}

// RunFig9 regenerates Fig 9 from the synthetic CRAWDAD-calibrated trace.
func RunFig9(seed int64) Fig9Result {
	gen := assoctrace.DefaultGenerator()
	// A slice of the 3-year trace is statistically sufficient for the
	// duration marginals and keeps runtime bounded.
	gen.Span = 60 * 24 * time.Hour
	recs := gen.Generate(seed)
	durations := assoctrace.Durations(recs)
	ecdf := stats.NewECDF(durations)
	xs, ys := ecdf.Points(64)
	return Fig9Result{
		MedianMinutes:     stats.Median(durations) / 60,
		P90Minutes:        stats.Percentile(durations, 90) / 60,
		FracUnder40Min:    ecdf.At(40 * 60),
		RecommendedPeriod: assoctrace.RecommendedPeriod(recs),
		CDFX:              xs,
		CDFY:              ys,
		Sessions:          len(recs),
	}
}

// Format renders the CDF summary.
func (r Fig9Result) Format() string {
	s := FormatSeries("Fig 9: CDF of user association durations", "seconds",
		[]Series{{Name: "ECDF", X: r.CDFX, Y: r.CDFY}})
	s += fmt.Sprintf("sessions %d; median %.1f min (paper ≈31), P90 %.1f min, %.0f%% under 40 min (paper >90%%); period → %v\n",
		r.Sessions, r.MedianMinutes, r.P90Minutes, 100*r.FracUnder40Min, r.RecommendedPeriod)
	return s
}

// ----------------------------------------------------------- Figs 12/13 --

// Fig13Result is one mobility run: ACORN's dynamic width against a fixed
// width baseline.
type Fig13Result struct {
	Direction string
	Samples   []mobility.Sample
	// SwitchAt is when ACORN changed width (Fig 13a: to 20 MHz around
	// t=30 s walking away; Fig 13b: to 40 MHz around t=10 s approaching).
	SwitchAt   time.Duration
	SwitchedTo spectrum.Width
	DidSwitch  bool
	// GainVsFixed is the mean ACORN throughput over the mean fixed-width
	// baseline after the switch (paper: ≈10× over fixed 40 MHz when
	// walking away).
	GainVsFixed float64
}

// RunFig13Away regenerates the walk-away experiment against a fixed 40 MHz
// configuration.
func RunFig13Away() Fig13Result {
	dur := 50 * time.Second
	sc := mobility.DefaultScenario(mobility.WalkAway(dur), dur)
	samples := mobility.Run(sc)
	at, ok := mobility.SwitchTime(samples, spectrum.Width20)
	r := Fig13Result{Direction: "away", Samples: samples, SwitchAt: at, SwitchedTo: spectrum.Width20, DidSwitch: ok}
	r.GainVsFixed = postSwitchGain(samples, at, func(s mobility.Sample) float64 { return s.Fixed40 })
	return r
}

// RunFig13Toward regenerates the walk-toward experiment against a fixed
// 20 MHz configuration.
func RunFig13Toward() Fig13Result {
	dur := 35 * time.Second
	sc := mobility.DefaultScenario(mobility.WalkToward(dur), dur)
	samples := mobility.Run(sc)
	at, ok := mobility.SwitchTime(samples, spectrum.Width40)
	r := Fig13Result{Direction: "toward", Samples: samples, SwitchAt: at, SwitchedTo: spectrum.Width40, DidSwitch: ok}
	r.GainVsFixed = postSwitchGain(samples, at, func(s mobility.Sample) float64 { return s.Fixed20 })
	return r
}

func postSwitchGain(samples []mobility.Sample, at time.Duration, fixed func(mobility.Sample) float64) float64 {
	var acorn, base float64
	n := 0
	for _, s := range samples {
		if s.At < at {
			continue
		}
		acorn += s.ACORN
		base += fixed(s)
		n++
	}
	if n == 0 || base == 0 {
		return 0
	}
	return acorn / base
}

// Format renders the time series.
func (r Fig13Result) Format() string {
	xs := make([]float64, len(r.Samples))
	acorn := make([]float64, len(r.Samples))
	f40 := make([]float64, len(r.Samples))
	f20 := make([]float64, len(r.Samples))
	for i, s := range r.Samples {
		xs[i] = s.At.Seconds()
		acorn[i] = s.ACORN
		f40[i] = s.Fixed40
		f20[i] = s.Fixed20
	}
	s := FormatSeries(fmt.Sprintf("Fig 13 (%s): cell throughput over time", r.Direction), "t(s)",
		[]Series{
			{Name: "ACORN", X: xs, Y: acorn},
			{Name: "fixed-40MHz", X: xs, Y: f40},
			{Name: "fixed-20MHz", X: xs, Y: f20},
		})
	if r.DidSwitch {
		s += fmt.Sprintf("ACORN switched to %v at t=%v; post-switch gain vs fixed baseline %.1fx\n",
			r.SwitchedTo, r.SwitchAt, r.GainVsFixed)
	} else {
		s += "ACORN did not switch width\n"
	}
	return s
}

// ---------------------------------------------------------------- Fig 12 --

// Fig12Result is the mobility floor plan: the walker's position over time
// with the room boundaries that add wall loss. The paper's Fig 12 is a
// diagram of this trajectory; the reproduction renders it as a time series
// with room annotations.
type Fig12Result struct {
	// TimeS and X are the walker's position samples.
	TimeS, X []float64
	// RoomBoundaries are the x positions where wall loss steps up.
	RoomBoundaries []float64
	// WallLossDB are the cumulative wall losses past each boundary.
	WallLossDB []float64
}

// RunFig12 renders the walk-away trajectory of Figs 12/13.
func RunFig12() Fig12Result {
	dur := 50 * time.Second
	path := mobility.WalkAway(dur)
	r := Fig12Result{
		RoomBoundaries: []float64{20, 40},
		WallLossDB:     []float64{12, 24},
	}
	for t := time.Duration(0); t <= dur; t += 2 * time.Second {
		p := path.PositionAt(t)
		r.TimeS = append(r.TimeS, t.Seconds())
		r.X = append(r.X, p.X)
	}
	return r
}

// Format renders the trajectory with room annotations.
func (r Fig12Result) Format() string {
	s := FormatSeries("Fig 12: mobile client trajectory (walk-away)", "t(s)",
		[]Series{{Name: "x(m)", X: r.TimeS, Y: r.X}})
	for i, b := range r.RoomBoundaries {
		s += fmt.Sprintf("room boundary at x=%.0f m (+%.0f dB wall loss beyond)\n", b, r.WallLossDB[i])
	}
	return s
}
