// Package geo provides a uniform-grid spatial index over points in the
// plane. It exists for one job: turning the O(P²) pair scans of the
// contention-graph builders into neighborhood queries with a conservative
// cutoff radius (DESIGN.md §15). The index is deliberately simple — points
// are bucketed by floor-divided cell coordinates, and a range query visits
// the cell block covering the query disc — because correctness of the
// consumers rests only on VisitWithin never missing a point inside the
// radius, never on it being minimal.
//
// Negative coordinates are first-class: cell coordinates are signed
// (math.Floor of v/cell) and packed into a single uint64 bucket key. Any
// query or point set the integer cell arithmetic cannot represent safely —
// non-finite values, coordinates beyond the int32 cell range, an infinite
// radius, or a query block larger than the point set — degrades to an exact
// linear scan over every stored point, so the visit contract holds
// unconditionally.
package geo

import "math"

// Grid is a uniform-grid spatial index. Build it with NewGrid, populate it
// with Add, then query with VisitWithin. Not safe for concurrent mutation;
// concurrent VisitWithin calls on an immutable grid are safe.
type Grid struct {
	cell float64

	// Flat point storage; buckets hold indices into it. The flat arrays
	// double as the fallback scan order, so degraded queries visit points
	// in insertion order.
	ids []int32
	xs  []float64
	ys  []float64

	buckets map[uint64][]int32

	// Occupied cell bounding box, for clamping query blocks.
	minCX, maxCX int32
	minCY, maxCY int32
}

// maxCell bounds |cell coordinate| so the int32 packing in cellKey cannot
// overflow; coordinates outside are handled by the linear-scan fallback.
const maxCell = math.MaxInt32 - 1

// NewGrid creates an empty grid with the given cell size in the points'
// units. A non-positive or non-finite cell size is clamped to 1.
func NewGrid(cellSize float64) *Grid {
	if !(cellSize > 0) || math.IsInf(cellSize, 1) {
		cellSize = 1
	}
	return &Grid{
		cell:    cellSize,
		buckets: make(map[uint64][]int32),
		minCX:   math.MaxInt32, maxCX: math.MinInt32,
		minCY: math.MaxInt32, maxCY: math.MinInt32,
	}
}

// Len returns the number of stored points.
func (g *Grid) Len() int { return len(g.ids) }

// CellCoord maps one coordinate to its signed cell index. Values whose cell
// falls outside the packable int32 range (including NaN/Inf) report
// ok=false; Add then stores the point outside the buckets, reachable only
// by the fallback scan.
func CellCoord(v, cell float64) (int32, bool) {
	c := math.Floor(v / cell)
	if math.IsNaN(c) || c < -maxCell || c > maxCell {
		return 0, false
	}
	return int32(c), true
}

// CellKey packs a signed cell coordinate pair into one bucket key. Distinct
// pairs map to distinct keys (two int32 halves, no hashing).
func CellKey(cx, cy int32) uint64 {
	return uint64(uint32(cx))<<32 | uint64(uint32(cy))
}

// Add stores a point. The id is the caller's tag, returned verbatim by
// VisitWithin; duplicate ids and duplicate positions are allowed.
func (g *Grid) Add(id int32, x, y float64) {
	slot := int32(len(g.ids))
	g.ids = append(g.ids, id)
	g.xs = append(g.xs, x)
	g.ys = append(g.ys, y)
	cx, okX := CellCoord(x, g.cell)
	cy, okY := CellCoord(y, g.cell)
	if !okX || !okY {
		// Unbucketable point (non-finite or astronomically far): every
		// query must degrade to the linear scan to keep the visit
		// contract, which the unbounded box below forces.
		g.minCX, g.maxCX = math.MinInt32, math.MaxInt32
		g.minCY, g.maxCY = math.MinInt32, math.MaxInt32
		return
	}
	key := CellKey(cx, cy)
	g.buckets[key] = append(g.buckets[key], slot)
	if cx < g.minCX {
		g.minCX = cx
	}
	if cx > g.maxCX {
		g.maxCX = cx
	}
	if cy < g.minCY {
		g.minCY = cy
	}
	if cy > g.maxCY {
		g.maxCY = cy
	}
}

// VisitWithin calls visit for every stored point whose Euclidean distance
// to (x, y) is at most r (squared-distance comparison; callers that derive
// r from float arithmetic should carry their own relative margin, as
// rf.CarrierSenseRange does). Points are visited at most once each, in a
// deterministic order for a given grid. Queries the cell arithmetic cannot
// bound — and any grid holding an unbucketable point — fall back to an
// exact scan of all points.
func (g *Grid) VisitWithin(x, y, r float64, visit func(id int32)) {
	if len(g.ids) == 0 {
		return
	}
	if !(r >= 0) {
		return // NaN or negative radius: the disc is empty
	}
	r2 := r * r
	c0x, ok1 := CellCoord(x-r, g.cell)
	c1x, ok2 := CellCoord(x+r, g.cell)
	c0y, ok3 := CellCoord(y-r, g.cell)
	c1y, ok4 := CellCoord(y+r, g.cell)
	if !ok1 || !ok2 || !ok3 || !ok4 || g.minCX > g.maxCX {
		g.scanAll(x, y, r2, visit)
		return
	}
	// Clamp the block to occupied cells; a block no smaller than the point
	// count would walk more buckets than points, so scan instead.
	c0x, c1x = clampRange(c0x, c1x, g.minCX, g.maxCX)
	c0y, c1y = clampRange(c0y, c1y, g.minCY, g.maxCY)
	if c0x > c1x || c0y > c1y {
		return // the disc misses every occupied cell
	}
	cells := (int64(c1x) - int64(c0x) + 1) * (int64(c1y) - int64(c0y) + 1)
	if cells > int64(len(g.ids)) {
		g.scanAll(x, y, r2, visit)
		return
	}
	for cx := c0x; ; cx++ {
		for cy := c0y; ; cy++ {
			for _, slot := range g.buckets[CellKey(cx, cy)] {
				dx, dy := g.xs[slot]-x, g.ys[slot]-y
				if dx*dx+dy*dy <= r2 {
					visit(g.ids[slot])
				}
			}
			if cy == c1y {
				break
			}
		}
		if cx == c1x {
			break
		}
	}
}

func (g *Grid) scanAll(x, y, r2 float64, visit func(id int32)) {
	for slot := range g.ids {
		dx, dy := g.xs[slot]-x, g.ys[slot]-y
		if dx*dx+dy*dy <= r2 {
			visit(g.ids[slot])
		}
	}
}

func clampRange(lo, hi, min, max int32) (int32, int32) {
	if lo < min {
		lo = min
	}
	if hi > max {
		hi = max
	}
	return lo, hi
}
