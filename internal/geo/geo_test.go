package geo

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

// bruteWithin is the oracle: an exact scan with the same squared-distance
// comparison VisitWithin uses.
func bruteWithin(ids []int32, xs, ys []float64, x, y, r float64, out map[int32]int) {
	r2 := r * r
	for i := range ids {
		dx, dy := xs[i]-x, ys[i]-y
		if dx*dx+dy*dy <= r2 {
			out[ids[i]]++
		}
	}
}

func collect(g *Grid, x, y, r float64) map[int32]int {
	got := map[int32]int{}
	g.VisitWithin(x, y, r, func(id int32) { got[id]++ })
	return got
}

func sameVisits(t *testing.T, got, want map[int32]int, ctx string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: visited %d distinct ids, oracle found %d", ctx, len(got), len(want))
	}
	for id, n := range want {
		if got[id] != n {
			t.Fatalf("%s: id %d visited %d times, oracle says %d", ctx, id, got[id], n)
		}
	}
}

// TestVisitWithinMatchesBruteForce drives random point sets — including
// negative coordinates and points landing exactly on cell boundaries —
// against the exact-scan oracle over a spread of cell sizes and radii.
func TestVisitWithinMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 60; trial++ {
		cell := []float64{0.5, 1, 7.3, 60}[trial%4]
		g := NewGrid(cell)
		n := rng.Intn(80) + 1
		ids := make([]int32, n)
		xs, ys := make([]float64, n), make([]float64, n)
		for i := 0; i < n; i++ {
			ids[i] = int32(i % 13) // duplicate ids on purpose
			xs[i] = (rng.Float64() - 0.5) * 400
			ys[i] = (rng.Float64() - 0.5) * 400
			if i%5 == 0 {
				xs[i] = math.Trunc(xs[i]/cell) * cell // on a cell boundary
			}
			g.Add(ids[i], xs[i], ys[i])
		}
		for q := 0; q < 20; q++ {
			x := (rng.Float64() - 0.5) * 500
			y := (rng.Float64() - 0.5) * 500
			r := rng.Float64() * 120
			want := map[int32]int{}
			bruteWithin(ids, xs, ys, x, y, r, want)
			sameVisits(t, collect(g, x, y, r), want, "random trial")
		}
	}
}

// TestVisitWithinDegenerate covers the fallback paths: infinite radius,
// zero radius on coincident points, NaN queries, unbucketable points, and
// an empty grid.
func TestVisitWithinDegenerate(t *testing.T) {
	g := NewGrid(10)
	for i := int32(0); i < 5; i++ {
		g.Add(i, -3.25, -3.25) // all points coincident, negative coords
	}
	if got := collect(g, -3.25, -3.25, 0); len(got) != 5 {
		t.Fatalf("zero-radius query on coincident points visited %d ids, want 5", len(got))
	}
	if got := collect(g, 1e9, -1e9, math.Inf(1)); len(got) != 5 {
		t.Fatalf("infinite-radius query visited %d ids, want 5", len(got))
	}
	if got := collect(g, math.NaN(), 0, 5); len(got) != 0 {
		t.Fatalf("NaN query visited %d ids, want 0", len(got))
	}
	if got := collect(g, 0, 0, math.NaN()); len(got) != 0 {
		t.Fatalf("NaN radius visited %d ids, want 0", len(got))
	}

	// A point beyond the packable cell range poisons the box and forces
	// exact scans — which must still find everything.
	g.Add(99, 1e18, 0)
	if got := collect(g, -3.25, -3.25, 1); len(got) != 5 {
		t.Fatalf("post-poison near query visited %d ids, want 5", len(got))
	}
	if got := collect(g, 1e18, 0, 1); got[99] != 1 {
		t.Fatalf("far point not reachable after poisoning: %v", got)
	}

	empty := NewGrid(0) // non-positive cell clamps, stays usable
	if got := collect(empty, 0, 0, 100); len(got) != 0 {
		t.Fatalf("empty grid visited %d ids", len(got))
	}
}

// TestCellKeyDistinct pins the packing: distinct cell coordinate pairs map
// to distinct keys across the signed range.
func TestCellKeyDistinct(t *testing.T) {
	coords := []int32{math.MinInt32 + 1, -maxCell, -65536, -1, 0, 1, 65536, maxCell}
	seen := map[uint64][2]int32{}
	for _, cx := range coords {
		for _, cy := range coords {
			k := CellKey(cx, cy)
			if prev, dup := seen[k]; dup {
				t.Fatalf("CellKey collision: (%d,%d) and (%d,%d) -> %#x", cx, cy, prev[0], prev[1], k)
			}
			seen[k] = [2]int32{cx, cy}
		}
	}
}

// TestVisitOrderDeterministic pins that two identical queries visit the
// same ids in the same order (consumers sort anyway, but determinism keeps
// candidate stats reproducible).
func TestVisitOrderDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := NewGrid(5)
	for i := int32(0); i < 200; i++ {
		g.Add(i, rng.Float64()*100-50, rng.Float64()*100-50)
	}
	var a, b []int32
	g.VisitWithin(0, 0, 30, func(id int32) { a = append(a, id) })
	g.VisitWithin(0, 0, 30, func(id int32) { b = append(b, id) })
	if len(a) != len(b) {
		t.Fatalf("repeat query sizes differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("visit order diverged at %d: %d vs %d", i, a[i], b[i])
		}
	}
	sorted := append([]int32(nil), a...)
	sort.Slice(sorted, func(x, y int) bool { return sorted[x] < sorted[y] })
	if len(sorted) == 0 {
		t.Fatal("query unexpectedly empty")
	}
}

// FuzzCellCoordKey fuzzes the cell arithmetic with arbitrary (including
// negative and non-finite) coordinates: CellCoord must agree with
// math.Floor wherever it claims ok, and CellKey must be injective on the
// reported cells.
func FuzzCellCoordKey(f *testing.F) {
	f.Add(0.0, 0.0, 1.0)
	f.Add(-3.7, 12.2, 0.5)
	f.Add(-1e12, 1e12, 7.3)
	f.Add(math.Inf(-1), math.NaN(), 3.0)
	f.Fuzz(func(t *testing.T, x, y, cell float64) {
		if !(cell > 0) || math.IsInf(cell, 1) {
			cell = 1
		}
		cx, okX := CellCoord(x, cell)
		cy, okY := CellCoord(y, cell)
		if okX {
			want := math.Floor(x / cell)
			if float64(cx) != want {
				t.Fatalf("CellCoord(%g, %g) = %d, want floor %g", x, cell, cx, want)
			}
		}
		if okX && okY {
			k := CellKey(cx, cy)
			if gx, gy := int32(k>>32), int32(k&0xffffffff); gx != cx || gy != cy {
				t.Fatalf("CellKey not invertible: (%d,%d) -> %#x -> (%d,%d)", cx, cy, k, gx, gy)
			}
		}
	})
}

// FuzzVisitWithin fuzzes a small grid against the brute-force oracle with
// arbitrary geometry, the strongest statement of the visit contract.
func FuzzVisitWithin(f *testing.F) {
	f.Add(int64(1), 1.0, 0.0, 0.0, 10.0)
	f.Add(int64(9), 60.0, -200.0, 300.0, 75.0)
	f.Add(int64(42), 0.25, -1e9, 1e9, 1e6)
	f.Fuzz(func(t *testing.T, seed int64, cell, qx, qy, r float64) {
		if math.IsNaN(cell) {
			cell = 1
		}
		rng := rand.New(rand.NewSource(seed))
		g := NewGrid(cell)
		n := rng.Intn(40) + 1
		ids := make([]int32, n)
		xs, ys := make([]float64, n), make([]float64, n)
		for i := 0; i < n; i++ {
			ids[i] = int32(i)
			xs[i] = (rng.Float64() - 0.5) * 2e4
			ys[i] = (rng.Float64() - 0.5) * 2e4
			g.Add(ids[i], xs[i], ys[i])
		}
		want := map[int32]int{}
		if r >= 0 && !math.IsNaN(qx) && !math.IsNaN(qy) {
			bruteWithin(ids, xs, ys, qx, qy, r, want)
		}
		got := map[int32]int{}
		g.VisitWithin(qx, qy, r, func(id int32) { got[id]++ })
		if len(got) != len(want) {
			t.Fatalf("visited %d ids, oracle %d (cell=%g q=(%g,%g) r=%g)", len(got), len(want), cell, qx, qy, r)
		}
		for id, c := range want {
			if got[id] != c {
				t.Fatalf("id %d visited %d times, oracle %d", id, got[id], c)
			}
		}
	})
}
