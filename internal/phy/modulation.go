package phy

import (
	"fmt"
	"math"

	"acorn/internal/units"
)

// Modulation identifies a subcarrier modulation scheme.
type Modulation int

// The modulations 802.11n uses, plus DQPSK which the WARP baseband
// experiments in Section 3.1 transmit.
const (
	BPSK Modulation = iota
	QPSK
	DQPSK
	QAM16
	QAM64
)

// String implements fmt.Stringer.
func (m Modulation) String() string {
	switch m {
	case BPSK:
		return "BPSK"
	case QPSK:
		return "QPSK"
	case DQPSK:
		return "DQPSK"
	case QAM16:
		return "16QAM"
	case QAM64:
		return "64QAM"
	default:
		return fmt.Sprintf("Modulation(%d)", int(m))
	}
}

// BitsPerSymbol returns log2 of the constellation size.
func (m Modulation) BitsPerSymbol() int {
	switch m {
	case BPSK:
		return 1
	case QPSK, DQPSK:
		return 2
	case QAM16:
		return 4
	case QAM64:
		return 6
	default:
		panic(fmt.Sprintf("phy: unknown modulation %d", int(m)))
	}
}

// Q is the Gaussian tail function Q(x) = P(N(0,1) > x), computed from erfc.
func Q(x float64) float64 {
	return 0.5 * math.Erfc(x/math.Sqrt2)
}

// UncodedBER returns the theoretical uncoded bit error rate of the
// modulation over an AWGN channel at the given per-subcarrier SNR (Es/N0 in
// dB). These are the standard Rappaport formulas the paper overlays on its
// WARP measurements in Fig 3a ("the theoretical BER formula depends only on
// the SNR per subcarrier and not on the bandwidth").
//
// The conversion from symbol SNR to per-bit SNR is γb = (Es/N0)/log2(M).
func UncodedBER(m Modulation, snr units.DB) float64 {
	es := snr.Linear()
	if es <= 0 {
		return 0.5
	}
	bits := float64(m.BitsPerSymbol())
	gammaB := es / bits
	var ber float64
	switch m {
	case BPSK:
		ber = Q(math.Sqrt(2 * gammaB))
	case QPSK:
		// Gray-coded QPSK has the same per-bit error rate as BPSK.
		ber = Q(math.Sqrt(2 * gammaB))
	case DQPSK:
		// Differentially-detected QPSK pays ≈2.3 dB versus coherent
		// QPSK; the standard approximation replaces 2γb with
		// 4γb·sin²(π/8) ≈ 1.172·γb in the Q argument.
		ber = Q(math.Sqrt(4 * gammaB * math.Pow(math.Sin(math.Pi/8), 2) * 2))
	case QAM16, QAM64:
		mSize := math.Pow(2, bits)
		// Square M-QAM with Gray mapping:
		// Pb ≈ 4/log2(M)·(1−1/√M)·Q(√(3·log2(M)/(M−1)·γb)).
		ber = 4 / bits * (1 - 1/math.Sqrt(mSize)) *
			Q(math.Sqrt(3*bits/(mSize-1)*gammaB))
	default:
		panic(fmt.Sprintf("phy: unknown modulation %d", int(m)))
	}
	if ber > 0.5 {
		ber = 0.5
	}
	return ber
}

// UncodedSER returns the symbol (baud) error rate for the modulation at the
// given per-subcarrier SNR. Fig 2's constellation comparison is quantified
// through this rate in the reproduction.
func UncodedSER(m Modulation, snr units.DB) float64 {
	es := snr.Linear()
	if es <= 0 {
		return 1 - 1/math.Pow(2, float64(m.BitsPerSymbol()))
	}
	switch m {
	case BPSK:
		return Q(math.Sqrt(2 * es))
	case QPSK, DQPSK:
		p := Q(math.Sqrt(es))
		return 2*p - p*p
	case QAM16, QAM64:
		bits := float64(m.BitsPerSymbol())
		mSize := math.Pow(2, bits)
		p := 2 * (1 - 1/math.Sqrt(mSize)) * Q(math.Sqrt(3/(mSize-1)*es))
		return 2*p - p*p
	default:
		panic(fmt.Sprintf("phy: unknown modulation %d", int(m)))
	}
}
