// Package phy is the analytic 802.11n PHY model the rest of ACORN is built
// on. It captures, in closed form, the micro-effects Section 3 of the paper
// measures on WARP hardware:
//
//   - the thermal noise floor grows 3 dB when the channel width doubles
//     (Eq. 1), while the noise *per subcarrier* stays essentially constant;
//   - the transmit energy per subcarrier halves when channel bonding spreads
//     the same total power over 108 instead of 52 data subcarriers, so the
//     per-subcarrier SNR drops by ≈3 dB at fixed Tx power;
//   - BER depends only on the per-subcarrier SNR and the modulation, not on
//     the channel width (Fig 3a), so at fixed Tx power the wider channel has
//     strictly worse BER/PER (Figs 3b, 4b);
//   - PER follows from BER via the independent-bit-error model (Eq. 6), and
//     the σ ratio (Eq. 3) decides whether bonding helps a link.
//
// The package also carries the full 802.11n MCS table so rate control and the
// throughput estimators agree on nominal bit rates.
package phy

import (
	"math"

	"acorn/internal/spectrum"
	"acorn/internal/units"
)

// OFDM numerology for 802.11n (Section 3.1 of the paper; clause 20 of the
// 802.11n spec).
const (
	// DataSubcarriers20 is the number of data subcarriers in a 20 MHz
	// 802.11n channel (up from 48 in 802.11a/g).
	DataSubcarriers20 = 52
	// DataSubcarriers40 is the number of data subcarriers with channel
	// bonding.
	DataSubcarriers40 = 108
	// PilotSubcarriers20 and PilotSubcarriers40 carry pilot tones.
	PilotSubcarriers20 = 4
	PilotSubcarriers40 = 6
	// FFTSize20 and FFTSize40 are the transform sizes of the OFDM
	// modulator at each width.
	FFTSize20 = 64
	FFTSize40 = 128
	// SubcarrierSpacingHz is the OFDM subcarrier spacing (312.5 kHz).
	SubcarrierSpacingHz = 312500.0
	// SymbolDurationLongGI is the OFDM symbol duration with the 800 ns
	// guard interval; SymbolDurationShortGI uses the optional 400 ns GI.
	SymbolDurationLongGI  = 4.0e-6
	SymbolDurationShortGI = 3.6e-6
)

// MaxTxPower is the regulatory maximum transmit power the testbed uses. The
// 802.11n spec mandates the same maximum for 20 and 40 MHz channels, which
// is precisely why bonding cannot buy its 3 dB back (Section 3.1).
const MaxTxPower units.DBm = 23

// DataSubcarriers returns the number of data subcarriers at the given width.
func DataSubcarriers(w spectrum.Width) int {
	if w == spectrum.Width40 {
		return DataSubcarriers40
	}
	return DataSubcarriers20
}

// UsedSubcarriers returns data+pilot subcarriers, i.e. the tones the transmit
// power is spread across.
func UsedSubcarriers(w spectrum.Width) int {
	if w == spectrum.Width40 {
		return DataSubcarriers40 + PilotSubcarriers40
	}
	return DataSubcarriers20 + PilotSubcarriers20
}

// NoiseFloor returns the thermal noise floor of a channel of bandwidth b,
// N(dBm) = −174 + 10·log10(B) (Eq. 1). A 40 MHz channel is ≈3 dB noisier
// than a 20 MHz one.
func NoiseFloor(b units.Hertz) units.DBm {
	return units.DBm(-174 + 10*math.Log10(float64(b)))
}

// NoiseFloorWidth is NoiseFloor for a channel width.
func NoiseFloorWidth(w spectrum.Width) units.DBm {
	return NoiseFloor(w.Hertz())
}

// SubcarrierNoiseFloor is the thermal noise within one OFDM subcarrier
// (312.5 kHz). It is the same for both widths — the paper's "noise per
// subcarrier can be expected to remain almost the same".
func SubcarrierNoiseFloor() units.DBm {
	return NoiseFloor(units.Hertz(SubcarrierSpacingHz))
}

// SubcarrierTxPower returns the transmit power allocated to each used
// subcarrier when the total power tx is spread evenly (OFDM distributes the
// transmit energy uniformly across tones). With bonding the per-subcarrier
// power drops by 10·log10(114/56) ≈ 3.1 dB.
func SubcarrierTxPower(tx units.DBm, w spectrum.Width) units.DBm {
	return tx.Minus(units.Ratio(float64(UsedSubcarriers(w))))
}

// BondingSNRPenalty returns the per-subcarrier SNR loss (in dB) incurred by
// switching from 20 MHz to 40 MHz at the same total transmit power:
// 10·log10(114/56) ≈ 3.09 dB. ACORN's link-quality estimator applies ±this
// value when recalibrating an SNR measured at one width to the other
// (Section 4.2, "SNR calibration module").
func BondingSNRPenalty() units.DB {
	return units.Ratio(float64(UsedSubcarriers(spectrum.Width40)) / float64(UsedSubcarriers(spectrum.Width20)))
}

// SubcarrierSNR returns the per-subcarrier SNR of a link whose total
// received power is rx, at the given channel width. This is the quantity the
// BER formulas consume: signal power per subcarrier over noise power per
// subcarrier.
func SubcarrierSNR(rx units.DBm, w spectrum.Width) units.DB {
	perSC := SubcarrierTxPower(rx, w) // received power divides across tones like transmit power
	return perSC.Over(SubcarrierNoiseFloor())
}

// LinkSNR returns the wideband SNR a driver would report for a link with
// received power rx on a channel of width w: total signal power over the
// width's noise floor. LinkSNR and SubcarrierSNR differ only by a small
// constant (≈−0.6 dB at 20 MHz): the per-tone power split almost exactly
// offsets the per-tone noise bandwidth reduction, because the used
// subcarriers nearly fill the nominal bandwidth.
func LinkSNR(rx units.DBm, w spectrum.Width) units.DB {
	return rx.Over(NoiseFloorWidth(w))
}

// ShannonCapacity returns the AWGN channel capacity C = B·log2(1+SNR) in
// bits per second (Eq. 2). The paper invokes it to argue that when widening
// the band lowers the SNR, there are low-SNR regimes where capacity drops.
func ShannonCapacity(b units.Hertz, snr units.DB) float64 {
	return float64(b) * math.Log2(1+snr.Linear())
}
