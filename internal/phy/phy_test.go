package phy

import (
	"math"
	"testing"
	"testing/quick"

	"acorn/internal/spectrum"
	"acorn/internal/units"
)

func TestNoiseFloorEq1(t *testing.T) {
	// Eq. 1: N = -174 + 10·log10(B).
	n20 := float64(NoiseFloorWidth(spectrum.Width20))
	n40 := float64(NoiseFloorWidth(spectrum.Width40))
	if math.Abs(n20-(-100.99)) > 0.05 {
		t.Errorf("20 MHz noise floor = %v, want ≈-101", n20)
	}
	// "the noise in a 40 MHz channel is about 3 dBm higher"
	if math.Abs((n40-n20)-3.0103) > 1e-6 {
		t.Errorf("40 vs 20 MHz noise delta = %v, want 3.01", n40-n20)
	}
}

func TestBondingSNRPenaltyIs3dB(t *testing.T) {
	p := float64(BondingSNRPenalty())
	if p < 2.9 || p > 3.2 {
		t.Errorf("bonding penalty = %v dB, want ≈3", p)
	}
}

func TestSubcarrierTxPowerSplit(t *testing.T) {
	tx := units.DBm(20)
	p20 := float64(SubcarrierTxPower(tx, spectrum.Width20))
	p40 := float64(SubcarrierTxPower(tx, spectrum.Width40))
	// Energy per subcarrier approximately halves with CB.
	if d := p20 - p40; d < 2.9 || d > 3.2 {
		t.Errorf("per-subcarrier power delta = %v, want ≈3 dB", d)
	}
}

func TestSubcarrierNoiseNearlyConstant(t *testing.T) {
	// Per-subcarrier noise should be identical at both widths (the
	// subcarrier spacing does not change).
	n := float64(SubcarrierNoiseFloor())
	if math.Abs(n-(-119)) > 0.5 {
		t.Errorf("subcarrier noise floor = %v, want ≈-119 dBm", n)
	}
}

func TestSubcarrierSNRWidthGap(t *testing.T) {
	rx := units.DBm(-70)
	gap := float64(SubcarrierSNR(rx, spectrum.Width20)) - float64(SubcarrierSNR(rx, spectrum.Width40))
	if gap < 2.9 || gap > 3.2 {
		t.Errorf("per-subcarrier SNR gap = %v, want ≈3 dB", gap)
	}
}

func TestShannonCapacityLowSNRRegime(t *testing.T) {
	// At high SNR doubling bandwidth (with the 3 dB SNR cost) wins; at
	// very low SNR it can lose — the paper's Eq. 2 argument.
	high := units.DB(25)
	c20h := ShannonCapacity(units.Bandwidth20MHz, high)
	c40h := ShannonCapacity(units.Bandwidth40MHz, high-3)
	if c40h <= c20h {
		t.Errorf("high SNR: 40 MHz capacity %v should beat 20 MHz %v", c40h, c20h)
	}
	low := units.DB(-9)
	c20l := ShannonCapacity(units.Bandwidth20MHz, low)
	c40l := ShannonCapacity(units.Bandwidth40MHz, low-3)
	// In the deep low-SNR regime the capacities converge (and the wider
	// band's advantage vanishes); verify the ratio collapses toward 1
	// compared with the high-SNR regime.
	if c40l/c20l > c40h/c20h {
		t.Errorf("low-SNR capacity ratio %v should be below high-SNR ratio %v",
			c40l/c20l, c40h/c20h)
	}
}

func TestUncodedBERMonotoneDecreasing(t *testing.T) {
	for _, m := range []Modulation{BPSK, QPSK, DQPSK, QAM16, QAM64} {
		prev := 1.0
		for snr := units.DB(-10); snr <= 30; snr += 1 {
			b := UncodedBER(m, snr)
			if b > prev+1e-15 {
				t.Errorf("%v: BER increased at %v dB", m, snr)
			}
			if b < 0 || b > 0.5 {
				t.Errorf("%v: BER %v out of range at %v dB", m, b, snr)
			}
			prev = b
		}
	}
}

func TestUncodedBEROrderingAcrossModulations(t *testing.T) {
	// At a fixed medium SNR, denser constellations are more error-prone.
	snr := units.DB(12)
	bpsk := UncodedBER(BPSK, snr)
	qam16 := UncodedBER(QAM16, snr)
	qam64 := UncodedBER(QAM64, snr)
	if !(bpsk < qam16 && qam16 < qam64) {
		t.Errorf("BER ordering violated: BPSK %v, 16QAM %v, 64QAM %v", bpsk, qam16, qam64)
	}
	// DQPSK pays a penalty over coherent QPSK.
	if UncodedBER(DQPSK, snr) <= UncodedBER(QPSK, snr) {
		t.Error("DQPSK should have higher BER than QPSK")
	}
}

func TestUncodedBERKnownPoint(t *testing.T) {
	// BPSK at Eb/N0 = 2 (≈3 dB): Pb = Q(2) ≈ 0.02275.
	got := UncodedBER(BPSK, units.Ratio(2))
	if math.Abs(got-0.02275) > 1e-4 {
		t.Errorf("BPSK BER at 3 dB = %v, want ≈0.02275", got)
	}
}

func TestUncodedSERBounds(t *testing.T) {
	f := func(snrRaw int16, mRaw uint8) bool {
		m := Modulation(int(mRaw) % 5)
		snr := units.DB(float64(snrRaw%500) / 10)
		s := UncodedSER(m, snr)
		return s >= 0 && s <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCodedBERBelowUncodedInWaterfall(t *testing.T) {
	// In the operating region, coding must help.
	for _, mc := range Fig5ModCods {
		snr := units.DB(12)
		if mc.Modulation == QPSK {
			snr = 6
		}
		coded := CodedBER(mc.Modulation, mc.Rate, snr)
		uncoded := UncodedBER(mc.Modulation, snr)
		if coded >= uncoded {
			t.Errorf("%v: coded BER %v not below uncoded %v at %v dB", mc, coded, uncoded, snr)
		}
	}
}

func TestCodedBERRateOrdering(t *testing.T) {
	// Weaker code rates give higher BER at the same SNR.
	snr := units.DB(8)
	r12 := CodedBER(QPSK, Rate12, snr)
	r34 := CodedBER(QPSK, Rate34, snr)
	r56 := CodedBER(QPSK, Rate56, snr)
	if !(r12 < r34 && r34 < r56) {
		t.Errorf("code-rate ordering violated: 1/2=%v 3/4=%v 5/6=%v", r12, r34, r56)
	}
}

func TestPERFromBEREq6(t *testing.T) {
	// Eq. 6: PER = 1 − (1 − BER)^L.
	ber := 1e-4
	l := 1500 * 8
	want := 1 - math.Pow(1-ber, float64(l))
	got := PERFromBER(ber, 1500)
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("PER = %v, want %v", got, want)
	}
	if PERFromBER(0, 1500) != 0 {
		t.Error("zero BER should give zero PER")
	}
	if PERFromBER(1, 1500) != 1 {
		t.Error("BER 1 should give PER 1")
	}
}

func TestPERMonotoneInBER(t *testing.T) {
	f := func(a, b uint16) bool {
		x := float64(a) / 65535 * 0.01
		y := float64(b) / 65535 * 0.01
		if x > y {
			x, y = y, x
		}
		return PERFromBER(x, 1500) <= PERFromBER(y, 1500)+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSigmaRegimes(t *testing.T) {
	// Low power: both widths fail → σ ≈ 1.
	if s := Sigma(1, 1); s != 1 {
		t.Errorf("σ(1,1) = %v, want 1", s)
	}
	// Crossover: 20 MHz works, 40 MHz half-dead → σ large.
	if s := Sigma(0.02, 0.95); s < 2 {
		t.Errorf("σ(0.02,0.95) = %v, want ≥ 2", s)
	}
	// High power: both clean → σ ≈ 1.
	if s := Sigma(0.001, 0.002); math.Abs(s-1) > 0.01 {
		t.Errorf("σ(0.001,0.002) = %v, want ≈1", s)
	}
	// Cap at 10.
	if s := Sigma(0, 0.999); s != SigmaCap {
		t.Errorf("σ cap = %v, want %v", s, SigmaCap)
	}
	if s := Sigma(0.5, 1); s != SigmaCap {
		t.Errorf("σ with dead 40 MHz = %v, want cap", s)
	}
}

func TestSigmaAtSweepShape(t *testing.T) {
	// Fig 5 shape: sweeping SNR from very low to high, σ starts ≈1,
	// rises above 2 in a window, then returns to ≈1.
	mc := ModCod{QPSK, Rate34}
	sawLow, sawHigh, sawSettle := false, false, false
	for snr := units.DB(-12); snr <= 30; snr += 0.25 {
		s := SigmaAt(mc, snr, DefaultPacketSizeBytes)
		switch {
		case !sawLow:
			if math.Abs(s-1) < 0.1 {
				sawLow = true
			}
		case !sawHigh:
			if s >= 2 {
				sawHigh = true
			}
		case !sawSettle:
			if math.Abs(s-1) < 0.05 {
				sawSettle = true
			}
		}
	}
	if !sawLow || !sawHigh || !sawSettle {
		t.Errorf("σ sweep shape: low=%v high=%v settle=%v", sawLow, sawHigh, sawSettle)
	}
}

func TestMCSTable(t *testing.T) {
	table := MCSTable()
	if len(table) != 16 {
		t.Fatalf("MCS table has %d entries, want 16", len(table))
	}
	for i, m := range table {
		if m.Index != i {
			t.Errorf("MCS %d has index %d", i, m.Index)
		}
	}
	if table[7].Streams != 1 || table[8].Streams != 2 {
		t.Error("stream split wrong between MCS 7 and 8")
	}
	if _, ok := MCSByIndex(16); ok {
		t.Error("MCS 16 should not exist")
	}
	if m, ok := MCSByIndex(15); !ok || m.Modulation != QAM64 || m.Rate != Rate56 {
		t.Errorf("MCS 15 = %v", m)
	}
}

func TestNominalRatesMatchStandard(t *testing.T) {
	cases := []struct {
		idx     int
		w       spectrum.Width
		shortGI bool
		want    float64
	}{
		{0, spectrum.Width20, false, 6.5},
		{7, spectrum.Width20, false, 65},
		{7, spectrum.Width20, true, 72.2},
		{7, spectrum.Width40, false, 135},
		{15, spectrum.Width40, true, 300},
		{15, spectrum.Width20, false, 130},
	}
	for _, c := range cases {
		m, _ := MCSByIndex(c.idx)
		got := NominalRateMbps(m, c.w, c.shortGI)
		if math.Abs(got-c.want) > 0.3 {
			t.Errorf("MCS%d %v shortGI=%v = %v Mbps, want %v", c.idx, c.w, c.shortGI, got, c.want)
		}
	}
}

func TestNominalRate40MoreThanDouble(t *testing.T) {
	// "the nominal bit rates with 40MHz are slightly higher than double
	// of their 20 MHz counterparts".
	for _, m := range MCSTable() {
		r20 := NominalRateMbps(m, spectrum.Width20, false)
		r40 := NominalRateMbps(m, spectrum.Width40, false)
		if r40 <= 2*r20 {
			t.Errorf("%v: 40 MHz rate %v not above double the 20 MHz rate %v", m, r40, r20)
		}
		if r40 > 2.2*r20 {
			t.Errorf("%v: 40 MHz rate %v implausibly high vs %v", m, r40, r20)
		}
	}
}

func TestDataSubcarriers(t *testing.T) {
	if DataSubcarriers(spectrum.Width20) != 52 || DataSubcarriers(spectrum.Width40) != 108 {
		t.Error("data subcarrier counts wrong")
	}
	if UsedSubcarriers(spectrum.Width20) != 56 || UsedSubcarriers(spectrum.Width40) != 114 {
		t.Error("used subcarrier counts wrong")
	}
}

func TestStringers(t *testing.T) {
	cases := []struct {
		got, want string
	}{
		{QPSK.String(), "QPSK"},
		{DQPSK.String(), "DQPSK"},
		{QAM16.String(), "16QAM"},
		{QAM64.String(), "64QAM"},
		{BPSK.String(), "BPSK"},
		{Modulation(9).String(), "Modulation(9)"},
		{Rate12.String(), "1/2"},
		{Rate23.String(), "2/3"},
		{Rate34.String(), "3/4"},
		{Rate56.String(), "5/6"},
		{CodeRate(9).String(), "CodeRate(9)"},
		{ModCod{QPSK, Rate34}.String(), "QPSK 3/4"},
	}
	for _, c := range cases {
		if c.got != c.want {
			t.Errorf("String() = %q, want %q", c.got, c.want)
		}
	}
	m, _ := MCSByIndex(7)
	if s := m.String(); s != "MCS7(64QAM 5/6 x1)" {
		t.Errorf("MCS string = %q", s)
	}
	if mc := m.ModCod(); mc.Modulation != QAM64 || mc.Rate != Rate56 {
		t.Errorf("ModCod = %v", mc)
	}
}

func TestLinkSNRVsSubcarrierSNR(t *testing.T) {
	// LinkSNR (wideband) and SubcarrierSNR differ by a small constant at
	// 20 MHz: the per-tone split (−10·log10(56) ≈ −17.5 dB) almost
	// exactly offsets the narrower noise bandwidth (+18.1 dB), leaving
	// ≈−0.6 dB.
	rx := units.DBm(-70)
	link := float64(LinkSNR(rx, spectrum.Width20))
	sub := float64(SubcarrierSNR(rx, spectrum.Width20))
	if d := link - sub; d < -1 || d > 0 {
		t.Errorf("wideband-vs-subcarrier SNR delta = %v, want ≈-0.6", d)
	}
}

func TestUncodedPERAndRxSubcarrierSNR(t *testing.T) {
	// UncodedPER composes UncodedBER with Eq. 6.
	snr := units.DB(5)
	want := PERFromBER(UncodedBER(QPSK, snr), 1500)
	if got := UncodedPER(QPSK, snr, 1500); got != want {
		t.Errorf("UncodedPER = %v, want %v", got, want)
	}
	// RxSubcarrierSNR composes link budget with the subcarrier split.
	got := RxSubcarrierSNR(20, 50, spectrum.Width20)
	want2 := SubcarrierSNR(units.DBm(20).Minus(50), spectrum.Width20)
	if got != want2 {
		t.Errorf("RxSubcarrierSNR = %v, want %v", got, want2)
	}
}

func TestFadedPERProperties(t *testing.T) {
	mc := ModCod{QPSK, Rate34}
	// σ=0 degenerates to the AWGN PER.
	if got, want := CodedPERFaded(mc, 5, 1500, 0), CodedPER(mc, 5, 1500); got != want {
		t.Errorf("zero-fade coded PER = %v, want %v", got, want)
	}
	if got, want := UncodedPERFaded(QPSK, 5, 1500, 0), UncodedPER(QPSK, 5, 1500); got != want {
		t.Errorf("zero-fade uncoded PER = %v, want %v", got, want)
	}
	// Fading widens the waterfall: above the AWGN cliff the faded PER is
	// higher (deep fades leak errors in), far below it is lower.
	above := 8.0 // AWGN PER ≈ 0 here for QPSK 3/4
	if CodedPERFaded(mc, units.DB(above), 1500, 2) <= CodedPER(mc, units.DB(above), 1500) {
		t.Error("fading should raise PER above the AWGN cliff")
	}
	// Monotone nonincreasing in SNR.
	prev := 1.1
	for snr := -5.0; snr <= 20; snr += 0.5 {
		p := CodedPERFaded(mc, units.DB(snr), 1500, DefaultFadeSigmaDB)
		if p > prev+1e-12 {
			t.Fatalf("faded PER rose at %v dB", snr)
		}
		prev = p
	}
	// Uncoded counterpart behaves too.
	if UncodedPERFaded(QPSK, 20, 1500, 2) > 0.01 {
		t.Error("uncoded faded PER should collapse at high SNR")
	}
}

func TestSubcarrierTxPowerAndShannonEdges(t *testing.T) {
	// BitsPerSymbol default-path panic.
	defer func() {
		if recover() == nil {
			t.Error("unknown modulation BitsPerSymbol should panic")
		}
	}()
	Modulation(42).BitsPerSymbol()
}
