package phy

import (
	"math"

	"acorn/internal/spectrum"
	"acorn/internal/units"
)

// DefaultPacketSizeBytes is the payload size used throughout the paper's
// experiments (1500-byte packets).
const DefaultPacketSizeBytes = 1500

// PERFromBER converts a bit error rate into a packet error rate for a packet
// of the given size, assuming independent uniformly distributed bit errors
// (Eq. 6): PER = 1 − (1 − BER)^L with L in bits.
func PERFromBER(ber float64, packetBytes int) float64 {
	if ber <= 0 {
		return 0
	}
	if ber >= 1 {
		return 1
	}
	l := float64(packetBytes * 8)
	// (1-ber)^L underflows for moderate BER; compute via exp/log1p.
	return 1 - math.Exp(l*math.Log1p(-ber))
}

// UncodedPER returns the PER of an uncoded transmission (the WARP BERMAC
// experiments of Fig 4) at the given modulation and per-subcarrier SNR.
func UncodedPER(m Modulation, snr units.DB, packetBytes int) float64 {
	return PERFromBER(UncodedBER(m, snr), packetBytes)
}

// CodedPER returns the PER of a coded 802.11n transmission at the given
// modcod and per-subcarrier SNR.
func CodedPER(mc ModCod, snr units.DB, packetBytes int) float64 {
	return PERFromBER(CodedBER(mc.Modulation, mc.Rate, snr), packetBytes)
}

// SigmaCap is the visualization cap the paper applies to σ ("when σ is > 10,
// we cap its value at 10").
const SigmaCap = 10.0

// Sigma computes the σ ratio of Eq. 3, the packet-delivery-probability ratio
// without and with channel bonding:
//
//	σ = (1 − PER20) / (1 − PER40)
//
// Bonding lowers throughput whenever σ > R40/R20 ≈ 2. When both widths lose
// essentially every packet (PER ≈ 1 for both) σ ≈ 1 by convention — that is
// the low-power regime of Fig 5 where neither width works. The returned
// value is capped at SigmaCap.
func Sigma(per20, per40 float64) float64 {
	d20 := 1 - per20
	d40 := 1 - per40
	if d40 <= 0 {
		if d20 <= 0 {
			return 1 // neither width delivers anything
		}
		return SigmaCap
	}
	s := d20 / d40
	if s > SigmaCap {
		s = SigmaCap
	}
	return s
}

// SigmaAt evaluates σ for a link at the given modcod, where snr20 is the
// per-subcarrier SNR the link would have on a 20 MHz channel. The 40 MHz
// per-subcarrier SNR is snr20 minus the bonding penalty (≈3 dB), reflecting
// that the same total power spreads across twice the subcarriers. PERs are
// fade-averaged as on a real link, which is what widens the measured σ ≥ 2
// window to the 2–3 dB of SNR the paper reports.
func SigmaAt(mc ModCod, snr20 units.DB, packetBytes int) float64 {
	per20 := CodedPERFaded(mc, snr20, packetBytes, DefaultFadeSigmaDB)
	per40 := CodedPERFaded(mc, snr20.Minus(BondingSNRPenalty()), packetBytes, DefaultFadeSigmaDB)
	return Sigma(per20, per40)
}

// RxSubcarrierSNR returns the per-subcarrier SNR for a link with transmit
// power tx and path loss pl at the given width. It is the composition used
// by every experiment that sweeps Tx power: received power = tx − pl, spread
// over the width's subcarriers, against the per-subcarrier noise floor.
func RxSubcarrierSNR(tx units.DBm, pl units.DB, w spectrum.Width) units.DB {
	return SubcarrierSNR(tx.Minus(pl), w)
}
