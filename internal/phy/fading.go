package phy

import "acorn/internal/units"

// Real links do not sit at one SNR: small-scale fading moves the
// instantaneous per-subcarrier SNR around its mean from packet to packet,
// which smears the razor-thin AWGN PER waterfall over several dB. This is
// why the paper's measured σ-transition windows span 2–3 dB of SNR
// (Table 1) while pure AWGN theory would predict fractions of a dB. The
// long-term PER of a link is therefore the fade-averaged PER below.

// DefaultFadeSigmaDB is the standard deviation (dB) of the per-packet SNR
// fluctuation for the MIMO testbed links. MIMO diversity keeps it small;
// single-antenna links would see far larger swings.
const DefaultFadeSigmaDB = 2.0

// fadeNodes/fadeWeights implement a 5-point binomial (Gaussian-like)
// quadrature at 0, ±σ, ±2σ.
var (
	fadeNodes   = []float64{-2, -1, 0, 1, 2}
	fadeWeights = []float64{1.0 / 16, 4.0 / 16, 6.0 / 16, 4.0 / 16, 1.0 / 16}
)

// CodedPERFaded returns the long-term coded PER of a link whose mean
// per-subcarrier SNR is snr, averaging the AWGN PER over a lognormal
// (Gaussian-in-dB) fade of the given standard deviation.
func CodedPERFaded(mc ModCod, snr units.DB, packetBytes int, sigmaDB float64) float64 {
	if sigmaDB <= 0 {
		return CodedPER(mc, snr, packetBytes)
	}
	var per float64
	for i, node := range fadeNodes {
		per += fadeWeights[i] * CodedPER(mc, snr+units.DB(node*sigmaDB), packetBytes)
	}
	return per
}

// UncodedPERFaded is the uncoded counterpart of CodedPERFaded.
func UncodedPERFaded(m Modulation, snr units.DB, packetBytes int, sigmaDB float64) float64 {
	if sigmaDB <= 0 {
		return UncodedPER(m, snr, packetBytes)
	}
	var per float64
	for i, node := range fadeNodes {
		per += fadeWeights[i] * UncodedPER(m, snr+units.DB(node*sigmaDB), packetBytes)
	}
	return per
}
