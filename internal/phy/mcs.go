package phy

import (
	"fmt"

	"acorn/internal/spectrum"
)

// MIMOMode is the 802.11n spatial mode: spatial-division multiplexing for
// rate, or space-time block coding for reliability (Section 2).
type MIMOMode int

// The two MIMO operating modes the paper's rate control selects between.
const (
	// SDM transmits independent streams on each antenna, doubling the
	// nominal rate but splitting transmit power across streams.
	SDM MIMOMode = iota
	// STBC transmits one stream with Alamouti space-time coding,
	// trading rate for diversity and array gain on poor links.
	STBC
)

// String implements fmt.Stringer.
func (m MIMOMode) String() string {
	if m == STBC {
		return "STBC"
	}
	return "SDM"
}

// MCS describes one entry of the 802.11n Modulation and Coding Scheme table.
type MCS struct {
	Index      int
	Modulation Modulation
	Rate       CodeRate
	Streams    int // spatial streams (1 or 2 for the 2-antenna testbed)
}

// ModCod returns the modulation/code-rate pair of the MCS.
func (m MCS) ModCod() ModCod { return ModCod{m.Modulation, m.Rate} }

// String implements fmt.Stringer.
func (m MCS) String() string {
	return fmt.Sprintf("MCS%d(%s %s x%d)", m.Index, m.Modulation, m.Rate, m.Streams)
}

// mcsBase holds the single-stream rate ladder; two-stream entries double it.
var mcsBase = []struct {
	mod  Modulation
	rate CodeRate
}{
	{BPSK, Rate12},  // MCS 0
	{QPSK, Rate12},  // MCS 1
	{QPSK, Rate34},  // MCS 2
	{QAM16, Rate12}, // MCS 3
	{QAM16, Rate34}, // MCS 4
	{QAM64, Rate23}, // MCS 5
	{QAM64, Rate34}, // MCS 6
	{QAM64, Rate56}, // MCS 7
}

// MCSTable returns the 16-entry MCS table of a 2-antenna 802.11n device
// (MCS 0–7 single stream, MCS 8–15 two streams).
func MCSTable() []MCS {
	table := make([]MCS, 0, 16)
	for s := 1; s <= 2; s++ {
		for i, b := range mcsBase {
			table = append(table, MCS{
				Index:      (s-1)*8 + i,
				Modulation: b.mod,
				Rate:       b.rate,
				Streams:    s,
			})
		}
	}
	return table
}

// MCSByIndex returns the MCS with the given index (0–15).
func MCSByIndex(idx int) (MCS, bool) {
	if idx < 0 || idx >= 16 {
		return MCS{}, false
	}
	return MCSTable()[idx], true
}

// MaxMCSIndex is the top MCS of the 2-antenna table; the Fig 8 channel
// flatness experiment transmits at "the maximum transmission rate
// (MCS = 15)".
const MaxMCSIndex = 15

// NominalRateMbps returns the nominal PHY bit rate in Mbit/s of the MCS at
// the given channel width and guard interval. The rates follow the 802.11n
// rate equation R = N_data · bits/carrier · codeRate · streams / T_symbol,
// which reproduces the familiar table (65 Mbps for MCS 7 at 20 MHz/800 ns,
// 600-style doubling at 40 MHz, etc.). Note the 40 MHz rates are "slightly
// higher than double" the 20 MHz ones because 108 > 2·52 — exactly the
// observation in Section 3.1.
func NominalRateMbps(m MCS, w spectrum.Width, shortGI bool) float64 {
	symbol := SymbolDurationLongGI
	if shortGI {
		symbol = SymbolDurationShortGI
	}
	bitsPerSymbol := float64(DataSubcarriers(w)) *
		float64(m.Modulation.BitsPerSymbol()) *
		m.Rate.Value() *
		float64(m.Streams)
	return bitsPerSymbol / symbol / 1e6
}
