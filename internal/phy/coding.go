package phy

import (
	"fmt"
	"math"

	"acorn/internal/units"
)

// CodeRate is a forward-error-correction code rate of the 802.11n K=7
// convolutional code family.
type CodeRate int

// The code rates 802.11n supports (rate 2/3, 3/4 and 5/6 are obtained by
// puncturing the rate-1/2 mother code).
const (
	Rate12 CodeRate = iota
	Rate23
	Rate34
	Rate56
)

// String implements fmt.Stringer.
func (r CodeRate) String() string {
	switch r {
	case Rate12:
		return "1/2"
	case Rate23:
		return "2/3"
	case Rate34:
		return "3/4"
	case Rate56:
		return "5/6"
	default:
		return fmt.Sprintf("CodeRate(%d)", int(r))
	}
}

// Value returns the code rate as a float (information bits per coded bit).
func (r CodeRate) Value() float64 {
	switch r {
	case Rate12:
		return 0.5
	case Rate23:
		return 2.0 / 3
	case Rate34:
		return 0.75
	case Rate56:
		return 5.0 / 6
	default:
		panic(fmt.Sprintf("phy: unknown code rate %d", int(r)))
	}
}

// codeSpectrum holds the free distance and the leading information-weight
// spectrum terms {B_dfree, B_dfree+1, …} of the punctured K=7 convolutional
// codes, taken from the standard published tables (Frenger et al.). The
// union bound truncated to these terms is accurate in the waterfall region
// that matters for link classification.
type codeSpectrum struct {
	dFree int
	bd    []float64
}

var codeSpectra = map[CodeRate]codeSpectrum{
	Rate12: {dFree: 10, bd: []float64{36, 0, 211, 0, 1404, 0, 11633, 0, 77433, 0}},
	Rate23: {dFree: 6, bd: []float64{3, 70, 285, 1276, 6160, 27128, 117019}},
	Rate34: {dFree: 5, bd: []float64{42, 201, 1492, 10469, 62935, 379546, 2252394}},
	Rate56: {dFree: 4, bd: []float64{92, 528, 8694, 79453, 792114, 7375573}},
}

// CodedBER estimates the post-Viterbi (soft-decision) bit error rate of the
// 802.11n convolutional code at the given code rate, for a channel whose
// uncoded per-subcarrier SNR is snr and whose modulation is m. It applies
// the truncated union bound Pb ≤ Σ B_d·Q(√(2·d·R·γb)).
//
// ACORN's link-quality estimator (Section 4.2) uses this together with
// Eq. 6 to predict the PER a client would see on a channel of the other
// width: "a BER estimation module calculates the theoretical coded BER".
func CodedBER(m Modulation, r CodeRate, snr units.DB) float64 {
	es := snr.Linear()
	if es <= 0 {
		return 0.5
	}
	spec, ok := codeSpectra[r]
	if !ok {
		panic(fmt.Sprintf("phy: unknown code rate %d", int(r)))
	}
	// Per information-bit SNR after despreading the symbol energy across
	// coded bits: γb = Es/N0 / (log2(M) · R).
	gammaB := es / (float64(m.BitsPerSymbol()) * r.Value())
	var pb float64
	for i, bd := range spec.bd {
		d := float64(spec.dFree + i)
		pb += bd * Q(math.Sqrt(2*d*r.Value()*gammaB))
	}
	if pb > 0.5 {
		pb = 0.5
	}
	return pb
}

// ModCod is a modulation and code rate pair — the "modcod" axis of Fig 5
// and Table 1.
type ModCod struct {
	Modulation Modulation
	Rate       CodeRate
}

// String implements fmt.Stringer.
func (mc ModCod) String() string {
	return fmt.Sprintf("%s %s", mc.Modulation, mc.Rate)
}

// Fig5ModCods are the four modulation/code-rate combinations the paper
// sweeps in Fig 5 (BPSK is omitted there because it behaves like QPSK).
var Fig5ModCods = []ModCod{
	{QPSK, Rate34},
	{QAM16, Rate34},
	{QAM64, Rate34},
	{QAM64, Rate56},
}
