package proto

import (
	"errors"
	"hash/crc32"
	"math/rand"
	"strings"
	"testing"
)

func sampleFrame() *BeaconFrame {
	return &BeaconFrame{
		BSSID:            [6]byte{0x02, 0x11, 0x22, 0x33, 0x44, 0x55},
		SSID:             "acorn-lab",
		TimestampMicros:  123456789,
		BeaconIntervalTU: 100,
		SeqNum:           42,
		ACORN:            sampleIE(),
	}
}

func TestFrameRoundTrip(t *testing.T) {
	f := sampleFrame()
	data, err := f.MarshalFrame()
	if err != nil {
		t.Fatal(err)
	}
	got, err := UnmarshalFrame(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.BSSID != f.BSSID || got.SSID != f.SSID ||
		got.TimestampMicros != f.TimestampMicros ||
		got.BeaconIntervalTU != f.BeaconIntervalTU || got.SeqNum != f.SeqNum {
		t.Fatalf("header mismatch: %+v vs %+v", got, f)
	}
	if got.ACORN == nil || got.ACORN.Channel != f.ACORN.Channel || got.ACORN.K != f.ACORN.K {
		t.Fatalf("ACORN IE mismatch: %+v", got.ACORN)
	}
	if len(got.ACORN.Clients) != len(f.ACORN.Clients) {
		t.Fatal("client list mismatch")
	}
}

func TestFrameFCSRejectsCorruption(t *testing.T) {
	data, err := sampleFrame().MarshalFrame()
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	rejected := 0
	const trials = 500
	for i := 0; i < trials; i++ {
		m := append([]byte(nil), data...)
		m[rng.Intn(len(m))] ^= byte(1 << rng.Intn(8))
		if _, err := UnmarshalFrame(m); err != nil {
			rejected++
		}
	}
	// Every single-bit flip lands either in the body (FCS catches it) or
	// in the FCS itself (mismatch) — all must be rejected.
	if rejected != trials {
		t.Errorf("only %d/%d corrupted frames rejected", rejected, trials)
	}
}

func TestFrameTruncation(t *testing.T) {
	data, err := sampleFrame().MarshalFrame()
	if err != nil {
		t.Fatal(err)
	}
	for l := 0; l < len(data); l++ {
		if _, err := UnmarshalFrame(data[:l]); err == nil {
			t.Fatalf("prefix of %d bytes accepted", l)
		}
	}
}

func TestFrameWithoutACORNElement(t *testing.T) {
	f := sampleFrame()
	f.ACORN = nil
	if _, err := f.MarshalFrame(); !errors.Is(err, ErrNoACORN) {
		t.Errorf("marshal without IE: %v", err)
	}
}

func TestFrameForeignVendorElementIgnored(t *testing.T) {
	// Hand-build a frame whose vendor element has a different OUI plus a
	// valid ACORN element after it; the decoder must skip the foreign one.
	f := sampleFrame()
	data, err := f.MarshalFrame()
	if err != nil {
		t.Fatal(err)
	}
	// Recompose: strip FCS, inject a foreign vendor element before the
	// ACORN one, re-checksum.
	body := data[:len(data)-4]
	insertAt := macHeaderBytes + fixedFieldBytes + 2 + len(f.SSID)
	foreign := []byte{elemVendor, 4, 0x00, 0x10, 0x18, 0x01}
	newBody := append(append(append([]byte{}, body[:insertAt]...), foreign...), body[insertAt:]...)
	withFCS := appendFCS(newBody)
	got, err := UnmarshalFrame(withFCS)
	if err != nil {
		t.Fatalf("frame with foreign vendor element rejected: %v", err)
	}
	if got.ACORN == nil {
		t.Error("ACORN element lost")
	}
}

func TestFrameSSIDTooLong(t *testing.T) {
	f := sampleFrame()
	f.SSID = strings.Repeat("x", 33)
	if _, err := f.MarshalFrame(); err == nil {
		t.Error("oversized SSID accepted")
	}
}

func TestFrameNonBeaconRejected(t *testing.T) {
	data, err := sampleFrame().MarshalFrame()
	if err != nil {
		t.Fatal(err)
	}
	body := append([]byte(nil), data[:len(data)-4]...)
	body[0] = 0x40 // probe request subtype
	if _, err := UnmarshalFrame(appendFCS(body)); !errors.Is(err, ErrNotBeacon) {
		t.Errorf("non-beacon error = %v", err)
	}
}

func TestFrameLargeClientListFitsOrErrors(t *testing.T) {
	// A vendor IE caps at 255 bytes; a beacon with too many clients must
	// fail loudly at marshal time, not truncate silently.
	f := sampleFrame()
	f.ACORN.Clients = nil
	for i := 0; i < 40; i++ {
		f.ACORN.Clients = append(f.ACORN.Clients, ClientDelay{
			ClientID:          "aa:bb:cc:dd:ee:ff",
			DelayMicroPerMbit: 1000,
		})
	}
	if _, err := f.MarshalFrame(); err == nil {
		t.Error("oversized element accepted")
	}
	// A modest cell fits.
	f.ACORN.Clients = f.ACORN.Clients[:8]
	if _, err := f.MarshalFrame(); err != nil {
		t.Errorf("8-client beacon rejected: %v", err)
	}
}

func appendFCS(body []byte) []byte {
	out := append([]byte(nil), body...)
	crc := crc32.ChecksumIEEE(out)
	return append(out, byte(crc), byte(crc>>8), byte(crc>>16), byte(crc>>24))
}
