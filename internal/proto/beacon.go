// Package proto implements the over-the-air encoding of ACORN's modified
// beacon (Section 5.1 of the paper): a vendor-specific information element
// appended to 802.11 beacon frames carrying the quantities Algorithm 1
// needs — the number of associated clients K, the channel access share M,
// the aggregate transmission delay ATD, the per-client transmission delays
// d_cl, and the AP's current channel.
//
// The format is a conventional TLV: a fixed header with version, channel
// descriptor and counters, followed by one record per client. All
// multi-byte fields are big-endian. Delays are carried in microseconds per
// megabit (32-bit), M in thousandths (16-bit) — resolutions far below what
// the algorithms can exploit.
package proto

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"acorn/internal/spectrum"
)

// ElementID is the vendor-specific IE identifier used for ACORN beacons.
const ElementID = 0xDD

// Version is the current encoding version.
const Version = 1

// Maximum lengths, bounding a malicious or corrupt element.
const (
	MaxClients  = 512
	maxIDLen    = 64
	headerBytes = 1 /*ver*/ + 1 /*width*/ + 1 /*primary idx*/ + 1 /*secondary idx*/ +
		2 /*K*/ + 2 /*M*/ + 4 /*ATD*/ + 2 /*client count*/
)

// ClientDelay is one per-client record.
type ClientDelay struct {
	// ClientID is the station identifier (MAC address string or token).
	ClientID string
	// DelayMicroPerMbit is d_cl in microseconds per megabit.
	DelayMicroPerMbit uint32
}

// BeaconIE is the decoded ACORN information element.
type BeaconIE struct {
	// Channel the AP currently operates.
	Channel spectrum.Channel
	// K is the number of associated clients (including the inquirer when
	// the AP counts a trial association).
	K uint16
	// MilliM is the access share M in thousandths (0–1000).
	MilliM uint16
	// ATDMicroPerMbit is the aggregate transmission delay.
	ATDMicroPerMbit uint32
	// Clients holds the per-client delays.
	Clients []ClientDelay
}

// M returns the access share as a float in [0, 1].
func (b *BeaconIE) M() float64 { return float64(b.MilliM) / 1000 }

// SetM stores an access share, clamping to [0, 1].
func (b *BeaconIE) SetM(m float64) {
	if m < 0 {
		m = 0
	}
	if m > 1 {
		m = 1
	}
	b.MilliM = uint16(math.Round(m * 1000))
}

// DelayToWire converts a delay in seconds-per-megabit to the wire unit,
// saturating at the 32-bit ceiling (≈4295 s/Mbit, far beyond the MAC
// delay cap).
func DelayToWire(secPerMbit float64) uint32 {
	us := secPerMbit * 1e6
	if us < 0 {
		return 0
	}
	if us > math.MaxUint32 {
		return math.MaxUint32
	}
	return uint32(math.Round(us))
}

// DelayFromWire converts back to seconds per megabit.
func DelayFromWire(w uint32) float64 { return float64(w) / 1e6 }

// Errors returned by Unmarshal.
var (
	ErrTruncated  = errors.New("proto: truncated beacon element")
	ErrVersion    = errors.New("proto: unsupported beacon version")
	ErrBadChannel = errors.New("proto: malformed channel descriptor")
	ErrTooMany    = errors.New("proto: client count exceeds bounds")
	ErrBadID      = errors.New("proto: malformed client identifier")
)

// Marshal encodes the element body (without the outer 802.11 IE tag/length,
// which the frame layer owns).
func (b *BeaconIE) Marshal() ([]byte, error) {
	if len(b.Clients) > MaxClients {
		return nil, ErrTooMany
	}
	out := make([]byte, 0, headerBytes+len(b.Clients)*8)
	out = append(out, Version)
	switch b.Channel.Width {
	case spectrum.Width20:
		out = append(out, 20)
	case spectrum.Width40:
		out = append(out, 40)
	default:
		return nil, ErrBadChannel
	}
	out = append(out, byte(b.Channel.Primary), byte(b.Channel.Secondary))
	out = binary.BigEndian.AppendUint16(out, b.K)
	out = binary.BigEndian.AppendUint16(out, b.MilliM)
	out = binary.BigEndian.AppendUint32(out, b.ATDMicroPerMbit)
	out = binary.BigEndian.AppendUint16(out, uint16(len(b.Clients)))
	for _, c := range b.Clients {
		if len(c.ClientID) == 0 || len(c.ClientID) > maxIDLen {
			return nil, ErrBadID
		}
		out = append(out, byte(len(c.ClientID)))
		out = append(out, c.ClientID...)
		out = binary.BigEndian.AppendUint32(out, c.DelayMicroPerMbit)
	}
	return out, nil
}

// Unmarshal decodes an element body produced by Marshal. It validates
// structure strictly: any truncation, bad version, malformed channel or
// out-of-bounds count is an error, never a panic — beacons arrive from the
// air.
func Unmarshal(data []byte) (*BeaconIE, error) {
	if len(data) < headerBytes {
		return nil, ErrTruncated
	}
	if data[0] != Version {
		return nil, fmt.Errorf("%w: %d", ErrVersion, data[0])
	}
	b := &BeaconIE{}
	switch data[1] {
	case 20:
		b.Channel = spectrum.NewChannel20(spectrum.ChannelID(data[2]))
		if data[3] != 0 {
			return nil, ErrBadChannel
		}
	case 40:
		if data[3] == 0 || data[2] == data[3] {
			return nil, ErrBadChannel
		}
		b.Channel = spectrum.NewChannel40(spectrum.ChannelID(data[2]), spectrum.ChannelID(data[3]))
	default:
		return nil, ErrBadChannel
	}
	b.K = binary.BigEndian.Uint16(data[4:6])
	b.MilliM = binary.BigEndian.Uint16(data[6:8])
	if b.MilliM > 1000 {
		return nil, fmt.Errorf("proto: access share %d out of range", b.MilliM)
	}
	b.ATDMicroPerMbit = binary.BigEndian.Uint32(data[8:12])
	count := int(binary.BigEndian.Uint16(data[12:14]))
	if count > MaxClients {
		return nil, ErrTooMany
	}
	off := headerBytes
	for i := 0; i < count; i++ {
		if off >= len(data) {
			return nil, ErrTruncated
		}
		idLen := int(data[off])
		off++
		if idLen == 0 || idLen > maxIDLen {
			return nil, ErrBadID
		}
		if off+idLen+4 > len(data) {
			return nil, ErrTruncated
		}
		id := string(data[off : off+idLen])
		off += idLen
		delay := binary.BigEndian.Uint32(data[off : off+4])
		off += 4
		b.Clients = append(b.Clients, ClientDelay{ClientID: id, DelayMicroPerMbit: delay})
	}
	if off != len(data) {
		return nil, fmt.Errorf("proto: %d trailing bytes", len(data)-off)
	}
	return b, nil
}
