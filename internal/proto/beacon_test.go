package proto

import (
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"acorn/internal/spectrum"
)

func sampleIE() *BeaconIE {
	b := &BeaconIE{
		Channel:         spectrum.NewChannel40(36, 40),
		K:               3,
		ATDMicroPerMbit: DelayToWire(0.155),
		Clients: []ClientDelay{
			{ClientID: "aa:bb:cc:dd:ee:01", DelayMicroPerMbit: DelayToWire(0.0075)},
			{ClientID: "aa:bb:cc:dd:ee:02", DelayMicroPerMbit: DelayToWire(0.1475)},
		},
	}
	b.SetM(0.5)
	return b
}

func TestRoundTrip(t *testing.T) {
	orig := sampleIE()
	data, err := orig.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Unmarshal(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.Channel != orig.Channel || got.K != orig.K || got.MilliM != orig.MilliM ||
		got.ATDMicroPerMbit != orig.ATDMicroPerMbit || len(got.Clients) != len(orig.Clients) {
		t.Fatalf("round trip mismatch: %+v vs %+v", got, orig)
	}
	for i := range orig.Clients {
		if got.Clients[i] != orig.Clients[i] {
			t.Errorf("client %d mismatch", i)
		}
	}
}

func TestRoundTrip20MHz(t *testing.T) {
	b := &BeaconIE{Channel: spectrum.NewChannel20(44), K: 1}
	b.SetM(1)
	data, err := b.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Unmarshal(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.Channel != b.Channel {
		t.Errorf("channel = %v, want %v", got.Channel, b.Channel)
	}
}

func TestRoundTripProperty(t *testing.T) {
	ids := []spectrum.ChannelID{36, 40, 44, 48, 52, 56, 60, 64, 100, 104, 108, 112}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		b := &BeaconIE{K: uint16(rng.Intn(64)), ATDMicroPerMbit: rng.Uint32()}
		b.SetM(rng.Float64())
		if rng.Intn(2) == 0 {
			b.Channel = spectrum.NewChannel20(ids[rng.Intn(len(ids))])
		} else {
			pair := rng.Intn(6)
			b.Channel = spectrum.NewChannel40(ids[2*pair], ids[2*pair+1])
		}
		nc := rng.Intn(8)
		for i := 0; i < nc; i++ {
			b.Clients = append(b.Clients, ClientDelay{
				ClientID:          fmt.Sprintf("sta-%02d-%x", i, rng.Uint32()),
				DelayMicroPerMbit: rng.Uint32(),
			})
		}
		data, err := b.Marshal()
		if err != nil {
			return false
		}
		got, err := Unmarshal(data)
		if err != nil {
			return false
		}
		if got.Channel != b.Channel || got.K != b.K || got.MilliM != b.MilliM ||
			got.ATDMicroPerMbit != b.ATDMicroPerMbit || len(got.Clients) != len(b.Clients) {
			return false
		}
		for i := range b.Clients {
			if got.Clients[i] != b.Clients[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestUnmarshalTruncation(t *testing.T) {
	data, err := sampleIE().Marshal()
	if err != nil {
		t.Fatal(err)
	}
	// Every strict prefix must fail cleanly (no panic, error returned).
	for l := 0; l < len(data); l++ {
		if _, err := Unmarshal(data[:l]); err == nil {
			t.Errorf("prefix of length %d accepted", l)
		}
	}
	// Trailing garbage is rejected.
	if _, err := Unmarshal(append(append([]byte{}, data...), 0xFF)); err == nil {
		t.Error("trailing byte accepted")
	}
}

func TestUnmarshalMutationNeverPanics(t *testing.T) {
	data, err := sampleIE().Marshal()
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 2000; trial++ {
		m := append([]byte(nil), data...)
		flips := 1 + rng.Intn(4)
		for i := 0; i < flips; i++ {
			m[rng.Intn(len(m))] ^= byte(1 << rng.Intn(8))
		}
		// Either decodes or errors; must not panic.
		_, _ = Unmarshal(m)
	}
}

func TestUnmarshalErrors(t *testing.T) {
	base := sampleIE()
	data, _ := base.Marshal()

	bad := append([]byte(nil), data...)
	bad[0] = 99 // version
	if _, err := Unmarshal(bad); !errors.Is(err, ErrVersion) {
		t.Errorf("version error = %v", err)
	}

	bad = append([]byte(nil), data...)
	bad[1] = 30 // width
	if _, err := Unmarshal(bad); !errors.Is(err, ErrBadChannel) {
		t.Errorf("width error = %v", err)
	}

	// 20 MHz element with nonzero secondary.
	b20 := &BeaconIE{Channel: spectrum.NewChannel20(36)}
	d20, _ := b20.Marshal()
	d20[3] = 40
	if _, err := Unmarshal(d20); !errors.Is(err, ErrBadChannel) {
		t.Errorf("nonzero secondary error = %v", err)
	}

	// 40 MHz with equal components.
	b40 := sampleIE()
	d40, _ := b40.Marshal()
	d40[3] = d40[2]
	if _, err := Unmarshal(d40); !errors.Is(err, ErrBadChannel) {
		t.Errorf("equal components error = %v", err)
	}

	// Access share out of range.
	bad = append([]byte(nil), data...)
	bad[6], bad[7] = 0xFF, 0xFF
	if _, err := Unmarshal(bad); err == nil {
		t.Error("out-of-range M accepted")
	}
}

func TestMarshalErrors(t *testing.T) {
	b := sampleIE()
	b.Clients = make([]ClientDelay, MaxClients+1)
	for i := range b.Clients {
		b.Clients[i] = ClientDelay{ClientID: "x"}
	}
	if _, err := b.Marshal(); !errors.Is(err, ErrTooMany) {
		t.Errorf("too-many error = %v", err)
	}
	b = sampleIE()
	b.Clients[0].ClientID = ""
	if _, err := b.Marshal(); !errors.Is(err, ErrBadID) {
		t.Errorf("empty-id error = %v", err)
	}
	b = sampleIE()
	b.Clients[0].ClientID = strings.Repeat("x", maxIDLen+1)
	if _, err := b.Marshal(); !errors.Is(err, ErrBadID) {
		t.Errorf("long-id error = %v", err)
	}
	b = sampleIE()
	b.Channel = spectrum.Channel{}
	if _, err := b.Marshal(); !errors.Is(err, ErrBadChannel) {
		t.Errorf("zero-channel error = %v", err)
	}
}

func TestDelayConversions(t *testing.T) {
	cases := []float64{0, 0.0075, 0.155, 1, 1000}
	for _, d := range cases {
		back := DelayFromWire(DelayToWire(d))
		if diff := back - d; diff > 1e-6 || diff < -1e-6 {
			t.Errorf("delay %v round trip gave %v", d, back)
		}
	}
	if DelayToWire(-1) != 0 {
		t.Error("negative delay should clamp to 0")
	}
	if DelayToWire(1e10) != 1<<32-1 {
		t.Error("huge delay should saturate")
	}
}

func TestSetMClamping(t *testing.T) {
	var b BeaconIE
	b.SetM(-0.5)
	if b.MilliM != 0 {
		t.Error("negative M should clamp to 0")
	}
	b.SetM(2)
	if b.MilliM != 1000 {
		t.Error("M above 1 should clamp to 1000")
	}
	b.SetM(0.333)
	if m := b.M(); m < 0.332 || m > 0.334 {
		t.Errorf("M round trip = %v", m)
	}
}
