package proto

// The 802.11 management-frame wrapper around the ACORN element: a beacon
// frame with MAC header, the fixed beacon fields (timestamp, interval,
// capabilities), the SSID element, the vendor element carrying the ACORN
// IE, and the FCS. This is the frame the paper's modified driver broadcasts
// (Section 5.1); clients parse it to run Algorithm 1.

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
)

// Management frame constants.
const (
	// beaconFrameControl is type=management (00), subtype=beacon (1000),
	// version 0, little-endian on the wire.
	beaconFrameControl uint16 = 0x0080
	macHeaderBytes            = 24
	fixedFieldBytes           = 8 + 2 + 2 // timestamp + interval + capabilities
	fcsBytes                  = 4
	// elemSSID and elemVendor are 802.11 element IDs.
	elemSSID   = 0
	elemVendor = 221
	maxSSID    = 32
	// acornOUI tags the vendor element (a locally administered OUI).
	acornOUI0, acornOUI1, acornOUI2 = 0x02, 0xAC, 0x0E
	// broadcastAddr fills DA for beacons.
)

var broadcastAddr = [6]byte{0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF}

// BeaconFrame is a decoded ACORN beacon.
type BeaconFrame struct {
	// BSSID and SA identify the transmitting AP (equal for beacons).
	BSSID [6]byte
	// SSID is the network name.
	SSID string
	// TimestampMicros is the TSF timestamp.
	TimestampMicros uint64
	// BeaconIntervalTU is the beacon interval in time units (1024 µs).
	BeaconIntervalTU uint16
	// ACORN is the embedded information element.
	ACORN *BeaconIE
	// SeqNum is the 12-bit sequence number.
	SeqNum uint16
}

// Frame-level decode errors.
var (
	ErrFrameTooShort = errors.New("proto: frame too short")
	ErrBadFCS        = errors.New("proto: FCS mismatch")
	ErrNotBeacon     = errors.New("proto: not a beacon frame")
	ErrNoACORN       = errors.New("proto: no ACORN element present")
)

// MarshalFrame serializes the full beacon frame including FCS.
func (f *BeaconFrame) MarshalFrame() ([]byte, error) {
	if len(f.SSID) > maxSSID {
		return nil, fmt.Errorf("proto: SSID longer than %d bytes", maxSSID)
	}
	if f.ACORN == nil {
		return nil, ErrNoACORN
	}
	body, err := f.ACORN.Marshal()
	if err != nil {
		return nil, err
	}
	vendorBody := append([]byte{acornOUI0, acornOUI1, acornOUI2}, body...)
	if len(vendorBody) > 255 {
		return nil, fmt.Errorf("proto: ACORN element too large for one IE (%d bytes)", len(vendorBody))
	}

	out := make([]byte, 0, macHeaderBytes+fixedFieldBytes+2+len(f.SSID)+2+len(vendorBody)+fcsBytes)
	// MAC header: frame control, duration, DA, SA, BSSID, seq-ctl.
	out = binary.LittleEndian.AppendUint16(out, beaconFrameControl)
	out = binary.LittleEndian.AppendUint16(out, 0) // duration
	out = append(out, broadcastAddr[:]...)
	out = append(out, f.BSSID[:]...) // SA
	out = append(out, f.BSSID[:]...) // BSSID
	out = binary.LittleEndian.AppendUint16(out, f.SeqNum<<4)
	// Fixed fields.
	out = binary.LittleEndian.AppendUint64(out, f.TimestampMicros)
	out = binary.LittleEndian.AppendUint16(out, f.BeaconIntervalTU)
	out = binary.LittleEndian.AppendUint16(out, 0x0001) // ESS capability
	// SSID element.
	out = append(out, elemSSID, byte(len(f.SSID)))
	out = append(out, f.SSID...)
	// Vendor element with the ACORN payload.
	out = append(out, elemVendor, byte(len(vendorBody)))
	out = append(out, vendorBody...)
	// FCS over everything so far.
	out = binary.LittleEndian.AppendUint32(out, crc32.ChecksumIEEE(out))
	return out, nil
}

// UnmarshalFrame parses and validates a beacon frame produced by
// MarshalFrame (or any 802.11 beacon carrying the ACORN vendor element).
// The FCS is checked first; corrupted frames are rejected wholesale, as a
// receiver would.
func UnmarshalFrame(data []byte) (*BeaconFrame, error) {
	if len(data) < macHeaderBytes+fixedFieldBytes+fcsBytes {
		return nil, ErrFrameTooShort
	}
	body, fcs := data[:len(data)-fcsBytes], data[len(data)-fcsBytes:]
	if binary.LittleEndian.Uint32(fcs) != crc32.ChecksumIEEE(body) {
		return nil, ErrBadFCS
	}
	fc := binary.LittleEndian.Uint16(body[0:2])
	if fc != beaconFrameControl {
		return nil, fmt.Errorf("%w: frame control %#04x", ErrNotBeacon, fc)
	}
	f := &BeaconFrame{}
	copy(f.BSSID[:], body[16:22])
	f.SeqNum = binary.LittleEndian.Uint16(body[22:24]) >> 4
	f.TimestampMicros = binary.LittleEndian.Uint64(body[24:32])
	f.BeaconIntervalTU = binary.LittleEndian.Uint16(body[32:34])

	// Walk the information elements.
	off := macHeaderBytes + fixedFieldBytes
	for off+2 <= len(body) {
		id, l := body[off], int(body[off+1])
		off += 2
		if off+l > len(body) {
			return nil, fmt.Errorf("proto: element %d overruns frame", id)
		}
		val := body[off : off+l]
		off += l
		switch id {
		case elemSSID:
			if l > maxSSID {
				return nil, fmt.Errorf("proto: SSID element too long (%d)", l)
			}
			f.SSID = string(val)
		case elemVendor:
			if l < 3 || val[0] != acornOUI0 || val[1] != acornOUI1 || val[2] != acornOUI2 {
				continue // some other vendor's element
			}
			ie, err := Unmarshal(val[3:])
			if err != nil {
				return nil, fmt.Errorf("proto: ACORN element: %w", err)
			}
			f.ACORN = ie
		}
	}
	if off != len(body) {
		return nil, fmt.Errorf("proto: %d trailing body bytes", len(body)-off)
	}
	if f.ACORN == nil {
		return nil, ErrNoACORN
	}
	return f, nil
}
