package mobility

import (
	"testing"
	"time"

	"acorn/internal/rf"
	"acorn/internal/spectrum"
)

func TestTrajectoryInterpolation(t *testing.T) {
	tr := Trajectory{
		{At: 0, Pos: rf.Point{X: 0, Y: 0}},
		{At: 10 * time.Second, Pos: rf.Point{X: 10, Y: 20}},
	}
	if p := tr.PositionAt(-time.Second); p != (rf.Point{X: 0, Y: 0}) {
		t.Errorf("before start = %v", p)
	}
	if p := tr.PositionAt(5 * time.Second); p != (rf.Point{X: 5, Y: 10}) {
		t.Errorf("midpoint = %v, want (5,10)", p)
	}
	if p := tr.PositionAt(time.Minute); p != (rf.Point{X: 10, Y: 20}) {
		t.Errorf("after end = %v", p)
	}
	if p := (Trajectory{}).PositionAt(0); p != (rf.Point{}) {
		t.Errorf("empty trajectory = %v", p)
	}
	// Zero-length segment does not divide by zero.
	dup := Trajectory{
		{At: time.Second, Pos: rf.Point{X: 1}},
		{At: time.Second, Pos: rf.Point{X: 2}},
	}
	if p := dup.PositionAt(time.Second); p.X != 1 && p.X != 2 {
		t.Errorf("degenerate segment = %v", p)
	}
}

func TestRoomWallLoss(t *testing.T) {
	cases := []struct {
		x    float64
		want float64
	}{{0, 0}, {20, 0}, {21, 12}, {40, 12}, {41, 24}, {100, 24}}
	for _, c := range cases {
		if got := float64(RoomWallLoss(c.x)); got != c.want {
			t.Errorf("RoomWallLoss(%v) = %v, want %v", c.x, got, c.want)
		}
	}
}

func TestWalkAwaySwitchesTo20(t *testing.T) {
	dur := 50 * time.Second
	samples := Run(DefaultScenario(WalkAway(dur), dur))
	if len(samples) != 51 {
		t.Fatalf("expected 51 samples, got %d", len(samples))
	}
	at, ok := SwitchTime(samples, spectrum.Width20)
	if !ok {
		t.Fatal("ACORN never fell back to 20 MHz while walking away")
	}
	// The paper sees the switch around t = 30 s; the exact second
	// depends on geometry, but it must happen in the middle of the walk.
	if at < 15*time.Second || at > 45*time.Second {
		t.Errorf("switch at %v, want mid-walk", at)
	}
	// After the switch ACORN tracks the fixed-20 curve and beats
	// fixed-40.
	last := samples[len(samples)-1]
	if last.ACORN <= last.Fixed40 {
		t.Errorf("final ACORN %v should beat fixed-40 %v", last.ACORN, last.Fixed40)
	}
	if last.Width != spectrum.Width20 {
		t.Errorf("final width = %v, want 20 MHz", last.Width)
	}
}

func TestWalkTowardSwitchesTo40(t *testing.T) {
	dur := 35 * time.Second
	samples := Run(DefaultScenario(WalkToward(dur), dur))
	at, ok := SwitchTime(samples, spectrum.Width40)
	if !ok {
		t.Fatal("ACORN never bonded while approaching")
	}
	if at > 20*time.Second {
		t.Errorf("switch to 40 MHz at %v, want early in the approach", at)
	}
	last := samples[len(samples)-1]
	if last.ACORN <= last.Fixed20 {
		t.Errorf("final ACORN %v should beat fixed-20 %v", last.ACORN, last.Fixed20)
	}
}

func TestACORNNeverWorseThanBothFixed(t *testing.T) {
	// At every instant ACORN operates at one of the two widths, so it can
	// never be below the minimum of the two fixed curves; with a working
	// adapter it should track close to the max (allow hysteresis slack).
	dur := 50 * time.Second
	for _, s := range Run(DefaultScenario(WalkAway(dur), dur)) {
		minFixed := s.Fixed20
		if s.Fixed40 < minFixed {
			minFixed = s.Fixed40
		}
		if s.ACORN < minFixed-1e-9 {
			t.Fatalf("t=%v: ACORN %v below both fixed widths (%v, %v)",
				s.At, s.ACORN, s.Fixed20, s.Fixed40)
		}
	}
}

func TestSwitchTimeSemantics(t *testing.T) {
	mk := func(ws ...spectrum.Width) []Sample {
		out := make([]Sample, len(ws))
		for i, w := range ws {
			out[i] = Sample{At: time.Duration(i) * time.Second, Width: w}
		}
		return out
	}
	// Starting at the width does not count; a transition does.
	s := mk(spectrum.Width40, spectrum.Width40, spectrum.Width20)
	if _, ok := SwitchTime(s, spectrum.Width40); ok {
		t.Error("initial width should not count as a switch")
	}
	at, ok := SwitchTime(s, spectrum.Width20)
	if !ok || at != 2*time.Second {
		t.Errorf("switch to 20 at %v ok=%v, want 2s", at, ok)
	}
	if _, ok := SwitchTime(nil, spectrum.Width20); ok {
		t.Error("empty samples should report no switch")
	}
}
