// Package mobility drives the pedestrian-mobility experiments of Figs 12
// and 13: a single AP serving two static clients plus one mobile laptop
// that walks away from (or toward) the AP. At each time step ACORN's width
// adapter re-evaluates whether the allocated 40 MHz channel still pays off
// given the measured link qualities; fixed-width configurations are
// evaluated alongside for comparison.
package mobility

import (
	"time"

	"acorn/internal/core"
	"acorn/internal/rf"
	"acorn/internal/spectrum"
	"acorn/internal/units"
	"acorn/internal/wlan"
)

// Waypoint anchors the mobile client's position at a point in time.
type Waypoint struct {
	At  time.Duration
	Pos rf.Point
}

// Trajectory is a piecewise-linear path through waypoints.
type Trajectory []Waypoint

// PositionAt returns the interpolated position at time t. Before the first
// waypoint the client sits at the first position; after the last, at the
// last.
func (tr Trajectory) PositionAt(t time.Duration) rf.Point {
	if len(tr) == 0 {
		return rf.Point{}
	}
	if t <= tr[0].At {
		return tr[0].Pos
	}
	for i := 1; i < len(tr); i++ {
		if t <= tr[i].At {
			a, b := tr[i-1], tr[i]
			span := (b.At - a.At).Seconds()
			if span <= 0 {
				return b.Pos
			}
			frac := (t - a.At).Seconds() / span
			return rf.Point{
				X: a.Pos.X + frac*(b.Pos.X-a.Pos.X),
				Y: a.Pos.Y + frac*(b.Pos.Y-a.Pos.Y),
			}
		}
	}
	return tr[len(tr)-1].Pos
}

// WalkAway returns the paper's first trajectory: start near the AP and walk
// through two rooms to a distant spot (Fig 12's dark arrows), stopping
// where the link is poor but alive — usable at 20 MHz, dead at 40 MHz.
func WalkAway(duration time.Duration) Trajectory {
	return Trajectory{
		{At: 0, Pos: rf.Point{X: 3, Y: 0}},
		{At: duration * 4 / 5, Pos: rf.Point{X: 60, Y: 0}},
		{At: duration, Pos: rf.Point{X: 60, Y: 0}},
	}
}

// WalkToward is the reverse experiment (Fig 12's striped arrows): start far
// and approach the AP.
func WalkToward(duration time.Duration) Trajectory {
	return Trajectory{
		{At: 0, Pos: rf.Point{X: 60, Y: 0}},
		{At: duration * 2 / 5, Pos: rf.Point{X: 10, Y: 0}},
		{At: duration, Pos: rf.Point{X: 3, Y: 0}},
	}
}

// RoomWallLoss models the floor plan of Fig 12: walking beyond x = 20 m
// crosses into the next room (+12 dB through the wall), and beyond x = 40 m
// into the one after (+12 dB more).
func RoomWallLoss(x float64) units.DB {
	switch {
	case x > 40:
		return 24
	case x > 20:
		return 12
	default:
		return 0
	}
}

// Sample is one time step of the experiment.
type Sample struct {
	At time.Duration
	// MobileSNR20 is the mobile client's 20 MHz-reference per-subcarrier
	// SNR at this instant.
	MobileSNR20 float64
	// Width is the width ACORN operates this step.
	Width spectrum.Width
	// ACORN, Fixed40 and Fixed20 are the aggregate cell throughputs
	// (Mbit/s) under the three policies.
	ACORN, Fixed40, Fixed20 float64
}

// Scenario describes the Figs 12–13 setup.
type Scenario struct {
	// AP position and the two static clients.
	AP      rf.Point
	StaticA rf.Point
	StaticB rf.Point
	// Path is the mobile client's trajectory.
	Path Trajectory
	// Step is the sampling interval.
	Step time.Duration
	// Duration is the experiment length.
	Duration time.Duration
}

// DefaultScenario reproduces the paper's setup: an AP with two nearby
// static clients and the default one-minute pedestrian walk.
func DefaultScenario(path Trajectory, duration time.Duration) Scenario {
	return Scenario{
		AP:       rf.Point{X: 0, Y: 0},
		StaticA:  rf.Point{X: 4, Y: 3},
		StaticB:  rf.Point{X: 6, Y: -2},
		Path:     path,
		Step:     time.Second,
		Duration: duration,
	}
}

// Run executes the scenario and returns the time series. The network is a
// single cell with a reserved 40 MHz allocation, so contention plays no
// role; what varies is the anomaly-weighted cell throughput at each width.
func Run(sc Scenario) []Sample {
	ap := &wlan.AP{ID: "AP", Pos: sc.AP, TxPower: 18}
	static := []*wlan.Client{
		{ID: "staticA", Pos: sc.StaticA},
		{ID: "staticB", Pos: sc.StaticB},
	}
	mobile := &wlan.Client{ID: "mobile", Pos: sc.Path.PositionAt(0)}
	n := wlan.NewNetwork([]*wlan.AP{ap}, append(append([]*wlan.Client(nil), static...), mobile))

	ch40 := n.Band.Channels40()[0]
	adapter := core.NewWidthAdapter(ch40)

	var out []Sample
	for t := time.Duration(0); t <= sc.Duration; t += sc.Step {
		mobile.Pos = sc.Path.PositionAt(t)
		mobile.ExtraLoss = map[string]units.DB{"AP": RoomWallLoss(mobile.Pos.X)}
		snrs := map[string]units.DB{
			"staticA": n.ClientSNR20(ap, static[0]),
			"staticB": n.ClientSNR20(ap, static[1]),
			"mobile":  n.ClientSNR20(ap, mobile),
		}
		cur := adapter.Decide(n, snrs)
		out = append(out, Sample{
			At:          t,
			MobileSNR20: float64(snrs["mobile"]),
			Width:       cur.Width,
			ACORN:       core.CellThroughputAt(n, snrs, cur.Width),
			Fixed40:     core.CellThroughputAt(n, snrs, spectrum.Width40),
			Fixed20:     core.CellThroughputAt(n, snrs, spectrum.Width20),
		})
	}
	return out
}

// SwitchTime returns the first time ACORN *transitions into* the given
// width (a sample at width w whose predecessor was at the other width), and
// ok=false if no such transition happens. Samples already at w from the
// start do not count — the interesting event is the switch.
func SwitchTime(samples []Sample, w spectrum.Width) (time.Duration, bool) {
	for i := 1; i < len(samples); i++ {
		if samples[i].Width == w && samples[i-1].Width != w {
			return samples[i].At, true
		}
	}
	return 0, false
}
