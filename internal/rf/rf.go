// Package rf models the radio environment of the testbed: a log-distance
// path-loss model with per-link shadowing, antenna gains, and the small
// per-channel quality jitter the Fig 8 experiment measures (negligible for
// the MIMO links of the paper's testbed, which is exactly the assumption
// ACORN's estimator relies on).
package rf

import (
	"math"

	"acorn/internal/spectrum"
	"acorn/internal/units"
)

// Point is a position in meters on the deployment floor plan.
type Point struct {
	X, Y float64
}

// DistanceTo returns the Euclidean distance between two points in meters.
func (p Point) DistanceTo(q Point) float64 {
	return math.Hypot(p.X-q.X, p.Y-q.Y)
}

// PathLossModel is the log-distance propagation model
//
//	PL(d) = PL(d0) + 10·n·log10(d/d0)
//
// with a reference loss at d0 = 1 m and path-loss exponent n. The defaults
// suit an indoor 5 GHz enterprise deployment like the paper's testbed.
type PathLossModel struct {
	// ReferenceLoss is the path loss at one meter. Free-space loss at
	// 5.2 GHz and 1 m is ≈46.9 dB.
	ReferenceLoss units.DB
	// Exponent is the path-loss exponent n (2 free space, ~3–3.5 indoor).
	Exponent float64
	// AntennaGain is the combined TX+RX antenna gain. The testbed nodes
	// use 5 dBi omnidirectional antennas on both ends.
	AntennaGain units.DB
}

// DefaultIndoor5GHz returns the propagation model used by all experiments
// unless a scenario overrides it.
func DefaultIndoor5GHz() PathLossModel {
	return PathLossModel{
		ReferenceLoss: 46.9,
		Exponent:      3.0,
		AntennaGain:   10, // 5 dBi at each end
	}
}

// PathLoss returns the net loss (path loss minus antenna gains, plus any
// extra obstruction loss) over the given distance in meters. Distances below
// one meter are clamped to the reference distance.
func (m PathLossModel) PathLoss(distanceM float64, extra units.DB) units.DB {
	if distanceM < 1 {
		distanceM = 1
	}
	pl := m.ReferenceLoss + units.DB(10*m.Exponent*math.Log10(distanceM))
	return pl + extra - m.AntennaGain
}

// RxPower returns the received power for a transmitter at power tx over the
// given distance with extra obstruction loss.
func (m PathLossModel) RxPower(tx units.DBm, distanceM float64, extra units.DB) units.DBm {
	return tx.Minus(m.PathLoss(distanceM, extra))
}

// CarrierSenseRange inverts the path-loss model at a receive threshold: it
// returns a distance r (meters) such that RxPower(tx, d, 0) >= threshold
// implies d <= r. The model is monotone in distance for a positive exponent
// (PathLoss grows with 10·n·log10(d)), so the exact crossover is
//
//	r* = 10^((tx − threshold − ReferenceLoss + AntennaGain) / (10·n))
//
// and the sub-meter clamp of PathLoss is covered by flooring the bound at
// the reference distance. The returned radius is r* inflated by a 1e-6
// relative margin — about nine orders of magnitude above the accumulated
// float error of the log10/pow round trip and of squared-distance
// comparisons — so a spatial index may prune any pair farther than r
// without ever disagreeing with the exact predicate. ok is false when the
// exponent is not positive (the model is not invertible; callers must fall
// back to exhaustive scans).
func (m PathLossModel) CarrierSenseRange(tx units.DBm, threshold units.DBm) (float64, bool) {
	if !(m.Exponent > 0) {
		return 0, false
	}
	exp := (float64(tx) - float64(threshold) - float64(m.ReferenceLoss) + float64(m.AntennaGain)) / (10 * m.Exponent)
	r := math.Pow(10, exp)
	if math.IsNaN(r) {
		return 0, false
	}
	if r < 1 {
		r = 1
	}
	return r * (1 + 1e-6), true
}

// ChannelJitter returns the deterministic, per-(link, channel) SNR jitter in
// dB that models the residual frequency dependence of link quality. For the
// MIMO links of the paper's testbed this variation is negligible (Fig 8
// shows essentially flat PER across channels); the model draws a value in
// roughly ±maxDB from a hash of the link seed and the channel's primary
// component so that repeated measurements of the same link on the same
// channel agree.
func ChannelJitter(linkSeed int64, ch spectrum.Channel, maxDB float64) units.DB {
	if ch.IsZero() {
		return 0
	}
	h := uint64(linkSeed)*0x9e3779b97f4a7c15 + uint64(ch.Primary)*0xbf58476d1ce4e5b9
	h ^= h >> 31
	h *= 0x94d049bb133111eb
	h ^= h >> 29
	// Map to [-1, 1) then scale.
	unit := float64(int64(h))/math.MaxInt64 + 0 // in (-1, 1)
	return units.DB(unit * maxDB)
}

// DefaultChannelJitterDB is the jitter amplitude matching the "negligible
// variation" observation of Fig 8 for MIMO links.
const DefaultChannelJitterDB = 0.4
