package rf

import (
	"math"
	"testing"
	"testing/quick"

	"acorn/internal/spectrum"
	"acorn/internal/units"
)

func TestDistance(t *testing.T) {
	if d := (Point{0, 0}).DistanceTo(Point{3, 4}); d != 5 {
		t.Errorf("distance = %v, want 5", d)
	}
	if d := (Point{1, 1}).DistanceTo(Point{1, 1}); d != 0 {
		t.Errorf("distance to self = %v", d)
	}
}

func TestPathLossMonotoneInDistance(t *testing.T) {
	m := DefaultIndoor5GHz()
	prev := -1e9
	for d := 1.0; d < 200; d *= 1.3 {
		pl := float64(m.PathLoss(d, 0))
		if pl <= prev {
			t.Fatalf("path loss not increasing at %v m", d)
		}
		prev = pl
	}
}

func TestPathLossReference(t *testing.T) {
	m := DefaultIndoor5GHz()
	// At 1 m: reference loss minus antenna gains.
	want := float64(m.ReferenceLoss) - float64(m.AntennaGain)
	if got := float64(m.PathLoss(1, 0)); math.Abs(got-want) > 1e-9 {
		t.Errorf("PathLoss(1m) = %v, want %v", got, want)
	}
	// Sub-meter clamps to 1 m.
	if m.PathLoss(0.1, 0) != m.PathLoss(1, 0) {
		t.Error("sub-meter distances should clamp")
	}
	// Exponent: each decade adds 10·n dB.
	d1 := float64(m.PathLoss(1, 0))
	d10 := float64(m.PathLoss(10, 0))
	if math.Abs((d10-d1)-10*m.Exponent) > 1e-9 {
		t.Errorf("decade loss = %v, want %v", d10-d1, 10*m.Exponent)
	}
}

func TestExtraLossAdds(t *testing.T) {
	m := DefaultIndoor5GHz()
	if got := m.PathLoss(5, 7) - m.PathLoss(5, 0); got != 7 {
		t.Errorf("extra loss delta = %v, want 7", got)
	}
}

func TestRxPower(t *testing.T) {
	m := DefaultIndoor5GHz()
	rx := m.RxPower(20, 10, 0)
	want := 20 - float64(m.PathLoss(10, 0))
	if math.Abs(float64(rx)-want) > 1e-9 {
		t.Errorf("RxPower = %v, want %v", rx, want)
	}
}

func TestChannelJitterDeterministic(t *testing.T) {
	ch := spectrum.NewChannel20(36)
	a := ChannelJitter(42, ch, 0.4)
	b := ChannelJitter(42, ch, 0.4)
	if a != b {
		t.Error("jitter not deterministic for same link/channel")
	}
	// Different channels generally differ.
	c := ChannelJitter(42, spectrum.NewChannel20(40), 0.4)
	if a == c {
		t.Error("jitter identical across channels (hash collision unlikely)")
	}
	if ChannelJitter(42, spectrum.Channel{}, 0.4) != 0 {
		t.Error("zero channel should have zero jitter")
	}
}

func TestChannelJitterBounded(t *testing.T) {
	f := func(seed int64, id uint8) bool {
		ch := spectrum.NewChannel20(spectrum.ChannelID(36 + 4*(int(id)%12)))
		j := float64(ChannelJitter(seed, ch, 0.4))
		return j >= -0.4 && j <= 0.4
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestChannelJitterNegligibleVsSNRScale(t *testing.T) {
	// Fig 8: variation across channels must be negligible — well under
	// the 3 dB bonding penalty.
	var maxAbs float64
	for id := spectrum.ChannelID(36); id <= 112; id += 4 {
		j := math.Abs(float64(ChannelJitter(7, spectrum.NewChannel20(id), DefaultChannelJitterDB)))
		if j > maxAbs {
			maxAbs = j
		}
	}
	if maxAbs >= 1.0 {
		t.Errorf("max channel jitter %v dB should stay below 1 dB", maxAbs)
	}
}

// TestCarrierSenseRangeBounds pins the inverse against RxPower itself: any
// distance at which the receive power clears the threshold must sit inside
// the returned radius, and distances just past the radius must not.
func TestCarrierSenseRangeBounds(t *testing.T) {
	m := DefaultIndoor5GHz()
	for _, tx := range []units.DBm{0, 10, 18, 23, 30} {
		for _, cs := range []units.DBm{-62, -75, -82, -90} {
			r, ok := m.CarrierSenseRange(tx, cs)
			if !ok {
				t.Fatalf("CarrierSenseRange(%v, %v) not invertible", tx, cs)
			}
			if r < 1 {
				t.Fatalf("CarrierSenseRange(%v, %v) = %v below the reference distance", tx, cs, r)
			}
			// Sweep distances across the crossover; the implication
			// RxPower >= cs  =>  d <= r must hold at every sample.
			for f := 0.01; f < 4; f *= 1.17 {
				d := r * f
				if m.RxPower(tx, d, 0) >= cs && d > r {
					t.Fatalf("tx=%v cs=%v: RxPower at d=%v clears threshold beyond radius %v", tx, cs, d, r)
				}
			}
			// Just inside the exact crossover the threshold must clear
			// (the radius is a bound, not a loose estimate).
			if inside := r / (1 + 1e-3); inside >= 1 {
				if m.RxPower(tx, inside, 0) < cs {
					t.Fatalf("tx=%v cs=%v: radius %v overshoots — threshold missed at %v", tx, cs, r, inside)
				}
			}
		}
	}
}

// TestCarrierSenseRangeDegenerate covers the non-invertible and clamped
// cases.
func TestCarrierSenseRangeDegenerate(t *testing.T) {
	m := DefaultIndoor5GHz()
	m.Exponent = 0
	if _, ok := m.CarrierSenseRange(18, -82); ok {
		t.Fatal("zero exponent must not be invertible")
	}
	m.Exponent = -2
	if _, ok := m.CarrierSenseRange(18, -82); ok {
		t.Fatal("negative exponent must not be invertible")
	}
	m = DefaultIndoor5GHz()
	// A threshold the transmitter cannot clear even at the reference
	// distance: the bound clamps to (just above) 1 m and the predicate is
	// false everywhere — still a valid conservative radius.
	r, ok := m.CarrierSenseRange(-100, -20)
	if !ok || r < 1 {
		t.Fatalf("clamped range = %v, %v; want >= 1, true", r, ok)
	}
}
