package rf

import (
	"math"
	"testing"
	"testing/quick"

	"acorn/internal/spectrum"
)

func TestDistance(t *testing.T) {
	if d := (Point{0, 0}).DistanceTo(Point{3, 4}); d != 5 {
		t.Errorf("distance = %v, want 5", d)
	}
	if d := (Point{1, 1}).DistanceTo(Point{1, 1}); d != 0 {
		t.Errorf("distance to self = %v", d)
	}
}

func TestPathLossMonotoneInDistance(t *testing.T) {
	m := DefaultIndoor5GHz()
	prev := -1e9
	for d := 1.0; d < 200; d *= 1.3 {
		pl := float64(m.PathLoss(d, 0))
		if pl <= prev {
			t.Fatalf("path loss not increasing at %v m", d)
		}
		prev = pl
	}
}

func TestPathLossReference(t *testing.T) {
	m := DefaultIndoor5GHz()
	// At 1 m: reference loss minus antenna gains.
	want := float64(m.ReferenceLoss) - float64(m.AntennaGain)
	if got := float64(m.PathLoss(1, 0)); math.Abs(got-want) > 1e-9 {
		t.Errorf("PathLoss(1m) = %v, want %v", got, want)
	}
	// Sub-meter clamps to 1 m.
	if m.PathLoss(0.1, 0) != m.PathLoss(1, 0) {
		t.Error("sub-meter distances should clamp")
	}
	// Exponent: each decade adds 10·n dB.
	d1 := float64(m.PathLoss(1, 0))
	d10 := float64(m.PathLoss(10, 0))
	if math.Abs((d10-d1)-10*m.Exponent) > 1e-9 {
		t.Errorf("decade loss = %v, want %v", d10-d1, 10*m.Exponent)
	}
}

func TestExtraLossAdds(t *testing.T) {
	m := DefaultIndoor5GHz()
	if got := m.PathLoss(5, 7) - m.PathLoss(5, 0); got != 7 {
		t.Errorf("extra loss delta = %v, want 7", got)
	}
}

func TestRxPower(t *testing.T) {
	m := DefaultIndoor5GHz()
	rx := m.RxPower(20, 10, 0)
	want := 20 - float64(m.PathLoss(10, 0))
	if math.Abs(float64(rx)-want) > 1e-9 {
		t.Errorf("RxPower = %v, want %v", rx, want)
	}
}

func TestChannelJitterDeterministic(t *testing.T) {
	ch := spectrum.NewChannel20(36)
	a := ChannelJitter(42, ch, 0.4)
	b := ChannelJitter(42, ch, 0.4)
	if a != b {
		t.Error("jitter not deterministic for same link/channel")
	}
	// Different channels generally differ.
	c := ChannelJitter(42, spectrum.NewChannel20(40), 0.4)
	if a == c {
		t.Error("jitter identical across channels (hash collision unlikely)")
	}
	if ChannelJitter(42, spectrum.Channel{}, 0.4) != 0 {
		t.Error("zero channel should have zero jitter")
	}
}

func TestChannelJitterBounded(t *testing.T) {
	f := func(seed int64, id uint8) bool {
		ch := spectrum.NewChannel20(spectrum.ChannelID(36 + 4*(int(id)%12)))
		j := float64(ChannelJitter(seed, ch, 0.4))
		return j >= -0.4 && j <= 0.4
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestChannelJitterNegligibleVsSNRScale(t *testing.T) {
	// Fig 8: variation across channels must be negligible — well under
	// the 3 dB bonding penalty.
	var maxAbs float64
	for id := spectrum.ChannelID(36); id <= 112; id += 4 {
		j := math.Abs(float64(ChannelJitter(7, spectrum.NewChannel20(id), DefaultChannelJitterDB)))
		if j > maxAbs {
			maxAbs = j
		}
	}
	if maxAbs >= 1.0 {
		t.Errorf("max channel jitter %v dB should stay below 1 dB", maxAbs)
	}
}
