package wlan

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"testing"

	"acorn/internal/rf"
	"acorn/internal/spectrum"
	"acorn/internal/units"
)

// twoCellNetwork builds two isolated cells: AP1 with two clients (one good,
// one behind a wall), AP2 with one good client.
func twoCellNetwork() (*Network, *Config) {
	ap1 := &AP{ID: "AP1", Pos: rf.Point{X: 0, Y: 0}, TxPower: 18}
	ap2 := &AP{ID: "AP2", Pos: rf.Point{X: 600, Y: 0}, TxPower: 18}
	clients := []*Client{
		{ID: "good", Pos: rf.Point{X: 5, Y: 3}},
		{ID: "walled", Pos: rf.Point{X: 8, Y: -2}, ExtraLoss: map[string]units.DB{"AP1": 49, "AP2": 49}},
		{ID: "far", Pos: rf.Point{X: 604, Y: 2}},
	}
	n := NewNetwork([]*AP{ap1, ap2}, clients)
	cfg := NewConfig()
	cfg.Channels["AP1"] = spectrum.NewChannel20(36)
	cfg.Channels["AP2"] = spectrum.NewChannel40(44, 48)
	cfg.Assoc["good"] = "AP1"
	cfg.Assoc["walled"] = "AP1"
	cfg.Assoc["far"] = "AP2"
	return n, cfg
}

func TestNetworkValidate(t *testing.T) {
	n, _ := twoCellNetwork()
	if err := n.Validate(); err != nil {
		t.Fatalf("valid network rejected: %v", err)
	}
	dup := NewNetwork([]*AP{{ID: "A"}, {ID: "A"}}, nil)
	if err := dup.Validate(); err == nil {
		t.Error("duplicate AP IDs should fail validation")
	}
	noChan := NewNetwork([]*AP{{ID: "A"}}, nil)
	noChan.Band = spectrum.NewBand(nil)
	if err := noChan.Validate(); err == nil {
		t.Error("empty band should fail validation")
	}
	badPkt := NewNetwork([]*AP{{ID: "A"}}, nil)
	badPkt.PacketBytes = 0
	if err := badPkt.Validate(); err == nil {
		t.Error("zero packet size should fail validation")
	}
	emptyID := NewNetwork([]*AP{{ID: "A"}}, []*Client{{ID: ""}})
	if err := emptyID.Validate(); err == nil {
		t.Error("empty client ID should fail validation")
	}
}

func TestConfigValidate(t *testing.T) {
	n, cfg := twoCellNetwork()
	if err := cfg.Validate(n); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	missing := cfg.Clone()
	delete(missing.Channels, "AP1")
	if err := missing.Validate(n); err == nil {
		t.Error("missing channel should fail")
	}
	foreign := cfg.Clone()
	foreign.Channels["AP1"] = spectrum.NewChannel20(149)
	if err := foreign.Validate(n); err == nil {
		t.Error("out-of-band channel should fail")
	}
	ghost := cfg.Clone()
	ghost.Assoc["nobody"] = "AP1"
	if err := ghost.Validate(n); err == nil {
		t.Error("unknown client should fail")
	}
	orphan := cfg.Clone()
	orphan.Assoc["good"] = "AP9"
	if err := orphan.Validate(n); err == nil {
		t.Error("unknown AP should fail")
	}
}

func TestConfigCloneIndependent(t *testing.T) {
	_, cfg := twoCellNetwork()
	clone := cfg.Clone()
	clone.Channels["AP1"] = spectrum.NewChannel20(44)
	clone.Assoc["good"] = "AP2"
	if cfg.Channels["AP1"] != spectrum.NewChannel20(36) {
		t.Error("clone mutated original channels")
	}
	if cfg.Assoc["good"] != "AP1" {
		t.Error("clone mutated original associations")
	}
}

func TestClientsOfSorted(t *testing.T) {
	_, cfg := twoCellNetwork()
	got := cfg.ClientsOf("AP1")
	if len(got) != 2 || got[0] != "good" || got[1] != "walled" {
		t.Errorf("ClientsOf = %v", got)
	}
	if got := cfg.ClientsOf("AP9"); got != nil {
		t.Errorf("ClientsOf unknown AP = %v", got)
	}
}

// TestClientsOfIndexMaintained churns associations through SetAssoc/Unassoc
// and checks the incrementally-maintained reverse index against the naive
// scan-and-sort reference after every mutation.
func TestClientsOfIndexMaintained(t *testing.T) {
	cfg := NewConfig()
	aps := []string{"A", "B", "C"}
	reference := func(apID string) []string {
		var ids []string
		for cl, ap := range cfg.Assoc {
			if ap == apID {
				ids = append(ids, cl)
			}
		}
		sort.Strings(ids)
		return ids
	}
	check := func(step string) {
		t.Helper()
		for _, ap := range aps {
			got, want := cfg.ClientsOf(ap), reference(ap)
			if len(got) != len(want) {
				t.Fatalf("%s: ClientsOf(%s) = %v, want %v", step, ap, got, want)
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("%s: ClientsOf(%s) = %v, want %v", step, ap, got, want)
				}
			}
		}
	}
	// Force the index to exist before the churn so every mutation exercises
	// the incremental maintenance, not the lazy rebuild.
	cfg.ClientsOf("A")
	rng := uint64(12345)
	next := func(n int) int {
		rng = rng*6364136223846793005 + 1442695040888963407
		return int(rng>>33) % n
	}
	for i := 0; i < 2000; i++ {
		id := fmt.Sprintf("u%02d", next(40))
		switch next(3) {
		case 0, 1:
			cfg.SetAssoc(id, aps[next(len(aps))])
		case 2:
			cfg.Unassoc(id)
		}
		check(fmt.Sprintf("step %d", i))
	}
	// Re-associating to the same AP is a no-op, not a duplicate.
	cfg.SetAssoc("u00", "A")
	cfg.SetAssoc("u00", "A")
	seen := map[string]bool{}
	for _, id := range cfg.ClientsOf("A") {
		if seen[id] {
			t.Fatalf("duplicate %s in index", id)
		}
		seen[id] = true
	}
}

func TestClientSNRWidthGap(t *testing.T) {
	n, _ := twoCellNetwork()
	ap := n.AP("AP1")
	c := n.Client("good")
	s20 := float64(n.ClientSNR(ap, c, spectrum.NewChannel20(36)))
	s40 := float64(n.ClientSNR(ap, c, spectrum.NewChannel40(36, 40)))
	// ≈3 dB bonding gap modulo per-channel jitter.
	if gap := s20 - s40; gap < 2 || gap > 4.2 {
		t.Errorf("width SNR gap = %v, want ≈3 dB", gap)
	}
}

func TestClientSNRWallLoss(t *testing.T) {
	n, _ := twoCellNetwork()
	ap := n.AP("AP1")
	good := float64(n.ClientSNR20(ap, n.Client("good")))
	walled := float64(n.ClientSNR20(ap, n.Client("walled")))
	// The wall is 49 dB; positions differ slightly so allow slack.
	if d := good - walled; d < 40 || d > 58 {
		t.Errorf("wall attenuation delta = %v, want ≈49", d)
	}
}

func TestAPsInRangeOrderedAndFiltered(t *testing.T) {
	n, _ := twoCellNetwork()
	aps := n.APsInRange(n.Client("good"))
	if len(aps) != 1 || aps[0].ID != "AP1" {
		t.Errorf("good client should only hear AP1, got %v", ids(aps))
	}
	// A client midway hears both, strongest first.
	mid := &Client{ID: "mid", Pos: rf.Point{X: 200, Y: 0}}
	n.Clients = append(n.Clients, mid)
	aps = n.APsInRange(mid)
	if len(aps) != 2 || aps[0].ID != "AP1" {
		t.Errorf("midway client candidates = %v, want [AP1 AP2]", ids(aps))
	}
}

func ids(aps []*AP) []string {
	var out []string
	for _, ap := range aps {
		out = append(out, ap.ID)
	}
	return out
}

func TestContendAndDegree(t *testing.T) {
	n, cfg := twoCellNetwork()
	if n.Contend(n.AP("AP1"), n.AP("AP2"), cfg) {
		t.Error("APs 600 m apart should not contend")
	}
	// Two APs 30 m apart contend.
	a := &AP{ID: "A", Pos: rf.Point{X: 0, Y: 0}, TxPower: 18}
	b := &AP{ID: "B", Pos: rf.Point{X: 30, Y: 0}, TxPower: 18}
	dense := NewNetwork([]*AP{a, b}, nil)
	if !dense.Contend(a, b, NewConfig()) {
		t.Error("APs 30 m apart should contend")
	}
	if dense.Contend(a, a, NewConfig()) {
		t.Error("an AP never contends with itself")
	}
	degrees, max := dense.InterferenceDegree(NewConfig())
	if degrees["A"] != 1 || degrees["B"] != 1 || max != 1 {
		t.Errorf("degrees = %v, max = %d", degrees, max)
	}
}

func TestContendViaClient(t *testing.T) {
	// Two APs out of mutual carrier sense but with a client of B audible
	// to A still contend (footnote 5).
	a := &AP{ID: "A", Pos: rf.Point{X: 0, Y: 0}, TxPower: 18}
	b := &AP{ID: "B", Pos: rf.Point{X: 260, Y: 0}, TxPower: 18}
	mid := &Client{ID: "mid", Pos: rf.Point{X: 100, Y: 0}}
	n := NewNetwork([]*AP{a, b}, []*Client{mid})
	cfg := NewConfig()
	if n.Contend(a, b, cfg) {
		t.Fatal("test setup: APs should be out of direct CS range")
	}
	cfg.Assoc["mid"] = "B"
	if !n.Contend(a, b, cfg) {
		t.Error("A should contend with B via B's client in A's range")
	}
}

func TestAccessShare(t *testing.T) {
	a := &AP{ID: "A", Pos: rf.Point{X: 0, Y: 0}, TxPower: 18}
	b := &AP{ID: "B", Pos: rf.Point{X: 30, Y: 0}, TxPower: 18}
	ca := &Client{ID: "ca", Pos: rf.Point{X: 2, Y: 1}}
	cb := &Client{ID: "cb", Pos: rf.Point{X: 31, Y: 1}}
	n := NewNetwork([]*AP{a, b}, []*Client{ca, cb})
	cfg := NewConfig()
	cfg.Assoc["ca"] = "A"
	cfg.Assoc["cb"] = "B"

	// Same channel → shared medium.
	cfg.Channels["A"] = spectrum.NewChannel20(36)
	cfg.Channels["B"] = spectrum.NewChannel20(36)
	if m := n.AccessShare(cfg, a); m != 0.5 {
		t.Errorf("co-channel access share = %v, want 0.5", m)
	}
	// Orthogonal channels → full share.
	cfg.Channels["B"] = spectrum.NewChannel20(44)
	if m := n.AccessShare(cfg, a); m != 1 {
		t.Errorf("orthogonal access share = %v, want 1", m)
	}
	// Basic vs composite containing it → conflict again.
	cfg.Channels["B"] = spectrum.NewChannel40(36, 40)
	if m := n.AccessShare(cfg, a); m != 0.5 {
		t.Errorf("composite-overlap access share = %v, want 0.5", m)
	}
	// A clientless contender costs nothing.
	cfg.Unassoc("cb")
	if m := n.AccessShare(cfg, a); m != 1 {
		t.Errorf("idle contender should not cost airtime, got %v", m)
	}
}

func TestEvaluateBasics(t *testing.T) {
	n, cfg := twoCellNetwork()
	rep := n.Evaluate(cfg)
	if len(rep.Cells) != 2 {
		t.Fatalf("expected 2 cells, got %d", len(rep.Cells))
	}
	if rep.TotalUDP <= 0 {
		t.Fatal("network throughput should be positive")
	}
	c1 := rep.Cell("AP1")
	if c1 == nil || len(c1.Clients) != 2 {
		t.Fatalf("AP1 cell malformed: %+v", c1)
	}
	// Performance anomaly: both AP1 clients see identical UDP throughput
	// despite very different link qualities.
	if math.Abs(c1.Clients[0].ThroughputUDP-c1.Clients[1].ThroughputUDP) > 1e-9 {
		t.Error("per-client UDP throughput should be equal under DCF")
	}
	// TCP throughput is at most UDP throughput.
	for _, cell := range rep.Cells {
		if cell.ThroughputTCP > cell.ThroughputUDP {
			t.Errorf("%s: TCP %v exceeds UDP %v", cell.APID, cell.ThroughputTCP, cell.ThroughputUDP)
		}
	}
	if rep.Cell("AP9") != nil {
		t.Error("unknown cell lookup should return nil")
	}
	// Totals are sums of cells.
	var sum float64
	for _, cell := range rep.Cells {
		sum += cell.ThroughputUDP
	}
	if math.Abs(sum-rep.TotalUDP) > 1e-9 {
		t.Error("TotalUDP is not the sum of cells")
	}
}

func TestEvaluateEmptyCell(t *testing.T) {
	n, cfg := twoCellNetwork()
	delete(cfg.Assoc, "far")
	rep := n.Evaluate(cfg)
	c2 := rep.Cell("AP2")
	if c2.ThroughputUDP != 0 || len(c2.Clients) != 0 {
		t.Errorf("empty cell should have zero throughput: %+v", c2)
	}
}

func TestAnomalySlowClientDragsCell(t *testing.T) {
	n, cfg := twoCellNetwork()
	with := n.Evaluate(cfg).Cell("AP1").ThroughputUDP
	// Remove the walled client: the good client's cell throughput must
	// rise substantially.
	cfg.Unassoc("walled")
	without := n.Evaluate(cfg).Cell("AP1").ThroughputUDP
	if without <= 2*with {
		t.Errorf("removing the slow client should at least double cell throughput: %v → %v", with, without)
	}
}

func TestIsolatedThroughputPicksWidth(t *testing.T) {
	n, cfg := twoCellNetwork()
	// AP2's single good client: bonding should win.
	_, ch := n.IsolatedThroughput(cfg, n.AP("AP2"))
	if ch.Width != spectrum.Width40 {
		t.Errorf("good cell isolated width = %v, want 40 MHz", ch.Width)
	}
	// A cell of only near-dead clients prefers 20 MHz.
	deadCfg := cfg.Clone()
	deadCfg.Assoc = map[string]string{"walled": "AP1"}
	_, ch = n.IsolatedThroughput(deadCfg, n.AP("AP1"))
	if ch.Width != spectrum.Width20 {
		t.Errorf("poor cell isolated width = %v, want 20 MHz", ch.Width)
	}
	// Empty cell → zero.
	if tput, _ := n.IsolatedThroughput(deadCfg, n.AP("AP2")); tput != 0 {
		t.Errorf("empty cell isolated throughput = %v", tput)
	}
}

func TestUpperBoundDominatesEvaluation(t *testing.T) {
	n, cfg := twoCellNetwork()
	ub := n.UpperBound(cfg)
	got := n.Evaluate(cfg).TotalUDP
	// Y* is an upper bound on any same-association configuration; jitter
	// can nudge the comparison by a hair, hence the epsilon.
	if got > ub*1.02 {
		t.Errorf("evaluation %v exceeds upper bound %v", got, ub)
	}
}

func TestFairnessIndex(t *testing.T) {
	n, cfg := twoCellNetwork()
	rep := n.Evaluate(cfg)
	j := rep.FairnessIndex()
	if j <= 0 || j > 1 {
		t.Fatalf("Jain index %v out of range", j)
	}
	// The mixed cell plus the solo good cell give unequal shares: J < 1.
	if j > 0.999 {
		t.Errorf("Jain index %v suspiciously perfect for unequal shares", j)
	}
	// Empty network is perfectly fair by convention.
	empty := &NetworkReport{}
	if empty.FairnessIndex() != 1 {
		t.Error("empty network should report J = 1")
	}
	// Equal shares give exactly 1.
	eq := &NetworkReport{Cells: []CellReport{{Clients: []ClientReport{
		{ThroughputUDP: 5}, {ThroughputUDP: 5},
	}}}}
	if got := eq.FairnessIndex(); math.Abs(got-1) > 1e-12 {
		t.Errorf("equal shares J = %v, want 1", got)
	}
}

func TestInterferenceDOT(t *testing.T) {
	a := &AP{ID: "A", Pos: rf.Point{X: 0, Y: 0}, TxPower: 18}
	b := &AP{ID: "B", Pos: rf.Point{X: 30, Y: 0}, TxPower: 18}
	c := &AP{ID: "C", Pos: rf.Point{X: 5000, Y: 0}, TxPower: 18}
	ca := &Client{ID: "ca", Pos: rf.Point{X: 1, Y: 1}}
	n := NewNetwork([]*AP{a, b, c}, []*Client{ca})
	cfg := NewConfig()
	cfg.Channels["A"] = spectrum.NewChannel40(36, 40)
	cfg.Channels["B"] = spectrum.NewChannel20(36) // overlaps A
	cfg.Channels["C"] = spectrum.NewChannel20(44)
	cfg.Assoc["ca"] = "A"
	dot := n.InterferenceDOT(cfg)
	if !strings.Contains(dot, "graph interference") {
		t.Fatal("missing DOT header")
	}
	// A and B contend and overlap → solid edge; C is out of range → no
	// edge at all.
	if !strings.Contains(dot, `"A" -- "B" [style=solid]`) {
		t.Errorf("expected solid A--B edge in:\n%s", dot)
	}
	if strings.Contains(dot, `"C"`) && strings.Contains(dot, `-- "C"`) {
		t.Errorf("distant AP C should have no edges:\n%s", dot)
	}
	// Move B to an orthogonal channel → dashed edge.
	cfg.Channels["B"] = spectrum.NewChannel20(44)
	dot = n.InterferenceDOT(cfg)
	if !strings.Contains(dot, `"A" -- "B" [style=dashed]`) {
		t.Errorf("expected dashed A--B edge in:\n%s", dot)
	}
	if !strings.Contains(dot, "1 clients") {
		t.Errorf("client count missing from label:\n%s", dot)
	}
}
