package wlan

import (
	"fmt"
	"sort"
	"strings"
)

// InterferenceDOT renders the interference graph of the network under the
// given configuration in Graphviz DOT format: one node per AP labeled with
// its channel and client count, one edge per contending pair, with edges
// that share spectrum under the current assignment drawn solid (these cost
// airtime) and orthogonal-channel edges dashed (potential interference the
// allocation dodged). Handy for operator tooling and for eyeballing what
// Algorithm 2 did.
func (n *Network) InterferenceDOT(cfg *Config) string {
	var b strings.Builder
	b.WriteString("graph interference {\n")
	b.WriteString("  layout=neato;\n  node [shape=box, fontname=\"monospace\"];\n")
	ids := make([]string, 0, len(n.APs))
	byID := map[string]*AP{}
	for _, ap := range n.APs {
		ids = append(ids, ap.ID)
		byID[ap.ID] = ap
	}
	sort.Strings(ids)
	for _, id := range ids {
		ch := cfg.Channels[id]
		label := fmt.Sprintf(`%s\n%v\n%d clients`, dotEscape(id), ch, len(cfg.ClientsOf(id)))
		fmt.Fprintf(&b, "  \"%s\" [label=\"%s\"];\n", dotEscape(id), label)
	}
	for i, a := range ids {
		for _, bID := range ids[i+1:] {
			apA, apB := byID[a], byID[bID]
			if !n.Contend(apA, apB, cfg) {
				continue
			}
			style := "dashed"
			if cfg.Channels[a].Conflicts(cfg.Channels[bID]) {
				style = "solid"
			}
			fmt.Fprintf(&b, "  %q -- %q [style=%s];\n", a, bID, style)
		}
	}
	b.WriteString("}\n")
	return b.String()
}

// dotEscape makes an identifier safe inside a double-quoted DOT string.
func dotEscape(s string) string {
	return strings.ReplaceAll(s, `"`, `\"`)
}
