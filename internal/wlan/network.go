// Package wlan models an enterprise 802.11n WLAN — APs, clients, the radio
// environment between them — and evaluates the network-wide throughput of a
// complete configuration (channel assignment + user association). It is the
// substrate both ACORN (internal/core) and the legacy baselines
// (internal/baseline) are measured on, playing the role of the paper's
// 18-node testbed.
//
// The throughput model composes the other substrates: internal/rf gives each
// AP→client link a received power, internal/ratecontrol picks the MCS/mode a
// real card would, internal/phy turns SNR into PER, and internal/mac turns
// per-client delays into cell throughput under the DCF performance anomaly,
// scaled by the channel access share M against co-channel contenders.
package wlan

import (
	"fmt"
	"sort"

	"acorn/internal/phy"
	"acorn/internal/rf"
	"acorn/internal/spectrum"
	"acorn/internal/units"
)

// AP is an access point.
type AP struct {
	ID  string
	Pos rf.Point
	// TxPower is the transmit power; the testbed uses the regulatory
	// maximum unless an experiment sweeps it.
	TxPower units.DBm
}

// Client is a (downlink-saturated) WLAN user.
type Client struct {
	ID  string
	Pos rf.Point
	// ExtraLoss adds per-AP obstruction loss (walls, enclosures) on top
	// of distance path loss, keyed by AP ID. Constructed topologies use
	// it to pin link qualities precisely.
	ExtraLoss map[string]units.DB
}

// Network is the static description of a deployment: radios, geometry and
// spectrum. It does not include the configuration (channels/association),
// which is what the allocation algorithms produce.
type Network struct {
	APs     []*AP
	Clients []*Client
	Band    *spectrum.Band
	Prop    rf.PathLossModel
	// PacketBytes is the payload size of the saturated downlink traffic.
	PacketBytes int
	// JitterDB is the amplitude of per-(link,channel) SNR jitter.
	JitterDB float64
	// CSThreshold is the carrier-sense power above which two radios
	// contend for the medium.
	CSThreshold units.DBm
	// AssocMinSNR is the minimum 20 MHz per-subcarrier SNR at which a
	// client considers an AP to be in range.
	AssocMinSNR units.DB
	// NoiseFigure is the receiver noise figure, subtracted from every
	// link SNR on top of the thermal floor. Commodity 802.11n cards sit
	// around 7 dB.
	NoiseFigure units.DB
	// ContendOverride, when non-nil, replaces the geometric contention
	// predicate entirely: measurement-driven deployments (the networked
	// controller) know who hears whom from reports, not from a floor
	// plan. It must be symmetric.
	ContendOverride func(apA, apB string) bool

	apIndex     map[string]*AP
	clientIndex map[string]*Client
}

// NewNetwork builds a network with the standard experiment defaults: the
// 12-channel 5 GHz band, indoor propagation, 1500-byte packets, −82 dBm
// carrier sense and a decode floor of −2 dB per-subcarrier SNR.
func NewNetwork(aps []*AP, clients []*Client) *Network {
	n := &Network{
		APs:         aps,
		Clients:     clients,
		Band:        spectrum.DefaultBand5GHz(),
		Prop:        rf.DefaultIndoor5GHz(),
		PacketBytes: phy.DefaultPacketSizeBytes,
		JitterDB:    rf.DefaultChannelJitterDB,
		CSThreshold: -82,
		AssocMinSNR: -5,
		NoiseFigure: 7,
	}
	n.reindex()
	return n
}

func (n *Network) reindex() {
	n.apIndex = make(map[string]*AP, len(n.APs))
	for _, ap := range n.APs {
		n.apIndex[ap.ID] = ap
	}
	n.clientIndex = make(map[string]*Client, len(n.Clients))
	for _, c := range n.Clients {
		n.clientIndex[c.ID] = c
	}
}

// AP returns the AP with the given ID, or nil. The lookup index self-heals
// when callers have appended to the APs slice (e.g. dynamic deployments).
func (n *Network) AP(id string) *AP {
	if n.apIndex == nil || len(n.apIndex) != len(n.APs) {
		n.reindex()
	}
	return n.apIndex[id]
}

// Client returns the client with the given ID, or nil. Like AP, the index
// self-heals after the Clients slice grows (clients arriving over time).
func (n *Network) Client(id string) *Client {
	if n.clientIndex == nil || len(n.clientIndex) != len(n.Clients) {
		n.reindex()
	}
	return n.clientIndex[id]
}

// RemoveClient removes the client with the given ID from the network and
// reports whether it was present. Removals must go through here rather than
// splicing Clients directly: a removal followed by an arrival leaves the
// slice length unchanged, which the length-based index self-heal cannot
// detect, so the index is invalidated eagerly.
func (n *Network) RemoveClient(id string) bool {
	for i, c := range n.Clients {
		if c.ID == id {
			n.Clients = append(n.Clients[:i], n.Clients[i+1:]...)
			n.clientIndex = nil
			return true
		}
	}
	return false
}

// linkSeed derives a stable per-link jitter seed from the endpoint IDs.
func linkSeed(apID, clientID string) int64 {
	var h uint64 = 1469598103934665603
	for _, s := range []string{apID, "→", clientID} {
		for i := 0; i < len(s); i++ {
			h ^= uint64(s[i])
			h *= 1099511628211
		}
	}
	return int64(h)
}

// ClientSNR returns the per-subcarrier SNR of the AP→client link on the
// given channel (whose width determines the subcarrier split), including the
// per-channel jitter.
func (n *Network) ClientSNR(ap *AP, c *Client, ch spectrum.Channel) units.DB {
	extra := units.DB(0)
	if c.ExtraLoss != nil {
		extra = c.ExtraLoss[ap.ID]
	}
	rx := n.Prop.RxPower(ap.TxPower, ap.Pos.DistanceTo(c.Pos), extra)
	snr := phy.SubcarrierSNR(rx, ch.Width).Minus(n.NoiseFigure)
	return snr + rf.ChannelJitter(linkSeed(ap.ID, c.ID), ch, n.JitterDB)
}

// ClientSNR20 is the link's quality reference: its per-subcarrier SNR on a
// nominal 20 MHz channel, without jitter. Association range checks and the
// beacon-reported SNR use it.
func (n *Network) ClientSNR20(ap *AP, c *Client) units.DB {
	extra := units.DB(0)
	if c.ExtraLoss != nil {
		extra = c.ExtraLoss[ap.ID]
	}
	rx := n.Prop.RxPower(ap.TxPower, ap.Pos.DistanceTo(c.Pos), extra)
	return phy.SubcarrierSNR(rx, spectrum.Width20).Minus(n.NoiseFigure)
}

// APsInRange returns the candidate set A_u of APs the client can hear, in
// descending SNR order.
func (n *Network) APsInRange(c *Client) []*AP {
	type cand struct {
		ap  *AP
		snr units.DB
	}
	var cands []cand
	for _, ap := range n.APs {
		if snr := n.ClientSNR20(ap, c); snr >= n.AssocMinSNR {
			cands = append(cands, cand{ap, snr})
		}
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i].snr > cands[j].snr })
	aps := make([]*AP, len(cands))
	for i, cd := range cands {
		aps[i] = cd.ap
	}
	return aps
}

// Contend reports whether two APs compete for the medium when on
// conflicting channels: either hears the other above the carrier-sense
// threshold, or either hears a client of the other (footnote 5 of the
// paper: "Two APs interfere with each other either if they directly compete
// for the medium or if either competes with at least one of the other AP's
// clients").
func (n *Network) Contend(a, b *AP, cfg *Config) bool {
	if a == b {
		return false
	}
	if n.ContendOverride != nil {
		return n.ContendOverride(a.ID, b.ID)
	}
	if n.Prop.RxPower(a.TxPower, a.Pos.DistanceTo(b.Pos), 0) >= n.CSThreshold {
		return true
	}
	for _, cl := range n.Clients {
		home := cfg.Assoc[cl.ID]
		if home != a.ID && home != b.ID {
			continue
		}
		other := a
		if home == a.ID {
			other = b
		}
		if n.Prop.RxPower(other.TxPower, other.Pos.DistanceTo(cl.Pos), 0) >= n.CSThreshold {
			return true
		}
	}
	return false
}

// InterferenceDegree returns the degree of each AP in the interference
// graph (edges = Contend, regardless of channel assignment), and the
// maximum degree Δ that parameterizes the worst-case approximation ratio
// O(1/(Δ+1)).
func (n *Network) InterferenceDegree(cfg *Config) (degrees map[string]int, maxDegree int) {
	degrees = make(map[string]int, len(n.APs))
	for _, a := range n.APs {
		for _, b := range n.APs {
			if a != b && n.Contend(a, b, cfg) {
				degrees[a.ID]++
			}
		}
		if degrees[a.ID] > maxDegree {
			maxDegree = degrees[a.ID]
		}
	}
	return degrees, maxDegree
}

// Validate checks internal consistency of the network description.
func (n *Network) Validate() error {
	seen := make(map[string]bool)
	for _, ap := range n.APs {
		if ap.ID == "" {
			return fmt.Errorf("wlan: AP with empty ID")
		}
		if seen[ap.ID] {
			return fmt.Errorf("wlan: duplicate AP ID %q", ap.ID)
		}
		seen[ap.ID] = true
	}
	seenC := make(map[string]bool)
	for _, c := range n.Clients {
		if c.ID == "" {
			return fmt.Errorf("wlan: client with empty ID")
		}
		if seenC[c.ID] {
			return fmt.Errorf("wlan: duplicate client ID %q", c.ID)
		}
		seenC[c.ID] = true
	}
	if n.Band == nil || n.Band.NumChannels20() == 0 {
		return fmt.Errorf("wlan: network has no channels")
	}
	if n.PacketBytes <= 0 {
		return fmt.Errorf("wlan: non-positive packet size %d", n.PacketBytes)
	}
	return nil
}
