package wlan

import (
	"math"
	"testing"
)

func TestEvaluateWithDemandNilMatchesSaturated(t *testing.T) {
	n, cfg := twoCellNetwork()
	sat := n.Evaluate(cfg)
	dem := n.EvaluateWithDemand(cfg, nil)
	if math.Abs(sat.TotalUDP-dem.TotalUDP) > 1e-9 {
		t.Errorf("nil demand diverged: %v vs %v", sat.TotalUDP, dem.TotalUDP)
	}
}

func TestDemandCapsClient(t *testing.T) {
	n, cfg := twoCellNetwork()
	sat := n.Evaluate(cfg)
	perClient := sat.Cell("AP1").Clients[0].ThroughputUDP

	// Cap the good client well below its saturated share.
	capAt := perClient / 4
	rep := n.EvaluateWithDemand(cfg, Demand{"good": capAt})
	cell := rep.Cell("AP1")
	var good, walled float64
	for _, c := range cell.Clients {
		switch c.ClientID {
		case "good":
			good = c.ThroughputUDP
		case "walled":
			walled = c.ThroughputUDP
		}
	}
	if math.Abs(good-capAt) > 1e-9 {
		t.Errorf("capped client got %v, want exactly its demand %v", good, capAt)
	}
	// The walled client inherits the freed airtime: strictly more than
	// its saturated share.
	if walled <= perClient {
		t.Errorf("uncapped client got %v, want above saturated share %v", walled, perClient)
	}
}

func TestDemandRelievesAnomaly(t *testing.T) {
	// Capping the *slow* client frees disproportionate airtime: the cell
	// aggregate must rise above the saturated anomaly value.
	n, cfg := twoCellNetwork()
	sat := n.Evaluate(cfg).Cell("AP1").ThroughputUDP
	rep := n.EvaluateWithDemand(cfg, Demand{"walled": 0.05})
	if got := rep.Cell("AP1").ThroughputUDP; got <= sat {
		t.Errorf("capping the slow client should raise the cell: %v vs saturated %v", got, sat)
	}
}

func TestDemandAboveShareIsInert(t *testing.T) {
	// A demand above the achievable share changes nothing.
	n, cfg := twoCellNetwork()
	sat := n.Evaluate(cfg)
	rep := n.EvaluateWithDemand(cfg, Demand{"good": 10 * sat.Cell("AP1").Clients[0].ThroughputUDP})
	if math.Abs(rep.Cell("AP1").ThroughputUDP-sat.Cell("AP1").ThroughputUDP) > 1e-9 {
		t.Error("non-binding demand changed the cell throughput")
	}
}

func TestDemandAllCapped(t *testing.T) {
	// Every client capped below its share: each gets exactly its demand.
	n, cfg := twoCellNetwork()
	rep := n.EvaluateWithDemand(cfg, Demand{"good": 0.5, "walled": 0.2, "far": 1})
	c1 := rep.Cell("AP1")
	if math.Abs(c1.ThroughputUDP-0.7) > 1e-9 {
		t.Errorf("AP1 aggregate = %v, want 0.7", c1.ThroughputUDP)
	}
	if got := rep.Cell("AP2").ThroughputUDP; math.Abs(got-1) > 1e-9 {
		t.Errorf("AP2 aggregate = %v, want 1", got)
	}
	// TCP stays at or below UDP per client.
	for _, cell := range rep.Cells {
		for _, c := range cell.Clients {
			if c.ThroughputTCP > c.ThroughputUDP+1e-9 {
				t.Errorf("%s: TCP %v above UDP %v", c.ClientID, c.ThroughputTCP, c.ThroughputUDP)
			}
		}
	}
}
