package wlan

import (
	"sort"

	"acorn/internal/mac"
	"acorn/internal/ratecontrol"
	"acorn/internal/spectrum"
)

// ClientReport is the evaluated state of one associated client.
type ClientReport struct {
	ClientID string
	APID     string
	// SNR is the per-subcarrier SNR on the serving channel (dB).
	SNR float64
	// Selection is the rate-control outcome for the link.
	Selection ratecontrol.Selection
	// Delay is the client transmission delay d_cl (s/Mbit).
	Delay float64
	// ThroughputUDP and ThroughputTCP are the per-client throughputs in
	// Mbit/s under the two traffic models.
	ThroughputUDP float64
	ThroughputTCP float64
}

// CellReport is the evaluated state of one AP's cell.
type CellReport struct {
	APID    string
	Channel spectrum.Channel
	// AccessShare is M, the AP's share of airtime against co-channel
	// contenders.
	AccessShare float64
	// ATD is the aggregate transmission delay Σ d_cl.
	ATD float64
	// Clients holds the per-client reports, sorted by client ID.
	Clients []ClientReport
	// ThroughputUDP and ThroughputTCP are the cell aggregates in Mbit/s.
	ThroughputUDP float64
	ThroughputTCP float64
}

// NetworkReport is the evaluation of a full configuration.
type NetworkReport struct {
	Cells []CellReport
	// TotalUDP and TotalTCP are the network-wide throughputs Y in Mbit/s
	// — the objective of Eq. 5.
	TotalUDP float64
	TotalTCP float64
}

// Cell returns the report for the given AP, or nil.
func (r *NetworkReport) Cell(apID string) *CellReport {
	for i := range r.Cells {
		if r.Cells[i].APID == apID {
			return &r.Cells[i]
		}
	}
	return nil
}

// FairnessIndex returns Jain's fairness index over the per-client UDP
// throughputs, J = (Σx)²/(n·Σx²) ∈ (0, 1]. The paper's objective trades
// fairness for total throughput ("we tradeoff some level of fairness for
// significant gains in the total network-wide throughput"); this metric
// makes the size of that trade visible in every evaluation. It returns 1
// for an empty network.
func (r *NetworkReport) FairnessIndex() float64 {
	var sum, sumSq float64
	n := 0
	for _, cell := range r.Cells {
		for _, c := range cell.Clients {
			sum += c.ThroughputUDP
			sumSq += c.ThroughputUDP * c.ThroughputUDP
			n++
		}
	}
	if n == 0 || sumSq == 0 {
		return 1
	}
	return sum * sum / (float64(n) * sumSq)
}

// Evaluate scores a complete configuration: it derives every cell's access
// share from the co-channel contention graph, runs rate control on every
// AP→client link at the serving channel's width, and applies the DCF
// anomaly model to produce per-client and aggregate throughputs.
func (n *Network) Evaluate(cfg *Config) *NetworkReport {
	report := &NetworkReport{}
	for _, ap := range n.APs {
		report.Cells = append(report.Cells, n.evaluateCell(cfg, ap))
	}
	sort.Slice(report.Cells, func(i, j int) bool { return report.Cells[i].APID < report.Cells[j].APID })
	for _, cell := range report.Cells {
		report.TotalUDP += cell.ThroughputUDP
		report.TotalTCP += cell.ThroughputTCP
	}
	return report
}

// AccessShare returns M for one AP under the configuration: 1/(#co-channel
// contenders + 1), the estimator of Section 5.1.
func (n *Network) AccessShare(cfg *Config, ap *AP) float64 {
	ch := cfg.Channels[ap.ID]
	contenders := 0
	for _, other := range n.APs {
		if other == ap {
			continue
		}
		if !ch.Conflicts(cfg.Channels[other.ID]) {
			continue
		}
		// A contender only costs airtime if it actually serves
		// traffic (has at least one client).
		if len(cfg.ClientsOf(other.ID)) == 0 {
			continue
		}
		if n.Contend(ap, other, cfg) {
			contenders++
		}
	}
	return 1 / float64(contenders+1)
}

func (n *Network) evaluateCell(cfg *Config, ap *AP) CellReport {
	ch := cfg.Channels[ap.ID]
	cell := CellReport{APID: ap.ID, Channel: ch, AccessShare: n.AccessShare(cfg, ap)}
	clientIDs := cfg.ClientsOf(ap.ID)
	if len(clientIDs) == 0 {
		cell.AccessShare = 1
		return cell
	}
	delays := make([]float64, 0, len(clientIDs))
	for _, id := range clientIDs {
		cl := n.Client(id)
		snr := n.ClientSNR(ap, cl, ch)
		sel := ratecontrol.Best(snr, ch.Width, n.PacketBytes)
		delay := 1 / sel.GoodputMbps // floored by the MAC delay cap
		delays = append(delays, delay)
		cell.Clients = append(cell.Clients, ClientReport{
			ClientID:  id,
			APID:      ap.ID,
			SNR:       float64(snr),
			Selection: sel,
			Delay:     delay,
		})
	}
	dcf := mac.Cell{Delays: delays, AccessShare: cell.AccessShare}
	cell.ATD = dcf.ATD()
	perClient := dcf.PerClientThroughput()
	for i := range cell.Clients {
		cell.Clients[i].ThroughputUDP = perClient
		tcp := perClient * mac.TCPEfficiency(cell.Clients[i].Selection.PER)
		cell.Clients[i].ThroughputTCP = tcp
		cell.ThroughputUDP += perClient
		cell.ThroughputTCP += tcp
	}
	return cell
}

// IsolatedThroughput returns X_isol for one AP: the aggregate cell
// throughput it would achieve in an interference-free setting with its
// current clients, at the better of its 20 and 40 MHz options —
// max{X_isol-20, X_isol-40} in the paper's notation. It is the building
// block of the upper bound Y* = Σ X_isol used in the NP-completeness
// argument and the Fig 14 experiment.
func (n *Network) IsolatedThroughput(cfg *Config, ap *AP) (best float64, bestCh spectrum.Channel) {
	clientIDs := cfg.ClientsOf(ap.ID)
	if len(clientIDs) == 0 {
		return 0, spectrum.Channel{}
	}
	candidates := []spectrum.Channel{n.Band.Channels20()[0]}
	if ch40 := n.Band.Channels40(); len(ch40) > 0 {
		candidates = append(candidates, ch40[0])
	}
	for _, ch := range candidates {
		var delays []float64
		for _, id := range clientIDs {
			cl := n.Client(id)
			sel := ratecontrol.Best(n.ClientSNR(ap, cl, ch), ch.Width, n.PacketBytes)
			delays = append(delays, 1/sel.GoodputMbps)
		}
		cell := mac.Cell{Delays: delays, AccessShare: 1}
		if t := cell.AggregateThroughput(); t > best {
			best, bestCh = t, ch
		}
	}
	return best, bestCh
}

// UpperBound returns Y* = Σ_i X_i^isol, the loose optimum of Eq. 5 in which
// every AP is completely isolated on its best-width channel.
func (n *Network) UpperBound(cfg *Config) float64 {
	var total float64
	for _, ap := range n.APs {
		t, _ := n.IsolatedThroughput(cfg, ap)
		total += t
	}
	return total
}
