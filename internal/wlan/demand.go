package wlan

// Unsaturated traffic: the paper's analysis assumes saturated downlink for
// tractability but shows experimentally that ACORN "helps even with
// unsaturated loads". This file adds a demand-aware evaluation: each client
// may cap its offered load, and airtime a capped client doesn't use is
// redistributed to backlogged clients (what DCF does naturally — a station
// with an empty queue doesn't contend).

// Demand maps client ID → offered load in Mbit/s. Clients absent from the
// map are saturated (unbounded demand).
type Demand map[string]float64

// EvaluateWithDemand scores the configuration like Evaluate but caps each
// client's throughput at its demand, redistributing freed airtime within
// the cell using a progressive water-filling over the DCF anomaly shares.
// With a nil or empty demand map it matches Evaluate exactly.
func (n *Network) EvaluateWithDemand(cfg *Config, demand Demand) *NetworkReport {
	report := n.Evaluate(cfg)
	if len(demand) == 0 {
		return report
	}
	for ci := range report.Cells {
		cell := &report.Cells[ci]
		if len(cell.Clients) == 0 {
			continue
		}
		applyDemandToCell(cell, demand)
	}
	// Recompute totals.
	report.TotalUDP, report.TotalTCP = 0, 0
	for _, cell := range report.Cells {
		report.TotalUDP += cell.ThroughputUDP
		report.TotalTCP += cell.ThroughputTCP
	}
	return report
}

// applyDemandToCell water-fills the cell's airtime budget: clients whose
// demand is below their equal-opportunity share keep exactly their demand;
// the airtime they free raises everyone else's share, iterating until no
// further caps bind.
func applyDemandToCell(cell *CellReport, demand Demand) {
	type flow struct {
		idx    int
		delay  float64 // s/Mbit
		cap    float64 // demanded Mbit/s (Inf if saturated)
		capped bool
	}
	flows := make([]flow, len(cell.Clients))
	budget := cell.AccessShare // airtime fraction available to the cell
	for i, c := range cell.Clients {
		flows[i] = flow{idx: i, delay: c.Delay, cap: -1}
		if d, ok := demand[c.ClientID]; ok {
			flows[i].cap = d
		}
	}
	// Iterate: with the current uncapped set, the equal-rate share r
	// satisfies Σ_uncapped r·delay_i = budget − Σ_capped cap_i·delay_i.
	// Cap every client whose demand is below r, repeat until stable.
	var r float64
	for {
		var usedAirtime, delaySum float64
		uncapped := 0
		for _, f := range flows {
			if f.capped {
				usedAirtime += f.cap * f.delay
			} else {
				delaySum += f.delay
				uncapped++
			}
		}
		if uncapped == 0 {
			r = 0
			break
		}
		r = (budget - usedAirtime) / delaySum
		if r < 0 {
			r = 0
		}
		newlyCapped := false
		for i := range flows {
			if !flows[i].capped && flows[i].cap >= 0 && flows[i].cap < r {
				flows[i].capped = true
				newlyCapped = true
			}
		}
		if !newlyCapped {
			break
		}
	}
	// Assign the final rates: capped flows get exactly their demand,
	// the rest share the remaining airtime equally (rate r each).
	for i := range flows {
		rate := r
		if flows[i].capped {
			rate = flows[i].cap
		}
		scale := 0.0
		if cell.Clients[i].ThroughputUDP > 0 {
			scale = rate / cell.Clients[i].ThroughputUDP
		}
		cell.Clients[i].ThroughputUDP = rate
		cell.Clients[i].ThroughputTCP *= scale
	}
	cell.ThroughputUDP, cell.ThroughputTCP = 0, 0
	for _, c := range cell.Clients {
		cell.ThroughputUDP += c.ThroughputUDP
		cell.ThroughputTCP += c.ThroughputTCP
	}
}
