package wlan

import (
	"fmt"
	"sort"

	"acorn/internal/spectrum"
)

// Config is a complete WLAN configuration: a channel per AP and an
// association per client. It is the object the allocation algorithms search
// over and the evaluator scores.
type Config struct {
	// Channels maps AP ID → assigned channel.
	Channels map[string]spectrum.Channel
	// Assoc maps client ID → AP ID.
	Assoc map[string]string
}

// NewConfig returns an empty configuration.
func NewConfig() *Config {
	return &Config{
		Channels: make(map[string]spectrum.Channel),
		Assoc:    make(map[string]string),
	}
}

// Clone returns a deep copy; allocation algorithms mutate clones while
// searching.
func (c *Config) Clone() *Config {
	out := NewConfig()
	for k, v := range c.Channels {
		out.Channels[k] = v
	}
	for k, v := range c.Assoc {
		out.Assoc[k] = v
	}
	return out
}

// ClientsOf returns the IDs of clients associated with the given AP, in
// stable (sorted) order.
func (c *Config) ClientsOf(apID string) []string {
	var ids []string
	for cl, ap := range c.Assoc {
		if ap == apID {
			ids = append(ids, cl)
		}
	}
	sort.Strings(ids)
	return ids
}

// Validate checks the configuration against a network: every AP has a
// channel from the band, every client is associated with an existing AP.
func (c *Config) Validate(n *Network) error {
	for _, ap := range n.APs {
		ch, ok := c.Channels[ap.ID]
		if !ok || ch.IsZero() {
			return fmt.Errorf("wlan: AP %s has no channel", ap.ID)
		}
		if !n.Band.Contains(ch) {
			return fmt.Errorf("wlan: AP %s assigned %v outside the band", ap.ID, ch)
		}
	}
	for cl, apID := range c.Assoc {
		if n.Client(cl) == nil {
			return fmt.Errorf("wlan: association for unknown client %s", cl)
		}
		if n.AP(apID) == nil {
			return fmt.Errorf("wlan: client %s associated with unknown AP %s", cl, apID)
		}
	}
	return nil
}
