package wlan

import (
	"fmt"
	"sort"

	"acorn/internal/spectrum"
)

// Config is a complete WLAN configuration: a channel per AP and an
// association per client. It is the object the allocation algorithms search
// over and the evaluator scores.
//
// Association mutation contract: the Assoc map may be written directly only
// while bootstrapping a configuration, before the first ClientsOf call.
// Once ClientsOf has been used, the reverse index below is live and all
// association changes must go through SetAssoc/Unassoc, which keep the index
// consistent incrementally. Every algorithm in this repository follows that
// rule; direct writes after the index is built leave ClientsOf stale.
type Config struct {
	// Channels maps AP ID → assigned channel.
	Channels map[string]spectrum.Channel
	// Assoc maps client ID → AP ID.
	Assoc map[string]string

	// byAP is the reverse association index: AP ID → sorted client IDs.
	// It is built lazily on the first ClientsOf call and maintained
	// incrementally by SetAssoc/Unassoc, replacing the former per-call
	// full-map scan + sort.
	byAP map[string][]string
}

// NewConfig returns an empty configuration.
func NewConfig() *Config {
	return &Config{
		Channels: make(map[string]spectrum.Channel),
		Assoc:    make(map[string]string),
	}
}

// Clone returns a deep copy; allocation algorithms mutate clones while
// searching. The clone starts without a reverse index (it is rebuilt lazily
// on first use), so cloning stays O(|Channels| + |Assoc|).
func (c *Config) Clone() *Config {
	out := NewConfig()
	for k, v := range c.Channels {
		out.Channels[k] = v
	}
	for k, v := range c.Assoc {
		out.Assoc[k] = v
	}
	return out
}

// SetAssoc associates a client with an AP, moving it from any previous
// association and keeping the reverse index consistent.
func (c *Config) SetAssoc(clientID, apID string) {
	prev, had := c.Assoc[clientID]
	if had && prev == apID {
		return
	}
	c.Assoc[clientID] = apID
	if c.byAP == nil {
		return
	}
	if had {
		c.indexRemove(prev, clientID)
	}
	c.indexInsert(apID, clientID)
}

// Unassoc removes a client's association. Unknown clients are a no-op.
func (c *Config) Unassoc(clientID string) {
	prev, had := c.Assoc[clientID]
	if !had {
		return
	}
	delete(c.Assoc, clientID)
	if c.byAP != nil {
		c.indexRemove(prev, clientID)
	}
}

// ClientsOf returns the IDs of clients associated with the given AP, in
// stable (sorted) order. The returned slice is owned by the index: callers
// must not mutate it, and it is valid until the next SetAssoc/Unassoc.
func (c *Config) ClientsOf(apID string) []string {
	if c.byAP == nil {
		c.buildIndex()
	}
	return c.byAP[apID]
}

// buildIndex derives the reverse index from the Assoc map.
func (c *Config) buildIndex() {
	c.byAP = make(map[string][]string)
	for cl, ap := range c.Assoc {
		c.byAP[ap] = append(c.byAP[ap], cl)
	}
	for _, ids := range c.byAP {
		sort.Strings(ids)
	}
}

// indexInsert adds clientID to apID's sorted list (idempotent).
func (c *Config) indexInsert(apID, clientID string) {
	ids := c.byAP[apID]
	i := sort.SearchStrings(ids, clientID)
	if i < len(ids) && ids[i] == clientID {
		return
	}
	ids = append(ids, "")
	copy(ids[i+1:], ids[i:])
	ids[i] = clientID
	c.byAP[apID] = ids
}

// indexRemove drops clientID from apID's sorted list. Empty lists are
// deleted so ClientsOf keeps returning nil for clientless APs.
func (c *Config) indexRemove(apID, clientID string) {
	ids := c.byAP[apID]
	i := sort.SearchStrings(ids, clientID)
	if i >= len(ids) || ids[i] != clientID {
		return
	}
	ids = append(ids[:i], ids[i+1:]...)
	if len(ids) == 0 {
		delete(c.byAP, apID)
		return
	}
	c.byAP[apID] = ids
}

// Validate checks the configuration against a network: every AP has a
// channel from the band, every client is associated with an existing AP.
func (c *Config) Validate(n *Network) error {
	for _, ap := range n.APs {
		ch, ok := c.Channels[ap.ID]
		if !ok || ch.IsZero() {
			return fmt.Errorf("wlan: AP %s has no channel", ap.ID)
		}
		if !n.Band.Contains(ch) {
			return fmt.Errorf("wlan: AP %s assigned %v outside the band", ap.ID, ch)
		}
	}
	for cl, apID := range c.Assoc {
		if n.Client(cl) == nil {
			return fmt.Errorf("wlan: association for unknown client %s", cl)
		}
		if n.AP(apID) == nil {
			return fmt.Errorf("wlan: client %s associated with unknown AP %s", cl, apID)
		}
	}
	return nil
}
