package obs

import (
	"fmt"
	"io"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Level orders log severities.
type Level int32

const (
	LevelDebug Level = iota
	LevelInfo
	LevelWarn
	LevelError
	// LevelOff suppresses all output.
	LevelOff
)

// String returns the level's canonical lower-case name.
func (l Level) String() string {
	switch l {
	case LevelDebug:
		return "debug"
	case LevelInfo:
		return "info"
	case LevelWarn:
		return "warn"
	case LevelError:
		return "error"
	case LevelOff:
		return "off"
	default:
		return fmt.Sprintf("level(%d)", int32(l))
	}
}

// ParseLevel converts a -log-level flag value into a Level.
func ParseLevel(s string) (Level, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "debug":
		return LevelDebug, nil
	case "info", "":
		return LevelInfo, nil
	case "warn", "warning":
		return LevelWarn, nil
	case "error":
		return LevelError, nil
	case "off", "none":
		return LevelOff, nil
	default:
		return LevelInfo, fmt.Errorf("obs: unknown log level %q (want debug|info|warn|error|off)", s)
	}
}

// Logger is a leveled structured logger writing key=value lines to one
// sink. Named children share the parent's sink and level, so one
// -log-level flag governs a whole process. The zero-cost path matters:
// a suppressed call is one atomic load and returns before formatting.
type Logger struct {
	s     *logSink
	attrs string      // preformatted " key=value" suffix
	lim   *logLimiter // per-call-site token bucket; nil means unlimited
}

type logSink struct {
	mu    sync.Mutex
	w     io.Writer
	level atomic.Int32
	now   func() time.Time // injectable for tests
}

// NewLogger returns a logger writing to w at the given level.
func NewLogger(w io.Writer, level Level) *Logger {
	s := &logSink{w: w, now: time.Now}
	s.level.Store(int32(level))
	return &Logger{s: s}
}

// DefaultLogger is the process-wide logger (stderr, info). Binaries
// typically re-level it from a -log-level flag.
var DefaultLogger = NewLogger(os.Stderr, LevelInfo)

// Nop discards everything.
var Nop = NewLogger(io.Discard, LevelOff)

// SetLevel changes the threshold (shared with Named children).
func (l *Logger) SetLevel(level Level) { l.s.level.Store(int32(level)) }

// Level returns the current threshold.
func (l *Logger) Level() Level { return Level(l.s.level.Load()) }

// Enabled reports whether a message at level would be emitted.
func (l *Logger) Enabled(level Level) bool {
	return level >= Level(l.s.level.Load()) && Level(l.s.level.Load()) != LevelOff
}

// Named returns a child logger whose lines carry component=name. Children
// share the parent's sink and level (and the parent's rate limit, if any).
func (l *Logger) Named(name string) *Logger {
	return &Logger{s: l.s, attrs: l.attrs + " component=" + name, lim: l.lim}
}

// With returns a child logger whose lines carry the given key=value pairs.
func (l *Logger) With(kv ...any) *Logger {
	return &Logger{s: l.s, attrs: l.attrs + formatKV(kv), lim: l.lim}
}

// Limited returns a child logger throttled by its own token bucket: at
// most burst lines back-to-back, refilling at perSec lines per second.
// Suppressed lines are counted, and the count is attached as a
// suppressed=N pair to the next line that does get through, so a 10x
// report storm can't melt the log sink yet never vanishes silently. Each
// Limited call creates an independent bucket — make one per hot call site
// (at construction, not per call) and reuse it.
func (l *Logger) Limited(perSec float64, burst int) *Logger {
	if burst < 1 {
		burst = 1
	}
	lim := &logLimiter{rate: perSec, burst: float64(burst), tokens: float64(burst)}
	return &Logger{s: l.s, attrs: l.attrs, lim: lim}
}

// logLimiter is the token bucket behind Limited.
type logLimiter struct {
	mu         sync.Mutex
	rate       float64
	burst      float64
	tokens     float64
	last       time.Time
	suppressed uint64
}

// allow consumes a token if one is available, returning how many lines
// were suppressed since the last allowed one.
func (lim *logLimiter) allow(now time.Time) (suppressed uint64, ok bool) {
	lim.mu.Lock()
	defer lim.mu.Unlock()
	if !lim.last.IsZero() {
		lim.tokens += now.Sub(lim.last).Seconds() * lim.rate
		if lim.tokens > lim.burst {
			lim.tokens = lim.burst
		}
	}
	lim.last = now
	if lim.tokens < 1 {
		lim.suppressed++
		return 0, false
	}
	lim.tokens--
	suppressed = lim.suppressed
	lim.suppressed = 0
	return suppressed, true
}

// Log emits one line at the given level: the message, then the logger's
// bound attributes, then the trailing key=value pairs.
func (l *Logger) Log(level Level, msg string, kv ...any) {
	if !l.Enabled(level) {
		return
	}
	var tail string
	if l.lim != nil {
		n, ok := l.lim.allow(l.s.now())
		if !ok {
			return
		}
		if n > 0 {
			tail = fmt.Sprintf(" suppressed=%d", n)
		}
	}
	line := fmt.Sprintf("%s %-5s %s%s%s%s\n",
		l.s.now().Format("2006/01/02 15:04:05"),
		strings.ToUpper(level.String()), msg, l.attrs, formatKV(kv), tail)
	l.s.mu.Lock()
	defer l.s.mu.Unlock()
	_, _ = io.WriteString(l.s.w, line)
}

// Logf emits one printf-formatted line at the given level.
func (l *Logger) Logf(level Level, format string, args ...any) {
	if !l.Enabled(level) {
		return
	}
	l.Log(level, fmt.Sprintf(format, args...))
}

// Debugf, Infof, Warnf and Errorf are printf-style conveniences.
func (l *Logger) Debugf(format string, args ...any) { l.Logf(LevelDebug, format, args...) }
func (l *Logger) Infof(format string, args ...any)  { l.Logf(LevelInfo, format, args...) }
func (l *Logger) Warnf(format string, args ...any)  { l.Logf(LevelWarn, format, args...) }
func (l *Logger) Errorf(format string, args ...any) { l.Logf(LevelError, format, args...) }

// Debug, Info, Warn and Error are the structured (key=value) conveniences.
func (l *Logger) Debug(msg string, kv ...any) { l.Log(LevelDebug, msg, kv...) }
func (l *Logger) Info(msg string, kv ...any)  { l.Log(LevelInfo, msg, kv...) }
func (l *Logger) Warn(msg string, kv ...any)  { l.Log(LevelWarn, msg, kv...) }
func (l *Logger) Error(msg string, kv ...any) { l.Log(LevelError, msg, kv...) }

// Fatalf logs at error level and exits the process. For command mains.
func (l *Logger) Fatalf(format string, args ...any) {
	l.Logf(LevelError, format, args...)
	osExit(1)
}

// osExit is swappable so tests can cover Fatalf.
var osExit = os.Exit

// Printf adapts a logger to the legacy `func(format, args...)` hook shape
// at a fixed level.
func (l *Logger) Printf(level Level) func(format string, args ...any) {
	return func(format string, args ...any) { l.Logf(level, format, args...) }
}

// formatKV renders alternating key, value pairs as " k=v" text. Values
// containing spaces or quotes are quoted; a trailing odd key gets the
// value "(MISSING)".
func formatKV(kv []any) string {
	if len(kv) == 0 {
		return ""
	}
	var b strings.Builder
	for i := 0; i < len(kv); i += 2 {
		v := any("(MISSING)")
		if i+1 < len(kv) {
			v = kv[i+1]
		}
		fmt.Fprintf(&b, " %v=%s", kv[i], formatValue(v))
	}
	return b.String()
}

func formatValue(v any) string {
	s := fmt.Sprintf("%v", v)
	if strings.ContainsAny(s, " \t\"=") {
		return fmt.Sprintf("%q", s)
	}
	if s == "" {
		return `""`
	}
	return s
}
