package obs

import (
	"math"
	"testing"
	"time"
)

func TestWindowQuantileTracksRecentOnly(t *testing.T) {
	clk := newTraceClock()
	w := NewWindow(10*time.Second, 10, nil, clk.now)

	// A slow era: 100 observations around 8ms.
	for i := 0; i < 100; i++ {
		w.Observe(8e-3)
	}
	if q := w.Quantile(0.99); q < 4e-3 || q > 16e-3 {
		t.Fatalf("p99 of 8ms era = %v", q)
	}
	if w.Count() != 100 {
		t.Fatalf("count = %d", w.Count())
	}

	// Time passes beyond the window: the slow era must age out entirely.
	clk.advance(11 * time.Second)
	if c := w.Count(); c != 0 {
		t.Fatalf("stale observations survived the window: count=%d", c)
	}
	if q := w.Quantile(0.99); q != 0 {
		t.Fatalf("empty window quantile = %v, want 0", q)
	}

	// A fast era: the quantile must reflect it, not the all-time mix.
	for i := 0; i < 100; i++ {
		w.Observe(20e-6)
	}
	if q := w.Quantile(0.99); q < 10e-6 || q > 40e-6 {
		t.Fatalf("p99 of 20µs era = %v (all-time mixing?)", q)
	}
}

func TestWindowGradualAging(t *testing.T) {
	clk := newTraceClock()
	w := NewWindow(10*time.Second, 10, nil, clk.now)
	// One observation per second for 20s: only ~10 stay in-window.
	for i := 0; i < 20; i++ {
		w.Observe(1e-3)
		clk.advance(time.Second)
	}
	if c := w.Count(); c < 8 || c > 11 {
		t.Fatalf("in-window count = %d, want ~10", c)
	}
}

func TestWindowQuantileOrdering(t *testing.T) {
	clk := newTraceClock()
	w := NewWindow(30*time.Second, 0, nil, clk.now)
	// Bimodal: 90 fast (≈10µs), 10 slow (≈5ms).
	for i := 0; i < 90; i++ {
		w.Observe(10e-6)
	}
	for i := 0; i < 10; i++ {
		w.Observe(5e-3)
	}
	p50, p99 := w.Quantile(0.50), w.Quantile(0.99)
	if p50 > 1e-4 {
		t.Errorf("p50 = %v, want ≈10µs", p50)
	}
	if p99 < 1e-3 {
		t.Errorf("p99 = %v, want ≈5ms", p99)
	}
	if p99 < p50 {
		t.Errorf("quantiles not monotone: p50=%v p99=%v", p50, p99)
	}
	if s := w.Sum(); math.Abs(s-(90*10e-6+10*5e-3)) > 1e-9 {
		t.Errorf("sum = %v", s)
	}
}

func TestWindowOverflowBucket(t *testing.T) {
	clk := newTraceClock()
	w := NewWindow(30*time.Second, 0, nil, clk.now)
	w.Observe(1e9) // beyond the highest bound
	if q := w.Quantile(0.99); q <= 0 {
		t.Fatalf("overflow quantile = %v, want highest finite bound", q)
	}
}

func TestWindowNilSafety(t *testing.T) {
	var w *Window
	w.Observe(1)
	if w.Quantile(0.5) != 0 || w.Count() != 0 || w.Sum() != 0 || w.Span() != 0 {
		t.Error("nil window must be inert")
	}
}

func TestSLOBreachCountingAndCooldown(t *testing.T) {
	clk := newTraceClock()
	var fired []Breach
	s := NewSLO(SLOOptions{
		Name:       "decision_p99",
		Quantile:   0.99,
		Budget:     time.Millisecond,
		Window:     10 * time.Second,
		MinCount:   4,
		CheckEvery: time.Second,
		Cooldown:   30 * time.Second,
		Now:        clk.now,
		OnBreach:   func(b Breach) { fired = append(fired, b) },
	})

	// Healthy traffic: well under budget, no breach.
	for i := 0; i < 10; i++ {
		s.Observe(50 * time.Microsecond)
		clk.advance(200 * time.Millisecond)
	}
	s.Check()
	if st := s.Status(); st.Breached || st.Breaches != 0 {
		t.Fatalf("healthy stream breached: %+v", st)
	}

	// A stall: observations far over budget.
	for i := 0; i < 10; i++ {
		s.Observe(20 * time.Millisecond)
		clk.advance(200 * time.Millisecond)
	}
	s.Check()
	st := s.Status()
	if !st.Breached || st.Breaches == 0 {
		t.Fatalf("stall did not breach: %+v", st)
	}
	if len(fired) != 1 {
		t.Fatalf("hook fired %d times, want 1 (cooldown)", len(fired))
	}
	if fired[0].Value <= fired[0].Budget || fired[0].Name != "decision_p99" {
		t.Fatalf("breach payload: %+v", fired[0])
	}

	// Still breaching inside the cooldown: counted, not re-fired.
	for i := 0; i < 5; i++ {
		s.Observe(20 * time.Millisecond)
		clk.advance(time.Second)
	}
	if len(fired) != 1 {
		t.Fatalf("hook re-fired inside cooldown: %d", len(fired))
	}

	// After the cooldown, a persisting breach fires again.
	clk.advance(31 * time.Second)
	for i := 0; i < 10; i++ {
		s.Observe(20 * time.Millisecond)
		clk.advance(time.Second)
	}
	if len(fired) != 2 {
		t.Fatalf("hook did not re-fire after cooldown: %d", len(fired))
	}

	// Recovery: fast traffic ages the stall out; breached clears.
	clk.advance(11 * time.Second)
	for i := 0; i < 20; i++ {
		s.Observe(10 * time.Microsecond)
		clk.advance(time.Second)
	}
	s.Check()
	if st := s.Status(); st.Breached {
		t.Fatalf("did not recover: %+v", st)
	}
}

func TestSLOMinCountGuards(t *testing.T) {
	clk := newTraceClock()
	s := NewSLO(SLOOptions{Budget: time.Millisecond, MinCount: 8, Now: clk.now})
	s.Observe(time.Second) // one terrible sample, below MinCount
	s.Check()
	if st := s.Status(); st.Breached {
		t.Fatalf("breached on %d samples (MinCount 8): %+v", st.WindowCount, st)
	}
}

func TestSLONilSafety(t *testing.T) {
	var s *SLO
	s.Observe(time.Second)
	s.Check()
	if st := s.Status(); st.Breached || s.Window() != nil {
		t.Errorf("nil SLO must be inert: %+v", st)
	}
}
