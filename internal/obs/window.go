package obs

// Sliding-window histogram views. The cumulative Histogram answers "how
// has the process behaved since boot" — useless for spotting a regression
// that started two minutes ago. A Window keeps the same bucketed shape but
// time-sliced: observations land in the slice covering their instant, a
// quantile read merges only the slices inside the window, and slices older
// than the window are reused in place. Memory is fixed (slices × buckets),
// a write is one mutex hop plus a binary search, and the clock is
// injectable so virtual-time replays (internal/dynamic) age the window
// exactly as fast as the simulation runs.

import (
	"sort"
	"sync"
	"time"
)

// DefWindowBuckets is the default bucket layout: 1µs to ~11s at factor
// 1.5 — tight enough that an interpolated p99 is meaningful for both
// microsecond no-op decisions and multi-millisecond re-optimizations.
func DefWindowBuckets() []float64 { return ExpBuckets(1e-6, 1.5, 40) }

// Window is a sliding-window histogram. Safe for concurrent use.
type Window struct {
	mu     sync.Mutex
	bounds []float64
	slices []windowSlice
	slice  time.Duration
	now    func() time.Time
}

// windowSlice is one time slice: counts has len(bounds)+1 entries, the
// last being the overflow (+Inf) bucket.
type windowSlice struct {
	epoch  int64 // now / slice duration; -1 while never used
	counts []uint64
	count  uint64
	sum    float64
}

// NewWindow builds a window covering span, split into nslices slices, over
// the given bucket bounds. Zero/nil arguments pick defaults: 30s, 15
// slices, DefWindowBuckets, time.Now.
func NewWindow(span time.Duration, nslices int, bounds []float64, now func() time.Time) *Window {
	if span <= 0 {
		span = 30 * time.Second
	}
	if nslices <= 0 {
		nslices = 15
	}
	if bounds == nil {
		bounds = DefWindowBuckets()
	}
	if now == nil {
		now = time.Now
	}
	w := &Window{
		bounds: append([]float64(nil), bounds...),
		slices: make([]windowSlice, nslices),
		slice:  span / time.Duration(nslices),
		now:    now,
	}
	if w.slice <= 0 {
		w.slice = time.Millisecond
	}
	for i := range w.slices {
		w.slices[i] = windowSlice{epoch: -1, counts: make([]uint64, len(bounds)+1)}
	}
	return w
}

// Span returns the window's covered duration.
func (w *Window) Span() time.Duration {
	if w == nil {
		return 0
	}
	return w.slice * time.Duration(len(w.slices))
}

// epochAt quantizes an instant to a slice epoch.
func (w *Window) epochAt(t time.Time) int64 { return t.UnixNano() / int64(w.slice) }

// current returns the slice for epoch, recycling it if it last held an
// older epoch. Callers hold w.mu.
func (w *Window) current(epoch int64) *windowSlice {
	n := int64(len(w.slices))
	s := &w.slices[((epoch%n)+n)%n]
	if s.epoch != epoch {
		s.epoch = epoch
		s.count = 0
		s.sum = 0
		for i := range s.counts {
			s.counts[i] = 0
		}
	}
	return s
}

// Observe records one value at the window's current instant. Nil-safe.
func (w *Window) Observe(v float64) {
	if w == nil {
		return
	}
	w.mu.Lock()
	s := w.current(w.epochAt(w.now()))
	s.counts[sort.SearchFloat64s(w.bounds, v)]++
	s.count++
	s.sum += v
	w.mu.Unlock()
}

// merged folds the in-window slices into one histogram. Callers hold w.mu.
func (w *Window) merged() ([]uint64, uint64, float64) {
	cur := w.epochAt(w.now())
	oldest := cur - int64(len(w.slices)) + 1
	counts := make([]uint64, len(w.bounds)+1)
	var total uint64
	var sum float64
	for i := range w.slices {
		s := &w.slices[i]
		if s.epoch < oldest || s.epoch > cur {
			continue
		}
		for b, c := range s.counts {
			counts[b] += c
		}
		total += s.count
		sum += s.sum
	}
	return counts, total, sum
}

// Count returns how many observations are inside the window right now.
func (w *Window) Count() uint64 {
	if w == nil {
		return 0
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	_, total, _ := w.merged()
	return total
}

// Sum returns the sum of in-window observations.
func (w *Window) Sum() float64 {
	if w == nil {
		return 0
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	_, _, sum := w.merged()
	return sum
}

// Quantile returns the p-quantile (0..1) of the in-window observations,
// linearly interpolated inside the landing bucket (Prometheus
// histogram_quantile semantics). Zero when the window is empty; the
// highest finite bound when the quantile lands in the overflow bucket.
func (w *Window) Quantile(p float64) float64 {
	if w == nil {
		return 0
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	counts, total, _ := w.merged()
	if total == 0 {
		return 0
	}
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	rank := p * float64(total)
	if rank < 1 {
		rank = 1
	}
	var cum float64
	for b, c := range counts {
		if c == 0 {
			continue
		}
		next := cum + float64(c)
		if next >= rank {
			if b >= len(w.bounds) {
				return w.bounds[len(w.bounds)-1]
			}
			lo := 0.0
			if b > 0 {
				lo = w.bounds[b-1]
			}
			return lo + (w.bounds[b]-lo)*(rank-cum)/float64(c)
		}
		cum = next
	}
	return w.bounds[len(w.bounds)-1]
}
