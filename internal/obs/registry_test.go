package obs

import (
	"math"
	"strings"
	"sync"
	"testing"
)

// TestCounterHistogramRace hammers one counter, gauge and histogram from
// many goroutines while a reader scrapes, so `go test -race` proves the
// atomic hot path. Totals must still be exact.
func TestCounterHistogramRace(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("race_total", "race counter")
	g := r.Gauge("race_gauge", "race gauge")
	h := r.Histogram("race_seconds", "race histogram", []float64{0.25, 0.5, 0.75})
	v := r.CounterVec("race_vec_total", "race vec", "ap")

	const workers, perWorker = 8, 5000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			kid := v.With("AP1")
			for i := 0; i < perWorker; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(float64(i%100) / 100)
				kid.Inc()
			}
		}(w)
	}
	// Concurrent scrapes must not race with the writers.
	var rg sync.WaitGroup
	rg.Add(1)
	go func() {
		defer rg.Done()
		for i := 0; i < 50; i++ {
			var sb strings.Builder
			_ = r.WritePrometheus(&sb)
			_ = r.Snapshot()
		}
	}()
	wg.Wait()
	rg.Wait()

	const want = workers * perWorker
	if got := c.Value(); got != want {
		t.Errorf("counter = %d, want %d", got, want)
	}
	if got := g.Value(); got != want {
		t.Errorf("gauge = %v, want %d", got, want)
	}
	if got := h.Count(); got != want {
		t.Errorf("histogram count = %d, want %d", got, want)
	}
	if got := v.With("AP1").Value(); got != want {
		t.Errorf("vec counter = %d, want %d", got, want)
	}
	// Each worker observes 0, 0.01 ... 0.99 repeated; the sum is exact in
	// float64 only approximately — check to a loose tolerance.
	wantSum := float64(workers) * float64(perWorker/100) * (99 * 100 / 2) / 100
	if got := h.Sum(); math.Abs(got-wantSum) > 1 {
		t.Errorf("histogram sum = %v, want ≈%v", got, wantSum)
	}
}

func TestRegistrationIdempotent(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("twice_total", "first")
	b := r.Counter("twice_total", "second help ignored")
	if a != b {
		t.Error("same name should return the same counter")
	}
	defer func() {
		if recover() == nil {
			t.Error("kind mismatch should panic")
		}
	}()
	r.Gauge("twice_total", "wrong kind")
}

func TestValidateName(t *testing.T) {
	for _, bad := range []string{"", "1abc", "a-b", "a.b", "a b"} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("name %q should panic", bad)
				}
			}()
			NewRegistry().Counter(bad, "")
		}()
	}
	NewRegistry().Counter("ok_name:x_1", "") // must not panic
}

func TestPrometheusFormat(t *testing.T) {
	r := NewRegistry()
	r.Counter("acorn_events_total", "events seen").Add(3)
	r.Gauge("acorn_temp", "a gauge").Set(1.5)
	r.GaugeFunc("acorn_fn", "computed", func() float64 { return 42 })
	h := r.Histogram("acorn_lat_seconds", "latency", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(5)
	r.CounterVec("acorn_per_ap_total", "per ap", "ap").With("AP1").Add(2)
	r.GaugeVec("acorn_up", "liveness", "ap").With(`A"P`).Set(1)

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# TYPE acorn_events_total counter",
		"acorn_events_total 3",
		"acorn_temp 1.5",
		"acorn_fn 42",
		"# TYPE acorn_lat_seconds histogram",
		`acorn_lat_seconds_bucket{le="0.1"} 1`,
		`acorn_lat_seconds_bucket{le="1"} 2`,
		`acorn_lat_seconds_bucket{le="+Inf"} 3`,
		"acorn_lat_seconds_sum 5.55",
		"acorn_lat_seconds_count 3",
		`acorn_per_ap_total{ap="AP1"} 2`,
		`acorn_up{ap="A\"P"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in output:\n%s", want, out)
		}
	}
	// Families appear in sorted name order.
	if strings.Index(out, "acorn_events_total") > strings.Index(out, "acorn_temp") {
		t.Error("output not sorted by metric name")
	}
}

func TestSnapshot(t *testing.T) {
	r := NewRegistry()
	r.Counter("c_total", "").Add(7)
	h := r.Histogram("h_seconds", "", []float64{1})
	h.Observe(0.5)
	h.Observe(2)
	r.GaugeVec("v", "", "ap").With("AP2").Set(3)

	snaps := r.Snapshot()
	byName := map[string]MetricSnapshot{}
	for _, s := range snaps {
		byName[s.Name] = s
	}
	if v := byName["c_total"].Value; v == nil || *v != 7 {
		t.Errorf("c_total snapshot = %+v", byName["c_total"])
	}
	hs := byName["h_seconds"]
	if hs.Count == nil || *hs.Count != 2 || hs.Buckets["1"] != 1 || hs.Buckets["+Inf"] != 2 {
		t.Errorf("h_seconds snapshot = %+v", hs)
	}
	vs := byName["v"]
	if vs.Label != "ap" || vs.Series["AP2"] != 3 {
		t.Errorf("v snapshot = %+v", vs)
	}
}

func TestSpan(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("span_seconds", "", nil)
	sp := h.Start()
	if d := sp.End(); d < 0 {
		t.Errorf("negative duration %v", d)
	}
	if h.Count() != 1 {
		t.Errorf("span did not observe: count=%d", h.Count())
	}
}
