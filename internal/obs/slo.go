package obs

// SLO monitoring over sliding-window quantiles. An SLO watches one latency
// stream: every Observe feeds the window, and at most once per CheckEvery
// the windowed quantile is compared against the budget. Crossing it counts
// a breach and — cooldown permitting — fires the hook, which is how a
// latency regression arrives with its own CPU profile attached (the
// daemons wire OnBreach to profiling.CaptureCPU). The hook runs outside
// the monitor's lock, so it may call Status or capture profiles freely.

import (
	"sync"
	"time"
)

// SLOOptions configures an SLO monitor.
type SLOOptions struct {
	// Name labels the SLO in /debug/slo and breach logs.
	Name string
	// Quantile is the watched quantile (0..1). Zero means 0.99.
	Quantile float64
	// Budget is the latency budget the quantile must stay under. The
	// monitor is inert (never breaches) when zero.
	Budget time.Duration
	// Window is the sliding window the quantile is computed over, used
	// when Win is nil. Zero means 30s.
	Window time.Duration
	// Win optionally supplies a pre-built window (to share bucket layout
	// or a virtual clock).
	Win *Window
	// MinCount is the minimum in-window sample count before the quantile
	// is judged at all — a two-sample window breaching a p99 is noise.
	// Zero means 8.
	MinCount uint64
	// CheckEvery throttles evaluation: Observe is per-event and a
	// quantile read merges the window, so checks are rate-limited. Zero
	// means 1s.
	CheckEvery time.Duration
	// Cooldown is the minimum spacing between hook firings (profile
	// captures are expensive and one flame graph per incident is enough).
	// Zero means 60s.
	Cooldown time.Duration
	// Now replaces time.Now for deterministic tests. Nil means time.Now.
	Now func() time.Time
	// OnBreach fires on a breach, at most once per Cooldown.
	OnBreach func(Breach)
}

// Breach describes one SLO violation at evaluation time.
type Breach struct {
	Name     string        `json:"name"`
	Quantile float64       `json:"quantile"`
	Value    time.Duration `json:"value"`
	Budget   time.Duration `json:"budget"`
	Count    uint64        `json:"count"`
	At       time.Time     `json:"at"`
}

// SLO is a windowed-quantile budget monitor. Safe for concurrent use;
// nil-receiver-safe so instrumented code needs no guards.
type SLO struct {
	name       string
	q          float64
	budget     time.Duration
	minCount   uint64
	checkEvery time.Duration
	cooldown   time.Duration
	win        *Window
	now        func() time.Time
	onBreach   func(Breach)

	mu         sync.Mutex
	lastCheck  time.Time
	lastFire   time.Time
	lastBreach time.Time
	breached   bool
	breaches   uint64
	current    time.Duration
	count      uint64
}

// NewSLO builds a monitor from opts.
func NewSLO(opts SLOOptions) *SLO {
	s := &SLO{
		name:       opts.Name,
		q:          opts.Quantile,
		budget:     opts.Budget,
		minCount:   opts.MinCount,
		checkEvery: opts.CheckEvery,
		cooldown:   opts.Cooldown,
		win:        opts.Win,
		now:        opts.Now,
		onBreach:   opts.OnBreach,
	}
	if s.q <= 0 || s.q > 1 {
		s.q = 0.99
	}
	if s.minCount == 0 {
		s.minCount = 8
	}
	if s.checkEvery <= 0 {
		s.checkEvery = time.Second
	}
	if s.cooldown <= 0 {
		s.cooldown = time.Minute
	}
	if s.now == nil {
		s.now = time.Now
	}
	if s.win == nil {
		s.win = NewWindow(opts.Window, 0, nil, s.now)
	}
	return s
}

// Window exposes the backing window (shared quantile reads, dashboards).
func (s *SLO) Window() *Window {
	if s == nil {
		return nil
	}
	return s.win
}

// Observe feeds one latency into the window and evaluates the budget if a
// check is due. Nil-safe.
func (s *SLO) Observe(d time.Duration) {
	if s == nil {
		return
	}
	s.win.Observe(d.Seconds())
	now := s.now()
	s.mu.Lock()
	if now.Sub(s.lastCheck) < s.checkEvery {
		s.mu.Unlock()
		return
	}
	s.mu.Unlock()
	s.Check()
}

// Check evaluates the budget immediately (Observe throttles through it).
// Nil-safe.
func (s *SLO) Check() {
	if s == nil {
		return
	}
	now := s.now()
	count := s.win.Count()
	cur := time.Duration(s.win.Quantile(s.q) * float64(time.Second))

	var fire func(Breach)
	var br Breach
	s.mu.Lock()
	s.lastCheck = now
	s.current = cur
	s.count = count
	if s.budget > 0 && count >= s.minCount && cur > s.budget {
		s.breached = true
		s.breaches++
		s.lastBreach = now
		if s.onBreach != nil && (s.lastFire.IsZero() || now.Sub(s.lastFire) >= s.cooldown) {
			s.lastFire = now
			fire = s.onBreach
			br = Breach{Name: s.name, Quantile: s.q, Value: cur,
				Budget: s.budget, Count: count, At: now}
		}
	} else {
		s.breached = false
	}
	s.mu.Unlock()
	if fire != nil {
		fire(br)
	}
}

// SLOStatus is the JSON-facing snapshot served at /debug/slo.
type SLOStatus struct {
	Name        string  `json:"name"`
	Quantile    float64 `json:"quantile"`
	BudgetMs    float64 `json:"budget_ms"`
	CurrentMs   float64 `json:"current_ms"`
	WindowCount uint64  `json:"window_count"`
	Breached    bool    `json:"breached"`
	Breaches    uint64  `json:"breaches_total"`
	LastBreach  string  `json:"last_breach,omitempty"`
}

// Status snapshots the monitor, refreshing the quantile so a quiet stream
// still reports current numbers.
func (s *SLO) Status() SLOStatus {
	if s == nil {
		return SLOStatus{}
	}
	count := s.win.Count()
	cur := time.Duration(s.win.Quantile(s.q) * float64(time.Second))
	s.mu.Lock()
	defer s.mu.Unlock()
	s.current = cur
	s.count = count
	st := SLOStatus{
		Name:        s.name,
		Quantile:    s.q,
		BudgetMs:    float64(s.budget) / float64(time.Millisecond),
		CurrentMs:   float64(cur) / float64(time.Millisecond),
		WindowCount: count,
		Breached:    s.breached,
		Breaches:    s.breaches,
	}
	if !s.lastBreach.IsZero() {
		st.LastBreach = s.lastBreach.UTC().Format(time.RFC3339Nano)
	}
	return st
}
