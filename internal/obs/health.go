package obs

import (
	"sort"
	"sync"
)

// CheckResult is one health check's verdict.
type CheckResult struct {
	OK     bool   `json:"ok"`
	Detail string `json:"detail,omitempty"`
}

// OK is a passing CheckResult with an optional detail string.
func OK(detail string) CheckResult { return CheckResult{OK: true, Detail: detail} }

// Bad is a failing CheckResult.
func Bad(detail string) CheckResult { return CheckResult{OK: false, Detail: detail} }

// Health is a named set of liveness checks evaluated on every /healthz
// request. Checks must be safe for concurrent use and fast (they run
// inline in the HTTP handler).
type Health struct {
	mu     sync.Mutex
	checks map[string]func() CheckResult
}

// NewHealth returns an empty check set (which reports healthy).
func NewHealth() *Health {
	return &Health{checks: map[string]func() CheckResult{}}
}

// Register adds or replaces a named check.
func (h *Health) Register(name string, fn func() CheckResult) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.checks[name] = fn
}

// Run evaluates every check and reports whether all passed.
func (h *Health) Run() (map[string]CheckResult, bool) {
	h.mu.Lock()
	names := make([]string, 0, len(h.checks))
	fns := make(map[string]func() CheckResult, len(h.checks))
	for name, fn := range h.checks {
		names = append(names, name)
		fns[name] = fn
	}
	h.mu.Unlock()
	sort.Strings(names)
	out := make(map[string]CheckResult, len(names))
	allOK := true
	for _, name := range names {
		res := fns[name]()
		out[name] = res
		allOK = allOK && res.OK
	}
	return out, allOK
}
