package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"strings"
	"testing"
	"time"
)

// waitGoroutines polls until the goroutine count returns to the bracket
// taken before the test, with small slack for runtime housekeeping.
func waitGoroutines(t *testing.T, before int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= before+2 {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutine leak: %d before, %d after\n%s",
				before, runtime.NumGoroutine(), buf[:n])
		}
		time.Sleep(20 * time.Millisecond)
	}
}

func get(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: read: %v", url, err)
	}
	return resp.StatusCode, string(body)
}

// TestIntrospectionEndpoints boots a server on a random port and exercises
// every endpoint, then verifies Close leaves no goroutines behind.
func TestIntrospectionEndpoints(t *testing.T) {
	before := runtime.NumGoroutine()

	reg := NewRegistry()
	reg.Counter("acorn_test_events_total", "events").Add(5)
	health := NewHealth()
	health.Register("always", func() CheckResult { return OK("fine") })

	s, err := Serve("127.0.0.1:0", ServerOptions{Registry: reg, Health: health})
	if err != nil {
		t.Fatal(err)
	}
	base := "http://" + s.Addr()

	if code, body := get(t, base+"/metrics"); code != 200 ||
		!strings.Contains(body, "acorn_test_events_total 5") {
		t.Errorf("/metrics: code=%d body=%q", code, body)
	}
	code, body := get(t, base+"/healthz")
	if code != 200 {
		t.Errorf("/healthz code = %d", code)
	}
	var hz struct {
		Status string                 `json:"status"`
		Checks map[string]CheckResult `json:"checks"`
	}
	if err := json.Unmarshal([]byte(body), &hz); err != nil || hz.Status != "ok" || !hz.Checks["always"].OK {
		t.Errorf("/healthz body = %q (err %v)", body, err)
	}
	if code, body := get(t, base+"/debug/vars"); code != 200 ||
		!strings.Contains(body, `"acorn_test_events_total"`) ||
		!strings.Contains(body, `"goroutines"`) {
		t.Errorf("/debug/vars: code=%d body=%q", code, body)
	}
	if code, body := get(t, base+"/debug/pprof/cmdline"); code != 200 || body == "" {
		t.Errorf("/debug/pprof/cmdline: code=%d", code)
	}
	if code, _ := get(t, base+"/nope"); code != 404 {
		t.Errorf("unknown path code = %d, want 404", code)
	}

	// A failing check must flip /healthz to 503/degraded.
	health.Register("broken", func() CheckResult { return Bad("boom") })
	if code, body := get(t, base+"/healthz"); code != 503 || !strings.Contains(body, "degraded") {
		t.Errorf("degraded /healthz: code=%d body=%q", code, body)
	}

	if err := s.Close(time.Second); err != nil {
		t.Errorf("close: %v", err)
	}
	// Idle HTTP keep-alive connections from http.Get are owned by the
	// default transport; drop them so the leak check sees only our side.
	http.DefaultTransport.(*http.Transport).CloseIdleConnections()
	waitGoroutines(t, before)
}

// TestGracefulShutdown verifies Close drains an in-flight request instead
// of resetting it, and that repeated requests after Close fail.
func TestGracefulShutdown(t *testing.T) {
	before := runtime.NumGoroutine()

	reg := NewRegistry()
	health := NewHealth()
	slow := make(chan struct{})
	health.Register("slow", func() CheckResult {
		<-slow
		return OK("done")
	})
	s, err := Serve("127.0.0.1:0", ServerOptions{Registry: reg, Health: health})
	if err != nil {
		t.Fatal(err)
	}
	base := "http://" + s.Addr()

	type result struct {
		code int
		err  error
	}
	inflight := make(chan result, 1)
	go func() {
		resp, err := http.Get(base + "/healthz")
		if err != nil {
			inflight <- result{0, err}
			return
		}
		defer resp.Body.Close()
		_, _ = io.ReadAll(resp.Body)
		inflight <- result{resp.StatusCode, nil}
	}()
	// Let the request reach the blocking check, then shut down while it is
	// in flight.
	time.Sleep(100 * time.Millisecond)
	closed := make(chan error, 1)
	go func() { closed <- s.Close(5 * time.Second) }()
	time.Sleep(100 * time.Millisecond)
	close(slow) // unblock the handler; graceful shutdown should drain it

	if res := <-inflight; res.err != nil || res.code != 200 {
		t.Errorf("in-flight request not drained: %+v", res)
	}
	if err := <-closed; err != nil {
		t.Errorf("close: %v", err)
	}
	if _, err := http.Get(base + "/healthz"); err == nil {
		t.Error("server still accepting connections after Close")
	}
	http.DefaultTransport.(*http.Transport).CloseIdleConnections()
	waitGoroutines(t, before)
}

// TestServeBadAddr covers the bind-failure path.
func TestServeBadAddr(t *testing.T) {
	s, err := Serve("127.0.0.1:0", ServerOptions{Registry: NewRegistry()})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close(time.Second)
	if _, err := Serve(s.Addr(), ServerOptions{Registry: NewRegistry()}); err == nil {
		t.Error("second bind on the same address should fail")
	}
	// Sanity: Addr is host:port.
	if !strings.Contains(s.Addr(), ":") {
		t.Errorf("odd addr %q", s.Addr())
	}
	_ = fmt.Sprintf("%v", s.Addr())
}
