package obs

import (
	"fmt"
	"io"
	"strconv"
	"strings"
)

// WritePrometheus renders every registered metric in the Prometheus text
// exposition format (version 0.0.4), names sorted, label values sorted
// within a family.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	names := r.names()
	entries := make([]metricEntry, len(names))
	for i, name := range names {
		entries[i] = r.metrics[name]
	}
	r.mu.Unlock()

	var b strings.Builder
	for i, name := range names {
		e := entries[i]
		if e.help != "" {
			fmt.Fprintf(&b, "# HELP %s %s\n", name, strings.ReplaceAll(e.help, "\n", " "))
		}
		fmt.Fprintf(&b, "# TYPE %s %s\n", name, e.m.metricKind())
		switch m := e.m.(type) {
		case *Counter:
			fmt.Fprintf(&b, "%s %d\n", name, m.Value())
		case *Gauge:
			fmt.Fprintf(&b, "%s %s\n", name, formatFloat(m.Value()))
		case *gaugeFunc:
			fmt.Fprintf(&b, "%s %s\n", name, formatFloat(m.Value()))
		case *Histogram:
			bounds, cum, count, sum := m.snapshot()
			for j, ub := range bounds {
				fmt.Fprintf(&b, "%s_bucket{le=%q} %d\n", name, formatFloat(ub), cum[j])
			}
			fmt.Fprintf(&b, "%s_bucket{le=\"+Inf\"} %d\n", name, count)
			fmt.Fprintf(&b, "%s_sum %s\n", name, formatFloat(sum))
			fmt.Fprintf(&b, "%s_count %d\n", name, count)
		case *CounterVec:
			vals, kids := m.children()
			for _, v := range vals {
				fmt.Fprintf(&b, "%s{%s=%s} %d\n", name, m.label, quoteLabel(v), kids[v].Value())
			}
		case *GaugeVec:
			vals, kids := m.children()
			for _, v := range vals {
				fmt.Fprintf(&b, "%s{%s=%s} %s\n", name, m.label, quoteLabel(v), formatFloat(kids[v].Value()))
			}
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// quoteLabel escapes a label value per the exposition format.
func quoteLabel(v string) string {
	return strconv.Quote(v)
}

// MetricSnapshot is one exported series in machine-readable form, used by
// /debug/vars and `acornctl obs`.
type MetricSnapshot struct {
	Name string `json:"name"`
	Kind string `json:"kind"`
	Help string `json:"help,omitempty"`
	// Value is set for counters and gauges.
	Value *float64 `json:"value,omitempty"`
	// Count, Sum and Buckets are set for histograms; Buckets maps the
	// stringified upper bound to the cumulative count.
	Count   *uint64            `json:"count,omitempty"`
	Sum     *float64           `json:"sum,omitempty"`
	Buckets map[string]uint64  `json:"buckets,omitempty"`
	// Series is set for labelled families: label value → child value.
	Label  string             `json:"label,omitempty"`
	Series map[string]float64 `json:"series,omitempty"`
}

// Snapshot returns every registered metric's current state, sorted by name.
func (r *Registry) Snapshot() []MetricSnapshot {
	r.mu.Lock()
	names := r.names()
	entries := make([]metricEntry, len(names))
	for i, name := range names {
		entries[i] = r.metrics[name]
	}
	r.mu.Unlock()

	out := make([]MetricSnapshot, 0, len(names))
	for i, name := range names {
		e := entries[i]
		snap := MetricSnapshot{Name: name, Kind: e.m.metricKind(), Help: e.help}
		switch m := e.m.(type) {
		case *Counter:
			v := float64(m.Value())
			snap.Value = &v
		case *Gauge:
			v := m.Value()
			snap.Value = &v
		case *gaugeFunc:
			v := m.Value()
			snap.Value = &v
		case *Histogram:
			bounds, cum, count, sum := m.snapshot()
			snap.Count, snap.Sum = &count, &sum
			snap.Buckets = make(map[string]uint64, len(bounds)+1)
			for j, ub := range bounds {
				snap.Buckets[formatFloat(ub)] = cum[j]
			}
			snap.Buckets["+Inf"] = count
		case *CounterVec:
			vals, kids := m.children()
			snap.Label = m.label
			snap.Series = make(map[string]float64, len(vals))
			for _, v := range vals {
				snap.Series[v] = float64(kids[v].Value())
			}
		case *GaugeVec:
			vals, kids := m.children()
			snap.Label = m.label
			snap.Series = make(map[string]float64, len(vals))
			for _, v := range vals {
				snap.Series[v] = kids[v].Value()
			}
		}
		out = append(out, snap)
	}
	return out
}
