// Package obs is ACORN's zero-dependency observability core: a named
// registry of typed counters/gauges/histograms with an atomic hot path, a
// leveled structured logger, span-style timing helpers, health checks, and
// an HTTP introspection server (Prometheus text /metrics, /healthz,
// /debug/vars, pprof).
//
// Design notes. Metric reads and writes are lock-free (atomics; float
// accumulation via compare-and-swap on the bit pattern), so instrumented
// hot paths pay a handful of atomic ops and zero allocations. Registration
// is idempotent — Counter/Gauge/Histogram return the existing metric when
// the name is already bound — so call sites can look metrics up lazily
// instead of threading handles through constructors. Labelled families
// (CounterVec/GaugeVec) bind a label value once and cache the child, which
// keeps per-AP series cheap in loops ("lazy label binding").
package obs

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Default is the process-wide registry. Instrumented packages fall back to
// it when no explicit registry is injected, so binaries get a complete
// picture without wiring, and tests can still isolate themselves with
// NewRegistry.
var Default = NewRegistry()

// Or returns r when non-nil and Default otherwise — the idiom for optional
// registry injection fields.
func Or(r *Registry) *Registry {
	if r != nil {
		return r
	}
	return Default
}

// metric is anything the registry can export.
type metric interface {
	metricKind() string // "counter", "gauge", "histogram"
}

// Registry is a named collection of metrics. All methods are safe for
// concurrent use.
type Registry struct {
	mu      sync.Mutex
	metrics map[string]metricEntry
}

type metricEntry struct {
	help string
	m    metric
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{metrics: map[string]metricEntry{}}
}

// register binds name to m, or returns the existing metric. A name bound to
// a different kind is a programming error and panics: two packages fighting
// over one name with different types would silently corrupt the export.
func (r *Registry) register(name, help string, mk func() metric) metric {
	validateName(name)
	r.mu.Lock()
	defer r.mu.Unlock()
	if e, ok := r.metrics[name]; ok {
		return e.m
	}
	m := mk()
	r.metrics[name] = metricEntry{help: help, m: m}
	return m
}

func validateName(name string) {
	if name == "" {
		panic("obs: empty metric name")
	}
	for i, c := range name {
		ok := c == '_' || c == ':' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			panic(fmt.Sprintf("obs: invalid metric name %q", name))
		}
	}
}

func kindMismatch(name, want string, got metric) {
	panic(fmt.Sprintf("obs: metric %q already registered as %s, not %s",
		name, got.metricKind(), want))
}

// names returns the registered names in sorted order.
func (r *Registry) names() []string {
	names := make([]string, 0, len(r.metrics))
	for name := range r.metrics {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Counter returns the registered counter, creating it if needed.
func (r *Registry) Counter(name, help string) *Counter {
	m := r.register(name, help, func() metric { return &Counter{} })
	c, ok := m.(*Counter)
	if !ok {
		kindMismatch(name, "counter", m)
	}
	return c
}

// Gauge returns the registered gauge, creating it if needed.
func (r *Registry) Gauge(name, help string) *Gauge {
	m := r.register(name, help, func() metric { return &Gauge{} })
	g, ok := m.(*Gauge)
	if !ok {
		kindMismatch(name, "gauge", m)
	}
	return g
}

// GaugeFunc registers a gauge whose value is computed at scrape time (e.g.
// "seconds since the last reallocation"). Re-registering a name replaces
// the previous callback. fn must be safe for concurrent use.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	validateName(name)
	r.mu.Lock()
	defer r.mu.Unlock()
	if e, ok := r.metrics[name]; ok {
		if gf, ok := e.m.(*gaugeFunc); ok {
			gf.fn.Store(&fn)
			return
		}
		kindMismatch(name, "gauge", e.m)
	}
	gf := &gaugeFunc{}
	gf.fn.Store(&fn)
	r.metrics[name] = metricEntry{help: help, m: gf}
}

// Histogram returns the registered histogram, creating it with the given
// bucket upper bounds (nil means DefSecondsBuckets). Bounds are only used
// on first registration.
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	m := r.register(name, help, func() metric { return newHistogram(bounds) })
	h, ok := m.(*Histogram)
	if !ok {
		kindMismatch(name, "histogram", m)
	}
	return h
}

// CounterVec returns the registered single-label counter family.
func (r *Registry) CounterVec(name, help, label string) *CounterVec {
	m := r.register(name, help, func() metric {
		return &CounterVec{label: label, kids: map[string]*Counter{}}
	})
	v, ok := m.(*CounterVec)
	if !ok {
		kindMismatch(name, "counter", m)
	}
	return v
}

// GaugeVec returns the registered single-label gauge family.
func (r *Registry) GaugeVec(name, help, label string) *GaugeVec {
	m := r.register(name, help, func() metric {
		return &GaugeVec{label: label, kids: map[string]*Gauge{}}
	})
	v, ok := m.(*GaugeVec)
	if !ok {
		kindMismatch(name, "gauge", m)
	}
	return v
}

// Counter is a monotonically increasing count. The zero value is ready to
// use; Add is a single atomic op.
type Counter struct {
	n atomic.Uint64
}

func (c *Counter) metricKind() string { return "counter" }

// Inc adds one.
func (c *Counter) Inc() { c.n.Add(1) }

// Add adds n events.
func (c *Counter) Add(n uint64) { c.n.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.n.Load() }

// Gauge is an instantaneous float64 value. The zero value is ready to use.
type Gauge struct {
	bits atomic.Uint64
}

func (g *Gauge) metricKind() string { return "gauge" }

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adds delta (CAS loop, safe under concurrency).
func (g *Gauge) Add(delta float64) {
	for {
		old := g.bits.Load()
		nw := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, nw) {
			return
		}
	}
}

// Inc adds one; Dec subtracts one.
func (g *Gauge) Inc() { g.Add(1) }
func (g *Gauge) Dec() { g.Add(-1) }

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// gaugeFunc is a gauge computed at scrape time.
type gaugeFunc struct {
	fn atomic.Pointer[func() float64]
}

func (g *gaugeFunc) metricKind() string { return "gauge" }

func (g *gaugeFunc) Value() float64 {
	if fn := g.fn.Load(); fn != nil {
		return (*fn)()
	}
	return 0
}

// CounterVec is a family of counters distinguished by one label value.
type CounterVec struct {
	label string
	mu    sync.Mutex
	kids  map[string]*Counter
}

func (v *CounterVec) metricKind() string { return "counter" }

// With returns the child counter for the label value, creating it on first
// use. Hot paths should bind once and reuse the returned *Counter.
func (v *CounterVec) With(value string) *Counter {
	v.mu.Lock()
	defer v.mu.Unlock()
	c, ok := v.kids[value]
	if !ok {
		c = &Counter{}
		v.kids[value] = c
	}
	return c
}

// GaugeVec is a family of gauges distinguished by one label value.
type GaugeVec struct {
	label string
	mu    sync.Mutex
	kids  map[string]*Gauge
}

func (v *GaugeVec) metricKind() string { return "gauge" }

// With returns the child gauge for the label value, creating it on first
// use.
func (v *GaugeVec) With(value string) *Gauge {
	v.mu.Lock()
	defer v.mu.Unlock()
	g, ok := v.kids[value]
	if !ok {
		g = &Gauge{}
		v.kids[value] = g
	}
	return g
}

// children returns label values in sorted order plus their metrics.
func (v *CounterVec) children() ([]string, map[string]*Counter) {
	v.mu.Lock()
	defer v.mu.Unlock()
	vals := make([]string, 0, len(v.kids))
	kids := make(map[string]*Counter, len(v.kids))
	for k, c := range v.kids {
		vals = append(vals, k)
		kids[k] = c
	}
	sort.Strings(vals)
	return vals, kids
}

func (v *GaugeVec) children() ([]string, map[string]*Gauge) {
	v.mu.Lock()
	defer v.mu.Unlock()
	vals := make([]string, 0, len(v.kids))
	kids := make(map[string]*Gauge, len(v.kids))
	for k, g := range v.kids {
		vals = append(vals, k)
		kids[k] = g
	}
	sort.Strings(vals)
	return vals, kids
}
