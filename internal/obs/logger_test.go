package obs

import (
	"strings"
	"sync"
	"testing"
	"time"
)

// syncBuffer is a mutex-guarded string sink (the logger serializes writes,
// but tests also read concurrently).
type syncBuffer struct {
	mu sync.Mutex
	b  strings.Builder
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

func testLogger(level Level) (*Logger, *syncBuffer) {
	buf := &syncBuffer{}
	l := NewLogger(buf, level)
	l.s.now = func() time.Time { return time.Date(2026, 8, 5, 12, 0, 0, 0, time.UTC) }
	return l, buf
}

func TestLevelFiltering(t *testing.T) {
	l, buf := testLogger(LevelWarn)
	l.Debugf("d")
	l.Infof("i")
	l.Warnf("w %d", 1)
	l.Errorf("e")
	out := buf.String()
	if strings.Contains(out, "INFO") || strings.Contains(out, "DEBUG") {
		t.Errorf("suppressed levels leaked: %q", out)
	}
	if !strings.Contains(out, "WARN  w 1") || !strings.Contains(out, "ERROR e") {
		t.Errorf("missing lines: %q", out)
	}
	l.SetLevel(LevelDebug)
	l.Debugf("now visible")
	if !strings.Contains(buf.String(), "now visible") {
		t.Error("SetLevel did not take effect")
	}
}

func TestStructuredKV(t *testing.T) {
	l, buf := testLogger(LevelInfo)
	l.Info("agent connected", "ap", "AP1", "addr", "10.0.0.1:99", "detail", "two words")
	line := buf.String()
	for _, want := range []string{
		"2026/08/05 12:00:00 INFO  agent connected",
		"ap=AP1",
		"addr=10.0.0.1:99",
		`detail="two words"`,
	} {
		if !strings.Contains(line, want) {
			t.Errorf("missing %q in %q", want, line)
		}
	}
	l.Info("odd", "key")
	if !strings.Contains(buf.String(), "key=(MISSING)") {
		t.Errorf("odd kv not flagged: %q", buf.String())
	}
}

func TestNamedAndWith(t *testing.T) {
	l, buf := testLogger(LevelInfo)
	child := l.Named("ctlnet").With("ap", "AP2")
	child.Warnf("quarantined")
	line := buf.String()
	if !strings.Contains(line, "component=ctlnet") || !strings.Contains(line, "ap=AP2") {
		t.Errorf("child attrs missing: %q", line)
	}
	// Children share the parent's level.
	l.SetLevel(LevelOff)
	child.Errorf("dropped")
	if strings.Contains(buf.String(), "dropped") {
		t.Error("child ignored shared level")
	}
}

func TestPrintfAdapter(t *testing.T) {
	l, buf := testLogger(LevelInfo)
	f := l.Printf(LevelInfo)
	f("legacy %s", "hook")
	if !strings.Contains(buf.String(), "legacy hook") {
		t.Errorf("adapter lost the line: %q", buf.String())
	}
}

func TestParseLevel(t *testing.T) {
	for s, want := range map[string]Level{
		"debug": LevelDebug, "info": LevelInfo, "Warn": LevelWarn,
		"warning": LevelWarn, "ERROR": LevelError, "off": LevelOff, "": LevelInfo,
	} {
		got, err := ParseLevel(s)
		if err != nil || got != want {
			t.Errorf("ParseLevel(%q) = %v, %v", s, got, err)
		}
	}
	if _, err := ParseLevel("loud"); err == nil {
		t.Error("bad level should error")
	}
}

func TestFatalfExits(t *testing.T) {
	l, buf := testLogger(LevelInfo)
	exited := 0
	old := osExit
	osExit = func(code int) { exited = code }
	defer func() { osExit = old }()
	l.Fatalf("bye %d", 9)
	if exited != 1 || !strings.Contains(buf.String(), "bye 9") {
		t.Errorf("Fatalf: exited=%d out=%q", exited, buf.String())
	}
}

func TestLimitedSuppressesAndReportsTail(t *testing.T) {
	l, buf := testLogger(LevelInfo)
	now := time.Date(2026, 8, 5, 12, 0, 0, 0, time.UTC)
	l.s.now = func() time.Time { return now }

	// 1 line/s, burst 2: a 10-line storm gets 2 through.
	lim := l.Limited(1, 2)
	for i := 0; i < 10; i++ {
		lim.Warn("storm", "i", i)
	}
	if got := strings.Count(buf.String(), "storm"); got != 2 {
		t.Fatalf("burst let %d lines through, want 2:\n%s", got, buf.String())
	}

	// After 3s the bucket refills (capped at burst); the next line carries
	// the suppressed count so the storm never vanishes silently.
	now = now.Add(3 * time.Second)
	lim.Warn("after storm")
	out := buf.String()
	if !strings.Contains(out, "after storm") {
		t.Fatalf("refilled bucket still suppressing:\n%s", out)
	}
	if !strings.Contains(out, "suppressed=8") {
		t.Fatalf("suppressed tail count missing:\n%s", out)
	}

	// A quiet follow-up must not repeat the stale count.
	lim.Warn("quiet")
	if strings.Count(buf.String(), "suppressed=") != 1 {
		t.Fatalf("suppressed count repeated:\n%s", buf.String())
	}
}

func TestLimitedIndependentOfLevelFiltering(t *testing.T) {
	l, buf := testLogger(LevelWarn)
	lim := l.Limited(1, 1)
	// Below-level lines must not consume tokens or count as suppressed.
	for i := 0; i < 5; i++ {
		lim.Debug("invisible")
	}
	lim.Warn("visible")
	out := buf.String()
	if !strings.Contains(out, "visible") || strings.Contains(out, "suppressed=") {
		t.Fatalf("level filtering interacted with the limiter:\n%s", out)
	}
}

func TestLimitedChildrenShareBucket(t *testing.T) {
	l, buf := testLogger(LevelInfo)
	lim := l.Limited(1, 1).Named("ctlnet")
	lim.Warn("first")
	lim.Warn("second") // same bucket through the Named child
	if got := strings.Count(buf.String(), "WARN"); got != 1 {
		t.Fatalf("Named child lost the limiter: %d lines\n%s", got, buf.String())
	}
}
