package obs

import (
	"sync"
	"testing"
	"time"
)

// traceClock is a manually advanced clock shared by tracer tests.
type traceClock struct{ t time.Time }

func newTraceClock() *traceClock {
	return &traceClock{t: time.Date(2026, 8, 5, 12, 0, 0, 0, time.UTC)}
}
func (c *traceClock) now() time.Time          { return c.t }
func (c *traceClock) advance(d time.Duration) { c.t = c.t.Add(d) }

func TestTracerStagePartitionSumsToTotal(t *testing.T) {
	clk := newTraceClock()
	tr := NewTracer(TracerOptions{
		Ring: 8, Sample: 1,
		Stages: []string{"queue", "admit", "reopt"},
		Attrs:  []string{"rank_eval"},
		Now:    clk.now,
	})

	ref := tr.Begin("report", "u1", time.Time{})
	clk.advance(3 * time.Millisecond)
	ref.Mark(0)
	clk.advance(5 * time.Millisecond)
	ref.Mark(1)
	ref.Attr(0, 2*time.Millisecond, 7)
	clk.advance(1 * time.Millisecond)
	ref.Mark(2)
	clk.advance(500 * time.Microsecond)
	ref.Mark(0) // stages accumulate: queue charged twice
	ref.End()

	spans := tr.Snapshot(0)
	if len(spans) != 1 {
		t.Fatalf("want 1 span, got %d", len(spans))
	}
	sp := spans[0]
	if sp.Kind != "report" || sp.Key != "u1" {
		t.Fatalf("labels: %+v", sp)
	}
	want := map[string]int64{
		"queue": (3*time.Millisecond + 500*time.Microsecond).Nanoseconds(),
		"admit": (5 * time.Millisecond).Nanoseconds(),
		"reopt": (1 * time.Millisecond).Nanoseconds(),
	}
	var sum int64
	for name, ns := range want {
		if sp.Stages[name] != ns {
			t.Errorf("stage %s = %d, want %d", name, sp.Stages[name], ns)
		}
		sum += ns
	}
	if sp.TotalNs != sum {
		t.Errorf("stage sum %d != total %d (partition must be exact)", sum, sp.TotalNs)
	}
	if sp.Attrs["rank_eval"] != (2 * time.Millisecond).Nanoseconds() || sp.Counts["rank_eval"] != 7 {
		t.Errorf("attr: %+v", sp)
	}
}

func TestTracerSampling(t *testing.T) {
	tr := NewTracer(TracerOptions{Ring: 256, Sample: 4, Stages: []string{"s"}})
	live := 0
	for i := 0; i < 100; i++ {
		ref := tr.Begin("k", "", time.Time{})
		if ref.Active() {
			live++
			ref.End()
		}
	}
	if live != 25 {
		t.Errorf("sample=4 over 100 begins: %d spans, want 25", live)
	}

	tr.SetSample(0)
	if ref := tr.Begin("k", "", time.Time{}); ref.Active() {
		t.Error("sample=0 must disable recording")
	}
	if got := tr.Sample(); got != 0 {
		t.Errorf("Sample() = %d", got)
	}
}

func TestTracerDisabledPathZeroAlloc(t *testing.T) {
	var nilTracer *Tracer
	allocs := testing.AllocsPerRun(1000, func() {
		ref := nilTracer.Begin("report", "u1", time.Time{})
		ref.Mark(0)
		ref.Attr(0, time.Millisecond, 1)
		ref.End()
	})
	if allocs != 0 {
		t.Errorf("nil tracer path allocates %v/op, want 0", allocs)
	}

	off := NewTracer(TracerOptions{Ring: 8, Sample: 0, Stages: []string{"s"}})
	allocs = testing.AllocsPerRun(1000, func() {
		ref := off.Begin("report", "u1", time.Time{})
		ref.Mark(0)
		ref.End()
	})
	if allocs != 0 {
		t.Errorf("sample=0 path allocates %v/op, want 0", allocs)
	}
}

func TestTracerEnabledPathZeroAlloc(t *testing.T) {
	tr := NewTracer(TracerOptions{Ring: 64, Sample: 1, Stages: []string{"a", "b"}})
	allocs := testing.AllocsPerRun(1000, func() {
		ref := tr.Begin("report", "u1", time.Time{})
		ref.Mark(0)
		ref.Mark(1)
		ref.End()
	})
	if allocs != 0 {
		t.Errorf("enabled hot path allocates %v/op, want 0 (ring slots are pre-allocated)", allocs)
	}
}

func TestTracerWrapInvalidatesStaleRefs(t *testing.T) {
	clk := newTraceClock()
	tr := NewTracer(TracerOptions{Ring: 4, Sample: 1, Stages: []string{"s"}, Now: clk.now})

	stale := tr.Begin("old", "victim", time.Time{})
	// Wrap the ring completely; the stale ref's slot is reclaimed.
	for i := 0; i < 8; i++ {
		ref := tr.Begin("new", "", time.Time{})
		clk.advance(time.Millisecond)
		ref.Mark(0)
		ref.End()
	}
	clk.advance(time.Hour)
	stale.Mark(0) // must not corrupt whichever span now owns the slot
	stale.End()
	if stale.Active() {
		t.Error("stale ref still active after wrap")
	}
	for _, sp := range tr.Snapshot(0) {
		if sp.Kind == "old" {
			t.Error("reclaimed span leaked into snapshot")
		}
		if sp.TotalNs > (10 * time.Millisecond).Nanoseconds() {
			t.Errorf("stale writer corrupted a live span: %+v", sp)
		}
	}
}

func TestTracerSnapshotNewestFirstAndBounded(t *testing.T) {
	tr := NewTracer(TracerOptions{Ring: 16, Sample: 1, Stages: []string{"s"}})
	for i := 0; i < 10; i++ {
		ref := tr.Begin("k", "", time.Time{})
		ref.End()
	}
	spans := tr.Snapshot(3)
	if len(spans) != 3 {
		t.Fatalf("max not honoured: %d", len(spans))
	}
	for i := 1; i < len(spans); i++ {
		if spans[i].ID >= spans[i-1].ID {
			t.Fatalf("not newest-first: %d then %d", spans[i-1].ID, spans[i].ID)
		}
	}
	if tr.Started() != 10 {
		t.Errorf("Started() = %d", tr.Started())
	}
}

// TestTracerConcurrentHammer drives writers, a wrapper and snapshot readers
// together; the race detector is the real assertion.
func TestTracerConcurrentHammer(t *testing.T) {
	tr := NewTracer(TracerOptions{Ring: 32, Sample: 1, Stages: []string{"a", "b"}})
	var writers, reader sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 4; w++ {
		writers.Add(1)
		go func() {
			defer writers.Done()
			for i := 0; i < 2000; i++ {
				ref := tr.Begin("k", "c", time.Time{})
				ref.Mark(0)
				ref.Attr(0, time.Microsecond, 1)
				ref.Mark(1)
				ref.End()
			}
		}()
	}
	reader.Add(1)
	go func() {
		defer reader.Done()
		for {
			select {
			case <-stop:
				return
			default:
				tr.Snapshot(8)
			}
		}
	}()
	writers.Wait()
	close(stop)
	reader.Wait()
	if tr.Started() == 0 {
		t.Fatal("no spans recorded")
	}
}

func TestTracerNilSafety(t *testing.T) {
	var tr *Tracer
	if tr.Snapshot(1) != nil || tr.Sample() != 0 || tr.Started() != 0 || tr.Dropped() != 0 {
		t.Error("nil tracer accessors must be zero")
	}
	if len(tr.Stages()) != 0 || len(tr.Attrs()) != 0 {
		t.Error("nil tracer names must be empty")
	}
	if tr.Now().IsZero() {
		t.Error("nil tracer Now must fall back to time.Now")
	}
}
