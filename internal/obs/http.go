package obs

import (
	"context"
	"encoding/json"
	"errors"
	"net"
	"net/http"
	"net/http/pprof"
	"runtime"
	"strconv"
	"time"
)

// ServerOptions configures the introspection endpoints.
type ServerOptions struct {
	// Registry backs /metrics and /debug/vars; nil means Default.
	Registry *Registry
	// Health backs /healthz; nil means an empty (always healthy) set.
	Health *Health
	// Log receives server lifecycle lines; nil means Nop.
	Log *Logger
	// Tracer backs /debug/trace; nil serves an empty span stream (the
	// endpoint always exists so probes need no feature detection).
	Tracer *Tracer
	// SLOs back /debug/slo.
	SLOs []*SLO
}

func (o ServerOptions) registry() *Registry {
	if o.Registry != nil {
		return o.Registry
	}
	return Default
}

func (o ServerOptions) health() *Health {
	if o.Health != nil {
		return o.Health
	}
	return NewHealth()
}

func (o ServerOptions) log() *Logger {
	if o.Log != nil {
		return o.Log
	}
	return Nop
}

// NewHandler builds the introspection mux: Prometheus-text /metrics, JSON
// /healthz (503 when any check fails), JSON /debug/vars (metrics snapshot
// plus runtime stats), and the net/http/pprof suite under /debug/pprof/.
func NewHandler(opts ServerOptions) http.Handler {
	reg, health := opts.registry(), opts.health()
	mux := http.NewServeMux()

	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = reg.WritePrometheus(w)
	})

	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		checks, ok := health.Run()
		status := "ok"
		code := http.StatusOK
		if !ok {
			status = "degraded"
			code = http.StatusServiceUnavailable
		}
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(code)
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(map[string]any{"status": status, "checks": checks})
	})

	mux.HandleFunc("/debug/vars", func(w http.ResponseWriter, _ *http.Request) {
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(map[string]any{
			"metrics": reg.Snapshot(),
			"runtime": map[string]any{
				"goroutines":     runtime.NumGoroutine(),
				"heap_alloc":     ms.HeapAlloc,
				"heap_sys":       ms.HeapSys,
				"total_alloc":    ms.TotalAlloc,
				"num_gc":         ms.NumGC,
				"gc_pause_total": time.Duration(ms.PauseTotalNs).String(),
				"go_version":     runtime.Version(),
			},
		})
	})

	// Recent finished spans as JSONL, newest first. ?n= bounds the count
	// (default 100); acornctl trace consumes this.
	mux.HandleFunc("/debug/trace", func(w http.ResponseWriter, r *http.Request) {
		n := 100
		if s := r.URL.Query().Get("n"); s != "" {
			if v, err := strconv.Atoi(s); err == nil && v > 0 {
				n = v
			}
		}
		w.Header().Set("Content-Type", "application/x-ndjson")
		enc := json.NewEncoder(w)
		for _, sp := range opts.Tracer.Snapshot(n) {
			_ = enc.Encode(sp)
		}
	})

	// SLO monitors: a JSON array so multiple budgets (stream decision,
	// pass latency, ...) share one endpoint.
	mux.HandleFunc("/debug/slo", func(w http.ResponseWriter, _ *http.Request) {
		out := make([]SLOStatus, 0, len(opts.SLOs))
		for _, s := range opts.SLOs {
			if s != nil {
				out = append(out, s.Status())
			}
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(out)
	})

	// pprof on our own mux (the package's init only touches
	// http.DefaultServeMux, which we deliberately do not serve).
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)

	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		_, _ = w.Write([]byte("acorn introspection\n\n/metrics\n/healthz\n/debug/vars\n/debug/trace\n/debug/slo\n/debug/pprof/\n"))
	})
	return mux
}

// IntrospectionServer is a running obs HTTP server with a graceful,
// goroutine-leak-free shutdown.
type IntrospectionServer struct {
	ln   net.Listener
	srv  *http.Server
	log  *Logger
	done chan struct{}
	err  error
}

// Serve binds addr and serves the introspection endpoints in a background
// goroutine. It returns once the listener is bound, so the caller can
// immediately advertise Addr().
func Serve(addr string, opts ServerOptions) (*IntrospectionServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &IntrospectionServer{
		ln: ln,
		srv: &http.Server{
			Handler:           NewHandler(opts),
			ReadHeaderTimeout: 5 * time.Second,
		},
		log:  opts.log(),
		done: make(chan struct{}),
	}
	s.log.Info("obs: introspection server listening", "addr", ln.Addr())
	go func() {
		defer close(s.done)
		if err := s.srv.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
			s.err = err
			s.log.Error("obs: introspection server failed", "err", err)
		}
	}()
	return s, nil
}

// Addr returns the bound listen address (useful with ":0").
func (s *IntrospectionServer) Addr() string { return s.ln.Addr().String() }

// Close gracefully drains in-flight requests (bounded by timeout, 5s if
// zero), then waits for the serve goroutine so no goroutine outlives the
// call.
func (s *IntrospectionServer) Close(timeout time.Duration) error {
	if timeout <= 0 {
		timeout = 5 * time.Second
	}
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	err := s.srv.Shutdown(ctx)
	if err != nil {
		// Drain timed out or shutdown failed: drop remaining connections.
		_ = s.srv.Close()
	}
	<-s.done
	if s.err != nil {
		return s.err
	}
	return err
}
