package obs

// Prometheus-text edge cases: label values that need escaping, histograms
// whose sums went non-finite, and the empty registry. The exposition format
// is consumed by external scrapers, so malformed output is a quiet
// integration break — these tests pin the corners.

import (
	"math"
	"strings"
	"testing"
)

func TestPrometheusLabelEscaping(t *testing.T) {
	reg := NewRegistry()
	vec := reg.CounterVec("acorn_test_escapes_total", "label escaping", "class")
	cases := map[string]string{
		`plain`:       `"plain"`,
		`has"quote`:   `"has\"quote"`,
		`back\slash`:  `"back\\slash"`,
		"line\nbreak": `"line\nbreak"`,
		"tab\there":   `"tab\there"`,
	}
	for raw := range cases {
		vec.With(raw).Inc()
	}

	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for raw, quoted := range cases {
		want := "acorn_test_escapes_total{class=" + quoted + "} 1"
		if !strings.Contains(out, want) {
			t.Errorf("label %q: missing %q in:\n%s", raw, want, out)
		}
	}
	// No label value may leak a literal newline into the middle of a line:
	// every line must start with a metric name or a # comment.
	for _, line := range strings.Split(strings.TrimRight(out, "\n"), "\n") {
		if line == "" || strings.HasPrefix(line, "#") || strings.HasPrefix(line, "acorn_") {
			continue
		}
		t.Errorf("raw newline escaped a label value, orphan line %q", line)
	}
}

func TestPrometheusNonFiniteHistogramSums(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("acorn_test_nonfinite_seconds", "non-finite sums", []float64{1, 10})
	h.Observe(math.NaN())
	h.Observe(math.Inf(1))
	h.Observe(2)

	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "acorn_test_nonfinite_seconds_sum NaN") {
		t.Errorf("NaN sum not rendered as NaN:\n%s", out)
	}
	if !strings.Contains(out, "acorn_test_nonfinite_seconds_count 3") {
		t.Errorf("count must keep counting past non-finite values:\n%s", out)
	}
	// The +Inf bucket is cumulative and must equal the count even when the
	// observations themselves were non-finite.
	if !strings.Contains(out, `acorn_test_nonfinite_seconds_bucket{le="+Inf"} 3`) {
		t.Errorf("+Inf bucket wrong:\n%s", out)
	}

	// Snapshot must carry the same values without panicking on NaN.
	var found bool
	for _, snap := range reg.Snapshot() {
		if snap.Name == "acorn_test_nonfinite_seconds" {
			found = true
			if snap.Sum == nil || !math.IsNaN(*snap.Sum) {
				t.Errorf("snapshot sum = %v, want NaN", snap.Sum)
			}
			if snap.Count == nil || *snap.Count != 3 {
				t.Errorf("snapshot count = %v", snap.Count)
			}
		}
	}
	if !found {
		t.Fatal("histogram missing from snapshot")
	}
}

func TestPrometheusInfGaugeRendering(t *testing.T) {
	reg := NewRegistry()
	reg.Gauge("acorn_test_inf_gauge", "inf gauge").Set(math.Inf(1))
	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "acorn_test_inf_gauge +Inf") {
		t.Errorf("+Inf gauge not rendered:\n%s", b.String())
	}
}

func TestPrometheusEmptyRegistry(t *testing.T) {
	reg := NewRegistry()
	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if b.Len() != 0 {
		t.Errorf("empty registry produced output: %q", b.String())
	}
	if snaps := reg.Snapshot(); len(snaps) != 0 {
		t.Errorf("empty registry snapshot: %+v", snaps)
	}
}
